#!/usr/bin/env python3
"""Doc-consistency check: run every CLI command the docs show.

Extracts every ``limbo-tool`` / ``limbo-serve`` / ``micro_limbo``
invocation from fenced code blocks in docs/tutorial.md, README.md,
docs/architecture.md, docs/serving.md, docs/refit.md, docs/schemes.md
and docs/performance.md, rewrites the binary path
to the actual build tree, and executes them in order inside a scratch
directory (so commands that generate files feed the commands that
consume them, exactly as a reader would run them). Any non-zero exit —
including exit code 2 for a flag the tool no longer knows — fails the
check. That keeps the documented flag surface honest by construction.

Usage: tools/doc_check.py [--build-dir build] [--verbose]
"""

import argparse
import pathlib
import re
import shlex
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = [
    REPO / "docs" / "tutorial.md",
    REPO / "README.md",
    REPO / "docs" / "architecture.md",
    REPO / "docs" / "serving.md",
    REPO / "docs" / "refit.md",
    REPO / "docs" / "schemes.md",
    REPO / "docs" / "performance.md",
]

# Binaries the check knows how to rewrite; anything else in a fenced
# block (cmake, ctest, bench loops) is out of scope here because CI
# exercises those directly.
BINARIES = {
    "limbo-tool": "tools/limbo-tool",
    "limbo-serve": "tools/limbo-serve",
    "micro_limbo": "bench/micro_limbo",
}

FENCE_RE = re.compile(r"^```")
COMMAND_RE = re.compile(
    r"(?:^|\s|/)(limbo-tool|limbo-serve|micro_limbo)(?=\s|$)")


def extract_commands(doc: pathlib.Path):
    """Yields (line_number, command) for doc lines inside code fences."""
    in_fence = False
    for number, line in enumerate(doc.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            continue
        stripped = line.strip()
        if stripped.startswith(("#", "|", "...")):
            continue  # comments, tables, elisions inside output blocks
        if COMMAND_RE.search(stripped):
            yield number, stripped


def rewrite(command: str, build_dir: pathlib.Path):
    """Points the documented binary path at the real build tree, or
    returns None when the line is quoted output rather than a command."""
    try:
        words = shlex.split(command, comments=True)
    except ValueError:
        return None
    if not words:
        return None
    name = pathlib.Path(words[0]).name
    if name not in BINARIES:
        return None  # e.g. output lines that merely mention the tool
    words[0] = str(build_dir / BINARIES[name])
    return words


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    build_dir = (REPO / args.build_dir).resolve()
    for rel in BINARIES.values():
        if not (build_dir / rel).exists():
            print(f"doc_check: missing binary {build_dir / rel}; build first",
                  file=sys.stderr)
            return 2

    failures = []
    total = 0
    with tempfile.TemporaryDirectory(prefix="limbo_doc_check_") as scratch:
        # The README quickstart uses `yourdata.csv` as a stand-in for the
        # reader's own file; seed it with the DB2 sample so those commands
        # are as runnable as the tutorial's.
        subprocess.run(
            [str(build_dir / BINARIES["limbo-tool"]), "generate", "db2",
             "--out=yourdata.csv"],
            cwd=scratch, check=True, capture_output=True, timeout=600)
        for doc in DOCS:
            for number, command in extract_commands(doc):
                words = rewrite(command, build_dir)
                if words is None:
                    continue
                total += 1
                where = f"{doc.relative_to(REPO)}:{number}"
                if args.verbose:
                    print(f"[doc_check] {where}: {command}")
                proc = subprocess.run(
                    words, cwd=scratch, capture_output=True, text=True,
                    timeout=600)
                if proc.returncode != 0:
                    failures.append((where, command, proc.returncode,
                                     (proc.stdout + proc.stderr).strip()))

    if failures:
        print(f"doc_check: {len(failures)} of {total} documented commands "
              "failed:", file=sys.stderr)
        for where, command, code, output in failures:
            print(f"\n  {where} (exit {code}):\n    $ {command}",
                  file=sys.stderr)
            for line in output.splitlines()[-5:]:
                print(f"    {line}", file=sys.stderr)
        return 1
    print(f"doc_check: all {total} documented commands ran clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
