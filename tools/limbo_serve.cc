// limbo-serve: online query daemon over a frozen .limbo model bundle.
//
//   limbo-serve model.limbo [--port=7070] [--workers=1] [--oov=drop|strict]
//   limbo-serve model.limbo --once [--workers=1] [--query=<json> ...]
//
// The bundle (written by `limbo-tool fit`) is loaded once; every query
// after that is answered from memory. The protocol is newline-delimited
// JSON, one object per line, identical over TCP and --once:
//
//   {"op":"assign","row":["a","b","c"]}      -> cluster id + loss
//   {"op":"assign","csv":"a,b,c"}            -> same, raw CSV record
//   {"op":"duplicates","row":[...]}          -> near-duplicate check
//   {"op":"valuegroup","attr":"A","value":"x"} -> the value's group
//   {"op":"attrs"}                           -> attribute dendrogram
//   {"op":"fds","limit":10}                  -> ranked dependencies
//   {"op":"info"}                            -> model metadata
//
// Responses are one JSON object per line: {"ok":true,...} on success,
// {"ok":false,"code":...,"error":...} on any malformed or unanswerable
// query (the process never exits on a bad query).
//
// --once reads queries from --query flags (in order) or stdin, writes
// responses to stdout and exits — the mode the tests, CI smoke job and
// doc-consistency check drive. Responses are bit-identical at every
// --workers count: assignment is a pure function of (row, bundle).
//
// TCP mode accepts connections on --port (0 = ephemeral; the chosen port
// is printed) across --workers accept lanes and shuts down cleanly on
// SIGINT/SIGTERM, draining in-flight connections first.
//
// Unknown flags are rejected with exit code 2 (doc_check relies on that).

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/prob.h"
#include "obs/counters.h"
#include "serve/engine.h"
#include "util/parallel.h"

namespace {

using namespace limbo;  // NOLINT

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: limbo-serve model.limbo [--port=7070] [--workers=1] "
               "[--oov=drop|strict] [--once] [--query=<json> ...]\n");
  return 2;
}

struct ServeArgs {
  std::string model_path;
  int port = 7070;
  size_t workers = 1;
  serve::OovPolicy oov = serve::OovPolicy::kDrop;
  bool once = false;
  std::vector<std::string> queries;
};

bool ParseServeArgs(int argc, char** argv, ServeArgs* args) {
  if (argc < 2) return false;
  args->model_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return false;
    const size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const std::string value =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
    if (key == "port") {
      args->port = std::atoi(value.c_str());
    } else if (key == "workers") {
      args->workers = static_cast<size_t>(std::atoll(value.c_str()));
      if (args->workers == 0) args->workers = 1;
    } else if (key == "oov") {
      if (value == "drop") {
        args->oov = serve::OovPolicy::kDrop;
      } else if (value == "strict") {
        args->oov = serve::OovPolicy::kStrict;
      } else {
        std::fprintf(stderr, "limbo-serve: --oov must be drop or strict\n");
        return false;
      }
    } else if (key == "once") {
      args->once = true;
    } else if (key == "query") {
      args->queries.push_back(value);
    } else {
      std::fprintf(stderr, "limbo-serve: unknown flag --%s\n", key.c_str());
      return false;
    }
  }
  return true;
}

/// --once: answer the given queries (or stdin lines) and exit. Queries are
/// dispatched across the worker lanes but responses print in input order,
/// so the output is byte-identical at every worker count.
int RunOnce(const serve::Engine& engine, const ServeArgs& args) {
  std::vector<std::string> queries = args.queries;
  if (queries.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) queries.push_back(line);
    }
  }
  std::vector<std::string> responses(queries.size());
  util::ThreadPool pool(args.workers);
  std::vector<core::LossKernel> kernels(pool.threads());
  pool.ParallelFor(0, queries.size(), 1,
                   [&](size_t begin, size_t end, size_t lane) {
                     for (size_t i = begin; i < end; ++i) {
                       responses[i] = engine.HandleLine(queries[i],
                                                        &kernels[lane]);
                     }
                   });
  for (const std::string& response : responses) {
    std::fputs(response.c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}

/// Serves one established connection: reads newline-delimited queries,
/// writes one response line per query, until the peer closes.
void ServeConnection(const serve::Engine& engine, core::LossKernel* kernel,
                     int fd) {
  LIMBO_OBS_COUNT("serve.connections", 1);
  std::string pending;
  char buffer[4096];
  while (g_shutdown == 0) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    pending.append(buffer, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = pending.find('\n', start)) != std::string::npos) {
      std::string line = pending.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = engine.HandleLine(line, kernel);
      response.push_back('\n');
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t w =
            ::send(fd, response.data() + sent, response.size() - sent, 0);
        if (w <= 0) {
          ::close(fd);
          return;
        }
        sent += static_cast<size_t>(w);
      }
    }
    pending.erase(0, start);
  }
  ::close(fd);
}

/// One accept lane: polls the shared listening socket so the shutdown
/// flag is observed within 200ms even while idle.
void AcceptLoop(const serve::Engine& engine, core::LossKernel* kernel,
                int listen_fd) {
  while (g_shutdown == 0) {
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    ServeConnection(engine, kernel, fd);
  }
}

int RunTcp(const serve::Engine& engine, const ServeArgs& args) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("limbo-serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(args.port));
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    std::perror("limbo-serve: bind");
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 64) < 0) {
    std::perror("limbo-serve: listen");
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  std::printf("limbo-serve: listening on 127.0.0.1:%d (%zu workers)\n",
              ntohs(addr.sin_port), args.workers);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  util::ThreadPool pool(args.workers);
  std::vector<core::LossKernel> kernels(pool.threads());
  // Each lane runs exactly one AcceptLoop (grain 1, one index per lane)
  // and owns kernels[lane]; ParallelFor joins only after every lane saw
  // the shutdown flag and drained its in-flight connection.
  pool.ParallelFor(0, args.workers, 1,
                   [&](size_t begin, size_t end, size_t lane) {
                     for (size_t i = begin; i < end; ++i) {
                       (void)i;
                       AcceptLoop(engine, &kernels[lane], listen_fd);
                     }
                   });
  ::close(listen_fd);
  std::printf("limbo-serve: shut down cleanly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args;
  if (!ParseServeArgs(argc, argv, &args)) return Usage();
  serve::EngineOptions options;
  options.oov = args.oov;
  util::Result<serve::Engine> engine =
      serve::Engine::Open(args.model_path, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "limbo-serve: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  if (args.once) return RunOnce(*engine, args);
  return RunTcp(*engine, args);
}
