// limbo-serve: online query daemon over frozen .limbo model bundles.
//
//   limbo-serve model.limbo [flags]
//   limbo-serve --model name=path [--model name2=path2 ...] [flags]
//   limbo-serve --models-dir=dir [flags]
//
// Flags: [--port=7070] [--workers=1] [--max-pending=128]
//        [--batch-max=16] [--batch-wait-us=0] [--cache-entries=0]
//        [--default-model=name] [--oov=drop|strict]
//        [--once] [--query=<json> ...]
//
// Every registered bundle (written by `limbo-tool fit`) is loaded once;
// every query after that is answered from memory. The protocol is
// newline-delimited JSON, one object per line, identical over TCP and
// --once:
//
//   {"op":"assign","row":["a","b","c"]}      -> cluster id + loss
//   {"op":"assign","csv":"a,b,c"}            -> same, raw CSV record
//   {"op":"duplicates","row":[...]}          -> near-duplicate check
//   {"op":"valuegroup","attr":"A","value":"x"} -> the value's group
//   {"op":"attrs"}                           -> attribute dendrogram
//   {"op":"fds","limit":10}                  -> ranked dependencies
//   {"op":"schemes","limit":10}              -> mined acyclic schemes
//   {"op":"info"}                            -> model metadata
//   {"op":"models"}                          -> the registry (admin)
//   {"op":"reload"[,"model":"name"]}         -> blue/green hot reload
//
// Any query may carry a "model" field naming the bundle it targets; the
// default model (the first registered, or --default-model) answers when
// it is omitted. Responses are one JSON object per line: {"ok":true,...}
// on success, {"ok":false,"code":...,"error":...} on any malformed or
// unanswerable query (the process never exits on a bad query).
//
// --once reads queries from --query flags (in order) or stdin, writes
// responses to stdout and exits — the mode the tests, CI smoke job and
// doc-consistency check drive. Responses are bit-identical at every
// --workers count: assignment is a pure function of (row, bundle).
//
// TCP mode accepts connections on --port (0 = ephemeral; the chosen port
// is printed); a reactor thread multiplexes every connection and
// --workers lanes drain queued requests in batches of up to --batch-max
// (lingering --batch-wait-us for a fuller batch; 0 never delays).
// Connections beyond workers + --max-pending are shed immediately with
// {"ok":false,"code":"overloaded",...}. --cache-entries>0 enables the
// bounded LRU response cache, keyed by model version so hot reloads
// invalidate atomically. SIGHUP hot-reloads every model
// (in-flight queries finish on their engine snapshot; none is dropped),
// and SIGINT/SIGTERM shut down cleanly, draining in-flight connections
// first. SIGPIPE is ignored: a client disconnecting mid-response only
// ends that connection, never the daemon.
//
// Unknown flags are rejected with exit code 2 (doc_check relies on that).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/prob.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/parallel.h"

namespace {

using namespace limbo;  // NOLINT

// Lock-free atomics are async-signal-safe, so the handler may store
// them and the acceptor thread may read them without a data race.
std::atomic<int> g_shutdown{0};
std::atomic<int> g_reload{0};

void HandleSignal(int sig) {
  if (sig == SIGHUP) {
    g_reload.store(1, std::memory_order_relaxed);
  } else {
    g_shutdown.store(1, std::memory_order_relaxed);
  }
}

/// Installs the daemon's signal disposition: SIGINT/SIGTERM drain and
/// exit, SIGHUP hot-reloads, SIGPIPE is ignored (a peer closing
/// mid-response must surface as a send error on that connection, not
/// kill the process). Deliberately no SA_RESTART: blocked socket calls
/// return EINTR so the flags are observed promptly — the socket path
/// retries EINTR everywhere.
void InstallSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGHUP, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: limbo-serve model.limbo [--model name=path ...]\n"
      "                   [--models-dir=dir] [--default-model=name]\n"
      "                   [--port=7070] [--workers=1] [--max-pending=128]\n"
      "                   [--batch-max=16] [--batch-wait-us=0]\n"
      "                   [--cache-entries=0]\n"
      "                   [--oov=drop|strict] [--once] [--query=<json> ...]\n");
  return 2;
}

struct ServeArgs {
  std::vector<std::pair<std::string, std::string>> models;  // name -> path
  std::vector<std::string> model_dirs;
  std::string default_model;
  int port = 7070;
  size_t workers = 1;
  size_t max_pending = 128;
  size_t batch_max = 16;
  int batch_wait_us = 0;
  size_t cache_entries = 0;
  serve::OovPolicy oov = serve::OovPolicy::kDrop;
  bool once = false;
  std::vector<std::string> queries;
};

/// Strict base-10 unsigned parse: every byte a digit, value <= max.
/// Rejects what std::atoi silently mangles ("abc" -> 0, 70000 -> u16
/// truncation, "7070x" -> 7070).
bool ParseBoundedInt(const std::string& value, unsigned long max,
                     unsigned long* out) {
  if (value.empty() || value.size() > 10) return false;
  for (const char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  const unsigned long parsed = std::stoul(value);
  if (parsed > max) return false;
  *out = parsed;
  return true;
}

/// "name.limbo" -> "name": the registry name of a positional bundle.
std::string ModelNameFromPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return stem.empty() ? "default" : stem;
}

bool ParseServeArgs(int argc, char** argv, ServeArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      // Positional bundle path, registered under its file stem.
      args->models.emplace_back(ModelNameFromPath(arg), arg);
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const std::string value =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
    if (key == "port") {
      unsigned long port = 0;
      if (eq == std::string::npos ||
          !ParseBoundedInt(value, 65535, &port)) {
        std::fprintf(stderr,
                     "limbo-serve: --port must be an integer in [0, 65535], "
                     "got \"%s\"\n",
                     eq == std::string::npos ? "" : value.c_str());
        return false;
      }
      args->port = static_cast<int>(port);
    } else if (key == "workers") {
      unsigned long workers = 0;
      if (!ParseBoundedInt(value, 4096, &workers) || workers == 0) {
        std::fprintf(stderr,
                     "limbo-serve: --workers must be an integer in "
                     "[1, 4096], got \"%s\"\n",
                     value.c_str());
        return false;
      }
      args->workers = static_cast<size_t>(workers);
    } else if (key == "max-pending") {
      unsigned long pending = 0;
      if (!ParseBoundedInt(value, 1 << 20, &pending) || pending == 0) {
        std::fprintf(stderr,
                     "limbo-serve: --max-pending must be a positive "
                     "integer, got \"%s\"\n",
                     value.c_str());
        return false;
      }
      args->max_pending = static_cast<size_t>(pending);
    } else if (key == "batch-max") {
      unsigned long batch = 0;
      if (!ParseBoundedInt(value, 4096, &batch) || batch == 0) {
        std::fprintf(stderr,
                     "limbo-serve: --batch-max must be an integer in "
                     "[1, 4096], got \"%s\"\n",
                     value.c_str());
        return false;
      }
      args->batch_max = static_cast<size_t>(batch);
    } else if (key == "batch-wait-us") {
      unsigned long wait = 0;
      if (eq == std::string::npos ||
          !ParseBoundedInt(value, 1000000, &wait)) {
        std::fprintf(stderr,
                     "limbo-serve: --batch-wait-us must be an integer in "
                     "[0, 1000000], got \"%s\"\n",
                     eq == std::string::npos ? "" : value.c_str());
        return false;
      }
      args->batch_wait_us = static_cast<int>(wait);
    } else if (key == "cache-entries") {
      unsigned long entries = 0;
      if (eq == std::string::npos ||
          !ParseBoundedInt(value, 1 << 24, &entries)) {
        std::fprintf(stderr,
                     "limbo-serve: --cache-entries must be an integer in "
                     "[0, 16777216], got \"%s\"\n",
                     eq == std::string::npos ? "" : value.c_str());
        return false;
      }
      args->cache_entries = static_cast<size_t>(entries);
    } else if (key == "model") {
      // Accepts both --model name=path and --model=name=path.
      std::string spec = value;
      if (eq == std::string::npos && i + 1 < argc) spec = argv[++i];
      const size_t sep = spec.find('=');
      if (sep == std::string::npos || sep == 0 || sep + 1 == spec.size()) {
        std::fprintf(stderr, "limbo-serve: --model needs name=path\n");
        return false;
      }
      args->models.emplace_back(spec.substr(0, sep), spec.substr(sep + 1));
    } else if (key == "models-dir") {
      args->model_dirs.push_back(value);
    } else if (key == "default-model") {
      args->default_model = value;
    } else if (key == "oov") {
      if (value == "drop") {
        args->oov = serve::OovPolicy::kDrop;
      } else if (value == "strict") {
        args->oov = serve::OovPolicy::kStrict;
      } else {
        std::fprintf(stderr, "limbo-serve: --oov must be drop or strict\n");
        return false;
      }
    } else if (key == "once") {
      args->once = true;
    } else if (key == "query") {
      args->queries.push_back(value);
    } else {
      std::fprintf(stderr, "limbo-serve: unknown flag --%s\n", key.c_str());
      return false;
    }
  }
  if (args->models.empty() && args->model_dirs.empty()) {
    std::fprintf(stderr, "limbo-serve: no model bundles given\n");
    return false;
  }
  return true;
}

/// --once: answer the given queries (or stdin lines) and exit. Queries
/// are dispatched across the worker lanes in --batch-max chunks (the
/// same Registry::HandleBatch path the TCP server drives) but responses
/// print in input order, so the output is byte-identical at every
/// worker count and batch size.
int RunOnce(serve::Registry* registry, const ServeArgs& args) {
  std::vector<std::string> queries = args.queries;
  if (queries.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) queries.push_back(line);
    }
  }
  std::vector<std::string> responses(queries.size());
  util::ThreadPool pool(args.workers);
  std::vector<core::LossKernel> kernels(pool.threads());
  const size_t batch = args.batch_max == 0 ? 1 : args.batch_max;
  const size_t chunks = (queries.size() + batch - 1) / batch;
  pool.ParallelFor(0, chunks, 1, [&](size_t begin, size_t end, size_t lane) {
    for (size_t c = begin; c < end; ++c) {
      const size_t lo = c * batch;
      const size_t hi = std::min(queries.size(), lo + batch);
      std::vector<std::string> answers = registry->HandleBatch(
          std::span<const std::string>(queries.data() + lo, hi - lo),
          &kernels[lane]);
      std::move(answers.begin(), answers.end(), responses.begin() + lo);
    }
  });
  for (const std::string& response : responses) {
    std::fputs(response.c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}

int RunTcp(serve::Registry* registry, const ServeArgs& args) {
  InstallSignalHandlers();
  serve::ServerOptions options;
  options.port = args.port;
  options.workers = args.workers;
  options.max_pending = args.max_pending;
  options.batch_max = args.batch_max;
  options.batch_wait_us = args.batch_wait_us;
  util::Result<std::unique_ptr<serve::Server>> server =
      serve::Server::Start(registry, options);
  if (!server.ok()) {
    std::fprintf(stderr, "limbo-serve: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("limbo-serve: listening on 127.0.0.1:%d (%zu workers, "
              "%zu models, default \"%s\")\n",
              (*server)->port(), args.workers, registry->NumModels(),
              registry->DefaultName().c_str());
  std::fflush(stdout);
  (*server)->Run(&g_shutdown, &g_reload);
  std::printf("limbo-serve: shut down cleanly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args;
  if (!ParseServeArgs(argc, argv, &args)) return Usage();
  serve::EngineOptions engine_options;
  engine_options.oov = args.oov;
  serve::Registry registry(engine_options, args.cache_entries);
  for (const auto& [name, path] : args.models) {
    const util::Status status = registry.AddModel(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "limbo-serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& dir : args.model_dirs) {
    const util::Status status = registry.AddDirectory(dir);
    if (!status.ok()) {
      std::fprintf(stderr, "limbo-serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!args.default_model.empty()) {
    const util::Status status = registry.SetDefault(args.default_model);
    if (!status.ok()) {
      std::fprintf(stderr, "limbo-serve: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (args.once) return RunOnce(&registry, args);
  return RunTcp(&registry, args);
}
