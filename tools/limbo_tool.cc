// limbo-tool: command-line front end for the library.
//
//   limbo-tool profile    data.csv
//   limbo-tool summary    data.csv [--phi-t=0.1] [--phi-v=0] [--psi=0.5]
//   limbo-tool duplicates data.csv [--phi-t=0.1]
//   limbo-tool values     data.csv [--phi-v=0]
//   limbo-tool fds        data.csv [--miner=auto|fdep|tane] [--min-cover]
//   limbo-tool approx-fds data.csv [--epsilon=0.05] [--max-lhs=3]
//   limbo-tool mvds       data.csv [--max-lhs=2]
//   limbo-tool keys       data.csv [--max-size=4]
//   limbo-tool rank       data.csv [--psi=0.5]
//   limbo-tool schemes    data.csv [--epsilon=0.05] [--max-sep=2]
//                                  [--max-schemes=16]
//   limbo-tool partition  data.csv [--k=0] [--phi=0.5] [--stream]
//   limbo-tool decompose  data.csv [--psi=0.5] [--out=prefix]
//   limbo-tool generate   db2|dblp [--out=data.csv] [--tuples=N] [--seed=S]
//   limbo-tool summaries  data.csv [--phi-t=0.5] [--out=data.dcf] [--stream]
//   limbo-tool report     data.csv [--out=report.md] [--psi=0.5]
//   limbo-tool fit        data.csv [--phi-t=0.1] [--phi-v=0] [--psi=0.5]
//                                  [--k=10] [--model-out=data.limbo]
//                                  [--no-refit-state] [--schemes]
//                                  [--schemes-epsilon=0.05]
//                                  [--schemes-max-sep=2]
//   limbo-tool refit      data.limbo --input=new_rows.csv
//                                  [--model-out=child.limbo]
//                                  [--drift-moderate=2.0] [--drift-severe=8.0]
//                                  [--chunk=4096]
//   limbo-tool inspect    data.limbo
//
// Input: CSV with a header row; empty fields are NULLs. refit and
// inspect take a .limbo bundle as their positional argument instead;
// refit exits 3 on severe drift (no bundle written -- run a full fit).
//
// partition and summaries additionally accept the streaming-ingest knobs:
//
//   --stream          never materialize the relation: pull the CSV in
//                     chunks through the RowSource pipeline, so peak
//                     memory is the DCF tree plus one chunk of objects.
//                     Results are bit-identical to the in-memory path.
//   --stats=<path>    sidecar stats file (schema + value dictionary + row
//                     count). Loaded when it exists, else written after
//                     the counting pass so later runs skip that pass.
//   --chunk=<n>       objects per stream chunk (default 4096; memory knob
//                     only — every value is bit-identical).
//
// Every command accepts --threads=N to set the worker-lane count of the
// clustering hot paths (default: LIMBO_THREADS env var, else hardware
// concurrency; results are bit-identical for any value), plus:
//
//   --report=<path>   write a structured run report (trace spans, work
//                     counters, and command-specific sections such as the
//                     AIB merge trajectory and RAD/RTR measures) after
//                     the command finishes. ".md" renders Markdown,
//                     anything else JSON (schema_version in the file).
//   --trace           echo every trace span to stderr as it closes.
//
// Unknown flags are rejected with exit code 2 — the doc-consistency
// check (tools/doc_check.py) relies on that.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/decompose.h"
#include "core/horizontal_partition.h"
#include "core/measures.h"
#include "core/run_report.h"
#include "core/structure_summary.h"
#include "obs/counters.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "core/summary_io.h"
#include "core/dendrogram.h"
#include "util/strings.h"
#include "core/measures.h"
#include <fstream>
#include "core/info.h"
#include "core/tuple_clustering.h"
#include "fd/approx.h"
#include "fd/fdep.h"
#include "fd/min_cover.h"
#include "fd/keys.h"
#include "fd/mvd.h"
#include "fd/tane.h"
#include "model/fit.h"
#include "model/model_bundle.h"
#include "model/refit.h"
#include "relation/csv_io.h"
#include "relation/row_source.h"
#include "relation/source_stats.h"
#include "relation/stats.h"
#include "schemes/entropy_oracle.h"
#include "schemes/mine.h"
#include "datagen/db2_sample.h"
#include "datagen/dblp.h"

namespace {

using namespace limbo;  // NOLINT

struct Args {
  std::string command;
  std::string input;
  std::map<std::string, std::string> flags;

  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

// Command-specific sections contributed to the --report output. Commands
// only pay for report-building work while a report was requested.
bool g_collect_report = false;
std::vector<limbo::obs::ReportSection> g_report_sections;

void AddReportSection(limbo::obs::ReportSection section) {
  if (g_collect_report) g_report_sections.push_back(std::move(section));
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: limbo-tool <profile|summary|duplicates|values|fds|approx-fds|"
      "mvds|keys|rank|schemes|partition|decompose|summaries|report|fit|refit|"
      "inspect|generate> data.csv [--flag=value ...]\n");
  return 2;
}

/// Rejects flags the selected command does not understand (exit code 2).
/// Every command additionally accepts the global flags --threads, --report
/// and --trace.
int ValidateFlags(const Args& args) {
  static const std::map<std::string, std::vector<const char*>> kCommandFlags = {
      {"profile", {}},
      {"summary", {"phi-t", "phi-v", "psi"}},
      {"duplicates", {"phi-t"}},
      {"values", {"phi-v"}},
      {"fds", {"miner", "min-cover"}},
      {"approx-fds", {"epsilon", "max-lhs"}},
      {"mvds", {"max-lhs"}},
      {"keys", {"max-size"}},
      {"rank", {"psi"}},
      {"schemes", {"epsilon", "max-sep", "max-schemes"}},
      {"partition", {"k", "phi", "max-k", "stream", "stats", "chunk"}},
      {"decompose", {"psi", "out"}},
      {"summaries", {"phi-t", "out", "stream", "stats", "chunk"}},
      {"report", {"phi-t", "phi-v", "psi", "out"}},
      {"fit",
       {"phi-t", "phi-v", "psi", "k", "model-out", "no-refit-state", "schemes",
        "schemes-epsilon", "schemes-max-sep"}},
      {"refit",
       {"input", "model-out", "drift-moderate", "drift-severe", "chunk"}},
      {"inspect", {}},
      {"generate", {"out", "tuples", "seed"}},
  };
  auto it = kCommandFlags.find(args.command);
  if (it == kCommandFlags.end()) return Usage();
  for (const auto& [flag, value] : args.flags) {
    (void)value;
    if (flag == "threads" || flag == "report" || flag == "trace") continue;
    bool known = false;
    for (const char* f : it->second) known |= (flag == f);
    if (!known) {
      std::fprintf(stderr, "limbo-tool %s: unknown flag --%s\n",
                   args.command.c_str(), flag.c_str());
      return 2;
    }
  }
  return 0;
}

/// RAD/RTR measures for the top ranked-cover entries as a report table.
obs::ReportSection MeasuresSection(const relation::Relation& rel,
                                   const std::vector<core::RankedFd>& ranked) {
  obs::ReportSection section("measures");
  section.AddField("ranked_fds", static_cast<uint64_t>(ranked.size()));
  section.table.columns = {"fd", "rank", "anchored", "rad", "rtr"};
  size_t shown = 0;
  for (const auto& r : ranked) {
    if (++shown > 15) break;
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    section.table.rows.push_back(
        {obs::ReportValue::String(r.fd.ToString(rel.schema())),
         obs::ReportValue::Number(r.rank),
         obs::ReportValue::Boolean(r.anchored),
         obs::ReportValue::Number(core::Rad(rel, attrs)),
         obs::ReportValue::Number(core::Rtr(rel, attrs))});
  }
  return section;
}

/// Writes the --report file assembled from the command's sections plus the
/// trace/counter snapshot. Markdown when the path ends in ".md", else JSON.
int WriteRunReport(const Args& args) {
  const std::string path = args.GetString("report", "");
  obs::RunReport report = core::AssembleRunReport(
      "limbo-tool " + args.command, std::move(g_report_sections));
  const bool markdown =
      path.size() >= 3 && path.compare(path.size() - 3, 3, ".md") == 0;
  const std::string body = markdown ? report.ToMarkdown() : report.ToJson();
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  file << body;
  std::printf("wrote run report %s (%zu bytes)\n", path.c_str(), body.size());
  return 0;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->command = argv[1];
  args->input = argv[2];
  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return false;
    const char* eq = std::strchr(arg, '=');
    if (eq != nullptr) {
      args->flags[std::string(arg + 2, eq - arg - 2)] = eq + 1;
    } else {
      args->flags[arg + 2] = "1";
    }
  }
  return true;
}

/// Mines FDs with the requested (or size-appropriate) miner.
util::Result<std::vector<fd::FunctionalDependency>> MineFds(
    const relation::Relation& rel, const std::string& miner) {
  if (miner == "fdep" ||
      (miner == "auto" && rel.NumTuples() <= 2000)) {
    return fd::Fdep::Mine(rel);
  }
  fd::TaneOptions options;
  options.min_lhs = 1;
  return fd::Tane::Mine(rel, options);
}

int CmdProfile(const relation::Relation& rel, const Args&) {
  std::printf("%s", relation::Profile(rel).ToString().c_str());
  return 0;
}

int CmdSummary(const relation::Relation& rel, const Args& args) {
  core::StructureSummaryOptions options;
  options.phi_t = args.GetDouble("phi-t", options.phi_t);
  options.phi_v = args.GetDouble("phi-v", options.phi_v);
  options.psi = args.GetDouble("psi", options.psi);
  auto summary = core::SummarizeStructure(rel, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", summary->ToString(rel).c_str());
  if (g_collect_report) {
    if (summary->has_grouping) {
      AddReportSection(core::TrajectorySection(
          summary->grouping.aib.merges(), "attribute_grouping_trajectory"));
    }
    AddReportSection(MeasuresSection(rel, summary->ranked_cover));
  }
  return 0;
}

int CmdDuplicates(const relation::Relation& rel, const Args& args) {
  core::DuplicateTupleOptions options;
  options.phi_t = args.GetDouble("phi-t", options.phi_t);
  auto report = core::FindDuplicateTuples(rel, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("summaries: %zu leaves (%zu heavy); candidate groups: %zu\n",
              report->num_leaves, report->num_heavy_leaves,
              report->groups.size());
  for (const auto& group : report->groups) {
    std::printf("group (%zu tuples):\n", group.tuples.size());
    for (relation::TupleId t : group.tuples) {
      std::printf("  t%-6u", t);
      for (size_t a = 0; a < rel.NumAttributes() && a < 8; ++a) {
        std::printf(" %s", rel.TextAt(t, a).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

int CmdValues(const relation::Relation& rel, const Args& args) {
  core::ValueClusteringOptions options;
  options.phi_v = args.GetDouble("phi-v", options.phi_v);
  auto result = core::ClusterValues(rel, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu value groups, %zu duplicate (CV_D)\n",
              result->groups.size(), result->duplicate_groups.size());
  for (size_t gi : result->duplicate_groups) {
    std::printf("  {");
    const auto& group = result->groups[gi];
    for (size_t i = 0; i < group.values.size(); ++i) {
      if (i) std::printf(", ");
      std::printf("%s", rel.dictionary()
                            .QualifiedName(rel.schema(), group.values[i])
                            .c_str());
    }
    std::printf("}\n");
  }
  return 0;
}

int CmdFds(const relation::Relation& rel, const Args& args) {
  auto fds = MineFds(rel, args.GetString("miner", "auto"));
  if (!fds.ok()) {
    std::fprintf(stderr, "%s\n", fds.status().ToString().c_str());
    return 1;
  }
  std::vector<fd::FunctionalDependency> shown = *fds;
  if (args.Has("min-cover")) {
    shown = fd::MinimumCover(shown);
    std::printf("# %zu minimal FDs; minimum cover of %zu:\n", fds->size(),
                shown.size());
  } else {
    std::printf("# %zu minimal FDs:\n", shown.size());
  }
  for (const auto& f : shown) {
    std::printf("%s\n", f.ToString(rel.schema()).c_str());
  }
  return 0;
}

int CmdApproxFds(const relation::Relation& rel, const Args& args) {
  fd::ApproxMinerOptions options;
  options.epsilon = args.GetDouble("epsilon", options.epsilon);
  options.max_lhs = args.GetSize("max-lhs", options.max_lhs);
  auto fds = fd::MineApproximateFds(rel, options);
  if (!fds.ok()) {
    std::fprintf(stderr, "%s\n", fds.status().ToString().c_str());
    return 1;
  }
  std::printf("# %zu approximate FDs (g3 <= %.3f, LHS <= %zu):\n",
              fds->size(), options.epsilon, options.max_lhs);
  for (const auto& f : *fds) {
    std::printf("g3=%.4f  %s\n", f.g3, f.fd.ToString(rel.schema()).c_str());
  }
  return 0;
}

int CmdMvds(const relation::Relation& rel, const Args& args) {
  fd::MvdMinerOptions options;
  options.max_lhs = args.GetSize("max-lhs", options.max_lhs);
  auto mvds = fd::MineMvds(rel, options);
  if (!mvds.ok()) {
    std::fprintf(stderr, "%s\n", mvds.status().ToString().c_str());
    return 1;
  }
  std::printf("# %zu non-FD multi-valued dependencies (LHS <= %zu):\n",
              mvds->size(), options.max_lhs);
  for (const auto& mvd : *mvds) {
    std::printf("%s\n", mvd.ToString(rel.schema()).c_str());
  }
  return 0;
}

int CmdKeys(const relation::Relation& rel, const Args& args) {
  fd::KeyMinerOptions options;
  options.max_size = args.GetSize("max-size", 4);
  auto keys = fd::MineMinimalKeys(rel, options);
  if (!keys.ok()) {
    std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
    return 1;
  }
  std::printf("# %zu minimal keys (width <= %zu):\n", keys->size(),
              options.max_size);
  for (fd::AttributeSet key : *keys) {
    std::printf("%s\n", key.ToString(rel.schema()).c_str());
  }
  return 0;
}

int CmdRank(const relation::Relation& rel, const Args& args) {
  core::StructureSummaryOptions options;
  options.psi = args.GetDouble("psi", options.psi);
  auto summary = core::SummarizeStructure(rel, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("# ranked minimum cover (lower rank = more redundancy):\n");
  for (const auto& r : summary->ranked_cover) {
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    std::printf("rank=%.4f%s %s  RAD=%.3f RTR=%.3f\n", r.rank,
                r.anchored ? "*" : " ", r.fd.ToString(rel.schema()).c_str(),
                core::Rad(rel, attrs), core::Rtr(rel, attrs));
  }
  if (g_collect_report) {
    if (summary->has_grouping) {
      AddReportSection(core::TrajectorySection(
          summary->grouping.aib.merges(), "attribute_grouping_trajectory"));
    }
    AddReportSection(MeasuresSection(rel, summary->ranked_cover));
  }
  return 0;
}

/// Mines approximate acyclic schemes: a streamed entropy oracle over the
/// relation feeds the J-measure search. The printed error per scheme is
/// its J-measure — the KL cost in bits of pretending the relation joins
/// losslessly from the scheme's bags.
int CmdSchemes(const relation::Relation& rel, const Args& args) {
  relation::RelationRowSource source(rel);
  schemes::EntropyOracleOptions oracle_options;
  oracle_options.threads = args.GetSize("threads", 0);
  schemes::EntropyOracle oracle(source, oracle_options);
  schemes::MineOptions options;
  options.epsilon = args.GetDouble("epsilon", options.epsilon);
  options.max_separator = args.GetSize("max-sep", options.max_separator);
  options.max_schemes = args.GetSize("max-schemes", options.max_schemes);
  auto result = schemes::MineAcyclicSchemes(oracle, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("# H(Omega) = %.4f bits over %" PRIu64
              " rows; %zu approximate acyclic schemes (J <= %.4f):\n",
              result->total_entropy, result->num_rows,
              result->schemes.size(), options.epsilon);
  for (const auto& scheme : result->schemes) {
    std::printf("%s\n", scheme.ToString(rel.schema()).c_str());
  }
  std::printf("# separators tried: %" PRIu64 "; pairs pruned %" PRIu64
              " / evaluated %" PRIu64 "; oracle passes %" PRIu64
              " (%" PRIu64 " sets, %" PRIu64 " memo hits)\n",
              result->separators_tried, result->pairs_pruned,
              result->pairs_evaluated, oracle.stats().passes,
              oracle.stats().sets_counted, oracle.stats().memo_hits);
  if (g_collect_report) {
    obs::ReportSection section("schemes");
    section.AddField("total_entropy", result->total_entropy);
    section.AddField("epsilon", options.epsilon);
    section.AddField("separators_tried", result->separators_tried);
    section.AddField("pairs_pruned", result->pairs_pruned);
    section.AddField("pairs_evaluated", result->pairs_evaluated);
    section.AddField("oracle_passes", oracle.stats().passes);
    section.AddField("oracle_sets", oracle.stats().sets_counted);
    section.table.columns = {"scheme", "bags", "j_measure"};
    for (const auto& scheme : result->schemes) {
      section.table.rows.push_back(
          {obs::ReportValue::String(scheme.ToString(rel.schema())),
           obs::ReportValue::Integer(scheme.bags.size()),
           obs::ReportValue::Number(scheme.j_measure)});
    }
    AddReportSection(std::move(section));
  }
  return 0;
}

core::HorizontalPartitionOptions PartitionOptions(const Args& args) {
  core::HorizontalPartitionOptions options;
  options.k = args.GetSize("k", 0);
  options.phi = args.GetDouble("phi", options.phi);
  options.max_k = args.GetSize("max-k", options.max_k);
  options.threads = args.GetSize("threads", 0);
  options.stream_chunk = args.GetSize("chunk", 0);
  return options;
}

/// Shared output of the materialized and streamed partition commands —
/// they print identically apart from the streamed scan-count line.
int PrintPartitionResult(const core::HorizontalPartitionResult& result) {
  std::printf("k = %zu (%zu Phase-1 summaries); candidate ks:",
              result.chosen_k, result.num_leaves);
  for (size_t k : result.candidate_ks) std::printf(" %zu", k);
  std::printf("\n");
  for (size_t c = 0; c < result.cluster_sizes.size(); ++c) {
    std::printf("  cluster %zu: %zu tuples, %zu distinct values\n", c + 1,
                result.cluster_sizes[c], result.cluster_value_counts[c]);
  }
  std::printf("choice-of-k statistics:\n");
  for (const auto& s : result.stats) {
    std::printf("  k=%-4zu deltaI=%.5f H(C|V)=%.5f\n", s.k, s.delta_i,
                s.conditional_entropy);
  }
  const core::PhaseTimings& t = result.timings;
  // Only phases that actually ran are reported: a caller-fixed k skips the
  // Phase-3 scan inside RunLimbo, so phase3_* would be stale zeros.
  std::printf("timings (threads=%zu): phase1=%.3fs phase2=%.3fs (%" PRIu64
              " distance evals)",
              t.threads, t.phase1_seconds, t.phase2_seconds,
              t.phase2_distance_evals);
  if (t.phase3_ran) std::printf(" phase3=%.3fs", t.phase3_seconds);
  std::printf("\n");
  if (t.streamed) {
    // Same gating as TimingsSection: the re-scan counter exists only when
    // Phase 3 actually ran.
    std::printf("streamed: %" PRIu64 " source scans", t.source_scans);
    if (t.phase3_ran) {
      std::printf(", %" PRIu64 " phase-3 re-scans", t.phase3_source_rescans);
    }
    std::printf("\n");
  }
  if (g_collect_report) {
    AddReportSection(core::TimingsSection(t));
    obs::ReportSection choice("choice_of_k");
    choice.AddField("chosen_k", static_cast<uint64_t>(result.chosen_k));
    choice.AddField("num_leaves", static_cast<uint64_t>(result.num_leaves));
    choice.table.columns = {"k", "delta_i", "h_c_given_v"};
    for (const auto& s : result.stats) {
      choice.table.rows.push_back(
          {obs::ReportValue::Integer(s.k), obs::ReportValue::Number(s.delta_i),
           obs::ReportValue::Number(s.conditional_entropy)});
    }
    AddReportSection(choice);
  }
  return 0;
}

int CmdPartition(const relation::Relation& rel, const Args& args) {
  auto result = core::HorizontallyPartition(rel, PartitionOptions(args));
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  return PrintPartitionResult(*result);
}

/// Source stats for a streamed command: loads the --stats sidecar when one
/// exists, otherwise runs the counting pass (and writes the sidecar when
/// --stats named a path, so the next run skips the pass).
util::Result<relation::SourceStats> LoadOrCollectStats(
    relation::RowSource& source, const Args& args) {
  const std::string stats_path = args.GetString("stats", "");
  if (!stats_path.empty() && std::ifstream(stats_path).good()) {
    return relation::LoadSourceStats(stats_path);
  }
  auto stats = relation::CollectSourceStats(source);
  if (stats.ok() && !stats_path.empty()) {
    util::Status saved = relation::SaveSourceStats(*stats, stats_path);
    if (!saved.ok()) return saved;
    std::printf("wrote stats sidecar %s (%zu rows, %zu values)\n",
                stats_path.c_str(), stats->num_rows,
                stats->dictionary.NumValues());
  }
  return stats;
}

int CmdPartitionStream(const Args& args) {
  auto source = relation::CsvFileSource::Open(args.input);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto stats = LoadOrCollectStats(*source, args);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  core::TupleObjectStream objects(*source, *stats);
  auto result =
      core::HorizontallyPartitionStream(objects, PartitionOptions(args));
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  return PrintPartitionResult(*result);
}

int CmdDecompose(const relation::Relation& rel, const Args& args) {
  core::StructureSummaryOptions options;
  options.psi = args.GetDouble("psi", options.psi);
  auto summary = core::SummarizeStructure(rel, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::vector<fd::FunctionalDependency> anchored;
  for (const auto& r : summary->ranked_cover) {
    if (r.anchored) anchored.push_back(r.fd);
  }
  fd::KeyMinerOptions key_options;
  key_options.max_size = 3;
  auto keys = fd::MineMinimalKeys(rel, key_options);
  if (keys.ok()) {
    for (const auto& f : anchored) {
      std::printf("%s %s\n",
                  fd::ViolatesBcnf(f, *keys) ? "BCNF-violating:" : "in BCNF: ",
                  f.ToString(rel.schema()).c_str());
    }
  }
  auto fragments = core::DecomposeGreedily(rel, anchored);
  if (!fragments.ok()) {
    std::fprintf(stderr, "%s\n", fragments.status().ToString().c_str());
    return 1;
  }
  size_t original_cells = rel.NumTuples() * rel.NumAttributes();
  size_t cells = 0;
  for (const auto& fragment : *fragments) {
    cells += fragment.NumTuples() * fragment.NumAttributes();
  }
  std::printf("decomposed into %zu fragments using %zu anchored FDs; "
              "cells %zu -> %zu (%.1f%% saved)\n",
              fragments->size(), anchored.size(), original_cells, cells,
              100.0 * (1.0 - static_cast<double>(cells) /
                                 static_cast<double>(original_cells)));
  const std::string prefix = args.GetString("out", "");
  for (size_t i = 0; i < fragments->size(); ++i) {
    const auto& fragment = (*fragments)[i];
    std::printf("fragment %zu: %zu tuples x %zu attributes (", i + 1,
                fragment.NumTuples(), fragment.NumAttributes());
    for (size_t a = 0; a < fragment.NumAttributes(); ++a) {
      std::printf("%s%s", a ? "," : "", fragment.schema().Name(a).c_str());
    }
    std::printf(")\n");
    if (!prefix.empty()) {
      const std::string path =
          prefix + "_fragment" + std::to_string(i + 1) + ".csv";
      util::Status s = relation::WriteCsv(fragment, path);
      if (!s.ok()) {
        std::fprintf(stderr, "write %s: %s\n", path.c_str(),
                     s.ToString().c_str());
        return 1;
      }
      std::printf("  wrote %s\n", path.c_str());
    }
  }
  return 0;
}

}  // namespace

int CmdReport(const relation::Relation& rel, const Args& args) {
  core::StructureSummaryOptions options;
  options.phi_t = args.GetDouble("phi-t", options.phi_t);
  options.phi_v = args.GetDouble("phi-v", options.phi_v);
  options.psi = args.GetDouble("psi", options.psi);
  auto summary = core::SummarizeStructure(rel, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::string md = "# Structure report: " + args.input + "\n\n";
  md += util::StrFormat(
      "%zu tuples x %zu attributes, %zu distinct values.\n\n",
      summary->profile.tuples, summary->profile.attributes,
      summary->profile.distinct_values);
  md += "## Column profile\n\n";
  md += "| attribute | distinct | null % | entropy | flags |\n";
  md += "|---|---|---|---|---|\n";
  for (const auto& col : summary->profile.columns) {
    md += util::StrFormat(
        "| %s | %zu | %.1f | %.3f | %s |\n", col.name.c_str(),
        col.distinct_values, 100.0 * col.null_fraction, col.entropy,
        col.is_key ? "key" : (col.is_constant ? "constant" : ""));
  }
  md += util::StrFormat(
      "\n## Duplicate tuple candidates\n\n%zu group(s) from %zu "
      "summaries.\n",
      summary->duplicates.groups.size(), summary->duplicates.num_leaves);
  for (size_t g = 0; g < summary->duplicates.groups.size() && g < 10; ++g) {
    md += "- rows:";
    for (relation::TupleId t : summary->duplicates.groups[g].tuples) {
      md += util::StrFormat(" %u", t);
    }
    md += "\n";
  }
  md += util::StrFormat(
      "\n## Duplicate value groups (CV_D)\n\n%zu of %zu groups:\n\n",
      summary->values.duplicate_groups.size(), summary->values.groups.size());
  size_t shown = 0;
  for (size_t gi : summary->values.duplicate_groups) {
    if (++shown > 15) break;
    md += "- {";
    const auto& group = summary->values.groups[gi];
    for (size_t i = 0; i < group.values.size() && i < 6; ++i) {
      if (i) md += ", ";
      md += rel.dictionary().QualifiedName(rel.schema(), group.values[i]);
    }
    if (group.values.size() > 6) md += ", ...";
    md += "}\n";
  }
  if (summary->has_grouping) {
    std::vector<std::string> leaf_labels;
    for (relation::AttributeId a : summary->grouping.attributes) {
      leaf_labels.push_back(rel.schema().Name(a));
    }
    md += "\n## Attribute dendrogram\n\n```\n";
    md += core::RenderDendrogram(summary->grouping.aib, leaf_labels);
    md += "```\n";
  }
  md += util::StrFormat("\n## Ranked dependencies (%zu mined)\n\n",
                        summary->num_fds);
  md += "| rank | anchored | FD | RAD | RTR |\n|---|---|---|---|---|\n";
  shown = 0;
  for (const auto& r : summary->ranked_cover) {
    if (++shown > 15) break;
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    md += util::StrFormat("| %.4f | %s | `%s` | %.3f | %.3f |\n", r.rank,
                          r.anchored ? "yes" : "", 
                          r.fd.ToString(rel.schema()).c_str(),
                          core::Rad(rel, attrs), core::Rtr(rel, attrs));
  }
  const std::string out = args.GetString("out", args.input + ".report.md");
  std::ofstream file(out, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  file << md;
  std::printf("wrote %s (%zu bytes)\n", out.c_str(), md.size());
  return 0;
}

int CmdSummaries(const relation::Relation& rel, const Args& args) {
  const double phi_t = args.GetDouble("phi-t", 0.5);
  const auto objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const auto& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = phi_t;
  const double threshold = phi_t * info / static_cast<double>(objects.size());
  const auto leaves = core::LimboPhase1(objects, options, threshold);
  const std::string out = args.GetString("out", args.input + ".dcf");
  core::DcfMeta meta;
  meta.has_clustering = true;
  meta.phi = phi_t;
  meta.mutual_information = info;
  meta.threshold = threshold;
  util::Status s = core::SaveDcfs(leaves, meta, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu Phase-1 summaries (phi_T=%.2f, I=%.4f bits) to %s\n",
              leaves.size(), phi_t, info, out.c_str());
  return 0;
}

/// Streamed Phase-1 summaries: two I(V;T) scans through the accumulator,
/// then one Phase-1 insert scan. Only the stats, the DCF tree and one
/// chunk of objects are ever resident; leaves and the printed message are
/// bit-identical to CmdSummaries.
int CmdSummariesStream(const Args& args) {
  const double phi_t = args.GetDouble("phi-t", 0.5);
  auto source = relation::CsvFileSource::Open(args.input);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto stats = LoadOrCollectStats(*source, args);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  core::TupleObjectStream objects(*source, *stats);
  const size_t chunk = args.GetSize("chunk", 4096);
  auto scan = [&](auto&& fn) -> util::Status {
    while (true) {
      auto part = objects.NextChunk(chunk);
      if (!part.ok()) return part.status();
      if (part->empty()) break;
      for (const core::Dcf& o : *part) fn(o);
    }
    return objects.Reset();
  };
  core::MutualInformationAccumulator info;
  util::Status s =
      scan([&](const core::Dcf& o) { info.AddMarginal(o.p, o.cond); });
  if (s.ok()) {
    s = scan([&](const core::Dcf& o) { info.AddInformation(o.p, o.cond); });
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const double mi = info.Value();
  core::LimboOptions options;
  options.phi = phi_t;
  const double threshold = phi_t * mi / static_cast<double>(stats->num_rows);
  core::Phase1Builder builder(options, threshold);
  s = scan([&](const core::Dcf& o) { builder.Insert(o); });
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const auto leaves = builder.Leaves();
  const std::string out = args.GetString("out", args.input + ".dcf");
  core::DcfMeta meta;
  meta.has_clustering = true;
  meta.phi = phi_t;
  meta.mutual_information = mi;
  meta.threshold = threshold;
  s = core::SaveDcfs(leaves, meta, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu Phase-1 summaries (phi_T=%.2f, I=%.4f bits) to %s\n",
              leaves.size(), phi_t, mi, out.c_str());
  return 0;
}

/// Freezes a full LIMBO run into a .limbo model bundle for limbo-serve.
int CmdFit(const relation::Relation& rel, const Args& args) {
  model::FitOptions options;
  options.phi_t = args.GetDouble("phi-t", options.phi_t);
  options.phi_v = args.GetDouble("phi-v", options.phi_v);
  options.psi = args.GetDouble("psi", options.psi);
  options.k = args.GetSize("k", options.k);
  options.threads = args.GetSize("threads", 0);
  options.refit_state = !args.Has("no-refit-state");
  options.mine_schemes = args.Has("schemes");
  options.schemes_epsilon =
      args.GetDouble("schemes-epsilon", options.schemes_epsilon);
  options.schemes_max_separator =
      args.GetSize("schemes-max-sep", options.schemes_max_separator);
  auto bundle = model::FitModel(rel, options);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const std::string out = args.GetString("model-out", args.input + ".limbo");
  util::Status s = model::Save(*bundle, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote model bundle %s (%" PRIu64 " rows, %zu clusters, %zu value "
      "groups, %zu ranked FDs)\n",
      out.c_str(), bundle->num_rows, bundle->representatives.size(),
      bundle->value_groups.size(), bundle->ranked_fds.size());
  if (bundle->has_schemes) {
    std::printf("mined %zu acyclic schemes (epsilon %.4f, H(Omega) %.4f "
                "bits)\n",
                bundle->schemes.size(), bundle->schemes_epsilon,
                bundle->schemes_total_entropy);
  }
  return 0;
}

using model::DriftClassName;

/// Absorbs new rows into a fitted bundle via the rehydrated Phase-1 tree.
/// Exit codes: 0 = child written, 2 = usage, 3 = severe drift (nothing
/// written — run a full fit), 1 = any other error.
int CmdRefit(const Args& args) {
  const std::string rows_path = args.GetString("input", "");
  if (rows_path.empty()) {
    std::fprintf(stderr,
                 "limbo-tool refit: --input=<new_rows.csv> is required\n");
    return 2;
  }
  auto parent = model::Load(args.input);
  if (!parent.ok()) {
    std::fprintf(stderr, "%s\n", parent.status().ToString().c_str());
    return 1;
  }
  auto source = relation::CsvFileSource::Open(rows_path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  model::RefitOptions options;
  options.drift_moderate =
      args.GetDouble("drift-moderate", options.drift_moderate);
  options.drift_severe = args.GetDouble("drift-severe", options.drift_severe);
  options.threads = args.GetSize("threads", 0);
  options.chunk_rows = args.GetSize("chunk", options.chunk_rows);
  auto result = model::RefitModel(*parent, *source, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("absorbed %" PRIu64
              " rows: drift %.4f (new mean loss %.6f / fit mean loss %.6f) "
              "-> %s\n",
              result->rows_absorbed, result->drift_score,
              result->new_rows_mean_loss, result->fit_mean_loss,
              DriftClassName(result->drift_class));
  if (result->drift_class == model::DriftClass::kSevere) {
    std::fprintf(stderr,
                 "severe drift (score %.4f >= %.4f): refusing to patch; run "
                 "a full fit on the combined data\n",
                 result->drift_score, options.drift_severe);
    return 3;
  }
  const std::string out = args.GetString("model-out", args.input);
  util::Status s = model::Save(result->bundle, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote refitted bundle %s (generation %u, %" PRIu64
              " rows, parent %016" PRIx64 ")\n",
              out.c_str(), result->bundle.lineage.refit_generation,
              result->bundle.num_rows, result->bundle.lineage.parent_checksum);
  return 0;
}

/// Prints a bundle's header, section inventory, and lineage.
int CmdInspect(const Args& args) {
  auto bundle = model::Load(args.input);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("bundle: %s\n", args.input.c_str());
  std::printf("format version: %u\n", bundle->format_version);
  std::printf("payload checksum: %016" PRIx64 "\n", bundle->payload_checksum);
  std::printf("rows: %" PRIu64 "\n", bundle->num_rows);
  std::printf("attributes: %zu\n", bundle->schema.NumAttributes());
  std::printf("values: %zu\n", bundle->dictionary.NumValues());
  std::printf("clusters: %zu\n", bundle->representatives.size());
  std::printf("value groups: %zu (%zu duplicate)\n",
              bundle->value_groups.size(), bundle->duplicate_groups.size());
  std::printf("ranked FDs: %zu\n", bundle->ranked_fds.size());
  std::printf("grouping: %s\n", bundle->has_grouping ? "yes" : "no");
  if (bundle->has_schemes) {
    std::printf("schemes: %zu (epsilon %.4f, max separator %" PRIu64
                ", H(Omega) %.4f bits)\n",
                bundle->schemes.size(), bundle->schemes_epsilon,
                bundle->schemes_max_separator,
                bundle->schemes_total_entropy);
    for (const model::BundleScheme& s : bundle->schemes) {
      std::printf("  sep=%016" PRIx64 " bags=%zu j=%.6f\n", s.separator_bits,
                  s.bag_bits.size(), s.j_measure);
    }
  } else {
    std::printf("schemes: none\n");
  }
  if (bundle->has_phase1_tree) {
    const core::DcfTree::Stats& t = bundle->phase1_tree.stats;
    std::printf("refit state: yes (%" PRIu64 " leaf entries, %" PRIu64
                " nodes, height %" PRIu64 ")\n",
                static_cast<uint64_t>(t.num_leaf_entries),
                static_cast<uint64_t>(t.num_nodes),
                static_cast<uint64_t>(t.height));
  } else {
    std::printf("refit state: no\n");
  }
  if (bundle->has_lineage) {
    const model::BundleLineage& l = bundle->lineage;
    std::printf("lineage: generation %u, parent %016" PRIx64 "\n",
                l.refit_generation, l.parent_checksum);
    std::printf("  base rows %" PRIu64 ", absorbed %" PRIu64 " (chain total %"
                PRIu64 ")\n",
                l.base_rows, l.rows_absorbed, l.total_rows_absorbed);
    std::printf("  drift %.4f [%s] (thresholds %.2f / %.2f)\n", l.drift_score,
                DriftClassName(l.drift_class), l.drift_moderate,
                l.drift_severe);
    std::printf("  entropy drift %.4f bits (largest per-attribute |dH|, "
                "absorbed vs parent)\n",
                l.entropy_drift);
  } else {
    std::printf("lineage: none (original fit)\n");
  }
  return 0;
}

int CmdGenerate(const Args& args) {
  util::Result<relation::Relation> rel =
      util::Status::InvalidArgument("unknown dataset: " + args.input);
  if (args.input == "db2") {
    rel = datagen::Db2Sample::JoinedRelation();
  } else if (args.input == "dblp") {
    datagen::DblpOptions options;
    options.target_tuples = args.GetSize("tuples", 50000);
    options.seed = args.GetSize("seed", options.seed);
    rel = datagen::GenerateDblp(options);
  }
  if (!rel.ok()) {
    std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
    return 1;
  }
  const std::string out = args.GetString("out", args.input + ".csv");
  util::Status s = relation::WriteCsv(*rel, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu tuples x %zu attributes)\n", out.c_str(),
              rel->NumTuples(), rel->NumAttributes());
  return 0;
}

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  // --threads=N applies to every command: publish it as LIMBO_THREADS so
  // all thread-count resolution (util::DefaultThreadCount) sees it. Must
  // happen before any clustering call caches the value.
  if (args.Has("threads")) {
    setenv("LIMBO_THREADS", args.GetString("threads", "1").c_str(), 1);
  }
  if (int rc = ValidateFlags(args); rc != 0) return rc;
  if (args.Has("trace")) obs::SetTraceEcho(true);
  g_collect_report = args.Has("report");
  if (g_collect_report) {
    // The report should describe this run only, not whatever the process
    // accumulated before the command dispatch.
    obs::ResetTrace();
    obs::ResetCounters();
    obs::ReportSection run("run");
    run.AddField("command", args.command);
    run.AddField("input", args.input);
    g_report_sections.push_back(std::move(run));
  }
  int rc = 2;
  if (args.command == "generate") {
    rc = CmdGenerate(args);
  } else if (args.command == "refit") {
    // The positional input is a .limbo bundle, not a CSV; the new rows
    // arrive via --input.
    rc = CmdRefit(args);
  } else if (args.command == "inspect") {
    rc = CmdInspect(args);
  } else if (args.Has("stream")) {
    // Streamed commands never materialize the relation — the whole point
    // is that peak memory stays at the DCF tree plus one chunk.
    if (args.command == "partition") rc = CmdPartitionStream(args);
    if (args.command == "summaries") rc = CmdSummariesStream(args);
  } else {
    auto rel = relation::ReadCsv(args.input);
    if (!rel.ok()) {
      std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
      return 1;
    }
    if (args.command == "profile") rc = CmdProfile(*rel, args);
    if (args.command == "summary") rc = CmdSummary(*rel, args);
    if (args.command == "duplicates") rc = CmdDuplicates(*rel, args);
    if (args.command == "values") rc = CmdValues(*rel, args);
    if (args.command == "fds") rc = CmdFds(*rel, args);
    if (args.command == "approx-fds") rc = CmdApproxFds(*rel, args);
    if (args.command == "mvds") rc = CmdMvds(*rel, args);
    if (args.command == "keys") rc = CmdKeys(*rel, args);
    if (args.command == "rank") rc = CmdRank(*rel, args);
    if (args.command == "schemes") rc = CmdSchemes(*rel, args);
    if (args.command == "partition") rc = CmdPartition(*rel, args);
    if (args.command == "decompose") rc = CmdDecompose(*rel, args);
    if (args.command == "summaries") rc = CmdSummaries(*rel, args);
    if (args.command == "report") rc = CmdReport(*rel, args);
    if (args.command == "fit") rc = CmdFit(*rel, args);
  }
  if (rc == 0 && g_collect_report) rc = WriteRunReport(args);
  return rc;
}
