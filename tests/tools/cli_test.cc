// Integration tests for the limbo-tool CLI: every subcommand is executed
// as a subprocess against generated data, asserting exit codes and key
// output fragments. The binary path is injected by CMake as
// LIMBO_TOOL_PATH.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef LIMBO_TOOL_PATH
#error "LIMBO_TOOL_PATH must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunTool(const std::string& args) {
  const std::string command =
      std::string(LIMBO_TOOL_PATH) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string TempCsv() {
  // Per-process path: gtest_discover_tests runs every TEST as its own
  // process, and ctest may run them concurrently — a shared filename
  // would let one process read the sample while another regenerates it.
  static std::string path = [] {
    std::string p = ::testing::TempDir() + "/limbo_cli_db2." +
                    std::to_string(getpid()) + ".csv";
    const RunResult r = RunTool("generate db2 --out=" + p);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    return p;
  }();
  return path;
}

TEST(CliTest, UsageOnBadInvocation) {
  EXPECT_EQ(RunTool("").exit_code, 2);
  const RunResult r = RunTool("profile");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownSubcommandPrintsUsageAndExits2) {
  const RunResult r = RunTool("bogus-command somewhere.csv");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  // The usage line enumerates the real subcommands, so a typo points the
  // user at the right spelling.
  EXPECT_NE(r.output.find("fit"), std::string::npos);
  EXPECT_NE(r.output.find("summaries"), std::string::npos);
}

TEST(CliTest, MissingFileFailsCleanly) {
  const RunResult r = RunTool("profile /nonexistent/nope.csv");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("IoError"), std::string::npos);
}

TEST(CliTest, GenerateAndProfile) {
  const RunResult r = RunTool("profile " + TempCsv());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("90 tuples x 19 attributes"), std::string::npos);
  EXPECT_NE(r.output.find("DeptName"), std::string::npos);
}

TEST(CliTest, Duplicates) {
  const RunResult r = RunTool("duplicates " + TempCsv() + " --phi-t=0.1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("candidate groups"), std::string::npos);
}

TEST(CliTest, Values) {
  const RunResult r = RunTool("values " + TempCsv());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("duplicate (CV_D)"), std::string::npos);
  // The department triple co-occurs perfectly.
  EXPECT_NE(r.output.find("DeptNo=D01"), std::string::npos);
}

TEST(CliTest, FdsWithMinCover) {
  const RunResult r = RunTool("fds " + TempCsv() + " --min-cover");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("minimum cover"), std::string::npos);
  EXPECT_NE(r.output.find("->"), std::string::npos);
}

TEST(CliTest, ApproxFds) {
  const RunResult r = RunTool("approx-fds " + TempCsv() +
                          " --epsilon=0.05 --max-lhs=1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("approximate FDs"), std::string::npos);
}

TEST(CliTest, Keys) {
  const RunResult r = RunTool("keys " + TempCsv() + " --max-size=2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("[EmpNo,ProjNo]"), std::string::npos);
}

TEST(CliTest, RankShowsAnchoredDeptFd) {
  const RunResult r = RunTool("rank " + TempCsv());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("rank="), std::string::npos);
  EXPECT_NE(r.output.find("DeptName"), std::string::npos);
}

TEST(CliTest, Partition) {
  const RunResult r = RunTool("partition " + TempCsv() + " --k=2 --phi=0.3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("cluster 1"), std::string::npos);
  EXPECT_NE(r.output.find("cluster 2"), std::string::npos);
}

TEST(CliTest, DecomposeWritesFragments) {
  const std::string prefix = ::testing::TempDir() + "/limbo_cli_frag";
  const RunResult r =
      RunTool("decompose " + TempCsv() + " --out=" + prefix);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("BCNF"), std::string::npos);
  EXPECT_NE(r.output.find("fragment 1"), std::string::npos);
  const std::string frag1 = prefix + "_fragment1.csv";
  FILE* f = std::fopen(frag1.c_str(), "r");
  ASSERT_NE(f, nullptr) << frag1;
  std::fclose(f);
}

TEST(CliTest, SummariesRoundTrip) {
  const std::string dcf = ::testing::TempDir() + "/limbo_cli.dcf";
  const RunResult r =
      RunTool("summaries " + TempCsv() + " --phi-t=0.5 --out=" + dcf);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Phase-1 summaries"), std::string::npos);
  FILE* f = std::fopen(dcf.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char magic[10] = {};
  ASSERT_EQ(std::fread(magic, 1, 9, f), 9u);
  std::fclose(f);
  EXPECT_EQ(std::string(magic), "limbo-dcf");
}

TEST(CliTest, ReportProducesMarkdown) {
  const std::string out = ::testing::TempDir() + "/limbo_cli_report.md";
  const RunResult r = RunTool("report " + TempCsv() + " --out=" + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  FILE* f = std::fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char head[20] = {};
  ASSERT_GT(std::fread(head, 1, 18, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(head, 18), "# Structure report");
}

TEST(CliTest, SummaryRunsWholePipeline) {
  const RunResult r = RunTool("summary " + TempCsv());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("=== Profile ==="), std::string::npos);
  EXPECT_NE(r.output.find("=== Dependencies"), std::string::npos);
}

TEST(CliTest, UnknownFlagIsRejected) {
  const RunResult r = RunTool("summary " + TempCsv() + " --no-such-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag --no-such-flag"), std::string::npos);
  // A flag valid for one command is still rejected on another.
  EXPECT_EQ(RunTool("profile " + TempCsv() + " --psi=0.5").exit_code, 2);
}

std::string ReadFile(const std::string& path) {
  std::string content;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return content;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  return content;
}

TEST(CliTest, RunReportJsonHasExpectedSections) {
  const std::string out = ::testing::TempDir() + "/limbo_cli_run_report.json";
  const RunResult r = RunTool("summary " + TempCsv() + " --report=" + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("wrote run report"), std::string::npos);
  const std::string json = ReadFile(out);
  ASSERT_FALSE(json.empty());
  // Envelope + the sections the summary command contributes. String
  // checks keep this test parser-free; the obs tests own round-tripping.
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"title\": \"limbo-tool summary\""),
            std::string::npos);
  EXPECT_NE(json.find("\"attribute_grouping_trajectory\""),
            std::string::npos);
  EXPECT_NE(json.find("\"delta_i\""), std::string::npos);
  EXPECT_NE(json.find("\"measures\""), std::string::npos);
  EXPECT_NE(json.find("\"rad\""), std::string::npos);
  EXPECT_NE(json.find("\"rtr\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("dcf_tree.inserts"), std::string::npos);
}

TEST(CliTest, RunReportMarkdownByExtension) {
  const std::string out = ::testing::TempDir() + "/limbo_cli_run_report.md";
  const RunResult r =
      RunTool("partition " + TempCsv() + " --k=2 --report=" + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::string md = ReadFile(out);
  EXPECT_NE(md.find("# limbo-tool partition"), std::string::npos);
  EXPECT_NE(md.find("## phases"), std::string::npos);
  EXPECT_NE(md.find("## choice_of_k"), std::string::npos);
  EXPECT_NE(md.find("## counters"), std::string::npos);
}

TEST(CliTest, TraceFlagEchoesSpans) {
  const RunResult r = RunTool("partition " + TempCsv() + " --k=2 --trace");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("[trace]"), std::string::npos);
  EXPECT_NE(r.output.find("horizontal_partition:"), std::string::npos);
}

TEST(CliTest, FitWritesAModelBundle) {
  const std::string out = ::testing::TempDir() + "/limbo_cli_fit." +
                          std::to_string(getpid()) + ".limbo";
  const RunResult r =
      RunTool("fit " + TempCsv() + " --k=5 --model-out=" + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("wrote model bundle"), std::string::npos);
  EXPECT_NE(r.output.find("5 clusters"), std::string::npos);
  FILE* f = std::fopen(out.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[9] = {};
  ASSERT_EQ(std::fread(magic, 1, 8, f), 8u);
  std::fclose(f);
  EXPECT_EQ(std::string(magic, 8), "LIMBOMDL");
}

TEST(CliTest, PartitionPrintsPhase3OnlyWhenItRan) {
  // The partition pipeline always runs its own Phase-3 assignment scan,
  // so the timings line must include it — and with the phase3_ran guard
  // in place, its value comes from a real measurement, not a stale zero.
  const RunResult r = RunTool("partition " + TempCsv() + " --k=2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("phase3="), std::string::npos);
}

}  // namespace
