// End-to-end tests for the limbo-serve binary: fit a bundle with
// limbo-tool, then drive queries through `limbo-serve --once` and check
// the responses against the batch artifacts loaded via the C++ API.
// Binary paths are injected by CMake as LIMBO_TOOL_PATH/LIMBO_SERVE_PATH.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "model/model_bundle.h"
#include "relation/csv_io.h"
#include "util/json.h"

#ifndef LIMBO_TOOL_PATH
#error "LIMBO_TOOL_PATH must be defined by the build"
#endif
#ifndef LIMBO_SERVE_PATH
#error "LIMBO_SERVE_PATH must be defined by the build"
#endif

namespace {

using namespace limbo;  // NOLINT

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  result.exit_code = WEXITSTATUS(pclose(pipe));
  return result;
}

/// Paths of the per-process db2 sample and its fitted bundle, generated
/// once (each TEST runs in its own process under gtest_discover_tests).
struct Fixture {
  std::string csv;
  std::string bundle;
};

const Fixture& SharedFixture() {
  static Fixture fixture = [] {
    Fixture f;
    const std::string stem =
        ::testing::TempDir() + "/limbo_serve_cli." + std::to_string(getpid());
    f.csv = stem + ".csv";
    f.bundle = stem + ".limbo";
    RunResult r = RunCommand(std::string(LIMBO_TOOL_PATH) +
                             " generate db2 --out=" + f.csv);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = RunCommand(std::string(LIMBO_TOOL_PATH) + " fit " + f.csv +
                   " --k=5 --model-out=" + f.bundle);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    return f;
  }();
  return fixture;
}

/// Runs `limbo-serve --once` feeding `queries` on stdin; returns the
/// response lines.
std::vector<std::string> ServeOnce(const std::vector<std::string>& queries,
                                   const std::string& extra_flags) {
  const std::string in_path = ::testing::TempDir() + "/limbo_serve_in." +
                              std::to_string(getpid()) + ".jsonl";
  {
    std::ofstream in(in_path, std::ios::binary);
    for (const std::string& q : queries) in << q << "\n";
  }
  const RunResult r =
      RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                 SharedFixture().bundle + " --once " + extra_flags + " < " +
                 in_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < r.output.size()) {
    const size_t end = r.output.find('\n', start);
    if (end == std::string::npos) break;
    lines.push_back(r.output.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::vector<std::string> AssignQueriesForAllRows(
    const relation::Relation& rel) {
  std::vector<std::string> queries;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    std::string q = "{\"op\":\"assign\",\"row\":[";
    for (relation::AttributeId a = 0; a < rel.NumAttributes(); ++a) {
      if (a > 0) q.push_back(',');
      util::AppendJsonString(rel.TextAt(t, a), &q);
    }
    q += "]}";
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(ServeCliTest, InfoQueryReportsTheModel) {
  const RunResult r =
      RunCommand(std::string(LIMBO_SERVE_PATH) + " " + SharedFixture().bundle +
                 " --once --query={\\\"op\\\":\\\"info\\\"}");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(r.output.find("\"rows\":90"), std::string::npos);
  EXPECT_NE(r.output.find("\"clusters\":5"), std::string::npos);
}

// The subsystem's acceptance criterion: serving the fit-time rows back
// through the daemon returns exactly the batch Phase-3 labels, and the
// full response stream is byte-identical at 1 and 4 workers.
TEST(ServeCliTest, OnceAssignMatchesBatchAtEveryWorkerCount) {
  auto rel = relation::ReadCsv(SharedFixture().csv);
  ASSERT_TRUE(rel.ok());
  auto bundle = model::Load(SharedFixture().bundle);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::vector<std::string> queries = AssignQueriesForAllRows(*rel);

  const std::vector<std::string> at1 = ServeOnce(queries, "--workers=1");
  const std::vector<std::string> at4 = ServeOnce(queries, "--workers=4");
  EXPECT_EQ(at1, at4);

  ASSERT_EQ(at1.size(), bundle->assignments.size());
  for (size_t t = 0; t < at1.size(); ++t) {
    auto response = util::ParseJson(at1[t]);
    ASSERT_TRUE(response.ok()) << at1[t];
    const util::JsonValue* cluster = response->Find("cluster");
    ASSERT_NE(cluster, nullptr) << at1[t];
    EXPECT_EQ(cluster->integer, bundle->assignments[t]) << "row " << t;
  }
}

TEST(ServeCliTest, MixedQueryStreamIsDeterministic) {
  const std::vector<std::string> queries = {
      "{\"op\":\"info\"}",
      "{\"op\":\"attrs\"}",
      "{\"op\":\"fds\",\"limit\":3}",
      "{\"op\":\"valuegroup\",\"attr\":\"DeptNo\",\"value\":\"D01\"}",
      "{\"op\":\"nope\"}",
  };
  const std::vector<std::string> at1 = ServeOnce(queries, "--workers=1");
  const std::vector<std::string> at4 = ServeOnce(queries, "--workers=4");
  EXPECT_EQ(at1, at4);
  ASSERT_EQ(at1.size(), queries.size());
  EXPECT_NE(at1[3].find("DeptName=SPIFFY_COMPUTER"), std::string::npos);
  EXPECT_NE(at1[4].find("\"ok\":false"), std::string::npos);
}

TEST(ServeCliTest, MissingBundleFailsCleanly) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH) +
                                 " /nonexistent/nope.limbo --once");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("IoError"), std::string::npos);
}

TEST(ServeCliTest, CorruptBundleFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/limbo_serve_corrupt." +
                           std::to_string(getpid()) + ".limbo";
  {
    std::ifstream in(SharedFixture().bundle, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  const RunResult r =
      RunCommand(std::string(LIMBO_SERVE_PATH) + " " + path + " --once");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("checksum"), std::string::npos);
}

TEST(ServeCliTest, UnknownFlagIsRejected) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                                 SharedFixture().bundle + " --no-such-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(ServeCliTest, NoArgumentsPrintsUsage) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

}  // namespace
