// End-to-end tests for the limbo-serve binary: fit a bundle with
// limbo-tool, then drive queries through `limbo-serve --once` and check
// the responses against the batch artifacts loaded via the C++ API.
// Binary paths are injected by CMake as LIMBO_TOOL_PATH/LIMBO_SERVE_PATH.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "model/model_bundle.h"
#include "relation/csv_io.h"
#include "util/json.h"

#ifndef LIMBO_TOOL_PATH
#error "LIMBO_TOOL_PATH must be defined by the build"
#endif
#ifndef LIMBO_SERVE_PATH
#error "LIMBO_SERVE_PATH must be defined by the build"
#endif

namespace {

using namespace limbo;  // NOLINT

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  result.exit_code = WEXITSTATUS(pclose(pipe));
  return result;
}

/// Paths of the per-process db2 sample and its fitted bundle, generated
/// once (each TEST runs in its own process under gtest_discover_tests).
struct Fixture {
  std::string csv;
  std::string bundle;
};

const Fixture& SharedFixture() {
  static Fixture fixture = [] {
    Fixture f;
    const std::string stem =
        ::testing::TempDir() + "/limbo_serve_cli." + std::to_string(getpid());
    f.csv = stem + ".csv";
    f.bundle = stem + ".limbo";
    RunResult r = RunCommand(std::string(LIMBO_TOOL_PATH) +
                             " generate db2 --out=" + f.csv);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = RunCommand(std::string(LIMBO_TOOL_PATH) + " fit " + f.csv +
                   " --k=5 --model-out=" + f.bundle);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    return f;
  }();
  return fixture;
}

/// Runs `limbo-serve --once` feeding `queries` on stdin; returns the
/// response lines.
std::vector<std::string> ServeOnce(const std::vector<std::string>& queries,
                                   const std::string& extra_flags) {
  const std::string in_path = ::testing::TempDir() + "/limbo_serve_in." +
                              std::to_string(getpid()) + ".jsonl";
  {
    std::ofstream in(in_path, std::ios::binary);
    for (const std::string& q : queries) in << q << "\n";
  }
  const RunResult r =
      RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                 SharedFixture().bundle + " --once " + extra_flags + " < " +
                 in_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < r.output.size()) {
    const size_t end = r.output.find('\n', start);
    if (end == std::string::npos) break;
    lines.push_back(r.output.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::vector<std::string> AssignQueriesForAllRows(
    const relation::Relation& rel) {
  std::vector<std::string> queries;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    std::string q = "{\"op\":\"assign\",\"row\":[";
    for (relation::AttributeId a = 0; a < rel.NumAttributes(); ++a) {
      if (a > 0) q.push_back(',');
      util::AppendJsonString(rel.TextAt(t, a), &q);
    }
    q += "]}";
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(ServeCliTest, InfoQueryReportsTheModel) {
  const RunResult r =
      RunCommand(std::string(LIMBO_SERVE_PATH) + " " + SharedFixture().bundle +
                 " --once --query={\\\"op\\\":\\\"info\\\"}");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(r.output.find("\"rows\":90"), std::string::npos);
  EXPECT_NE(r.output.find("\"clusters\":5"), std::string::npos);
}

// The subsystem's acceptance criterion: serving the fit-time rows back
// through the daemon returns exactly the batch Phase-3 labels, and the
// full response stream is byte-identical at 1 and 4 workers.
TEST(ServeCliTest, OnceAssignMatchesBatchAtEveryWorkerCount) {
  auto rel = relation::ReadCsv(SharedFixture().csv);
  ASSERT_TRUE(rel.ok());
  auto bundle = model::Load(SharedFixture().bundle);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::vector<std::string> queries = AssignQueriesForAllRows(*rel);

  const std::vector<std::string> at1 = ServeOnce(queries, "--workers=1");
  const std::vector<std::string> at4 = ServeOnce(queries, "--workers=4");
  EXPECT_EQ(at1, at4);

  ASSERT_EQ(at1.size(), bundle->assignments.size());
  for (size_t t = 0; t < at1.size(); ++t) {
    auto response = util::ParseJson(at1[t]);
    ASSERT_TRUE(response.ok()) << at1[t];
    const util::JsonValue* cluster = response->Find("cluster");
    ASSERT_NE(cluster, nullptr) << at1[t];
    EXPECT_EQ(cluster->integer, bundle->assignments[t]) << "row " << t;
  }
}

TEST(ServeCliTest, MixedQueryStreamIsDeterministic) {
  const std::vector<std::string> queries = {
      "{\"op\":\"info\"}",
      "{\"op\":\"attrs\"}",
      "{\"op\":\"fds\",\"limit\":3}",
      "{\"op\":\"valuegroup\",\"attr\":\"DeptNo\",\"value\":\"D01\"}",
      "{\"op\":\"nope\"}",
  };
  const std::vector<std::string> at1 = ServeOnce(queries, "--workers=1");
  const std::vector<std::string> at4 = ServeOnce(queries, "--workers=4");
  EXPECT_EQ(at1, at4);
  ASSERT_EQ(at1.size(), queries.size());
  EXPECT_NE(at1[3].find("DeptName=SPIFFY_COMPUTER"), std::string::npos);
  EXPECT_NE(at1[4].find("\"ok\":false"), std::string::npos);
}

TEST(ServeCliTest, MissingBundleFailsCleanly) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH) +
                                 " /nonexistent/nope.limbo --once");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("IoError"), std::string::npos);
}

TEST(ServeCliTest, CorruptBundleFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/limbo_serve_corrupt." +
                           std::to_string(getpid()) + ".limbo";
  {
    std::ifstream in(SharedFixture().bundle, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  const RunResult r =
      RunCommand(std::string(LIMBO_SERVE_PATH) + " " + path + " --once");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("checksum"), std::string::npos);
}

TEST(ServeCliTest, UnknownFlagIsRejected) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                                 SharedFixture().bundle + " --no-such-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(ServeCliTest, NoArgumentsPrintsUsage) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

// Satellite 3: --port is validated as an integer in [0, 65535] instead
// of being fed through std::atoi (which maps garbage to 0 and silently
// truncates out-of-range ports).
TEST(ServeCliTest, PortRejectsNonInteger) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                                 SharedFixture().bundle + " --port=abc");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--port"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[0, 65535]"), std::string::npos) << r.output;
}

TEST(ServeCliTest, PortRejectsOutOfRange) {
  const RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                                 SharedFixture().bundle + " --port=70000");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--port"), std::string::npos) << r.output;
}

TEST(ServeCliTest, PortRejectsNegativeAndTrailingGarbage) {
  RunResult r = RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                           SharedFixture().bundle + " --port=-1");
  EXPECT_EQ(r.exit_code, 2);
  r = RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                 SharedFixture().bundle + " --port=7070x");
  EXPECT_EQ(r.exit_code, 2);
  r = RunCommand(std::string(LIMBO_SERVE_PATH) + " " +
                 SharedFixture().bundle + " --port=");
  EXPECT_EQ(r.exit_code, 2);
}

/// A second bundle (k=2) fitted over the same CSV, for registry tests.
const std::string& CoarseBundle() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/limbo_serve_cli_k2." +
                          std::to_string(getpid()) + ".limbo";
    const RunResult r =
        RunCommand(std::string(LIMBO_TOOL_PATH) + " fit " +
                   SharedFixture().csv + " --k=2 --model-out=" + p);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    return p;
  }();
  return path;
}

// Multi-model registry through the CLI: a positional bundle plus a
// --model flag, routed by the "model" query field.
TEST(ServeCliTest, OnceModeRoutesAcrossRegistry) {
  const std::vector<std::string> responses =
      ServeOnce({"{\"op\":\"models\"}",
                 "{\"op\":\"info\",\"model\":\"coarse\"}",
                 "{\"op\":\"info\"}",
                 "{\"op\":\"info\",\"model\":\"missing\"}"},
                "--model=coarse=" + CoarseBundle());
  ASSERT_EQ(responses.size(), 4u);
  // Two models; the positional bundle (file stem) is the default.
  EXPECT_NE(responses[0].find("\"model\":\"coarse\""), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[0].find("\"is_default\":true"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[1].find("\"clusters\":2"), std::string::npos)
      << responses[1];
  EXPECT_NE(responses[2].find("\"clusters\":5"), std::string::npos)
      << responses[2];
  EXPECT_NE(responses[3].find("\"code\":\"NotFound\""), std::string::npos)
      << responses[3];
}

TEST(ServeCliTest, DefaultModelFlagSelectsTheDefault) {
  const std::vector<std::string> responses = ServeOnce(
      {"{\"op\":\"info\"}"},
      "--model=coarse=" + CoarseBundle() + " --default-model=coarse");
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].find("\"clusters\":2"), std::string::npos)
      << responses[0];
}

/// A forked limbo-serve daemon on an ephemeral port: the fixture execs
/// the real binary, parses the port from its "listening on" line, and
/// delivers signals to it like init/systemd would.
class Daemon {
 public:
  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (out_fd_ >= 0) ::close(out_fd_);
  }

  bool Start(const std::string& extra_flags) {
    int out_pipe[2];
    if (::pipe(out_pipe) != 0) return false;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      const std::string cmd = std::string("exec ") + LIMBO_SERVE_PATH + " " +
                              SharedFixture().bundle + " --port=0 " +
                              extra_flags;
      ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    out_fd_ = out_pipe[0];
    std::string line;
    char c;
    while (line.find('\n') == std::string::npos) {
      const ssize_t n = ::read(out_fd_, &c, 1);
      if (n <= 0) return false;
      line.push_back(c);
    }
    return std::sscanf(line.c_str(), "limbo-serve: listening on 127.0.0.1:%d",
                       &port_) == 1;
  }

  int port() const { return port_; }

  void Signal(int sig) const { ::kill(pid_, sig); }

  /// SIGTERM, then collect the exit status and whatever stdout remains.
  int WaitForCleanExit(std::string* tail) {
    Signal(SIGTERM);
    char buffer[1024];
    ssize_t n;
    while ((n = ::read(out_fd_, buffer, sizeof(buffer))) > 0) {
      tail->append(buffer, static_cast<size_t>(n));
    }
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  int port_ = 0;
};

/// Blocking loopback client against the daemon (sends never raise
/// SIGPIPE in the test itself).
class RawClient {
 public:
  ~RawClient() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t w =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    line->clear();
    for (int spins = 0; spins < 500; ++spins) {
      const size_t newline = buffered_.find('\n');
      if (newline != std::string::npos) {
        line->assign(buffered_, 0, newline);
        buffered_.erase(0, newline + 1);
        return true;
      }
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 10);
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;
      char chunk[4096];
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n == 0) {
        if (buffered_.empty()) return false;
        line->swap(buffered_);
        return true;
      }
      if (n < 0) return false;
      buffered_.append(chunk, static_cast<size_t>(n));
    }
    return false;
  }

  void ShutdownWrite() const { ::shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffered_;
};

TEST(ServeDaemonTest, AnswersOverTcpAndExitsCleanlyOnSigterm) {
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(""));
  RawClient client;
  ASSERT_TRUE(client.Connect(daemon.port()));
  std::string response;
  ASSERT_TRUE(client.Send("{\"op\":\"info\"}\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":5"), std::string::npos) << response;
  client.Close();

  std::string tail;
  EXPECT_EQ(daemon.WaitForCleanExit(&tail), 0) << tail;
  EXPECT_NE(tail.find("shut down cleanly"), std::string::npos) << tail;
}

// Satellite 1 regression, against the real binary: a client killed
// between request and response used to take the whole daemon down with
// SIGPIPE mid-send.
TEST(ServeDaemonTest, SurvivesClientKilledBeforeResponse) {
  Daemon daemon;
  ASSERT_TRUE(daemon.Start("--workers=2"));
  for (int round = 0; round < 10; ++round) {
    RawClient doomed;
    ASSERT_TRUE(doomed.Connect(daemon.port()));
    ASSERT_TRUE(doomed.Send("{\"op\":\"fds\",\"limit\":50}\n"));
    doomed.Close();  // vanish without reading the response
  }
  RawClient checker;
  ASSERT_TRUE(checker.Connect(daemon.port()));
  std::string response;
  ASSERT_TRUE(checker.Send("{\"op\":\"info\"}\n"));
  ASSERT_TRUE(checker.ReadLine(&response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  checker.Close();

  std::string tail;
  EXPECT_EQ(daemon.WaitForCleanExit(&tail), 0) << tail;
}

// Satellite 2 regression: SIGHUP (hot reload) mid-conversation must not
// drop the connection — the EINTR it causes in blocked socket calls is
// retried, and the same connection keeps answering, now at version 2.
TEST(ServeDaemonTest, SighupReloadsWithoutDroppingConnections) {
  Daemon daemon;
  ASSERT_TRUE(daemon.Start("--model=coarse=" + CoarseBundle()));
  RawClient client;
  ASSERT_TRUE(client.Connect(daemon.port()));
  std::string response;
  ASSERT_TRUE(client.Send("{\"op\":\"info\",\"model\":\"coarse\"}\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":2"), std::string::npos) << response;

  daemon.Signal(SIGHUP);
  // The acceptor observes the flag within its poll interval; poll until
  // the models op reports the bumped versions.
  bool reloaded = false;
  for (int spins = 0; spins < 100 && !reloaded; ++spins) {
    ::usleep(20000);
    ASSERT_TRUE(client.Send("{\"op\":\"models\"}\n"));
    ASSERT_TRUE(client.ReadLine(&response));
    reloaded = response.find("\"version\":2") != std::string::npos;
  }
  EXPECT_TRUE(reloaded) << response;

  // Same connection, still serving.
  ASSERT_TRUE(client.Send("{\"op\":\"info\",\"model\":\"coarse\"}\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":2"), std::string::npos) << response;
  client.Close();

  std::string tail;
  EXPECT_EQ(daemon.WaitForCleanExit(&tail), 0) << tail;
}

// Satellite 4 regression: the final query of a connection, sent without
// a trailing newline before shutdown(SHUT_WR), is still answered.
TEST(ServeDaemonTest, AnswersFinalQueryWithoutNewline) {
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(""));
  RawClient client;
  ASSERT_TRUE(client.Connect(daemon.port()));
  ASSERT_TRUE(client.Send("{\"op\":\"info\"}"));  // no newline
  client.ShutdownWrite();
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":5"), std::string::npos) << response;
  client.Close();

  std::string tail;
  EXPECT_EQ(daemon.WaitForCleanExit(&tail), 0) << tail;
}

}  // namespace
