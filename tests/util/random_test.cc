#include "util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace limbo::util {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRespectsProbability) {
  Random rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(RandomTest, ZipfIsSkewedTowardSmallRanks) {
  Random rng(13);
  const uint64_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.Zipf(n, 1.1)];
  // Rank 0 should dominate the tail by a wide margin.
  EXPECT_GT(counts[0], counts[500] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(RandomTest, ZipfBoundaries) {
  Random rng(17);
  EXPECT_EQ(rng.Zipf(1, 1.2), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Zipf(5, 1.0), 5u);
}

}  // namespace
}  // namespace limbo::util
