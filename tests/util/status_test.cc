#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace limbo::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("missing key").ToString(),
            "NotFound: missing key");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chained(int x) {
  LIMBO_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> UsesAssignOrReturn(int x) {
  LIMBO_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace limbo::util
