#include "util/strings.h"

#include <gtest/gtest.h>

namespace limbo::util {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, TrimsAllWhitespaceKinds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\r\n y z \n"), "y z");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.3f", 1.5), "1.500");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(5000, 'q');
  EXPECT_EQ(StrFormat("%s!", long_arg.c_str()).size(), 5001u);
}

}  // namespace
}  // namespace limbo::util
