#include "util/json.h"

#include <cmath>
#include <cstring>

#include "gtest/gtest.h"

namespace limbo::util {
namespace {

TEST(JsonParse, Scalars) {
  auto v = ParseJson("42");
  ASSERT_TRUE(v.ok()) << v.status().message();
  EXPECT_EQ(v->kind, JsonValue::Kind::kInteger);
  EXPECT_EQ(v->integer, 42u);

  v = ParseJson("-3.5");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(v->number, -3.5);

  v = ParseJson("true");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, JsonValue::Kind::kBoolean);
  EXPECT_TRUE(v->boolean);

  v = ParseJson("null");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, JsonValue::Kind::kNull);

  v = ParseJson("\"hi\\n\\\"there\\\"\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, JsonValue::Kind::kString);
  EXPECT_EQ(v->str, "hi\n\"there\"");
}

TEST(JsonParse, NestedObjectPreservesKeyOrder) {
  auto v = ParseJson(
      R"({"b": [1, 2.0, "x"], "a": {"inner": false}, "c": null})");
  ASSERT_TRUE(v.ok()) << v.status().message();
  ASSERT_EQ(v->kind, JsonValue::Kind::kObject);
  ASSERT_EQ(v->object.size(), 3u);
  EXPECT_EQ(v->object[0].first, "b");
  EXPECT_EQ(v->object[1].first, "a");
  EXPECT_EQ(v->object[2].first, "c");
  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_EQ(b->array[0].kind, JsonValue::Kind::kInteger);
  EXPECT_EQ(b->array[1].kind, JsonValue::Kind::kNumber);
  EXPECT_EQ(b->array[2].kind, JsonValue::Kind::kString);
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* inner = a->Find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_FALSE(inner->boolean);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapeAscii) {
  auto v = ParseJson("\"\\u0041\\u000a\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "A\n");
  EXPECT_FALSE(ParseJson("\"\\u00e9\"").ok());
}

TEST(JsonParse, RejectsMalformed) {
  const char* bad[] = {
      "",           "{",           "[1,",       "{\"a\"}",  "{\"a\":}",
      "tru",        "nul",         "\"open",    "1 2",      "{\"a\":1,}",
      "[1]]",       "{1: 2}",      "\"\\q\"",   "--1",      "1.2.3",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParse, ErrorsCarryOffset) {
  auto v = ParseJson("{\"a\": @}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("offset"), std::string::npos);
}

TEST(JsonAppend, StringEscaping) {
  std::string out;
  AppendJsonString("a\"b\\c\nd\te\rf\x01g", &out);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\rf\\u0001g\"");
  auto back = ParseJson(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->str, "a\"b\\c\nd\te\rf\x01g");
}

TEST(JsonAppend, NumberRoundTripsBitExactly) {
  const double values[] = {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-300, 1e300,
                           123456789.0};
  for (double d : values) {
    std::string out;
    AppendJsonNumber(d, &out);
    auto back = ParseJson(out);
    ASSERT_TRUE(back.ok()) << out;
    ASSERT_EQ(back->kind, JsonValue::Kind::kNumber) << out;
    EXPECT_EQ(std::memcmp(&back->number, &d, sizeof(double)), 0) << out;
  }
}

TEST(JsonAppend, IntegralDoubleStaysANumberToken) {
  std::string out;
  AppendJsonNumber(4.0, &out);
  EXPECT_EQ(out, "4.0");
}

std::string Canonical(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << text;
  std::string out;
  AppendCanonicalJson(*parsed, &out);
  return out;
}

// The canonical form backs the serve-layer response-cache key: two
// texts that parse to the same value must canonicalize to the same
// bytes regardless of whitespace or object-key order.
TEST(JsonCanonical, CollapsesWhitespaceAndKeyOrder) {
  const std::string compact = Canonical("{\"a\":1,\"b\":[true,null,\"x\"]}");
  EXPECT_EQ(compact, "{\"a\":1,\"b\":[true,null,\"x\"]}");
  EXPECT_EQ(Canonical("{ \"b\": [ true, null, \"x\" ],\n  \"a\": 1 }"),
            compact);
}

TEST(JsonCanonical, SortsNestedObjectKeys) {
  EXPECT_EQ(Canonical("{\"z\":{\"b\":2,\"a\":1},\"a\":0}"),
            "{\"a\":0,\"z\":{\"a\":1,\"b\":2}}");
}

TEST(JsonCanonical, ArrayOrderIsPreserved) {
  EXPECT_EQ(Canonical("[3,2,1]"), "[3,2,1]");
}

TEST(JsonCanonical, StringsAndNumbersMatchTheirAppenders) {
  std::string want = "{\"k\":";
  AppendJsonNumber(1.0 / 3.0, &want);
  want += ",\"s\":";
  AppendJsonString("a\nb", &want);
  want.push_back('}');
  EXPECT_EQ(Canonical("{\"s\":\"a\\nb\",\"k\":0.3333333333333333}"), want);
}

}  // namespace
}  // namespace limbo::util
