#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace limbo::util {
namespace {

TEST(DefaultThreadCountTest, AtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.ParallelFor(0, 100, 8, [&](size_t lo, size_t hi) {
    EXPECT_LT(lo, hi);
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_FALSE(seen.empty());
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{3}, size_t{4}}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1237;  // not a multiple of any grain below
    for (size_t grain : {size_t{1}, size_t{7}, size_t{64}, size_t{5000}}) {
      std::vector<std::atomic<int>> hits(kN);
      pool.ParallelFor(0, kN, grain, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "index " << i << " threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyAndOffsetRanges) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(5, 5, 4, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
  std::vector<int> hits(20, 0);
  pool.ParallelFor(10, 20, 3, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i], 0);
  for (size_t i = 10; i < 20; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadCount) {
  // Per-index writes: any lane count must produce the identical vector.
  constexpr size_t kN = 501;
  auto run = [&](size_t threads) {
    std::vector<double> out(kN);
    ThreadPool pool(threads);
    pool.ParallelFor(0, kN, 16, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        out[i] = static_cast<double>(i) * 0.1 + 1.0 / (i + 1.0);
      }
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  ThreadPool pool(4);
  std::vector<int64_t> data(256);
  std::iota(data.begin(), data.end(), 0);
  int64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(0, data.size(), 8, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) ++data[i];
    });
    ++expected;
  }
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], static_cast<int64_t>(i) + expected);
  }
}

TEST(ParallelForTest, SharedPoolConvenience) {
  std::vector<int> hits(64, 0);
  ParallelFor(0, hits.size(), 4, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace limbo::util
