// The bit-identity contract of the streaming refactor: RunLimboStreamed
// over a TupleObjectStream (chunked CSV decode, frozen stats) must equal
// RunLimbo over the materialized tuple objects in every output bit —
// mutual information, threshold, leaf DCFs, merge sequence,
// representatives, labels, losses — and in every work counter, at 1 and
// 4 worker lanes and at adversarially small chunk sizes. The horizontal
// partition entry point carries the same contract.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/dcf_stream.h"
#include "core/horizontal_partition.h"
#include "core/limbo.h"
#include "core/run_report.h"
#include "core/tuple_clustering.h"
#include "datagen/dblp.h"
#include "obs/counters.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "relation/csv_io.h"
#include "relation/row_source.h"
#include "relation/source_stats.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

relation::Relation DblpRelation() {
  datagen::DblpOptions options;
  options.target_tuples = 400;
  return datagen::GenerateDblp(options);
}

void ExpectSameDcfs(const std::vector<Dcf>& a, const std::vector<Dcf>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].p, b[i].p) << "dcf " << i;
    ASSERT_EQ(a[i].cond.entries().size(), b[i].cond.entries().size())
        << "dcf " << i;
    for (size_t e = 0; e < a[i].cond.entries().size(); ++e) {
      EXPECT_EQ(a[i].cond.entries()[e].id, b[i].cond.entries()[e].id);
      EXPECT_EQ(a[i].cond.entries()[e].mass, b[i].cond.entries()[e].mass);
    }
  }
}

void ExpectSameResult(const LimboResult& streamed,
                      const LimboResult& materialized) {
  EXPECT_EQ(streamed.mutual_information, materialized.mutual_information);
  EXPECT_EQ(streamed.threshold, materialized.threshold);
  ExpectSameDcfs(streamed.leaves, materialized.leaves);
  const auto& sm = streamed.aib.merges();
  const auto& mm = materialized.aib.merges();
  ASSERT_EQ(sm.size(), mm.size());
  for (size_t i = 0; i < sm.size(); ++i) {
    EXPECT_EQ(sm[i].left, mm[i].left) << "merge " << i;
    EXPECT_EQ(sm[i].right, mm[i].right) << "merge " << i;
    EXPECT_EQ(sm[i].delta_i, mm[i].delta_i) << "merge " << i;
    EXPECT_EQ(sm[i].cumulative_loss, mm[i].cumulative_loss) << "merge " << i;
  }
  ExpectSameDcfs(streamed.representatives, materialized.representatives);
  EXPECT_EQ(streamed.assignments, materialized.assignments);
  EXPECT_EQ(streamed.assignment_loss, materialized.assignment_loss);
  EXPECT_EQ(streamed.tree_stats.num_inserts,
            materialized.tree_stats.num_inserts);
  EXPECT_EQ(streamed.tree_stats.num_merges, materialized.tree_stats.num_merges);
  EXPECT_EQ(streamed.tree_stats.num_nodes, materialized.tree_stats.num_nodes);
  EXPECT_EQ(streamed.timings.phase2_distance_evals,
            materialized.timings.phase2_distance_evals);
  EXPECT_EQ(streamed.timings.phase3_distance_evals,
            materialized.timings.phase3_distance_evals);
}

std::map<std::string, uint64_t> WorkCounters() {
  std::map<std::string, uint64_t> work;
  for (const obs::CounterValue& c : obs::SnapshotCounters()) {
    if (!c.scheduling) work[c.name] = c.value;
  }
  return work;
}

class StreamEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(StreamEquivalenceTest, CsvStreamMatchesMaterializedRun) {
  const size_t threads = GetParam();
  for (const relation::Relation& rel :
       {testing::PaperFigure4(), DblpRelation()}) {
    const std::string csv = relation::ToCsvString(rel);
    LimboOptions options;
    options.phi = 0.5;
    options.k = 3;
    options.threads = threads;

    obs::SetEnabled(true);
    obs::ResetCounters();
    const std::vector<Dcf> objects = BuildTupleObjects(rel);
    auto materialized = RunLimbo(objects, options);
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
    const auto materialized_work = WorkCounters();
    EXPECT_FALSE(materialized->timings.streamed);

    // Chunk sizes straddling the row count, including a pathological 1.
    for (size_t chunk : {size_t{1}, size_t{3}, size_t{4096}}) {
      auto source = relation::CsvStringSource::Open(csv, /*chunk_bytes=*/16);
      ASSERT_TRUE(source.ok());
      auto stats = relation::CollectSourceStats(*source);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      TupleObjectStream stream(*source, *stats);
      options.stream_chunk = chunk;
      obs::ResetCounters();
      auto streamed = RunLimboStreamed(stream, options);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      ExpectSameResult(*streamed, *materialized);
      // Per-chunk counter increments must sum to the materialized totals.
      EXPECT_EQ(WorkCounters(), materialized_work) << "chunk " << chunk;
      EXPECT_TRUE(streamed->timings.streamed);
      EXPECT_EQ(streamed->timings.source_scans, 3u);
      EXPECT_EQ(streamed->timings.phase3_source_rescans, 1u);
    }
  }
}

TEST_P(StreamEquivalenceTest, RelationSourceWithSavedStatsMatches) {
  // The sidecar path: stats frozen by one pass, saved, reloaded, and used
  // to stream a RelationRowSource. Still bit-identical.
  const relation::Relation rel = DblpRelation();
  LimboOptions options;
  options.phi = 0.3;
  options.k = 5;
  options.threads = GetParam();
  auto materialized = RunLimbo(BuildTupleObjects(rel), options);
  ASSERT_TRUE(materialized.ok());

  const std::string path = ::testing::TempDir() + "/stream_equiv.stats";
  ASSERT_TRUE(
      relation::SaveSourceStats(relation::SourceStats::FromRelation(rel), path)
          .ok());
  auto stats = relation::LoadSourceStats(path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  relation::RelationRowSource source(rel);
  TupleObjectStream stream(source, *stats);
  auto streamed = RunLimboStreamed(stream, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ExpectSameResult(*streamed, *materialized);
}

TEST_P(StreamEquivalenceTest, PartitionStreamMatchesMaterialized) {
  const relation::Relation rel = DblpRelation();
  HorizontalPartitionOptions options;
  options.phi = 0.5;
  options.k = 4;
  options.threads = GetParam();
  auto materialized = HorizontallyPartition(rel, options);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();

  const std::string csv = relation::ToCsvString(rel);
  auto source = relation::CsvStringSource::Open(csv);
  ASSERT_TRUE(source.ok());
  auto stats = relation::CollectSourceStats(*source);
  ASSERT_TRUE(stats.ok());
  TupleObjectStream stream(*source, *stats);
  options.stream_chunk = 37;  // force many chunks per scan
  auto streamed = HorizontallyPartitionStream(stream, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  EXPECT_EQ(streamed->chosen_k, materialized->chosen_k);
  EXPECT_EQ(streamed->candidate_ks, materialized->candidate_ks);
  EXPECT_EQ(streamed->assignments, materialized->assignments);
  EXPECT_EQ(streamed->cluster_sizes, materialized->cluster_sizes);
  EXPECT_EQ(streamed->cluster_value_counts,
            materialized->cluster_value_counts);
  EXPECT_EQ(streamed->info_loss_fraction, materialized->info_loss_fraction);
  EXPECT_EQ(streamed->info_loss_vs_leaves,
            materialized->info_loss_vs_leaves);
  EXPECT_EQ(streamed->mutual_information, materialized->mutual_information);
  EXPECT_EQ(streamed->num_leaves, materialized->num_leaves);
  ASSERT_EQ(streamed->stats.size(), materialized->stats.size());
  for (size_t i = 0; i < streamed->stats.size(); ++i) {
    EXPECT_EQ(streamed->stats[i].delta_i, materialized->stats[i].delta_i);
    EXPECT_EQ(streamed->stats[i].info_retained,
              materialized->stats[i].info_retained);
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, StreamEquivalenceTest,
                         ::testing::Values(1, 4));

TEST(StreamTimingsTest, SkippedPhase3NeverReportsRescans) {
  // k = 0 skips Phase 3: the streamed run must report zero re-scans and
  // the report section must omit the counter entirely (satellite: no
  // stale streamed counters in PhaseTimings reporting).
  const relation::Relation rel = testing::PaperFigure4();
  const std::string csv = relation::ToCsvString(rel);
  auto source = relation::CsvStringSource::Open(csv);
  ASSERT_TRUE(source.ok());
  auto stats = relation::CollectSourceStats(*source);
  ASSERT_TRUE(stats.ok());
  TupleObjectStream stream(*source, *stats);
  LimboOptions options;
  options.phi = 0.0;
  options.k = 0;
  auto result = RunLimboStreamed(stream, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->timings.phase3_ran);
  EXPECT_TRUE(result->timings.streamed);
  EXPECT_EQ(result->timings.source_scans, 3u);
  EXPECT_EQ(result->timings.phase3_source_rescans, 0u);

  const obs::ReportSection section = TimingsSection(result->timings);
  bool has_streamed = false;
  bool has_scans = false;
  bool has_rescans = false;
  for (const auto& [name, value] : section.fields) {
    has_streamed |= name == "streamed";
    has_scans |= name == "source_scans";
    has_rescans |= name == "phase3_source_rescans";
  }
  EXPECT_TRUE(has_streamed);
  EXPECT_TRUE(has_scans);
  EXPECT_FALSE(has_rescans);
}

TEST(StreamTimingsTest, MaterializedRunOmitsScanCounters) {
  const relation::Relation rel = testing::PaperFigure4();
  LimboOptions options;
  options.k = 2;
  auto result = RunLimbo(BuildTupleObjects(rel), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->timings.streamed);
  const obs::ReportSection section = TimingsSection(result->timings);
  for (const auto& [name, value] : section.fields) {
    EXPECT_NE(name, "streamed");
    EXPECT_NE(name, "source_scans");
    EXPECT_NE(name, "phase3_source_rescans");
  }
}

TEST(StreamStaleStatsTest, RowCountMismatchIsAnError) {
  // A stats sidecar from a different (shorter) source must be rejected,
  // not silently produce wrong priors.
  const relation::Relation rel = testing::PaperFigure4();
  relation::SourceStats stats = relation::SourceStats::FromRelation(rel);
  stats.num_rows = 3;  // stale: source actually yields 5
  relation::RelationRowSource source(rel);
  TupleObjectStream stream(source, stats);
  LimboOptions options;
  auto result = RunLimboStreamed(stream, options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace limbo::core
