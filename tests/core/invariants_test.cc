// Property-based invariants of the information-theoretic core, swept over
// seeds and φ values with parameterized tests:
//  - cumulative AIB loss down to one cluster equals I(V;T),
//  - Phase-1 conserves probability mass and never creates information,
//  - leaf count is (weakly) monotone decreasing in φ,
//  - RAD/RTR are monotone under attribute-set inclusion.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/aib.h"
#include "core/info.h"
#include "core/limbo.h"
#include "core/measures.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::core {
namespace {

std::vector<Dcf> RandomObjects(size_t n, size_t domain, uint64_t seed) {
  util::Random rng(seed);
  std::vector<Dcf> objects;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> support;
    const size_t width = 2 + rng.Uniform(4);
    while (support.size() < width) {
      const auto id = static_cast<uint32_t>(rng.Uniform(domain));
      if (std::find(support.begin(), support.end(), id) == support.end()) {
        support.push_back(id);
      }
    }
    Dcf d;
    d.p = 1.0 / static_cast<double>(n);
    d.cond = SparseDistribution::UniformOver(support);
    objects.push_back(std::move(d));
  }
  return objects;
}

double TotalInformation(const std::vector<Dcf>& objects) {
  WeightedRows rows;
  for (const Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  return MutualInformation(rows);
}

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, AibTotalLossEqualsMutualInformation) {
  const auto objects = RandomObjects(40, 25, GetParam());
  auto result = AgglomerativeIb(objects);
  ASSERT_TRUE(result.ok());
  const double total_loss = result->merges().back().cumulative_loss;
  EXPECT_NEAR(total_loss, TotalInformation(objects), 1e-9);
}

TEST_P(SeedSweep, AibMergeMassesAreAdditive) {
  const auto objects = RandomObjects(30, 20, GetParam());
  auto result = AgglomerativeIb(objects);
  ASSERT_TRUE(result.ok());
  // Track every cluster's mass; each merge's p must equal the sum.
  std::vector<double> mass(objects.size() + result->merges().size(), 0.0);
  for (size_t i = 0; i < objects.size(); ++i) mass[i] = objects[i].p;
  for (const Merge& m : result->merges()) {
    EXPECT_NEAR(m.p_merged, mass[m.left] + mass[m.right], 1e-12);
    mass[m.merged] = m.p_merged;
  }
  EXPECT_NEAR(mass.back(), 1.0, 1e-9);
}

TEST_P(SeedSweep, Phase1NeverCreatesInformation) {
  const auto objects = RandomObjects(60, 30, GetParam());
  const double total = TotalInformation(objects);
  for (double phi : {0.0, 0.2, 0.5, 1.0}) {
    LimboOptions options;
    options.phi = phi;
    const double threshold =
        phi * total / static_cast<double>(objects.size());
    const auto leaves = LimboPhase1(objects, options, threshold);
    EXPECT_LE(TotalInformation(leaves), total + 1e-9) << "phi=" << phi;
    double mass = 0.0;
    for (const Dcf& leaf : leaves) mass += leaf.p;
    EXPECT_NEAR(mass, 1.0, 1e-9) << "phi=" << phi;
  }
}

TEST_P(SeedSweep, LeafCountMonotoneInPhi) {
  const auto objects = RandomObjects(60, 30, GetParam());
  const double total = TotalInformation(objects);
  size_t previous = objects.size() + 1;
  for (double phi : {0.0, 0.1, 0.3, 0.6, 1.2}) {
    LimboOptions options;
    options.phi = phi;
    const auto leaves = LimboPhase1(
        objects, options, phi * total / static_cast<double>(objects.size()));
    EXPECT_LE(leaves.size(), previous) << "phi=" << phi;
    previous = leaves.size();
  }
}

TEST_P(SeedSweep, MeasuresMonotoneUnderAttributeInclusion) {
  util::Random rng(GetParam());
  std::vector<std::vector<std::string>> rows;
  for (int t = 0; t < 40; ++t) {
    rows.push_back({"a" + std::to_string(rng.Uniform(4)),
                    "b" + std::to_string(rng.Uniform(3)),
                    "c" + std::to_string(rng.Uniform(6)),
                    "d" + std::to_string(rng.Uniform(2))});
  }
  const auto rel = limbo::testing::MakeRelation({"A", "B", "C", "D"}, rows);
  // Projecting onto fewer attributes can only increase duplication.
  const std::vector<std::vector<relation::AttributeId>> chains = {
      {0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}};
  for (size_t i = 0; i + 1 < chains.size(); ++i) {
    EXPECT_GE(Rtr(rel, chains[i]), Rtr(rel, chains[i + 1]) - 1e-12);
    EXPECT_GE(Rad(rel, chains[i]), Rad(rel, chains[i + 1]) - 1e-12);
  }
}

TEST_P(SeedSweep, Phase3IsIdempotentOnRepresentatives) {
  const auto objects = RandomObjects(40, 25, GetParam());
  LimboOptions options;
  options.phi = 0.3;
  options.k = 5;
  auto result = RunLimbo(objects, options);
  ASSERT_TRUE(result.ok());
  // Assigning the representatives to themselves is the identity.
  auto self = LimboPhase3(result->representatives, result->representatives);
  ASSERT_TRUE(self.ok());
  for (size_t i = 0; i < self->size(); ++i) {
    EXPECT_EQ((*self)[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace limbo::core
