#include "core/information_content.h"

#include <gtest/gtest.h>

#include "core/decompose.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::MakeRelation;

fd::FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                            std::vector<relation::AttributeId> rhs) {
  return {fd::AttributeSet::FromList(lhs), fd::AttributeSet::FromList(rhs)};
}

/// The paper's Figure 1: Ename, City, Zip over three tuples.
relation::Relation Figure1() {
  return MakeRelation({"Ename", "City", "Zip"},
                      {{"Pat", "Boston", "02139"},
                       {"Pat", "Boston", "02138"},
                       {"Sal", "Boston", "02139"}});
}

bool IsRedundant(const InformationContent& result, relation::TupleId t,
                 relation::AttributeId a) {
  for (const auto& cell : result.cells) {
    if (cell.tuple == t && cell.attribute == a) return true;
  }
  return false;
}

TEST(InformationContentTest, Figure1WithEnameToCity) {
  // "If the functional dependency Ename → City holds, then the value
  // Boston in tuple t2 is redundant given the presence of tuple t1 ...
  // However, the value Boston in the third tuple is not redundant."
  const auto rel = Figure1();
  auto result = AnalyzeInformationContent(rel, {Fd({0}, {1})});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsRedundant(*result, 1, 1));   // Boston in t2
  EXPECT_TRUE(IsRedundant(*result, 0, 1));   // ... and symmetrically in t1
  EXPECT_FALSE(IsRedundant(*result, 2, 1));  // but NOT in t3 (Sal)
}

TEST(InformationContentTest, Figure1WithZipToCity) {
  // "But if ... instead of Ename → City, we have the dependency
  // Zip → City, then the situation is reversed. Given t1, the value
  // Boston is redundant in t3, but not in t2."
  const auto rel = Figure1();
  auto result = AnalyzeInformationContent(rel, {Fd({2}, {1})});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsRedundant(*result, 2, 1));   // Boston in t3
  EXPECT_TRUE(IsRedundant(*result, 0, 1));   // ... symmetrically in t1
  EXPECT_FALSE(IsRedundant(*result, 1, 1));  // but NOT in t2 (02138)
}

TEST(InformationContentTest, ContentFractionAccounting) {
  const auto rel = Figure1();
  auto result = AnalyzeInformationContent(rel, {Fd({0}, {1})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_cells, 9u);
  EXPECT_EQ(result->redundant_cells, 2u);
  EXPECT_NEAR(result->content, 1.0 - 2.0 / 9.0, 1e-12);
}

TEST(InformationContentTest, RejectsNonHoldingFd) {
  const auto rel = Figure1();
  // City → Zip does not hold (Boston maps to two zips).
  auto result = AnalyzeInformationContent(rel, {Fd({1}, {2})});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(InformationContentTest, NoFdsMeansFullContent) {
  const auto rel = Figure1();
  auto result = AnalyzeInformationContent(rel, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->redundant_cells, 0u);
  EXPECT_DOUBLE_EQ(result->content, 1.0);
}

TEST(InformationContentTest, ConstantColumnIsAllRedundant) {
  const auto rel = MakeRelation({"A", "B"}, {{"c", "1"}, {"c", "2"}});
  auto result = AnalyzeInformationContent(
      rel, {{fd::AttributeSet(), fd::AttributeSet::Single(0)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->redundant_cells, 2u);
}

TEST(InformationContentTest, DecompositionRaisesContent) {
  // The design story of Section 1: decomposing on the FD leaves fragments
  // with strictly higher information content.
  const auto rel = limbo::testing::PaperFigure4();
  const auto f = Fd({2}, {1});  // C -> B
  auto before = AnalyzeInformationContent(rel, {f});
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->redundant_cells, 0u);

  auto decomposition = DecomposeOn(rel, f);
  ASSERT_TRUE(decomposition.ok());
  // In S1 = (C, B) each C value appears once: the FD no longer marks any
  // cell redundant.
  auto s1_fd = Fd({0}, {1});  // C -> B in S1's local schema (C first)
  auto after = AnalyzeInformationContent(
      decomposition->s1,
      {{fd::AttributeSet::Single(
            decomposition->s1.schema().Find("C").value()),
        fd::AttributeSet::Single(
            decomposition->s1.schema().Find("B").value())}});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->redundant_cells, 0u);
  EXPECT_GT(after->content, before->content);
  (void)s1_fd;
}

TEST(InformationContentTest, MultipleWitnessesCountOnce) {
  // Two FDs both witness the same cell; it is counted once.
  const auto rel = MakeRelation(
      {"A", "B", "C"},
      {{"1", "x", "u"}, {"1", "x", "u"}, {"2", "y", "v"}});
  auto result =
      AnalyzeInformationContent(rel, {Fd({0}, {1}), Fd({2}, {1})});
  ASSERT_TRUE(result.ok());
  size_t b_cells = 0;
  for (const auto& cell : result->cells) {
    if (cell.attribute == 1) ++b_cells;
  }
  EXPECT_EQ(b_cells, 2u);  // t0 and t1 only, once each
}

}  // namespace
}  // namespace limbo::core
