#include "core/structure_summary.h"

#include <gtest/gtest.h>

#include "datagen/db2_sample.h"
#include "datagen/error_inject.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;

TEST(StructureSummaryTest, PaperExampleEndToEnd) {
  const auto rel = PaperFigure4();
  auto summary = SummarizeStructure(rel, {});
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->profile.tuples, 5u);
  EXPECT_TRUE(summary->has_grouping);
  EXPECT_EQ(summary->values.duplicate_groups.size(), 2u);
  ASSERT_FALSE(summary->ranked_cover.empty());
  // C→B ranks at the top among the anchored FDs.
  const auto& top = summary->ranked_cover.front();
  EXPECT_TRUE(top.anchored);
  EXPECT_TRUE(top.fd.lhs.Contains(2) || top.fd.rhs.Contains(2));
}

TEST(StructureSummaryTest, Db2SampleFindsInjectedDuplicates) {
  auto base = datagen::Db2Sample::JoinedRelation();
  datagen::ErrorInjectionOptions inject;
  inject.num_dirty_tuples = 3;
  inject.values_altered = 1;
  auto dirty = datagen::InjectErrors(*base, inject);
  StructureSummaryOptions options;
  options.phi_t = 0.3;
  auto summary = SummarizeStructure(dirty->dirty, options);
  ASSERT_TRUE(summary.ok());
  EXPECT_FALSE(summary->duplicates.groups.empty());
  EXPECT_GT(summary->num_fds, 0u);
}

TEST(StructureSummaryTest, GracefulWithoutDuplicateValueGroups) {
  // All-unique relation: no CV_D, no grouping — ranked cover still
  // reports the (unranked) cover.
  const auto rel = MakeRelation(
      {"A", "B"}, {{"1", "x"}, {"2", "y"}, {"3", "z"}, {"4", "w"}});
  auto summary = SummarizeStructure(rel, {});
  ASSERT_TRUE(summary.ok());
  EXPECT_FALSE(summary->has_grouping);
}

TEST(StructureSummaryTest, ToStringMentionsAllSections) {
  const auto rel = PaperFigure4();
  auto summary = SummarizeStructure(rel, {});
  ASSERT_TRUE(summary.ok());
  const std::string text = summary->ToString(rel);
  EXPECT_NE(text.find("Profile"), std::string::npos);
  EXPECT_NE(text.find("Value groups"), std::string::npos);
  EXPECT_NE(text.find("Dependencies"), std::string::npos);
  EXPECT_NE(text.find("dendrogram"), std::string::npos);
}

TEST(StructureSummaryTest, EmptyRelationFails) {
  auto schema = relation::Schema::Create({"A"});
  ASSERT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  EXPECT_FALSE(SummarizeStructure(std::move(builder).Build(), {}).ok());
}

}  // namespace
}  // namespace limbo::core
