#include "core/aib.h"

#include <gtest/gtest.h>

#include <cmath>

namespace limbo::core {
namespace {

Dcf MakeDcf(double p, std::vector<uint32_t> support) {
  Dcf d;
  d.p = p;
  d.cond = SparseDistribution::UniformOver(support);
  return d;
}

/// Four objects: {0,1} are identical, {2,3} are identical, the two groups
/// disjoint. AIB must merge within groups first (loss 0) and across
/// groups last.
std::vector<Dcf> TwoNaturalClusters() {
  return {MakeDcf(0.25, {0, 1}), MakeDcf(0.25, {0, 1}),
          MakeDcf(0.25, {5, 6}), MakeDcf(0.25, {5, 6})};
}

TEST(AibTest, MergesIdenticalObjectsFirst) {
  auto result = AgglomerativeIb(TwoNaturalClusters());
  ASSERT_TRUE(result.ok());
  const auto& merges = result->merges();
  ASSERT_EQ(merges.size(), 3u);
  EXPECT_NEAR(merges[0].delta_i, 0.0, 1e-9);
  EXPECT_NEAR(merges[1].delta_i, 0.0, 1e-9);
  EXPECT_GT(merges[2].delta_i, 0.5);
}

TEST(AibTest, AssignmentsAtKRecoverNaturalClusters) {
  auto result = AgglomerativeIb(TwoNaturalClusters());
  ASSERT_TRUE(result.ok());
  auto labels = result->AssignmentsAtK(2);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], (*labels)[1]);
  EXPECT_EQ((*labels)[2], (*labels)[3]);
  EXPECT_NE((*labels)[0], (*labels)[2]);
}

TEST(AibTest, AssignmentsAtExtremes) {
  auto result = AgglomerativeIb(TwoNaturalClusters());
  ASSERT_TRUE(result.ok());
  auto all_separate = result->AssignmentsAtK(4);
  ASSERT_TRUE(all_separate.ok());
  EXPECT_EQ(*all_separate, (std::vector<uint32_t>{0, 1, 2, 3}));
  auto all_together = result->AssignmentsAtK(1);
  ASSERT_TRUE(all_together.ok());
  EXPECT_EQ(*all_together, (std::vector<uint32_t>{0, 0, 0, 0}));
  EXPECT_FALSE(result->AssignmentsAtK(5).ok());
  EXPECT_FALSE(result->AssignmentsAtK(0).ok());
}

TEST(AibTest, CumulativeLossIsMonotone) {
  std::vector<Dcf> inputs;
  for (uint32_t i = 0; i < 8; ++i) {
    inputs.push_back(MakeDcf(1.0 / 8, {i, i + 1, i + 2}));
  }
  auto result = AgglomerativeIb(inputs);
  ASSERT_TRUE(result.ok());
  double prev = 0.0;
  for (const Merge& m : result->merges()) {
    EXPECT_GE(m.cumulative_loss, prev - 1e-12);
    EXPECT_GE(m.delta_i, -1e-12);
    prev = m.cumulative_loss;
  }
  auto loss_k1 = result->LossAtK(1);
  ASSERT_TRUE(loss_k1.ok());
  EXPECT_NEAR(*loss_k1, prev, 1e-12);
  auto loss_kq = result->LossAtK(8);
  ASSERT_TRUE(loss_kq.ok());
  EXPECT_DOUBLE_EQ(*loss_kq, 0.0);
}

TEST(AibTest, TotalLossEqualsMutualInformationForDistinctObjects) {
  // Clustering everything into one cluster loses exactly I(O;T).
  std::vector<Dcf> inputs = {MakeDcf(0.5, {0}), MakeDcf(0.5, {1})};
  auto result = AgglomerativeIb(inputs);
  ASSERT_TRUE(result.ok());
  // I(O;T) = 1 bit for this configuration.
  EXPECT_NEAR(result->merges().back().cumulative_loss, 1.0, 1e-12);
}

TEST(AibTest, MinKStopsEarly) {
  AibOptions options;
  options.min_k = 3;
  auto result = AgglomerativeIb(TwoNaturalClusters(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merges().size(), 1u);
  EXPECT_EQ(result->FinalK(), 3u);
  EXPECT_FALSE(result->AssignmentsAtK(2).ok());  // below final K
}

TEST(AibTest, InvalidInputs) {
  EXPECT_FALSE(AgglomerativeIb({}).ok());
  AibOptions options;
  options.min_k = 5;
  EXPECT_FALSE(AgglomerativeIb(TwoNaturalClusters(), options).ok());
}

TEST(AibTest, SingleObject) {
  auto result = AgglomerativeIb({MakeDcf(1.0, {0})});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->merges().empty());
  EXPECT_EQ(result->FinalK(), 1u);
}

TEST(AibTest, DeterministicAcrossRuns) {
  std::vector<Dcf> inputs;
  for (uint32_t i = 0; i < 12; ++i) {
    inputs.push_back(MakeDcf(1.0 / 12, {i % 5, (i * 2) % 5 + 5}));
  }
  auto a = AgglomerativeIb(inputs);
  auto b = AgglomerativeIb(inputs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->merges().size(), b->merges().size());
  for (size_t i = 0; i < a->merges().size(); ++i) {
    EXPECT_EQ(a->merges()[i].left, b->merges()[i].left);
    EXPECT_EQ(a->merges()[i].right, b->merges()[i].right);
  }
}

/// Runs parametrized over the worker-lane count: every result must be
/// bit-identical to the serial path.
class AibThreadsTest : public ::testing::TestWithParam<size_t> {};

/// Regression: recompute_nn used to tie-break equal distances on *slot
/// index* while the global selection tie-broke on *cluster id*. With all
/// distances equal, slots recycled by merges then steered the merge order
/// away from the documented scipy-style id order (e.g. the second merge
/// became {6, 2} instead of {2, 3}).
TEST_P(AibThreadsTest, EqualDistanceMergeOrderFollowsClusterIds) {
  std::vector<Dcf> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(MakeDcf(1.0 / 6, {0, 1}));
  AibOptions options;
  options.threads = GetParam();
  auto result = AgglomerativeIb(inputs, options);
  ASSERT_TRUE(result.ok());
  const auto& merges = result->merges();
  ASSERT_EQ(merges.size(), 5u);
  const uint32_t expected[][2] = {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}};
  for (size_t i = 0; i < merges.size(); ++i) {
    EXPECT_EQ(merges[i].left, expected[i][0]) << "merge " << i;
    EXPECT_EQ(merges[i].right, expected[i][1]) << "merge " << i;
    EXPECT_NEAR(merges[i].delta_i, 0.0, 1e-12);
  }
}

TEST_P(AibThreadsTest, BitIdenticalToSerial) {
  std::vector<Dcf> inputs;
  for (uint32_t i = 0; i < 40; ++i) {
    inputs.push_back(MakeDcf((1.0 + i % 3) / 80.0,
                             {i % 7, 7 + (i * 3) % 11, 18 + (i * 5) % 13}));
  }
  AibOptions serial;
  serial.threads = 1;
  AibOptions parallel;
  parallel.threads = GetParam();
  auto a = AgglomerativeIb(inputs, serial);
  auto b = AgglomerativeIb(inputs, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->merges().size(), b->merges().size());
  for (size_t i = 0; i < a->merges().size(); ++i) {
    EXPECT_EQ(a->merges()[i].left, b->merges()[i].left) << "merge " << i;
    EXPECT_EQ(a->merges()[i].right, b->merges()[i].right) << "merge " << i;
    // EXPECT_EQ on doubles: the losses must match bit-for-bit, not
    // approximately — the parallel path computes the exact same FP ops.
    EXPECT_EQ(a->merges()[i].delta_i, b->merges()[i].delta_i);
    EXPECT_EQ(a->merges()[i].cumulative_loss, b->merges()[i].cumulative_loss);
    EXPECT_EQ(a->merges()[i].p_merged, b->merges()[i].p_merged);
  }
  EXPECT_EQ(b->stats().threads, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Threads, AibThreadsTest, ::testing::Values(1, 4));

TEST(AibStatsTest, CountsDistanceEvaluations) {
  auto result = AgglomerativeIb(TwoNaturalClusters());
  ASSERT_TRUE(result.ok());
  // Initial matrix: 4*3/2 = 6. Refreshes: 2 + 1 + 0 after each merge.
  EXPECT_EQ(result->stats().distance_evals, 9u);
  EXPECT_GE(result->stats().threads, 1u);
  EXPECT_GE(result->stats().seconds, 0.0);
}

TEST(ClusterDcfsAtKTest, MassConserved) {
  const auto inputs = TwoNaturalClusters();
  auto result = AgglomerativeIb(inputs);
  ASSERT_TRUE(result.ok());
  auto clusters = ClusterDcfsAtK(inputs, *result, 2);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters->size(), 2u);
  double total = 0.0;
  for (const Dcf& c : *clusters) total += c.p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR((*clusters)[0].p, 0.5, 1e-12);
}

TEST(ClusterEntropyPerStepTest, EqualMassClusters) {
  const auto inputs = TwoNaturalClusters();
  auto result = AgglomerativeIb(inputs);
  ASSERT_TRUE(result.ok());
  const auto entropy = result->ClusterEntropyPerStep(inputs);
  ASSERT_EQ(entropy.size(), 4u);  // k = 4, 3, 2, 1
  EXPECT_NEAR(entropy[0], 2.0, 1e-12);  // 4 × 1/4
  EXPECT_NEAR(entropy[2], 1.0, 1e-12);  // 2 × 1/2
  EXPECT_NEAR(entropy[3], 0.0, 1e-12);  // single cluster
}

}  // namespace
}  // namespace limbo::core
