#include "core/summary_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/tuple_clustering.h"
#include "core/value_clustering.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

Dcf MakeDcf(double p, std::vector<uint32_t> support) {
  Dcf d;
  d.p = p;
  d.cond = SparseDistribution::UniformOver(support);
  return d;
}

void ExpectEqualDcfs(const std::vector<Dcf>& a, const std::vector<Dcf>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].p, b[i].p) << i;
    ASSERT_EQ(a[i].cond.SupportSize(), b[i].cond.SupportSize()) << i;
    for (size_t e = 0; e < a[i].cond.entries().size(); ++e) {
      EXPECT_EQ(a[i].cond.entries()[e].id, b[i].cond.entries()[e].id);
      EXPECT_DOUBLE_EQ(a[i].cond.entries()[e].mass,
                       b[i].cond.entries()[e].mass);
    }
    EXPECT_EQ(a[i].attr_counts, b[i].attr_counts) << i;
  }
}

TEST(SummaryIoTest, RoundTripPlainDcfs) {
  const std::vector<Dcf> dcfs = {MakeDcf(0.25, {3, 1, 9}),
                                 MakeDcf(0.75, {0})};
  auto back = ParseDcfs(SerializeDcfs(dcfs));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs(dcfs, *back);
}

TEST(SummaryIoTest, RoundTripAdcfs) {
  Dcf a = MakeDcf(0.5, {1, 2});
  a.attr_counts = {3, 0, 7};
  Dcf b = MakeDcf(0.5, {4});
  b.attr_counts = {0, 1, 0};
  auto back = ParseDcfs(SerializeDcfs({a, b}));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs({a, b}, *back);
  EXPECT_TRUE((*back)[0].IsAdcf());
}

TEST(SummaryIoTest, RoundTripExactDoubles) {
  // Awkward masses (1/3, 1/7) must round-trip bit-exactly.
  Dcf d;
  d.p = 1.0 / 3.0;
  d.cond = SparseDistribution::FromPairs({{0, 1.0}, {1, 6.0}});
  auto back = ParseDcfs(SerializeDcfs({d}));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs({d}, *back);
}

TEST(SummaryIoTest, RoundTripRealPhase1Output) {
  const auto rel = limbo::testing::PaperFigure4();
  const auto objects = BuildValueObjects(rel);
  auto back = ParseDcfs(SerializeDcfs(objects));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs(objects, *back);
}

TEST(SummaryIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDcfs("").ok());
  EXPECT_FALSE(ParseDcfs("not-dcf 1\n0\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 99\n0\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 1\n2\np 0.5 k 1\n0 0.5\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 1\n1\np 0.5 k 3\n0 0.5\n").ok());
}

TEST(SummaryIoTest, EmptyListRoundTrips) {
  auto back = ParseDcfs(SerializeDcfs({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(SummaryIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/limbo_dcf_test.dcf";
  const std::vector<Dcf> dcfs = {MakeDcf(1.0, {7, 8})};
  ASSERT_TRUE(SaveDcfs(dcfs, path).ok());
  auto back = LoadDcfs(path);
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs(dcfs, *back);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDcfs("/nonexistent/x.dcf").ok());
}

}  // namespace
}  // namespace limbo::core
