#include "core/summary_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "core/tuple_clustering.h"
#include "core/value_clustering.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

Dcf MakeDcf(double p, std::vector<uint32_t> support) {
  Dcf d;
  d.p = p;
  d.cond = SparseDistribution::UniformOver(support);
  return d;
}

void ExpectBitEqual(double a, double b, const char* what, size_t i) {
  // memcmp, not EXPECT_DOUBLE_EQ: the 4-ULP tolerance used to hide the
  // parse-side renormalization drift.
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << what << " " << i << ": " << a << " vs " << b;
}

void ExpectEqualDcfs(const std::vector<Dcf>& a, const std::vector<Dcf>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectBitEqual(a[i].p, b[i].p, "p", i);
    ASSERT_EQ(a[i].cond.SupportSize(), b[i].cond.SupportSize()) << i;
    for (size_t e = 0; e < a[i].cond.entries().size(); ++e) {
      EXPECT_EQ(a[i].cond.entries()[e].id, b[i].cond.entries()[e].id);
      ExpectBitEqual(a[i].cond.entries()[e].mass, b[i].cond.entries()[e].mass,
                     "mass", e);
    }
    EXPECT_EQ(a[i].attr_counts, b[i].attr_counts) << i;
  }
}

TEST(SummaryIoTest, RoundTripPlainDcfs) {
  const std::vector<Dcf> dcfs = {MakeDcf(0.25, {3, 1, 9}),
                                 MakeDcf(0.75, {0})};
  auto back = ParseDcfs(SerializeDcfs(dcfs));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs(dcfs, *back);
}

TEST(SummaryIoTest, RoundTripAdcfs) {
  Dcf a = MakeDcf(0.5, {1, 2});
  a.attr_counts = {3, 0, 7};
  Dcf b = MakeDcf(0.5, {4});
  b.attr_counts = {0, 1, 0};
  auto back = ParseDcfs(SerializeDcfs({a, b}));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs({a, b}, *back);
  EXPECT_TRUE((*back)[0].IsAdcf());
}

TEST(SummaryIoTest, RoundTripExactDoubles) {
  // Awkward masses (1/3, 1/7) must round-trip bit-exactly.
  Dcf d;
  d.p = 1.0 / 3.0;
  d.cond = SparseDistribution::FromPairs({{0, 1.0}, {1, 6.0}});
  auto back = ParseDcfs(SerializeDcfs({d}));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs({d}, *back);
}

TEST(SummaryIoTest, RoundTripRealPhase1Output) {
  const auto rel = limbo::testing::PaperFigure4();
  const auto objects = BuildValueObjects(rel);
  auto back = ParseDcfs(SerializeDcfs(objects));
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs(objects, *back);
}

TEST(SummaryIoTest, RoundTripClusteringMeta) {
  DcfMeta meta;
  meta.has_clustering = true;
  meta.phi = 0.1;
  meta.mutual_information = 1.0 / 3.0;
  meta.threshold = meta.phi * meta.mutual_information / 7.0;
  const std::vector<Dcf> dcfs = {MakeDcf(1.0, {2, 5})};
  DcfMeta back_meta;
  auto back = ParseDcfs(SerializeDcfs(dcfs, meta), &back_meta);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ExpectEqualDcfs(dcfs, *back);
  ASSERT_TRUE(back_meta.has_clustering);
  ExpectBitEqual(meta.phi, back_meta.phi, "phi", 0);
  ExpectBitEqual(meta.mutual_information, back_meta.mutual_information, "mi",
                 0);
  ExpectBitEqual(meta.threshold, back_meta.threshold, "threshold", 0);
}

TEST(SummaryIoTest, NoMetaLineWhenAbsent) {
  const std::string text = SerializeDcfs({MakeDcf(1.0, {0})});
  EXPECT_EQ(text.find("meta"), std::string::npos);
  DcfMeta meta;
  meta.has_clustering = true;  // must be overwritten by the parse
  ASSERT_TRUE(ParseDcfs(text, &meta).ok());
  EXPECT_FALSE(meta.has_clustering);
}

TEST(SummaryIoTest, ParsesVersion1Files) {
  DcfMeta meta;
  auto back = ParseDcfs("limbo-dcf 1\n1\np 0.5 k 2\n0 0.5\n3 0.5\n", &meta);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].cond.SupportSize(), 2u);
  EXPECT_FALSE(meta.has_clustering);
}

TEST(SummaryIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDcfs("").ok());
  EXPECT_FALSE(ParseDcfs("not-dcf 1\n0\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 99\n0\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 1\n2\np 0.5 k 1\n0 0.5\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 1\n1\np 0.5 k 3\n0 0.5\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 2\nmeta phi 0.1\n0\n").ok());
  // Out-of-range values must be typed errors, never asserts: negative or
  // zero mass, non-finite p, ids out of order or duplicated.
  EXPECT_FALSE(ParseDcfs("limbo-dcf 2\n1\np 0.5 k 1\n0 -0.5\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 2\n1\np 0.5 k 1\n0 0\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 2\n1\np 0.5 k 1\n0 inf\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 2\n1\np nan k 1\n0 1\n").ok());
  EXPECT_FALSE(ParseDcfs("limbo-dcf 2\n1\np 0 k 1\n0 1\n").ok());
  EXPECT_FALSE(
      ParseDcfs("limbo-dcf 2\n1\np 0.5 k 2\n3 0.5\n1 0.5\n").ok());
  EXPECT_FALSE(
      ParseDcfs("limbo-dcf 2\n1\np 0.5 k 2\n3 0.5\n3 0.5\n").ok());
}

TEST(SummaryIoTest, EmptyListRoundTrips) {
  auto back = ParseDcfs(SerializeDcfs({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(SummaryIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/limbo_dcf_test.dcf";
  const std::vector<Dcf> dcfs = {MakeDcf(1.0, {7, 8})};
  DcfMeta meta;
  meta.has_clustering = true;
  meta.phi = 0.5;
  meta.mutual_information = 2.25;
  meta.threshold = 0.5 * 2.25 / 2.0;
  ASSERT_TRUE(SaveDcfs(dcfs, meta, path).ok());
  DcfMeta back_meta;
  auto back = LoadDcfs(path, &back_meta);
  ASSERT_TRUE(back.ok());
  ExpectEqualDcfs(dcfs, *back);
  EXPECT_TRUE(back_meta.has_clustering);
  ExpectBitEqual(meta.threshold, back_meta.threshold, "threshold", 0);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDcfs("/nonexistent/x.dcf").ok());
}

TEST(SummaryIoTest, SerializeThenParseIsIdempotent) {
  // Field-by-field fixed point: parse(serialize(x)) == x implies the text
  // form is a faithful encoding of every field, including ones that used
  // to be written but drift on the way back in.
  const auto rel = limbo::testing::PaperFigure4();
  const auto objects = BuildValueObjects(rel);
  const std::string once = SerializeDcfs(objects);
  auto back = ParseDcfs(once);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(SerializeDcfs(*back), once);
}

}  // namespace
}  // namespace limbo::core
