#include "core/value_clustering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;
using limbo::testing::PaperFigure5;

/// Names of the values in one group, sorted, e.g. {"A=a", "B=1"}.
std::set<std::string> GroupNames(const relation::Relation& rel,
                                 const ValueGroup& group) {
  std::set<std::string> names;
  for (relation::ValueId v : group.values) {
    names.insert(rel.dictionary().QualifiedName(rel.schema(), v));
  }
  return names;
}

TEST(BuildValueObjectsTest, Figure3And6Representation) {
  // Figure 6 (left): value "a" appears in tuples 1,2 -> (1/2, 1/2);
  // "x" in tuples 3,4,5 -> 1/3 each; O counts: a appears twice in A.
  const auto rel = PaperFigure4();
  const auto objects = BuildValueObjects(rel);
  ASSERT_EQ(objects.size(), 9u);  // a,w,y,z, 1,2, p,r,x
  const relation::ValueId a = rel.At(0, 0);
  EXPECT_DOUBLE_EQ(objects[a].p, 1.0 / 9);
  EXPECT_DOUBLE_EQ(objects[a].cond.MassAt(0), 0.5);
  EXPECT_DOUBLE_EQ(objects[a].cond.MassAt(1), 0.5);
  EXPECT_EQ(objects[a].attr_counts, (std::vector<uint64_t>{2, 0, 0}));
  const relation::ValueId x = rel.At(2, 2);
  EXPECT_DOUBLE_EQ(objects[x].cond.MassAt(2), 1.0 / 3);
  EXPECT_DOUBLE_EQ(objects[x].cond.MassAt(4), 1.0 / 3);
  EXPECT_EQ(objects[x].attr_counts, (std::vector<uint64_t>{0, 0, 3}));
}

TEST(ClusterValuesTest, PaperExamplePerfectCoOccurrences) {
  // At φ_V = 0, {a,1} and {2,x} merge (Figure 7); everything else stays
  // single.
  const auto rel = PaperFigure4();
  ValueClusteringOptions options;
  options.phi_v = 0.0;
  auto result = ClusterValues(rel, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->groups.size(), 7u);

  std::vector<std::set<std::string>> groups;
  for (const auto& g : result->groups) groups.push_back(GroupNames(rel, g));
  EXPECT_TRUE(std::find(groups.begin(), groups.end(),
                        std::set<std::string>{"A=a", "B=1"}) != groups.end());
  EXPECT_TRUE(std::find(groups.begin(), groups.end(),
                        std::set<std::string>{"B=2", "C=x"}) != groups.end());
}

TEST(ClusterValuesTest, PaperExampleDuplicateClassification) {
  // CV_D = {a,1}, {2,x}; CV_ND = {w}, {z}, {y}, {p}, {r} (Section 6.3).
  const auto rel = PaperFigure4();
  auto result = ClusterValues(rel, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->duplicate_groups.size(), 2u);
  for (size_t g : result->duplicate_groups) {
    const auto names = GroupNames(rel, result->groups[g]);
    EXPECT_TRUE(names == std::set<std::string>({"A=a", "B=1"}) ||
                names == std::set<std::string>({"B=2", "C=x"}));
  }
}

TEST(ClusterValuesTest, ClusteredOMatrixMatchesFigure7) {
  const auto rel = PaperFigure4();
  auto result = ClusterValues(rel, {});
  ASSERT_TRUE(result.ok());
  for (const auto& g : result->groups) {
    const auto names = GroupNames(rel, g);
    if (names == std::set<std::string>({"A=a", "B=1"})) {
      EXPECT_EQ(g.dcf.attr_counts, (std::vector<uint64_t>{2, 2, 0}));
    } else if (names == std::set<std::string>({"B=2", "C=x"})) {
      EXPECT_EQ(g.dcf.attr_counts, (std::vector<uint64_t>{0, 3, 3}));
    }
  }
}

TEST(ClusterValuesTest, Figure5NeedsPositivePhi) {
  // With the error in tuple 2, {2,x} no longer co-occur perfectly: at
  // φ_V = 0 they stay apart; at φ_V = 0.1 they merge again (Figure 8).
  const auto rel = PaperFigure5();
  ValueClusteringOptions strict;
  strict.phi_v = 0.0;
  auto exact = ClusterValues(rel, strict);
  ASSERT_TRUE(exact.ok());
  for (const auto& g : *&exact->groups) {
    const auto names = GroupNames(rel, g);
    EXPECT_NE(names, std::set<std::string>({"B=2", "C=x"}));
  }

  // The paper reports the re-merge at φ_V = 0.1; under our exact
  // threshold normalization (φ·I(V;T)/d with base-2 logs) the loss of the
  // {2,x} merge is 0.0345 bits vs. a 0.1-threshold of 0.0201, so a
  // slightly larger φ_V is needed — the qualitative knob behaves the same.
  ValueClusteringOptions fuzzy;
  fuzzy.phi_v = 0.25;
  auto approx = ClusterValues(rel, fuzzy);
  ASSERT_TRUE(approx.ok());
  bool found = false;
  for (const auto& g : approx->groups) {
    const auto names = GroupNames(rel, g);
    if (names.count("B=2") && names.count("C=x")) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ClusterValuesTest, DoubleClusteringOverTupleClusters) {
  const auto rel = PaperFigure4();
  // Tuple clusters: {t0,t1} and {t2,t3,t4}.
  const std::vector<uint32_t> labels = {0, 0, 1, 1, 1};
  const auto objects = BuildValueObjectsOverTupleClusters(rel, labels, 2);
  ASSERT_EQ(objects.size(), 9u);
  const relation::ValueId a = rel.At(0, 0);
  EXPECT_DOUBLE_EQ(objects[a].cond.MassAt(0), 1.0);  // a only in cluster 0
  const relation::ValueId two = rel.At(2, 1);
  EXPECT_DOUBLE_EQ(objects[two].cond.MassAt(1), 1.0);

  ValueClusteringOptions options;
  options.phi_v = 0.0;
  options.tuple_labels = &labels;
  options.num_tuple_clusters = 2;
  auto result = ClusterValues(rel, options);
  ASSERT_TRUE(result.ok());
  // Over clusters, {a,1,p,r} all live exclusively in cluster 0... p and r
  // have identical conditionals now, so they merge with {a,1} too.
  bool found_a1 = false;
  for (const auto& g : result->groups) {
    const auto names = GroupNames(rel, g);
    if (names.count("A=a") && names.count("B=1")) found_a1 = true;
  }
  EXPECT_TRUE(found_a1);
}

TEST(ClusterValuesTest, SingleAttributeRelationHasNoDuplicateGroups) {
  const auto rel = MakeRelation({"A"}, {{"x"}, {"x"}, {"y"}});
  auto result = ClusterValues(rel, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->duplicate_groups.empty());
}

TEST(ClusterValuesTest, EveryValueAssignedExactlyOnce) {
  const auto rel = PaperFigure4();
  auto result = ClusterValues(rel, {});
  ASSERT_TRUE(result.ok());
  size_t total = 0;
  for (const auto& g : result->groups) total += g.values.size();
  EXPECT_EQ(total, rel.NumValues());
}

}  // namespace
}  // namespace limbo::core
