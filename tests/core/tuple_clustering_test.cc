#include "core/tuple_clustering.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::MakeRelation;

TEST(BuildTupleObjectsTest, Figure2Representation) {
  // The relation of Figure 1 (Ename, City, Zip); each tuple's conditional
  // puts mass 1/3 on each of its three values (Figure 2).
  const auto rel = MakeRelation({"Ename", "City", "Zip"},
                                {{"Pat", "Boston", "02139"},
                                 {"Pat", "Boston", "02138"},
                                 {"Sal", "Boston", "02139"}});
  const auto objects = BuildTupleObjects(rel);
  ASSERT_EQ(objects.size(), 3u);
  for (const Dcf& o : objects) {
    EXPECT_DOUBLE_EQ(o.p, 1.0 / 3);
    EXPECT_EQ(o.cond.SupportSize(), 3u);
    for (const auto& e : o.cond.entries()) {
      EXPECT_DOUBLE_EQ(e.mass, 1.0 / 3);
    }
  }
  // t1 and t2 share the values Pat and Boston: their conditionals overlap
  // in exactly two ids.
  size_t shared = 0;
  for (const auto& e : objects[0].cond.entries()) {
    if (objects[1].cond.MassAt(e.id) > 0) ++shared;
  }
  EXPECT_EQ(shared, 2u);
}

relation::Relation WithExactDuplicates() {
  return MakeRelation({"A", "B", "C"}, {{"1", "x", "p"},
                                        {"2", "y", "q"},
                                        {"1", "x", "p"},   // dup of t0
                                        {"3", "z", "r"},
                                        {"2", "y", "q"},   // dup of t1
                                        {"1", "x", "p"}}); // dup of t0
}

TEST(FindDuplicateTuplesTest, ExactDuplicatesAtPhiZero) {
  DuplicateTupleOptions options;
  options.phi_t = 0.0;
  auto report = FindDuplicateTuples(WithExactDuplicates(), options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->groups.size(), 2u);
  // Largest group first: {0, 2, 5}, then {1, 4}.
  EXPECT_EQ(report->groups[0].tuples,
            (std::vector<relation::TupleId>{0, 2, 5}));
  EXPECT_EQ(report->groups[1].tuples, (std::vector<relation::TupleId>{1, 4}));
}

TEST(FindDuplicateTuplesTest, CleanDataYieldsNoGroups) {
  const auto rel = MakeRelation(
      {"A", "B"}, {{"1", "x"}, {"2", "y"}, {"3", "z"}, {"4", "w"}});
  DuplicateTupleOptions options;
  options.phi_t = 0.0;
  auto report = FindDuplicateTuples(rel, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->groups.empty());
  EXPECT_EQ(report->num_heavy_leaves, 0u);
}

TEST(FindDuplicateTuplesTest, NearDuplicatesNeedPositivePhi) {
  // Ten attributes; two tuples differ in exactly one value.
  std::vector<std::string> header;
  std::vector<std::string> base;
  std::vector<std::string> near = {};
  for (int a = 0; a < 10; ++a) {
    header.push_back("A" + std::to_string(a));
    base.push_back("v" + std::to_string(a));
  }
  near = base;
  near[9] = "CORRUPTED";
  // Pad with unrelated tuples.
  std::vector<std::vector<std::string>> rows = {base, near};
  for (int t = 0; t < 10; ++t) {
    std::vector<std::string> other;
    for (int a = 0; a < 10; ++a) {
      other.push_back("u" + std::to_string(a) + "_" + std::to_string(t));
    }
    rows.push_back(other);
  }
  const auto rel = MakeRelation(header, rows);

  DuplicateTupleOptions exact;
  exact.phi_t = 0.0;
  auto strict = FindDuplicateTuples(rel, exact);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->groups.empty());

  DuplicateTupleOptions fuzzy;
  fuzzy.phi_t = 0.2;
  auto loose = FindDuplicateTuples(rel, fuzzy);
  ASSERT_TRUE(loose.ok());
  ASSERT_FALSE(loose->groups.empty());
  const auto& g = loose->groups[0].tuples;
  EXPECT_TRUE(std::find(g.begin(), g.end(), 0u) != g.end());
  EXPECT_TRUE(std::find(g.begin(), g.end(), 1u) != g.end());
}

TEST(FindDuplicateTuplesTest, ReportCarriesDiagnostics) {
  auto report = FindDuplicateTuples(WithExactDuplicates(), {});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->mutual_information, 0.0);
  EXPECT_GT(report->num_leaves, 0u);
}

TEST(FindDuplicateTuplesTest, EmptyRelationFails) {
  auto schema = relation::Schema::Create({"A"});
  ASSERT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  EXPECT_FALSE(FindDuplicateTuples(std::move(builder).Build(), {}).ok());
}

}  // namespace
}  // namespace limbo::core
