#include "core/dcf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace limbo::core {
namespace {

Dcf MakeDcf(double p, std::vector<uint32_t> support) {
  Dcf d;
  d.p = p;
  d.cond = SparseDistribution::UniformOver(support);
  return d;
}

TEST(DcfTest, MergeFollowsEquations1And2) {
  const Dcf a = MakeDcf(0.25, {0, 1});
  const Dcf b = MakeDcf(0.75, {1, 2});
  const Dcf merged = MergeDcf(a, b);
  EXPECT_DOUBLE_EQ(merged.p, 1.0);
  // p(T|c*) = 0.25*(1/2,1/2,0) + 0.75*(0,1/2,1/2).
  EXPECT_DOUBLE_EQ(merged.cond.MassAt(0), 0.125);
  EXPECT_DOUBLE_EQ(merged.cond.MassAt(1), 0.5);
  EXPECT_DOUBLE_EQ(merged.cond.MassAt(2), 0.375);
}

TEST(DcfTest, MergeSumsAdcfCounts) {
  Dcf a = MakeDcf(0.5, {0});
  Dcf b = MakeDcf(0.5, {1});
  a.attr_counts = {2, 0, 1};
  b.attr_counts = {0, 3, 1};
  const Dcf merged = MergeDcf(a, b);
  EXPECT_EQ(merged.attr_counts, (std::vector<uint64_t>{2, 3, 2}));
  EXPECT_TRUE(merged.IsAdcf());
}

TEST(DcfTest, PlainDcfHasNoCounts) {
  const Dcf merged = MergeDcf(MakeDcf(0.5, {0}), MakeDcf(0.5, {1}));
  EXPECT_FALSE(merged.IsAdcf());
}

TEST(InformationLossTest, Equation3KnownValue) {
  // Two clusters of equal mass with disjoint conditionals:
  // δI = (p1+p2) * JS_{1/2,1/2} = (p1+p2) * 1 bit.
  const Dcf a = MakeDcf(0.3, {0});
  const Dcf b = MakeDcf(0.3, {1});
  EXPECT_NEAR(InformationLoss(a, b), 0.6, 1e-12);
}

TEST(InformationLossTest, ZeroForIdenticalConditionals) {
  const Dcf a = MakeDcf(0.2, {4, 5});
  const Dcf b = MakeDcf(0.6, {4, 5});
  EXPECT_NEAR(InformationLoss(a, b), 0.0, 1e-12);
}

TEST(InformationLossTest, Symmetric) {
  const Dcf a = MakeDcf(0.1, {0, 1, 2});
  const Dcf b = MakeDcf(0.5, {2, 3});
  EXPECT_NEAR(InformationLoss(a, b), InformationLoss(b, a), 1e-12);
}

TEST(InformationLossTest, LossIsSubadditiveAcrossMergeChain) {
  // Merging a with b then with c loses at least as much as any single
  // pairwise merge (cumulative loss is monotone).
  const Dcf a = MakeDcf(1.0 / 3, {0});
  const Dcf b = MakeDcf(1.0 / 3, {1});
  const Dcf c = MakeDcf(1.0 / 3, {2});
  const double ab = InformationLoss(a, b);
  const Dcf merged = MergeDcf(a, b);
  const double abc = ab + InformationLoss(merged, c);
  EXPECT_GT(abc, ab);
}

TEST(InformationLossTest, ZeroMassClusters) {
  const Dcf a = MakeDcf(0.0, {0});
  const Dcf b = MakeDcf(0.0, {1});
  EXPECT_DOUBLE_EQ(InformationLoss(a, b), 0.0);
  const Dcf merged = MergeDcf(a, b);
  EXPECT_DOUBLE_EQ(merged.p, 0.0);
}

}  // namespace
}  // namespace limbo::core
