#include "core/measures.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;

TEST(RadTest, AllIdenticalIsOne) {
  const auto rel = MakeRelation({"A"}, {{"x"}, {"x"}, {"x"}});
  EXPECT_DOUBLE_EQ(Rad(rel, {0}), 1.0);
}

TEST(RadTest, AllDistinctIsZero) {
  const auto rel = MakeRelation({"A"}, {{"1"}, {"2"}, {"3"}, {"4"}});
  EXPECT_NEAR(Rad(rel, {0}), 0.0, 1e-12);
}

TEST(RadTest, PaperExampleBC) {
  // Projection of Figure 4 on (B,C): counts {1,1,3} over n=5.
  // H = -(0.2 lg 0.2)*2 - 0.6 lg 0.6; RAD = 1 - H/lg 5.
  const auto rel = PaperFigure4();
  const double h = -(2 * 0.2 * std::log2(0.2)) - 0.6 * std::log2(0.6);
  EXPECT_NEAR(Rad(rel, {1, 2}), 1.0 - h / std::log2(5.0), 1e-12);
}

TEST(RadTest, DecompositionOnCtoBBeatsAtoB) {
  // The paper's Section 7 claim: (B,C) has more redundancy than (A,B).
  const auto rel = PaperFigure4();
  EXPECT_GT(Rad(rel, {1, 2}), Rad(rel, {0, 1}));
}

TEST(RadTest, DegenerateSizes) {
  const auto one = MakeRelation({"A"}, {{"x"}});
  EXPECT_DOUBLE_EQ(Rad(one, {0}), 1.0);
}

TEST(RtrTest, PaperExampleValues) {
  const auto rel = PaperFigure4();
  // π_{B,C}: 3 distinct of 5 -> RTR = 0.4; π_{A,B}: 4 distinct -> 0.2.
  EXPECT_DOUBLE_EQ(Rtr(rel, {1, 2}), 0.4);
  EXPECT_DOUBLE_EQ(Rtr(rel, {0, 1}), 0.2);
}

TEST(RtrTest, NoDuplicationIsZero) {
  const auto rel = MakeRelation({"A", "B"}, {{"1", "x"}, {"2", "y"}});
  EXPECT_DOUBLE_EQ(Rtr(rel, {0, 1}), 0.0);
}

TEST(RtrTest, FullDuplication) {
  const auto rel = MakeRelation({"A"}, {{"x"}, {"x"}, {"x"}, {"x"}});
  EXPECT_DOUBLE_EQ(Rtr(rel, {0}), 0.75);
}

TEST(MeasuresTest, RadIsWidthSensitiveRtrSizeSensitive) {
  // The paper's motivating distinction: two single-attribute relations,
  // one with 3 copies of a value, one with 2 copies. RAD says 1.0 for
  // both; RTR distinguishes them.
  const auto three = MakeRelation({"A"}, {{"x"}, {"x"}, {"x"}});
  const auto two = MakeRelation({"A"}, {{"x"}, {"x"}});
  EXPECT_DOUBLE_EQ(Rad(three, {0}), 1.0);
  EXPECT_DOUBLE_EQ(Rad(two, {0}), 1.0);
  EXPECT_GT(Rtr(three, {0}), Rtr(two, {0}));
}

}  // namespace
}  // namespace limbo::core
