#include "core/dcf_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace limbo::core {
namespace {

Dcf MakeDcf(double p, std::vector<uint32_t> support) {
  Dcf d;
  d.p = p;
  d.cond = SparseDistribution::UniformOver(support);
  return d;
}

TEST(DcfTreeTest, ZeroThresholdMergesOnlyIdenticalObjects) {
  DcfTree::Options options;
  options.threshold = 0.0;
  DcfTree tree(options);
  // Three identical + two identical + one singleton = 3 leaves.
  for (int i = 0; i < 3; ++i) tree.Insert(MakeDcf(1.0 / 6, {0, 1}));
  for (int i = 0; i < 2; ++i) tree.Insert(MakeDcf(1.0 / 6, {2, 3}));
  tree.Insert(MakeDcf(1.0 / 6, {4, 5}));
  const auto leaves = tree.LeafDcfs();
  EXPECT_EQ(leaves.size(), 3u);
  EXPECT_EQ(tree.stats().num_inserts, 6u);
  EXPECT_EQ(tree.stats().num_merges, 3u);
}

TEST(DcfTreeTest, MassIsConserved) {
  DcfTree::Options options;
  options.threshold = 0.01;
  DcfTree tree(options);
  util::Random rng(3);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    tree.Insert(MakeDcf(1.0 / n, {static_cast<uint32_t>(rng.Uniform(20)),
                                  20 + static_cast<uint32_t>(rng.Uniform(20))}));
  }
  double total = 0.0;
  for (const Dcf& leaf : tree.LeafDcfs()) total += leaf.p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DcfTreeTest, SplitsKeepAllLeavesReachable) {
  DcfTree::Options options;
  options.threshold = 0.0;
  options.branching = 3;
  DcfTree tree(options);
  const int n = 64;
  for (uint32_t i = 0; i < n; ++i) {
    tree.Insert(MakeDcf(1.0 / n, {i}));  // all distinct: no merges
  }
  EXPECT_EQ(tree.LeafDcfs().size(), static_cast<size_t>(n));
  EXPECT_EQ(tree.stats().num_merges, 0u);
  EXPECT_GT(tree.stats().height, 1u);
  EXPECT_GT(tree.stats().num_nodes, 1u);
}

TEST(DcfTreeTest, LargeThresholdCollapsesEverything) {
  DcfTree::Options options;
  options.threshold = 1e6;
  DcfTree tree(options);
  for (uint32_t i = 0; i < 50; ++i) {
    tree.Insert(MakeDcf(0.02, {i, i + 50, i + 100}));
  }
  EXPECT_EQ(tree.LeafDcfs().size(), 1u);
}

TEST(DcfTreeTest, ThresholdControlsGranularity) {
  // Two well-separated value groups with small within-group jitter:
  // a generous threshold should give far fewer leaves than a tiny one.
  auto build = [](double threshold) {
    DcfTree::Options options;
    options.threshold = threshold;
    DcfTree tree(options);
    util::Random rng(17);
    const int n = 100;
    for (int i = 0; i < n; ++i) {
      const uint32_t base = (i % 2 == 0) ? 0 : 1000;
      tree.Insert(MakeDcf(1.0 / n,
                          {base + static_cast<uint32_t>(rng.Uniform(4)),
                           base + 10 + static_cast<uint32_t>(rng.Uniform(4)),
                           base + 20}));
    }
    return tree.LeafDcfs().size();
  };
  const size_t fine = build(1e-7);
  const size_t coarse = build(0.05);
  EXPECT_GT(fine, coarse);
  EXPECT_LE(coarse, 10u);
}

TEST(DcfTreeTest, AdcfCountsSurviveTreeMerges) {
  DcfTree::Options options;
  options.threshold = 1e6;  // force everything into one leaf
  DcfTree tree(options);
  for (int i = 0; i < 4; ++i) {
    Dcf d = MakeDcf(0.25, {static_cast<uint32_t>(i)});
    d.attr_counts = {1, 2};
    tree.Insert(d);
  }
  const auto leaves = tree.LeafDcfs();
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0].attr_counts, (std::vector<uint64_t>{4, 8}));
}

TEST(DcfTreeTest, InvariantsHoldUnderStress) {
  // Heavy mixed workload with many splits; every structural invariant
  // (fan-out bounds, accumulator = subtree sum, mass conservation) must
  // hold at several checkpoints.
  DcfTree::Options options;
  options.threshold = 0.002;
  options.branching = 3;
  DcfTree tree(options);
  util::Random rng(123);
  const int n = 1500;
  for (int i = 0; i < n; ++i) {
    std::vector<uint32_t> support;
    const uint32_t base = static_cast<uint32_t>(rng.Uniform(10)) * 30;
    for (uint32_t s = 0; s < 5; ++s) {
      support.push_back(base + s * 5 +
                        static_cast<uint32_t>(rng.Uniform(3)));
    }
    tree.Insert(MakeDcf(1.0 / n, support));
    if (i % 250 == 0 || i == n - 1) {
      EXPECT_EQ(tree.ValidateInvariants(), "") << "after insert " << i;
    }
  }
}

TEST(DcfTreeTest, InvariantsHoldWithWideBranching) {
  DcfTree::Options options;
  options.threshold = 0.0;
  options.branching = 16;
  options.leaf_capacity = 4;
  DcfTree tree(options);
  for (uint32_t i = 0; i < 300; ++i) {
    tree.Insert(MakeDcf(1.0 / 300, {i, 1000 + (i * 7) % 50}));
  }
  EXPECT_EQ(tree.ValidateInvariants(), "");
}

TEST(DcfTreeTest, StatsCountInsertsAndLeafEntries) {
  DcfTree::Options options;
  options.threshold = 0.0;
  DcfTree tree(options);
  for (uint32_t i = 0; i < 10; ++i) tree.Insert(MakeDcf(0.1, {i}));
  EXPECT_EQ(tree.stats().num_inserts, 10u);
  EXPECT_EQ(tree.stats().num_leaf_entries, 10u);
  EXPECT_EQ(tree.LeafDcfs().size(), 10u);
}

}  // namespace
}  // namespace limbo::core
