#include "core/decompose.h"

#include <gtest/gtest.h>

#include "datagen/db2_sample.h"
#include "fd/tane.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::core {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;

fd::FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                            std::vector<relation::AttributeId> rhs) {
  return {fd::AttributeSet::FromList(lhs), fd::AttributeSet::FromList(rhs)};
}

TEST(DecomposeTest, PaperSection7Decomposition) {
  // Decomposing Figure 4 on C→B gives S1=(C,B) with 3 rows and S2=(A,C)
  // with 5 rows.
  const auto rel = PaperFigure4();
  auto d = DecomposeOn(rel, Fd({2}, {1}));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->s1.NumTuples(), 3u);
  EXPECT_EQ(d->s1.NumAttributes(), 2u);
  EXPECT_EQ(d->s2.NumTuples(), 5u);
  EXPECT_EQ(d->s2.NumAttributes(), 2u);
  EXPECT_EQ(d->original_cells, 15u);
  EXPECT_EQ(d->decomposed_cells, 16u);
}

TEST(DecomposeTest, LosslessJoinOnPaperExample) {
  const auto rel = PaperFigure4();
  auto d = DecomposeOn(rel, Fd({2}, {1}));
  ASSERT_TRUE(d.ok());
  auto lossless = JoinsBackLosslessly(rel, Fd({2}, {1}), *d);
  ASSERT_TRUE(lossless.ok());
  EXPECT_TRUE(*lossless);
}

TEST(DecomposeTest, RejectsNonHoldingFd) {
  const auto rel = PaperFigure4();
  auto d = DecomposeOn(rel, Fd({1}, {0}));  // B -> A does not hold
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(DecomposeTest, RejectsTrivialDecomposition) {
  const auto rel = PaperFigure4();
  EXPECT_FALSE(DecomposeOn(rel, Fd({0, 1}, {1})).ok());  // RHS ⊆ LHS
  EXPECT_FALSE(DecomposeOn(rel, Fd({}, {1})).ok());
}

TEST(DecomposeTest, SavesStorageOnDb2DeptFd) {
  auto rel = datagen::Db2Sample::JoinedRelation();
  auto dept = rel->schema().Find("DeptNo");
  auto name = rel->schema().Find("DeptName");
  auto mgr = rel->schema().Find("MgrNo");
  ASSERT_TRUE(dept.ok());
  auto d = DecomposeOn(*rel, Fd({*dept}, {*name, *mgr}));
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->storage_saving, 0.0);
  EXPECT_EQ(d->s1.NumTuples(), 8u);  // one row per department
  auto lossless = JoinsBackLosslessly(*rel, Fd({*dept}, {*name, *mgr}), *d);
  ASSERT_TRUE(lossless.ok());
  EXPECT_TRUE(*lossless);
}

TEST(DecomposeTest, LosslessOnRandomRelationsWithMinedFds) {
  // Property: decomposing on any mined FD joins back losslessly.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    util::Random rng(seed);
    std::vector<std::vector<std::string>> rows;
    for (int t = 0; t < 30; ++t) {
      const int key = static_cast<int>(rng.Uniform(8));
      rows.push_back({"k" + std::to_string(key),
                      "d" + std::to_string(key % 4),
                      "v" + std::to_string(rng.Uniform(5))});
    }
    const auto rel = MakeRelation({"K", "D", "V"}, rows);
    auto fds = fd::Tane::Mine(rel);
    ASSERT_TRUE(fds.ok());
    for (const auto& f : *fds) {
      if (f.lhs.Empty() || f.rhs.IsSubsetOf(f.lhs)) continue;
      if (f.lhs.Union(f.rhs).Count() == rel.NumAttributes()) continue;
      auto d = DecomposeOn(rel, f);
      ASSERT_TRUE(d.ok()) << f.ToString(rel.schema());
      auto lossless = JoinsBackLosslessly(rel, f, *d);
      ASSERT_TRUE(lossless.ok());
      EXPECT_TRUE(*lossless) << f.ToString(rel.schema());
    }
  }
}

TEST(DecomposeGreedilyTest, AppliesChainOfFds) {
  auto rel = datagen::Db2Sample::JoinedRelation();
  const auto dept = rel->schema().Find("DeptNo").value();
  const auto name = rel->schema().Find("DeptName").value();
  const auto mgr = rel->schema().Find("MgrNo").value();
  const auto proj = rel->schema().Find("ProjNo").value();
  const auto pname = rel->schema().Find("ProjName").value();
  auto fragments = DecomposeGreedily(
      *rel, {Fd({dept}, {name, mgr}), Fd({proj}, {pname})});
  ASSERT_TRUE(fragments.ok());
  EXPECT_EQ(fragments->size(), 3u);
  // Total cells shrink versus the original.
  size_t cells = 0;
  for (const auto& fragment : *fragments) {
    cells += fragment.NumTuples() * fragment.NumAttributes();
  }
  EXPECT_LT(cells, rel->NumTuples() * rel->NumAttributes());
}

TEST(DecomposeGreedilyTest, SkipsFdsWhoseAttributesAreSplit) {
  const auto rel = MakeRelation({"A", "B", "C"}, {{"1", "x", "p"},
                                                  {"1", "x", "q"},
                                                  {"2", "y", "p"}});
  // First FD splits off B; the second FD (B -> C?) no longer has B and C
  // in one fragment, so it is skipped without error.
  auto fragments =
      DecomposeGreedily(rel, {Fd({0}, {1}), Fd({1}, {2})});
  ASSERT_TRUE(fragments.ok());
  EXPECT_EQ(fragments->size(), 2u);
}

}  // namespace
}  // namespace limbo::core
