#include "core/info.h"

#include <gtest/gtest.h>

#include <cmath>

namespace limbo::core {
namespace {

TEST(EntropyTest, KnownValues) {
  const double probs_uniform[] = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(Entropy(probs_uniform), 2.0, 1e-12);
  const double probs_point[] = {1.0, 0.0};
  EXPECT_NEAR(Entropy(probs_point), 0.0, 1e-12);
  const double probs_half[] = {0.5, 0.5};
  EXPECT_NEAR(Entropy(probs_half), 1.0, 1e-12);
}

TEST(EntropyOfCountsTest, MatchesNormalizedEntropy) {
  const uint64_t counts[] = {3, 1, 0, 4};
  const double probs[] = {3.0 / 8, 1.0 / 8, 0.0, 4.0 / 8};
  EXPECT_NEAR(EntropyOfCounts(counts), Entropy(probs), 1e-12);
}

TEST(EntropyOfCountsTest, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(EntropyOfCounts({}), 0.0);
  const uint64_t zeros[] = {0, 0};
  EXPECT_DOUBLE_EQ(EntropyOfCounts(zeros), 0.0);
}

WeightedRows TwoByTwo() {
  // Two equiprobable objects with disjoint conditionals over {0,1}:
  // I(O;T) = 1 bit.
  WeightedRows rows;
  rows.weights = {0.5, 0.5};
  rows.rows = {SparseDistribution::UniformOver(std::vector<uint32_t>{0}),
               SparseDistribution::UniformOver(std::vector<uint32_t>{1})};
  return rows;
}

TEST(MarginalTest, AveragesRows) {
  const auto marginal = Marginal(TwoByTwo());
  EXPECT_DOUBLE_EQ(marginal.MassAt(0), 0.5);
  EXPECT_DOUBLE_EQ(marginal.MassAt(1), 0.5);
}

TEST(MutualInformationTest, DisjointRowsGiveEntropyOfWeights) {
  EXPECT_NEAR(MutualInformation(TwoByTwo()), 1.0, 1e-12);
}

TEST(MutualInformationTest, IdenticalRowsGiveZero) {
  WeightedRows rows;
  rows.weights = {0.5, 0.5};
  const auto cond = SparseDistribution::UniformOver(std::vector<uint32_t>{3, 7});
  rows.rows = {cond, cond};
  EXPECT_NEAR(MutualInformation(rows), 0.0, 1e-12);
}

TEST(MutualInformationTest, InformationIdentity) {
  // I(O;T) = H(T) - H(T|O) for a non-trivial joint.
  WeightedRows rows;
  rows.weights = {0.25, 0.75};
  rows.rows = {SparseDistribution::FromPairs({{0, 0.5}, {1, 0.5}}),
               SparseDistribution::FromPairs({{1, 0.25}, {2, 0.75}})};
  const double h_t = Marginal(rows).Entropy();
  const double h_t_given_o = ConditionalEntropy(rows);
  EXPECT_NEAR(MutualInformation(rows), h_t - h_t_given_o, 1e-12);
}

TEST(MutualInformationTest, NonNegativeOnRandomRows) {
  WeightedRows rows;
  for (uint32_t i = 0; i < 10; ++i) {
    rows.weights.push_back(0.1);
    rows.rows.push_back(SparseDistribution::FromPairs(
        {{i % 4, 1.0 + i}, {4 + (i + 1) % 4, 2.0}, {8 + (i * 3) % 7, 0.5}}));
  }
  EXPECT_GE(MutualInformation(rows), 0.0);
}

TEST(ConditionalEntropyTest, WeightedAverageOfRowEntropies) {
  WeightedRows rows;
  rows.weights = {0.5, 0.5};
  rows.rows = {
      SparseDistribution::UniformOver(std::vector<uint32_t>{0, 1}),   // H=1
      SparseDistribution::UniformOver(std::vector<uint32_t>{2})};     // H=0
  EXPECT_NEAR(ConditionalEntropy(rows), 0.5, 1e-12);
}

/// Regression guard: the dense marginal accumulator used to read
/// entries().back().id as the max id, trusting sortedness; an unsorted
/// row (e.g. from a hand-built or deserialized source) could then index
/// out of bounds. The accumulator now scans every entry for the max, so
/// the largest id may live anywhere — first row, middle entry — and
/// construction order must not matter.
TEST(MarginalTest, DenseAccumulatorScansForMaxId) {
  WeightedRows rows;
  rows.weights = {0.25, 0.25, 0.5};
  // Largest id (900) in the FIRST row; entries handed over unsorted.
  rows.rows = {
      SparseDistribution::FromPairs({{900, 1.0}, {2, 1.0}}),
      SparseDistribution::FromPairs({{7, 2.0}, {3, 2.0}}),
      SparseDistribution::FromPairs({{3, 1.0}})};
  const auto marginal = Marginal(rows);
  EXPECT_NEAR(marginal.MassAt(900), 0.125, 1e-12);
  EXPECT_NEAR(marginal.MassAt(2), 0.125, 1e-12);
  EXPECT_NEAR(marginal.MassAt(7), 0.125, 1e-12);
  EXPECT_NEAR(marginal.MassAt(3), 0.625, 1e-12);
  EXPECT_NEAR(marginal.TotalMass(), 1.0, 1e-12);
  // The same accumulator backs MutualInformation; it must agree with the
  // identity I = H(T) - H(T|O) on this shape too.
  EXPECT_NEAR(MutualInformation(rows),
              marginal.Entropy() - ConditionalEntropy(rows), 1e-12);
}

TEST(MarginalTest, SkipsZeroWeightRows) {
  WeightedRows rows;
  rows.weights = {1.0, 0.0};
  rows.rows = {SparseDistribution::UniformOver(std::vector<uint32_t>{0}),
               SparseDistribution::UniformOver(std::vector<uint32_t>{9})};
  const auto marginal = Marginal(rows);
  EXPECT_DOUBLE_EQ(marginal.MassAt(9), 0.0);
  EXPECT_DOUBLE_EQ(marginal.MassAt(0), 1.0);
}

}  // namespace
}  // namespace limbo::core
