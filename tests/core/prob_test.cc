#include "core/prob.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace limbo::core {
namespace {

SparseDistribution Uniform(std::vector<uint32_t> ids) {
  return SparseDistribution::UniformOver(ids);
}

TEST(SparseDistributionTest, UniformOver) {
  const auto d = Uniform({5, 1, 9});
  EXPECT_EQ(d.SupportSize(), 3u);
  EXPECT_DOUBLE_EQ(d.MassAt(1), 1.0 / 3);
  EXPECT_DOUBLE_EQ(d.MassAt(5), 1.0 / 3);
  EXPECT_DOUBLE_EQ(d.MassAt(9), 1.0 / 3);
  EXPECT_DOUBLE_EQ(d.MassAt(2), 0.0);
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
  // Sorted by id.
  EXPECT_EQ(d.entries()[0].id, 1u);
  EXPECT_EQ(d.entries()[2].id, 9u);
}

TEST(SparseDistributionTest, EmptyUniform) {
  const auto d = Uniform({});
  EXPECT_TRUE(d.Empty());
  EXPECT_DOUBLE_EQ(d.TotalMass(), 0.0);
}

TEST(SparseDistributionTest, FromPairsNormalizes) {
  const auto d = SparseDistribution::FromPairs({{3, 2.0}, {1, 6.0}});
  EXPECT_DOUBLE_EQ(d.MassAt(1), 0.75);
  EXPECT_DOUBLE_EQ(d.MassAt(3), 0.25);
}

TEST(SparseDistributionTest, FromPairsDropsZeros) {
  const auto d = SparseDistribution::FromPairs({{1, 1.0}, {2, 0.0}});
  EXPECT_EQ(d.SupportSize(), 1u);
}

TEST(SparseDistributionTest, WeightedMergeIsEquation2) {
  // Merging uniform({0,1}) and uniform({1,2}) with weights 1/2 each:
  // mass(0) = 1/4, mass(1) = 1/2, mass(2) = 1/4.
  const auto merged = SparseDistribution::WeightedMerge(
      0.5, Uniform({0, 1}), 0.5, Uniform({1, 2}));
  EXPECT_DOUBLE_EQ(merged.MassAt(0), 0.25);
  EXPECT_DOUBLE_EQ(merged.MassAt(1), 0.5);
  EXPECT_DOUBLE_EQ(merged.MassAt(2), 0.25);
  EXPECT_NEAR(merged.TotalMass(), 1.0, 1e-12);
}

TEST(SparseDistributionTest, WeightedMergeAsymmetricWeights) {
  const auto merged = SparseDistribution::WeightedMerge(
      0.25, Uniform({0}), 0.75, Uniform({1}));
  EXPECT_DOUBLE_EQ(merged.MassAt(0), 0.25);
  EXPECT_DOUBLE_EQ(merged.MassAt(1), 0.75);
}

TEST(SparseDistributionTest, EntropyUniformIsLogN) {
  EXPECT_NEAR(Uniform({1, 2, 3, 4}).Entropy(), 2.0, 1e-12);
  EXPECT_NEAR(Uniform({7}).Entropy(), 0.0, 1e-12);
}

TEST(KlDivergenceTest, ZeroForIdentical) {
  const auto p = Uniform({1, 2, 3});
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergenceTest, KnownValue) {
  // p = (1/2, 1/2), q = (1/4, 3/4):
  // D = 0.5 log2(2) + 0.5 log2(2/3) = 0.5 - 0.29248.
  const auto p = SparseDistribution::FromPairs({{0, 0.5}, {1, 0.5}});
  const auto q = SparseDistribution::FromPairs({{0, 0.25}, {1, 0.75}});
  EXPECT_NEAR(KlDivergence(p, q), 0.5 + 0.5 * std::log2(2.0 / 3.0), 1e-12);
}

TEST(KlDivergenceTest, InfiniteWhenSupportEscapes) {
  const auto p = Uniform({1, 2});
  const auto q = Uniform({1});
  EXPECT_TRUE(std::isinf(KlDivergence(p, q)));
  // Reverse direction is finite: support(q) ⊆ support(p).
  EXPECT_TRUE(std::isfinite(KlDivergence(q, p)));
}

TEST(JsDivergenceTest, ZeroForIdentical) {
  const auto p = Uniform({1, 2, 3});
  EXPECT_NEAR(JsDivergence(0.5, p, 0.5, p), 0.0, 1e-12);
}

TEST(JsDivergenceTest, BoundedByOneAndMaximalForDisjoint) {
  // Disjoint supports with equal weights: JS = 1 bit exactly.
  const auto p = Uniform({1, 2});
  const auto q = Uniform({3, 4});
  EXPECT_NEAR(JsDivergence(0.5, p, 0.5, q), 1.0, 1e-12);
}

TEST(JsDivergenceTest, WeightedDisjointMatchesEntropyOfWeights) {
  // For disjoint supports, JS_{w1,w2} = H(w1, w2).
  const auto p = Uniform({1});
  const auto q = Uniform({2});
  const double w1 = 0.2;
  const double w2 = 0.8;
  const double expected = -w1 * std::log2(w1) - w2 * std::log2(w2);
  EXPECT_NEAR(JsDivergence(w1, p, w2, q), expected, 1e-12);
}

TEST(JsDivergenceTest, Symmetric) {
  const auto p = SparseDistribution::FromPairs({{0, 0.7}, {1, 0.3}});
  const auto q = SparseDistribution::FromPairs({{1, 0.4}, {2, 0.6}});
  EXPECT_NEAR(JsDivergence(0.3, p, 0.7, q), JsDivergence(0.7, q, 0.3, p),
              1e-12);
}

TEST(JsDivergenceTest, AsymmetricFastPathMatchesGeneric) {
  // Build a large q (100 ids) and a tiny p (2 ids) so the binary-search
  // path triggers; compare with a hand-computed generic evaluation via a
  // medium-sized q over the same masses scaled — instead, simply compare
  // against swapping arguments (symmetry), which exercises both paths.
  std::vector<uint32_t> big_ids;
  for (uint32_t i = 0; i < 100; ++i) big_ids.push_back(i);
  const auto q = SparseDistribution::UniformOver(big_ids);
  const auto p = Uniform({5, 200});
  const double a = JsDivergence(0.4, p, 0.6, q);  // fast path (p small)
  const double b = JsDivergence(0.6, q, 0.4, p);  // fast path (q small)
  EXPECT_NEAR(a, b, 1e-12);
  // And against a brute-force union evaluation.
  double expected = 0.0;
  for (uint32_t id = 0; id <= 200; ++id) {
    const double pm = p.MassAt(id);
    const double qm = q.MassAt(id);
    const double mm = 0.4 * pm + 0.6 * qm;
    if (pm > 0) expected += 0.4 * pm * std::log2(pm / mm);
    if (qm > 0) expected += 0.6 * qm * std::log2(qm / mm);
  }
  EXPECT_NEAR(a, expected, 1e-10);
}

TEST(JsDivergenceTest, EmptyOperandsGiveZero) {
  const auto p = Uniform({1});
  EXPECT_DOUBLE_EQ(JsDivergence(0.5, p, 0.5, SparseDistribution()), 0.0);
  EXPECT_DOUBLE_EQ(JsDivergence(0.5, SparseDistribution(), 0.5, p), 0.0);
}

}  // namespace
}  // namespace limbo::core
