#include "core/attribute_grouping.h"

#include <gtest/gtest.h>

#include "core/value_clustering.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;

AttributeGroupingResult GroupFigure4() {
  const auto rel = PaperFigure4();
  auto values = ClusterValues(rel, {});
  EXPECT_TRUE(values.ok());
  auto grouping = GroupAttributes(rel, *values);
  EXPECT_TRUE(grouping.ok());
  return std::move(grouping).value();
}

TEST(AttributeGroupingTest, PaperDendrogramShape) {
  // Figure 10: B and C merge first, then A joins.
  const auto rel = PaperFigure4();
  const auto grouping = GroupFigure4();
  ASSERT_EQ(grouping.attributes.size(), 3u);
  ASSERT_EQ(grouping.aib.merges().size(), 2u);
  const Merge& first = grouping.aib.merges()[0];
  EXPECT_EQ(grouping.cluster_members[first.merged],
            fd::AttributeSet::FromList({1, 2}));  // {B, C}
  const Merge& second = grouping.aib.merges()[1];
  EXPECT_EQ(grouping.cluster_members[second.merged],
            fd::AttributeSet::FromList({0, 1, 2}));
}

TEST(AttributeGroupingTest, PaperInformationLossValues) {
  // Hand-computed from the normalized F matrix (matches the paper's
  // "maximum information loss ... approximately 0.52"):
  //   δI(B, C) = (2/3)·JS((0.4,0.6),(0,1)) ≈ 0.15766
  //   δI(A, BC) ≈ 0.51554
  const auto grouping = GroupFigure4();
  EXPECT_NEAR(grouping.aib.merges()[0].delta_i, 0.15766, 1e-4);
  EXPECT_NEAR(grouping.aib.merges()[1].delta_i, 0.51554, 1e-4);
  EXPECT_NEAR(grouping.max_merge_loss, 0.51554, 1e-4);
}

TEST(AttributeGroupingTest, DendrogramTextListsMerges) {
  const auto rel = PaperFigure4();
  const auto grouping = GroupFigure4();
  const std::string text = grouping.DendrogramText(rel.schema());
  EXPECT_NE(text.find("[B,C]"), std::string::npos);
  EXPECT_NE(text.find("[A,B,C]"), std::string::npos);
  EXPECT_NE(text.find("loss="), std::string::npos);
}

TEST(AttributeGroupingTest, FailsWithoutDuplicateGroups) {
  const auto rel = MakeRelation({"A", "B"}, {{"1", "x"}, {"2", "y"}});
  auto values = ClusterValues(rel, {});
  ASSERT_TRUE(values.ok());
  ASSERT_TRUE(values->duplicate_groups.empty());
  EXPECT_FALSE(GroupAttributes(rel, *values).ok());
}

TEST(AttributeGroupingTest, AttributesOutsideAdAreExcluded) {
  // D's values are all unique: it carries no duplicate group, so it is
  // not part of A_D.
  const auto rel = MakeRelation({"A", "B", "D"}, {{"a", "1", "d1"},
                                                  {"a", "1", "d2"},
                                                  {"w", "2", "d3"},
                                                  {"y", "2", "d4"}});
  auto values = ClusterValues(rel, {});
  ASSERT_TRUE(values.ok());
  auto grouping = GroupAttributes(rel, *values);
  ASSERT_TRUE(grouping.ok());
  for (relation::AttributeId a : grouping->attributes) {
    EXPECT_NE(rel.schema().Name(a), "D");
  }
}

TEST(AttributeGroupingTest, PhiAPositivePreMergesIdenticalRows) {
  const auto rel = PaperFigure4();
  auto values = ClusterValues(rel, {});
  ASSERT_TRUE(values.ok());
  AttributeGroupingOptions options;
  options.phi_a = 0.5;
  auto grouping = GroupAttributes(rel, *values, options);
  ASSERT_TRUE(grouping.ok());
  // Membership is still complete.
  fd::AttributeSet all;
  for (const auto& members : grouping->cluster_members) {
    all = all.Union(members);
  }
  EXPECT_EQ(all, fd::AttributeSet::FromList({0, 1, 2}));
}

}  // namespace
}  // namespace limbo::core
