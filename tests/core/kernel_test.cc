// Tests for the arena-backed distance kernel layer: DistributionArena,
// LossKernel, the batch/per-pair bit-identity contract, the asymmetric
// JsDivergence path at its cutoff boundary, and the galloping-lookup
// complexity bound.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/aib.h"
#include "core/dcf.h"
#include "core/limbo.h"
#include "core/prob.h"

namespace limbo::core {
namespace {

SparseDistribution RandomDistribution(std::mt19937& rng, size_t support,
                                      uint32_t universe) {
  std::vector<uint32_t> ids(universe);
  for (uint32_t i = 0; i < universe; ++i) ids[i] = i;
  std::shuffle(ids.begin(), ids.end(), rng);
  std::uniform_real_distribution<double> mass(0.05, 1.0);
  std::vector<SparseDistribution::Entry> entries;
  entries.reserve(support);
  for (size_t k = 0; k < support; ++k) {
    entries.push_back({ids[k], mass(rng)});
  }
  return SparseDistribution::FromPairs(std::move(entries));
}

Dcf RandomDcf(std::mt19937& rng, size_t support, uint32_t universe,
              double p) {
  Dcf d;
  d.p = p;
  d.cond = RandomDistribution(rng, support, universe);
  return d;
}

/// Reference δI: Eq. 3 straight through the public JsDivergence, the
/// pre-kernel formulation.
double ReferenceLoss(const Dcf& a, const Dcf& b) {
  const double total = a.p + b.p;
  if (total <= 0.0) return 0.0;
  return total * JsDivergence(a.p / total, a.cond, b.p / total, b.cond);
}

// ---------------------------------------------------------------------------
// DistributionArena

TEST(DistributionArenaTest, AppendRoundTripsEntriesAndLogs) {
  std::mt19937 rng(7);
  DistributionArena arena;
  std::vector<SparseDistribution> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back(RandomDistribution(rng, 8 + i, 64));
    ASSERT_EQ(arena.Append(rows.back()), static_cast<size_t>(i));
  }
  ASSERT_EQ(arena.NumRows(), 5u);
  for (size_t i = 0; i < rows.size(); ++i) {
    const DistributionView view = arena.Row(i);
    ASSERT_EQ(view.SupportSize(), rows[i].SupportSize());
    for (size_t k = 0; k < view.entries.size(); ++k) {
      EXPECT_EQ(view.entries[k].id, rows[i].entries()[k].id);
      EXPECT_EQ(view.entries[k].mass, rows[i].entries()[k].mass);
      // Cached log must be exactly what a fresh evaluation yields.
      EXPECT_EQ(view.log2s[k],
                std::log(rows[i].entries()[k].mass) * 1.4426950408889634);
    }
  }
}

TEST(DistributionArenaTest, AppendMergeMatchesWeightedMergeBitwise) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const SparseDistribution a = RandomDistribution(rng, 6 + trial % 5, 40);
    const SparseDistribution b = RandomDistribution(rng, 9 + trial % 7, 40);
    std::uniform_real_distribution<double> wd(0.1, 0.9);
    const double w1 = wd(rng);
    const double w2 = 1.0 - w1;
    DistributionArena arena;
    const size_t ra = arena.Append(a);
    const size_t rb = arena.Append(b);
    const size_t rm = arena.AppendMerge(w1, ra, w2, rb);
    const SparseDistribution expected =
        SparseDistribution::WeightedMerge(w1, a, w2, b);
    const DistributionView got = arena.Row(rm);
    ASSERT_EQ(got.SupportSize(), expected.SupportSize());
    for (size_t k = 0; k < got.entries.size(); ++k) {
      EXPECT_EQ(got.entries[k].id, expected.entries()[k].id);
      EXPECT_EQ(got.entries[k].mass, expected.entries()[k].mass);
    }
  }
}

TEST(DistributionArenaTest, AppendMergeSurvivesSlabReallocation) {
  // No ReserveEntries: every append may realloc, and AppendMerge reads
  // its own slab while writing into it.
  std::mt19937 rng(13);
  DistributionArena arena;
  size_t row0 = arena.Append(RandomDistribution(rng, 12, 64));
  size_t row1 = arena.Append(RandomDistribution(rng, 12, 64));
  for (int step = 0; step < 10; ++step) {
    const size_t merged = arena.AppendMerge(0.5, row0, 0.5, row1);
    const DistributionView view = arena.Row(merged);
    double total = 0.0;
    for (const auto& e : view.entries) total += e.mass;
    EXPECT_NEAR(total, 1.0, 1e-9);
    row0 = row1;
    row1 = merged;
  }
}

// ---------------------------------------------------------------------------
// LossKernel vs the reference formulation

TEST(LossKernelTest, MatchesReferenceAcrossShapes) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> pd(0.01, 1.0);
  const struct {
    size_t so, sc;
    uint32_t universe;
  } shapes[] = {
      {1, 1, 8},      {4, 4, 16},     {8, 200, 512},  {200, 8, 512},
      {64, 64, 96},   {1, 500, 1024}, {500, 1, 1024}, {33, 512, 2048},
  };
  for (const auto& shape : shapes) {
    for (int trial = 0; trial < 8; ++trial) {
      const Dcf a = RandomDcf(rng, shape.so, shape.universe, pd(rng));
      const Dcf b = RandomDcf(rng, shape.sc, shape.universe, pd(rng));
      LossKernel kernel;
      kernel.SetObject(a.p, a.cond);
      const double got = kernel.Loss(b.p, b.cond);
      EXPECT_NEAR(got, ReferenceLoss(a, b), 1e-12)
          << "so=" << shape.so << " sc=" << shape.sc << " trial=" << trial;
    }
  }
}

TEST(LossKernelTest, ZeroMassAndEmptySides) {
  LossKernel kernel;
  Dcf a;
  a.p = 0.0;
  kernel.SetObject(a.p, a.cond);
  EXPECT_EQ(kernel.Loss(0.0, SparseDistribution{}), 0.0);
  const SparseDistribution d =
      SparseDistribution::FromPairs({{0, 0.5}, {1, 0.5}});
  EXPECT_EQ(kernel.Loss(1.0, d), 0.0);  // empty object side
  kernel.SetObject(0.5, d);
  EXPECT_EQ(kernel.Loss(0.0, SparseDistribution{}), 0.0);
  // Identical conditionals lose nothing.
  EXPECT_NEAR(kernel.Loss(0.5, d), 0.0, 1e-12);
}

TEST(LossKernelTest, HugeIdsUseTwoPointerFallbackWithSameResults) {
  // Ids beyond the dense-scatter cap exercise the fallback path.
  std::mt19937 rng(19);
  std::vector<SparseDistribution::Entry> pe;
  std::vector<SparseDistribution::Entry> qe;
  std::uniform_real_distribution<double> mass(0.1, 1.0);
  for (uint32_t k = 0; k < 20; ++k) {
    pe.push_back({(1u << 23) + 3 * k, mass(rng)});
    qe.push_back({(1u << 23) + 2 * k, mass(rng)});
  }
  Dcf a;
  a.p = 0.4;
  a.cond = SparseDistribution::FromPairs(std::move(pe));
  Dcf b;
  b.p = 0.6;
  b.cond = SparseDistribution::FromPairs(std::move(qe));
  LossKernel kernel;
  kernel.SetObject(a.p, a.cond);
  EXPECT_NEAR(kernel.Loss(b.p, b.cond), ReferenceLoss(a, b), 1e-12);
}

TEST(LossKernelTest, TagMakesRepeatSetObjectANoOp) {
  const SparseDistribution da =
      SparseDistribution::FromPairs({{0, 0.5}, {1, 0.5}});
  const SparseDistribution db =
      SparseDistribution::FromPairs({{2, 0.5}, {3, 0.5}});
  const SparseDistribution cand =
      SparseDistribution::FromPairs({{0, 0.25}, {1, 0.25}, {2, 0.5}});
  LossKernel kernel;
  kernel.SetObject(0.5, da, /*tag=*/1);
  const double with_a = kernel.Loss(0.5, cand);
  // Same tag: the object stays `da` even though we pass `db`.
  kernel.SetObject(0.5, db, /*tag=*/1);
  EXPECT_EQ(kernel.Loss(0.5, cand), with_a);
  // New tag: the object switches.
  kernel.SetObject(0.5, db, /*tag=*/2);
  EXPECT_NE(kernel.Loss(0.5, cand), with_a);
}

// ---------------------------------------------------------------------------
// Batch vs per-pair bit-identity

TEST(InformationLossBatchTest, BitIdenticalToPerPair) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> pd(0.01, 1.0);
  std::uniform_int_distribution<size_t> sd(1, 60);
  std::vector<Dcf> candidates;
  for (int i = 0; i < 30; ++i) {
    candidates.push_back(RandomDcf(rng, sd(rng), 256, pd(rng)));
  }
  for (int trial = 0; trial < 10; ++trial) {
    const Dcf object = RandomDcf(rng, sd(rng), 256, pd(rng));
    std::vector<double> batch(candidates.size());
    InformationLossBatch(object, candidates, batch);
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(batch[i], InformationLoss(object, candidates[i])) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Asymmetric JsDivergence path: boundary property + complexity bound

TEST(JsDivergenceBoundaryTest, FastPathMatchesMergeJoinAroundCutoff) {
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> wd(0.05, 0.95);
  std::uniform_int_distribution<size_t> small_d(1, 40);
  // Ratios straddling kAsymmetricCutoffRatio (=16), plus extremes: the
  // public JsDivergence flips paths across the boundary and the result
  // must not care.
  const size_t ratios[] = {1, 2, 8, 14, 15, 16, 17, 18, 32, 64, 200};
  for (const size_t ratio : ratios) {
    for (int trial = 0; trial < 6; ++trial) {
      const size_t sp = small_d(rng);
      const size_t sq = sp * ratio + (trial % 3);  // jitter the boundary
      const uint32_t universe = static_cast<uint32_t>(2 * (sp + sq) + 8);
      const SparseDistribution p = RandomDistribution(rng, sp, universe);
      const SparseDistribution q = RandomDistribution(rng, sq, universe);
      const double w1 = wd(rng);
      const double w2 = 1.0 - w1;
      const double joined = internal::JsDivergenceMergeJoin(w1, p, w2, q);
      const double fast = internal::JsDivergenceAsymmetric(w1, p, w2, q);
      EXPECT_NEAR(fast, joined, 1e-12)
          << "ratio=" << ratio << " sp=" << sp << " sq=" << sq;
      // And the dispatching entry point agrees with both.
      EXPECT_NEAR(JsDivergence(w1, p, w2, q), joined, 1e-12);
    }
  }
}

TEST(JsDivergenceGallopTest, EqualSizeInputsStayLinear) {
  // Satellite regression: the asymmetric path must never regress past
  // the merge-join path on equal-size inputs. Merge-join costs
  // |p| + |q| id steps; the galloping sweep is bounded by a small
  // constant per p-entry when gaps are constant.
  const size_t n = 4096;
  std::vector<SparseDistribution::Entry> pe;
  std::vector<SparseDistribution::Entry> qe;
  for (uint32_t k = 0; k < n; ++k) {
    pe.push_back({2 * k, 1.0});      // evens
    qe.push_back({2 * k + 1, 1.0});  // odds: worst-case interleave
  }
  const auto p = SparseDistribution::FromPairs(std::move(pe));
  const auto q = SparseDistribution::FromPairs(std::move(qe));
  uint64_t probes = 0;
  internal::JsDivergenceAsymmetric(0.5, p, 0.5, q, &probes);
  EXPECT_LE(probes, 2 * (p.SupportSize() + q.SupportSize()));

  // Identical supports: each lookup lands on the next entry.
  std::vector<SparseDistribution::Entry> se;
  for (uint32_t k = 0; k < n; ++k) se.push_back({3 * k, 1.0});
  const auto s = SparseDistribution::FromPairs(std::move(se));
  probes = 0;
  internal::JsDivergenceAsymmetric(0.5, s, 0.5, s, &probes);
  EXPECT_LE(probes, 2 * s.SupportSize());
}

TEST(JsDivergenceGallopTest, SmallIntoHugeStaysLogarithmic) {
  // |p| = 32 spread across |q| = 65536: probes must be
  // O(|p| · log(|q|/|p|)), nowhere near the O(|q|) a naive linear
  // two-pointer advance would cost.
  const size_t sq = 65536;
  const size_t sp = 32;
  std::vector<SparseDistribution::Entry> qe;
  qe.reserve(sq);
  for (uint32_t k = 0; k < sq; ++k) qe.push_back({k, 1.0});
  std::vector<SparseDistribution::Entry> pe;
  for (uint32_t k = 0; k < sp; ++k) {
    pe.push_back({static_cast<uint32_t>(k * (sq / sp)), 1.0});
  }
  const auto p = SparseDistribution::FromPairs(std::move(pe));
  const auto q = SparseDistribution::FromPairs(std::move(qe));
  uint64_t probes = 0;
  internal::JsDivergenceAsymmetric(0.5, p, 0.5, q, &probes);
  EXPECT_LE(probes, sp * (2 * 16 + 4));  // 2·log2(gap) + O(1) per entry
  EXPECT_LT(probes, sq / 4);             // far from linear in |q|
}

// ---------------------------------------------------------------------------
// End-to-end equivalence: batch kernel vs per-pair dispatch (satellite f)

class KernelEquivalenceTest : public ::testing::TestWithParam<size_t> {};

std::vector<Dcf> MixedInputs() {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> pd(0.2, 1.0);
  std::uniform_int_distribution<size_t> sd(2, 24);
  std::vector<Dcf> inputs;
  double total = 0.0;
  for (int i = 0; i < 48; ++i) {
    inputs.push_back(RandomDcf(rng, sd(rng), 160, pd(rng)));
    total += inputs.back().p;
  }
  for (Dcf& d : inputs) d.p /= total;
  return inputs;
}

TEST_P(KernelEquivalenceTest, AibMergeSequencesBitIdentical) {
  const std::vector<Dcf> inputs = MixedInputs();
  AibOptions batch_options;
  batch_options.threads = GetParam();
  batch_options.kernel = AibOptions::DistanceKernel::kBatch;
  AibOptions pair_options = batch_options;
  pair_options.kernel = AibOptions::DistanceKernel::kPerPair;
  auto batch = AgglomerativeIb(inputs, batch_options);
  auto pair = AgglomerativeIb(inputs, pair_options);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(pair.ok());
  ASSERT_EQ(batch->merges().size(), pair->merges().size());
  for (size_t i = 0; i < batch->merges().size(); ++i) {
    const Merge& mb = batch->merges()[i];
    const Merge& mp = pair->merges()[i];
    EXPECT_EQ(mb.left, mp.left) << i;
    EXPECT_EQ(mb.right, mp.right) << i;
    EXPECT_EQ(mb.merged, mp.merged) << i;
    EXPECT_EQ(mb.delta_i, mp.delta_i) << i;
    EXPECT_EQ(mb.cumulative_loss, mp.cumulative_loss) << i;
    EXPECT_EQ(mb.p_merged, mp.p_merged) << i;
  }
}

TEST_P(KernelEquivalenceTest, Phase3AssignmentsAndLossesBitIdentical) {
  const std::vector<Dcf> objects = MixedInputs();
  auto aib = AgglomerativeIb(objects);
  ASSERT_TRUE(aib.ok());
  auto reps = ClusterDcfsAtK(objects, *aib, 5);
  ASSERT_TRUE(reps.ok());
  std::vector<double> batch_loss;
  std::vector<double> pair_loss;
  auto batch = LimboPhase3(objects, *reps, &batch_loss, GetParam(),
                           /*batch_kernel=*/true);
  auto pair = LimboPhase3(objects, *reps, &pair_loss, GetParam(),
                          /*batch_kernel=*/false);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(*batch, *pair);
  ASSERT_EQ(batch_loss.size(), pair_loss.size());
  for (size_t i = 0; i < batch_loss.size(); ++i) {
    EXPECT_EQ(batch_loss[i], pair_loss[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, KernelEquivalenceTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace limbo::core
