#include "core/limbo.h"

#include <gtest/gtest.h>

#include "core/info.h"

#include "util/random.h"

namespace limbo::core {
namespace {

Dcf MakeDcf(double p, std::vector<uint32_t> support) {
  Dcf d;
  d.p = p;
  d.cond = SparseDistribution::UniformOver(support);
  return d;
}

/// 30 objects drawn from three disjoint templates with tiny jitter.
std::vector<Dcf> ThreePlantedClusters() {
  std::vector<Dcf> objects;
  util::Random rng(5);
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    const uint32_t base = static_cast<uint32_t>(i % 3) * 100;
    objects.push_back(MakeDcf(
        1.0 / n, {base, base + 1, base + 2,
                  base + 3 + static_cast<uint32_t>(rng.Uniform(2))}));
  }
  return objects;
}

TEST(LimboTest, RecoversPlantedClusters) {
  LimboOptions options;
  options.phi = 0.0;
  options.k = 3;
  auto result = RunLimbo(ThreePlantedClusters(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignments.size(), 30u);
  // All objects of the same template share a label.
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(result->assignments[i], result->assignments[i % 3])
        << "object " << i;
  }
  // The three labels are distinct.
  EXPECT_NE(result->assignments[0], result->assignments[1]);
  EXPECT_NE(result->assignments[1], result->assignments[2]);
  EXPECT_NE(result->assignments[0], result->assignments[2]);
}

TEST(LimboTest, PhiZeroMakesPhase1Lossless) {
  const auto objects = ThreePlantedClusters();
  LimboOptions options;
  options.phi = 0.0;
  auto result = RunLimbo(objects, options);
  ASSERT_TRUE(result.ok());
  // Identical objects merge, everything else stays: leaves' mutual
  // information equals the objects' (no information lost in Phase 1).
  WeightedRows leaf_rows;
  for (const Dcf& leaf : result->leaves) {
    leaf_rows.weights.push_back(leaf.p);
    leaf_rows.rows.push_back(leaf.cond);
  }
  EXPECT_NEAR(MutualInformation(leaf_rows), result->mutual_information,
              1e-9);
}

TEST(LimboTest, LargerPhiGivesFewerLeaves) {
  const auto objects = ThreePlantedClusters();
  LimboOptions fine;
  fine.phi = 0.0;
  LimboOptions coarse;
  coarse.phi = 1.0;
  auto fine_result = RunLimbo(objects, fine);
  auto coarse_result = RunLimbo(objects, coarse);
  ASSERT_TRUE(fine_result.ok());
  ASSERT_TRUE(coarse_result.ok());
  EXPECT_LE(coarse_result->leaves.size(), fine_result->leaves.size());
}

TEST(LimboTest, Phase3LossesReported) {
  LimboOptions options;
  options.phi = 0.2;
  options.k = 3;
  auto result = RunLimbo(ThreePlantedClusters(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignment_loss.size(), 30u);
  for (double loss : result->assignment_loss) {
    EXPECT_GE(loss, 0.0);
  }
}

TEST(LimboTest, InvalidArguments) {
  EXPECT_FALSE(RunLimbo({}, LimboOptions()).ok());
  LimboOptions bad_phi;
  bad_phi.phi = -1.0;
  EXPECT_FALSE(RunLimbo(ThreePlantedClusters(), bad_phi).ok());
  LimboOptions big_k;
  big_k.k = 1000;
  EXPECT_FALSE(RunLimbo(ThreePlantedClusters(), big_k).ok());
}

TEST(LimboPhase3Test, AssignsToNearestRepresentative) {
  const std::vector<Dcf> reps = {MakeDcf(0.5, {0, 1}), MakeDcf(0.5, {10, 11})};
  const std::vector<Dcf> objects = {MakeDcf(0.1, {0, 1}),
                                    MakeDcf(0.1, {10, 11}),
                                    MakeDcf(0.1, {0, 2})};
  std::vector<double> losses;
  auto labels = LimboPhase3(objects, reps, &losses);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], 0u);
  EXPECT_EQ((*labels)[1], 1u);
  EXPECT_EQ((*labels)[2], 0u);  // overlaps {0}
  EXPECT_NEAR(losses[0], 0.0, 1e-12);
  EXPECT_GT(losses[2], 0.0);
}

TEST(LimboPhase3Test, NoRepresentativesFails) {
  EXPECT_FALSE(LimboPhase3({MakeDcf(1.0, {0})}, {}).ok());
}

TEST(LimboTest, KClampedToLeafCount) {
  // phi huge -> 1 leaf; k = 3 should clamp, not crash.
  LimboOptions options;
  options.phi = 50.0;
  options.k = 3;
  auto result = RunLimbo(ThreePlantedClusters(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->representatives.size(), 1u);
}

/// Regression: asking for more clusters than Phase 1 left leaves used to
/// fall back to min_k = 1, silently collapsing everything into a single
/// cluster. The correct clip is to the leaf count: one cluster per leaf.
TEST(LimboTest, KAboveLeafCountYieldsOneClusterPerLeaf) {
  // phi = 0 merges only identical objects: the 30 planted objects span 6
  // distinct DCFs (3 templates x 2 jitter values), so 6 leaves.
  LimboOptions options;
  options.phi = 0.0;
  options.k = 10;  // more than the 6 leaves, fewer than the 30 objects
  auto result = RunLimbo(ThreePlantedClusters(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->leaves.size(), 1u);
  ASSERT_LT(result->leaves.size(), options.k);
  EXPECT_EQ(result->representatives.size(), result->leaves.size());
  // Every leaf keeps its own cluster, so all leaf-count labels occur.
  std::vector<bool> used(result->representatives.size(), false);
  for (uint32_t label : result->assignments) {
    ASSERT_LT(label, used.size());
    used[label] = true;
  }
  for (size_t c = 0; c < used.size(); ++c) {
    EXPECT_TRUE(used[c]) << "cluster " << c << " empty";
  }
}

/// Runs parametrized over the worker-lane count: merge sequences,
/// assignments and losses must be bit-identical to the serial path.
class LimboThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LimboThreadsTest, BitIdenticalToSerial) {
  const auto objects = ThreePlantedClusters();
  LimboOptions serial;
  serial.phi = 0.2;
  serial.k = 3;
  serial.threads = 1;
  LimboOptions parallel = serial;
  parallel.threads = GetParam();
  auto a = RunLimbo(objects, serial);
  auto b = RunLimbo(objects, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Phase-2 merge sequence, bit-for-bit (EXPECT_EQ on doubles is exact).
  ASSERT_EQ(a->aib.merges().size(), b->aib.merges().size());
  for (size_t i = 0; i < a->aib.merges().size(); ++i) {
    EXPECT_EQ(a->aib.merges()[i].left, b->aib.merges()[i].left);
    EXPECT_EQ(a->aib.merges()[i].right, b->aib.merges()[i].right);
    EXPECT_EQ(a->aib.merges()[i].delta_i, b->aib.merges()[i].delta_i);
  }
  // Phase-3 assignments and losses.
  EXPECT_EQ(a->assignments, b->assignments);
  ASSERT_EQ(a->assignment_loss.size(), b->assignment_loss.size());
  for (size_t i = 0; i < a->assignment_loss.size(); ++i) {
    EXPECT_EQ(a->assignment_loss[i], b->assignment_loss[i]);
  }
  EXPECT_EQ(b->timings.threads, GetParam());
}

TEST_P(LimboThreadsTest, Phase3BitIdenticalToSerial) {
  const auto objects = ThreePlantedClusters();
  const std::vector<Dcf> reps = {MakeDcf(0.4, {0, 1, 2}),
                                 MakeDcf(0.3, {100, 101, 102}),
                                 MakeDcf(0.3, {200, 201, 202})};
  std::vector<double> serial_loss;
  std::vector<double> parallel_loss;
  auto a = LimboPhase3(objects, reps, &serial_loss, 1);
  auto b = LimboPhase3(objects, reps, &parallel_loss, GetParam());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  ASSERT_EQ(serial_loss.size(), parallel_loss.size());
  for (size_t i = 0; i < serial_loss.size(); ++i) {
    EXPECT_EQ(serial_loss[i], parallel_loss[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, LimboThreadsTest, ::testing::Values(1, 4));

TEST(LimboTest, PhaseTimingsPopulated) {
  LimboOptions options;
  options.phi = 0.2;
  options.k = 3;
  auto result = RunLimbo(ThreePlantedClusters(), options);
  ASSERT_TRUE(result.ok());
  const PhaseTimings& t = result->timings;
  EXPECT_GE(t.threads, 1u);
  EXPECT_GT(t.phase2_distance_evals, 0u);
  EXPECT_EQ(t.phase3_distance_evals,
            30u * result->representatives.size());
  EXPECT_GE(t.phase1_seconds, 0.0);
  EXPECT_GE(t.phase2_seconds, 0.0);
  EXPECT_GE(t.phase3_seconds, 0.0);
  EXPECT_TRUE(t.phase3_ran);
}

TEST(LimboTest, Phase3RanFalseWhenPhase3Skipped) {
  LimboOptions options;
  options.phi = 0.2;
  options.k = 0;  // no requested cluster count: Phase 3 is skipped
  auto result = RunLimbo(ThreePlantedClusters(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->timings.phase3_ran);
  EXPECT_EQ(result->timings.phase3_distance_evals, 0u);
  EXPECT_TRUE(result->assignments.empty());
}

}  // namespace
}  // namespace limbo::core
