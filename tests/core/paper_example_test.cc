// End-to-end reproduction of the paper's running example (Figures 4-11):
// value clustering -> CV_D -> attribute grouping -> FD-RANK -> the
// decomposition comparison of Section 7.

#include <gtest/gtest.h>

#include "core/attribute_grouping.h"
#include "core/fd_rank.h"
#include "core/measures.h"
#include "core/value_clustering.h"
#include "fd/fdep.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::PaperFigure4;

TEST(PaperExampleTest, FullPipelineSection7) {
  const auto rel = PaperFigure4();

  // Mine the FDs the paper discusses (FDEP finds A->B and C->B among
  // others).
  auto fds = fd::Fdep::Mine(rel);
  ASSERT_TRUE(fds.ok());

  // Value clustering at φ_V = 0 and attribute grouping.
  auto values = ClusterValues(rel, {});
  ASSERT_TRUE(values.ok());
  auto grouping = GroupAttributes(rel, *values);
  ASSERT_TRUE(grouping.ok());

  // Keep only the two FDs with RHS B that the paper ranks.
  std::vector<fd::FunctionalDependency> to_rank;
  for (const auto& f : *fds) {
    if (f.rhs == fd::AttributeSet::Single(1) && f.lhs.Count() == 1) {
      to_rank.push_back(f);
    }
  }
  ASSERT_EQ(to_rank.size(), 2u);  // A->B and C->B

  auto ranked = RankFds(to_rank, *grouping);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 2u);

  // C→B must rank first (Section 7), and a decomposition on it removes
  // more redundancy by both measures.
  const auto c_to_b = (*ranked)[0].fd;
  EXPECT_EQ(c_to_b.lhs, fd::AttributeSet::Single(2));
  EXPECT_GT(Rad(rel, {1, 2}), Rad(rel, {0, 1}));
  EXPECT_GT(Rtr(rel, {1, 2}), Rtr(rel, {0, 1}));
}

TEST(PaperExampleTest, TupleReductionOfSection7Decompositions) {
  // "if we use the dependency C→B to decompose the relation into
  // S1=(B,C) and S2=(A,C), the reduction of tuples ... is higher than
  // using A→B to decompose into S1'=(A,B) and S2'=(A,C)".
  const auto rel = PaperFigure4();
  const double reduction_cb = Rtr(rel, {1, 2}) + Rtr(rel, {0, 2});
  const double reduction_ab = Rtr(rel, {0, 1}) + Rtr(rel, {0, 2});
  EXPECT_GT(reduction_cb, reduction_ab);
}

}  // namespace
}  // namespace limbo::core
