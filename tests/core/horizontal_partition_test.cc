#include "core/horizontal_partition.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::core {
namespace {

/// A relation overloaded with two kinds of rows (the paper's motivating
/// product-orders vs. service-orders case): kind 0 uses one vocabulary,
/// kind 1 another, with per-row jitter.
relation::Relation TwoKindsRelation(size_t n, uint64_t seed) {
  util::Random rng(seed);
  std::vector<std::vector<std::string>> rows;
  for (size_t t = 0; t < n; ++t) {
    const int kind = t % 2;
    std::vector<std::string> row;
    for (int a = 0; a < 6; ++a) {
      row.push_back("k" + std::to_string(kind) + "_a" + std::to_string(a) +
                    "_v" + std::to_string(rng.Uniform(3)));
    }
    rows.push_back(std::move(row));
  }
  return limbo::testing::MakeRelation({"A", "B", "C", "D", "E", "F"}, rows);
}

TEST(HorizontalPartitionTest, RecoversPlantedTwoKinds) {
  const auto rel = TwoKindsRelation(60, 11);
  HorizontalPartitionOptions options;
  options.phi = 0.0;
  options.max_k = 6;
  auto result = HorizontallyPartition(rel, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen_k, 2u);
  // All tuples of the same kind share a label.
  for (size_t t = 2; t < rel.NumTuples(); ++t) {
    EXPECT_EQ(result->assignments[t], result->assignments[t % 2]);
  }
  EXPECT_NE(result->assignments[0], result->assignments[1]);
  EXPECT_EQ(result->cluster_sizes[0] + result->cluster_sizes[1],
            rel.NumTuples());
}

TEST(HorizontalPartitionTest, CandidateKsRankedAndLeadByChosen) {
  const auto rel = TwoKindsRelation(60, 31);
  HorizontalPartitionOptions options;
  options.phi = 0.0;
  options.max_k = 6;
  auto result = HorizontallyPartition(rel, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->candidate_ks.empty());
  EXPECT_EQ(result->candidate_ks.front(), result->chosen_k);
  for (size_t k : result->candidate_ks) {
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 6u);
  }
}

TEST(HorizontalPartitionTest, ExplicitKOverridesHeuristic) {
  const auto rel = TwoKindsRelation(40, 13);
  HorizontalPartitionOptions options;
  options.phi = 0.0;
  options.k = 4;
  auto result = HorizontallyPartition(rel, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen_k, 4u);
  EXPECT_EQ(result->cluster_sizes.size(), 4u);
}

TEST(HorizontalPartitionTest, StatsAreOrderedAndConsistent) {
  const auto rel = TwoKindsRelation(40, 17);
  HorizontalPartitionOptions options;
  options.phi = 0.0;
  options.max_k = 5;
  auto result = HorizontallyPartition(rel, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->stats.empty());
  // k strictly decreasing down to 1; info_retained non-increasing with
  // smaller k; conditional entropy non-negative.
  for (size_t i = 0; i + 1 < result->stats.size(); ++i) {
    EXPECT_GT(result->stats[i].k, result->stats[i + 1].k);
    EXPECT_GE(result->stats[i].info_retained,
              result->stats[i + 1].info_retained - 1e-9);
  }
  EXPECT_EQ(result->stats.back().k, 1u);
  for (const auto& s : result->stats) {
    EXPECT_GE(s.conditional_entropy, 0.0);
    EXPECT_GE(s.delta_i, 0.0);
  }
}

TEST(HorizontalPartitionTest, InfoLossSmallForCleanSplit) {
  const auto rel = TwoKindsRelation(60, 19);
  HorizontalPartitionOptions options;
  options.phi = 0.0;
  auto result = HorizontallyPartition(rel, options);
  ASSERT_TRUE(result.ok());
  // Splitting two disjoint-vocabulary kinds loses little information
  // relative to collapsing everything (k=1 would lose 100%).
  EXPECT_LT(result->info_loss_fraction, 0.9);
  EXPECT_GE(result->info_loss_fraction, 0.0);
}

TEST(HorizontalPartitionTest, ClusterValueCountsCoverVocabulary) {
  const auto rel = TwoKindsRelation(60, 23);
  HorizontalPartitionOptions options;
  options.phi = 0.0;
  options.k = 2;
  auto result = HorizontallyPartition(rel, options);
  ASSERT_TRUE(result.ok());
  // The two kinds have disjoint vocabularies; together the clusters cover
  // every distinct value.
  EXPECT_EQ(result->cluster_value_counts[0] + result->cluster_value_counts[1],
            rel.NumValues());
}

TEST(HorizontalPartitionTest, InvalidInputs) {
  const auto rel = TwoKindsRelation(10, 29);
  HorizontalPartitionOptions bad;
  bad.min_k = 5;
  bad.max_k = 2;
  EXPECT_FALSE(HorizontallyPartition(rel, bad).ok());
}

}  // namespace
}  // namespace limbo::core
