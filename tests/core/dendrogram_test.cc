#include "core/dendrogram.h"

#include <gtest/gtest.h>

#include "core/attribute_grouping.h"
#include "core/value_clustering.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

Dcf MakeDcf(double p, std::vector<uint32_t> support) {
  Dcf d;
  d.p = p;
  d.cond = SparseDistribution::UniformOver(support);
  return d;
}

TEST(DendrogramTest, RendersAllLabels) {
  const std::vector<Dcf> inputs = {MakeDcf(0.25, {0, 1}), MakeDcf(0.25, {0, 1}),
                                   MakeDcf(0.25, {5}), MakeDcf(0.25, {6})};
  auto result = AgglomerativeIb(inputs);
  ASSERT_TRUE(result.ok());
  const std::string art = RenderDendrogram(
      *result, {"alpha", "beta", "gamma", "delta"});
  EXPECT_NE(art.find("alpha"), std::string::npos);
  EXPECT_NE(art.find("beta"), std::string::npos);
  EXPECT_NE(art.find("gamma"), std::string::npos);
  EXPECT_NE(art.find("delta"), std::string::npos);
  EXPECT_NE(art.find("max loss"), std::string::npos);
  // Connectors are present.
  EXPECT_NE(art.find('+'), std::string::npos);
  EXPECT_NE(art.find('-'), std::string::npos);
}

TEST(DendrogramTest, SiblingsAreAdjacentRows) {
  // The two identical objects merge first and must be adjacent in the
  // leaf ordering.
  const std::vector<Dcf> inputs = {MakeDcf(0.25, {0, 1}), MakeDcf(0.25, {9}),
                                   MakeDcf(0.25, {0, 1}), MakeDcf(0.25, {7})};
  auto result = AgglomerativeIb(inputs);
  ASSERT_TRUE(result.ok());
  const std::string art =
      RenderDendrogram(*result, {"first", "odd1", "twin", "odd2"});
  const size_t first_pos = art.find("first");
  const size_t twin_pos = art.find("twin");
  ASSERT_NE(first_pos, std::string::npos);
  ASSERT_NE(twin_pos, std::string::npos);
  // Rows are newline-separated; adjacent rows differ by one line.
  const size_t first_line =
      std::count(art.begin(), art.begin() + first_pos, '\n');
  const size_t twin_line =
      std::count(art.begin(), art.begin() + twin_pos, '\n');
  EXPECT_EQ(std::max(first_line, twin_line) -
                std::min(first_line, twin_line),
            1u);
}

TEST(DendrogramTest, SingleLeaf) {
  AibResult result(1, {});
  EXPECT_EQ(RenderDendrogram(result, {"only"}), "only\n");
}

TEST(DendrogramTest, PartialClustering) {
  // min_k = 2 leaves two roots; both subtrees must render.
  const std::vector<Dcf> inputs = {MakeDcf(0.25, {0}), MakeDcf(0.25, {0}),
                                   MakeDcf(0.25, {9}), MakeDcf(0.25, {9})};
  AibOptions options;
  options.min_k = 2;
  auto result = AgglomerativeIb(inputs, options);
  ASSERT_TRUE(result.ok());
  const std::string art = RenderDendrogram(*result, {"a", "b", "c", "d"});
  for (const char* label : {"a", "b", "c", "d"}) {
    EXPECT_NE(art.find(label), std::string::npos);
  }
}

TEST(DendrogramTest, PaperFigure10Shape) {
  // Figure 10: B and C merge first; A joins at the top. B and C must be
  // adjacent rows in the rendering.
  const auto rel = limbo::testing::PaperFigure4();
  auto values = ClusterValues(rel, {});
  ASSERT_TRUE(values.ok());
  auto grouping = GroupAttributes(rel, *values);
  ASSERT_TRUE(grouping.ok());
  std::vector<std::string> labels;
  for (relation::AttributeId a : grouping->attributes) {
    labels.push_back(rel.schema().Name(a));
  }
  const std::string art = RenderDendrogram(grouping->aib, labels);
  const size_t b_line = std::count(
      art.begin(), art.begin() + static_cast<long>(art.find("B")), '\n');
  const size_t c_line = std::count(
      art.begin(), art.begin() + static_cast<long>(art.find("C")), '\n');
  EXPECT_EQ(std::max(b_line, c_line) - std::min(b_line, c_line), 1u);
}

}  // namespace
}  // namespace limbo::core
