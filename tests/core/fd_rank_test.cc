#include "core/fd_rank.h"

#include <gtest/gtest.h>

#include "core/value_clustering.h"
#include "testing/make_relation.h"

namespace limbo::core {
namespace {

using limbo::testing::PaperFigure4;

fd::FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                            std::vector<relation::AttributeId> rhs) {
  return {fd::AttributeSet::FromList(lhs), fd::AttributeSet::FromList(rhs)};
}

AttributeGroupingResult GroupingForFigure4() {
  const auto rel = PaperFigure4();
  auto values = ClusterValues(rel, {});
  EXPECT_TRUE(values.ok());
  auto grouping = GroupAttributes(rel, *values);
  EXPECT_TRUE(grouping.ok());
  return std::move(grouping).value();
}

TEST(FdRankTest, PaperExampleCToBBeatsAToB) {
  // Section 7: with ψ = 0.5 only C→B is anchored to the B+C merge; A→B
  // keeps the maximum loss and ranks below it.
  const auto grouping = GroupingForFigure4();
  const std::vector<fd::FunctionalDependency> fds = {Fd({0}, {1}),
                                                     Fd({2}, {1})};
  auto ranked = RankFds(fds, grouping);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 2u);
  EXPECT_EQ((*ranked)[0].fd, Fd({2}, {1}));  // C -> B first
  EXPECT_TRUE((*ranked)[0].anchored);
  EXPECT_NEAR((*ranked)[0].rank, 0.15766, 1e-4);
  EXPECT_EQ((*ranked)[1].fd, Fd({0}, {1}));
  EXPECT_FALSE((*ranked)[1].anchored);
  EXPECT_NEAR((*ranked)[1].rank, grouping.max_merge_loss, 1e-12);
}

TEST(FdRankTest, PsiZeroAnchorsNothing) {
  const auto grouping = GroupingForFigure4();
  FdRankOptions options;
  options.psi = 0.0;
  auto ranked = RankFds({Fd({2}, {1})}, grouping, options);
  ASSERT_TRUE(ranked.ok());
  EXPECT_FALSE((*ranked)[0].anchored);
}

TEST(FdRankTest, PsiOneAnchorsEverythingCoClustered) {
  const auto grouping = GroupingForFigure4();
  FdRankOptions options;
  options.psi = 1.0;
  auto ranked = RankFds({Fd({0}, {1}), Fd({2}, {1})}, grouping, options);
  ASSERT_TRUE(ranked.ok());
  EXPECT_TRUE((*ranked)[0].anchored);
  EXPECT_TRUE((*ranked)[1].anchored);
}

TEST(FdRankTest, CollapsesSameAntecedentSameRank) {
  // C→B and C→A both anchored at... C→A requires {A,C} co-clustered,
  // which only happens at the last merge. Use two FDs with LHS C whose
  // attribute sets co-cluster at the same merge instead: C→B twice.
  const auto grouping = GroupingForFigure4();
  const std::vector<fd::FunctionalDependency> fds = {Fd({2}, {1}),
                                                     Fd({2}, {1})};
  auto ranked = RankFds(fds, grouping);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 1u);
}

TEST(FdRankTest, CollapseMergesRhs) {
  // Both [A]→B and [A]→C first co-cluster at the final merge with the
  // same (max) rank: Step 2 collapses them into [A]→[B,C].
  const auto grouping = GroupingForFigure4();
  const std::vector<fd::FunctionalDependency> fds = {Fd({0}, {1}),
                                                     Fd({0}, {2})};
  auto ranked = RankFds(fds, grouping);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 1u);
  EXPECT_EQ((*ranked)[0].fd, Fd({0}, {1, 2}));
}

TEST(FdRankTest, TieBreakPrefersWiderFds) {
  const auto grouping = GroupingForFigure4();
  // Both un-anchored (rank = max): the 3-attribute FD ranks first.
  const std::vector<fd::FunctionalDependency> fds = {Fd({0}, {1}),
                                                     Fd({0, 2}, {1})};
  FdRankOptions options;
  options.psi = 0.0;  // nothing anchors
  auto ranked = RankFds(fds, grouping, options);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 2u);
  EXPECT_EQ((*ranked)[0].fd, Fd({0, 2}, {1}));
}

TEST(FdRankTest, FdWithAttributeOutsideAdKeepsMaxRank) {
  // An FD whose attributes never co-cluster (not all in A_D).
  const auto rel = limbo::testing::MakeRelation(
      {"A", "B", "D"},
      {{"a", "1", "d1"}, {"a", "1", "d2"}, {"w", "2", "d3"}, {"y", "2", "d4"}});
  auto values = ClusterValues(rel, {});
  ASSERT_TRUE(values.ok());
  auto grouping = GroupAttributes(rel, *values);
  ASSERT_TRUE(grouping.ok());
  auto ranked = RankFds({Fd({2}, {0})}, *grouping);  // D -> A
  ASSERT_TRUE(ranked.ok());
  EXPECT_FALSE((*ranked)[0].anchored);
  EXPECT_DOUBLE_EQ((*ranked)[0].rank, grouping->max_merge_loss);
}

TEST(FdRankTest, RejectsBadPsi) {
  const auto grouping = GroupingForFigure4();
  FdRankOptions options;
  options.psi = 1.5;
  EXPECT_FALSE(RankFds({}, grouping, options).ok());
}

TEST(FdRankTest, EmptyInputYieldsEmptyOutput) {
  const auto grouping = GroupingForFigure4();
  auto ranked = RankFds({}, grouping);
  ASSERT_TRUE(ranked.ok());
  EXPECT_TRUE(ranked->empty());
}

}  // namespace
}  // namespace limbo::core
