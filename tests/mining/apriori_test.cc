#include "mining/apriori.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/value_clustering.h"
#include "testing/make_relation.h"

namespace limbo::mining {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;

/// Looks up the support of a given itemset (by value texts under
/// attribute indexes), or 0 if absent.
uint64_t SupportOf(const relation::Relation& rel,
                   const std::vector<Itemset>& itemsets,
                   const std::vector<std::pair<relation::AttributeId,
                                               std::string>>& spec) {
  std::vector<relation::ValueId> want;
  for (const auto& [attr, text] : spec) {
    auto v = rel.dictionary().Find(attr, text);
    if (!v.ok()) return 0;
    want.push_back(v.value());
  }
  std::sort(want.begin(), want.end());
  for (const Itemset& s : itemsets) {
    if (s.items == want) return s.support;
  }
  return 0;
}

TEST(AprioriTest, SingletonSupports) {
  const auto rel = PaperFigure4();
  auto result = MineFrequentItemsets(rel, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SupportOf(rel, *result, {{0, "a"}}), 2u);
  EXPECT_EQ(SupportOf(rel, *result, {{1, "2"}}), 3u);
  EXPECT_EQ(SupportOf(rel, *result, {{2, "x"}}), 3u);
  // Values below min_support (2) are absent.
  EXPECT_EQ(SupportOf(rel, *result, {{0, "w"}}), 0u);
}

TEST(AprioriTest, PairCoOccurrence) {
  const auto rel = PaperFigure4();
  auto result = MineFrequentItemsets(rel, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SupportOf(rel, *result, {{0, "a"}, {1, "1"}}), 2u);
  EXPECT_EQ(SupportOf(rel, *result, {{1, "2"}, {2, "x"}}), 3u);
  // a and 2 never co-occur.
  EXPECT_EQ(SupportOf(rel, *result, {{0, "a"}, {1, "2"}}), 0u);
}

TEST(AprioriTest, MinSupportFilters) {
  const auto rel = PaperFigure4();
  AprioriOptions options;
  options.min_support = 3;
  auto result = MineFrequentItemsets(rel, options);
  ASSERT_TRUE(result.ok());
  for (const Itemset& s : *result) EXPECT_GE(s.support, 3u);
  EXPECT_EQ(SupportOf(rel, *result, {{0, "a"}}), 0u);  // support 2 < 3
}

TEST(AprioriTest, MaxSizeLimitsLevels) {
  const auto rel = PaperFigure4();
  AprioriOptions options;
  options.max_size = 1;
  auto result = MineFrequentItemsets(rel, options);
  ASSERT_TRUE(result.ok());
  for (const Itemset& s : *result) EXPECT_EQ(s.items.size(), 1u);
}

TEST(AprioriTest, SupportsAreDownwardClosed) {
  const auto rel = MakeRelation({"A", "B", "C"},
                                {{"1", "x", "p"},
                                 {"1", "x", "p"},
                                 {"1", "x", "q"},
                                 {"2", "y", "p"}});
  auto result = MineFrequentItemsets(rel, {});
  ASSERT_TRUE(result.ok());
  // Every itemset's support is <= that of each of its subsets.
  for (const Itemset& s : *result) {
    for (size_t drop = 0; drop < s.items.size() && s.items.size() > 1;
         ++drop) {
      std::vector<relation::ValueId> subset;
      for (size_t i = 0; i < s.items.size(); ++i) {
        if (i != drop) subset.push_back(s.items[i]);
      }
      for (const Itemset& sub : *result) {
        if (sub.items == subset) EXPECT_GE(sub.support, s.support);
      }
    }
  }
}

TEST(AprioriTest, RejectsZeroSupport) {
  const auto rel = PaperFigure4();
  AprioriOptions options;
  options.min_support = 0;
  EXPECT_FALSE(MineFrequentItemsets(rel, options).ok());
}

TEST(AprioriTest, AlignsWithPhiZeroValueClustering) {
  // The paper (Section 8.1.2) notes that φ_V = 0 value clustering finds
  // exactly the perfectly co-occurring value groups — for each CV_D group
  // there must be a frequent itemset with support = the members' common
  // support.
  const auto rel = PaperFigure4();
  auto clusters = core::ClusterValues(rel, {});
  ASSERT_TRUE(clusters.ok());
  auto itemsets = MineFrequentItemsets(rel, {});
  ASSERT_TRUE(itemsets.ok());
  for (size_t gi : clusters->duplicate_groups) {
    std::vector<relation::ValueId> items = clusters->groups[gi].values;
    std::sort(items.begin(), items.end());
    bool found = false;
    for (const Itemset& s : *itemsets) {
      if (s.items == items) {
        found = true;
        EXPECT_EQ(s.support,
                  rel.dictionary().Support(items[0]));
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace limbo::mining
