#include "mining/similarity.h"

#include <gtest/gtest.h>

#include "datagen/db2_sample.h"
#include "datagen/error_inject.h"
#include "testing/make_relation.h"

namespace limbo::mining {
namespace {

using limbo::testing::MakeRelation;

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("a", "b"), 1u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("Boston", "Bostn"), EditDistance("Bostn", "Boston"));
}

TEST(NormalizedSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(NormalizedSimilarity("x", "x"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedSimilarity("ab", "cd"), 0.0);
  EXPECT_NEAR(NormalizedSimilarity("Pat", "Pate"), 0.75, 1e-12);
}

TEST(TupleSimilarityTest, AveragesOverAttributes) {
  const auto rel = MakeRelation(
      {"A", "B"}, {{"same", "abcd"}, {"same", "abxy"}});
  // A identical (1.0), B half-matching (0.5) -> mean 0.75.
  EXPECT_NEAR(TupleSimilarity(rel, 0, 1), 0.75, 1e-12);
}

TEST(RefineTest, DropsDissimilarMembersAndSmallGroups) {
  const auto rel = MakeRelation({"A", "B"}, {{"alpha", "111"},
                                             {"alphb", "111"},
                                             {"zzzzz", "999"},
                                             {"beta", "222"}});
  core::DuplicateTupleReport report;
  core::DuplicateTupleGroup group;
  group.tuples = {0, 1, 2};  // 2 is a false positive
  report.groups.push_back(group);
  core::DuplicateTupleGroup lonely;
  lonely.tuples = {3, 2};  // dissolves entirely
  report.groups.push_back(lonely);

  const auto refined = RefineWithStringSimilarity(rel, report, 0.7);
  ASSERT_EQ(refined.groups.size(), 1u);
  EXPECT_EQ(refined.groups[0].tuples,
            (std::vector<relation::TupleId>{0, 1}));
}

TEST(RefineTest, SeparatesTypoDuplicatesFromStructuralLookalikes) {
  // The future-work combination the paper sketches: information-theoretic
  // clustering finds tuples with heavily overlapping *value sets*; string
  // similarity then distinguishes typo-level duplicates from tuples that
  // merely share vocabulary. Rows 0/1 are a typo pair (one char differs);
  // rows 2/3 share two categorical values but their identifiers are
  // textually unrelated.
  const auto rel = MakeRelation(
      {"Id", "Color", "Shape"},
      {{"invoice-2024-001", "red", "circle"},
       {"invoice-2024-O01", "red", "circle"},    // typo duplicate of row 0
       {"alpha-alpha-alpha", "blue", "square"},
       {"zzz-9999-qqq", "blue", "square"}});     // lookalike, not a dup
  core::DuplicateTupleReport report;
  core::DuplicateTupleGroup typo_group;
  typo_group.tuples = {0, 1};
  core::DuplicateTupleGroup lookalike_group;
  lookalike_group.tuples = {2, 3};
  report.groups = {typo_group, lookalike_group};

  const auto refined = RefineWithStringSimilarity(rel, report, 0.9);
  ASSERT_EQ(refined.groups.size(), 1u);
  EXPECT_EQ(refined.groups[0].tuples, (std::vector<relation::TupleId>{0, 1}));
}

TEST(RefineTest, EndToEndWithTupleClustering) {
  // Full pipeline: cluster, then refine. The injected duplicate of the
  // DB2 relation stays grouped with its source after refinement at a
  // threshold the pair clears (1 altered cell of 19 ≈ 0.95 similarity).
  auto base = datagen::Db2Sample::JoinedRelation();
  datagen::ErrorInjectionOptions inject;
  inject.num_dirty_tuples = 5;
  inject.values_altered = 1;
  auto dirty = datagen::InjectErrors(*base, inject);
  ASSERT_TRUE(dirty.ok());
  core::DuplicateTupleOptions options;
  options.phi_t = 0.3;
  auto report = core::FindDuplicateTuples(dirty->dirty, options);
  ASSERT_TRUE(report.ok());
  const auto refined =
      RefineWithStringSimilarity(dirty->dirty, *report, 0.9);
  for (const auto& record : dirty->records) {
    bool together = false;
    for (const auto& g : refined.groups) {
      bool has_dirty = false;
      bool has_source = false;
      for (relation::TupleId t : g.tuples) {
        has_dirty |= (t == record.dirty_id);
        has_source |= (t == record.source_id);
      }
      together |= (has_dirty && has_source);
    }
    EXPECT_TRUE(together) << "lost duplicate pair (" << record.source_id
                          << ", " << record.dirty_id << ")";
  }
}

TEST(RefineTest, ThresholdOneKeepsOnlyExactDuplicates) {
  const auto rel = MakeRelation({"A"}, {{"x"}, {"x"}, {"y"}});
  core::DuplicateTupleReport report;
  core::DuplicateTupleGroup group;
  group.tuples = {0, 1, 2};
  report.groups.push_back(group);
  const auto refined = RefineWithStringSimilarity(rel, report, 1.0);
  ASSERT_EQ(refined.groups.size(), 1u);
  EXPECT_EQ(refined.groups[0].tuples, (std::vector<relation::TupleId>{0, 1}));
}

}  // namespace
}  // namespace limbo::mining
