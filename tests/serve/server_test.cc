// In-process TCP integration tests for serve::Server: the connection-
// handling regressions (SIGPIPE, EINTR, final-line flush, shed), model
// routing over the wire, and hot reload under concurrent load.

#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/prob.h"
#include "gtest/gtest.h"
#include "model/fit.h"
#include "model/model_bundle.h"
#include "relation/relation.h"
#include "serve/registry.h"
#include "util/json.h"

namespace limbo::serve {
namespace {

std::vector<std::vector<std::string>> TestRows() {
  return {
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Denver", "CO", "80201", "bob"},   {"Denver", "CO", "80201", "carol"},
      {"Miami", "FL", "33101", "dave"},   {"Miami", "FL", "33101", "erin"},
      {"Austin", "TX", "73301", "frank"}, {"Austin", "TX", "73301", "grace"},
      {"Salem", "OR", "97301", "heidi"},  {"Salem", "OR", "97301", "ivan"},
  };
}

relation::Relation TestRelation() {
  auto schema = relation::Schema::Create({"City", "State", "Zip", "Name"});
  EXPECT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  for (const auto& row : TestRows()) {
    EXPECT_TRUE(builder.AddRow(row).ok());
  }
  return std::move(builder).Build();
}

std::string SaveBundle(size_t k, const std::string& tag) {
  model::FitOptions options;
  options.k = k;
  auto bundle = model::FitModel(TestRelation(), options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::string path = testing::TempDir() + "server_test_" + tag + "_" +
                           std::to_string(getpid()) + ".limbo";
  EXPECT_TRUE(model::Save(*bundle, path).ok());
  return path;
}

/// Minimal blocking loopback client. Sends use MSG_NOSIGNAL so a test
/// never dies of SIGPIPE itself; reads are newline-framed with a
/// deadline so a server bug fails the test instead of hanging it.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    int rc;
    do {
      rc = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t w =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return Send(line + "\n"); }

  /// One '\n'-terminated response, newline stripped. False on error,
  /// close, or a 5s deadline (server hung).
  bool ReadLine(std::string* line) {
    line->clear();
    for (int spins = 0; spins < 500; ++spins) {
      const size_t newline = buffered_.find('\n');
      if (newline != std::string::npos) {
        line->assign(buffered_, 0, newline);
        buffered_.erase(0, newline + 1);
        return true;
      }
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 10);
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;
      char chunk[4096];
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n == 0) {
        // Orderly close: a final unterminated payload counts as a line.
        if (buffered_.empty()) return false;
        line->swap(buffered_);
        return true;
      }
      if (n < 0) return false;
      buffered_.append(chunk, static_cast<size_t>(n));
    }
    return false;  // deadline
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffered_;
};

/// Fixture: a two-model registry (wide k=3, narrow k=2) behind a live
/// server whose acceptor runs on a fixture-owned thread.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(size_t workers = 2, size_t max_pending = 128,
                   size_t batch_max = 16, size_t cache_entries = 0) {
    signal(SIGPIPE, SIG_IGN);  // the daemon does this too
    wide_path_ = SaveBundle(3, "wide");
    narrow_path_ = SaveBundle(2, "narrow");
    registry_ = std::make_unique<Registry>(EngineOptions{}, cache_entries);
    ASSERT_TRUE(registry_->AddModel("wide", wide_path_).ok());
    ASSERT_TRUE(registry_->AddModel("narrow", narrow_path_).ok());
    ServerOptions options;
    options.port = 0;
    options.workers = workers;
    options.max_pending = max_pending;
    options.poll_ms = 10;
    options.batch_max = batch_max;
    auto server = Server::Start(registry_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    stop_.store(0);
    reload_.store(0);
    acceptor_ = std::thread(
        [this] { server_->Run(&stop_, &reload_); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      stop_.store(1);
      acceptor_.join();
      server_.reset();
    }
    if (!wide_path_.empty()) ::unlink(wide_path_.c_str());
    if (!narrow_path_.empty()) ::unlink(narrow_path_.c_str());
  }

  int port() const { return server_->port(); }

  std::unique_ptr<Registry> registry_;
  std::unique_ptr<Server> server_;
  std::thread acceptor_;
  std::atomic<int> stop_{0};
  std::atomic<int> reload_{0};
  std::string wide_path_;
  std::string narrow_path_;
};

/// The expected response for a query, computed straight through the
/// registry (the TCP path must be byte-identical to it).
std::string Expected(Registry* registry, const std::string& query) {
  core::LossKernel kernel;
  return registry->HandleLine(query, &kernel);
}

TEST_F(ServerTest, RoutesQueriesByModelOverTcp) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  std::string response;

  ASSERT_TRUE(client.SendLine("{\"op\":\"info\",\"model\":\"wide\"}"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":3"), std::string::npos) << response;

  ASSERT_TRUE(client.SendLine("{\"op\":\"info\",\"model\":\"narrow\"}"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":2"), std::string::npos) << response;

  // Default model (first registered) answers when "model" is omitted.
  ASSERT_TRUE(client.SendLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":3"), std::string::npos) << response;

  ASSERT_TRUE(client.SendLine("{\"op\":\"info\",\"model\":\"missing\"}"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"code\":\"NotFound\""), std::string::npos)
      << response;

  // The connection survived the error and still answers.
  ASSERT_TRUE(client.SendLine("{\"op\":\"models\"}"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"default\":\"wide\""), std::string::npos)
      << response;
}

TEST_F(ServerTest, TcpMatchesRegistryByteForByte) {
  StartServer();
  const std::vector<std::string> queries = {
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}",
      "{\"op\":\"assign\",\"model\":\"narrow\","
      "\"row\":[\"Miami\",\"FL\",\"33101\",\"dave\"]}",
      "{\"op\":\"info\",\"model\":\"narrow\"}",
      "{\"op\":\"attrs\"}",
      "not json at all",
  };
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  for (const std::string& query : queries) {
    std::string response;
    ASSERT_TRUE(client.SendLine(query));
    ASSERT_TRUE(client.ReadLine(&response));
    EXPECT_EQ(response, Expected(registry_.get(), query)) << query;
  }
}

// Regression (satellite 1): a client that vanishes between request and
// response must not bring the daemon down with SIGPIPE. The response
// send hits a dead peer; with MSG_NOSIGNAL that is an EPIPE on one
// connection, and the server keeps serving everyone else.
TEST_F(ServerTest, AbruptClientDisconnectDoesNotKillServer) {
  StartServer(/*workers=*/2);
  for (int round = 0; round < 20; ++round) {
    TestClient doomed;
    ASSERT_TRUE(doomed.Connect(port()));
    // Large-ish op so the response spans several sends; close without
    // reading any of it.
    ASSERT_TRUE(doomed.SendLine("{\"op\":\"fds\",\"limit\":50}"));
    doomed.Close();
  }
  // The server is still alive and correct.
  TestClient checker;
  ASSERT_TRUE(checker.Connect(port()));
  std::string response;
  ASSERT_TRUE(checker.SendLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(checker.ReadLine(&response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
}

// Regression (satellite 4): the final query of a connection that shuts
// down its write side without a trailing newline is still answered.
TEST_F(ServerTest, FinalLineWithoutNewlineIsAnswered) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  std::string response;
  ASSERT_TRUE(client.SendLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(client.ReadLine(&response));
  ASSERT_TRUE(client.Send("{\"op\":\"info\",\"model\":\"narrow\"}"));
  client.ShutdownWrite();
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":2"), std::string::npos) << response;
}

// Regression (satellite 2): a signal storm against the serving process
// must not drop connections or corrupt responses — every blocked socket
// call gets EINTR-retried. The handler is installed without SA_RESTART
// (like the daemon's) so the syscalls really do see EINTR.
TEST_F(ServerTest, SurvivesSignalStorm) {
  struct sigaction sa = {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, nullptr), 0);

  StartServer(/*workers=*/2);
  std::atomic<bool> storming{true};
  std::thread storm([&storming] {
    while (storming.load()) {
      ::kill(getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const std::string query = "{\"op\":\"fds\",\"limit\":20}";
  const std::string want = Expected(registry_.get(), query);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  for (int i = 0; i < 200; ++i) {
    std::string response;
    ASSERT_TRUE(client.SendLine(query)) << "send failed at " << i;
    ASSERT_TRUE(client.ReadLine(&response)) << "read failed at " << i;
    ASSERT_EQ(response, want) << "corrupted at " << i;
  }
  storming.store(false);
  storm.join();
}

// Admission control: with one lane occupied and a pending queue of one,
// a third concurrent connection is shed immediately with "overloaded"
// rather than waiting behind the slow client.
TEST_F(ServerTest, ShedsWhenPendingQueueFull) {
  StartServer(/*workers=*/1, /*max_pending=*/1);

  // Occupy the single lane: connect and get an answer, keep it open.
  TestClient busy;
  ASSERT_TRUE(busy.Connect(port()));
  std::string response;
  ASSERT_TRUE(busy.SendLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(busy.ReadLine(&response));

  // Fill the pending queue (never served while `busy` holds the lane).
  TestClient waiting;
  ASSERT_TRUE(waiting.Connect(port()));
  // Give the acceptor a beat to queue it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Overflow: must be shed with the documented error, not queued.
  bool shed_seen = false;
  for (int attempt = 0; attempt < 50 && !shed_seen; ++attempt) {
    TestClient overflow;
    ASSERT_TRUE(overflow.Connect(port()));
    std::string reply;
    if (overflow.ReadLine(&reply) &&
        reply.find("\"code\":\"overloaded\"") != std::string::npos) {
      shed_seen = true;
    }
  }
  EXPECT_TRUE(shed_seen);
  EXPECT_GE(server_->sheds(), 1u);

  // The busy connection is unaffected by the shedding.
  ASSERT_TRUE(busy.SendLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(busy.ReadLine(&response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
}

// The tentpole guarantee: hot reload under live concurrent traffic
// drops nothing and never serves a half-loaded model. Clients hammer
// both models with known-answer queries while reloads fire; every
// response must be byte-identical to one of the model's valid states
// (here the bundle file never changes, so THE valid state).
TEST_F(ServerTest, ReloadUnderLoadDropsNothing) {
  StartServer(/*workers=*/4);
  const char* models[2] = {"wide", "narrow"};
  std::string queries[2];
  std::string want[2];
  for (int m = 0; m < 2; ++m) {
    queries[m] = std::string("{\"op\":\"assign\",\"model\":\"") + models[m] +
                 "\",\"row\":[\"Denver\",\"CO\",\"80201\",\"bob\"]}";
    want[m] = Expected(registry_.get(), queries[m]);
  }

  std::atomic<bool> failed{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const int m = c % 2;
      TestClient client;
      if (!client.Connect(port())) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < 150 && !failed.load(); ++i) {
        std::string response;
        if (!client.SendLine(queries[m]) || !client.ReadLine(&response) ||
            response != want[m]) {
          failed.store(true);
          return;
        }
        answered.fetch_add(1);
      }
    });
  }

  // ~20 blue/green reloads through the admin protocol, mid-traffic.
  TestClient admin;
  ASSERT_TRUE(admin.Connect(port()));
  uint64_t reloads_ok = 0;
  for (int r = 0; r < 20; ++r) {
    std::string response;
    ASSERT_TRUE(admin.SendLine("{\"op\":\"reload\"}"));
    ASSERT_TRUE(admin.ReadLine(&response));
    if (response.find("\"ok\":true") != std::string::npos) ++reloads_ok;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::thread& client : clients) client.join();

  EXPECT_FALSE(failed.load()) << "a response was dropped or mixed";
  EXPECT_EQ(answered.load(), 4u * 150u);
  EXPECT_EQ(reloads_ok, 20u);
  // 20 reloads x 2 models, versions end at 21.
  for (const ModelInfo& info : registry_->ListModels()) {
    EXPECT_EQ(info.version, 21u) << info.name;
  }
}

// SIGHUP semantics: the reload flag handed to Run triggers ReloadAll
// without dropping the connection that is mid-conversation.
TEST_F(ServerTest, ReloadFlagTriggersReloadAll) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  std::string response;
  ASSERT_TRUE(client.SendLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(client.ReadLine(&response));

  reload_.store(1);  // what the SIGHUP handler does
  // The acceptor clears the flag before it starts reloading (so a HUP
  // arriving mid-reload queues another pass), so poll the versions.
  bool reloaded = false;
  for (int spins = 0; spins < 500 && !reloaded; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    reloaded = true;
    for (const ModelInfo& info : registry_->ListModels()) {
      reloaded = reloaded && info.version == 2u;
    }
  }
  EXPECT_TRUE(reloaded);
  EXPECT_EQ(reload_.load(), 0);

  // Same connection, still fine, now served by the v2 engines.
  ASSERT_TRUE(client.SendLine("{\"op\":\"info\",\"model\":\"narrow\"}"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_NE(response.find("\"clusters\":2"), std::string::npos) << response;
}

// Responses over TCP are bit-identical at every worker count (each lane
// owns its LossKernel; assignment is a pure function of row and model).
TEST_F(ServerTest, BitIdenticalAcrossWorkerCounts) {
  StartServer(/*workers=*/4);
  std::vector<std::string> queries;
  for (const auto& row : TestRows()) {
    std::string q = "{\"op\":\"assign\",\"row\":[";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) q.push_back(',');
      util::AppendJsonString(row[i], &q);
    }
    q += "]}";
    queries.push_back(std::move(q));
  }
  std::vector<std::string> want;
  want.reserve(queries.size());
  for (const std::string& query : queries) {
    want.push_back(Expected(registry_.get(), query));
  }

  // 4 concurrent connections, all sending the full query set.
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      TestClient client;
      if (!client.Connect(port())) {
        failed.store(true);
        return;
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        std::string response;
        if (!client.SendLine(queries[i]) || !client.ReadLine(&response) ||
            response != want[i]) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_FALSE(failed.load());
}

// Cross-request batching must never change bytes: clients pipeline the
// whole query set in a single send (so worker lanes really do drain
// multi-line batches) and every response must match the per-line
// registry path, in order. Exercised at 1 and 4 workers.
class BatchedServerTest : public ServerTest {
 protected:
  void RunPipelinedBatchTest(size_t workers) {
    StartServer(workers, /*max_pending=*/128, /*batch_max=*/8);
    std::vector<std::string> queries;
    for (const auto& row : TestRows()) {
      std::string q = "{\"op\":\"assign\",\"row\":[";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) q.push_back(',');
        util::AppendJsonString(row[i], &q);
      }
      q += "]}";
      queries.push_back(std::move(q));
    }
    queries.push_back(
        "{\"op\":\"duplicates\",\"model\":\"narrow\","
        "\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}");
    queries.push_back("{\"op\":\"info\",\"model\":\"narrow\"}");
    queries.push_back("not json at all");
    std::vector<std::string> want;
    want.reserve(queries.size());
    for (const std::string& query : queries) {
      want.push_back(Expected(registry_.get(), query));
    }
    std::string pipelined;
    for (const std::string& query : queries) {
      pipelined += query;
      pipelined.push_back('\n');
    }

    std::atomic<bool> failed{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&] {
        TestClient client;
        if (!client.Connect(port()) || !client.Send(pipelined)) {
          failed.store(true);
          return;
        }
        for (size_t i = 0; i < queries.size(); ++i) {
          std::string response;
          if (!client.ReadLine(&response) || response != want[i]) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    EXPECT_FALSE(failed.load());
    // The pipelined burst actually exercised multi-request batches.
    EXPECT_GT(server_->batched_requests(), server_->batches());
  }
};

TEST_F(BatchedServerTest, PipelinedBatchesMatchSinglePathOneWorker) {
  RunPipelinedBatchTest(1);
}

TEST_F(BatchedServerTest, PipelinedBatchesMatchSinglePathFourWorkers) {
  RunPipelinedBatchTest(4);
}

// The cache-invalidation guarantee end to end: fill the response cache,
// hot-reload to a bundle with different assignments, and assert that no
// query sent after the reload acknowledgment is ever answered from the
// stale engine — under live concurrent load the whole time.
TEST_F(ServerTest, CacheInvalidatedOnReloadUnderConcurrentLoad) {
  StartServer(/*workers=*/4, /*max_pending=*/128, /*batch_max=*/8,
              /*cache_entries=*/256);
  const std::string info_query = "{\"op\":\"info\",\"model\":\"wide\"}";
  const std::string assign_query =
      "{\"op\":\"assign\",\"model\":\"wide\","
      "\"row\":[\"Denver\",\"CO\",\"80201\",\"bob\"]}";
  // Pre-reload expectations (also the cache fill), and post-reload ones:
  // after the wide file is overwritten with the narrow bundle, "wide"
  // must answer with the narrow engine's bytes.
  const std::string pre_info = Expected(registry_.get(), info_query);
  const std::string pre_assign = Expected(registry_.get(), assign_query);
  const std::string post_info = Expected(
      registry_.get(), "{\"op\":\"info\",\"model\":\"narrow\"}");
  const std::string post_assign = Expected(
      registry_.get(),
      "{\"op\":\"assign\",\"model\":\"narrow\","
      "\"row\":[\"Denver\",\"CO\",\"80201\",\"bob\"]}");
  ASSERT_NE(pre_info, post_info);  // k=3 vs k=2: the states are distinct

  // Concurrent load: every response must be a valid engine state —
  // pre-reload or post-reload bytes, nothing else (stale-mixed, torn).
  std::atomic<bool> failed{false};
  std::atomic<bool> running{true};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      const std::string& query = (c % 2 == 0) ? info_query : assign_query;
      const std::string& pre = (c % 2 == 0) ? pre_info : pre_assign;
      const std::string& post = (c % 2 == 0) ? post_info : post_assign;
      TestClient client;
      if (!client.Connect(port())) {
        failed.store(true);
        return;
      }
      while (running.load() && !failed.load()) {
        std::string response;
        if (!client.SendLine(query) || !client.ReadLine(&response) ||
            (response != pre && response != post)) {
          failed.store(true);
          return;
        }
      }
    });
  }

  // Warm the cache on the old version, then blue/green: overwrite the
  // wide bundle with the narrow one and reload through the admin op.
  {
    TestClient warm;
    ASSERT_TRUE(warm.Connect(port()));
    std::string response;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(warm.SendLine(info_query));
      ASSERT_TRUE(warm.ReadLine(&response));
      ASSERT_TRUE(warm.SendLine(assign_query));
      ASSERT_TRUE(warm.ReadLine(&response));
    }
  }
  {
    std::ifstream in(narrow_path_, std::ios::binary);
    std::ofstream out(wide_path_, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
  }
  TestClient admin;
  ASSERT_TRUE(admin.Connect(port()));
  std::string reload_response;
  ASSERT_TRUE(admin.SendLine("{\"op\":\"reload\",\"model\":\"wide\"}"));
  ASSERT_TRUE(admin.ReadLine(&reload_response));
  ASSERT_NE(reload_response.find("\"ok\":true"), std::string::npos)
      << reload_response;

  // Zero stale responses: every query sent after the reload ack must
  // carry the new engine's bytes — the version-keyed cache cannot serve
  // version-1 entries to version-2 lookups.
  std::string response;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(admin.SendLine(info_query));
    ASSERT_TRUE(admin.ReadLine(&response));
    EXPECT_EQ(response, post_info) << "stale response after reload, i=" << i;
    ASSERT_TRUE(admin.SendLine(assign_query));
    ASSERT_TRUE(admin.ReadLine(&response));
    EXPECT_EQ(response, post_assign)
        << "stale response after reload, i=" << i;
  }

  running.store(false);
  for (std::thread& client : clients) client.join();
  EXPECT_FALSE(failed.load()) << "a response matched neither engine state";
  EXPECT_GT(registry_->CacheHits(), 0u);
}

}  // namespace
}  // namespace limbo::serve
