#include "serve/registry.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/prob.h"
#include "gtest/gtest.h"
#include "model/fit.h"
#include "model/model_bundle.h"
#include "model/refit.h"
#include "relation/relation.h"
#include "relation/row_source.h"
#include "util/json.h"

namespace limbo::serve {
namespace {

using util::JsonValue;

std::vector<std::vector<std::string>> TestRows() {
  return {
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Denver", "CO", "80201", "bob"},   {"Denver", "CO", "80201", "carol"},
      {"Miami", "FL", "33101", "dave"},   {"Miami", "FL", "33101", "erin"},
      {"Austin", "TX", "73301", "frank"}, {"Austin", "TX", "73301", "grace"},
      {"Salem", "OR", "97301", "heidi"},  {"Salem", "OR", "97301", "ivan"},
  };
}

relation::Relation TestRelation() {
  auto schema = relation::Schema::Create({"City", "State", "Zip", "Name"});
  EXPECT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  for (const auto& row : TestRows()) {
    EXPECT_TRUE(builder.AddRow(row).ok());
  }
  return std::move(builder).Build();
}

/// Fits a k-cluster bundle over the shared test relation and freezes it
/// to a unique temp path. Returns the path.
std::string SaveBundle(size_t k, const std::string& tag) {
  model::FitOptions options;
  options.k = k;
  auto bundle = model::FitModel(TestRelation(), options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::string path = testing::TempDir() + "registry_test_" + tag +
                           "_" + std::to_string(getpid()) + ".limbo";
  EXPECT_TRUE(model::Save(*bundle, path).ok());
  return path;
}

JsonValue ParseResponse(const std::string& response) {
  auto parsed = util::ParseJson(response);
  EXPECT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(parsed->kind, JsonValue::Kind::kObject) << response;
  return std::move(parsed).value();
}

bool ResponseOk(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBoolean &&
         ok->boolean;
}

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* code = response.Find("code");
  return code != nullptr && code->kind == JsonValue::Kind::kString
             ? code->str
             : "";
}

double NumberField(const JsonValue& response, const char* key) {
  const JsonValue* field = response.Find(key);
  EXPECT_NE(field, nullptr) << key;
  if (field == nullptr) return -1.0;
  if (field->kind == JsonValue::Kind::kInteger) {
    return static_cast<double>(field->integer);
  }
  EXPECT_EQ(field->kind, JsonValue::Kind::kNumber) << key;
  return field->number;
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wide_path_ = SaveBundle(3, "wide");
    narrow_path_ = SaveBundle(2, "narrow");
  }

  void TearDown() override {
    ::unlink(wide_path_.c_str());
    ::unlink(narrow_path_.c_str());
  }

  std::string wide_path_;
  std::string narrow_path_;
};

TEST_F(RegistryTest, FirstModelBecomesDefault) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  ASSERT_TRUE(registry.AddModel("narrow", narrow_path_).ok());
  EXPECT_EQ(registry.NumModels(), 2u);
  EXPECT_EQ(registry.DefaultName(), "wide");
  ASSERT_TRUE(registry.SetDefault("narrow").ok());
  EXPECT_EQ(registry.DefaultName(), "narrow");
  EXPECT_FALSE(registry.SetDefault("missing").ok());
}

TEST_F(RegistryTest, DuplicateNameIsRejected) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("m", wide_path_).ok());
  const util::Status status = registry.AddModel("m", narrow_path_);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(registry.NumModels(), 1u);
}

TEST_F(RegistryTest, MissingBundleRegistersNothing) {
  Registry registry;
  EXPECT_FALSE(registry.AddModel("m", "/nonexistent/never.limbo").ok());
  EXPECT_EQ(registry.NumModels(), 0u);
  EXPECT_EQ(registry.Lookup(""), nullptr);
}

TEST_F(RegistryTest, AddDirectoryScansSortedLimboFiles) {
  const std::string dir =
      testing::TempDir() + "registry_dir_" + std::to_string(getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  {
    std::ifstream in(wide_path_, std::ios::binary);
    std::ofstream a(dir + "/alpha.limbo", std::ios::binary);
    a << in.rdbuf();
  }
  {
    std::ifstream in(narrow_path_, std::ios::binary);
    std::ofstream b(dir + "/beta.limbo", std::ios::binary);
    b << in.rdbuf();
  }
  // Non-bundle files are ignored, not errors.
  { std::ofstream skip(dir + "/notes.txt"); skip << "skip me\n"; }

  Registry registry;
  ASSERT_TRUE(registry.AddDirectory(dir).ok());
  EXPECT_EQ(registry.NumModels(), 2u);
  EXPECT_EQ(registry.DefaultName(), "alpha");  // lexicographic first
  EXPECT_NE(registry.Lookup("beta"), nullptr);

  Registry empty;
  const std::string empty_dir = dir + "/nothing_here";
  ASSERT_EQ(::mkdir(empty_dir.c_str(), 0755), 0);
  EXPECT_FALSE(empty.AddDirectory(empty_dir).ok());

  ::unlink((dir + "/alpha.limbo").c_str());
  ::unlink((dir + "/beta.limbo").c_str());
  ::unlink((dir + "/notes.txt").c_str());
  ::rmdir(empty_dir.c_str());
  ::rmdir(dir.c_str());
}

TEST_F(RegistryTest, HandleLineRoutesByModelField) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  ASSERT_TRUE(registry.AddModel("narrow", narrow_path_).ok());
  core::LossKernel kernel;

  const JsonValue wide_info = ParseResponse(
      registry.HandleLine("{\"op\":\"info\",\"model\":\"wide\"}", &kernel));
  ASSERT_TRUE(ResponseOk(wide_info));
  EXPECT_EQ(NumberField(wide_info, "clusters"), 3.0);

  const JsonValue narrow_info = ParseResponse(registry.HandleLine(
      "{\"op\":\"info\",\"model\":\"narrow\"}", &kernel));
  ASSERT_TRUE(ResponseOk(narrow_info));
  EXPECT_EQ(NumberField(narrow_info, "clusters"), 2.0);

  // No "model" field -> the default (first added) answers.
  const JsonValue default_info =
      ParseResponse(registry.HandleLine("{\"op\":\"info\"}", &kernel));
  ASSERT_TRUE(ResponseOk(default_info));
  EXPECT_EQ(NumberField(default_info, "clusters"), 3.0);
}

TEST_F(RegistryTest, UnknownModelIsNotFound) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  core::LossKernel kernel;
  const JsonValue response = ParseResponse(registry.HandleLine(
      "{\"op\":\"info\",\"model\":\"missing\"}", &kernel));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(ErrorCode(response), "NotFound");
  const JsonValue* error = response.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->str.find("missing"), std::string::npos);
}

TEST_F(RegistryTest, NonStringModelFieldIsInvalid) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  core::LossKernel kernel;
  const JsonValue response = ParseResponse(
      registry.HandleLine("{\"op\":\"info\",\"model\":7}", &kernel));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(ErrorCode(response), "InvalidArgument");
}

TEST_F(RegistryTest, ModelsOpReportsVersionsAndQueryCounts) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  ASSERT_TRUE(registry.AddModel("narrow", narrow_path_).ok());
  core::LossKernel kernel;
  registry.HandleLine("{\"op\":\"info\",\"model\":\"narrow\"}", &kernel);
  registry.HandleLine("{\"op\":\"info\",\"model\":\"narrow\"}", &kernel);
  registry.HandleLine("{\"op\":\"info\"}", &kernel);  // default = wide

  const std::vector<ModelInfo> models = registry.ListModels();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].name, "wide");
  EXPECT_EQ(models[0].version, 1u);
  EXPECT_EQ(models[0].queries, 1u);
  EXPECT_TRUE(models[0].is_default);
  EXPECT_EQ(models[1].name, "narrow");
  EXPECT_EQ(models[1].queries, 2u);
  EXPECT_FALSE(models[1].is_default);

  const JsonValue response =
      ParseResponse(registry.HandleLine("{\"op\":\"models\"}", &kernel));
  ASSERT_TRUE(ResponseOk(response));
  const JsonValue* list = response.Find("models");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(list->array.size(), 2u);
  const JsonValue* default_name = response.Find("default");
  ASSERT_NE(default_name, nullptr);
  EXPECT_EQ(default_name->str, "wide");
}

TEST_F(RegistryTest, ReloadBumpsVersionAndServesNewBundle) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("m", wide_path_).ok());
  core::LossKernel kernel;
  EXPECT_EQ(NumberField(
                ParseResponse(registry.HandleLine("{\"op\":\"info\"}",
                                                  &kernel)),
                "clusters"),
            3.0);

  // Replace the bundle on disk with the 2-cluster fit, then hot reload:
  // the same name must now answer from the new bundle.
  {
    std::ifstream in(narrow_path_, std::ios::binary);
    std::ofstream out(wide_path_, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
  }
  const JsonValue reload =
      ParseResponse(registry.HandleLine("{\"op\":\"reload\"}", &kernel));
  ASSERT_TRUE(ResponseOk(reload)) << "reload failed";
  EXPECT_EQ(registry.ListModels()[0].version, 2u);
  EXPECT_EQ(NumberField(
                ParseResponse(registry.HandleLine("{\"op\":\"info\"}",
                                                  &kernel)),
                "clusters"),
            2.0);
}

// The refit -> hot-reload loop: a refitted child written over the
// registered path swaps in on reload, and the "models" op reports the
// new lineage (generation, rows absorbed, drift) alongside the bumped
// version and checksum.
TEST_F(RegistryTest, ReloadPicksUpRefittedChildAndReportsLineage) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("m", wide_path_).ok());
  core::LossKernel kernel;

  // Generation 0: refit-capable, no lineage.
  JsonValue models =
      ParseResponse(registry.HandleLine("{\"op\":\"models\"}", &kernel));
  ASSERT_TRUE(ResponseOk(models));
  {
    const JsonValue& entry = models.Find("models")->array[0];
    EXPECT_TRUE(entry.Find("refit_capable")->boolean);
    EXPECT_EQ(entry.Find("lineage")->kind, JsonValue::Kind::kNull);
    EXPECT_EQ(entry.Find("checksum")->str.size(), 16u);
    EXPECT_EQ(entry.Find("rows")->integer, 12u);
  }

  // Refit the bundle on disk (in place, as `limbo-tool refit` would).
  auto parent = model::Load(wide_path_);
  ASSERT_TRUE(parent.ok());
  auto source = relation::CsvStringSource::Open(
      "City,State,Zip,Name\nBoston,MA,02134,alice\nDenver,CO,80201,bob\n");
  ASSERT_TRUE(source.ok());
  auto refit = model::RefitModel(*parent, *source);
  ASSERT_TRUE(refit.ok()) << refit.status().ToString();
  ASSERT_NE(refit->drift_class, model::DriftClass::kSevere);
  ASSERT_TRUE(model::Save(refit->bundle, wide_path_).ok());

  const JsonValue reload =
      ParseResponse(registry.HandleLine("{\"op\":\"reload\"}", &kernel));
  ASSERT_TRUE(ResponseOk(reload));
  models =
      ParseResponse(registry.HandleLine("{\"op\":\"models\"}", &kernel));
  ASSERT_TRUE(ResponseOk(models));
  const JsonValue& entry = models.Find("models")->array[0];
  EXPECT_EQ(entry.Find("version")->integer, 2u);
  EXPECT_EQ(entry.Find("rows")->integer, 14u);
  const JsonValue* lineage = entry.Find("lineage");
  ASSERT_EQ(lineage->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(lineage->Find("generation")->integer, 1u);
  EXPECT_EQ(lineage->Find("base_rows")->integer, 12u);
  EXPECT_EQ(lineage->Find("rows_absorbed")->integer, 2u);
}

TEST_F(RegistryTest, FailedReloadKeepsOldEngineServing) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("m", wide_path_).ok());
  const std::shared_ptr<const Engine> before = registry.Lookup("m");
  ASSERT_NE(before, nullptr);

  // Corrupt the on-disk bundle: the checksum check must reject it.
  {
    std::ofstream out(wide_path_, std::ios::binary | std::ios::trunc);
    out << "not a limbo bundle";
  }
  const util::Status status = registry.Reload("m");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("old model kept"), std::string::npos)
      << status.ToString();

  // Old engine still serving, version unchanged.
  EXPECT_EQ(registry.Lookup("m"), before);
  EXPECT_EQ(registry.ListModels()[0].version, 1u);
  core::LossKernel kernel;
  const JsonValue info =
      ParseResponse(registry.HandleLine("{\"op\":\"info\"}", &kernel));
  ASSERT_TRUE(ResponseOk(info));
  EXPECT_EQ(NumberField(info, "clusters"), 3.0);

  // The failed attempt is visible through the admin protocol too.
  const JsonValue reload =
      ParseResponse(registry.HandleLine("{\"op\":\"reload\"}", &kernel));
  EXPECT_FALSE(ResponseOk(reload));
  EXPECT_EQ(ErrorCode(reload), "FailedPrecondition");
}

// The serving-layer batching contract: a heterogeneous batch — queries
// routed to two models, admin ops, protocol errors — answered through
// one HandleBatch call is byte-identical to the same lines answered one
// HandleLine at a time, in order.
TEST_F(RegistryTest, HandleBatchMatchesHandleLine) {
  const std::vector<std::string> lines = {
      "{\"op\":\"assign\",\"model\":\"wide\","
      "\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}",
      "{\"op\":\"assign\",\"model\":\"narrow\","
      "\"row\":[\"Denver\",\"CO\",\"80201\",\"bob\"]}",
      "{\"op\":\"duplicates\",\"row\":[\"Boston\",\"MA\",\"02134\","
      "\"alice\"]}",
      "{\"op\":\"assign\",\"model\":\"wide\","
      "\"row\":[\"Miami\",\"FL\",\"33101\",\"erin\"]}",
      "not json at all",
      "[1,2,3]",
      "{\"op\":7}",
      "{\"op\":\"info\",\"model\":\"missing\"}",
      "{\"op\":\"models\"}",
      "{\"op\":\"info\",\"model\":\"narrow\"}",
      "{\"op\":\"assign\",\"row\":[\"x\",\"y\",\"z\",\"w\"]}",
  };

  Registry by_line;
  ASSERT_TRUE(by_line.AddModel("wide", wide_path_).ok());
  ASSERT_TRUE(by_line.AddModel("narrow", narrow_path_).ok());
  Registry by_batch;
  ASSERT_TRUE(by_batch.AddModel("wide", wide_path_).ok());
  ASSERT_TRUE(by_batch.AddModel("narrow", narrow_path_).ok());

  core::LossKernel kernel;
  std::vector<std::string> want;
  for (const std::string& line : lines) {
    want.push_back(by_line.HandleLine(line, &kernel));
  }
  const std::vector<std::string> got = by_batch.HandleBatch(lines, &kernel);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << lines[i];
  }
}

TEST_F(RegistryTest, CacheServesRepeatsByteIdenticallyAndCounts) {
  Registry registry({}, /*cache_entries=*/64);
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  core::LossKernel kernel;
  const std::string query =
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}";
  const std::string first = registry.HandleLine(query, &kernel);
  const std::string second = registry.HandleLine(query, &kernel);
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.CacheHits(), 1u);
  EXPECT_EQ(registry.CacheMisses(), 1u);
  // The batched path probes the same cache.
  const std::vector<std::string> lines = {query};
  const std::vector<std::string> batched =
      registry.HandleBatch(lines, &kernel);
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0], first);
  EXPECT_EQ(registry.CacheHits(), 2u);
}

// Key canonicalization: whitespace and object-key order don't change the
// request, so they must not miss the cache.
TEST_F(RegistryTest, CacheKeyIgnoresWhitespaceAndKeyOrder) {
  Registry registry({}, /*cache_entries=*/64);
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  core::LossKernel kernel;
  const std::string compact =
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}";
  const std::string reordered =
      "{ \"row\": [\"Boston\", \"MA\", \"02134\", \"alice\"],\n"
      "  \"op\": \"assign\" }";
  const std::string first = registry.HandleLine(compact, &kernel);
  const std::string second = registry.HandleLine(reordered, &kernel);
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.CacheHits(), 1u);
  EXPECT_EQ(registry.CacheMisses(), 1u);
}

// The invalidation guarantee: the cache key carries the model version,
// so a hot reload atomically orphans every entry cached against the old
// engine — a stale response can never be served.
TEST_F(RegistryTest, ReloadInvalidatesCachedResponses) {
  Registry registry({}, /*cache_entries=*/64);
  ASSERT_TRUE(registry.AddModel("m", wide_path_).ok());
  core::LossKernel kernel;
  const std::string query = "{\"op\":\"info\"}";
  EXPECT_EQ(NumberField(ParseResponse(registry.HandleLine(query, &kernel)),
                        "clusters"),
            3.0);
  EXPECT_EQ(NumberField(ParseResponse(registry.HandleLine(query, &kernel)),
                        "clusters"),
            3.0);
  EXPECT_EQ(registry.CacheHits(), 1u);

  // Swap the bundle on disk for the 2-cluster fit and hot reload: the
  // same query must answer from the new engine, not the cache.
  {
    std::ifstream in(narrow_path_, std::ios::binary);
    std::ofstream out(wide_path_, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
  }
  ASSERT_TRUE(ResponseOk(
      ParseResponse(registry.HandleLine("{\"op\":\"reload\"}", &kernel))));
  EXPECT_EQ(NumberField(ParseResponse(registry.HandleLine(query, &kernel)),
                        "clusters"),
            2.0);
  // The post-reload lookup missed (new version => new key) and repeats
  // now hit the fresh entry.
  EXPECT_EQ(registry.CacheMisses(), 2u);
  EXPECT_EQ(NumberField(ParseResponse(registry.HandleLine(query, &kernel)),
                        "clusters"),
            2.0);
  EXPECT_EQ(registry.CacheHits(), 2u);
}

TEST_F(RegistryTest, CacheEvictsLeastRecentlyUsed) {
  Registry registry({}, /*cache_entries=*/2);
  ASSERT_TRUE(registry.AddModel("wide", wide_path_).ok());
  core::LossKernel kernel;
  const std::string a =
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}";
  const std::string b =
      "{\"op\":\"assign\",\"row\":[\"Denver\",\"CO\",\"80201\",\"bob\"]}";
  const std::string c =
      "{\"op\":\"assign\",\"row\":[\"Miami\",\"FL\",\"33101\",\"dave\"]}";
  registry.HandleLine(a, &kernel);  // miss; cache = [a]
  registry.HandleLine(b, &kernel);  // miss; cache = [b, a]
  registry.HandleLine(a, &kernel);  // hit;  cache = [a, b]
  registry.HandleLine(c, &kernel);  // miss; evicts b -> [c, a]
  EXPECT_EQ(registry.CacheHits(), 1u);
  registry.HandleLine(b, &kernel);  // miss; evicts a -> [b, c]
  EXPECT_EQ(registry.CacheMisses(), 4u);
  registry.HandleLine(a, &kernel);  // miss: a fell out above
  EXPECT_EQ(registry.CacheMisses(), 5u);
}

TEST_F(RegistryTest, ReloadOfUnknownModelFails) {
  Registry registry;
  ASSERT_TRUE(registry.AddModel("m", wide_path_).ok());
  EXPECT_FALSE(registry.Reload("missing").ok());
  core::LossKernel kernel;
  const JsonValue response = ParseResponse(registry.HandleLine(
      "{\"op\":\"reload\",\"model\":\"missing\"}", &kernel));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(ErrorCode(response), "NotFound");
}

}  // namespace
}  // namespace limbo::serve
