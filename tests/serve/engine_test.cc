#include "serve/engine.h"

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "model/fit.h"
#include "model/refit.h"
#include "relation/relation.h"
#include "relation/row_source.h"
#include "util/json.h"
#include "util/parallel.h"

namespace limbo::serve {
namespace {

using util::JsonValue;

std::vector<std::vector<std::string>> TestRows() {
  return {
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Denver", "CO", "80201", "bob"},   {"Denver", "CO", "80201", "carol"},
      {"Miami", "FL", "33101", "dave"},   {"Miami", "FL", "33101", "erin"},
      {"Austin", "TX", "73301", "frank"}, {"Austin", "TX", "73301", "grace"},
      {"Salem", "OR", "97301", "heidi"},  {"Salem", "OR", "97301", "ivan"},
  };
}

relation::Relation TestRelation() {
  auto schema = relation::Schema::Create({"City", "State", "Zip", "Name"});
  EXPECT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  for (const auto& row : TestRows()) {
    EXPECT_TRUE(builder.AddRow(row).ok());
  }
  return std::move(builder).Build();
}

model::ModelBundle FittedBundle() {
  model::FitOptions options;
  options.k = 3;
  auto bundle = model::FitModel(TestRelation(), options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  return std::move(bundle).value();
}

Engine TestEngine(OovPolicy oov = OovPolicy::kDrop) {
  EngineOptions options;
  options.oov = oov;
  auto engine = Engine::FromBundle(FittedBundle(), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Engine over a bundle fitted with --schemes: carries a tag-11 section
/// so the `schemes` query has something to serve.
Engine SchemesEngine() {
  model::FitOptions options;
  options.k = 3;
  options.mine_schemes = true;
  auto bundle = model::FitModel(TestRelation(), options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_TRUE(bundle->has_schemes);
  auto engine = Engine::FromBundle(std::move(bundle).value(), EngineOptions{});
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

std::string AssignQuery(const std::vector<std::string>& fields) {
  std::string q = "{\"op\":\"assign\",\"row\":[";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) q.push_back(',');
    util::AppendJsonString(fields[i], &q);
  }
  q += "]}";
  return q;
}

JsonValue ParseResponse(const std::string& response) {
  auto parsed = util::ParseJson(response);
  EXPECT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(parsed->kind, JsonValue::Kind::kObject) << response;
  return std::move(parsed).value();
}

bool ResponseOk(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBoolean &&
         ok->boolean;
}

// The acceptance criterion of the serving subsystem: assigning the
// fit-time rows through the engine reproduces the batch Phase-3 labels
// and losses bit for bit.
TEST(EngineTest, AssignIsBitIdenticalToBatchRun) {
  Engine engine = TestEngine();
  const model::ModelBundle& bundle = engine.bundle();
  const relation::Relation rel = TestRelation();
  core::LossKernel kernel;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    std::vector<std::string> fields;
    for (relation::AttributeId a = 0; a < rel.NumAttributes(); ++a) {
      fields.push_back(rel.TextAt(t, a));
    }
    uint32_t label = 0;
    double loss = 0.0;
    size_t oov = 0;
    ASSERT_TRUE(
        engine.AssignRow(fields, &kernel, &label, &loss, &oov).ok());
    EXPECT_EQ(oov, 0u);
    EXPECT_EQ(label, bundle.assignments[t]) << "row " << t;
    EXPECT_EQ(std::memcmp(&loss, &bundle.assignment_loss[t], sizeof(double)),
              0)
        << "row " << t << ": loss " << loss << " vs batch "
        << bundle.assignment_loss[t];
  }
}

// Worker-count invariance: the same query stream through 1 and 4 lanes
// (per-lane kernels, static partition) yields byte-identical responses.
TEST(EngineTest, ResponsesBitIdenticalAcrossWorkerCounts) {
  Engine engine = TestEngine();
  std::vector<std::string> queries;
  for (const auto& row : TestRows()) queries.push_back(AssignQuery(row));
  queries.push_back("{\"op\":\"info\"}");
  queries.push_back("{\"op\":\"fds\",\"limit\":5}");
  queries.push_back("{\"op\":\"schemes\"}");  // typed error: no section

  auto run = [&](size_t workers) {
    util::ThreadPool pool(workers);
    std::vector<core::LossKernel> kernels(pool.threads());
    std::vector<std::string> responses(queries.size());
    pool.ParallelFor(0, queries.size(), 1,
                     [&](size_t begin, size_t end, size_t lane) {
                       for (size_t i = begin; i < end; ++i) {
                         responses[i] =
                             engine.HandleLine(queries[i], &kernels[lane]);
                       }
                     });
    return responses;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(EngineTest, CsvAndRowFormsAgree) {
  Engine engine = TestEngine();
  const std::string by_row = engine.HandleLine(
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}");
  const std::string by_csv =
      engine.HandleLine("{\"op\":\"assign\",\"csv\":\"Boston,MA,02134,alice\"}");
  EXPECT_EQ(by_row, by_csv);
  EXPECT_TRUE(ResponseOk(ParseResponse(by_row)));
}

TEST(EngineTest, OovDropSpreadsOverKnownValues) {
  Engine engine = TestEngine(OovPolicy::kDrop);
  JsonValue response = ParseResponse(engine.HandleLine(
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"zed\"]}"));
  ASSERT_TRUE(ResponseOk(response));
  ASSERT_NE(response.Find("oov"), nullptr);
  EXPECT_EQ(response.Find("oov")->integer, 1u);
  // Still lands on the Boston cluster: three of four values are known.
  JsonValue exact = ParseResponse(engine.HandleLine(
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"alice\"]}"));
  EXPECT_EQ(response.Find("cluster")->integer,
            exact.Find("cluster")->integer);
}

TEST(EngineTest, OovStrictRejectsUnseenValues) {
  Engine engine = TestEngine(OovPolicy::kStrict);
  JsonValue response = ParseResponse(engine.HandleLine(
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"zed\"]}"));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(response.Find("code")->str, "NotFound");
}

TEST(EngineTest, AllUnseenRowIsAnErrorEvenUnderDrop) {
  Engine engine = TestEngine(OovPolicy::kDrop);
  JsonValue response = ParseResponse(engine.HandleLine(
      "{\"op\":\"assign\",\"row\":[\"x\",\"y\",\"z\",\"w\"]}"));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(response.Find("code")->str, "NotFound");
}

TEST(EngineTest, ProtocolErrorsAreCleanResponses) {
  Engine engine = TestEngine();
  const std::vector<std::string> bad = {
      "not json at all",
      "[1,2,3]",
      "{}",
      "{\"op\":7}",
      "{\"op\":\"warp\"}",
      "{\"op\":\"assign\"}",
      "{\"op\":\"assign\",\"row\":[\"a\"],\"csv\":\"b\"}",
      "{\"op\":\"assign\",\"row\":[\"too\",\"short\"]}",
      "{\"op\":\"assign\",\"row\":[1,2,3,4]}",
      "{\"op\":\"assign\",\"csv\":\"line1\\nline2,b,c,d\"}",
      "{\"op\":\"fds\",\"limit\":\"ten\"}",
      "{\"op\":\"fds\",\"limit\":-1}",
      "{\"op\":\"fds\",\"limit\":2.5}",
      "{\"op\":\"valuegroup\"}",
      "{\"op\":\"valuegroup\",\"attr\":\"NoSuch\",\"value\":\"x\"}",
  };
  for (const std::string& query : bad) {
    JsonValue response = ParseResponse(engine.HandleLine(query));
    EXPECT_FALSE(ResponseOk(response)) << query;
    ASSERT_NE(response.Find("error"), nullptr) << query;
    ASSERT_NE(response.Find("code"), nullptr) << query;
  }
}

TEST(EngineTest, DuplicatesFlagsTheHeavyCluster) {
  Engine engine = TestEngine();
  // Boston×4 makes its cluster heavy; the row is a near-duplicate.
  JsonValue dup = ParseResponse(engine.HandleLine(
      "{\"op\":\"duplicates\",\"row\":[\"Boston\",\"MA\",\"02134\","
      "\"alice\"]}"));
  ASSERT_TRUE(ResponseOk(dup));
  EXPECT_TRUE(dup.Find("duplicate")->boolean);
  EXPECT_TRUE(dup.Find("heavy")->boolean);
  ASSERT_NE(dup.Find("loss"), nullptr);
  ASSERT_NE(dup.Find("limit"), nullptr);
}

TEST(EngineTest, ValueGroupReturnsCoOccurringMembers) {
  Engine engine = TestEngine();
  JsonValue response = ParseResponse(engine.HandleLine(
      "{\"op\":\"valuegroup\",\"attr\":\"City\",\"value\":\"Denver\"}"));
  ASSERT_TRUE(ResponseOk(response));
  EXPECT_EQ(response.Find("value")->str, "City=Denver");
  const JsonValue* members = response.Find("members");
  ASSERT_NE(members, nullptr);
  ASSERT_EQ(members->kind, JsonValue::Kind::kArray);
  // Denver co-occurs perfectly with CO and 80201.
  std::vector<std::string> names;
  for (const JsonValue& m : members->array) names.push_back(m.str);
  EXPECT_NE(std::find(names.begin(), names.end(), "State=CO"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Zip=80201"), names.end());

  JsonValue missing = ParseResponse(engine.HandleLine(
      "{\"op\":\"valuegroup\",\"attr\":\"City\",\"value\":\"Atlantis\"}"));
  EXPECT_FALSE(ResponseOk(missing));
  EXPECT_EQ(missing.Find("code")->str, "NotFound");
}

TEST(EngineTest, AttrsReportsSchemaAndGrouping) {
  Engine engine = TestEngine();
  JsonValue response = ParseResponse(engine.HandleLine("{\"op\":\"attrs\"}"));
  ASSERT_TRUE(ResponseOk(response));
  const JsonValue* attributes = response.Find("attributes");
  ASSERT_NE(attributes, nullptr);
  ASSERT_EQ(attributes->array.size(), 4u);
  EXPECT_EQ(attributes->array[0].str, "City");
  const JsonValue* has_grouping = response.Find("has_grouping");
  ASSERT_NE(has_grouping, nullptr);
  if (has_grouping->boolean) {
    ASSERT_NE(response.Find("grouping"), nullptr);
    EXPECT_NE(response.Find("grouping")->Find("merges"), nullptr);
  }
}

TEST(EngineTest, FdsHonorsLimit) {
  Engine engine = TestEngine();
  JsonValue all = ParseResponse(engine.HandleLine("{\"op\":\"fds\"}"));
  ASSERT_TRUE(ResponseOk(all));
  const size_t total = all.Find("fds")->array.size();
  ASSERT_GT(total, 1u);
  JsonValue limited =
      ParseResponse(engine.HandleLine("{\"op\":\"fds\",\"limit\":1}"));
  ASSERT_TRUE(ResponseOk(limited));
  EXPECT_EQ(limited.Find("fds")->array.size(), 1u);
  // A negative limit gets the typed error the message promises — it must
  // not wrap through the unsigned cast into "no limit at all".
  JsonValue negative =
      ParseResponse(engine.HandleLine("{\"op\":\"fds\",\"limit\":-1}"));
  EXPECT_FALSE(ResponseOk(negative));
  ASSERT_NE(negative.Find("error"), nullptr);
  EXPECT_NE(negative.Find("error")->str.find("non-negative"),
            std::string::npos);
}

TEST(EngineTest, SchemesQueryServesTheMinedSection) {
  Engine engine = SchemesEngine();
  JsonValue all = ParseResponse(engine.HandleLine("{\"op\":\"schemes\"}"));
  ASSERT_TRUE(ResponseOk(all));
  ASSERT_NE(all.Find("epsilon"), nullptr);
  ASSERT_NE(all.Find("total_entropy"), nullptr);
  const JsonValue* schemes = all.Find("schemes");
  ASSERT_NE(schemes, nullptr);
  ASSERT_EQ(schemes->kind, JsonValue::Kind::kArray);
  const size_t total = schemes->array.size();
  ASSERT_GE(total, 1u);
  EXPECT_EQ(all.Find("count")->integer, total);
  // Every scheme decodes to attribute names and a finite J-measure.
  for (const JsonValue& s : schemes->array) {
    const JsonValue* bags = s.Find("bags");
    ASSERT_NE(bags, nullptr);
    ASSERT_GE(bags->array.size(), 2u);
    for (const JsonValue& bag : bags->array) {
      ASSERT_GE(bag.array.size(), 1u);
      EXPECT_EQ(bag.array[0].kind, JsonValue::Kind::kString);
    }
    ASSERT_NE(s.Find("separator"), nullptr);
    ASSERT_NE(s.Find("j_measure"), nullptr);
  }
  // `limit` truncates the sorted list, keeping the head; `count` still
  // reports the full section size, mirroring the info summary.
  JsonValue limited =
      ParseResponse(engine.HandleLine("{\"op\":\"schemes\",\"limit\":1}"));
  ASSERT_TRUE(ResponseOk(limited));
  ASSERT_EQ(limited.Find("schemes")->array.size(), 1u);
  EXPECT_EQ(limited.Find("count")->integer, total);
  // Same typed rejection of a negative limit as the fds handler.
  JsonValue negative =
      ParseResponse(engine.HandleLine("{\"op\":\"schemes\",\"limit\":-1}"));
  EXPECT_FALSE(ResponseOk(negative));
  ASSERT_NE(negative.Find("error"), nullptr);
  EXPECT_NE(negative.Find("error")->str.find("non-negative"),
            std::string::npos);
}

TEST(EngineTest, SchemesQueryOnPlainBundleIsATypedError) {
  Engine engine = TestEngine();  // fitted without --schemes
  JsonValue response =
      ParseResponse(engine.HandleLine("{\"op\":\"schemes\"}"));
  EXPECT_FALSE(ResponseOk(response));
  ASSERT_NE(response.Find("code"), nullptr);
  EXPECT_EQ(response.Find("code")->str, "no_schemes");
}

// Worker-count invariance holds for the schemes query too: the section
// is frozen at fit time, so serving it is a pure read.
TEST(EngineTest, SchemesResponsesBitIdenticalAcrossWorkerCounts) {
  Engine engine = SchemesEngine();
  std::vector<std::string> queries = {
      "{\"op\":\"schemes\"}", "{\"op\":\"schemes\",\"limit\":2}",
      "{\"op\":\"schemes\",\"limit\":1}", "{\"op\":\"info\"}"};
  auto run = [&](size_t workers) {
    util::ThreadPool pool(workers);
    std::vector<core::LossKernel> kernels(pool.threads());
    std::vector<std::string> responses(queries.size());
    pool.ParallelFor(0, queries.size(), 1,
                     [&](size_t begin, size_t end, size_t lane) {
                       for (size_t i = begin; i < end; ++i) {
                         responses[i] =
                             engine.HandleLine(queries[i], &kernels[lane]);
                       }
                     });
    return responses;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(EngineTest, InfoEchoesTheFitParameters) {
  Engine engine = TestEngine();
  JsonValue response = ParseResponse(engine.HandleLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(ResponseOk(response));
  EXPECT_EQ(response.Find("rows")->integer, 12u);
  EXPECT_EQ(response.Find("attributes")->integer, 4u);
  EXPECT_EQ(response.Find("clusters")->integer,
            engine.bundle().representatives.size());
  EXPECT_EQ(response.Find("oov_policy")->str, "drop");
}

// The batching contract: evaluating N rows through one AssignBatch call
// yields bit-identical labels, losses and OOV counts to N AssignRow
// calls — including rows that fail (OOV under strict, all-unseen), whose
// statuses must match without poisoning their neighbours.
TEST(EngineTest, AssignBatchIsBitIdenticalToAssignRow) {
  Engine engine = TestEngine();
  std::vector<std::vector<std::string>> rows = TestRows();
  rows.push_back({"Boston", "MA", "02134", "zed"});  // one OOV value
  rows.push_back({"x", "y", "z", "w"});              // all unseen: error
  rows.push_back({"Miami", "FL", "33101", "erin"});  // valid after error

  core::LossKernel batch_kernel;
  const std::vector<RowAssignment> batch =
      engine.AssignBatch(rows, &batch_kernel);
  ASSERT_EQ(batch.size(), rows.size());

  core::LossKernel single_kernel;
  for (size_t i = 0; i < rows.size(); ++i) {
    uint32_t label = 0;
    double loss = 0.0;
    size_t oov = 0;
    util::Status status =
        engine.AssignRow(rows[i], &single_kernel, &label, &loss, &oov);
    EXPECT_EQ(batch[i].status.ok(), status.ok()) << "row " << i;
    if (!status.ok()) {
      EXPECT_EQ(batch[i].status.ToString(), status.ToString()) << "row " << i;
      continue;
    }
    EXPECT_EQ(batch[i].label, label) << "row " << i;
    EXPECT_EQ(batch[i].oov, oov) << "row " << i;
    EXPECT_EQ(std::memcmp(&batch[i].loss, &loss, sizeof(double)), 0)
        << "row " << i << ": batch " << batch[i].loss << " vs single "
        << loss;
  }
}

// HandleRequests (the batched dispatch behind Registry::HandleBatch)
// must answer every request — batchable assign/duplicates, admin ops,
// protocol errors — with exactly the bytes the per-line path produces.
TEST(EngineTest, HandleRequestsMatchesPerLineResponses) {
  Engine engine = TestEngine();
  std::vector<std::string> queries;
  for (const auto& row : TestRows()) queries.push_back(AssignQuery(row));
  queries.push_back(
      "{\"op\":\"duplicates\",\"row\":[\"Boston\",\"MA\",\"02134\","
      "\"alice\"]}");
  queries.push_back(
      "{\"op\":\"assign\",\"row\":[\"Boston\",\"MA\",\"02134\",\"zed\"]}");
  queries.push_back("{\"op\":\"assign\",\"row\":[\"x\",\"y\",\"z\",\"w\"]}");
  queries.push_back("{\"op\":\"assign\",\"row\":[\"too\",\"short\"]}");
  queries.push_back("{\"op\":\"assign\",\"csv\":\"Miami,FL,33101,dave\"}");
  queries.push_back("{\"op\":\"info\"}");
  queries.push_back("{\"op\":\"fds\",\"limit\":2}");
  queries.push_back("{\"op\":\"schemes\",\"limit\":2}");
  queries.push_back("{\"op\":\"warp\"}");

  std::vector<util::JsonValue> parsed;
  parsed.reserve(queries.size());
  for (const std::string& q : queries) {
    auto value = util::ParseJson(q);
    ASSERT_TRUE(value.ok()) << q;
    parsed.push_back(std::move(*value));
  }
  std::vector<const util::JsonValue*> requests;
  for (const util::JsonValue& v : parsed) requests.push_back(&v);

  core::LossKernel batch_kernel;
  const std::vector<std::string> batched =
      engine.HandleRequests(requests, &batch_kernel);
  ASSERT_EQ(batched.size(), queries.size());
  core::LossKernel single_kernel;
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], engine.HandleLine(queries[i], &single_kernel))
        << queries[i];
  }
}

// The duplicate-row fast path: byte-identical rows in one batch are
// evaluated once and every copy reuses the first occurrence's result —
// error results included — while rows whose fields merely concatenate
// to the same bytes stay distinct (the key is length-prefixed).
TEST(EngineTest, AssignBatchDuplicateRowsShareOneEvaluation) {
  Engine engine = TestEngine();
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back({"Boston", "MA", "02134", "alice"});
  }
  rows.push_back({"x", "y", "z", "w"});  // all-unseen: error
  rows.push_back({"x", "y", "z", "w"});  // duplicate of the error row
  rows.push_back({"Denver", "CO", "80201", "bob"});
  // Same concatenation as the Denver row, different field boundaries.
  rows.push_back({"DenverCO", "", "80201", "bob"});
  core::LossKernel kernel;
  const std::vector<RowAssignment> batch = engine.AssignBatch(rows, &kernel);
  ASSERT_EQ(batch.size(), rows.size());
  for (size_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(batch[i].status.ok());
    EXPECT_EQ(batch[i].label, batch[0].label);
    EXPECT_EQ(batch[i].oov, batch[0].oov);
    EXPECT_EQ(std::memcmp(&batch[i].loss, &batch[0].loss, sizeof(double)), 0);
  }
  EXPECT_FALSE(batch[5].status.ok());
  EXPECT_EQ(batch[6].status.ToString(), batch[5].status.ToString());
  ASSERT_TRUE(batch[7].status.ok());
  ASSERT_TRUE(batch[8].status.ok());
  EXPECT_EQ(batch[7].oov, 0u);
  EXPECT_GT(batch[8].oov, 0u);  // "DenverCO" was never interned

  // And every result matches the per-row path bit for bit.
  for (size_t i = 0; i < rows.size(); ++i) {
    core::LossKernel single;
    uint32_t label = 0;
    double loss = 0.0;
    size_t oov = 0;
    util::Status status =
        engine.AssignRow(rows[i], &single, &label, &loss, &oov);
    ASSERT_EQ(batch[i].status.ok(), status.ok()) << "row " << i;
    if (!status.ok()) continue;
    EXPECT_EQ(batch[i].label, label) << "row " << i;
    EXPECT_EQ(batch[i].oov, oov) << "row " << i;
    EXPECT_EQ(std::memcmp(&batch[i].loss, &loss, sizeof(double)), 0)
        << "row " << i;
  }
}

// `info` surfaces the bundle's refit capability and lineage: null for a
// generation-0 fit, the full provenance object for a refit child.
TEST(EngineTest, InfoReportsRefitCapabilityAndLineage) {
  Engine engine = TestEngine();
  JsonValue info = ParseResponse(engine.HandleLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(ResponseOk(info));
  ASSERT_NE(info.Find("refit_capable"), nullptr);
  EXPECT_TRUE(info.Find("refit_capable")->boolean);
  ASSERT_NE(info.Find("lineage"), nullptr);
  EXPECT_EQ(info.Find("lineage")->kind, JsonValue::Kind::kNull);
  ASSERT_NE(info.Find("checksum"), nullptr);
  EXPECT_EQ(info.Find("checksum")->str.size(), 16u);

  auto source = relation::CsvStringSource::Open(
      "City,State,Zip,Name\nBoston,MA,02134,alice\n");
  ASSERT_TRUE(source.ok());
  auto refit = model::RefitModel(FittedBundle(), *source);
  ASSERT_TRUE(refit.ok()) << refit.status().ToString();
  ASSERT_NE(refit->drift_class, model::DriftClass::kSevere);
  auto child = Engine::FromBundle(refit->bundle, EngineOptions());
  ASSERT_TRUE(child.ok());
  JsonValue child_info =
      ParseResponse(child->HandleLine("{\"op\":\"info\"}"));
  ASSERT_TRUE(ResponseOk(child_info));
  const JsonValue* lineage = child_info.Find("lineage");
  ASSERT_NE(lineage, nullptr);
  ASSERT_EQ(lineage->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(lineage->Find("generation")->integer, 1u);
  EXPECT_EQ(lineage->Find("base_rows")->integer, 12u);
  EXPECT_EQ(lineage->Find("rows_absorbed")->integer, 1u);
  EXPECT_EQ(lineage->Find("drift_class")->str, "no-drift");
}

// The refit chain anchors every mass to the generation-0 row count, so
// a no-drift child must serve losses (not just labels) byte-identical
// to its parent — that invariance is what makes hot-reloading a
// refitted bundle invisible to clients.
TEST(EngineTest, RefittedChildServesByteIdenticalResponses) {
  Engine parent = TestEngine();
  auto source = relation::CsvStringSource::Open(
      "City,State,Zip,Name\nBoston,MA,02134,alice\nMiami,FL,33101,dave\n");
  ASSERT_TRUE(source.ok());
  auto refit = model::RefitModel(FittedBundle(), *source);
  ASSERT_TRUE(refit.ok()) << refit.status().ToString();
  ASSERT_EQ(refit->drift_class, model::DriftClass::kNone);
  auto child = Engine::FromBundle(refit->bundle, EngineOptions());
  ASSERT_TRUE(child.ok());
  const char* queries[] = {
      "{\"op\":\"assign\",\"csv\":\"Boston,MA,02134,alice\"}",
      "{\"op\":\"assign\",\"csv\":\"Miami,FL,33101,dave\"}",
      "{\"op\":\"assign\",\"csv\":\"Miami,MA,02134,carol\"}",
      "{\"op\":\"duplicates\",\"csv\":\"Boston,MA,02134,alice\"}",
  };
  for (const char* query : queries) {
    EXPECT_EQ(parent.HandleLine(query), child->HandleLine(query)) << query;
  }
}

TEST(EngineTest, RefusesEmptyBundle) {
  auto engine = Engine::FromBundle(model::ModelBundle(), EngineOptions());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(EngineTest, OpenRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "/serve_engine.limbo";
  ASSERT_TRUE(model::Save(FittedBundle(), path).ok());
  auto engine = Engine::Open(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(ResponseOk(ParseResponse(engine->HandleLine(
      "{\"op\":\"assign\",\"csv\":\"Miami,FL,33101,dave\"}"))));
}

}  // namespace
}  // namespace limbo::serve
