#ifndef LIMBO_TESTS_TESTING_MAKE_RELATION_H_
#define LIMBO_TESTS_TESTING_MAKE_RELATION_H_

#include <string>
#include <vector>

#include "relation/relation.h"
#include "util/logging.h"

namespace limbo::testing {

/// Builds a relation from a header plus rows, aborting on malformed input
/// (tests only).
inline relation::Relation MakeRelation(
    std::vector<std::string> header,
    const std::vector<std::vector<std::string>>& rows) {
  auto schema = relation::Schema::Create(std::move(header));
  LIMBO_CHECK(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  for (const auto& row : rows) {
    LIMBO_CHECK(builder.AddRow(row).ok());
  }
  return std::move(builder).Build();
}

/// The paper's running example relation of Figure 4:
///   A  B  C
///   a  1  p
///   a  1  r
///   w  2  x
///   y  2  x
///   z  2  x
inline relation::Relation PaperFigure4() {
  return MakeRelation({"A", "B", "C"}, {{"a", "1", "p"},
                                        {"a", "1", "r"},
                                        {"w", "2", "x"},
                                        {"y", "2", "x"},
                                        {"z", "2", "x"}});
}

/// Figure 5: same as Figure 4 except C is "x" in the second tuple, which
/// breaks the perfect co-occurrence of {2, x} and makes C → B approximate.
inline relation::Relation PaperFigure5() {
  return MakeRelation({"A", "B", "C"}, {{"a", "1", "p"},
                                        {"a", "1", "x"},
                                        {"w", "2", "x"},
                                        {"y", "2", "x"},
                                        {"z", "2", "x"}});
}

}  // namespace limbo::testing

#endif  // LIMBO_TESTS_TESTING_MAKE_RELATION_H_
