#include "datagen/db2_sample.h"

#include <gtest/gtest.h>

#include "fd/fd.h"

namespace limbo::datagen {
namespace {

fd::FunctionalDependency FdByName(const relation::Relation& rel,
                                  const std::vector<std::string>& lhs,
                                  const std::vector<std::string>& rhs) {
  fd::AttributeSet l;
  fd::AttributeSet r;
  for (const auto& name : lhs) {
    auto a = rel.schema().Find(name);
    EXPECT_TRUE(a.ok()) << name;
    l = l.With(a.value());
  }
  for (const auto& name : rhs) {
    auto a = rel.schema().Find(name);
    EXPECT_TRUE(a.ok()) << name;
    r = r.With(a.value());
  }
  return {l, r};
}

TEST(Db2SampleTest, BaseTableShapes) {
  EXPECT_EQ(Db2Sample::Employees().NumTuples(), 32u);
  EXPECT_EQ(Db2Sample::Employees().NumAttributes(), 10u);
  EXPECT_EQ(Db2Sample::Departments().NumTuples(), 8u);
  EXPECT_EQ(Db2Sample::Departments().NumAttributes(), 4u);
  EXPECT_EQ(Db2Sample::Projects().NumAttributes(), 7u);
}

TEST(Db2SampleTest, JoinedRelationMatchesPaperScale) {
  // The paper: 90 tuples, 19 attributes, 255 attribute values. Our
  // generator pairs entity profiles to avoid accidental FDs, which costs
  // some distinct values (~200 instead of 255).
  auto joined = Db2Sample::JoinedRelation();
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumTuples(), 90u);
  EXPECT_EQ(joined->NumAttributes(), 19u);
  EXPECT_GT(joined->NumValues(), 150u);
  EXPECT_LT(joined->NumValues(), 310u);
}

TEST(Db2SampleTest, PlantedFdsHold) {
  auto joined = Db2Sample::JoinedRelation();
  ASSERT_TRUE(joined.ok());
  const auto& rel = *joined;
  EXPECT_TRUE(fd::Holds(rel, FdByName(rel, {"DeptNo"},
                                      {"DeptName", "MgrNo", "AdminDepNo"})));
  EXPECT_TRUE(fd::Holds(rel, FdByName(rel, {"DeptName"}, {"MgrNo"})));
  EXPECT_TRUE(fd::Holds(
      rel, FdByName(rel, {"EmpNo"},
                    {"FirstName", "LastName", "PhoneNo", "HireYear", "Job",
                     "EduLevel", "Sex", "BirthYear", "DeptNo"})));
  EXPECT_TRUE(fd::Holds(
      rel, FdByName(rel, {"ProjNo"},
                    {"ProjName", "RespEmpNo", "StartDate", "EndDate",
                     "MajorProjNo", "DeptNo"})));
}

TEST(Db2SampleTest, NonFdsDoNotHold) {
  auto joined = Db2Sample::JoinedRelation();
  ASSERT_TRUE(joined.ok());
  const auto& rel = *joined;
  // FirstName repeats across employees: it must not determine EmpNo.
  EXPECT_FALSE(fd::Holds(rel, FdByName(rel, {"FirstName"}, {"EmpNo"})));
  // Sex certainly determines nothing.
  EXPECT_FALSE(fd::Holds(rel, FdByName(rel, {"Sex"}, {"DeptNo"})));
}

TEST(Db2SampleTest, EmpNoProjNoIsAKey) {
  auto joined = Db2Sample::JoinedRelation();
  ASSERT_TRUE(joined.ok());
  const auto& rel = *joined;
  EXPECT_TRUE(fd::Holds(
      rel, FdByName(rel, {"EmpNo", "ProjNo"},
                    {"FirstName", "DeptName", "ProjName", "StartDate"})));
}

TEST(Db2SampleTest, Deterministic) {
  auto a = Db2Sample::JoinedRelation();
  auto b = Db2Sample::JoinedRelation();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumTuples(), b->NumTuples());
  for (relation::TupleId t = 0; t < a->NumTuples(); ++t) {
    for (size_t c = 0; c < a->NumAttributes(); ++c) {
      EXPECT_EQ(a->TextAt(t, c), b->TextAt(t, c));
    }
  }
}

}  // namespace
}  // namespace limbo::datagen
