#include "datagen/orders.h"

#include <gtest/gtest.h>

#include "core/horizontal_partition.h"

namespace limbo::datagen {
namespace {

TEST(OrdersTest, SchemaAndShape) {
  OrdersOptions options;
  options.num_orders = 500;
  const auto rel = GenerateOrders(options);
  EXPECT_EQ(rel.NumTuples(), 500u);
  EXPECT_EQ(rel.NumAttributes(), 10u);
  EXPECT_TRUE(rel.schema().Find("ProductSku").ok());
  EXPECT_TRUE(rel.schema().Find("ServiceCode").ok());
}

TEST(OrdersTest, KindsAreMutuallyExclusive) {
  OrdersOptions options;
  options.num_orders = 500;
  const auto rel = GenerateOrders(options);
  const auto sku = rel.schema().Find("ProductSku").value();
  const auto svc = rel.schema().Find("ServiceCode").value();
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    const bool product = !rel.TextAt(t, sku).empty();
    const bool service = !rel.TextAt(t, svc).empty();
    EXPECT_NE(product, service) << "row " << t;
    EXPECT_EQ(service, IsServiceOrder(rel, t));
  }
}

TEST(OrdersTest, ServiceFractionRespected) {
  OrdersOptions options;
  options.num_orders = 4000;
  options.service_fraction = 0.3;
  const auto rel = GenerateOrders(options);
  size_t service = 0;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    service += IsServiceOrder(rel, t);
  }
  EXPECT_NEAR(static_cast<double>(service) / rel.NumTuples(), 0.3, 0.03);
}

TEST(OrdersTest, DeterministicInSeed) {
  OrdersOptions options;
  options.num_orders = 200;
  const auto a = GenerateOrders(options);
  const auto b = GenerateOrders(options);
  for (relation::TupleId t = 0; t < a.NumTuples(); t += 17) {
    for (size_t c = 0; c < a.NumAttributes(); ++c) {
      EXPECT_EQ(a.TextAt(t, c), b.TextAt(t, c));
    }
  }
}

TEST(OrdersTest, PartitioningRecoversTheTwoKinds) {
  // The Section 6.1.2 claim as a test: k = 2 splits product from service
  // orders with (near-)perfect purity.
  OrdersOptions options;
  options.num_orders = 1500;
  const auto rel = GenerateOrders(options);
  core::HorizontalPartitionOptions partition_options;
  partition_options.phi = 0.5;
  partition_options.max_k = 6;
  auto result = core::HorizontallyPartition(rel, partition_options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen_k, 2u);
  size_t impure = 0;
  std::vector<size_t> service_per_cluster(result->chosen_k, 0);
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    service_per_cluster[result->assignments[t]] +=
        IsServiceOrder(rel, t);
  }
  const uint32_t service_label =
      service_per_cluster[1] > service_per_cluster[0];
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    if (IsServiceOrder(rel, t) !=
        (result->assignments[t] == service_label)) {
      ++impure;
    }
  }
  EXPECT_LT(static_cast<double>(impure) / rel.NumTuples(), 0.01);
}

}  // namespace
}  // namespace limbo::datagen
