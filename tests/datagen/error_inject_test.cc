#include "datagen/error_inject.h"

#include <gtest/gtest.h>

#include "testing/make_relation.h"

namespace limbo::datagen {
namespace {

using limbo::testing::MakeRelation;

relation::Relation BaseRelation() {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({"k" + std::to_string(i), "x" + std::to_string(i % 3),
                    "y" + std::to_string(i % 2)});
  }
  return MakeRelation({"K", "X", "Y"}, rows);
}

TEST(ErrorInjectTest, AppendsDirtyTuples) {
  ErrorInjectionOptions options;
  options.num_dirty_tuples = 3;
  options.values_altered = 1;
  auto result = InjectErrors(BaseRelation(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dirty.NumTuples(), 13u);
  EXPECT_EQ(result->records.size(), 3u);
}

TEST(ErrorInjectTest, DirtyTuplesDifferExactlyInAlteredAttributes) {
  ErrorInjectionOptions options;
  options.num_dirty_tuples = 4;
  options.values_altered = 2;
  auto result = InjectErrors(BaseRelation(), options);
  ASSERT_TRUE(result.ok());
  for (const DirtyRecord& record : result->records) {
    EXPECT_EQ(record.altered_attributes.size(), 2u);
    size_t diffs = 0;
    for (size_t a = 0; a < result->dirty.NumAttributes(); ++a) {
      const bool differs =
          result->dirty.TextAt(record.dirty_id, a) !=
          result->dirty.TextAt(record.source_id, a);
      const bool altered =
          std::find(record.altered_attributes.begin(),
                    record.altered_attributes.end(),
                    static_cast<relation::AttributeId>(a)) !=
          record.altered_attributes.end();
      EXPECT_EQ(differs, altered);
      if (differs) ++diffs;
    }
    EXPECT_EQ(diffs, 2u);
  }
}

TEST(ErrorInjectTest, DirtyValuesAreFresh) {
  ErrorInjectionOptions options;
  options.num_dirty_tuples = 2;
  options.values_altered = 1;
  auto result = InjectErrors(BaseRelation(), options);
  ASSERT_TRUE(result.ok());
  for (const DirtyRecord& record : result->records) {
    for (const std::string& text : record.dirty_texts) {
      // Fresh error values occur exactly once in the dirty relation.
      size_t occurrences = 0;
      for (relation::TupleId t = 0; t < result->dirty.NumTuples(); ++t) {
        for (size_t a = 0; a < result->dirty.NumAttributes(); ++a) {
          if (result->dirty.TextAt(t, a) == text) ++occurrences;
        }
      }
      EXPECT_EQ(occurrences, 1u) << text;
    }
  }
}

TEST(ErrorInjectTest, SourcesAreDistinct) {
  ErrorInjectionOptions options;
  options.num_dirty_tuples = 10;  // all tuples become sources
  options.values_altered = 1;
  auto result = InjectErrors(BaseRelation(), options);
  ASSERT_TRUE(result.ok());
  std::set<relation::TupleId> sources;
  for (const auto& r : result->records) sources.insert(r.source_id);
  EXPECT_EQ(sources.size(), 10u);
}

TEST(ErrorInjectTest, DeterministicInSeed) {
  ErrorInjectionOptions options;
  options.num_dirty_tuples = 3;
  auto a = InjectErrors(BaseRelation(), options);
  auto b = InjectErrors(BaseRelation(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].source_id, b->records[i].source_id);
    EXPECT_EQ(a->records[i].altered_attributes,
              b->records[i].altered_attributes);
  }
}

TEST(ErrorInjectTest, RejectsImpossibleRequests) {
  ErrorInjectionOptions too_many_tuples;
  too_many_tuples.num_dirty_tuples = 11;
  EXPECT_FALSE(InjectErrors(BaseRelation(), too_many_tuples).ok());
  ErrorInjectionOptions too_many_values;
  too_many_values.values_altered = 4;
  EXPECT_FALSE(InjectErrors(BaseRelation(), too_many_values).ok());
}

TEST(ErrorInjectTest, OriginalRowsPreserved) {
  ErrorInjectionOptions options;
  options.num_dirty_tuples = 2;
  const auto base = BaseRelation();
  auto result = InjectErrors(base, options);
  ASSERT_TRUE(result.ok());
  for (relation::TupleId t = 0; t < base.NumTuples(); ++t) {
    for (size_t a = 0; a < base.NumAttributes(); ++a) {
      EXPECT_EQ(result->dirty.TextAt(t, a), base.TextAt(t, a));
    }
  }
}

}  // namespace
}  // namespace limbo::datagen
