#include "datagen/dblp.h"

#include <gtest/gtest.h>

#include <string>

namespace limbo::datagen {
namespace {

DblpOptions SmallOptions() {
  DblpOptions options;
  options.target_tuples = 5000;
  return options;
}

size_t NullCount(const relation::Relation& rel, const std::string& attr) {
  auto a = rel.schema().Find(attr);
  EXPECT_TRUE(a.ok());
  size_t nulls = 0;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    if (rel.TextAt(t, a.value()).empty()) ++nulls;
  }
  return nulls;
}

TEST(DblpTest, SchemaMatchesFigure13) {
  const auto rel = GenerateDblp(SmallOptions());
  EXPECT_EQ(rel.NumAttributes(), 13u);
  for (const char* name :
       {"Author", "Publisher", "Year", "Editor", "Pages", "BookTitle",
        "Month", "Volume", "Journal", "Number", "School", "Series", "ISBN"}) {
    EXPECT_TRUE(rel.schema().Find(name).ok()) << name;
  }
}

TEST(DblpTest, TupleCountNearTarget) {
  const auto rel = GenerateDblp(SmallOptions());
  EXPECT_GE(rel.NumTuples(), 5000u);
  EXPECT_LT(rel.NumTuples(), 5010u);  // at most one publication overshoot
}

TEST(DblpTest, NullHeavyColumnsMatchPaper) {
  // {Publisher, ISBN, Editor, Series, School, Month} are >= 98% NULL.
  const auto rel = GenerateDblp(SmallOptions());
  const double n = static_cast<double>(rel.NumTuples());
  for (const std::string attr :
       {"Publisher", "ISBN", "Editor", "Series", "School", "Month"}) {
    EXPECT_GE(NullCount(rel, attr) / n, 0.98) << attr;
  }
  // Author, Year are always present.
  EXPECT_EQ(NullCount(rel, "Author"), 0u);
  EXPECT_EQ(NullCount(rel, "Year"), 0u);
}

TEST(DblpTest, KindMixMatchesTargets) {
  const auto rel = GenerateDblp(SmallOptions());
  auto book_title = rel.schema().Find("BookTitle");
  auto journal = rel.schema().Find("Journal");
  auto school = rel.schema().Find("School");
  ASSERT_TRUE(book_title.ok());
  size_t conference = 0;
  size_t journals = 0;
  size_t misc = 0;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    if (!rel.TextAt(t, book_title.value()).empty()) {
      ++conference;
    } else if (!rel.TextAt(t, journal.value()).empty()) {
      ++journals;
    } else if (!rel.TextAt(t, school.value()).empty()) {
      ++misc;
    }
  }
  const double n = static_cast<double>(rel.NumTuples());
  EXPECT_NEAR(conference / n, 0.718, 0.02);
  EXPECT_NEAR(journals / n, 0.2795, 0.02);
  EXPECT_GT(misc, 0u);
  EXPECT_LT(misc / n, 0.01);
}

TEST(DblpTest, ConferenceTuplesHaveNullJournalTriple) {
  const auto rel = GenerateDblp(SmallOptions());
  const auto book_title = rel.schema().Find("BookTitle").value();
  const auto journal = rel.schema().Find("Journal").value();
  const auto volume = rel.schema().Find("Volume").value();
  const auto number = rel.schema().Find("Number").value();
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    if (!rel.TextAt(t, book_title).empty()) {
      EXPECT_TRUE(rel.TextAt(t, journal).empty());
      EXPECT_TRUE(rel.TextAt(t, volume).empty());
      EXPECT_TRUE(rel.TextAt(t, number).empty());
    } else if (!rel.TextAt(t, journal).empty()) {
      EXPECT_FALSE(rel.TextAt(t, volume).empty());
      EXPECT_FALSE(rel.TextAt(t, number).empty());
    }
  }
}

TEST(DblpTest, JournalVolumeNumberDeterminesYear) {
  // Planted: Year = f(Journal, Volume, Number) on journal tuples, while
  // (Journal, Volume) alone is NOT always enough (spanning volumes).
  const auto rel = GenerateDblp(SmallOptions());
  const auto journal = rel.schema().Find("Journal").value();
  const auto volume = rel.schema().Find("Volume").value();
  const auto number = rel.schema().Find("Number").value();
  const auto year = rel.schema().Find("Year").value();
  std::unordered_map<std::string, std::string> jvn_to_year;
  bool jv_ambiguous = false;
  std::unordered_map<std::string, std::string> jv_to_year;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    if (rel.TextAt(t, journal).empty()) continue;
    const std::string jvn = rel.TextAt(t, journal) + "|" +
                            rel.TextAt(t, volume) + "|" +
                            rel.TextAt(t, number);
    auto [it, inserted] = jvn_to_year.emplace(jvn, rel.TextAt(t, year));
    EXPECT_EQ(it->second, rel.TextAt(t, year));
    const std::string jv =
        rel.TextAt(t, journal) + "|" + rel.TextAt(t, volume);
    auto [it2, inserted2] = jv_to_year.emplace(jv, rel.TextAt(t, year));
    if (it2->second != rel.TextAt(t, year)) jv_ambiguous = true;
  }
  EXPECT_TRUE(jv_ambiguous)
      << "expected some spanning volumes so that [Journal,Volume] alone "
         "does not determine Year";
}

TEST(DblpTest, DeterministicForSeed) {
  const auto a = GenerateDblp(SmallOptions());
  const auto b = GenerateDblp(SmallOptions());
  ASSERT_EQ(a.NumTuples(), b.NumTuples());
  for (relation::TupleId t = 0; t < a.NumTuples(); t += 97) {
    for (size_t c = 0; c < a.NumAttributes(); ++c) {
      EXPECT_EQ(a.TextAt(t, c), b.TextAt(t, c));
    }
  }
}

TEST(DblpTest, DifferentSeedsDiffer) {
  DblpOptions other = SmallOptions();
  other.seed = 99;
  const auto a = GenerateDblp(SmallOptions());
  const auto b = GenerateDblp(other);
  size_t diffs = 0;
  const size_t n = std::min(a.NumTuples(), b.NumTuples());
  for (relation::TupleId t = 0; t < n; t += 13) {
    if (a.TextAt(t, 0) != b.TextAt(t, 0)) ++diffs;
  }
  EXPECT_GT(diffs, 0u);
}

}  // namespace
}  // namespace limbo::datagen
