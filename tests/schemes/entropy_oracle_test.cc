#include "schemes/entropy_oracle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "fd/attribute_set.h"
#include "relation/relation.h"
#include "relation/row_source.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::schemes {
namespace {

using fd::AttributeSet;

/// Ground-truth H(X): project every tuple onto X's attribute texts and
/// count distinct combinations the slow, obvious way.
double BruteForceEntropy(const relation::Relation& rel, AttributeSet x) {
  std::map<std::vector<std::string>, uint64_t> counts;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    std::vector<std::string> key;
    for (relation::AttributeId a : x.ToList()) {
      key.push_back(rel.TextAt(t, a));
    }
    ++counts[key];
  }
  const double n = static_cast<double>(rel.NumTuples());
  double h = std::log2(n);
  for (const auto& [key, c] : counts) {
    h -= static_cast<double>(c) * std::log2(static_cast<double>(c)) / n;
  }
  return h < 0.0 ? 0.0 : h;
}

/// Random categorical relation: m attributes, each value drawn from a
/// per-attribute alphabet of `width` symbols.
relation::Relation RandomRelation(size_t rows, size_t m, size_t width,
                                  uint64_t seed) {
  util::Random rng(seed);
  std::vector<std::string> header;
  for (size_t a = 0; a < m; ++a) header.push_back("A" + std::to_string(a));
  std::vector<std::vector<std::string>> data;
  for (size_t t = 0; t < rows; ++t) {
    std::vector<std::string> row;
    for (size_t a = 0; a < m; ++a) {
      row.push_back("v" + std::to_string(rng.Uniform(width)));
    }
    data.push_back(std::move(row));
  }
  return limbo::testing::MakeRelation(std::move(header), data);
}

TEST(EntropyFromCounts, KnownValues) {
  // Uniform over 4 -> 2 bits; a point mass -> 0; empty -> 0.
  EXPECT_DOUBLE_EQ(EntropyFromCounts({1, 1, 1, 1}, 4), 2.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({5}, 5), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}, 0), 0.0);
  // {2,1,1} over 4: log2(4) - (2*1)/4 = 1.5.
  EXPECT_DOUBLE_EQ(EntropyFromCounts({2, 1, 1}, 4), 1.5);
}

TEST(EntropyFromCounts, OrderIndependent) {
  const std::vector<uint64_t> counts = {7, 1, 3, 9, 2, 2, 5};
  std::vector<uint64_t> reversed(counts.rbegin(), counts.rend());
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(EntropyFromCounts(counts, total),
            EntropyFromCounts(reversed, total));
}

TEST(EntropyOracle, MatchesBruteForceOnPaperExample) {
  const relation::Relation rel = limbo::testing::PaperFigure4();
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  const size_t m = rel.NumAttributes();
  for (uint64_t bits = 0; bits < (uint64_t{1} << m); ++bits) {
    const AttributeSet x(bits);
    auto h = oracle.H(x);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_NEAR(*h, BruteForceEntropy(rel, x), 1e-12) << x.bits();
  }
}

TEST(EntropyOracle, MatchesBruteForceOnRandomRelations) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const relation::Relation rel = RandomRelation(200, 4, 3, seed);
    relation::RelationRowSource source(rel);
    EntropyOracle oracle(source);
    std::vector<AttributeSet> sets;
    for (uint64_t bits = 1; bits < 16; ++bits) sets.push_back(AttributeSet(bits));
    auto hs = oracle.HBatch(sets);
    ASSERT_TRUE(hs.ok());
    for (size_t i = 0; i < sets.size(); ++i) {
      EXPECT_NEAR((*hs)[i], BruteForceEntropy(rel, sets[i]), 1e-12);
    }
  }
}

TEST(EntropyOracle, EmptySetIsZeroWithoutAPass) {
  const relation::Relation rel = limbo::testing::PaperFigure4();
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  auto h = oracle.H(AttributeSet());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, 0.0);
  EXPECT_EQ(oracle.stats().passes, 0u);
}

TEST(EntropyOracle, MonotoneInTheSubset) {
  // H is monotone: adding attributes never loses information.
  for (uint64_t seed : {3u, 11u, 99u}) {
    const relation::Relation rel = RandomRelation(150, 5, 3, seed);
    relation::RelationRowSource source(rel);
    EntropyOracle oracle(source);
    util::Random rng(seed * 31 + 1);
    for (int trial = 0; trial < 20; ++trial) {
      const AttributeSet x(rng.Uniform(32));
      const AttributeSet xy(
          x.Union(AttributeSet(rng.Uniform(32))).bits());
      auto hx = oracle.H(x);
      auto hxy = oracle.H(xy);
      ASSERT_TRUE(hx.ok() && hxy.ok());
      EXPECT_GE(*hxy, *hx - 1e-12);
    }
  }
}

TEST(EntropyOracle, SubmodularOnRandomRelations) {
  // Diminishing returns: for X ⊆ Y and a ∉ Y,
  //   H(X ∪ a) − H(X) >= H(Y ∪ a) − H(Y).
  for (uint64_t seed : {5u, 23u, 77u}) {
    const relation::Relation rel = RandomRelation(150, 5, 3, seed);
    relation::RelationRowSource source(rel);
    EntropyOracle oracle(source);
    util::Random rng(seed * 17 + 3);
    for (int trial = 0; trial < 20; ++trial) {
      const AttributeSet y(rng.Uniform(32));
      const AttributeSet x = y.Intersect(AttributeSet(rng.Uniform(32)));
      const relation::AttributeId a =
          static_cast<relation::AttributeId>(rng.Uniform(5));
      if (y.Contains(a)) continue;
      auto hx = oracle.H(x);
      auto hxa = oracle.H(x.With(a));
      auto hy = oracle.H(y);
      auto hya = oracle.H(y.With(a));
      ASSERT_TRUE(hx.ok() && hxa.ok() && hy.ok() && hya.ok());
      EXPECT_GE((*hxa - *hx) - (*hya - *hy), -1e-12);
    }
  }
}

TEST(EntropyOracle, BitIdenticalAcrossLaneCounts) {
  const relation::Relation rel = RandomRelation(500, 6, 4, 2026);
  std::vector<AttributeSet> sets;
  for (uint64_t bits = 1; bits < 64; ++bits) sets.push_back(AttributeSet(bits));
  std::vector<double> reference;
  for (size_t threads : {1u, 2u, 4u}) {
    relation::RelationRowSource source(rel);
    EntropyOracleOptions options;
    options.threads = threads;
    EntropyOracle oracle(source, options);
    auto hs = oracle.HBatch(sets);
    ASSERT_TRUE(hs.ok());
    if (reference.empty()) {
      reference = *hs;
      continue;
    }
    for (size_t i = 0; i < sets.size(); ++i) {
      // Exact equality — the sorted-counts reduction is the contract.
      EXPECT_EQ((*hs)[i], reference[i]) << "set " << sets[i].bits()
                                        << " at " << threads << " lanes";
    }
  }
}

TEST(EntropyOracle, SubBatchingBoundsLiveMapsAndKeepsResultsExact) {
  // max_sets_per_pass trades extra streams over the source for a bound
  // on simultaneously live counting maps; every entropy is folded from
  // the same exact counts, so the split is invisible in the results.
  const relation::Relation rel = RandomRelation(200, 5, 3, 9);
  std::vector<AttributeSet> sets;
  for (uint64_t bits = 1; bits < 32; ++bits) sets.push_back(AttributeSet(bits));
  std::vector<double> reference;
  {
    relation::RelationRowSource source(rel);
    EntropyOracleOptions options;
    options.max_sets_per_pass = 0;  // unlimited: the whole batch, one pass
    EntropyOracle oracle(source, options);
    auto hs = oracle.HBatch(sets);
    ASSERT_TRUE(hs.ok());
    reference = *hs;
    EXPECT_EQ(oracle.stats().passes, 1u);
  }
  relation::RelationRowSource source(rel);
  EntropyOracleOptions options;
  options.max_sets_per_pass = 4;
  EntropyOracle oracle(source, options);
  auto hs = oracle.HBatch(sets);
  ASSERT_TRUE(hs.ok());
  EXPECT_EQ(oracle.stats().passes, 8u);  // ceil(31 / 4)
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ((*hs)[i], reference[i]) << "set " << sets[i].bits();
  }
}

TEST(EntropyOracle, MemoAbsorbsRepeatQueries) {
  const relation::Relation rel = limbo::testing::PaperFigure4();
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  const AttributeSet x = AttributeSet::Single(0);
  ASSERT_TRUE(oracle.H(x).ok());
  const uint64_t passes = oracle.stats().passes;
  ASSERT_TRUE(oracle.H(x).ok());
  EXPECT_EQ(oracle.stats().passes, passes);
  EXPECT_GE(oracle.stats().memo_hits, 1u);
}

TEST(EntropyOracle, BatchDeduplicatesAndPreservesOrder) {
  const relation::Relation rel = limbo::testing::PaperFigure4();
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  const AttributeSet a = AttributeSet::Single(0);
  const AttributeSet b = AttributeSet::Single(1);
  auto hs = oracle.HBatch({a, b, a, AttributeSet(), b});
  ASSERT_TRUE(hs.ok());
  ASSERT_EQ(hs->size(), 5u);
  EXPECT_EQ((*hs)[0], (*hs)[2]);
  EXPECT_EQ((*hs)[1], (*hs)[4]);
  EXPECT_EQ((*hs)[3], 0.0);
  EXPECT_EQ(oracle.stats().sets_counted, 2u);
}

TEST(EntropyOracle, RejectsOutOfRangeAttributes) {
  const relation::Relation rel = limbo::testing::PaperFigure4();  // 3 attrs
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  EXPECT_FALSE(oracle.H(AttributeSet::Single(7)).ok());
}

}  // namespace
}  // namespace limbo::schemes
