#include "schemes/mine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fd/attribute_set.h"
#include "relation/relation.h"
#include "relation/row_source.h"
#include "schemes/entropy_oracle.h"
#include "testing/make_relation.h"

namespace limbo::schemes {
namespace {

using fd::AttributeSet;

/// The textbook lossless join: for each A value, B and C range over their
/// two A-specific symbols independently, so B ⫫ C | A exactly and
/// R = R[A,B] ⋈ R[A,C] without spurious tuples.
relation::Relation LosslessJoinRelation() {
  std::vector<std::vector<std::string>> rows;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        rows.push_back({"a" + std::to_string(a),
                        "b" + std::to_string(2 * a + b),
                        "c" + std::to_string(2 * a + c)});
      }
    }
  }
  return limbo::testing::MakeRelation({"A", "B", "C"}, rows);
}

/// `m` attributes over two rows: every column constant except the last.
relation::Relation WideRelation(size_t m) {
  std::vector<std::string> names;
  for (size_t a = 0; a < m; ++a) names.push_back("A" + std::to_string(a));
  std::vector<std::vector<std::string>> rows(2);
  for (size_t a = 0; a < m; ++a) {
    rows[0].push_back("v");
    rows[1].push_back(a + 1 == m ? "w" : "v");
  }
  return limbo::testing::MakeRelation(std::move(names), rows);
}

std::string RenderAll(const MineResult& result,
                      const relation::Schema& schema) {
  std::string out;
  for (const AcyclicScheme& s : result.schemes) {
    out += s.ToString(schema);
    out.push_back('\n');
  }
  return out;
}

TEST(MineAcyclicSchemes, FindsTheLosslessJoinScheme) {
  const relation::Relation rel = LosslessJoinRelation();
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  auto result = MineAcyclicSchemes(oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows, 8u);
  EXPECT_NEAR(result->total_entropy, 3.0, 1e-12);
  bool found = false;
  for (const AcyclicScheme& s : result->schemes) {
    EXPECT_LE(s.j_measure, 0.05);
    EXPECT_GE(s.bags.size(), 2u);
    if (s.separator == AttributeSet::Single(0) && s.bags.size() == 2 &&
        s.bags[0] == AttributeSet(0b011) && s.bags[1] == AttributeSet(0b101)) {
      found = true;
      EXPECT_NEAR(s.j_measure, 0.0, 1e-12);
    }
  }
  EXPECT_TRUE(found) << RenderAll(*result, rel.schema());
}

TEST(MineAcyclicSchemes, IndependentPairSplitsOnTheEmptySeparator) {
  // A and B uniform and independent: the only legal separator at m=2 is
  // empty, and the dependence graph has no edge.
  std::vector<std::vector<std::string>> rows;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      rows.push_back({"a" + std::to_string(a), "b" + std::to_string(b)});
    }
  }
  const relation::Relation rel =
      limbo::testing::MakeRelation({"A", "B"}, rows);
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  auto result = MineAcyclicSchemes(oracle);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->schemes.size(), 1u);
  EXPECT_EQ(result->schemes[0].separator, AttributeSet());
  ASSERT_EQ(result->schemes[0].bags.size(), 2u);
  EXPECT_EQ(result->schemes[0].bags[0], AttributeSet::Single(0));
  EXPECT_EQ(result->schemes[0].bags[1], AttributeSet::Single(1));
  EXPECT_NEAR(result->schemes[0].j_measure, 0.0, 1e-12);
}

TEST(MineAcyclicSchemes, CorrelatedPairYieldsNothing) {
  // B is a bijection of A: one dependence component, nothing to split.
  const relation::Relation rel = limbo::testing::MakeRelation(
      {"A", "B"},
      {{"a0", "b0"}, {"a1", "b1"}, {"a2", "b2"}, {"a0", "b0"}});
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  auto result = MineAcyclicSchemes(oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schemes.empty());
}

TEST(MineAcyclicSchemes, EpsilonGatesApproximateSchemes) {
  // Noisy three-way dependence with no exact FDs anywhere: every value of
  // B and C occurs under both A values, and B, C stay weakly dependent
  // given A. With the tolerance wide open every candidate graph is
  // edgeless, so every scheme's J-measure is strictly positive — a strict
  // epsilon keeps none, a loose one admits the join-tree scheme whose J
  // must equal the oracle-side identity H(AB) + H(AC) − H(A) − H(Ω).
  std::vector<std::vector<std::string>> rows;
  auto add = [&rows](int a, int b, int c, int copies) {
    for (int i = 0; i < copies; ++i) {
      rows.push_back({"a" + std::to_string(a), "b" + std::to_string(b),
                      "c" + std::to_string(c)});
    }
  };
  add(0, 0, 0, 3), add(0, 0, 1, 1), add(0, 1, 0, 1), add(0, 1, 1, 1);
  add(1, 1, 1, 3), add(1, 1, 0, 1), add(1, 0, 1, 1), add(1, 0, 0, 1);
  const relation::Relation rel =
      limbo::testing::MakeRelation({"A", "B", "C"}, rows);

  MineOptions strict;
  strict.epsilon = 1e-12;
  strict.tolerance = 1.0;  // every pair counts as independent
  {
    relation::RelationRowSource source(rel);
    EntropyOracle oracle(source);
    auto result = MineAcyclicSchemes(oracle, strict);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->schemes.empty()) << RenderAll(*result, rel.schema());
  }

  MineOptions loose = strict;
  loose.epsilon = 1.0;
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  auto result = MineAcyclicSchemes(oracle, loose);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const AcyclicScheme& s : result->schemes) {
    if (s.separator != AttributeSet::Single(0) || s.bags.size() != 2 ||
        s.bags[0] != AttributeSet(0b011) || s.bags[1] != AttributeSet(0b101)) {
      continue;
    }
    found = true;
    auto hab = oracle.H(AttributeSet(0b011));
    auto hac = oracle.H(AttributeSet(0b101));
    auto ha = oracle.H(AttributeSet::Single(0));
    auto homega = oracle.H(AttributeSet(0b111));
    ASSERT_TRUE(hab.ok() && hac.ok() && ha.ok() && homega.ok());
    const double expected = *hab + *hac - *ha - *homega;
    EXPECT_GT(s.j_measure, 0.0);
    EXPECT_NEAR(s.j_measure, expected, 1e-12);
  }
  EXPECT_TRUE(found) << RenderAll(*result, rel.schema());
}

TEST(MineAcyclicSchemes, DeterministicAcrossRunsAndLaneCounts) {
  const relation::Relation rel = LosslessJoinRelation();
  std::string reference;
  for (size_t threads : {1u, 1u, 4u}) {
    relation::RelationRowSource source(rel);
    EntropyOracleOptions oracle_options;
    oracle_options.threads = threads;
    EntropyOracle oracle(source, oracle_options);
    auto result = MineAcyclicSchemes(oracle);
    ASSERT_TRUE(result.ok());
    const std::string rendered = RenderAll(*result, rel.schema());
    if (reference.empty()) {
      reference = rendered;
      EXPECT_FALSE(reference.empty());
      continue;
    }
    EXPECT_EQ(rendered, reference) << "threads=" << threads;
  }
}

TEST(MineAcyclicSchemes, MaxSchemesTruncatesAfterTheSort) {
  const relation::Relation rel = LosslessJoinRelation();
  MineOptions unbounded;
  unbounded.max_schemes = 64;
  std::vector<AcyclicScheme> all;
  {
    relation::RelationRowSource source(rel);
    EntropyOracle oracle(source);
    auto result = MineAcyclicSchemes(oracle, unbounded);
    ASSERT_TRUE(result.ok());
    all = result->schemes;
    ASSERT_GE(all.size(), 2u);
  }
  MineOptions capped;
  capped.max_schemes = 1;
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  auto result = MineAcyclicSchemes(oracle, capped);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->schemes.size(), 1u);
  // Truncation keeps the sort's head, not an arbitrary survivor.
  EXPECT_EQ(result->schemes[0].ToString(rel.schema()),
            all[0].ToString(rel.schema()));
}

TEST(MineAcyclicSchemes, RejectsSingleAttributeRelations) {
  const relation::Relation rel = limbo::testing::MakeRelation(
      {"A"}, {{"a0"}, {"a1"}});
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  EXPECT_FALSE(MineAcyclicSchemes(oracle).ok());
}

TEST(EnumerateSeparators, MatchesTheBitmaskSweepOnNarrowSchemas) {
  for (size_t m = 1; m <= 12; ++m) {
    for (size_t max_size : std::vector<size_t>{0, 1, 2, 3, m}) {
      std::vector<AttributeSet> expected;
      expected.push_back(AttributeSet());
      if (max_size > 0) {
        for (uint64_t bits = 1; bits < (uint64_t{1} << m); ++bits) {
          if (AttributeSet(bits).Count() <= max_size) {
            expected.push_back(AttributeSet(bits));
          }
        }
      }
      const std::vector<AttributeSet> got = EnumerateSeparators(m, max_size);
      ASSERT_EQ(got.size(), expected.size()) << "m=" << m << " k=" << max_size;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].bits(), expected[i].bits())
            << "m=" << m << " k=" << max_size << " i=" << i;
      }
    }
  }
}

TEST(EnumerateSeparators, HandlesTheWidestSchemaWithoutSweeping) {
  // At m = 64 the full bitmask is UINT64_MAX, so the old 1..full sweep
  // never terminated (and 33..63 attributes took ~2^m iterations).
  const std::vector<AttributeSet> singles = EnumerateSeparators(64, 1);
  ASSERT_EQ(singles.size(), 65u);
  EXPECT_TRUE(singles.front().Empty());
  EXPECT_EQ(singles.back().bits(), AttributeSet::Single(63).bits());
  // 1 + C(64,1) + C(64,2).
  EXPECT_EQ(EnumerateSeparators(64, 2).size(), 1u + 64u + 2016u);
}

TEST(MineAcyclicSchemes, MinesTheWidestSchemaQuickly) {
  const relation::Relation rel = WideRelation(64);
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  MineOptions options;
  options.max_separator = 1;
  auto result = MineAcyclicSchemes(oracle, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->schemes.empty());
  EXPECT_NEAR(result->schemes[0].j_measure, 0.0, 1e-12);
}

TEST(MineAcyclicSchemes, RefusesExplosiveSeparatorSpaces) {
  // C(40, 6) alone is ~3.8M separators, past kMaxSeparators: refuse up
  // front instead of entering an astronomically long search.
  const relation::Relation rel = WideRelation(40);
  relation::RelationRowSource source(rel);
  EntropyOracle oracle(source);
  MineOptions options;
  options.max_separator = 10;
  auto result = MineAcyclicSchemes(oracle, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("separator space"),
            std::string::npos);
  EXPECT_EQ(oracle.stats().passes, 0u);  // refused before any counting
}

TEST(AcyclicScheme, RendersWithSchemaNames) {
  const relation::Relation rel = limbo::testing::PaperFigure4();
  AcyclicScheme scheme;
  scheme.separator = AttributeSet::Single(0);
  scheme.bags = {AttributeSet(0b011), AttributeSet(0b101)};
  scheme.j_measure = 0.0123;
  EXPECT_EQ(scheme.ToString(rel.schema()),
            "{[A,B] | [A,C]} sep [A] j=0.0123");
}

}  // namespace
}  // namespace limbo::schemes
