#include "model/refit.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "model/fit.h"
#include "model/model_bundle.h"
#include "relation/relation.h"
#include "relation/row_source.h"
#include "util/status.h"

namespace limbo::model {
namespace {

relation::Relation BaseRelation() {
  auto schema = relation::Schema::Create({"City", "State", "Zip", "Name"});
  EXPECT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  const std::vector<std::vector<std::string>> rows = {
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Denver", "CO", "80201", "bob"},   {"Denver", "CO", "80201", "carol"},
      {"Miami", "FL", "33101", "dave"},   {"Miami", "FL", "33101", "erin"},
      {"Austin", "TX", "73301", "frank"}, {"Austin", "TX", "73301", "grace"},
      {"Salem", "OR", "97301", "heidi"},  {"Salem", "OR", "97301", "ivan"},
  };
  for (const auto& row : rows) EXPECT_TRUE(builder.AddRow(row).ok());
  return std::move(builder).Build();
}

ModelBundle FitParent() {
  FitOptions options;
  options.k = 3;
  auto bundle = FitModel(BaseRelation(), options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  return std::move(bundle).value();
}

constexpr const char* kHeader = "City,State,Zip,Name\n";

/// New rows drawn from the fitted distribution (repeats of fit-time rows).
std::string FamiliarRowsCsv() {
  return std::string(kHeader) +
         "Boston,MA,02134,alice\n"
         "Denver,CO,80201,bob\n"
         "Miami,FL,33101,erin\n";
}

/// New rows with entirely unseen values — they assign with real loss, so
/// the drift score is positive.
std::string ShiftedRowsCsv() {
  return std::string(kHeader) +
         "Lagos,XX,99990,zara\n"
         "Kyoto,YY,99991,yuki\n"
         "Quito,ZZ,99992,omar\n"
         "Oslo,WW,99993,nils\n";
}

util::Result<RefitResult> RefitCsv(const ModelBundle& parent,
                                   const std::string& csv,
                                   const RefitOptions& options = {}) {
  auto source = relation::CsvStringSource::Open(csv);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return RefitModel(parent, *source, options);
}

/// Splits a serialized bundle into its payload sections: tag -> raw body
/// bytes. Duplicated from the wire layout on purpose — the test must not
/// trust the parser it is checking.
std::map<uint32_t, std::string> SplitSections(const std::string& bytes) {
  std::map<uint32_t, std::string> sections;
  size_t at = 32;  // magic + version + reserved + payload len + checksum
  while (at < bytes.size()) {
    uint32_t tag = 0;
    uint64_t len = 0;
    std::memcpy(&tag, bytes.data() + at, sizeof(tag));
    std::memcpy(&len, bytes.data() + at + 8, sizeof(len));
    sections[tag] = bytes.substr(at + 16, len);
    at += 16 + len;
  }
  return sections;
}

constexpr uint32_t kLineageTag = 10;

// The acceptance criterion of the refit tentpole: absorbing zero rows
// must reproduce the parent bundle byte for byte outside the new lineage
// section — every other section, including the re-frozen phase-1 tree,
// is identical. This is what makes Freeze(Restore(tree)) a real identity
// rather than an approximation.
TEST(RefitTest, ZeroRowsRefitIsByteIdenticalOutsideLineage) {
  const ModelBundle parent = FitParent();
  auto result = RefitCsv(parent, kHeader);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_absorbed, 0u);
  EXPECT_EQ(result->drift_class, DriftClass::kNone);
  EXPECT_EQ(result->drift_score, 0.0);

  const auto parent_sections = SplitSections(SerializeBundle(parent));
  const auto child_sections = SplitSections(SerializeBundle(result->bundle));
  EXPECT_EQ(parent_sections.count(kLineageTag), 0u);
  ASSERT_EQ(child_sections.count(kLineageTag), 1u);
  ASSERT_EQ(child_sections.size(), parent_sections.size() + 1);
  for (const auto& [tag, body] : parent_sections) {
    ASSERT_EQ(child_sections.count(tag), 1u) << "section " << tag << " lost";
    EXPECT_EQ(child_sections.at(tag), body)
        << "section " << tag << " changed across a zero-row refit";
  }
}

TEST(RefitTest, NoDriftPatchKeepsParentAssignments) {
  const ModelBundle parent = FitParent();
  auto result = RefitCsv(parent, FamiliarRowsCsv());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->drift_class, DriftClass::kNone);
  const ModelBundle& child = result->bundle;
  EXPECT_EQ(child.num_rows, parent.num_rows + 3);
  ASSERT_EQ(child.assignments.size(), child.num_rows);
  ASSERT_EQ(child.assignment_loss.size(), child.num_rows);
  ASSERT_EQ(child.row_entry_ids.size(), child.num_rows);
  // The original rows' labels and losses are untouched.
  for (size_t i = 0; i < parent.num_rows; ++i) {
    EXPECT_EQ(child.assignments[i], parent.assignments[i]);
    EXPECT_EQ(std::memcmp(&child.assignment_loss[i],
                          &parent.assignment_loss[i], sizeof(double)),
              0);
  }
  // Representatives are frozen on the patch path.
  ASSERT_EQ(child.representatives.size(), parent.representatives.size());
  ASSERT_TRUE(child.has_lineage);
  EXPECT_EQ(child.lineage.refit_generation, 1u);
  EXPECT_EQ(child.lineage.base_rows, parent.num_rows);
  EXPECT_EQ(child.lineage.rows_absorbed, 3u);
  EXPECT_EQ(child.lineage.total_rows_absorbed, 3u);
}

// The three-way classification, driven through the thresholds around the
// measured score — including the boundary itself, which is exclusive on
// both cuts (score == threshold escalates). Run at 1 and 4 threads: the
// classification and the child bundle must be identical at any lane
// count.
TEST(RefitTest, DriftBoundariesAtOneAndFourThreads) {
  const ModelBundle parent = FitParent();
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    RefitOptions options;
    options.threads = threads;
    auto probe = RefitCsv(parent, ShiftedRowsCsv(), options);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    const double score = probe->drift_score;
    ASSERT_GT(score, 0.0);

    // Thresholds comfortably above the score: no drift.
    options.drift_moderate = score * 2.0;
    options.drift_severe = score * 4.0;
    auto none = RefitCsv(parent, ShiftedRowsCsv(), options);
    ASSERT_TRUE(none.ok());
    EXPECT_EQ(none->drift_class, DriftClass::kNone);

    // Exactly at the moderate boundary: score < moderate is false, so the
    // refit escalates to the Phase-2/3 re-run.
    options.drift_moderate = score;
    options.drift_severe = score * 4.0;
    auto moderate = RefitCsv(parent, ShiftedRowsCsv(), options);
    ASSERT_TRUE(moderate.ok());
    EXPECT_EQ(moderate->drift_class, DriftClass::kModerate);

    // Exactly at the severe boundary: the refit refuses to patch and the
    // result carries no bundle.
    options.drift_moderate = score / 2.0;
    options.drift_severe = score;
    auto severe = RefitCsv(parent, ShiftedRowsCsv(), options);
    ASSERT_TRUE(severe.ok());
    EXPECT_EQ(severe->drift_class, DriftClass::kSevere);
    EXPECT_TRUE(severe->bundle.representatives.empty());
    EXPECT_EQ(severe->bundle.num_rows, 0u);
  }
}

TEST(RefitTest, RefitIsThreadCountInvariant) {
  const ModelBundle parent = FitParent();
  RefitOptions options;
  options.threads = 1;
  // Force the moderate path so the Phase-2/3 re-run is covered too.
  options.drift_moderate = 0.0;
  auto serial = RefitCsv(parent, ShiftedRowsCsv(), options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->drift_class, DriftClass::kModerate);
  options.threads = 4;
  auto parallel = RefitCsv(parent, ShiftedRowsCsv(), options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(SerializeBundle(serial->bundle),
            SerializeBundle(parallel->bundle));
}

TEST(RefitTest, ModeratePathRelabelsEveryRow) {
  const ModelBundle parent = FitParent();
  RefitOptions options;
  options.drift_moderate = 0.0;  // any positive score -> moderate
  auto result = RefitCsv(parent, ShiftedRowsCsv(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->drift_class, DriftClass::kModerate);
  const ModelBundle& child = result->bundle;
  ASSERT_EQ(child.assignments.size(), child.num_rows);
  ASSERT_EQ(child.assignment_loss.size(), child.num_rows);
  ASSERT_FALSE(child.representatives.empty());
  for (uint64_t r = 0; r < child.num_rows; ++r) {
    EXPECT_LT(child.assignments[r], child.representatives.size());
    EXPECT_GE(child.assignment_loss[r], 0.0);
  }
  EXPECT_EQ(child.lineage.drift_class, DriftClass::kModerate);
}

// Lineage must chain: the checksum recorded in each child is the payload
// checksum of the exact parent file it grew from, generations count up,
// and base_rows stays anchored at the original fit while the absorbed
// totals accumulate.
TEST(RefitTest, ChainedRefitAccumulatesLineage) {
  const std::string dir = testing::TempDir();
  const std::string parent_path = dir + "/chain_parent.limbo";
  const std::string child_path = dir + "/chain_child.limbo";
  ASSERT_TRUE(Save(FitParent(), parent_path).ok());
  auto parent = Load(parent_path);
  ASSERT_TRUE(parent.ok());
  ASSERT_NE(parent->payload_checksum, 0u);

  auto first = RefitCsv(*parent, FamiliarRowsCsv());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->drift_class, DriftClass::kNone);
  EXPECT_EQ(first->bundle.lineage.parent_checksum, parent->payload_checksum);
  ASSERT_TRUE(Save(first->bundle, child_path).ok());

  auto child = Load(child_path);
  ASSERT_TRUE(child.ok());
  auto second = RefitCsv(*child, FamiliarRowsCsv());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const BundleLineage& l = second->bundle.lineage;
  EXPECT_EQ(l.refit_generation, 2u);
  EXPECT_EQ(l.parent_checksum, child->payload_checksum);
  EXPECT_EQ(l.base_rows, parent->num_rows);
  EXPECT_EQ(l.rows_absorbed, 3u);
  EXPECT_EQ(l.total_rows_absorbed, 6u);
  EXPECT_EQ(second->bundle.num_rows, parent->num_rows + 6);
}

// A refit child must itself round-trip the wire format field-exactly —
// the lineage and updated tree sections included.
TEST(RefitTest, ChildBundleRoundTrips) {
  const ModelBundle parent = FitParent();
  auto result = RefitCsv(parent, FamiliarRowsCsv());
  ASSERT_TRUE(result.ok());
  const std::string bytes = SerializeBundle(result->bundle);
  auto parsed = ParseBundle(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeBundle(*parsed), bytes);
  ASSERT_TRUE(parsed->has_lineage);
  EXPECT_EQ(parsed->lineage.refit_generation, 1u);
}

TEST(RefitTest, RejectsBundleWithoutRefitState) {
  FitOptions fit_options;
  fit_options.k = 3;
  fit_options.refit_state = false;
  auto parent = FitModel(BaseRelation(), fit_options);
  ASSERT_TRUE(parent.ok());
  auto result = RefitCsv(*parent, FamiliarRowsCsv());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RefitTest, RejectsSchemaMismatch) {
  const ModelBundle parent = FitParent();
  auto result = RefitCsv(parent, "City,State,Zip\nBoston,MA,02134\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RefitTest, RejectsInvertedThresholds) {
  const ModelBundle parent = FitParent();
  RefitOptions options;
  options.drift_moderate = 8.0;
  options.drift_severe = 2.0;
  auto result = RefitCsv(parent, FamiliarRowsCsv(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RefitTest, RejectsRaggedRow) {
  const ModelBundle parent = FitParent();
  auto result =
      RefitCsv(parent, std::string(kHeader) + "Boston,MA,02134\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

constexpr uint32_t kRankedFdsTag = 8;
constexpr uint32_t kValueGroupsTag = 6;

/// Rows that break the fit-time FD City->State: Boston co-occurs with a
/// second state, so an exact re-derivation over the absorbed relation
/// cannot reproduce the parent's FD cover.
std::string FdBreakingRowsCsv() {
  return std::string(kHeader) +
         "Boston,XX,02134,alice\n"
         "Boston,XX,02134,nina\n"
         "Denver,YY,80201,walt\n";
}

// The moderate path is a complete re-derivation, not a patch: CV_D value
// groups and FD ranks are recomputed over the absorbed relation. Rows
// that break a parent FD must therefore change the child's ranked-FD
// section — a patch that froze the parent's FDs would ship stale
// structure under a bundle that claims to describe the new rows.
TEST(RefitTest, ModerateRefitRederivesFdsWhenNewRowsBreakOne) {
  const ModelBundle parent = FitParent();
  RefitOptions options;
  options.drift_moderate = 0.0;  // any positive score -> moderate
  auto result = RefitCsv(parent, FdBreakingRowsCsv(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->drift_class, DriftClass::kModerate);
  ASSERT_FALSE(result->bundle.ranked_fds.empty());

  const auto parent_sections = SplitSections(SerializeBundle(parent));
  const auto child_sections = SplitSections(SerializeBundle(result->bundle));
  ASSERT_EQ(parent_sections.count(kRankedFdsTag), 1u);
  ASSERT_EQ(child_sections.count(kRankedFdsTag), 1u);
  EXPECT_NE(child_sections.at(kRankedFdsTag),
            parent_sections.at(kRankedFdsTag))
      << "moderate refit served the parent's FD section unchanged even "
         "though the absorbed rows broke City->State";
  // The value groups are re-derived over the absorbed dictionary too.
  ASSERT_EQ(child_sections.count(kValueGroupsTag), 1u);
  EXPECT_NE(child_sections.at(kValueGroupsTag),
            parent_sections.at(kValueGroupsTag));

  // Semantics, not just bytes: no surviving exact FD may still claim
  // City (attr 0) alone determines State (attr 1).
  const fd::AttributeSet city = fd::AttributeSet::Single(0);
  for (const core::RankedFd& r : result->bundle.ranked_fds) {
    if (r.fd.lhs == city) {
      EXPECT_FALSE(r.fd.rhs.Contains(1))
          << r.fd.ToString(result->bundle.schema);
    }
  }
}

// The second drift signal: per-attribute entropy drift between the
// absorbed rows and the parent's frozen Phase-1 counts, recorded on the
// result and in the child's lineage. Zero rows -> zero signal; rows with
// unseen values in every column -> strictly positive.
TEST(RefitTest, EntropyDriftSignalTracksAbsorbedRows) {
  const ModelBundle parent = FitParent();
  auto zero = RefitCsv(parent, kHeader);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->entropy_drift, 0.0);
  EXPECT_EQ(zero->bundle.lineage.entropy_drift, 0.0);

  RefitOptions options;
  options.drift_moderate = 0.0;
  auto shifted = RefitCsv(parent, ShiftedRowsCsv(), options);
  ASSERT_TRUE(shifted.ok()) << shifted.status().ToString();
  ASSERT_EQ(shifted->drift_class, DriftClass::kModerate);
  EXPECT_GT(shifted->entropy_drift, 0.0);
  EXPECT_EQ(shifted->bundle.lineage.entropy_drift, shifted->entropy_drift);
  // The signal survives the wire round trip bit for bit.
  auto parsed = ParseBundle(SerializeBundle(shifted->bundle));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::memcmp(&parsed->lineage.entropy_drift,
                        &shifted->entropy_drift, sizeof(double)),
            0);
  // Informational only: the classification is still driven by the loss
  // ratio, and the severe path carries no signal (no bundle either).
  options.drift_moderate = 0.0;
  options.drift_severe = 1e-9;
  auto severe = RefitCsv(parent, ShiftedRowsCsv(), options);
  ASSERT_TRUE(severe.ok());
  ASSERT_EQ(severe->drift_class, DriftClass::kSevere);
  EXPECT_EQ(severe->entropy_drift, 0.0);
}

// New values arriving in the refit rows are interned into the child's
// dictionary with correct supports, and the parent's dictionary is
// untouched (the refit copies, never mutates).
TEST(RefitTest, InternsNewValuesIntoChildOnly) {
  const ModelBundle parent = FitParent();
  const size_t parent_values = parent.dictionary.NumValues();
  auto result = RefitCsv(parent, ShiftedRowsCsv());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(parent.dictionary.NumValues(), parent_values);
  if (result->drift_class != DriftClass::kSevere) {
    EXPECT_GT(result->bundle.dictionary.NumValues(), parent_values);
    auto found = result->bundle.dictionary.Find(0, "Lagos");
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(result->bundle.dictionary.Support(*found), 1u);
  }
}

}  // namespace
}  // namespace limbo::model
