#include "model/model_bundle.h"

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "model/fit.h"
#include "relation/relation.h"
#include "util/status.h"

namespace limbo::model {
namespace {

// Bit-exact double comparison: round-tripping a bundle must not perturb a
// single mantissa bit, or serve-side assignments drift from the batch run.
void ExpectBitEqual(double a, double b) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << "doubles differ: " << a << " vs " << b;
}

std::vector<std::vector<std::string>> TestRows() {
  // City/State/Zip co-occur perfectly (value groups + FDs); the repeated
  // Boston row makes its tuple cluster heavy (duplicates).
  return {
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Boston", "MA", "02134", "alice"}, {"Boston", "MA", "02134", "alice"},
      {"Denver", "CO", "80201", "bob"},   {"Denver", "CO", "80201", "carol"},
      {"Miami", "FL", "33101", "dave"},   {"Miami", "FL", "33101", "erin"},
      {"Austin", "TX", "73301", "frank"}, {"Austin", "TX", "73301", "grace"},
      {"Salem", "OR", "97301", "heidi"},  {"Salem", "OR", "97301", "ivan"},
  };
}

relation::Relation TestRelation() {
  auto schema =
      relation::Schema::Create({"City", "State", "Zip", "Name"});
  EXPECT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  for (const auto& row : TestRows()) {
    EXPECT_TRUE(builder.AddRow(row).ok());
  }
  return std::move(builder).Build();
}

ModelBundle FittedBundle(bool mine_schemes = true) {
  FitOptions options;
  options.k = 3;
  // Schemes on by default so the tag-11 section sits inside every
  // truncation/bit-flip/corruption fixture below.
  options.mine_schemes = mine_schemes;
  auto bundle = FitModel(TestRelation(), options);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  return std::move(bundle).value();
}

void ExpectEqualBundles(const ModelBundle& a, const ModelBundle& b) {
  EXPECT_EQ(a.num_rows, b.num_rows);
  ExpectBitEqual(a.phi_t, b.phi_t);
  ExpectBitEqual(a.phi_v, b.phi_v);
  ExpectBitEqual(a.psi, b.psi);
  ExpectBitEqual(a.mutual_information, b.mutual_information);
  ExpectBitEqual(a.threshold, b.threshold);
  ExpectBitEqual(a.association_margin, b.association_margin);
  ExpectBitEqual(a.value_mutual_information, b.value_mutual_information);
  ExpectBitEqual(a.value_threshold, b.value_threshold);

  EXPECT_EQ(a.schema.Names(), b.schema.Names());
  ASSERT_EQ(a.dictionary.NumValues(), b.dictionary.NumValues());
  for (relation::ValueId v = 0; v < a.dictionary.NumValues(); ++v) {
    EXPECT_EQ(a.dictionary.Attribute(v), b.dictionary.Attribute(v));
    EXPECT_EQ(a.dictionary.Text(v), b.dictionary.Text(v));
    EXPECT_EQ(a.dictionary.Support(v), b.dictionary.Support(v));
  }

  ASSERT_EQ(a.representatives.size(), b.representatives.size());
  for (size_t r = 0; r < a.representatives.size(); ++r) {
    const core::Dcf& x = a.representatives[r];
    const core::Dcf& y = b.representatives[r];
    ExpectBitEqual(x.p, y.p);
    ASSERT_EQ(x.cond.entries().size(), y.cond.entries().size());
    for (size_t i = 0; i < x.cond.entries().size(); ++i) {
      EXPECT_EQ(x.cond.entries()[i].id, y.cond.entries()[i].id);
      ExpectBitEqual(x.cond.entries()[i].mass, y.cond.entries()[i].mass);
    }
    EXPECT_EQ(x.attr_counts, y.attr_counts);
  }

  EXPECT_EQ(a.assignments, b.assignments);
  ASSERT_EQ(a.assignment_loss.size(), b.assignment_loss.size());
  for (size_t i = 0; i < a.assignment_loss.size(); ++i) {
    ExpectBitEqual(a.assignment_loss[i], b.assignment_loss[i]);
  }

  ASSERT_EQ(a.value_groups.size(), b.value_groups.size());
  for (size_t g = 0; g < a.value_groups.size(); ++g) {
    EXPECT_EQ(a.value_groups[g].values, b.value_groups[g].values);
    EXPECT_EQ(a.value_groups[g].is_duplicate, b.value_groups[g].is_duplicate);
    ExpectBitEqual(a.value_groups[g].dcf.p, b.value_groups[g].dcf.p);
    EXPECT_EQ(a.value_groups[g].dcf.attr_counts,
              b.value_groups[g].dcf.attr_counts);
    ASSERT_EQ(a.value_groups[g].dcf.cond.entries().size(),
              b.value_groups[g].dcf.cond.entries().size());
    for (size_t i = 0; i < a.value_groups[g].dcf.cond.entries().size(); ++i) {
      EXPECT_EQ(a.value_groups[g].dcf.cond.entries()[i].id,
                b.value_groups[g].dcf.cond.entries()[i].id);
      ExpectBitEqual(a.value_groups[g].dcf.cond.entries()[i].mass,
                     b.value_groups[g].dcf.cond.entries()[i].mass);
    }
  }
  EXPECT_EQ(a.duplicate_groups, b.duplicate_groups);

  EXPECT_EQ(a.has_grouping, b.has_grouping);
  EXPECT_EQ(a.grouping_attributes, b.grouping_attributes);
  EXPECT_EQ(a.grouping_num_objects, b.grouping_num_objects);
  ASSERT_EQ(a.grouping_merges.size(), b.grouping_merges.size());
  for (size_t i = 0; i < a.grouping_merges.size(); ++i) {
    EXPECT_EQ(a.grouping_merges[i].left, b.grouping_merges[i].left);
    EXPECT_EQ(a.grouping_merges[i].right, b.grouping_merges[i].right);
    EXPECT_EQ(a.grouping_merges[i].merged, b.grouping_merges[i].merged);
    ExpectBitEqual(a.grouping_merges[i].delta_i, b.grouping_merges[i].delta_i);
    ExpectBitEqual(a.grouping_merges[i].cumulative_loss,
                   b.grouping_merges[i].cumulative_loss);
    ExpectBitEqual(a.grouping_merges[i].p_merged, b.grouping_merges[i].p_merged);
  }
  EXPECT_EQ(a.grouping_cluster_members, b.grouping_cluster_members);
  ExpectBitEqual(a.max_merge_loss, b.max_merge_loss);

  EXPECT_EQ(a.num_fds, b.num_fds);
  ASSERT_EQ(a.ranked_fds.size(), b.ranked_fds.size());
  for (size_t i = 0; i < a.ranked_fds.size(); ++i) {
    EXPECT_EQ(a.ranked_fds[i].fd.lhs, b.ranked_fds[i].fd.lhs);
    EXPECT_EQ(a.ranked_fds[i].fd.rhs, b.ranked_fds[i].fd.rhs);
    ExpectBitEqual(a.ranked_fds[i].rank, b.ranked_fds[i].rank);
    EXPECT_EQ(a.ranked_fds[i].anchored, b.ranked_fds[i].anchored);
  }

  ASSERT_EQ(a.has_phase1_tree, b.has_phase1_tree);
  if (a.has_phase1_tree) {
    // The frozen-tree sections must round-trip bit-exactly, or a refit of
    // a loaded bundle diverges from a refit of the in-memory one. Byte
    // comparison of the serialized trees covers every node, entry id and
    // double in one shot.
    const std::string ta = SerializeBundle(a);
    const std::string tb = SerializeBundle(b);
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(a.phase1_tree.stats.num_leaf_entries,
              b.phase1_tree.stats.num_leaf_entries);
    EXPECT_EQ(a.phase1_tree.stats.num_inserts, b.phase1_tree.stats.num_inserts);
    EXPECT_EQ(a.row_entry_ids, b.row_entry_ids);
  }
  ASSERT_EQ(a.has_lineage, b.has_lineage);
  if (a.has_lineage) {
    EXPECT_EQ(a.lineage.parent_checksum, b.lineage.parent_checksum);
    EXPECT_EQ(a.lineage.refit_generation, b.lineage.refit_generation);
    EXPECT_EQ(a.lineage.drift_class, b.lineage.drift_class);
    EXPECT_EQ(a.lineage.base_rows, b.lineage.base_rows);
    EXPECT_EQ(a.lineage.rows_absorbed, b.lineage.rows_absorbed);
    EXPECT_EQ(a.lineage.total_rows_absorbed, b.lineage.total_rows_absorbed);
    ExpectBitEqual(a.lineage.drift_score, b.lineage.drift_score);
    ExpectBitEqual(a.lineage.drift_moderate, b.lineage.drift_moderate);
    ExpectBitEqual(a.lineage.drift_severe, b.lineage.drift_severe);
    ExpectBitEqual(a.lineage.entropy_drift, b.lineage.entropy_drift);
  }

  ASSERT_EQ(a.has_schemes, b.has_schemes);
  if (a.has_schemes) {
    ExpectBitEqual(a.schemes_epsilon, b.schemes_epsilon);
    EXPECT_EQ(a.schemes_max_separator, b.schemes_max_separator);
    ExpectBitEqual(a.schemes_total_entropy, b.schemes_total_entropy);
    ASSERT_EQ(a.schemes.size(), b.schemes.size());
    for (size_t i = 0; i < a.schemes.size(); ++i) {
      EXPECT_EQ(a.schemes[i].separator_bits, b.schemes[i].separator_bits);
      EXPECT_EQ(a.schemes[i].bag_bits, b.schemes[i].bag_bits);
      ExpectBitEqual(a.schemes[i].j_measure, b.schemes[i].j_measure);
    }
  }
}

TEST(FitModelTest, ProducesConsistentBundle) {
  const relation::Relation rel = TestRelation();
  const ModelBundle bundle = FittedBundle();
  EXPECT_EQ(bundle.num_rows, rel.NumTuples());
  EXPECT_EQ(bundle.schema.Names(), rel.schema().Names());
  EXPECT_EQ(bundle.dictionary.NumValues(), rel.NumValues());
  ASSERT_FALSE(bundle.representatives.empty());
  ASSERT_EQ(bundle.assignments.size(), rel.NumTuples());
  ASSERT_EQ(bundle.assignment_loss.size(), rel.NumTuples());
  for (uint32_t label : bundle.assignments) {
    EXPECT_LT(label, bundle.representatives.size());
  }
  EXPECT_GT(bundle.mutual_information, 0.0);
  EXPECT_GT(bundle.threshold, 0.0);
  EXPECT_FALSE(bundle.value_groups.empty());
}

TEST(FitModelTest, RejectsEmptyRelation) {
  auto schema = relation::Schema::Create({"A"});
  ASSERT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  auto bundle = FitModel(std::move(builder).Build(), FitOptions());
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ModelBundleTest, RoundTripIsFieldExact) {
  const ModelBundle bundle = FittedBundle();
  const std::string bytes = SerializeBundle(bundle);
  auto parsed = ParseBundle(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectEqualBundles(bundle, *parsed);
}

TEST(ModelBundleTest, SerializationIsDeterministic) {
  const ModelBundle bundle = FittedBundle();
  EXPECT_EQ(SerializeBundle(bundle), SerializeBundle(bundle));
}

TEST(ModelBundleTest, FileRoundTrip) {
  const ModelBundle bundle = FittedBundle();
  const std::string path = testing::TempDir() + "/round_trip.limbo";
  ASSERT_TRUE(Save(bundle, path).ok());
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEqualBundles(bundle, *loaded);
}

TEST(ModelBundleTest, LoadRejectsMissingFile) {
  auto loaded = Load(testing::TempDir() + "/definitely_not_there.limbo");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST(ModelBundleTest, RejectsEveryTruncation) {
  const std::string bytes = SerializeBundle(FittedBundle());
  // Every header prefix, then a sweep through the payload: a truncated
  // file must never parse and never crash.
  for (size_t len = 0; len < bytes.size(); len += (len < 64 ? 1 : 97)) {
    auto parsed = ParseBundle(bytes.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(ModelBundleTest, RejectsTrailingGarbage) {
  std::string bytes = SerializeBundle(FittedBundle());
  bytes += "extra";
  auto parsed = ParseBundle(bytes);
  ASSERT_FALSE(parsed.ok());
}

TEST(ModelBundleTest, RejectsBadMagic) {
  std::string bytes = SerializeBundle(FittedBundle());
  bytes[0] = 'X';
  auto parsed = ParseBundle(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ModelBundleTest, RejectsVersionBump) {
  std::string bytes = SerializeBundle(FittedBundle());
  // The format version is the u32 right after the 8-byte magic; the
  // checksum covers only the payload, so the bumped header is otherwise
  // intact — the version check alone must reject it.
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  ASSERT_EQ(version, kFormatVersion);
  version = kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  auto parsed = ParseBundle(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
}

TEST(ModelBundleTest, BitFlipFuzzAlwaysYieldsTypedError) {
  const std::string bytes = SerializeBundle(FittedBundle());
  // Any single-bit flip lands in the header (structural checks fail) or
  // in the payload (the FNV-1a checksum fails). Either way the result is
  // a clean error — never a crash, never a silently different bundle.
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<size_t> pick_byte(0, bytes.size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  for (int i = 0; i < 400; ++i) {
    std::string corrupt = bytes;
    corrupt[pick_byte(rng)] ^= static_cast<char>(1 << pick_bit(rng));
    auto parsed = ParseBundle(corrupt);
    EXPECT_FALSE(parsed.ok()) << "bit-flipped bundle parsed on iteration "
                              << i;
  }
}

TEST(ModelBundleTest, MultiByteCorruptionFuzz) {
  const std::string bytes = SerializeBundle(FittedBundle());
  std::mt19937 rng(987654321);
  std::uniform_int_distribution<size_t> pick_byte(0, bytes.size() - 1);
  std::uniform_int_distribution<int> pick_value(0, 255);
  for (int i = 0; i < 200; ++i) {
    std::string corrupt = bytes;
    for (int j = 0; j < 8; ++j) {
      corrupt[pick_byte(rng)] = static_cast<char>(pick_value(rng));
    }
    auto parsed = ParseBundle(corrupt);
    if (parsed.ok()) {
      // Astronomically unlikely (the random rewrite must preserve the
      // checksum), but if it happens the bundle must be the original.
      ExpectEqualBundles(*ParseBundle(bytes), *parsed);
    }
  }
}

TEST(ModelBundleTest, FitCarriesRefitState) {
  const ModelBundle bundle = FittedBundle();
  ASSERT_TRUE(bundle.has_phase1_tree);
  EXPECT_EQ(bundle.phase1_tree.stats.num_inserts, bundle.num_rows);
  ASSERT_EQ(bundle.row_entry_ids.size(), bundle.num_rows);
  for (uint32_t id : bundle.row_entry_ids) {
    EXPECT_LT(id, bundle.phase1_tree.stats.num_leaf_entries);
  }
  EXPECT_FALSE(bundle.has_lineage);
}

TEST(ModelBundleTest, NoRefitStateOptOut) {
  FitOptions options;
  options.k = 3;
  options.refit_state = false;
  auto bundle = FitModel(TestRelation(), options);
  ASSERT_TRUE(bundle.ok());
  EXPECT_FALSE(bundle->has_phase1_tree);
  EXPECT_TRUE(bundle->row_entry_ids.empty());
}

// Backward compat: a version-1 file (no refit sections) must still load.
// A v1 fixture is crafted by fitting without refit state and patching the
// header's version word — the checksum covers only the payload, so the
// header edit is otherwise invisible.
TEST(ModelBundleTest, ReadsVersion1Files) {
  FitOptions options;
  options.k = 3;
  options.refit_state = false;
  auto bundle = FitModel(TestRelation(), options);
  ASSERT_TRUE(bundle.ok());
  std::string bytes = SerializeBundle(*bundle);
  uint32_t version = 1;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  auto parsed = ParseBundle(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->format_version, 1u);
  EXPECT_FALSE(parsed->has_phase1_tree);
  EXPECT_FALSE(parsed->has_lineage);
  ExpectEqualBundles(*bundle, *parsed);
}

// A v1 header over a payload that carries the v2-only refit sections is
// structurally inconsistent and must be rejected, not silently accepted.
TEST(ModelBundleTest, RejectsRefitSectionsUnderVersion1Header) {
  std::string bytes = SerializeBundle(FittedBundle());
  uint32_t version = 1;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  auto parsed = ParseBundle(bytes);
  ASSERT_FALSE(parsed.ok());
}

TEST(ModelBundleTest, SchemesSectionRoundTrips) {
  const ModelBundle bundle = FittedBundle();
  ASSERT_TRUE(bundle.has_schemes);
  EXPECT_GT(bundle.schemes_total_entropy, 0.0);
  for (const BundleScheme& s : bundle.schemes) {
    EXPECT_GE(s.bag_bits.size(), 2u);
    EXPECT_GE(s.j_measure, 0.0);
  }
  auto parsed = ParseBundle(SerializeBundle(bundle));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectEqualBundles(bundle, *parsed);
}

// A pre-v3 bundle (no schemes section) must still load — and the schemes
// fields come back empty, which is what routes the serve-side `schemes`
// query to its typed no_schemes error instead of a crash.
TEST(ModelBundleTest, ReadsVersion2FilesWithoutSchemes) {
  const ModelBundle bundle = FittedBundle(/*mine_schemes=*/false);
  ASSERT_FALSE(bundle.has_schemes);
  std::string bytes = SerializeBundle(bundle);
  uint32_t version = 2;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  auto parsed = ParseBundle(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->format_version, 2u);
  EXPECT_FALSE(parsed->has_schemes);
  EXPECT_TRUE(parsed->schemes.empty());
}

// A v2 header over a payload carrying the v3-only schemes section is
// structurally inconsistent: tag 11 exceeds v2's maximum known tag.
TEST(ModelBundleTest, RejectsSchemesSectionUnderVersion2Header) {
  std::string bytes = SerializeBundle(FittedBundle());
  uint32_t version = 2;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  auto parsed = ParseBundle(bytes);
  ASSERT_FALSE(parsed.ok());
}

TEST(Fnv1aTest, MatchesKnownVectors) {
  // Reference values from the FNV specification.
  EXPECT_EQ(Fnv1a("", 0), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a("foobar", 6), 0x85944171f73967e8ull);
}

// The dictionary re-hydration satellite: interning the fit-time rows into
// a fresh builder over the loaded bundle's schema reproduces the original
// value ids in row-major order — so a served bundle and the CSV it was
// fitted on agree on every id without shipping the id map separately.
TEST(ModelBundleTest, DictionaryRehydrationReproducesValueIds) {
  const relation::Relation rel = TestRelation();
  const std::string path = testing::TempDir() + "/rehydrate.limbo";
  {
    FitOptions options;
    options.k = 3;
    auto bundle = FitModel(rel, options);
    ASSERT_TRUE(bundle.ok());
    ASSERT_TRUE(Save(*bundle, path).ok());
  }
  auto loaded = Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Loaded dictionary answers Find() with the original ids.
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    for (relation::AttributeId a = 0; a < rel.NumAttributes(); ++a) {
      auto found = loaded->dictionary.Find(a, rel.TextAt(t, a));
      ASSERT_TRUE(found.ok());
      EXPECT_EQ(*found, rel.At(t, a));
    }
  }

  // And re-interning the same rows in row-major order assigns the same
  // ids from scratch (RelationBuilder's intern order is deterministic).
  relation::RelationBuilder builder(loaded->schema);
  for (const auto& row : TestRows()) {
    ASSERT_TRUE(builder.AddRow(row).ok());
  }
  const relation::Relation rebuilt = std::move(builder).Build();
  ASSERT_EQ(rebuilt.NumValues(), loaded->dictionary.NumValues());
  for (relation::ValueId v = 0; v < rebuilt.NumValues(); ++v) {
    EXPECT_EQ(rebuilt.dictionary().Text(v), loaded->dictionary.Text(v));
    EXPECT_EQ(rebuilt.dictionary().Attribute(v),
              loaded->dictionary.Attribute(v));
    EXPECT_EQ(rebuilt.dictionary().Support(v),
              loaded->dictionary.Support(v));
  }
}

}  // namespace
}  // namespace limbo::model
