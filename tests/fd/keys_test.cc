#include "fd/keys.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/db2_sample.h"
#include "fd/tane.h"
#include "relation/ops.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::fd {
namespace {

using limbo::testing::MakeRelation;

bool ContainsKey(const std::vector<AttributeSet>& keys, AttributeSet k) {
  return std::find(keys.begin(), keys.end(), k) != keys.end();
}

TEST(KeyMinerTest, SingleColumnKey) {
  const auto rel = MakeRelation({"K", "X"}, {{"1", "a"}, {"2", "a"},
                                             {"3", "b"}});
  auto keys = MineMinimalKeys(rel);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(ContainsKey(*keys, AttributeSet::Single(0)));
  // {K, X} is a superkey but not minimal.
  EXPECT_FALSE(ContainsKey(*keys, AttributeSet::FromList({0, 1})));
}

TEST(KeyMinerTest, CompositeKey) {
  const auto rel = MakeRelation({"A", "B", "C"},
                                {{"1", "x", "p"},
                                 {"1", "y", "p"},
                                 {"2", "x", "p"},
                                 {"2", "y", "q"}});
  auto keys = MineMinimalKeys(rel);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(ContainsKey(*keys, AttributeSet::FromList({0, 1})));
  EXPECT_FALSE(ContainsKey(*keys, AttributeSet::Single(0)));
}

TEST(KeyMinerTest, Db2JoinHasEmpNoProjNoKey) {
  auto rel = datagen::Db2Sample::JoinedRelation();
  KeyMinerOptions options;
  options.max_size = 2;
  auto keys = MineMinimalKeys(*rel, options);
  ASSERT_TRUE(keys.ok());
  const auto emp = rel->schema().Find("EmpNo").value();
  const auto proj = rel->schema().Find("ProjNo").value();
  EXPECT_TRUE(ContainsKey(
      *keys, AttributeSet::Single(emp).Union(AttributeSet::Single(proj))));
}

TEST(KeyMinerTest, MinimalityAgainstBruteForce) {
  // Property: every reported key is duplicate-free and one-step minimal;
  // checked against direct projection counting on random relations.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    util::Random rng(seed);
    std::vector<std::vector<std::string>> rows;
    for (int t = 0; t < 25; ++t) {
      rows.push_back({"a" + std::to_string(rng.Uniform(5)),
                      "b" + std::to_string(rng.Uniform(4)),
                      "c" + std::to_string(rng.Uniform(3)),
                      "d" + std::to_string(rng.Uniform(6))});
    }
    const auto rel = MakeRelation({"A", "B", "C", "D"}, rows);
    auto keys = MineMinimalKeys(rel);
    ASSERT_TRUE(keys.ok());
    auto distinct = [&](AttributeSet x) {
      return relation::CountDistinctProjected(rel, x.ToList()) ==
             rel.NumTuples();
    };
    for (AttributeSet key : *keys) {
      EXPECT_TRUE(distinct(key)) << key.ToString(rel.schema());
      for (relation::AttributeId a : key.ToList()) {
        if (key.Count() > 1) {
          EXPECT_FALSE(distinct(key.Without(a)))
              << "not minimal: " << key.ToString(rel.schema());
        }
      }
    }
  }
}

TEST(KeyMinerTest, MaxSizeBoundsSearch) {
  const auto rel = MakeRelation({"A", "B", "C"},
                                {{"1", "x", "p"},
                                 {"1", "y", "p"},
                                 {"2", "x", "p"},
                                 {"2", "y", "q"}});
  KeyMinerOptions options;
  options.max_size = 1;
  auto keys = MineMinimalKeys(rel, options);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());  // the only minimal key has width 2
}

TEST(BcnfTest, ViolationRequiresNonSuperkeyLhs) {
  const std::vector<AttributeSet> keys = {AttributeSet::FromList({0, 1})};
  // LHS {0,1} contains a key: no violation.
  EXPECT_FALSE(ViolatesBcnf({AttributeSet::FromList({0, 1}),
                             AttributeSet::Single(2)},
                            keys));
  // LHS {2}: not a superkey -> violation.
  EXPECT_TRUE(ViolatesBcnf({AttributeSet::Single(2),
                            AttributeSet::Single(3)},
                           keys));
  // Trivial FD never violates.
  EXPECT_FALSE(ViolatesBcnf({AttributeSet::FromList({2, 3}),
                             AttributeSet::Single(3)},
                            keys));
}

TEST(BcnfTest, Db2DeptFdViolatesBcnf) {
  // [DeptNo] -> [DeptName] is the paper's canonical redundancy source:
  // DeptNo is not a key of the joined relation, so the FD violates BCNF
  // and justifies the decomposition Table 3 implies.
  auto rel = datagen::Db2Sample::JoinedRelation();
  KeyMinerOptions options;
  options.max_size = 2;
  auto keys = MineMinimalKeys(*rel, options);
  ASSERT_TRUE(keys.ok());
  const auto dept = rel->schema().Find("DeptNo").value();
  const auto name = rel->schema().Find("DeptName").value();
  EXPECT_TRUE(ViolatesBcnf(
      {AttributeSet::Single(dept), AttributeSet::Single(name)}, *keys));
}

}  // namespace
}  // namespace limbo::fd
