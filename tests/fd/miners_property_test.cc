// Property-based cross-validation of the two FD miners: on random
// categorical relations, FDEP and TANE must produce exactly the same
// minimal-FD sets, every mined FD must hold, and no mined FD may be
// further reducible. Runs over a parameterized grid of shapes and seeds.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fd/fdep.h"
#include "fd/tane.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::fd {
namespace {

struct Shape {
  size_t tuples;
  size_t attributes;
  size_t domain;  // values per attribute
  uint64_t seed;
};

relation::Relation RandomRelation(const Shape& shape) {
  util::Random rng(shape.seed);
  std::vector<std::string> header;
  for (size_t a = 0; a < shape.attributes; ++a) {
    header.push_back("A" + std::to_string(a));
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t t = 0; t < shape.tuples; ++t) {
    std::vector<std::string> row;
    for (size_t a = 0; a < shape.attributes; ++a) {
      row.push_back("v" + std::to_string(rng.Uniform(shape.domain)));
    }
    rows.push_back(std::move(row));
  }
  return limbo::testing::MakeRelation(header, rows);
}

class MinerAgreementTest : public ::testing::TestWithParam<Shape> {};

TEST_P(MinerAgreementTest, FdepAndTaneAgree) {
  const relation::Relation rel = RandomRelation(GetParam());
  auto fdep = Fdep::Mine(rel);
  auto tane = Tane::Mine(rel);
  ASSERT_TRUE(fdep.ok());
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(*fdep, *tane) << "miners disagree on shape: tuples="
                          << GetParam().tuples
                          << " attrs=" << GetParam().attributes
                          << " domain=" << GetParam().domain
                          << " seed=" << GetParam().seed;
}

TEST_P(MinerAgreementTest, MinedFdsHoldAndAreMinimal) {
  const relation::Relation rel = RandomRelation(GetParam());
  auto fds = Tane::Mine(rel);
  ASSERT_TRUE(fds.ok());
  for (const auto& f : *fds) {
    EXPECT_TRUE(Holds(rel, f)) << f.ToString(rel.schema());
    for (relation::AttributeId a : f.lhs.ToList()) {
      EXPECT_FALSE(Holds(rel, {f.lhs.Without(a), f.rhs}))
          << "reducible: " << f.ToString(rel.schema());
    }
  }
}

TEST_P(MinerAgreementTest, MinLhsOneVariantsAgree) {
  const relation::Relation rel = RandomRelation(GetParam());
  FdepOptions fo;
  fo.min_lhs = 1;
  TaneOptions to;
  to.min_lhs = 1;
  auto fdep = Fdep::Mine(rel, fo);
  auto tane = Tane::Mine(rel, to);
  ASSERT_TRUE(fdep.ok());
  ASSERT_TRUE(tane.ok());
  EXPECT_EQ(*fdep, *tane);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MinerAgreementTest,
    ::testing::Values(
        // Small dense domains: many FDs, incl. constants.
        Shape{8, 3, 2, 1}, Shape{8, 3, 2, 2}, Shape{12, 4, 2, 3},
        Shape{12, 4, 3, 4}, Shape{20, 4, 3, 5}, Shape{20, 5, 2, 6},
        // Wider relations.
        Shape{15, 6, 3, 7}, Shape{25, 6, 4, 8}, Shape{30, 7, 3, 9},
        // Near-unique columns: keys and superkey pruning paths.
        Shape{10, 4, 10, 10}, Shape{30, 5, 25, 11}, Shape{40, 5, 40, 12},
        // Degenerate shapes.
        Shape{1, 3, 2, 13}, Shape{2, 2, 1, 14}, Shape{50, 3, 1, 15},
        Shape{6, 8, 2, 16}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.tuples) + "m" +
             std::to_string(info.param.attributes) + "d" +
             std::to_string(info.param.domain) + "s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace limbo::fd
