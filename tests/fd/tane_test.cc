#include "fd/tane.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/make_relation.h"

namespace limbo::fd {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;

FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                        std::vector<relation::AttributeId> rhs) {
  return {AttributeSet::FromList(lhs), AttributeSet::FromList(rhs)};
}

bool Contains(const std::vector<FunctionalDependency>& fds,
              const FunctionalDependency& f) {
  return std::find(fds.begin(), fds.end(), f) != fds.end();
}

TEST(TaneTest, PaperFigure4Dependencies) {
  const auto rel = PaperFigure4();
  auto fds = Tane::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(Contains(*fds, Fd({0}, {1})));  // A -> B
  EXPECT_TRUE(Contains(*fds, Fd({2}, {1})));  // C -> B
  EXPECT_FALSE(Contains(*fds, Fd({1}, {0})));
}

TEST(TaneTest, AllMinedHoldAndAreMinimal) {
  const auto rel = MakeRelation({"A", "B", "C", "D"},
                                {{"1", "x", "p", "u"},
                                 {"1", "x", "q", "u"},
                                 {"2", "x", "p", "v"},
                                 {"2", "y", "q", "v"},
                                 {"3", "y", "q", "u"},
                                 {"3", "y", "p", "w"}});
  auto fds = Tane::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_FALSE(fds->empty());
  for (const auto& f : *fds) {
    EXPECT_TRUE(Holds(rel, f)) << f.ToString(rel.schema());
    for (relation::AttributeId a : f.lhs.ToList()) {
      EXPECT_FALSE(Holds(rel, {f.lhs.Without(a), f.rhs}))
          << "not minimal: " << f.ToString(rel.schema());
    }
  }
}

TEST(TaneTest, ConstantAttribute) {
  const auto rel = MakeRelation({"A", "B"}, {{"c", "1"}, {"c", "2"}});
  auto fds = Tane::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(Contains(*fds, {AttributeSet(), AttributeSet::Single(0)}));
}

TEST(TaneTest, ConstantAttributeMinLhsOne) {
  const auto rel = MakeRelation({"A", "B"}, {{"c", "1"}, {"c", "2"}});
  TaneOptions options;
  options.min_lhs = 1;
  auto fds = Tane::Mine(rel, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_FALSE(Contains(*fds, {AttributeSet(), AttributeSet::Single(0)}));
  EXPECT_TRUE(Contains(*fds, Fd({1}, {0})));
}

TEST(TaneTest, CompositeKeyNeedsLevelTwo) {
  // (A,B) is the key; neither A nor B alone determines C.
  const auto rel = MakeRelation({"A", "B", "C"},
                                {{"1", "x", "p"},
                                 {"1", "y", "q"},
                                 {"2", "x", "r"},
                                 {"2", "y", "s"}});
  auto fds = Tane::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(Contains(*fds, Fd({0, 1}, {2})));
  EXPECT_FALSE(Contains(*fds, Fd({0}, {2})));
  EXPECT_FALSE(Contains(*fds, Fd({1}, {2})));
}

TEST(TaneTest, MaxLhsTruncatesSearch) {
  const auto rel = MakeRelation({"A", "B", "C"},
                                {{"1", "x", "p"},
                                 {"1", "y", "q"},
                                 {"2", "x", "r"},
                                 {"2", "y", "s"}});
  TaneOptions options;
  options.max_lhs = 1;
  auto fds = Tane::Mine(rel, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_FALSE(Contains(*fds, Fd({0, 1}, {2})));
}

TEST(TaneTest, EmptyRelation) {
  auto schema = relation::Schema::Create({"A"});
  ASSERT_TRUE(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  const relation::Relation rel = std::move(builder).Build();
  auto fds = Tane::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(fds->empty());
}

TEST(TaneTest, WideKeyPruningStillFindsKeyFds) {
  // K unique: K -> everything, found via superkey pruning at level 1.
  const auto rel = MakeRelation(
      {"K", "X", "Y", "Z"},
      {{"1", "a", "p", "s"}, {"2", "a", "q", "s"}, {"3", "b", "q", "t"}});
  auto fds = Tane::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(Contains(*fds, Fd({0}, {1})));
  EXPECT_TRUE(Contains(*fds, Fd({0}, {2})));
  EXPECT_TRUE(Contains(*fds, Fd({0}, {3})));
}

}  // namespace
}  // namespace limbo::fd
