#include "fd/fdep.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fd/closure.h"
#include "testing/make_relation.h"

namespace limbo::fd {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;

FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                        std::vector<relation::AttributeId> rhs) {
  return {AttributeSet::FromList(lhs), AttributeSet::FromList(rhs)};
}

bool Contains(const std::vector<FunctionalDependency>& fds,
              const FunctionalDependency& f) {
  return std::find(fds.begin(), fds.end(), f) != fds.end();
}

TEST(FdepTest, PaperFigure4Dependencies) {
  const auto rel = PaperFigure4();
  auto fds = Fdep::Mine(rel);
  ASSERT_TRUE(fds.ok());
  // The paper discusses A → B and C → B holding in Figure 4.
  EXPECT_TRUE(Contains(*fds, Fd({0}, {1})));  // A -> B
  EXPECT_TRUE(Contains(*fds, Fd({2}, {1})));  // C -> B
  // B -> A must not hold.
  EXPECT_FALSE(Contains(*fds, Fd({1}, {0})));
}

TEST(FdepTest, EveryMinedFdHolds) {
  const auto rel = MakeRelation({"A", "B", "C", "D"},
                                {{"1", "x", "p", "m"},
                                 {"1", "x", "q", "m"},
                                 {"2", "y", "p", "m"},
                                 {"2", "y", "q", "n"},
                                 {"3", "x", "r", "n"}});
  auto fds = Fdep::Mine(rel);
  ASSERT_TRUE(fds.ok());
  for (const auto& f : *fds) {
    EXPECT_TRUE(Holds(rel, f)) << f.ToString(rel.schema());
  }
}

TEST(FdepTest, MinedFdsAreMinimal) {
  const auto rel = MakeRelation({"A", "B", "C"},
                                {{"1", "x", "p"},
                                 {"1", "x", "q"},
                                 {"2", "y", "p"},
                                 {"3", "y", "q"}});
  auto fds = Fdep::Mine(rel);
  ASSERT_TRUE(fds.ok());
  for (const auto& f : *fds) {
    for (relation::AttributeId a : f.lhs.ToList()) {
      FunctionalDependency reduced{f.lhs.Without(a), f.rhs};
      EXPECT_FALSE(Holds(rel, reduced))
          << "not minimal: " << f.ToString(rel.schema());
    }
  }
}

TEST(FdepTest, ConstantAttributeEmptyLhs) {
  const auto rel = MakeRelation({"A", "B"}, {{"c", "1"}, {"c", "2"}});
  auto fds = Fdep::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(Contains(*fds, {AttributeSet(), AttributeSet::Single(0)}));
}

TEST(FdepTest, ConstantAttributeMinLhsOne) {
  const auto rel = MakeRelation({"A", "B"}, {{"c", "1"}, {"c", "2"}});
  FdepOptions options;
  options.min_lhs = 1;
  auto fds = Fdep::Mine(rel, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_FALSE(Contains(*fds, {AttributeSet(), AttributeSet::Single(0)}));
  EXPECT_TRUE(Contains(*fds, Fd({1}, {0})));  // [B] -> A
}

TEST(FdepTest, KeyDeterminesEverything) {
  const auto rel = MakeRelation(
      {"K", "X", "Y"},
      {{"1", "a", "p"}, {"2", "a", "q"}, {"3", "b", "p"}});
  auto fds = Fdep::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(Contains(*fds, Fd({0}, {1})));
  EXPECT_TRUE(Contains(*fds, Fd({0}, {2})));
}

TEST(FdepTest, AgreeSetsOfFigure4) {
  const auto rel = PaperFigure4();
  const auto agree = Fdep::AgreeSets(rel);
  // t1,t2 agree on {A, B}; t3..t5 pairwise agree on {B, C}; cross pairs
  // agree on nothing.
  EXPECT_TRUE(std::find(agree.begin(), agree.end(),
                        AttributeSet::FromList({0, 1})) != agree.end());
  EXPECT_TRUE(std::find(agree.begin(), agree.end(),
                        AttributeSet::FromList({1, 2})) != agree.end());
  EXPECT_TRUE(std::find(agree.begin(), agree.end(), AttributeSet()) !=
              agree.end());
  EXPECT_EQ(agree.size(), 3u);
}

TEST(FdepTest, RespectsMaxTuples) {
  const auto rel = MakeRelation({"A"}, {{"1"}, {"2"}, {"3"}});
  FdepOptions options;
  options.max_tuples = 2;
  auto fds = Fdep::Mine(rel, options);
  ASSERT_FALSE(fds.ok());
  EXPECT_EQ(fds.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(FdepTest, SingleTupleAllConstants) {
  const auto rel = MakeRelation({"A", "B"}, {{"x", "y"}});
  auto fds = Fdep::Mine(rel);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(Contains(*fds, {AttributeSet(), AttributeSet::Single(0)}));
  EXPECT_TRUE(Contains(*fds, {AttributeSet(), AttributeSet::Single(1)}));
}

}  // namespace
}  // namespace limbo::fd
