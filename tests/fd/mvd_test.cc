#include "fd/mvd.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/make_relation.h"

namespace limbo::fd {
namespace {

using limbo::testing::MakeRelation;

MultiValuedDependency Mvd(std::vector<relation::AttributeId> lhs,
                          std::vector<relation::AttributeId> rhs) {
  return {AttributeSet::FromList(lhs), AttributeSet::FromList(rhs)};
}

/// The textbook MVD example: each course has a set of teachers and a set
/// of books, all combinations present. Course ->> Teacher (and Book).
relation::Relation CourseTeacherBook() {
  return MakeRelation({"Course", "Teacher", "Book"},
                      {{"db", "ann", "ullman"},
                       {"db", "ann", "date"},
                       {"db", "bob", "ullman"},
                       {"db", "bob", "date"},
                       {"os", "carl", "tanenbaum"}});
}

TEST(MvdTest, TextbookExampleHolds) {
  const auto rel = CourseTeacherBook();
  EXPECT_TRUE(HoldsMvd(rel, Mvd({0}, {1})));  // Course ->> Teacher
  EXPECT_TRUE(HoldsMvd(rel, Mvd({0}, {2})));  // Course ->> Book
}

TEST(MvdTest, ViolatedWhenCombinationMissing) {
  // Remove one (teacher, book) combination: no longer a cross product.
  const auto rel = MakeRelation({"Course", "Teacher", "Book"},
                                {{"db", "ann", "ullman"},
                                 {"db", "ann", "date"},
                                 {"db", "bob", "ullman"}});
  EXPECT_FALSE(HoldsMvd(rel, Mvd({0}, {1})));
  EXPECT_FALSE(HoldsMvd(rel, Mvd({0}, {2})));
}

TEST(MvdTest, TrivialCasesAlwaysHold) {
  const auto rel = CourseTeacherBook();
  EXPECT_TRUE(HoldsMvd(rel, Mvd({0, 1}, {1})));     // Y ⊆ X
  EXPECT_TRUE(HoldsMvd(rel, Mvd({0}, {1, 2})));     // X ∪ Y = R
}

TEST(MvdTest, ComplementationRule) {
  // X ->> Y iff X ->> (R - X - Y).
  const auto rel = CourseTeacherBook();
  EXPECT_EQ(HoldsMvd(rel, Mvd({0}, {1})), HoldsMvd(rel, Mvd({0}, {2})));
}

TEST(MvdTest, EveryFdIsAnMvd) {
  const auto rel = MakeRelation({"A", "B", "C"}, {{"1", "x", "p"},
                                                  {"1", "x", "q"},
                                                  {"2", "y", "p"}});
  // A -> B holds, so A ->> B must hold.
  ASSERT_TRUE(Holds(rel, {AttributeSet::Single(0), AttributeSet::Single(1)}));
  EXPECT_TRUE(HoldsMvd(rel, Mvd({0}, {1})));
}

TEST(MvdMinerTest, FindsPlantedMvd) {
  const auto rel = CourseTeacherBook();
  MvdMinerOptions options;
  options.skip_implied_by_fd = false;
  auto mvds = MineMvds(rel, options);
  ASSERT_TRUE(mvds.ok());
  EXPECT_TRUE(std::find(mvds->begin(), mvds->end(), Mvd({0}, {1})) !=
              mvds->end());
  EXPECT_TRUE(std::find(mvds->begin(), mvds->end(), Mvd({0}, {2})) !=
              mvds->end());
}

TEST(MvdMinerTest, SkipsFdImpliedMvds) {
  const auto rel = MakeRelation({"A", "B", "C"}, {{"1", "x", "p"},
                                                  {"1", "x", "q"},
                                                  {"2", "y", "p"}});
  auto mvds = MineMvds(rel, {});
  ASSERT_TRUE(mvds.ok());
  // A ->> B is implied by A -> B; with the default options it is skipped.
  EXPECT_TRUE(std::find(mvds->begin(), mvds->end(), Mvd({0}, {1})) ==
              mvds->end());
}

TEST(MvdMinerTest, MinedMvdsHold) {
  const auto rel = MakeRelation({"A", "B", "C", "D"},
                                {{"1", "x", "p", "m"},
                                 {"1", "x", "q", "m"},
                                 {"1", "y", "p", "m"},
                                 {"1", "y", "q", "m"},
                                 {"2", "x", "p", "n"}});
  MvdMinerOptions options;
  options.skip_implied_by_fd = false;
  auto mvds = MineMvds(rel, options);
  ASSERT_TRUE(mvds.ok());
  EXPECT_FALSE(mvds->empty());
  for (const auto& mvd : *mvds) {
    EXPECT_TRUE(HoldsMvd(rel, mvd)) << mvd.ToString(rel.schema());
  }
}

TEST(MvdMinerTest, ReportsOnlyMinimalLhs) {
  const auto rel = CourseTeacherBook();
  MvdMinerOptions options;
  options.skip_implied_by_fd = false;
  options.max_lhs = 2;
  auto mvds = MineMvds(rel, options);
  ASSERT_TRUE(mvds.ok());
  // Course ->> Teacher is found at LHS {Course}; no strict superset of a
  // reported LHS may appear for the same RHS.
  for (const auto& a : *mvds) {
    for (const auto& b : *mvds) {
      if (a.rhs == b.rhs && !(a.lhs == b.lhs)) {
        EXPECT_FALSE(a.lhs.IsSubsetOf(b.lhs))
            << a.ToString(rel.schema()) << " vs " << b.ToString(rel.schema());
      }
    }
  }
  EXPECT_TRUE(std::find(mvds->begin(), mvds->end(), Mvd({0}, {1})) !=
              mvds->end());
}

TEST(MvdMinerTest, TooFewAttributesYieldNothing) {
  const auto rel = MakeRelation({"A", "B"}, {{"1", "x"}, {"2", "y"}});
  auto mvds = MineMvds(rel, {});
  ASSERT_TRUE(mvds.ok());
  EXPECT_TRUE(mvds->empty());
}

}  // namespace
}  // namespace limbo::fd
