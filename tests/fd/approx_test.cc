#include "fd/approx.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fd/tane.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::fd {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure5;

FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                        std::vector<relation::AttributeId> rhs) {
  return {AttributeSet::FromList(lhs), AttributeSet::FromList(rhs)};
}

const ApproximateFd* FindFd(const std::vector<ApproximateFd>& fds,
                            const FunctionalDependency& f) {
  for (const auto& a : fds) {
    if (a.fd == f) return &a;
  }
  return nullptr;
}

TEST(ApproxFdTest, PaperFigure5CToB) {
  // In Figure 5, C → B is approximate: it holds after removing one of the
  // five tuples (g3 = 0.2).
  const auto rel = PaperFigure5();
  ApproxMinerOptions options;
  options.epsilon = 0.25;
  options.min_lhs = 1;
  auto fds = MineApproximateFds(rel, options);
  ASSERT_TRUE(fds.ok());
  const ApproximateFd* c_to_b = FindFd(*fds, Fd({2}, {1}));
  ASSERT_NE(c_to_b, nullptr);
  EXPECT_DOUBLE_EQ(c_to_b->g3, 0.2);
}

TEST(ApproxFdTest, EpsilonZeroMatchesExactMiners) {
  const auto rel = MakeRelation({"A", "B", "C"},
                                {{"1", "x", "p"},
                                 {"1", "x", "q"},
                                 {"2", "y", "p"},
                                 {"3", "y", "q"}});
  ApproxMinerOptions options;
  options.epsilon = 0.0;
  options.max_lhs = 3;
  auto approx = MineApproximateFds(rel, options);
  auto exact = Tane::Mine(rel);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  std::vector<FunctionalDependency> approx_fds;
  for (const auto& a : *approx) {
    EXPECT_DOUBLE_EQ(a.g3, 0.0);
    approx_fds.push_back(a.fd);
  }
  SortCanonically(&approx_fds);
  EXPECT_EQ(approx_fds, *exact);
}

TEST(ApproxFdTest, G3MatchesReferenceImplementation) {
  // Property: the partition-based g3 equals fd::G3Error on random data.
  util::Random rng(99);
  std::vector<std::vector<std::string>> rows;
  for (int t = 0; t < 60; ++t) {
    rows.push_back({"a" + std::to_string(rng.Uniform(4)),
                    "b" + std::to_string(rng.Uniform(3)),
                    "c" + std::to_string(rng.Uniform(5))});
  }
  const auto rel = MakeRelation({"A", "B", "C"}, rows);
  ApproxMinerOptions options;
  options.epsilon = 0.95;  // report (almost) everything
  options.min_lhs = 1;
  options.max_lhs = 2;
  auto fds = MineApproximateFds(rel, options);
  ASSERT_TRUE(fds.ok());
  EXPECT_FALSE(fds->empty());
  for (const auto& a : *fds) {
    EXPECT_NEAR(a.g3, G3Error(rel, a.fd), 1e-12)
        << a.fd.ToString(rel.schema());
  }
}

TEST(ApproxFdTest, ReportsOnlyMinimalLhs) {
  const auto rel = PaperFigure5();
  ApproxMinerOptions options;
  options.epsilon = 0.25;
  options.min_lhs = 1;
  auto fds = MineApproximateFds(rel, options);
  ASSERT_TRUE(fds.ok());
  // C -> B qualifies at LHS size 1, so no superset LHS may be reported.
  for (const auto& a : *fds) {
    if (a.fd.rhs == AttributeSet::Single(1)) {
      EXPECT_FALSE(AttributeSet::Single(2).IsSubsetOf(a.fd.lhs) &&
                   a.fd.lhs.Count() > 1)
          << a.fd.ToString(rel.schema());
    }
  }
}

TEST(ApproxFdTest, EmptyLhsForNearlyConstantColumn) {
  const auto rel = MakeRelation(
      {"A", "B"},
      {{"c", "1"}, {"c", "2"}, {"c", "3"}, {"c", "4"}, {"odd", "5"}});
  ApproxMinerOptions options;
  options.epsilon = 0.2;
  auto fds = MineApproximateFds(rel, options);
  ASSERT_TRUE(fds.ok());
  const ApproximateFd* f =
      FindFd(*fds, {AttributeSet(), AttributeSet::Single(0)});
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->g3, 0.2);
}

TEST(ApproxFdTest, MaxLhsBoundsSearch) {
  const auto rel = PaperFigure5();
  ApproxMinerOptions options;
  options.epsilon = 0.0;
  options.max_lhs = 1;
  options.min_lhs = 1;
  auto fds = MineApproximateFds(rel, options);
  ASSERT_TRUE(fds.ok());
  for (const auto& a : *fds) EXPECT_LE(a.fd.lhs.Count(), 1u);
}

TEST(ApproxFdTest, RejectsBadEpsilon) {
  const auto rel = PaperFigure5();
  ApproxMinerOptions options;
  options.epsilon = 1.0;
  EXPECT_FALSE(MineApproximateFds(rel, options).ok());
  options.epsilon = -0.1;
  EXPECT_FALSE(MineApproximateFds(rel, options).ok());
}

}  // namespace
}  // namespace limbo::fd
