#include "fd/partition.h"

#include <gtest/gtest.h>

#include "testing/make_relation.h"

namespace limbo::fd {
namespace {

using limbo::testing::MakeRelation;

TEST(StrippedPartitionTest, SingleAttributeStripsSingletons) {
  const auto rel =
      MakeRelation({"A"}, {{"x"}, {"y"}, {"x"}, {"z"}, {"x"}, {"y"}});
  const auto p = StrippedPartition::ForAttribute(rel, 0);
  // Classes: {0,2,4} (x), {1,5} (y); z is a singleton and stripped.
  EXPECT_EQ(p.NumClasses(), 2u);
  EXPECT_EQ(p.CoveredTuples(), 5u);
  EXPECT_EQ(p.Rank(), 3u);  // covered - classes = n - |π_full| = 6 - 3
  EXPECT_FALSE(p.IsSuperkey());
}

TEST(StrippedPartitionTest, KeyAttributeIsSuperkey) {
  const auto rel = MakeRelation({"A"}, {{"1"}, {"2"}, {"3"}});
  const auto p = StrippedPartition::ForAttribute(rel, 0);
  EXPECT_TRUE(p.IsSuperkey());
  EXPECT_EQ(p.Rank(), 0u);
}

TEST(StrippedPartitionTest, ConstantAttributeOneClass) {
  const auto rel = MakeRelation({"A"}, {{"c"}, {"c"}, {"c"}});
  const auto p = StrippedPartition::ForAttribute(rel, 0);
  EXPECT_EQ(p.NumClasses(), 1u);
  EXPECT_EQ(p.Rank(), 2u);  // n - 1
}

TEST(StrippedPartitionTest, ProductRefines) {
  const auto rel = MakeRelation({"A", "B"}, {{"x", "1"},
                                             {"x", "1"},
                                             {"x", "2"},
                                             {"y", "1"},
                                             {"y", "1"}});
  const size_t n = rel.NumTuples();
  const auto pa = StrippedPartition::ForAttribute(rel, 0);
  const auto pb = StrippedPartition::ForAttribute(rel, 1);
  const auto pab = StrippedPartition::Product(pa, pb, n);
  // π_{A,B} classes: {0,1} (x1), {3,4} (y1); (x,2) is singleton.
  EXPECT_EQ(pab.NumClasses(), 2u);
  EXPECT_EQ(pab.CoveredTuples(), 4u);
  EXPECT_EQ(pab.Rank(), 2u);
}

TEST(StrippedPartitionTest, ProductIsCommutativeInRank) {
  const auto rel = MakeRelation(
      {"A", "B"},
      {{"x", "1"}, {"x", "2"}, {"y", "1"}, {"y", "2"}, {"x", "1"}});
  const size_t n = rel.NumTuples();
  const auto pa = StrippedPartition::ForAttribute(rel, 0);
  const auto pb = StrippedPartition::ForAttribute(rel, 1);
  const auto ab = StrippedPartition::Product(pa, pb, n);
  const auto ba = StrippedPartition::Product(pb, pa, n);
  EXPECT_EQ(ab.Rank(), ba.Rank());
  EXPECT_EQ(ab.NumClasses(), ba.NumClasses());
}

TEST(StrippedPartitionTest, FdDetectionViaRank) {
  // A -> B holds: every A-class agrees on B.
  const auto rel = MakeRelation(
      {"A", "B"}, {{"x", "1"}, {"x", "1"}, {"y", "2"}, {"y", "2"}});
  const size_t n = rel.NumTuples();
  const auto pa = StrippedPartition::ForAttribute(rel, 0);
  const auto pb = StrippedPartition::ForAttribute(rel, 1);
  const auto pab = StrippedPartition::Product(pa, pb, n);
  EXPECT_EQ(pa.Rank(), pab.Rank());   // A -> B
  EXPECT_EQ(pb.Rank(), pab.Rank());   // B -> A (also holds here)
}

TEST(StrippedPartitionTest, FdViolationChangesRank) {
  const auto rel = MakeRelation(
      {"A", "B"}, {{"x", "1"}, {"x", "2"}, {"y", "1"}, {"y", "1"}});
  const size_t n = rel.NumTuples();
  const auto pa = StrippedPartition::ForAttribute(rel, 0);
  const auto pab = StrippedPartition::Product(
      pa, StrippedPartition::ForAttribute(rel, 1), n);
  EXPECT_NE(pa.Rank(), pab.Rank());  // A -> B fails on x
}

}  // namespace
}  // namespace limbo::fd
