#include "fd/min_cover.h"

#include <gtest/gtest.h>

#include "fd/closure.h"

namespace limbo::fd {
namespace {

FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                        std::vector<relation::AttributeId> rhs) {
  return {AttributeSet::FromList(lhs), AttributeSet::FromList(rhs)};
}

TEST(MinCoverTest, RemovesTransitivelyRedundantFd) {
  // {A->B, B->C, A->C}: A->C is redundant.
  const std::vector<FunctionalDependency> fds = {Fd({0}, {1}), Fd({1}, {2}),
                                                 Fd({0}, {2})};
  const auto cover = MinimumCover(fds);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_TRUE(Equivalent(cover, fds));
}

TEST(MinCoverTest, RemovesExtraneousLhsAttribute) {
  // {A->B, AB->C}: B is extraneous in AB->C.
  const std::vector<FunctionalDependency> fds = {Fd({0}, {1}),
                                                 Fd({0, 1}, {2})};
  const auto cover = MinimumCover(fds, /*merge_same_lhs=*/false);
  EXPECT_TRUE(Equivalent(cover, fds));
  for (const auto& f : cover) {
    EXPECT_LE(f.lhs.Count(), 1u);
  }
}

TEST(MinCoverTest, MergesSameLhs) {
  const std::vector<FunctionalDependency> fds = {Fd({0}, {1}), Fd({0}, {2})};
  const auto cover = MinimumCover(fds);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].lhs, AttributeSet::Single(0));
  EXPECT_EQ(cover[0].rhs, AttributeSet::FromList({1, 2}));
}

TEST(MinCoverTest, SplitsMultiRhsBeforeReducing) {
  // A->BC with B->C: the C part of A->BC is redundant.
  const std::vector<FunctionalDependency> fds = {Fd({0}, {1, 2}),
                                                 Fd({1}, {2})};
  const auto cover = MinimumCover(fds, /*merge_same_lhs=*/false);
  EXPECT_TRUE(Equivalent(cover, fds));
  EXPECT_EQ(cover.size(), 2u);  // A->B and B->C
}

TEST(MinCoverTest, DropsTrivialFds) {
  const std::vector<FunctionalDependency> fds = {Fd({0, 1}, {1})};
  EXPECT_TRUE(MinimumCover(fds).empty());
}

TEST(MinCoverTest, DeduplicatesExactCopies) {
  const std::vector<FunctionalDependency> fds = {Fd({0}, {1}), Fd({0}, {1})};
  EXPECT_EQ(MinimumCover(fds).size(), 1u);
}

TEST(MinCoverTest, EquivalenceHoldsOnDenseInput) {
  // A messy over-specified set over 5 attributes.
  const std::vector<FunctionalDependency> fds = {
      Fd({0}, {1}),    Fd({0, 1}, {2}), Fd({2}, {3}),     Fd({0}, {3}),
      Fd({0, 2}, {4}), Fd({1, 2}, {4}), Fd({0, 1, 2}, {3, 4}),
  };
  const auto cover = MinimumCover(fds);
  EXPECT_TRUE(Equivalent(cover, fds));
  EXPECT_LT(cover.size(), fds.size());
}

TEST(MinCoverTest, EmptyInput) {
  EXPECT_TRUE(MinimumCover({}).empty());
}

TEST(MinCoverTest, HandlesEmptyLhs) {
  // {} -> A plus B -> A: the latter is redundant.
  const std::vector<FunctionalDependency> fds = {
      {AttributeSet(), AttributeSet::Single(0)}, Fd({1}, {0})};
  const auto cover = MinimumCover(fds);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_TRUE(cover[0].lhs.Empty());
}

}  // namespace
}  // namespace limbo::fd
