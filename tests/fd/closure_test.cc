#include "fd/closure.h"

#include <gtest/gtest.h>

namespace limbo::fd {
namespace {

FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                        std::vector<relation::AttributeId> rhs) {
  return {AttributeSet::FromList(lhs), AttributeSet::FromList(rhs)};
}

TEST(ClosureTest, TextbookExample) {
  // F = {A->B, B->C}; A+ = {A,B,C}.
  const std::vector<FunctionalDependency> fds = {Fd({0}, {1}), Fd({1}, {2})};
  EXPECT_EQ(Closure(AttributeSet::Single(0), fds),
            AttributeSet::FromList({0, 1, 2}));
  EXPECT_EQ(Closure(AttributeSet::Single(2), fds), AttributeSet::Single(2));
}

TEST(ClosureTest, CompositeLhsNeedsAllAttributes) {
  // AB -> C only fires when both A and B present.
  const std::vector<FunctionalDependency> fds = {Fd({0, 1}, {2})};
  EXPECT_EQ(Closure(AttributeSet::Single(0), fds), AttributeSet::Single(0));
  EXPECT_EQ(Closure(AttributeSet::FromList({0, 1}), fds),
            AttributeSet::FromList({0, 1, 2}));
}

TEST(ClosureTest, ChainsAcrossManySteps) {
  // A->B, B->C, C->D, D->E.
  std::vector<FunctionalDependency> fds;
  for (relation::AttributeId i = 0; i < 4; ++i) fds.push_back(Fd({i}, {i + 1u}));
  EXPECT_EQ(Closure(AttributeSet::Single(0), fds),
            AttributeSet::FromList({0, 1, 2, 3, 4}));
}

TEST(ClosureTest, EmptyLhsFdActsAsConstant) {
  // {} -> A means A is in every closure.
  const std::vector<FunctionalDependency> fds = {
      {AttributeSet(), AttributeSet::Single(3)}};
  EXPECT_EQ(Closure(AttributeSet(), fds), AttributeSet::Single(3));
  EXPECT_EQ(Closure(AttributeSet::Single(1), fds),
            AttributeSet::FromList({1, 3}));
}

TEST(ImpliesTest, DetectsImpliedAndNot) {
  const std::vector<FunctionalDependency> fds = {Fd({0}, {1}), Fd({1}, {2})};
  EXPECT_TRUE(Implies(fds, Fd({0}, {2})));
  EXPECT_TRUE(Implies(fds, Fd({0}, {1, 2})));
  EXPECT_FALSE(Implies(fds, Fd({2}, {0})));
}

TEST(EquivalentTest, TransitiveVsDirect) {
  const std::vector<FunctionalDependency> a = {Fd({0}, {1}), Fd({1}, {2})};
  const std::vector<FunctionalDependency> b = {Fd({0}, {1}), Fd({1}, {2}),
                                               Fd({0}, {2})};
  EXPECT_TRUE(Equivalent(a, b));
  const std::vector<FunctionalDependency> c = {Fd({0}, {1})};
  EXPECT_FALSE(Equivalent(a, c));
}

}  // namespace
}  // namespace limbo::fd
