#include "fd/fd.h"

#include <gtest/gtest.h>

#include "testing/make_relation.h"

namespace limbo::fd {
namespace {

using limbo::testing::MakeRelation;
using limbo::testing::PaperFigure4;
using limbo::testing::PaperFigure5;

FunctionalDependency Fd(std::vector<relation::AttributeId> lhs,
                        std::vector<relation::AttributeId> rhs) {
  return {AttributeSet::FromList(lhs), AttributeSet::FromList(rhs)};
}

TEST(HoldsTest, PaperExampleCToB) {
  // In Figure 4, C → B holds (p,r → 1; x → 2) and A → B holds too.
  const auto rel = PaperFigure4();
  EXPECT_TRUE(Holds(rel, Fd({2}, {1})));  // C -> B
  EXPECT_TRUE(Holds(rel, Fd({0}, {1})));  // A -> B
  EXPECT_FALSE(Holds(rel, Fd({1}, {0})));  // B -> A fails (2 -> w,y,z)
}

TEST(HoldsTest, PaperFigure5BreaksCToB) {
  // Value x now appears with B=1 and B=2.
  const auto rel = PaperFigure5();
  EXPECT_FALSE(Holds(rel, Fd({2}, {1})));
}

TEST(HoldsTest, CompositeLhs) {
  const auto rel = MakeRelation(
      {"A", "B", "C"},
      {{"1", "x", "p"}, {"1", "y", "q"}, {"2", "x", "r"}, {"1", "x", "p"}});
  EXPECT_FALSE(Holds(rel, Fd({0}, {2})));
  EXPECT_FALSE(Holds(rel, Fd({1}, {2})));
  EXPECT_TRUE(Holds(rel, Fd({0, 1}, {2})));
}

TEST(HoldsTest, EmptyLhsMeansConstant) {
  const auto rel = MakeRelation({"A", "B"}, {{"c", "1"}, {"c", "2"}});
  EXPECT_TRUE(Holds(rel, Fd({}, {0})));
  EXPECT_FALSE(Holds(rel, Fd({}, {1})));
}

TEST(HoldsTest, EmptyRhsTriviallyHolds) {
  const auto rel = MakeRelation({"A"}, {{"1"}, {"2"}});
  EXPECT_TRUE(Holds(rel, {AttributeSet::Single(0), AttributeSet()}));
}

TEST(HoldsTest, MultiAttributeRhs) {
  const auto rel = MakeRelation(
      {"K", "X", "Y"}, {{"1", "a", "b"}, {"1", "a", "b"}, {"2", "c", "d"}});
  EXPECT_TRUE(Holds(rel, Fd({0}, {1, 2})));
}

TEST(G3ErrorTest, ZeroIffHolds) {
  const auto rel = PaperFigure4();
  EXPECT_DOUBLE_EQ(G3Error(rel, Fd({2}, {1})), 0.0);
}

TEST(G3ErrorTest, SingleViolatingTuple) {
  // Figure 5: removing the second tuple (C=x, B=1) restores C → B.
  const auto rel = PaperFigure5();
  EXPECT_DOUBLE_EQ(G3Error(rel, Fd({2}, {1})), 1.0 / 5.0);
}

TEST(G3ErrorTest, WorstCase) {
  // B alternates under constant A: half the tuples must go (n=4: keep 2).
  const auto rel =
      MakeRelation({"A", "B"}, {{"c", "1"}, {"c", "2"}, {"c", "1"}, {"c", "2"}});
  EXPECT_DOUBLE_EQ(G3Error(rel, Fd({0}, {1})), 0.5);
}

TEST(FdToStringTest, RendersWithNames) {
  auto schema = relation::Schema::Create({"A", "B", "C"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(Fd({0, 2}, {1}).ToString(*schema), "[A,C]->[B]");
}

TEST(SortCanonicallyTest, OrdersByLhsThenRhs) {
  std::vector<FunctionalDependency> fds = {Fd({1}, {0}), Fd({0}, {2}),
                                           Fd({0}, {1})};
  SortCanonically(&fds);
  EXPECT_EQ(fds[0], Fd({0}, {1}));
  EXPECT_EQ(fds[1], Fd({0}, {2}));
  EXPECT_EQ(fds[2], Fd({1}, {0}));
}

}  // namespace
}  // namespace limbo::fd
