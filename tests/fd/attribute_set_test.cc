#include "fd/attribute_set.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace limbo::fd {
namespace {

TEST(AttributeSetTest, EmptyAndSingle) {
  AttributeSet empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Count(), 0u);
  AttributeSet s = AttributeSet::Single(5);
  EXPECT_FALSE(s.Empty());
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
}

TEST(AttributeSetTest, FullSet) {
  EXPECT_EQ(AttributeSet::Full(0).Count(), 0u);
  EXPECT_EQ(AttributeSet::Full(3).Count(), 3u);
  EXPECT_EQ(AttributeSet::Full(64).Count(), 64u);
  EXPECT_TRUE(AttributeSet::Full(64).Contains(63));
}

TEST(AttributeSetTest, SetAlgebra) {
  const AttributeSet a = AttributeSet::FromList({0, 1, 2});
  const AttributeSet b = AttributeSet::FromList({2, 3});
  EXPECT_EQ(a.Union(b), AttributeSet::FromList({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttributeSet::Single(2));
  EXPECT_EQ(a.Minus(b), AttributeSet::FromList({0, 1}));
  EXPECT_EQ(a.With(7), AttributeSet::FromList({0, 1, 2, 7}));
  EXPECT_EQ(a.Without(1), AttributeSet::FromList({0, 2}));
  EXPECT_EQ(a.Without(9), a);
}

TEST(AttributeSetTest, SubsetChecks) {
  const AttributeSet a = AttributeSet::FromList({1, 3});
  const AttributeSet b = AttributeSet::FromList({1, 2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(AttributeSet().IsSubsetOf(a));
}

TEST(AttributeSetTest, ToListSorted) {
  const AttributeSet a = AttributeSet::FromList({9, 2, 40});
  EXPECT_EQ(a.ToList(),
            (std::vector<relation::AttributeId>{2, 9, 40}));
}

TEST(AttributeSetTest, ToStringUsesSchemaNames) {
  auto schema = relation::Schema::Create({"A", "B", "C"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(AttributeSet::FromList({0, 2}).ToString(*schema), "[A,C]");
  EXPECT_EQ(AttributeSet().ToString(*schema), "[]");
}

TEST(AttributeSetTest, Hashable) {
  std::unordered_set<AttributeSet> set;
  set.insert(AttributeSet::FromList({1, 2}));
  set.insert(AttributeSet::FromList({1, 2}));
  set.insert(AttributeSet::Single(3));
  EXPECT_EQ(set.size(), 2u);
}

TEST(AttributeSetTest, HighBit63) {
  const AttributeSet s = AttributeSet::Single(63);
  EXPECT_TRUE(s.Contains(63));
  EXPECT_EQ(s.ToList(), (std::vector<relation::AttributeId>{63}));
}

}  // namespace
}  // namespace limbo::fd
