#include "relation/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/make_relation.h"

namespace limbo::relation {
namespace {

using limbo::testing::MakeRelation;

TEST(ProfileTest, BasicShape) {
  const auto rel = MakeRelation({"A", "B"}, {{"x", "1"}, {"y", "2"}});
  const RelationProfile profile = Profile(rel);
  EXPECT_EQ(profile.tuples, 2u);
  EXPECT_EQ(profile.attributes, 2u);
  EXPECT_EQ(profile.distinct_values, 4u);
  ASSERT_EQ(profile.columns.size(), 2u);
  EXPECT_EQ(profile.columns[0].name, "A");
}

TEST(ProfileTest, KeyDetection) {
  const auto rel =
      MakeRelation({"K", "X"}, {{"1", "a"}, {"2", "a"}, {"3", "b"}});
  const RelationProfile profile = Profile(rel);
  EXPECT_TRUE(profile.columns[0].is_key);
  EXPECT_FALSE(profile.columns[1].is_key);
}

TEST(ProfileTest, ConstantDetection) {
  const auto rel = MakeRelation({"C", "X"}, {{"c", "a"}, {"c", "b"}});
  const RelationProfile profile = Profile(rel);
  EXPECT_TRUE(profile.columns[0].is_constant);
  EXPECT_FALSE(profile.columns[1].is_constant);
  EXPECT_DOUBLE_EQ(profile.columns[0].entropy, 0.0);
}

TEST(ProfileTest, NullAccounting) {
  const auto rel =
      MakeRelation({"A"}, {{""}, {""}, {"x"}, {""}});
  const RelationProfile profile = Profile(rel);
  EXPECT_EQ(profile.columns[0].null_count, 3u);
  EXPECT_DOUBLE_EQ(profile.columns[0].null_fraction, 0.75);
  EXPECT_EQ(profile.columns[0].top_value, "⊥");
  EXPECT_EQ(profile.columns[0].top_count, 3u);
}

TEST(ProfileTest, EntropyAndUniformity) {
  const auto rel =
      MakeRelation({"U", "S"}, {{"a", "x"}, {"b", "x"}, {"c", "x"},
                                {"d", "y"}});
  const RelationProfile profile = Profile(rel);
  // U uniform over 4 values: entropy = 2 bits, uniformity = 1.
  EXPECT_NEAR(profile.columns[0].entropy, 2.0, 1e-12);
  EXPECT_NEAR(profile.columns[0].uniformity, 1.0, 1e-12);
  // S: 3/4 vs 1/4 -> entropy < 1 bit.
  const double h = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(profile.columns[1].entropy, h, 1e-12);
  EXPECT_NEAR(profile.columns[1].uniformity, h, 1e-12);  // log2(2) = 1
}

TEST(ProfileTest, TopValue) {
  const auto rel =
      MakeRelation({"A"}, {{"x"}, {"y"}, {"x"}, {"x"}, {"z"}});
  const RelationProfile profile = Profile(rel);
  EXPECT_EQ(profile.columns[0].top_value, "x");
  EXPECT_EQ(profile.columns[0].top_count, 3u);
}

TEST(ProfileTest, ToStringContainsColumns) {
  const auto rel = MakeRelation({"Alpha", "Beta"}, {{"1", "2"}});
  const std::string text = Profile(rel).ToString();
  EXPECT_NE(text.find("Alpha"), std::string::npos);
  EXPECT_NE(text.find("Beta"), std::string::npos);
}

}  // namespace
}  // namespace limbo::relation
