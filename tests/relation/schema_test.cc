#include "relation/schema.h"

#include <gtest/gtest.h>

namespace limbo::relation {
namespace {

TEST(SchemaTest, CreateAndLookup) {
  auto schema = Schema::Create({"A", "B", "C"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->NumAttributes(), 3u);
  EXPECT_EQ(schema->Name(0), "A");
  EXPECT_EQ(schema->Name(2), "C");
  auto b = schema->Find("B");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 1u);
}

TEST(SchemaTest, FindMissingAttribute) {
  auto schema = Schema::Create({"A"});
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(schema->Find("Z").ok());
  EXPECT_EQ(schema->Find("Z").status().code(), util::StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsEmpty) {
  EXPECT_FALSE(Schema::Create({}).ok());
}

TEST(SchemaTest, RejectsDuplicates) {
  auto r = Schema::Create({"A", "B", "A"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsMoreThan64Attributes) {
  std::vector<std::string> names;
  for (int i = 0; i < 65; ++i) names.push_back("a" + std::to_string(i));
  EXPECT_FALSE(Schema::Create(names).ok());
  names.pop_back();
  EXPECT_TRUE(Schema::Create(names).ok());
}

TEST(SchemaTest, Equality) {
  auto a = Schema::Create({"X", "Y"});
  auto b = Schema::Create({"X", "Y"});
  auto c = Schema::Create({"Y", "X"});
  EXPECT_TRUE(a.value() == b.value());
  EXPECT_FALSE(a.value() == c.value());
}

}  // namespace
}  // namespace limbo::relation
