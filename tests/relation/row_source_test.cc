// RowSource and SourceStats: the chunked CSV sources must reproduce the
// materialized reader exactly (same rows, same errors) at every chunk
// size, Reset must replay the identical row sequence, and a stats sidecar
// must round-trip the frozen schema/dictionary/row-count bit for bit.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "relation/csv_io.h"
#include "relation/row_source.h"
#include "relation/source_stats.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace limbo::relation {
namespace {

// Every CSV corner the dialect supports: quoted fields, embedded commas,
// "" escapes, embedded newlines and CRs inside quotes, CRLF terminators,
// empty (NULL) fields, and a missing trailing newline.
const char kTrickyCsv[] =
    "A,B,C\r\n"
    "plain,\"with,comma\",\"esc\"\"aped\"\n"
    ",\"multi\nline\",x\r\n"
    "\"\",middle,\"end\"\"\"";

std::string RelationAsGrid(const Relation& rel) {
  std::string grid;
  for (size_t a = 0; a < rel.NumAttributes(); ++a) {
    grid += rel.schema().Name(a) + "|";
  }
  grid += "\n";
  for (TupleId t = 0; t < rel.NumTuples(); ++t) {
    for (size_t a = 0; a < rel.NumAttributes(); ++a) {
      grid += rel.TextAt(t, a) + "|";
    }
    grid += "\n";
  }
  return grid;
}

TEST(RowSourceTest, StringSourceMatchesParseCsvAtEveryChunkSize) {
  auto reference = ParseCsv(kTrickyCsv);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                       size_t{64 * 1024}}) {
    auto source = CsvStringSource::Open(kTrickyCsv, chunk);
    ASSERT_TRUE(source.ok()) << "chunk " << chunk;
    auto rel = ReadAllRows(*source);
    ASSERT_TRUE(rel.ok()) << "chunk " << chunk << ": "
                          << rel.status().ToString();
    EXPECT_EQ(RelationAsGrid(*rel), RelationAsGrid(*reference))
        << "chunk " << chunk;
  }
}

TEST(RowSourceTest, FileSourceMatchesReadCsv) {
  const std::string path = ::testing::TempDir() + "/row_source_test.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << kTrickyCsv;
  }
  auto reference = ReadCsv(path);
  ASSERT_TRUE(reference.ok());
  for (size_t chunk : {size_t{1}, size_t{5}, size_t{4096}}) {
    auto source = CsvFileSource::Open(path, chunk);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    auto rel = ReadAllRows(*source);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    EXPECT_EQ(RelationAsGrid(*rel), RelationAsGrid(*reference))
        << "chunk " << chunk;
  }
}

TEST(RowSourceTest, ResetReplaysIdenticalRows) {
  auto source = CsvStringSource::Open(kTrickyCsv, /*chunk_bytes=*/4);
  ASSERT_TRUE(source.ok());
  auto drain = [&]() {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> fields;
    while (true) {
      auto more = source->Next(&fields);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      rows.push_back(fields);
    }
    return rows;
  };
  const auto first = drain();
  EXPECT_EQ(first.size(), 3u);
  ASSERT_TRUE(source->Reset().ok());
  EXPECT_EQ(drain(), first);
  // A partial scan followed by Reset must also start over from row 0.
  ASSERT_TRUE(source->Reset().ok());
  std::vector<std::string> fields;
  ASSERT_TRUE(source->Next(&fields).ok());
  ASSERT_TRUE(source->Reset().ok());
  EXPECT_EQ(drain(), first);
}

TEST(RowSourceTest, ArityErrorMatchesMaterializedReader) {
  const char kBad[] = "A,B\nx,y\nonly-one\n";
  auto reference = ParseCsv(kBad);
  ASSERT_FALSE(reference.ok());
  auto source = CsvStringSource::Open(kBad, /*chunk_bytes=*/2);
  ASSERT_TRUE(source.ok());
  auto rel = ReadAllRows(*source);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().ToString(), reference.status().ToString());
}

TEST(RowSourceTest, UnterminatedQuoteFailsLikeParseCsv) {
  const char kBad[] = "A\n\"never closed";
  auto reference = ParseCsv(kBad);
  auto source = CsvStringSource::Open(kBad, /*chunk_bytes=*/3);
  ASSERT_TRUE(source.ok());
  auto rel = ReadAllRows(*source);
  ASSERT_FALSE(rel.ok());
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(rel.status().ToString(), reference.status().ToString());
}

// The csv_fuzz property, extended to the chunked sources: for arbitrary
// byte soup, a tiny-chunk streamed parse must agree with ParseCsv on both
// the ok/error verdict and, when ok, every decoded cell.
TEST(RowSourceTest, FuzzEquivalenceWithParseCsv) {
  util::Random rng(20260705);
  const char alphabet[] = {'a', ',', '"', '\n', '\r', '\\', '\0',
                           ' ', '\t', 'Z', '9', ';', '\'', '\x7f'};
  for (int round = 0; round < 300; ++round) {
    const size_t length = rng.Uniform(120);
    std::string content;
    for (size_t i = 0; i < length; ++i) {
      content += alphabet[rng.Uniform(sizeof(alphabet))];
    }
    const size_t chunk = 1 + rng.Uniform(16);
    auto reference = ParseCsv(content);
    auto source = CsvStringSource::Open(content, chunk);
    if (!reference.ok()) {
      // The header parse may already have failed; otherwise the failure
      // surfaces while draining rows. Either way: same verdict.
      if (source.ok()) {
        auto rel = ReadAllRows(*source);
        EXPECT_FALSE(rel.ok()) << "round " << round << " chunk " << chunk;
      }
      continue;
    }
    ASSERT_TRUE(source.ok()) << "round " << round << " chunk " << chunk;
    auto rel = ReadAllRows(*source);
    ASSERT_TRUE(rel.ok()) << "round " << round << " chunk " << chunk << ": "
                          << rel.status().ToString();
    EXPECT_EQ(RelationAsGrid(*rel), RelationAsGrid(*reference))
        << "round " << round << " chunk " << chunk;
  }
}

TEST(RowSourceTest, RelationRowSourceRoundTrips) {
  const Relation rel = testing::PaperFigure4();
  RelationRowSource source(rel);
  auto copy = ReadAllRows(source);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(RelationAsGrid(*copy), RelationAsGrid(rel));
  ASSERT_TRUE(source.Reset().ok());
  auto again = ReadAllRows(source);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(RelationAsGrid(*again), RelationAsGrid(rel));
}

void ExpectSameStats(const SourceStats& a, const SourceStats& b) {
  EXPECT_EQ(a.num_rows, b.num_rows);
  ASSERT_EQ(a.schema.NumAttributes(), b.schema.NumAttributes());
  for (size_t i = 0; i < a.schema.NumAttributes(); ++i) {
    EXPECT_EQ(a.schema.Name(i), b.schema.Name(i));
  }
  ASSERT_EQ(a.dictionary.NumValues(), b.dictionary.NumValues());
  for (ValueId v = 0; v < a.dictionary.NumValues(); ++v) {
    EXPECT_EQ(a.dictionary.Attribute(v), b.dictionary.Attribute(v));
    EXPECT_EQ(a.dictionary.Text(v), b.dictionary.Text(v));
    EXPECT_EQ(a.dictionary.Support(v), b.dictionary.Support(v));
  }
}

TEST(SourceStatsTest, CollectMatchesRelationBuilderIds) {
  // The counting pass must intern in the same row-major order as
  // RelationBuilder, so streamed and materialized value ids coincide.
  const std::string csv = ToCsvString(testing::PaperFigure4());
  auto rel = ParseCsv(csv);
  ASSERT_TRUE(rel.ok());
  auto source = CsvStringSource::Open(csv, /*chunk_bytes=*/8);
  ASSERT_TRUE(source.ok());
  auto stats = CollectSourceStats(*source);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ExpectSameStats(*stats, SourceStats::FromRelation(*rel));
  // CollectSourceStats rewinds, so a full scan still sees every row.
  auto replay = ReadAllRows(*source);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->NumTuples(), rel->NumTuples());
}

TEST(SourceStatsTest, SidecarRoundTripsHostileValues) {
  // Values that would break a naive text format: separators, quotes,
  // newlines, the length-prefix delimiter, and leading/trailing space.
  const Relation rel = testing::MakeRelation(
      {"name with space", "B"},
      {{"comma,value", "12:34"},
       {"line\nbreak", "\"quoted\""},
       {" padded ", ""},
       {"comma,value", "12:34"}});
  const SourceStats stats = SourceStats::FromRelation(rel);
  const std::string path = ::testing::TempDir() + "/source_stats_test.stats";
  ASSERT_TRUE(SaveSourceStats(stats, path).ok());
  auto loaded = LoadSourceStats(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStats(*loaded, stats);
}

TEST(SourceStatsTest, LoadRejectsCorruptSidecar) {
  const std::string path = ::testing::TempDir() + "/corrupt.stats";
  {
    std::ofstream out(path, std::ios::binary);
    out << "limbo-stats 1\nrows notanumber\n";
  }
  EXPECT_FALSE(LoadSourceStats(path).ok());
  EXPECT_FALSE(LoadSourceStats(::testing::TempDir() + "/missing.stats").ok());
}

}  // namespace
}  // namespace limbo::relation
