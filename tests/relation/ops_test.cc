#include "relation/ops.h"

#include <gtest/gtest.h>

#include "testing/make_relation.h"

namespace limbo::relation {
namespace {

using limbo::testing::MakeRelation;

TEST(ProjectTest, ProjectsColumnsBagSemantics) {
  Relation r = MakeRelation({"A", "B", "C"},
                            {{"1", "x", "p"}, {"2", "x", "q"}, {"1", "y", "p"}});
  auto proj = Project(r, {1});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->NumTuples(), 3u);  // duplicates kept
  EXPECT_EQ(proj->NumAttributes(), 1u);
  EXPECT_EQ(proj->schema().Name(0), "B");
  EXPECT_EQ(proj->TextAt(0, 0), "x");
  EXPECT_EQ(proj->TextAt(2, 0), "y");
}

TEST(ProjectTest, ProjectByNames) {
  Relation r = MakeRelation({"A", "B"}, {{"1", "x"}});
  auto proj = ProjectNames(r, {"B", "A"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->schema().Name(0), "B");
  EXPECT_EQ(proj->schema().Name(1), "A");
  EXPECT_EQ(proj->TextAt(0, 1), "1");
}

TEST(ProjectTest, ErrorsOnBadInput) {
  Relation r = MakeRelation({"A"}, {{"1"}});
  EXPECT_FALSE(Project(r, {}).ok());
  EXPECT_FALSE(Project(r, {5}).ok());
  EXPECT_FALSE(ProjectNames(r, {"nope"}).ok());
}

TEST(DistinctTest, RemovesDuplicateRows) {
  Relation r = MakeRelation({"A", "B"},
                            {{"1", "x"}, {"1", "x"}, {"2", "x"}, {"1", "x"}});
  Relation d = Distinct(r);
  EXPECT_EQ(d.NumTuples(), 2u);
  EXPECT_EQ(d.TextAt(0, 0), "1");
  EXPECT_EQ(d.TextAt(1, 0), "2");
}

TEST(DistinctTest, NoopOnUniqueRows) {
  Relation r = MakeRelation({"A"}, {{"1"}, {"2"}, {"3"}});
  EXPECT_EQ(Distinct(r).NumTuples(), 3u);
}

TEST(CountDistinctProjectedTest, CountsSetSemantics) {
  Relation r = MakeRelation(
      {"A", "B"}, {{"1", "x"}, {"1", "y"}, {"2", "x"}, {"1", "x"}});
  EXPECT_EQ(CountDistinctProjected(r, {0}), 2u);       // {1, 2}
  EXPECT_EQ(CountDistinctProjected(r, {1}), 2u);       // {x, y}
  EXPECT_EQ(CountDistinctProjected(r, {0, 1}), 3u);    // (1,x),(1,y),(2,x)
}

TEST(SelectRowsTest, KeepsRequestedRowsInOrder) {
  Relation r = MakeRelation({"A"}, {{"a"}, {"b"}, {"c"}});
  Relation s = SelectRows(r, {2, 0});
  ASSERT_EQ(s.NumTuples(), 2u);
  EXPECT_EQ(s.TextAt(0, 0), "c");
  EXPECT_EQ(s.TextAt(1, 0), "a");
}

TEST(EquiJoinTest, JoinsAndDropsRightKey) {
  Relation emp = MakeRelation({"Name", "Dept"},
                              {{"ann", "d1"}, {"bob", "d2"}, {"cat", "d1"}});
  Relation dept = MakeRelation({"DeptNo", "DeptName"},
                               {{"d1", "sales"}, {"d2", "eng"}});
  auto joined = EquiJoin(emp, dept, {{"Dept", "DeptNo"}});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumTuples(), 3u);
  EXPECT_EQ(joined->NumAttributes(), 3u);  // Name, Dept, DeptName
  EXPECT_EQ(joined->schema().Name(2), "DeptName");
  EXPECT_EQ(joined->TextAt(0, 2), "sales");
  EXPECT_EQ(joined->TextAt(1, 2), "eng");
}

TEST(EquiJoinTest, OneToManyMultipliesRows) {
  Relation d = MakeRelation({"D"}, {{"d1"}});
  Relation p = MakeRelation({"P", "DeptNo"},
                            {{"p1", "d1"}, {"p2", "d1"}, {"p3", "d2"}});
  auto joined = EquiJoin(d, p, {{"D", "DeptNo"}});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumTuples(), 2u);
}

TEST(EquiJoinTest, NonMatchingRowsDropped) {
  Relation a = MakeRelation({"K", "V"}, {{"1", "x"}, {"9", "y"}});
  Relation b = MakeRelation({"K2", "W"}, {{"1", "w"}});
  auto joined = EquiJoin(a, b, {{"K", "K2"}});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumTuples(), 1u);
  EXPECT_EQ(joined->TextAt(0, 1), "x");
}

TEST(EquiJoinTest, NameCollisionGetsSuffix) {
  Relation a = MakeRelation({"K", "V"}, {{"1", "x"}});
  Relation b = MakeRelation({"K2", "V"}, {{"1", "y"}});
  auto joined = EquiJoin(a, b, {{"K", "K2"}});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->schema().Name(2), "V_r");
  EXPECT_EQ(joined->TextAt(0, 2), "y");
}

TEST(EquiJoinTest, CompositeKeys) {
  Relation a = MakeRelation({"X", "Y"}, {{"1", "2"}, {"1", "3"}});
  Relation b = MakeRelation({"X2", "Y2", "Z"}, {{"1", "2", "ok"}});
  auto joined = EquiJoin(a, b, {{"X", "X2"}, {"Y", "Y2"}});
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->NumTuples(), 1u);
  EXPECT_EQ(joined->TextAt(0, 2), "ok");
}

TEST(EquiJoinTest, MissingKeyAttributeFails) {
  Relation a = MakeRelation({"A"}, {{"1"}});
  Relation b = MakeRelation({"B"}, {{"1"}});
  EXPECT_FALSE(EquiJoin(a, b, {{"nope", "B"}}).ok());
  EXPECT_FALSE(EquiJoin(a, b, {}).ok());
}

}  // namespace
}  // namespace limbo::relation
