#include "relation/relation.h"

#include <gtest/gtest.h>

#include "testing/make_relation.h"

namespace limbo::relation {
namespace {

using limbo::testing::MakeRelation;

TEST(RelationTest, BasicShape) {
  Relation r = MakeRelation({"A", "B"}, {{"x", "1"}, {"y", "2"}, {"x", "2"}});
  EXPECT_EQ(r.NumTuples(), 3u);
  EXPECT_EQ(r.NumAttributes(), 2u);
  // Distinct (attribute, text) pairs: x, y, 1, 2.
  EXPECT_EQ(r.NumValues(), 4u);
}

TEST(RelationTest, ValuesAreAttributeQualified) {
  // "x" under A and "x" under B are distinct values.
  Relation r = MakeRelation({"A", "B"}, {{"x", "x"}});
  EXPECT_EQ(r.NumValues(), 2u);
  EXPECT_NE(r.At(0, 0), r.At(0, 1));
  EXPECT_EQ(r.TextAt(0, 0), r.TextAt(0, 1));
}

TEST(RelationTest, SharedValuesGetSameId) {
  Relation r = MakeRelation({"A"}, {{"x"}, {"x"}, {"y"}});
  EXPECT_EQ(r.At(0, 0), r.At(1, 0));
  EXPECT_NE(r.At(0, 0), r.At(2, 0));
}

TEST(RelationTest, DictionarySupportCountsOccurrences) {
  Relation r = MakeRelation({"A"}, {{"x"}, {"x"}, {"y"}});
  EXPECT_EQ(r.dictionary().Support(r.At(0, 0)), 2u);
  EXPECT_EQ(r.dictionary().Support(r.At(2, 0)), 1u);
}

TEST(RelationTest, RowSpan) {
  Relation r = MakeRelation({"A", "B", "C"}, {{"p", "q", "r"}});
  auto row = r.Row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(r.dictionary().Text(row[1]), "q");
}

TEST(RelationTest, NullsAreFirstClassValues) {
  Relation r = MakeRelation({"A", "B"}, {{"", "1"}, {"", "2"}});
  EXPECT_EQ(r.TextAt(0, 0), "");
  // Both NULL cells share one value id.
  EXPECT_EQ(r.At(0, 0), r.At(1, 0));
  EXPECT_EQ(r.dictionary().Support(r.At(0, 0)), 2u);
}

TEST(RelationTest, QualifiedName) {
  Relation r = MakeRelation({"City"}, {{"Boston"}, {""}});
  EXPECT_EQ(r.dictionary().QualifiedName(r.schema(), r.At(0, 0)),
            "City=Boston");
  EXPECT_EQ(r.dictionary().QualifiedName(r.schema(), r.At(1, 0)), "City=⊥");
}

TEST(RelationTest, BuildValuePostings) {
  Relation r = MakeRelation({"A", "B"}, {{"x", "1"}, {"y", "1"}, {"x", "2"}});
  auto postings = r.BuildValuePostings();
  ASSERT_EQ(postings.size(), r.NumValues());
  // "x" occurs in tuples 0 and 2.
  const ValueId x = r.At(0, 0);
  EXPECT_EQ(postings[x], (std::vector<TupleId>{0, 2}));
  const ValueId one = r.At(0, 1);
  EXPECT_EQ(postings[one], (std::vector<TupleId>{0, 1}));
}

TEST(RelationBuilderTest, RejectsWrongArity) {
  auto schema = Schema::Create({"A", "B"});
  ASSERT_TRUE(schema.ok());
  RelationBuilder builder(std::move(schema).value());
  EXPECT_FALSE(builder.AddRow({"only-one"}).ok());
  EXPECT_TRUE(builder.AddRow({"a", "b"}).ok());
  EXPECT_EQ(builder.NumRows(), 1u);
}

TEST(RelationTest, ToStringRendersHeaderAndRows) {
  Relation r = MakeRelation({"A"}, {{"hello"}});
  const std::string s = r.ToString();
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
}

TEST(RelationTest, ToStringTruncates) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({std::to_string(i)});
  Relation r = MakeRelation({"A"}, rows);
  const std::string s = r.ToString(5);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
}

}  // namespace
}  // namespace limbo::relation
