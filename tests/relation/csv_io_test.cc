#include "relation/csv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace limbo::relation {
namespace {

TEST(CsvTest, ParseSimple) {
  auto r = ParseCsv("A,B\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumTuples(), 2u);
  EXPECT_EQ(r->TextAt(0, 0), "1");
  EXPECT_EQ(r->TextAt(1, 1), "4");
}

TEST(CsvTest, ParseWithoutTrailingNewline) {
  auto r = ParseCsv("A\nx");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumTuples(), 1u);
  EXPECT_EQ(r->TextAt(0, 0), "x");
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  auto r = ParseCsv("A,B\n\"a,b\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->TextAt(0, 0), "a,b");
  EXPECT_EQ(r->TextAt(0, 1), "say \"hi\"");
}

TEST(CsvTest, QuotedFieldWithNewline) {
  auto r = ParseCsv("A\n\"line1\nline2\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->TextAt(0, 0), "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  auto r = ParseCsv("A,B\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumTuples(), 1u);
  EXPECT_EQ(r->TextAt(0, 1), "2");
}

TEST(CsvTest, EmptyFieldsBecomeNulls) {
  auto r = ParseCsv("A,B\n,x\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->TextAt(0, 0), "");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("A\n\"oops\n").ok());
}

TEST(CsvTest, ArityMismatchFailsWithLineNumber) {
  auto r = ParseCsv("A,B\n1,2\n3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, NoHeaderFails) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, RoundTripThroughString) {
  const std::string original = "A,B\nplain,\"with,comma\"\n\"q\"\"q\",\n";
  auto r = ParseCsv(original);
  ASSERT_TRUE(r.ok());
  auto r2 = ParseCsv(ToCsvString(*r));
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->NumTuples(), r->NumTuples());
  for (TupleId t = 0; t < r->NumTuples(); ++t) {
    for (size_t a = 0; a < r->NumAttributes(); ++a) {
      EXPECT_EQ(r->TextAt(t, a), r2->TextAt(t, a));
    }
  }
}

TEST(CsvTest, ReadWriteFile) {
  const std::string path = ::testing::TempDir() + "/limbo_csv_test.csv";
  auto r = ParseCsv("A,B\n1,hello\n2,\"x,y\"\n");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(WriteCsv(*r, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumTuples(), 2u);
  EXPECT_EQ(back->TextAt(1, 1), "x,y");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsv("/nonexistent/path/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST(CsvTest, RoundTripSurvivesHostileContent) {
  // Property: any relation whose cells draw from a hostile alphabet
  // (quotes, commas, newlines, CR, unicode, empties) round-trips exactly.
  const std::vector<std::string> alphabet = {
      "",        "plain",    "with,comma", "with\"quote", "\"quoted\"",
      "new\nline", "cr\rcr", "  spaces  ", "⊥∞µ",        ",",
      "\"",      "\n",       "a,\"b\",c"};
  uint64_t state = 12345;
  auto next = [&state, &alphabet]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return alphabet[(state >> 33) % alphabet.size()];
  };
  auto schema = Schema::Create({"A", "B", "C"});
  ASSERT_TRUE(schema.ok());
  RelationBuilder builder(std::move(schema).value());
  for (int t = 0; t < 60; ++t) {
    ASSERT_TRUE(builder.AddRow({next(), next(), next()}).ok());
  }
  const Relation original = std::move(builder).Build();
  auto back = ParseCsv(ToCsvString(original));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->NumTuples(), original.NumTuples());
  for (TupleId t = 0; t < original.NumTuples(); ++t) {
    for (size_t a = 0; a < original.NumAttributes(); ++a) {
      EXPECT_EQ(back->TextAt(t, a), original.TextAt(t, a))
          << "t=" << t << " a=" << a;
    }
  }
}

}  // namespace
}  // namespace limbo::relation
