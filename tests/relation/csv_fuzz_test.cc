// Robustness: ParseCsv must never crash or hang on arbitrary byte soup —
// it either returns a relation or a clean error Status. A light,
// deterministic fuzz driven by the repo PRNG.

#include <gtest/gtest.h>

#include <string>

#include "relation/csv_io.h"
#include "util/random.h"

namespace limbo::relation {
namespace {

TEST(CsvFuzzTest, ArbitraryBytesNeverCrash) {
  util::Random rng(20260705);
  const char alphabet[] = {'a', ',', '"', '\n', '\r', '\\', '\0',
                           ' ', '\t', 'Z', '9', ';', '\'', '\x7f'};
  for (int round = 0; round < 500; ++round) {
    const size_t length = rng.Uniform(120);
    std::string content;
    for (size_t i = 0; i < length; ++i) {
      content += alphabet[rng.Uniform(sizeof(alphabet))];
    }
    auto result = ParseCsv(content);
    if (result.ok()) {
      // Parsed relations must be internally consistent and re-serializable.
      const std::string echoed = ToCsvString(*result);
      auto again = ParseCsv(echoed);
      ASSERT_TRUE(again.ok()) << "re-parse failed on round " << round;
      EXPECT_EQ(again->NumTuples(), result->NumTuples());
      EXPECT_EQ(again->NumAttributes(), result->NumAttributes());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(CsvFuzzTest, DeepQuotingNesting) {
  std::string content = "A\n";
  for (int i = 0; i < 200; ++i) content += '"';
  content += '\n';
  auto result = ParseCsv(content);
  // Either outcome is fine; it must simply terminate.
  if (result.ok()) EXPECT_GE(result->NumTuples(), 0u);
}

TEST(CsvFuzzTest, VeryWideRow) {
  std::string header = "c0";
  std::string row = "v";
  for (int i = 1; i < 64; ++i) {
    header += ",c" + std::to_string(i);
    row += ",v";
  }
  auto result = ParseCsv(header + "\n" + row + "\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumAttributes(), 64u);
  // 65 columns exceeds the bitset limit and must fail cleanly.
  auto too_wide = ParseCsv(header + ",c64\n" + row + ",v\n");
  EXPECT_FALSE(too_wide.ok());
}

}  // namespace
}  // namespace limbo::relation
