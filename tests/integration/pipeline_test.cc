// Integration tests: the full Section-8.2 DBLP pipeline at reduced scale,
// exercising the same module composition as the reproduction drivers —
// generation, projection, horizontal partitioning, per-cluster Double
// Clustering, attribute grouping, FD mining and ranking.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/attribute_grouping.h"
#include "core/fd_rank.h"
#include "core/structure_summary.h"
#include "core/horizontal_partition.h"
#include "core/info.h"
#include "core/limbo.h"
#include "core/measures.h"
#include "core/tuple_clustering.h"
#include "core/value_clustering.h"
#include "datagen/dblp.h"
#include "fd/min_cover.h"
#include "fd/tane.h"
#include "relation/ops.h"

namespace limbo {
namespace {

constexpr size_t kTuples = 4000;

relation::Relation SmallDblpProjection() {
  datagen::DblpOptions gen;
  gen.target_tuples = kTuples;
  const relation::Relation full = datagen::GenerateDblp(gen);
  auto projected = relation::ProjectNames(
      full, {"Author", "Pages", "BookTitle", "Year", "Volume", "Journal",
             "Number"});
  EXPECT_TRUE(projected.ok());
  return std::move(projected).value();
}

std::vector<uint32_t> SummaryLabels(const relation::Relation& rel,
                                    double phi_t, size_t* num_clusters) {
  const auto objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const auto& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = phi_t;
  const auto leaves = core::LimboPhase1(
      objects, options, phi_t * info / static_cast<double>(objects.size()));
  *num_clusters = leaves.size();
  auto labels = core::LimboPhase3(objects, leaves);
  EXPECT_TRUE(labels.ok());
  return std::move(labels).value();
}

TEST(DblpPipelineTest, PartitionSeparatesConferenceFromJournal) {
  const auto rel = SmallDblpProjection();
  core::HorizontalPartitionOptions options;
  options.phi = 0.5;
  options.k = 2;
  auto partition = core::HorizontallyPartition(rel, options);
  ASSERT_TRUE(partition.ok());

  const auto journal = rel.schema().Find("Journal").value();
  const auto book_title = rel.schema().Find("BookTitle").value();
  // Each cluster is pure in its kind: journal tuples have Journal set,
  // conference tuples have BookTitle set.
  size_t impure = 0;
  std::vector<size_t> journal_count(2, 0);
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    const bool is_journal = !rel.TextAt(t, journal).empty();
    journal_count[partition->assignments[t]] += is_journal;
  }
  const uint32_t journal_label = journal_count[1] > journal_count[0];
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    const bool is_journal = !rel.TextAt(t, journal).empty();
    const bool is_conference = !rel.TextAt(t, book_title).empty();
    if (is_journal && partition->assignments[t] != journal_label) ++impure;
    if (is_conference && partition->assignments[t] == journal_label) ++impure;
  }
  EXPECT_LT(static_cast<double>(impure) / rel.NumTuples(), 0.01);
}

TEST(DblpPipelineTest, ConferenceClusterHasMaxRedundancyNullFds) {
  const auto rel = SmallDblpProjection();
  // Ground-truth conference subset (Volume is NULL).
  const auto volume = rel.schema().Find("Volume").value();
  const auto journal = rel.schema().Find("Journal").value();
  std::vector<relation::TupleId> conf_ids;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    if (rel.TextAt(t, volume).empty() && rel.TextAt(t, journal).empty()) {
      conf_ids.push_back(t);
    }
  }
  const relation::Relation conf = relation::SelectRows(rel, conf_ids);

  fd::TaneOptions tane_options;
  tane_options.min_lhs = 1;
  auto fds = fd::Tane::Mine(conf, tane_options);
  ASSERT_TRUE(fds.ok());
  const auto cover = fd::MinimumCover(*fds, /*merge_same_lhs=*/false);

  size_t num_clusters = 0;
  const auto labels = SummaryLabels(conf, 0.5, &num_clusters);
  core::ValueClusteringOptions value_options;
  value_options.phi_v = 1.0;
  value_options.tuple_labels = &labels;
  value_options.num_tuple_clusters = num_clusters;
  auto values = core::ClusterValues(conf, value_options);
  ASSERT_TRUE(values.ok());
  auto grouping = core::GroupAttributes(conf, *values);
  ASSERT_TRUE(grouping.ok());
  auto ranked = core::RankFds(cover, *grouping);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->empty());

  // The paper's Table-5 shape: the top-ranked FD covers only the all-NULL
  // journal columns and has RAD = RTR = 1.
  const auto& top = ranked->front();
  const auto attrs = top.fd.lhs.Union(top.fd.rhs);
  fd::AttributeSet null_columns;
  for (const char* name : {"Volume", "Journal", "Number"}) {
    null_columns = null_columns.With(conf.schema().Find(name).value());
  }
  EXPECT_TRUE(attrs.IsSubsetOf(null_columns))
      << top.fd.ToString(conf.schema());
  EXPECT_DOUBLE_EQ(core::Rad(conf, attrs.ToList()), 1.0);
  EXPECT_DOUBLE_EQ(core::Rtr(conf, attrs.ToList()),
                   1.0 - 1.0 / conf.NumTuples());
}

TEST(DblpPipelineTest, StructureSummaryLargePath) {
  // SummarizeStructure switches to TANE + Double Clustering above the
  // large-relation threshold; the whole pipeline must still run and find
  // the NULL-block duplicate groups.
  datagen::DblpOptions gen;
  gen.target_tuples = 3000;
  const relation::Relation full = datagen::GenerateDblp(gen);
  core::StructureSummaryOptions options;
  options.large_relation_threshold = 2000;  // force the large path
  options.phi_v = 1.0;
  auto summary = core::SummarizeStructure(full, options);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->has_grouping);
  EXPECT_GT(summary->num_fds, 0u);
  EXPECT_FALSE(summary->values.duplicate_groups.empty());
  EXPECT_FALSE(summary->ranked_cover.empty());
  const std::string text = summary->ToString(full);
  EXPECT_NE(text.find("Value groups"), std::string::npos);
}

TEST(DblpPipelineTest, NullBlockEmergesInFullRelationGrouping) {
  datagen::DblpOptions gen;
  gen.target_tuples = kTuples;
  const relation::Relation full = datagen::GenerateDblp(gen);
  size_t num_clusters = 0;
  const auto labels = SummaryLabels(full, 0.5, &num_clusters);
  core::ValueClusteringOptions value_options;
  value_options.phi_v = 1.0;
  value_options.tuple_labels = &labels;
  value_options.num_tuple_clusters = num_clusters;
  auto values = core::ClusterValues(full, value_options);
  ASSERT_TRUE(values.ok());
  auto grouping = core::GroupAttributes(full, *values);
  ASSERT_TRUE(grouping.ok());

  // Figure-15 property: the NULL-heavy attributes complete their own
  // block strictly before the dendrogram's costliest merges.
  fd::AttributeSet null_block;
  for (const char* name :
       {"Publisher", "ISBN", "Editor", "Series", "School", "Month"}) {
    null_block = null_block.With(full.schema().Find(name).value());
  }
  double block_loss = -1.0;
  for (const core::Merge& m : grouping->aib.merges()) {
    if (null_block.IsSubsetOf(grouping->cluster_members[m.merged])) {
      block_loss = m.delta_i;
      break;
    }
  }
  ASSERT_GE(block_loss, 0.0);
  EXPECT_LT(block_loss, 0.1 * grouping->max_merge_loss);
}

}  // namespace
}  // namespace limbo
