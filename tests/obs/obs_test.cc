// Spans and counters: nesting/aggregation, sharded sums under threads,
// and the runtime disable switch (no clock reads, no registry mutation).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"

namespace limbo::obs {
namespace {

const SpanStats* FindChild(const SpanStats& node, const std::string& name) {
  for (const SpanStats& child : node.children) {
    if (child.name == name) return &child;
  }
  return nullptr;
}

bool HasCounter(const std::string& name) {
  for (const CounterValue& c : SnapshotCounters()) {
    if (c.name == name) return true;
  }
  return false;
}

uint64_t CounterTotal(const std::string& name) {
  for (const CounterValue& c : SnapshotCounters()) {
    if (c.name == name) return c.value;
  }
  return 0;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetTrace();
    ResetCounters();
  }
};

TEST_F(ObsTest, SpansAggregateByPath) {
  {
    LIMBO_OBS_SPAN(outer, "outer");
    for (int i = 0; i < 3; ++i) {
      LIMBO_OBS_SPAN(inner, "inner");
    }
    // A second top-level "outer" span accumulates into the same node.
  }
  {
    LIMBO_OBS_SPAN(outer, "outer");
  }
  const SpanStats root = SnapshotTrace();
  const SpanStats* outer = FindChild(root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  EXPECT_GE(outer->total_seconds, 0.0);
  const SpanStats* inner = FindChild(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
  // Same name under a different parent is a different path.
  EXPECT_EQ(FindChild(root, "inner"), nullptr);
}

TEST_F(ObsTest, StopIsIdempotentAndReturnsElapsed) {
  LIMBO_OBS_SPAN(span, "stoppable");
  const double first = span.Stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.Stop(), 0.0);  // second stop is a no-op
  const SpanStats root = SnapshotTrace();
  const SpanStats* node = FindChild(root, "stoppable");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 1u);
}

TEST_F(ObsTest, ResetTraceDropsAggregates) {
  {
    LIMBO_OBS_SPAN(span, "ephemeral");
  }
  ResetTrace();
  EXPECT_TRUE(SnapshotTrace().children.empty());
}

TEST_F(ObsTest, CounterRegistryReturnsSameInstance) {
  Counter& a = GetCounter("obs_test.same");
  Counter& b = GetCounter("obs_test.same");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  b.Increment();
  EXPECT_EQ(a.Value(), 3u);
}

TEST_F(ObsTest, SchedulingFlagFixedByFirstRegistration) {
  Counter& sched = GetCounter("obs_test.sched", /*scheduling=*/true);
  EXPECT_TRUE(sched.scheduling());
  EXPECT_TRUE(GetCounter("obs_test.sched", false).scheduling());
  EXPECT_FALSE(GetCounter("obs_test.work").scheduling());
}

TEST_F(ObsTest, ShardedAddsSumAcrossThreads) {
  Counter& counter = GetCounter("obs_test.threads");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, SnapshotIsNameSortedAndKeepsZeros) {
  GetCounter("obs_test.zzz").Add(1);
  (void)GetCounter("obs_test.aaa");  // registered, never fired
  const std::vector<CounterValue> snapshot = SnapshotCounters();
  ASSERT_GE(snapshot.size(), 2u);
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
  EXPECT_TRUE(HasCounter("obs_test.aaa"));
  EXPECT_EQ(CounterTotal("obs_test.aaa"), 0u);
  EXPECT_EQ(CounterTotal("obs_test.zzz"), 1u);
}

TEST_F(ObsTest, ResetCountersZeroesButKeepsRegistration) {
  GetCounter("obs_test.reset_me").Add(7);
  ResetCounters();
  EXPECT_TRUE(HasCounter("obs_test.reset_me"));
  EXPECT_EQ(CounterTotal("obs_test.reset_me"), 0u);
}

TEST_F(ObsTest, DisabledCountMacroDoesNotTouchRegistry) {
  SetEnabled(false);
  LIMBO_OBS_COUNT("obs_test.never_registered", 5);
  LIMBO_OBS_COUNT_SCHED("obs_test.never_registered_sched", 5);
  SetEnabled(true);
  EXPECT_FALSE(HasCounter("obs_test.never_registered"));
  EXPECT_FALSE(HasCounter("obs_test.never_registered_sched"));
}

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  SetEnabled(false);
  {
    LIMBO_OBS_SPAN(span, "obs_test.invisible");
    EXPECT_EQ(span.Stop(), 0.0);
  }
  SetEnabled(true);
  EXPECT_EQ(FindChild(SnapshotTrace(), "obs_test.invisible"), nullptr);
}

TEST_F(ObsTest, DisableTakesEffectAtConstructionOnly) {
  // A span alive across a disable keeps recording; a span opened while
  // disabled stays inert even if the layer is re-enabled before Stop.
  LIMBO_OBS_SPAN(live, "obs_test.live");
  SetEnabled(false);
  EXPECT_GE(live.Stop(), 0.0);
  LIMBO_OBS_SPAN(inert, "obs_test.inert");
  SetEnabled(true);
  EXPECT_EQ(inert.Stop(), 0.0);
  const SpanStats root = SnapshotTrace();
  EXPECT_NE(FindChild(root, "obs_test.live"), nullptr);
  EXPECT_EQ(FindChild(root, "obs_test.inert"), nullptr);
}

}  // namespace
}  // namespace limbo::obs
