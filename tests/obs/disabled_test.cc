// Compile-time kill switch: with LIMBO_OBS_DISABLED defined before the
// obs headers, the macros expand to inert statements — no clock reads,
// no registry lookups, nothing recorded — while still compiling the same
// call sites.

#define LIMBO_OBS_DISABLED 1

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "obs/trace.h"

namespace limbo::obs {
namespace {

TEST(ObsDisabledTest, SpanMacroExpandsToNullSpan) {
  ResetTrace();
  {
    LIMBO_OBS_SPAN(span, "disabled_tu.span");
    EXPECT_EQ(span.Stop(), 0.0);
  }
  {
    // Dropping the span without Stop must also be inert.
    LIMBO_OBS_SPAN(span, "disabled_tu.dropped");
  }
  for (const SpanStats& child : SnapshotTrace().children) {
    EXPECT_NE(child.name, "disabled_tu.span");
    EXPECT_NE(child.name, "disabled_tu.dropped");
  }
}

TEST(ObsDisabledTest, CountMacrosNeverRegister) {
  LIMBO_OBS_COUNT("disabled_tu.count", 3);
  LIMBO_OBS_COUNT_SCHED("disabled_tu.sched", 3);
  for (const CounterValue& c : SnapshotCounters()) {
    EXPECT_NE(c.name, "disabled_tu.count");
    EXPECT_NE(c.name, "disabled_tu.sched");
  }
}

TEST(ObsDisabledTest, MacrosEvaluateArgumentsLazily) {
  // The disabled expansion must not evaluate the delta expression.
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 1;
  };
  LIMBO_OBS_COUNT("disabled_tu.lazy", expensive());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace limbo::obs
