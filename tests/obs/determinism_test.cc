// Counter determinism across thread counts: the full LIMBO pipeline must
// produce identical totals for every non-scheduling counter whether it
// runs on 1 lane or 4. Scheduling counters (kernel scatters/dedup hits)
// may split differently between the two, but their per-prefix sum — total
// SetObject calls — is itself schedule-invariant and asserted too.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/limbo.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/random.h"

namespace limbo::core {
namespace {

std::vector<Dcf> SyntheticObjects(size_t n, size_t groups, uint64_t seed) {
  util::Random rng(seed);
  std::vector<Dcf> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t base = static_cast<uint32_t>(i % groups) * 40;
    std::vector<uint32_t> support;
    for (uint32_t slot = 0; slot < 8; ++slot) {
      support.push_back(base + slot * 4 +
                        static_cast<uint32_t>(rng.Uniform(3)));
    }
    Dcf d;
    d.p = 1.0 / static_cast<double>(n);
    d.cond = SparseDistribution::UniformOver(support);
    objects.push_back(std::move(d));
  }
  return objects;
}

struct CounterRun {
  std::map<std::string, uint64_t> work;        // non-scheduling counters
  std::map<std::string, uint64_t> scheduling;  // thread-dependent split
};

CounterRun RunPipelineAt(size_t threads) {
  obs::SetEnabled(true);
  obs::ResetTrace();
  obs::ResetCounters();
  const std::vector<Dcf> objects = SyntheticObjects(300, 6, 7);
  LimboOptions options;
  // phi = 0 keeps every distinct object as a Phase-1 leaf, so the AIB
  // stage runs on hundreds of inputs — enough that its refresh scans
  // span many chunks and the kernel tag-dedup actually fires.
  options.phi = 0.0;
  options.k = 6;
  options.threads = threads;
  auto result = RunLimbo(objects, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  CounterRun run;
  for (const obs::CounterValue& c : obs::SnapshotCounters()) {
    (c.scheduling ? run.scheduling : run.work)[c.name] = c.value;
  }
  return run;
}

uint64_t SumWithPrefix(const std::map<std::string, uint64_t>& counters,
                       const std::string& prefix) {
  uint64_t sum = 0;
  for (const auto& [name, value] : counters) {
    if (name.compare(0, prefix.size(), prefix) == 0) sum += value;
  }
  return sum;
}

TEST(CounterDeterminismTest, WorkCountersIdenticalAcrossThreadCounts) {
  const CounterRun serial = RunPipelineAt(1);
  const CounterRun parallel = RunPipelineAt(4);

  // The pipeline must have actually exercised the instrumented paths.
  EXPECT_GT(serial.work.at("aib.merges"), 0u);
  EXPECT_GT(serial.work.at("aib.distance_evals"), 0u);
  EXPECT_GT(serial.work.at("dcf_tree.inserts"), 0u);
  EXPECT_GT(serial.work.at("phase3.objects"), 0u);
  EXPECT_GT(serial.work.at("aib.kernel.loss_calls"), 0u);

  // Every work counter registered in either run must exist in both with
  // the same total: work is what was computed, not how it was scheduled.
  ASSERT_EQ(serial.work.size(), parallel.work.size());
  for (const auto& [name, value] : serial.work) {
    auto it = parallel.work.find(name);
    ASSERT_NE(it, parallel.work.end()) << "missing in parallel run: " << name;
    EXPECT_EQ(it->second, value) << "counter diverged: " << name;
  }
}

TEST(CounterDeterminismTest, SchedulingCountersBehaveAsDocumented) {
  const CounterRun serial = RunPipelineAt(1);
  const CounterRun parallel = RunPipelineAt(4);

  // Phase 3 calls SetObject once per object, so even though the split is
  // registered as scheduling, its total is per-work-item and invariant.
  const uint64_t serial_p3 =
      SumWithPrefix(serial.scheduling, "phase3.kernel.scatters") +
      SumWithPrefix(serial.scheduling, "phase3.kernel.dedup_hits");
  const uint64_t parallel_p3 =
      SumWithPrefix(parallel.scheduling, "phase3.kernel.scatters") +
      SumWithPrefix(parallel.scheduling, "phase3.kernel.dedup_hits");
  EXPECT_EQ(serial_p3, 300u);  // one scatter per object
  EXPECT_EQ(parallel_p3, 300u);

  // The AIB refresh re-sets the merged row once per chunk, so its
  // SetObject totals legitimately differ between the serial inline path
  // (one body invocation per scan) and the chunked parallel path — which
  // is exactly why these counters carry the scheduling flag. The same-tag
  // dedup must have fired in the parallel run: each lane scatters the
  // merged row at most once per merge, every further chunk is a hit.
  EXPECT_GT(SumWithPrefix(serial.scheduling, "aib.kernel.scatters"), 0u);
  EXPECT_GT(SumWithPrefix(parallel.scheduling, "aib.kernel.scatters"), 0u);
  EXPECT_GT(SumWithPrefix(parallel.scheduling, "aib.kernel.dedup_hits"), 0u);
}

TEST(CounterDeterminismTest, TraceCoversAllThreePhases) {
  obs::SetEnabled(true);
  obs::ResetTrace();
  obs::ResetCounters();
  const std::vector<Dcf> objects = SyntheticObjects(200, 4, 3);
  LimboOptions options;
  options.phi = 0.5;
  options.k = 4;
  auto result = RunLimbo(objects, options);
  ASSERT_TRUE(result.ok());
  const obs::SpanStats root = obs::SnapshotTrace();
  ASSERT_EQ(root.children.size(), 1u);
  const obs::SpanStats& limbo = root.children[0];
  EXPECT_EQ(limbo.name, "limbo");
  std::vector<std::string> phases;
  for (const obs::SpanStats& child : limbo.children) {
    phases.push_back(child.name);
  }
  EXPECT_EQ(phases,
            (std::vector<std::string>{"phase1", "phase2", "phase3"}));
  // phase2 wraps the AIB run, which records its own sub-spans.
  const obs::SpanStats& phase2 = limbo.children[1];
  ASSERT_EQ(phase2.children.size(), 1u);
  EXPECT_EQ(phase2.children[0].name, "aib");
}

}  // namespace
}  // namespace limbo::core
