// RunReport serialization: JSON round-trip fidelity, malformed-input
// rejection, Markdown rendering, and the trace/counter section builders.

#include "obs/report.h"

#include <gtest/gtest.h>

#include <string>

namespace limbo::obs {
namespace {

RunReport SampleReport() {
  RunReport report;
  report.title = "sample run";
  ReportSection run("run");
  run.AddField("command", "summary");
  run.AddField("seconds", 0.125);
  run.AddField("objects", static_cast<uint64_t>(90));
  run.AddField("deterministic", true);
  run.AddField("threads", 4);
  ReportSection trajectory("trajectory");
  trajectory.table.columns = {"step", "delta_i"};
  trajectory.table.rows.push_back(
      {ReportValue::Integer(0), ReportValue::Number(0.0078125)});
  trajectory.table.rows.push_back(
      {ReportValue::Integer(1), ReportValue::Number(1e-17)});
  run.children.push_back(std::move(trajectory));
  report.sections.push_back(std::move(run));
  return report;
}

TEST(ReportTest, JsonRoundTripIsExact) {
  const RunReport report = SampleReport();
  const std::string json = report.ToJson();
  auto parsed = RunReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Re-serializing the parse reproduces the bytes: every value kept its
  // kind (0.0078125 stayed a number, 90 an integer) and its order.
  EXPECT_EQ(parsed->ToJson(), json);
  EXPECT_EQ(parsed->schema_version, kRunReportSchemaVersion);
  EXPECT_EQ(parsed->title, "sample run");
  ASSERT_EQ(parsed->sections.size(), 1u);
  const ReportSection& run = parsed->sections[0];
  ASSERT_EQ(run.fields.size(), 5u);
  EXPECT_EQ(run.fields[0].first, "command");
  EXPECT_EQ(run.fields[0].second.kind, ReportValue::Kind::kString);
  EXPECT_EQ(run.fields[1].second.kind, ReportValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(run.fields[1].second.number, 0.125);
  EXPECT_EQ(run.fields[2].second.kind, ReportValue::Kind::kInteger);
  EXPECT_EQ(run.fields[2].second.integer, 90u);
  EXPECT_EQ(run.fields[3].second.kind, ReportValue::Kind::kBoolean);
  ASSERT_EQ(run.children.size(), 1u);
  ASSERT_EQ(run.children[0].table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(run.children[0].table.rows[1][1].number, 1e-17);
}

TEST(ReportTest, EscapesAndRestoresSpecialCharacters) {
  RunReport report;
  report.title = "quotes \" backslash \\ newline \n tab \t";
  auto parsed = RunReport::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->title, report.title);
}

TEST(ReportTest, RejectsGarbage) {
  EXPECT_FALSE(RunReport::FromJson("").ok());
  EXPECT_FALSE(RunReport::FromJson("not json at all").ok());
  EXPECT_FALSE(RunReport::FromJson("{\"title\": \"x\"}").ok());  // no version
  EXPECT_FALSE(
      RunReport::FromJson(
          "{\"schema_version\": 999, \"title\": \"x\", \"sections\": []}")
          .ok());
  EXPECT_FALSE(
      RunReport::FromJson(
          "{\"schema_version\": 1, \"title\": \"x\", \"sections\": {}}")
          .ok());  // sections must be an array
  // Trailing garbage after a valid document.
  const std::string valid = SampleReport().ToJson();
  EXPECT_FALSE(RunReport::FromJson(valid + "trailing").ok());
  // A table row whose width disagrees with the column list.
  EXPECT_FALSE(
      RunReport::FromJson(
          "{\"schema_version\": 1, \"title\": \"x\", \"sections\": ["
          "{\"title\": \"s\", \"table\": {\"columns\": [\"a\", \"b\"],"
          " \"rows\": [[1]]}}]}")
          .ok());
}

TEST(ReportTest, MarkdownRendersSectionsAndTables) {
  const std::string md = SampleReport().ToMarkdown();
  EXPECT_NE(md.find("# sample run"), std::string::npos);
  EXPECT_NE(md.find("## run"), std::string::npos);
  EXPECT_NE(md.find("### trajectory"), std::string::npos);
  EXPECT_NE(md.find("- command: summary"), std::string::npos);
  EXPECT_NE(md.find("| step | delta_i |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(ReportTest, TraceSectionFlattensPreOrderWithDepth) {
  SpanStats root;
  SpanStats parent;
  parent.name = "parent";
  parent.count = 1;
  parent.total_seconds = 2.0;
  SpanStats child;
  child.name = "child";
  child.count = 3;
  child.total_seconds = 0.5;
  parent.children.push_back(child);
  root.children.push_back(parent);
  SpanStats sibling;
  sibling.name = "sibling";
  sibling.count = 1;
  root.children.push_back(sibling);

  const ReportSection section = TraceSection(root);
  EXPECT_EQ(section.title, "spans");
  ASSERT_EQ(section.table.rows.size(), 3u);
  EXPECT_EQ(section.table.rows[0][0].str, "parent");
  EXPECT_EQ(section.table.rows[0][1].integer, 0u);  // depth
  EXPECT_EQ(section.table.rows[1][0].str, "child");
  EXPECT_EQ(section.table.rows[1][1].integer, 1u);
  EXPECT_EQ(section.table.rows[1][2].integer, 3u);  // count
  EXPECT_EQ(section.table.rows[2][0].str, "sibling");
  EXPECT_EQ(section.table.rows[2][1].integer, 0u);
}

TEST(ReportTest, CountersSectionCarriesSchedulingFlag) {
  std::vector<CounterValue> counters;
  counters.push_back({"aib.merges", 12, false});
  counters.push_back({"aib.kernel.scatters", 48, true});
  const ReportSection section = CountersSection(counters);
  EXPECT_EQ(section.title, "counters");
  ASSERT_EQ(section.table.rows.size(), 2u);
  EXPECT_EQ(section.table.rows[0][0].str, "aib.merges");
  EXPECT_EQ(section.table.rows[0][2].boolean, false);
  EXPECT_EQ(section.table.rows[1][0].str, "aib.kernel.scatters");
  EXPECT_EQ(section.table.rows[1][2].boolean, true);
}

}  // namespace
}  // namespace limbo::obs
