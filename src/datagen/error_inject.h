#ifndef LIMBO_DATAGEN_ERROR_INJECT_H_
#define LIMBO_DATAGEN_ERROR_INJECT_H_

#include <cstdint>
#include <vector>

#include "relation/relation.h"
#include "util/result.h"

namespace limbo::datagen {

/// Parameters for the paper's dirty-tuple experiments (Section 8.1.1):
/// near-duplicates of existing tuples with some attribute values replaced
/// by fresh erroneous values (typographic / notational / schema
/// discrepancies introduced by integration).
struct ErrorInjectionOptions {
  uint64_t seed = 1234;
  /// How many dirty tuples to append.
  size_t num_dirty_tuples = 5;
  /// How many attribute values to alter in each dirty tuple.
  size_t values_altered = 1;
};

/// Ground truth of one injected tuple.
struct DirtyRecord {
  /// Row id of the injected tuple in the returned relation.
  relation::TupleId dirty_id;
  /// Row id of the clean tuple it duplicates.
  relation::TupleId source_id;
  /// The attributes whose values were replaced.
  std::vector<relation::AttributeId> altered_attributes;
  /// For each altered attribute: the fresh erroneous cell text.
  std::vector<std::string> dirty_texts;
};

struct ErrorInjectionResult {
  /// The original relation with the dirty tuples appended at the end.
  relation::Relation dirty;
  std::vector<DirtyRecord> records;
};

/// Appends `num_dirty_tuples` near-duplicates of distinct, randomly chosen
/// source tuples. Each altered cell gets a fresh value ("ERR_<n>") that
/// occurs nowhere else — mimicking mis-keyed identifiers after
/// integration. Deterministic in `options.seed`.
util::Result<ErrorInjectionResult> InjectErrors(
    const relation::Relation& rel, const ErrorInjectionOptions& options);

}  // namespace limbo::datagen

#endif  // LIMBO_DATAGEN_ERROR_INJECT_H_
