#ifndef LIMBO_DATAGEN_DBLP_H_
#define LIMBO_DATAGEN_DBLP_H_

#include <cstdint>

#include "relation/relation.h"

namespace limbo::datagen {

/// Options for the synthetic DBLP-style publication relation.
struct DblpOptions {
  uint64_t seed = 7;
  /// Approximate number of tuples (one tuple per author of each
  /// publication, as produced by the paper's XML-to-relational mapping).
  size_t target_tuples = 50000;
  /// Mix of publication kinds; the remainder is "misc" (theses, technical
  /// reports). Tuned to the paper's measured partition sizes
  /// (35892 : 13979 : 129 out of 50000).
  double conference_fraction = 0.718;
  double journal_fraction = 0.2795;
};

/// Generates the paper's heterogeneous DBLP target relation (Figure 13):
/// 13 attributes {Author, Publisher, Year, Editor, Pages, BookTitle,
/// Month, Volume, Journal, Number, School, Series, ISBN}; one tuple per
/// author; NULL-heavy columns exactly where the paper found them
/// ({Publisher, ISBN, Editor, Series, School, Month} are >= 98% NULL).
///
/// Planted structure:
///  - conference tuples: BookTitle set; Volume/Journal/Number NULL;
///  - journal tuples: Journal/Volume/Number set, Year a function of
///    (Journal, Volume, Number) — mostly of (Journal, Volume) alone, but a
///    small fraction of volumes span two years so that a wider LHS is
///    needed, mirroring the paper's [Author,Volume,Journal,Number]→[Year];
///  - misc tuples (~0.26%): School set, everything else largely NULL.
relation::Relation GenerateDblp(const DblpOptions& options = DblpOptions());

}  // namespace limbo::datagen

#endif  // LIMBO_DATAGEN_DBLP_H_
