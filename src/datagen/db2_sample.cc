#include "datagen/db2_sample.h"

#include <string>
#include <vector>

#include "relation/ops.h"
#include "util/logging.h"
#include "util/strings.h"

namespace limbo::datagen {

namespace {

using relation::Relation;
using relation::RelationBuilder;
using relation::Schema;

constexpr int kNumDepartments = 8;
constexpr int kNumEmployees = 32;

// Employees per department (sums to 32) and projects per department
// (chosen so the join has sum(emp_d * proj_d) = 90 rows). Department 1 is
// deliberately dominant — the real DB2 sample's join is heavily skewed
// toward one department, which is what gives the paper's department FDs
// their high RAD.
constexpr int kEmployeesPerDept[kNumDepartments] = {10, 6, 4, 4, 2, 2, 2, 2};
constexpr int kProjectsPerDept[kNumDepartments] = {5, 2, 2, 2, 2, 2, 1, 1};

const char* const kFirstNames[] = {
    "Pat",    "Sal",   "Chris", "Robin",  "Lee",   "Dana",
    "Sam",    "Alex",  "Toni",  "Jo",     "Kim",   "Jean",
    "Terry",  "Jamie", "Casey", "Morgan", "Drew",  "Quinn"};
const char* const kLastNames[] = {
    "Haas",     "Thompson", "Kwan",     "Geyer",   "Stern",   "Pulaski",
    "Henders",  "Spenser",  "Lucchesi", "OConnell", "Quintana", "Nicholls",
    "Adamson",  "Pianka",   "Yoshimura", "Scoutten", "Walker",  "Brown",
    "Jones",    "Lutz",     "Jefferson", "Marino",  "Smith",   "Johnson",
    "Perez",    "Schneider"};
const char* const kJobs[] = {"MANAGER", "ANALYST", "DESIGNER", "CLERK",
                             "SALESREP"};
const char* const kDeptNames[] = {"SPIFFY_COMPUTER", "PLANNING", "INFORMATION",
                                  "DEVELOPMENT",     "SUPPORT",  "OPERATIONS",
                                  "SOFTWARE",        "BRANCH"};
const char* const kStartDates[] = {"1982-01-01", "1982-06-01", "1983-02-01",
                                   "1983-09-15", "1984-01-30", "1984-06-15",
                                   "1985-03-01", "1985-10-01"};
const char* const kEndDates[] = {"1983-02-01", "1983-09-01", "1984-05-01",
                                 "1984-12-15", "1985-04-30", "1985-09-15",
                                 "1986-06-01", "1986-12-31"};

/// Deterministic per-(entity, attribute) mixing. Linear formulas like
/// (i*5)%14 share periods across attributes and plant accidental FDs;
/// SplitMix-style hashing decorrelates the columns.
int Mix(int entity, int salt, int modulus) {
  uint64_t x = static_cast<uint64_t>(entity) * 0x9E3779B97F4A7C15ULL +
               static_cast<uint64_t>(salt) * 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 29;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 32;
  return static_cast<int>(x % static_cast<uint64_t>(modulus));
}

/// Department of employee i (dense fill following kEmployeesPerDept).
int EmployeeDept(int i) {
  int d = 0;
  int offset = i;
  while (offset >= kEmployeesPerDept[d]) {
    offset -= kEmployeesPerDept[d];
    ++d;
  }
  return d;
}

std::string DeptNo(int d) { return util::StrFormat("D%02d", d + 1); }
std::string EmpNo(int i) { return util::StrFormat("E%03d", i + 1); }
std::string ProjNo(int p) { return util::StrFormat("P%03d", p + 1); }

Schema MakeSchema(std::vector<std::string> names) {
  auto schema = relation::Schema::Create(std::move(names));
  LIMBO_CHECK(schema.ok());
  return std::move(schema).value();
}

}  // namespace

Relation Db2Sample::Employees() {
  RelationBuilder builder(MakeSchema({"EmpNo", "FirstName", "LastName",
                                      "PhoneNo", "HireYear", "Job",
                                      "EduLevel", "Sex", "BirthYear",
                                      "DeptNo"}));
  for (int i = 0; i < kNumEmployees; ++i) {
    // Employees come in profile pairs (2k, 2k+1 share every descriptive
    // attribute): no combination of descriptive attributes accidentally
    // identifies an employee, so the minimum cover keeps the clean
    // key-based FDs the paper reports. Department sizes are all even, so
    // dense fill keeps each pair inside one department.
    const int profile = i / 2;
    const util::Status s = builder.AddRow({
        EmpNo(i),
        kFirstNames[Mix(profile, 1, 10)],
        kLastNames[Mix(profile, 2, 12)],
        util::StrFormat("555-%04d", 1000 + i * 7),
        util::StrFormat("%d", 1980 + Mix(profile, 3, 6)),
        kJobs[Mix(profile, 4, 5)],
        util::StrFormat("%d", 12 + Mix(profile, 5, 5)),
        Mix(profile, 6, 2) == 0 ? "M" : "F",
        util::StrFormat("%d", 1950 + Mix(profile, 7, 8)),
        DeptNo(EmployeeDept(i)),
    });
    LIMBO_CHECK(s.ok());
  }
  return std::move(builder).Build();
}

Relation Db2Sample::Departments() {
  RelationBuilder builder(
      MakeSchema({"DepNo", "DeptName", "MgrNo", "AdminDepNo"}));
  for (int d = 0; d < kNumDepartments; ++d) {
    const util::Status s = builder.AddRow({
        DeptNo(d),
        kDeptNames[d],
        util::StrFormat("M%03d", d + 1),
        util::StrFormat("A%02d", d / 3 + 1),
    });
    LIMBO_CHECK(s.ok());
  }
  return std::move(builder).Build();
}

Relation Db2Sample::Projects() {
  RelationBuilder builder(MakeSchema({"ProjNo", "ProjName", "RespEmpNo",
                                      "StartDate", "EndDate", "MajorProjNo",
                                      "DeptNo"}));
  int seq = 0;
  int emp_base = 0;
  for (int d = 0; d < kNumDepartments; ++d) {
    const int first_proj_of_dept = seq;
    for (int p = 0; p < kProjectsPerDept[d]; ++p) {
      // Projects pair up within a department (local indexes 0/1, 2/3, ...
      // share responsible employee and dates) so that no accidental
      // combination of project attributes identifies a project.
      const int profile = first_proj_of_dept + (p / 2) * 2;
      const int resp = emp_base + (profile % kEmployeesPerDept[d]);
      const util::Status s = builder.AddRow({
          ProjNo(seq),
          util::StrFormat("PROJECT_%c%d", 'A' + d, p + 1),
          EmpNo(resp),
          kStartDates[Mix(profile, 8, 8)],
          kEndDates[Mix(profile, 9, 8)],
          ProjNo(first_proj_of_dept),
          DeptNo(d),
      });
      LIMBO_CHECK(s.ok());
      ++seq;
    }
    emp_base += kEmployeesPerDept[d];
  }
  return std::move(builder).Build();
}

util::Result<Relation> Db2Sample::JoinedRelation() {
  const Relation employees = Employees();
  const Relation departments = Departments();
  const Relation projects = Projects();
  LIMBO_ASSIGN_OR_RETURN(
      Relation ed,
      relation::EquiJoin(employees, departments, {{"DeptNo", "DepNo"}}));
  return relation::EquiJoin(ed, projects, {{"DeptNo", "DeptNo"}});
}

}  // namespace limbo::datagen
