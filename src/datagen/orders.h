#ifndef LIMBO_DATAGEN_ORDERS_H_
#define LIMBO_DATAGEN_ORDERS_H_

#include <cstdint>

#include "relation/relation.h"

namespace limbo::datagen {

/// The paper's Section 6.1.2 motivating scenario: "an order table
/// originally designed to store product orders may have been reused to
/// store new service orders". Product orders fill product columns and
/// leave service columns NULL; service orders do the reverse; both share
/// the order header columns.
struct OrdersOptions {
  uint64_t seed = 11;
  size_t num_orders = 3000;
  /// Fraction of service orders mixed into the overloaded table.
  double service_fraction = 0.3;
};

/// Schema (10 attributes):
///   OrderNo, CustomerId, Date, Region          — shared header
///   ProductSku, Quantity, Warehouse            — product orders only
///   ServiceCode, Technician, VisitSlot         — service orders only
relation::Relation GenerateOrders(const OrdersOptions& options = OrdersOptions());

/// Ground truth: true iff row `t` of a relation produced by
/// GenerateOrders is a service order (ServiceCode non-NULL).
bool IsServiceOrder(const relation::Relation& rel, relation::TupleId t);

}  // namespace limbo::datagen

#endif  // LIMBO_DATAGEN_ORDERS_H_
