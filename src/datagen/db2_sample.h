#ifndef LIMBO_DATAGEN_DB2_SAMPLE_H_
#define LIMBO_DATAGEN_DB2_SAMPLE_H_

#include "relation/relation.h"
#include "util/result.h"

namespace limbo::datagen {

/// A deterministic stand-in for the IBM DB2 sample database used in the
/// paper's small-scale experiments (Section 8.1). Mirrors the schema of
/// Figure 12 — EMPLOYEE, DEPARTMENT, PROJECT with the same key/foreign-key
/// structure — and the joined relation
///   R = (E ⋈_{DeptNo=DeptNo} D) ⋈_{DeptNo=DeptNo} P
/// with ~90 tuples, 19 attributes and ~255 distinct attribute values.
///
/// Planted structure (the ground truth the experiments recover):
///   DeptNo  → DeptName, MgrNo, AdminDepNo      (department attributes)
///   DeptName→ MgrNo                            (names and managers 1:1)
///   EmpNo   → FirstName, LastName, PhoneNo, HireYear, Job, EduLevel,
///             Sex, BirthYear, DeptNo           (employee attributes)
///   ProjNo  → ProjName, RespEmpNo, StartDate, EndDate, MajorProjNo
class Db2Sample {
 public:
  static relation::Relation Employees();
  static relation::Relation Departments();
  static relation::Relation Projects();

  /// The joined single relation R (19 attributes).
  static util::Result<relation::Relation> JoinedRelation();
};

}  // namespace limbo::datagen

#endif  // LIMBO_DATAGEN_DB2_SAMPLE_H_
