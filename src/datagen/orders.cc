#include "datagen/orders.h"

#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/strings.h"

namespace limbo::datagen {

namespace {
const char* const kRegions[] = {"north", "south", "east", "west"};
const char* const kWarehouses[] = {"WH-A", "WH-B", "WH-C"};
const char* const kSlots[] = {"am", "pm", "evening"};
}  // namespace

relation::Relation GenerateOrders(const OrdersOptions& options) {
  auto schema = relation::Schema::Create(
      {"OrderNo", "CustomerId", "Date", "Region", "ProductSku", "Quantity",
       "Warehouse", "ServiceCode", "Technician", "VisitSlot"});
  LIMBO_CHECK(schema.ok());
  relation::RelationBuilder builder(std::move(schema).value());
  util::Random rng(options.seed);

  std::vector<std::string> row(10);
  for (size_t i = 0; i < options.num_orders; ++i) {
    for (std::string& cell : row) cell.clear();
    row[0] = util::StrFormat("O%06zu", i + 1);
    row[1] = util::StrFormat("C%04zu", rng.Zipf(800, 1.1));
    row[2] = util::StrFormat("2003-%02zu-%02zu", 1 + rng.Uniform(12),
                             1 + rng.Uniform(28));
    row[3] = kRegions[rng.Uniform(4)];
    if (rng.Bernoulli(options.service_fraction)) {
      row[7] = util::StrFormat("SVC-%zu", rng.Uniform(15));
      row[8] = util::StrFormat("tech_%02zu", rng.Uniform(25));
      row[9] = kSlots[rng.Uniform(3)];
    } else {
      row[4] = util::StrFormat("SKU-%04zu", rng.Zipf(400, 1.05));
      row[5] = util::StrFormat("%zu", 1 + rng.Uniform(9));
      row[6] = kWarehouses[rng.Uniform(3)];
    }
    LIMBO_CHECK(builder.AddRow(row).ok());
  }
  return std::move(builder).Build();
}

bool IsServiceOrder(const relation::Relation& rel, relation::TupleId t) {
  const auto service_code = rel.schema().Find("ServiceCode");
  LIMBO_CHECK(service_code.ok());
  return !rel.TextAt(t, *service_code).empty();
}

}  // namespace limbo::datagen
