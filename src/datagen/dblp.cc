#include "datagen/dblp.h"

#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/strings.h"

namespace limbo::datagen {

namespace {

using relation::RelationBuilder;

constexpr size_t kAuthorPool = 9000;
constexpr size_t kConferencePool = 250;
constexpr size_t kJournalPool = 60;
constexpr size_t kSchoolPool = 40;
constexpr size_t kPublisherPool = 12;
constexpr size_t kSeriesPool = 10;

const char* const kMonths[] = {"January", "March",    "May",     "June",
                               "August",  "September", "November", "December"};

std::string AuthorName(size_t i) { return util::StrFormat("Author_%04zu", i); }

enum class Kind { kConference, kJournal, kMisc };

/// Column indexes of the 13-attribute target schema (Figure 13 order).
enum Column : size_t {
  kAuthor = 0,
  kPublisher,
  kYear,
  kEditor,
  kPages,
  kBookTitle,
  kMonth,
  kVolume,
  kJournal,
  kNumber,
  kSchool,
  kSeries,
  kIsbn,
  kNumColumns,
};

}  // namespace

relation::Relation GenerateDblp(const DblpOptions& options) {
  auto schema = relation::Schema::Create(
      {"Author", "Publisher", "Year", "Editor", "Pages", "BookTitle",
       "Month", "Volume", "Journal", "Number", "School", "Series", "ISBN"});
  LIMBO_CHECK(schema.ok());
  RelationBuilder builder(std::move(schema).value());
  util::Random rng(options.seed);

  // Every author has a home conference, giving the Author↔BookTitle
  // correlation the paper observes in cluster 1.
  auto home_conference = [](size_t author) {
    return (author * 2654435761u) % kConferencePool;
  };
  // Journals have a base year; Year is a function of (Journal, Volume)
  // except for "spanning" volumes where the issue Number decides the year.
  auto journal_year = [&](size_t journal, size_t volume, size_t number) {
    const size_t base = 1965 + (journal * 7) % 20;
    size_t year = base + volume;
    const bool spans = ((journal * 31 + volume) % 25) == 0;
    if (spans && number > 2) year += 1;
    return year;
  };

  const size_t target = options.target_tuples;
  // Per-kind tuple quotas.
  const size_t conf_quota =
      static_cast<size_t>(options.conference_fraction * target);
  const size_t journal_quota =
      static_cast<size_t>(options.journal_fraction * target);
  size_t conf_tuples = 0;
  size_t journal_tuples = 0;
  size_t total_tuples = 0;
  size_t publication_seq = 0;

  std::vector<std::string> row(kNumColumns);
  auto clear_row = [&row] {
    for (std::string& cell : row) cell.clear();
  };

  while (total_tuples < target) {
    // Pick the kind with the largest remaining quota deficit.
    Kind kind;
    if (conf_tuples < conf_quota &&
        (journal_tuples >= journal_quota ||
         (double)conf_tuples / conf_quota <=
             (double)journal_tuples / journal_quota)) {
      kind = Kind::kConference;
    } else if (journal_tuples < journal_quota) {
      kind = Kind::kJournal;
    } else {
      kind = Kind::kMisc;
    }

    const size_t pub = publication_seq++;
    const size_t pages_lo = 1 + (pub * 13) % 700;
    const std::string pages =
        util::StrFormat("%zu-%zu", pages_lo, pages_lo + 8 + pub % 17);

    if (kind == Kind::kConference) {
      const size_t num_authors = 1 + rng.Uniform(4);  // 1..4
      const size_t lead = rng.Zipf(kAuthorPool, 1.1);
      const size_t conf = rng.Bernoulli(0.7)
                              ? home_conference(lead)
                              : rng.Uniform(kConferencePool);
      const size_t year = 1970 + rng.Uniform(34);
      const bool has_publisher = rng.Bernoulli(0.015);
      const bool has_editor = rng.Bernoulli(0.010);
      const bool has_series = rng.Bernoulli(0.010);
      const bool has_month = rng.Bernoulli(0.015);
      for (size_t a = 0; a < num_authors; ++a) {
        clear_row();
        const size_t author =
            (a == 0) ? lead : rng.Zipf(kAuthorPool, 1.1);
        row[kAuthor] = AuthorName(author);
        row[kYear] = util::StrFormat("%zu", year);
        row[kPages] = pages;
        row[kBookTitle] = util::StrFormat("Conf_%03zu", conf);
        if (has_publisher) {
          row[kPublisher] =
              util::StrFormat("Publisher_%zu", pub % kPublisherPool);
          row[kIsbn] = util::StrFormat("ISBN-%06zu", pub);
        }
        if (has_editor) row[kEditor] = AuthorName(rng.Uniform(kAuthorPool));
        if (has_series) {
          row[kSeries] = util::StrFormat("Series_%zu", pub % kSeriesPool);
        }
        if (has_month) row[kMonth] = kMonths[pub % 8];
        LIMBO_CHECK(builder.AddRow(row).ok());
        ++conf_tuples;
        ++total_tuples;
      }
    } else if (kind == Kind::kJournal) {
      const size_t num_authors = 1 + rng.Uniform(3);  // 1..3
      const size_t journal = rng.Zipf(kJournalPool, 1.05);
      const size_t volume = 1 + rng.Uniform(30);
      const size_t number = 1 + rng.Uniform(4);
      const size_t year = journal_year(journal, volume, number);
      for (size_t a = 0; a < num_authors; ++a) {
        clear_row();
        row[kAuthor] = AuthorName(rng.Zipf(kAuthorPool, 1.1));
        row[kYear] = util::StrFormat("%zu", year);
        row[kPages] = pages;
        row[kVolume] = util::StrFormat("%zu", volume);
        row[kJournal] = util::StrFormat("Journal_%02zu", journal);
        row[kNumber] = util::StrFormat("%zu", number);
        LIMBO_CHECK(builder.AddRow(row).ok());
        ++journal_tuples;
        ++total_tuples;
      }
    } else {
      clear_row();
      row[kAuthor] = AuthorName(rng.Uniform(kAuthorPool));
      row[kYear] = util::StrFormat("%zu", 1975 + rng.Uniform(29));
      row[kSchool] = util::StrFormat("School_%02zu", rng.Uniform(kSchoolPool));
      if (rng.Bernoulli(0.3)) row[kMonth] = kMonths[rng.Uniform(8)];
      LIMBO_CHECK(builder.AddRow(row).ok());
      ++total_tuples;
    }
  }
  return std::move(builder).Build();
}

}  // namespace limbo::datagen
