#include "datagen/error_inject.h"

#include <algorithm>
#include <unordered_set>

#include "util/random.h"
#include "util/strings.h"

namespace limbo::datagen {

util::Result<ErrorInjectionResult> InjectErrors(
    const relation::Relation& rel, const ErrorInjectionOptions& options) {
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();
  if (options.num_dirty_tuples > n) {
    return util::Status::InvalidArgument(
        "cannot pick more distinct source tuples than the relation has");
  }
  if (options.values_altered > m) {
    return util::Status::InvalidArgument(
        "cannot alter more values than there are attributes");
  }

  util::Random rng(options.seed);

  // Rebuild the relation (builder re-interns values), copying originals.
  std::vector<std::string> names = rel.schema().Names();
  LIMBO_ASSIGN_OR_RETURN(relation::Schema schema,
                         relation::Schema::Create(std::move(names)));
  relation::RelationBuilder builder(std::move(schema));
  std::vector<std::string> row(m);
  for (relation::TupleId t = 0; t < n; ++t) {
    for (size_t a = 0; a < m; ++a) {
      row[a] = rel.TextAt(t, static_cast<relation::AttributeId>(a));
    }
    LIMBO_RETURN_IF_ERROR(builder.AddRow(row));
  }

  // Distinct random sources.
  std::unordered_set<relation::TupleId> chosen;
  std::vector<relation::TupleId> sources;
  while (sources.size() < options.num_dirty_tuples) {
    const auto t = static_cast<relation::TupleId>(rng.Uniform(n));
    if (chosen.insert(t).second) sources.push_back(t);
  }

  ErrorInjectionResult result;
  size_t err_seq = 0;
  for (size_t i = 0; i < sources.size(); ++i) {
    const relation::TupleId source = sources[i];
    DirtyRecord record;
    record.source_id = source;
    record.dirty_id = static_cast<relation::TupleId>(n + i);
    for (size_t a = 0; a < m; ++a) {
      row[a] = rel.TextAt(source, static_cast<relation::AttributeId>(a));
    }
    // Distinct random attributes to corrupt, in increasing order so the
    // (attribute, dirty text) pairing stays aligned.
    std::unordered_set<relation::AttributeId> altered;
    while (altered.size() < options.values_altered) {
      altered.insert(static_cast<relation::AttributeId>(rng.Uniform(m)));
    }
    std::vector<relation::AttributeId> ordered(altered.begin(),
                                               altered.end());
    std::sort(ordered.begin(), ordered.end());
    for (relation::AttributeId a : ordered) {
      const std::string dirty_text = util::StrFormat(
          "ERR_%zu_%zu", static_cast<size_t>(options.seed % 1000), err_seq++);
      row[a] = dirty_text;
      record.altered_attributes.push_back(a);
      record.dirty_texts.push_back(dirty_text);
    }
    LIMBO_RETURN_IF_ERROR(builder.AddRow(row));
    result.records.push_back(std::move(record));
  }
  result.dirty = std::move(builder).Build();
  return result;
}

}  // namespace limbo::datagen
