#include "fd/fdep.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace limbo::fd {

namespace {

/// Removes non-minimal sets (supersets of another member) from `sets`.
std::vector<AttributeSet> MinimizeSets(std::vector<AttributeSet> sets) {
  std::sort(sets.begin(), sets.end(), [](AttributeSet a, AttributeSet b) {
    if (a.Count() != b.Count()) return a.Count() < b.Count();
    return a < b;
  });
  std::vector<AttributeSet> out;
  for (AttributeSet s : sets) {
    bool dominated = false;
    for (AttributeSet kept : out) {
      if (kept.IsSubsetOf(s)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(s);
  }
  return out;
}

/// Depth-first enumeration of all *minimal* hitting sets of `difference`
/// over the universe `candidates`. Classic branch on the first un-hit set;
/// minimality is verified a posteriori against the collected results.
void FindMinimalHittingSets(const std::vector<AttributeSet>& difference,
                            AttributeSet candidates, AttributeSet current,
                            std::vector<AttributeSet>* out) {
  // Find the first difference set not hit by `current`.
  const AttributeSet* unhit = nullptr;
  for (const AttributeSet& d : difference) {
    if (d.Intersect(current).Empty()) {
      unhit = &d;
      break;
    }
  }
  if (unhit == nullptr) {
    out->push_back(current);
    return;
  }
  // Branch on each eligible attribute of the un-hit set.
  for (relation::AttributeId a : unhit->Intersect(candidates).ToList()) {
    // Standard duplicate-avoidance: attributes already tried at this node
    // are removed from the candidate universe of later branches.
    candidates = candidates.Without(a);
    FindMinimalHittingSets(difference, candidates, current.With(a), out);
  }
}

}  // namespace

std::vector<AttributeSet> Fdep::AgreeSets(const relation::Relation& rel) {
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();
  std::unordered_set<AttributeSet> seen;
  for (relation::TupleId i = 0; i < n; ++i) {
    for (relation::TupleId j = i + 1; j < n; ++j) {
      AttributeSet ag;
      for (size_t a = 0; a < m; ++a) {
        const auto attr = static_cast<relation::AttributeId>(a);
        if (rel.At(i, attr) == rel.At(j, attr)) ag = ag.With(attr);
      }
      seen.insert(ag);
    }
  }
  return {seen.begin(), seen.end()};
}

util::Result<std::vector<FunctionalDependency>> Fdep::Mine(
    const relation::Relation& rel, const FdepOptions& options) {
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();
  if (n > options.max_tuples) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "FDEP pair scan on %zu tuples exceeds max_tuples=%zu; use Tane",
        n, options.max_tuples));
  }
  const std::vector<AttributeSet> agree = AgreeSets(rel);
  const AttributeSet full = AttributeSet::Full(m);

  std::vector<FunctionalDependency> fds;
  for (size_t a = 0; a < m; ++a) {
    const auto attr = static_cast<relation::AttributeId>(a);
    // Difference sets for RHS `attr`: complements of agree-sets that
    // disagree on attr (minus attr itself).
    std::vector<AttributeSet> difference;
    for (AttributeSet ag : agree) {
      if (!ag.Contains(attr)) {
        difference.push_back(full.Minus(ag).Without(attr));
      }
    }
    // An empty difference set means some pair disagrees on attr alone
    // while agreeing everywhere else — no LHS can work... except that an
    // empty difference set arises only from ag = R \ {attr}, which indeed
    // invalidates every candidate LHS.
    bool impossible = false;
    for (const AttributeSet& d : difference) {
      if (d.Empty()) {
        impossible = true;
        break;
      }
    }
    if (impossible) continue;
    if (difference.empty()) {
      // attr is constant across all tuples. Suppressed for the empty
      // relation, where nothing is worth reporting.
      if (n >= 1) {
        if (options.min_lhs == 0) {
          fds.push_back({AttributeSet(), AttributeSet::Single(attr)});
        } else {
          // Minimal LHSs of size >= 1 are all singletons.
          for (relation::AttributeId b : full.Without(attr).ToList()) {
            fds.push_back(
                {AttributeSet::Single(b), AttributeSet::Single(attr)});
          }
        }
      }
      continue;
    }
    const std::vector<AttributeSet> minimal_difference =
        MinimizeSets(std::move(difference));
    std::vector<AttributeSet> hitting;
    FindMinimalHittingSets(minimal_difference, full.Without(attr),
                           AttributeSet(), &hitting);
    // The DFS can emit non-minimal sets on some branch orders; filter.
    for (AttributeSet lhs : MinimizeSets(std::move(hitting))) {
      fds.push_back({lhs, AttributeSet::Single(attr)});
    }
  }
  SortCanonically(&fds);
  return fds;
}

}  // namespace limbo::fd
