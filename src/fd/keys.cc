#include "fd/keys.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "fd/partition.h"

namespace limbo::fd {

util::Result<std::vector<AttributeSet>> MineMinimalKeys(
    const relation::Relation& rel, const KeyMinerOptions& options) {
  std::vector<AttributeSet> keys;
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();
  if (m == 0) return keys;
  if (n <= 1) {
    // Every attribute set (even the empty one, represented here by each
    // singleton) is trivially a key; report the canonical minimal answer.
    for (size_t a = 0; a < m; ++a) {
      keys.push_back(AttributeSet::Single(static_cast<uint32_t>(a)));
    }
    return keys;
  }
  const size_t max_size = options.max_size == 0 ? m : options.max_size;

  std::unordered_map<AttributeSet, StrippedPartition> level;
  for (size_t a = 0; a < m; ++a) {
    const auto attr = static_cast<relation::AttributeId>(a);
    StrippedPartition p = StrippedPartition::ForAttribute(rel, attr);
    if (p.IsSuperkey()) {
      keys.push_back(AttributeSet::Single(attr));
    } else {
      level.emplace(AttributeSet::Single(attr), std::move(p));
    }
  }

  size_t ell = 1;
  while (!level.empty() && ell < max_size) {
    // Prefix join; candidates containing a known key are never generated
    // because keys were removed from the level when found.
    std::vector<AttributeSet> members;
    for (const auto& [x, p] : level) members.push_back(x);
    std::sort(members.begin(), members.end());
    std::unordered_set<AttributeSet> alive(members.begin(), members.end());
    std::unordered_map<AttributeSet, std::vector<AttributeSet>> by_prefix;
    for (AttributeSet x : members) {
      const auto top =
          static_cast<relation::AttributeId>(63 - std::countl_zero(x.bits()));
      by_prefix[x.Without(top)].push_back(x);
    }
    std::unordered_map<AttributeSet, StrippedPartition> next;
    for (auto& [prefix, group] : by_prefix) {
      std::sort(group.begin(), group.end());
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          const AttributeSet z = group[i].Union(group[j]);
          bool all_alive = true;
          for (relation::AttributeId a : z.ToList()) {
            if (!alive.contains(z.Without(a))) {
              all_alive = false;
              break;
            }
          }
          if (!all_alive) continue;
          StrippedPartition p = StrippedPartition::Product(
              level.at(group[i]), level.at(group[j]), n);
          if (p.IsSuperkey()) {
            keys.push_back(z);
          } else {
            next.emplace(z, std::move(p));
          }
        }
      }
    }
    level = std::move(next);
    ++ell;
  }

  std::sort(keys.begin(), keys.end());
  return keys;
}

bool ViolatesBcnf(const FunctionalDependency& f,
                  const std::vector<AttributeSet>& minimal_keys) {
  if (f.rhs.IsSubsetOf(f.lhs)) return false;  // trivial
  for (AttributeSet key : minimal_keys) {
    if (key.IsSubsetOf(f.lhs)) return false;  // LHS is a superkey
  }
  return true;
}

}  // namespace limbo::fd
