#ifndef LIMBO_FD_KEYS_H_
#define LIMBO_FD_KEYS_H_

#include <vector>

#include "fd/fd.h"
#include "util/result.h"

namespace limbo::fd {

struct KeyMinerOptions {
  /// Bound on key width explored (0 = up to m attributes).
  size_t max_size = 0;
};

/// All minimal candidate keys of `rel` (attribute sets X whose projection
/// is duplicate-free and no proper subset of which is). Levelwise over
/// stripped partitions with superset pruning.
util::Result<std::vector<AttributeSet>> MineMinimalKeys(
    const relation::Relation& rel,
    const KeyMinerOptions& options = KeyMinerOptions());

/// True iff the (holding) FD X → Y violates BCNF given the relation's
/// minimal keys: the FD is non-trivial and X is not a superkey. The
/// decomposition tooling uses this to tell *which* anchored FDs justify
/// a normalization step.
bool ViolatesBcnf(const FunctionalDependency& f,
                  const std::vector<AttributeSet>& minimal_keys);

}  // namespace limbo::fd

#endif  // LIMBO_FD_KEYS_H_
