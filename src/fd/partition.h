#ifndef LIMBO_FD_PARTITION_H_
#define LIMBO_FD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "relation/relation.h"

namespace limbo::fd {

/// A *stripped partition* (Huhtala et al., TANE): the equivalence classes
/// of tuples under "agree on attribute set X", with singleton classes
/// removed. The full-partition class count is recoverable as
///   |π| = NumClasses() + (n - CoveredTuples()).
class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// Partition of `rel` under a single attribute.
  static StrippedPartition ForAttribute(const relation::Relation& rel,
                                        relation::AttributeId a);

  /// Product π_a · π_b — the partition of the union of the underlying
  /// attribute sets. `n` is the relation's tuple count.
  static StrippedPartition Product(const StrippedPartition& a,
                                   const StrippedPartition& b, size_t n);

  const std::vector<std::vector<relation::TupleId>>& classes() const {
    return classes_;
  }
  size_t NumClasses() const { return classes_.size(); }
  size_t CoveredTuples() const { return covered_; }

  /// n - |π_full|; two partitions over the same relation are equal as
  /// full partitions iff one refines the other and their ranks agree.
  /// TANE's validity test X→A iff |π_X| = |π_{X∪A}| becomes
  /// Rank(X) == Rank(X∪A).
  size_t Rank() const { return covered_ - classes_.size(); }

  /// True iff every tuple is alone in its class (X is a superkey).
  bool IsSuperkey() const { return classes_.empty(); }

 private:
  std::vector<std::vector<relation::TupleId>> classes_;
  size_t covered_ = 0;
};

}  // namespace limbo::fd

#endif  // LIMBO_FD_PARTITION_H_
