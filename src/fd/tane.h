#ifndef LIMBO_FD_TANE_H_
#define LIMBO_FD_TANE_H_

#include <vector>

#include "fd/fd.h"
#include "util/result.h"

namespace limbo::fd {

/// TANE (Huhtala, Kärkkäinen, Porkka, Toivonen, 1999): levelwise discovery
/// of minimal exact FDs using stripped partitions and C+ candidate-set
/// pruning. Scales with the number of *valid small LHSs* rather than with
/// n^2, so it is the miner of choice for the paper's 35k–50k tuple DBLP
/// partitions (the paper notes "Other methods could also be used").
///
/// Returns exactly the same minimal-FD set as Fdep::Mine on any input
/// (a property the test suite checks).
struct TaneOptions {
  /// Bound on LHS size (lattice level); dependencies that need a wider
  /// LHS are not reported. 0 means "no bound".
  size_t max_lhs = 0;
  /// Minimum LHS size; see FdepOptions::min_lhs. With 1, constant
  /// attributes yield [B] → A for every B instead of ∅ → A.
  size_t min_lhs = 0;
};

class Tane {
 public:
  static util::Result<std::vector<FunctionalDependency>> Mine(
      const relation::Relation& rel, const TaneOptions& options = TaneOptions());
};

}  // namespace limbo::fd

#endif  // LIMBO_FD_TANE_H_
