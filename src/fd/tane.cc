#include "fd/tane.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "fd/partition.h"

namespace limbo::fd {

namespace {

using PartitionMap = std::unordered_map<AttributeSet, StrippedPartition>;
using CPlusMap = std::unordered_map<AttributeSet, AttributeSet>;

/// Largest attribute of a non-empty set.
relation::AttributeId MaxAttribute(AttributeSet x) {
  return static_cast<relation::AttributeId>(63 - std::countl_zero(x.bits()));
}

}  // namespace

util::Result<std::vector<FunctionalDependency>> Tane::Mine(
    const relation::Relation& rel, const TaneOptions& options) {
  std::vector<FunctionalDependency> fds;
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();
  if (n < 1 || m == 0) return fds;

  const AttributeSet full = AttributeSet::Full(m);
  const size_t rank_of_empty = n - 1;  // π_∅ is one class of n tuples

  // Level 1 setup.
  std::vector<AttributeSet> level;
  PartitionMap partitions;
  for (size_t a = 0; a < m; ++a) {
    const auto attr = static_cast<relation::AttributeId>(a);
    const AttributeSet x = AttributeSet::Single(attr);
    level.push_back(x);
    partitions.emplace(x, StrippedPartition::ForAttribute(rel, attr));
  }
  CPlusMap cplus_prev;  // C+ of level ℓ-1
  cplus_prev.emplace(AttributeSet(), full);

  size_t ell = 1;
  while (!level.empty()) {
    // --- COMPUTE_DEPENDENCIES ---
    CPlusMap cplus;
    for (AttributeSet x : level) {
      AttributeSet c = full;
      for (relation::AttributeId a : x.ToList()) {
        auto it = cplus_prev.find(x.Without(a));
        // A missing subset means it was pruned with C+ = ∅.
        c = c.Intersect(it == cplus_prev.end() ? AttributeSet() : it->second);
      }
      cplus.emplace(x, c);
    }
    for (AttributeSet x : level) {
      AttributeSet& cx = cplus[x];
      const StrippedPartition& px = partitions.at(x);
      for (relation::AttributeId a : x.Intersect(cx).ToList()) {
        const AttributeSet lhs = x.Without(a);
        if (lhs.Count() < options.min_lhs) continue;
        const size_t lhs_rank = lhs.Empty()
                                    ? rank_of_empty
                                    : partitions.at(lhs).Rank();
        if (lhs_rank == px.Rank()) {
          fds.push_back({lhs, AttributeSet::Single(a)});
          cx = cx.Without(a);
          cx = cx.Minus(full.Minus(x));
        }
      }
    }

    // --- PRUNE ---
    std::vector<AttributeSet> pruned_level;
    for (AttributeSet x : level) {
      const AttributeSet cx = cplus[x];
      if (cx.Empty()) continue;
      if (partitions.at(x).IsSuperkey()) {
        for (relation::AttributeId a : cx.Minus(x).ToList()) {
          // X → A is minimal iff A survives in every C+(X ∪ {A} \ {B}).
          // When a probe set was never generated (its own subsets were
          // pruned as keys earlier), the C+ test is inconclusive; fall
          // back to verifying one-step reducibility directly against the
          // relation (monotonicity makes one step sufficient).
          bool minimal = true;
          bool have_all_probes = true;
          for (relation::AttributeId b : x.ToList()) {
            const AttributeSet probe = x.With(a).Without(b);
            auto it = cplus.find(probe);
            if (it == cplus.end()) {
              have_all_probes = false;
              break;
            }
            if (!it->second.Contains(a)) {
              minimal = false;
              break;
            }
          }
          if (!have_all_probes) {
            minimal = true;
            for (relation::AttributeId b : x.ToList()) {
              if (Holds(rel, {x.Without(b), AttributeSet::Single(a)})) {
                minimal = false;
                break;
              }
            }
          }
          if (minimal) fds.push_back({x, AttributeSet::Single(a)});
        }
        continue;  // superkeys never extend upward
      }
      pruned_level.push_back(x);
    }

    if (options.max_lhs != 0 && ell >= options.max_lhs) break;

    // --- GENERATE_NEXT_LEVEL (prefix join) ---
    std::unordered_set<AttributeSet> level_set(pruned_level.begin(),
                                               pruned_level.end());
    std::unordered_map<AttributeSet, std::vector<AttributeSet>> by_prefix;
    for (AttributeSet x : pruned_level) {
      by_prefix[x.Without(MaxAttribute(x))].push_back(x);
    }
    std::vector<AttributeSet> next_level;
    PartitionMap next_partitions;
    for (auto& [prefix, members] : by_prefix) {
      std::sort(members.begin(), members.end());
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const AttributeSet z = members[i].Union(members[j]);
          bool all_subsets_alive = true;
          for (relation::AttributeId a : z.ToList()) {
            if (!level_set.contains(z.Without(a))) {
              all_subsets_alive = false;
              break;
            }
          }
          if (!all_subsets_alive) continue;
          next_partitions.emplace(
              z, StrippedPartition::Product(partitions.at(members[i]),
                                            partitions.at(members[j]), n));
          next_level.push_back(z);
        }
      }
    }
    // Keep the previous level's partitions alive for next iteration's
    // validity tests (π_{X\{A}} lookups), then rotate.
    PartitionMap merged = std::move(next_partitions);
    for (AttributeSet x : pruned_level) {
      merged.emplace(x, std::move(partitions.at(x)));
    }
    partitions = std::move(merged);
    cplus_prev = std::move(cplus);
    level = std::move(next_level);
    std::sort(level.begin(), level.end());
    ++ell;
  }

  SortCanonically(&fds);
  return fds;
}

}  // namespace limbo::fd
