#include "fd/approx.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "fd/partition.h"
#include "util/strings.h"

namespace limbo::fd {

namespace {

using relation::AttributeId;
using relation::TupleId;

/// g3 error of X → A from the stripped partitions of X and X ∪ {A}:
/// within every X-class keep the largest subgroup agreeing on A; all
/// X-singletons survive for free.
double G3FromPartitions(const StrippedPartition& px,
                        const StrippedPartition& pxa, size_t n) {
  if (n == 0) return 0.0;
  // Tuple -> class id in π_{X∪A}; tuples outside stripped classes are
  // singletons there.
  std::vector<int32_t> xa_class(n, -1);
  for (size_t c = 0; c < pxa.classes().size(); ++c) {
    for (TupleId t : pxa.classes()[c]) xa_class[t] = static_cast<int32_t>(c);
  }
  size_t kept = n - px.CoveredTuples();  // X-singletons
  std::unordered_map<int32_t, size_t> counts;
  for (const auto& cls : px.classes()) {
    counts.clear();
    size_t best = 0;
    for (TupleId t : cls) {
      const int32_t c = xa_class[t];
      if (c < 0) {
        best = std::max<size_t>(best, 1);  // XA-singleton
      } else {
        best = std::max(best, ++counts[c]);
      }
    }
    kept += best;
  }
  return 1.0 - static_cast<double>(kept) / static_cast<double>(n);
}

}  // namespace

util::Result<std::vector<ApproximateFd>> MineApproximateFds(
    const relation::Relation& rel, const ApproxMinerOptions& options) {
  if (options.epsilon < 0.0 || options.epsilon >= 1.0) {
    return util::Status::InvalidArgument("epsilon must be in [0, 1)");
  }
  std::vector<ApproximateFd> found;
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();
  if (n < 1 || m == 0) return found;

  // Single-attribute partitions.
  std::vector<StrippedPartition> single(m);
  for (size_t a = 0; a < m; ++a) {
    single[a] =
        StrippedPartition::ForAttribute(rel, static_cast<AttributeId>(a));
  }

  // Minimal qualifying LHSs per RHS attribute (for minimality pruning).
  std::vector<std::vector<AttributeSet>> minimal_lhs(m);
  auto dominated = [&](AttributeSet x, AttributeId a) {
    for (AttributeSet seen : minimal_lhs[a]) {
      if (seen.IsSubsetOf(x)) return true;
    }
    return false;
  };

  // Level 0: ∅ → A qualifies when removing all-but-the-largest A-group
  // is cheap enough.
  if (options.min_lhs == 0) {
    for (size_t a = 0; a < m; ++a) {
      size_t largest = 0;
      size_t covered = 0;
      for (const auto& cls : single[a].classes()) {
        largest = std::max(largest, cls.size());
        covered += cls.size();
      }
      largest = std::max<size_t>(largest, covered < n ? 1 : 0);
      const double g3 = 1.0 - static_cast<double>(largest) /
                                  static_cast<double>(n);
      if (g3 <= options.epsilon) {
        found.push_back({{AttributeSet(), AttributeSet::Single(
                                              static_cast<AttributeId>(a))},
                         g3});
        minimal_lhs[a].push_back(AttributeSet());
      }
    }
  }

  // Levelwise over LHS sets.
  std::unordered_map<AttributeSet, StrippedPartition> level;
  for (size_t a = 0; a < m; ++a) {
    level.emplace(AttributeSet::Single(static_cast<AttributeId>(a)),
                  single[a]);
  }
  size_t ell = 1;
  while (!level.empty() && ell <= options.max_lhs) {
    if (ell >= options.min_lhs) {
      for (const auto& [x, px] : level) {
        for (size_t a = 0; a < m; ++a) {
          const auto attr = static_cast<AttributeId>(a);
          if (x.Contains(attr) || dominated(x, attr)) continue;
          const StrippedPartition pxa =
              StrippedPartition::Product(px, single[a], n);
          const double g3 = G3FromPartitions(px, pxa, n);
          if (g3 <= options.epsilon) {
            found.push_back({{x, AttributeSet::Single(attr)}, g3});
            minimal_lhs[a].push_back(x);
          }
        }
      }
    }
    // Next level: prefix join (all subsets present in the current level).
    std::unordered_map<AttributeSet, StrippedPartition> next;
    std::vector<AttributeSet> keys;
    keys.reserve(level.size());
    for (const auto& [x, px] : level) keys.push_back(x);
    std::sort(keys.begin(), keys.end());
    std::unordered_map<AttributeSet, std::vector<AttributeSet>> by_prefix;
    for (AttributeSet x : keys) {
      const auto max_attr = static_cast<AttributeId>(
          63 - std::countl_zero(x.bits()));
      by_prefix[x.Without(max_attr)].push_back(x);
    }
    std::unordered_set<AttributeSet> alive(keys.begin(), keys.end());
    for (auto& [prefix, members] : by_prefix) {
      std::sort(members.begin(), members.end());
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const AttributeSet z = members[i].Union(members[j]);
          bool ok = true;
          for (AttributeId a : z.ToList()) {
            if (!alive.contains(z.Without(a))) {
              ok = false;
              break;
            }
          }
          if (ok) {
            next.emplace(z, StrippedPartition::Product(
                                level.at(members[i]), level.at(members[j]),
                                n));
          }
        }
      }
    }
    level = std::move(next);
    ++ell;
  }

  std::sort(found.begin(), found.end(),
            [](const ApproximateFd& a, const ApproximateFd& b) {
              if (a.fd.lhs.bits() != b.fd.lhs.bits()) {
                return a.fd.lhs.bits() < b.fd.lhs.bits();
              }
              return a.fd.rhs.bits() < b.fd.rhs.bits();
            });
  return found;
}

}  // namespace limbo::fd
