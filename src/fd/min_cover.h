#ifndef LIMBO_FD_MIN_COVER_H_
#define LIMBO_FD_MIN_COVER_H_

#include <vector>

#include "fd/fd.h"

namespace limbo::fd {

/// Minimum (canonical) cover of an FD set, after Maier [16]:
///  1. split right-hand sides to single attributes,
///  2. remove extraneous LHS attributes (left-reduction),
///  3. remove redundant FDs (each implied by the rest),
///  4. optionally merge FDs with identical LHS back into one multi-RHS FD.
///
/// The result is equivalent to the input (fd::Equivalent verifies this in
/// tests) and deterministic for a given input order.
std::vector<FunctionalDependency> MinimumCover(
    std::vector<FunctionalDependency> fds, bool merge_same_lhs = true);

}  // namespace limbo::fd

#endif  // LIMBO_FD_MIN_COVER_H_
