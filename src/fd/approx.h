#ifndef LIMBO_FD_APPROX_H_
#define LIMBO_FD_APPROX_H_

#include <vector>

#include "fd/fd.h"
#include "util/result.h"

namespace limbo::fd {

/// An approximate functional dependency with its g3 error — the fraction
/// of tuples that must be removed for the dependency to hold exactly
/// (Huhtala et al. [15], the measure the paper contrasts its value-based
/// approximation notion against).
struct ApproximateFd {
  FunctionalDependency fd;
  double g3 = 0.0;
};

struct ApproxMinerOptions {
  /// Report X → A when g3(X → A) <= epsilon.
  double epsilon = 0.05;
  /// Bound on LHS size; approximate mining explores more of the lattice
  /// than exact TANE (no superkey pruning applies), so a small default
  /// keeps the search tractable.
  size_t max_lhs = 3;
  /// Minimum LHS size (see TaneOptions::min_lhs).
  size_t min_lhs = 0;
};

/// Levelwise discovery of *minimal* approximate FDs: X → A is reported
/// iff g3(X → A) <= epsilon and no proper subset of X already qualifies.
/// Errors are computed from stripped partitions (tests cross-check them
/// against fd::G3Error). epsilon = 0 reduces to the exact minimal FDs of
/// Tane/Fdep restricted to max_lhs.
util::Result<std::vector<ApproximateFd>> MineApproximateFds(
    const relation::Relation& rel,
    const ApproxMinerOptions& options = ApproxMinerOptions());

}  // namespace limbo::fd

#endif  // LIMBO_FD_APPROX_H_
