#ifndef LIMBO_FD_ATTRIBUTE_SET_H_
#define LIMBO_FD_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "relation/schema.h"

namespace limbo::fd {

/// A set of attribute ids as a 64-bit bitmask (schemas are capped at 64
/// attributes). Value type, cheap to copy; all set algebra is O(1).
class AttributeSet {
 public:
  constexpr AttributeSet() : bits_(0) {}
  constexpr explicit AttributeSet(uint64_t bits) : bits_(bits) {}

  /// Singleton {a}.
  static constexpr AttributeSet Single(relation::AttributeId a) {
    return AttributeSet(uint64_t{1} << a);
  }

  /// The full set {0, ..., m-1}.
  static constexpr AttributeSet Full(size_t m) {
    return AttributeSet(m >= 64 ? ~uint64_t{0} : (uint64_t{1} << m) - 1);
  }

  static AttributeSet FromList(const std::vector<relation::AttributeId>& ids) {
    AttributeSet s;
    for (relation::AttributeId a : ids) s.bits_ |= uint64_t{1} << a;
    return s;
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr size_t Count() const { return std::popcount(bits_); }

  constexpr bool Contains(relation::AttributeId a) const {
    return (bits_ >> a) & 1;
  }
  constexpr bool IsSubsetOf(AttributeSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  constexpr AttributeSet Union(AttributeSet o) const {
    return AttributeSet(bits_ | o.bits_);
  }
  constexpr AttributeSet Intersect(AttributeSet o) const {
    return AttributeSet(bits_ & o.bits_);
  }
  constexpr AttributeSet Minus(AttributeSet o) const {
    return AttributeSet(bits_ & ~o.bits_);
  }
  constexpr AttributeSet With(relation::AttributeId a) const {
    return AttributeSet(bits_ | (uint64_t{1} << a));
  }
  constexpr AttributeSet Without(relation::AttributeId a) const {
    return AttributeSet(bits_ & ~(uint64_t{1} << a));
  }

  /// Members in increasing order.
  std::vector<relation::AttributeId> ToList() const {
    std::vector<relation::AttributeId> out;
    out.reserve(Count());
    uint64_t b = bits_;
    while (b != 0) {
      out.push_back(static_cast<relation::AttributeId>(std::countr_zero(b)));
      b &= b - 1;
    }
    return out;
  }

  /// "[A,B,C]" using schema names.
  std::string ToString(const relation::Schema& schema) const {
    std::string out = "[";
    bool first = true;
    for (relation::AttributeId a : ToList()) {
      if (!first) out += ",";
      out += schema.Name(a);
      first = false;
    }
    out += "]";
    return out;
  }

  friend constexpr bool operator==(AttributeSet a, AttributeSet b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator<(AttributeSet a, AttributeSet b) {
    return a.bits_ < b.bits_;
  }

 private:
  uint64_t bits_;
};

}  // namespace limbo::fd

template <>
struct std::hash<limbo::fd::AttributeSet> {
  size_t operator()(limbo::fd::AttributeSet s) const {
    return std::hash<uint64_t>()(s.bits());
  }
};

#endif  // LIMBO_FD_ATTRIBUTE_SET_H_
