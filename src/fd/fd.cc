#include "fd/fd.h"

#include <algorithm>
#include <unordered_map>

namespace limbo::fd {

namespace {

/// FNV-1a hash of the row's value ids restricted to `attrs`.
uint64_t HashRestricted(const relation::Relation& rel, relation::TupleId t,
                        const std::vector<relation::AttributeId>& attrs) {
  uint64_t h = 1469598103934665603ULL;
  for (relation::AttributeId a : attrs) {
    h ^= rel.At(t, a);
    h *= 1099511628211ULL;
  }
  return h;
}

bool EqualRestricted(const relation::Relation& rel, relation::TupleId x,
                     relation::TupleId y,
                     const std::vector<relation::AttributeId>& attrs) {
  for (relation::AttributeId a : attrs) {
    if (rel.At(x, a) != rel.At(y, a)) return false;
  }
  return true;
}

/// Groups tuple ids by their LHS projection (open hashing on the hash of
/// the projected row, verified by full comparison).
std::vector<std::vector<relation::TupleId>> GroupByLhs(
    const relation::Relation& rel,
    const std::vector<relation::AttributeId>& lhs) {
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<std::vector<relation::TupleId>> groups;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    const uint64_t h = HashRestricted(rel, t, lhs);
    auto& bucket = buckets[h];
    bool placed = false;
    for (size_t gi : bucket) {
      if (EqualRestricted(rel, groups[gi].front(), t, lhs)) {
        groups[gi].push_back(t);
        placed = true;
        break;
      }
    }
    if (!placed) {
      bucket.push_back(groups.size());
      groups.push_back({t});
    }
  }
  return groups;
}

}  // namespace

bool Holds(const relation::Relation& rel, const FunctionalDependency& f) {
  const auto lhs = f.lhs.ToList();
  const auto rhs = f.rhs.ToList();
  if (rhs.empty()) return true;
  for (const auto& group : GroupByLhs(rel, lhs)) {
    const relation::TupleId first = group.front();
    for (size_t i = 1; i < group.size(); ++i) {
      if (!EqualRestricted(rel, first, group[i], rhs)) return false;
    }
  }
  return true;
}

double G3Error(const relation::Relation& rel, const FunctionalDependency& f) {
  const size_t n = rel.NumTuples();
  if (n == 0) return 0.0;
  const auto lhs = f.lhs.ToList();
  const auto rhs = f.rhs.ToList();
  if (rhs.empty()) return 0.0;
  // For each LHS group, keep the largest sub-group that agrees on RHS;
  // the rest must be removed.
  size_t kept = 0;
  for (const auto& group : GroupByLhs(rel, lhs)) {
    std::unordered_map<uint64_t, std::vector<std::pair<relation::TupleId, size_t>>>
        rhs_counts;
    size_t best = 0;
    for (relation::TupleId t : group) {
      const uint64_t h = HashRestricted(rel, t, rhs);
      auto& bucket = rhs_counts[h];
      bool found = false;
      for (auto& [rep, count] : bucket) {
        if (EqualRestricted(rel, rep, t, rhs)) {
          ++count;
          best = std::max(best, count);
          found = true;
          break;
        }
      }
      if (!found) {
        bucket.push_back({t, 1});
        best = std::max<size_t>(best, 1);
      }
    }
    kept += best;
  }
  return static_cast<double>(n - kept) / static_cast<double>(n);
}

void SortCanonically(std::vector<FunctionalDependency>* fds) {
  std::sort(fds->begin(), fds->end(),
            [](const FunctionalDependency& a, const FunctionalDependency& b) {
              if (a.lhs.bits() != b.lhs.bits()) {
                return a.lhs.bits() < b.lhs.bits();
              }
              return a.rhs.bits() < b.rhs.bits();
            });
}

}  // namespace limbo::fd
