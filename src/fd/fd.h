#ifndef LIMBO_FD_FD_H_
#define LIMBO_FD_FD_H_

#include <string>
#include <vector>

#include "fd/attribute_set.h"
#include "relation/relation.h"

namespace limbo::fd {

/// A functional dependency X → Y. Miners emit single-attribute RHS;
/// the minimum cover and FD-RANK may collapse same-LHS FDs into multi-
/// attribute RHS.
struct FunctionalDependency {
  AttributeSet lhs;
  AttributeSet rhs;

  bool operator==(const FunctionalDependency& o) const {
    return lhs == o.lhs && rhs == o.rhs;
  }

  /// "[X1,X2]->[Y]" with schema names.
  std::string ToString(const relation::Schema& schema) const {
    return lhs.ToString(schema) + "->" + rhs.ToString(schema);
  }
};

/// True iff X → Y holds in `rel` (exactly: tuples agreeing on X agree
/// on Y). An empty LHS means Y must be constant.
bool Holds(const relation::Relation& rel, const FunctionalDependency& f);

/// Fraction of tuples that must be removed for X → Y to hold (the g3
/// approximation error of Huhtala et al.); 0.0 iff Holds().
double G3Error(const relation::Relation& rel, const FunctionalDependency& f);

/// Sorts FDs canonically (by LHS bits, then RHS bits) for stable output.
void SortCanonically(std::vector<FunctionalDependency>* fds);

}  // namespace limbo::fd

#endif  // LIMBO_FD_FD_H_
