#include "fd/mvd.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace limbo::fd {

namespace {

using relation::AttributeId;
using relation::TupleId;

/// Hash of a row restricted to the attributes in `attrs`.
uint64_t HashRestricted(const relation::Relation& rel, TupleId t,
                        const std::vector<AttributeId>& attrs) {
  uint64_t h = 1469598103934665603ULL;
  for (AttributeId a : attrs) {
    h ^= rel.At(t, a);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Groups tuples by the X-projection (hash-keyed; hash collisions across
/// different X-values would only make the cross-product test *stricter*
/// on merged groups, so for exactness we verify with a secondary mix).
std::unordered_map<uint64_t, std::vector<TupleId>> GroupBy(
    const relation::Relation& rel, const std::vector<AttributeId>& attrs) {
  std::unordered_map<uint64_t, std::vector<TupleId>> groups;
  for (TupleId t = 0; t < rel.NumTuples(); ++t) {
    // Double hashing (two independent seeds) makes accidental collisions
    // across distinct projections astronomically unlikely.
    uint64_t h = HashRestricted(rel, t, attrs);
    uint64_t h2 = 0x9E3779B97F4A7C15ULL;
    for (AttributeId a : attrs) {
      h2 = (h2 ^ (rel.At(t, a) + 0x9E3779B9u)) * 0xC2B2AE3D27D4EB4FULL;
    }
    groups[h * 0x100000001B3ULL ^ h2].push_back(t);
  }
  return groups;
}

}  // namespace

bool HoldsMvd(const relation::Relation& rel,
              const MultiValuedDependency& mvd) {
  const size_t m = rel.NumAttributes();
  const AttributeSet all = AttributeSet::Full(m);
  const AttributeSet y = mvd.rhs.Minus(mvd.lhs);
  const AttributeSet z = all.Minus(mvd.lhs).Minus(y);
  if (y.Empty() || z.Empty()) return true;  // trivial MVD

  const std::vector<AttributeId> x_list = mvd.lhs.ToList();
  const std::vector<AttributeId> y_list = y.ToList();
  const std::vector<AttributeId> z_list = z.ToList();

  for (const auto& [key, group] : GroupBy(rel, x_list)) {
    // Within the group: distinct Y-values, distinct Z-values, distinct
    // (Y,Z)-pairs. Cross product <=> |YZ| == |Y| * |Z|.
    std::unordered_set<uint64_t> ys;
    std::unordered_set<uint64_t> zs;
    std::unordered_set<uint64_t> yzs;
    for (TupleId t : group) {
      const uint64_t hy = HashRestricted(rel, t, y_list);
      const uint64_t hz = HashRestricted(rel, t, z_list);
      ys.insert(hy);
      zs.insert(hz);
      yzs.insert(hy * 0x100000001B3ULL ^ hz);
    }
    if (yzs.size() != ys.size() * zs.size()) return false;
  }
  return true;
}

util::Result<std::vector<MultiValuedDependency>> MineMvds(
    const relation::Relation& rel, const MvdMinerOptions& options) {
  std::vector<MultiValuedDependency> found;
  const size_t m = rel.NumAttributes();
  if (rel.NumTuples() < 2 || m < 3) return found;  // no non-trivial MVDs

  // Enumerate LHS sets up to max_lhs (m <= 64, levels are small for the
  // default bound), minimal-LHS pruning per RHS attribute.
  std::vector<std::vector<AttributeSet>> minimal_lhs(m);
  auto dominated = [&](AttributeSet x, size_t a) {
    for (AttributeSet seen : minimal_lhs[a]) {
      if (seen.IsSubsetOf(x)) return true;
    }
    return false;
  };

  std::vector<AttributeSet> level = {AttributeSet()};
  for (size_t ell = 0; ell <= options.max_lhs; ++ell) {
    for (AttributeSet x : level) {
      for (size_t a = 0; a < m; ++a) {
        const auto attr = static_cast<AttributeId>(a);
        if (x.Contains(attr) || dominated(x, a)) continue;
        // Need a non-empty complement Z.
        if (x.Count() + 2 > m) continue;
        const MultiValuedDependency candidate{x, AttributeSet::Single(attr)};
        if (!HoldsMvd(rel, candidate)) continue;
        if (options.skip_implied_by_fd &&
            Holds(rel, {x, AttributeSet::Single(attr)})) {
          // Implied by the FD X → A; still blocks supersets from being
          // reported as minimal.
          minimal_lhs[a].push_back(x);
          continue;
        }
        found.push_back(candidate);
        minimal_lhs[a].push_back(x);
      }
    }
    if (ell == options.max_lhs) break;
    // Next level: extend each X by one attribute (dedup).
    std::unordered_set<AttributeSet> next;
    for (AttributeSet x : level) {
      for (size_t a = 0; a < m; ++a) {
        const auto attr = static_cast<AttributeId>(a);
        if (!x.Contains(attr)) next.insert(x.With(attr));
      }
    }
    level.assign(next.begin(), next.end());
    std::sort(level.begin(), level.end());
  }

  std::sort(found.begin(), found.end(),
            [](const MultiValuedDependency& a, const MultiValuedDependency& b) {
              if (a.lhs.bits() != b.lhs.bits()) {
                return a.lhs.bits() < b.lhs.bits();
              }
              return a.rhs.bits() < b.rhs.bits();
            });
  return found;
}

}  // namespace limbo::fd
