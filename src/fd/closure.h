#ifndef LIMBO_FD_CLOSURE_H_
#define LIMBO_FD_CLOSURE_H_

#include <vector>

#include "fd/fd.h"

namespace limbo::fd {

/// Attribute-set closure X+ under the FD set `fds` (textbook fixpoint).
AttributeSet Closure(AttributeSet x,
                     const std::vector<FunctionalDependency>& fds);

/// True iff `f` is implied by `fds` (f.rhs ⊆ closure of f.lhs).
bool Implies(const std::vector<FunctionalDependency>& fds,
             const FunctionalDependency& f);

/// True iff the two FD sets are equivalent (each implies every FD of the
/// other).
bool Equivalent(const std::vector<FunctionalDependency>& a,
                const std::vector<FunctionalDependency>& b);

}  // namespace limbo::fd

#endif  // LIMBO_FD_CLOSURE_H_
