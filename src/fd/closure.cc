#include "fd/closure.h"

namespace limbo::fd {

AttributeSet Closure(AttributeSet x,
                     const std::vector<FunctionalDependency>& fds) {
  AttributeSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& f : fds) {
      if (f.lhs.IsSubsetOf(closure) && !f.rhs.IsSubsetOf(closure)) {
        closure = closure.Union(f.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<FunctionalDependency>& fds,
             const FunctionalDependency& f) {
  return f.rhs.IsSubsetOf(Closure(f.lhs, fds));
}

bool Equivalent(const std::vector<FunctionalDependency>& a,
                const std::vector<FunctionalDependency>& b) {
  for (const FunctionalDependency& f : a) {
    if (!Implies(b, f)) return false;
  }
  for (const FunctionalDependency& f : b) {
    if (!Implies(a, f)) return false;
  }
  return true;
}

}  // namespace limbo::fd
