#include "fd/partition.h"

#include <algorithm>
#include <unordered_map>

namespace limbo::fd {

StrippedPartition StrippedPartition::ForAttribute(
    const relation::Relation& rel, relation::AttributeId a) {
  std::unordered_map<relation::ValueId, std::vector<relation::TupleId>> groups;
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    groups[rel.At(t, a)].push_back(t);
  }
  StrippedPartition out;
  for (auto& [value, tuples] : groups) {
    if (tuples.size() >= 2) {
      out.covered_ += tuples.size();
      out.classes_.push_back(std::move(tuples));
    }
  }
  // Deterministic order regardless of hash iteration.
  std::sort(out.classes_.begin(), out.classes_.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return out;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& a,
                                             const StrippedPartition& b,
                                             size_t n) {
  // Standard TANE probe-table product. `owner[t]` maps tuple t to its
  // class index in `a` (or -1).
  std::vector<int32_t> owner(n, -1);
  for (size_t i = 0; i < a.classes_.size(); ++i) {
    for (relation::TupleId t : a.classes_[i]) {
      owner[t] = static_cast<int32_t>(i);
    }
  }
  std::vector<std::vector<relation::TupleId>> bins(a.classes_.size());
  StrippedPartition out;
  for (const auto& cls : b.classes_) {
    // Scatter this b-class into per-a-class bins.
    for (relation::TupleId t : cls) {
      const int32_t o = owner[t];
      if (o >= 0) bins[o].push_back(t);
    }
    // Harvest bins with >= 2 members; clear the rest.
    for (relation::TupleId t : cls) {
      const int32_t o = owner[t];
      if (o < 0) continue;
      auto& bin = bins[o];
      if (bin.empty()) continue;  // already harvested or cleared
      if (bin.size() >= 2) {
        out.covered_ += bin.size();
        out.classes_.push_back(std::move(bin));
      }
      bin.clear();
    }
  }
  return out;
}

}  // namespace limbo::fd
