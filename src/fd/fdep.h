#ifndef LIMBO_FD_FDEP_H_
#define LIMBO_FD_FDEP_H_

#include <vector>

#include "fd/fd.h"
#include "util/result.h"

namespace limbo::fd {

/// FDEP (Savnik & Flach, 1993): bottom-up FD induction.
///
/// 1. The *negative cover* is computed by pairwise tuple comparison: every
///    pair (t_i, t_j) yields an agree-set ag(t_i, t_j); any X → A with
///    X ⊆ ag and A ∉ ag is invalid.
/// 2. The *positive cover* (minimal valid FDs) follows from the negative
///    cover: X → A is valid iff X ⊈ ag for every agree-set ag with A ∉ ag,
///    i.e. X hits every difference set R \ ag \ {A}. Minimal LHSs are the
///    minimal hitting sets, found by depth-first search (the paper's
///    "depth-first search ... used to test whether a functional dependency
///    holds and prune the search space").
///
/// Pairwise comparison is O(n^2 m); intended for relations up to a few
/// thousand tuples (the paper runs it on a 90-tuple relation). Use Tane
/// (tane.h) for larger inputs — both return the same minimal FD set.
struct FdepOptions {
  /// Safety valve on the O(n^2) pair scan.
  size_t max_tuples = 20000;
  /// Minimum LHS size. With the default 0, a constant attribute A yields
  /// ∅ → A; with 1, it yields [B] → A for every other attribute B —
  /// matching the behaviour of the original FDEP on the paper's NULL-
  /// saturated DBLP partitions (Table 5 reports [Volume]→[Journal], not
  /// ∅→[Journal]).
  size_t min_lhs = 0;
};

class Fdep {
 public:
  /// All minimal exact FDs (single-attribute RHS) holding in `rel`,
  /// canonically sorted.
  static util::Result<std::vector<FunctionalDependency>> Mine(
      const relation::Relation& rel, const FdepOptions& options = FdepOptions());

  /// The distinct agree-sets of `rel` (exposed for tests and for the
  /// paper's negative-cover discussion).
  static std::vector<AttributeSet> AgreeSets(const relation::Relation& rel);
};

}  // namespace limbo::fd

#endif  // LIMBO_FD_FDEP_H_
