#include "fd/min_cover.h"

#include <algorithm>
#include <map>

#include "fd/closure.h"

namespace limbo::fd {

std::vector<FunctionalDependency> MinimumCover(
    std::vector<FunctionalDependency> fds, bool merge_same_lhs) {
  // 1. Single-attribute RHS, trivial parts dropped.
  std::vector<FunctionalDependency> work;
  for (const FunctionalDependency& f : fds) {
    for (relation::AttributeId a : f.rhs.Minus(f.lhs).ToList()) {
      work.push_back({f.lhs, AttributeSet::Single(a)});
    }
  }
  SortCanonically(&work);
  work.erase(std::unique(work.begin(), work.end()), work.end());

  // 2. Left-reduction: X → A with B extraneous iff A ∈ (X \ B)+ under the
  // *current* full set.
  for (auto& f : work) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (relation::AttributeId b : f.lhs.ToList()) {
        const AttributeSet reduced = f.lhs.Without(b);
        if (f.rhs.IsSubsetOf(Closure(reduced, work))) {
          f.lhs = reduced;
          changed = true;
          break;
        }
      }
    }
  }
  SortCanonically(&work);
  work.erase(std::unique(work.begin(), work.end()), work.end());

  // 3. Drop redundant FDs: f is redundant iff implied by the others.
  std::vector<FunctionalDependency> kept;
  for (size_t i = 0; i < work.size(); ++i) {
    std::vector<FunctionalDependency> rest = kept;
    rest.insert(rest.end(), work.begin() + i + 1, work.end());
    if (!Implies(rest, work[i])) kept.push_back(work[i]);
  }

  if (!merge_same_lhs) return kept;

  // 4. Merge same-LHS FDs.
  std::map<AttributeSet, AttributeSet> merged;
  for (const FunctionalDependency& f : kept) {
    merged[f.lhs] = merged[f.lhs].Union(f.rhs);
  }
  std::vector<FunctionalDependency> out;
  out.reserve(merged.size());
  for (const auto& [lhs, rhs] : merged) out.push_back({lhs, rhs});
  return out;
}

}  // namespace limbo::fd
