#ifndef LIMBO_FD_MVD_H_
#define LIMBO_FD_MVD_H_

#include <vector>

#include "fd/fd.h"
#include "util/result.h"

namespace limbo::fd {

/// A multi-valued dependency X ↠ Y (with Z = R − X − Y implicitly the
/// complement): within every X-group, the Y-projection and Z-projection
/// combine as a full cross product. The paper cites MVD discovery
/// (Savnik & Flach [25]) as the other family of constraints a miner can
/// feed to its ranking.
struct MultiValuedDependency {
  AttributeSet lhs;
  AttributeSet rhs;

  bool operator==(const MultiValuedDependency& o) const {
    return lhs == o.lhs && rhs == o.rhs;
  }

  std::string ToString(const relation::Schema& schema) const {
    return lhs.ToString(schema) + "->>" + rhs.ToString(schema);
  }
};

/// True iff X ↠ Y holds in `rel` (cross-product test per X-group).
/// Trivial cases (Y ⊆ X, or X ∪ Y = R) hold by definition.
bool HoldsMvd(const relation::Relation& rel,
              const MultiValuedDependency& mvd);

struct MvdMinerOptions {
  /// Bound on the LHS size explored.
  size_t max_lhs = 2;
  /// Only single-attribute RHS are mined (Y = {A}); complements follow by
  /// the complementation rule X ↠ R − X − Y.
  bool skip_implied_by_fd = true;
};

/// Levelwise discovery of non-trivial MVDs X ↠ A with |X| <= max_lhs.
/// When `skip_implied_by_fd` is set, X ↠ A that follow from X → A are
/// suppressed (every FD is an MVD), leaving the genuinely multi-valued
/// structure.
util::Result<std::vector<MultiValuedDependency>> MineMvds(
    const relation::Relation& rel,
    const MvdMinerOptions& options = MvdMinerOptions());

}  // namespace limbo::fd

#endif  // LIMBO_FD_MVD_H_
