#include "schemes/entropy_oracle.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/status.h"

namespace limbo::schemes {

double EntropyFromCounts(std::vector<uint64_t> counts, uint64_t total) {
  if (total == 0) return 0.0;
  std::sort(counts.begin(), counts.end());
  double sum_clog = 0.0;
  for (uint64_t c : counts) {
    if (c == 0) continue;
    sum_clog += static_cast<double>(c) * std::log2(static_cast<double>(c));
  }
  const double n = static_cast<double>(total);
  double h = std::log2(n) - sum_clog / n;
  // Clamp the tiny negative residue a one-group distribution can leave
  // behind (log2(n) - n*log2(n)/n evaluated in floating point).
  return h < 0.0 ? 0.0 : h;
}

EntropyOracle::EntropyOracle(relation::RowSource& source,
                             const EntropyOracleOptions& options)
    : source_(&source),
      options_(options),
      pool_(options.threads),
      num_attributes_(source.schema().NumAttributes()) {
  if (options_.chunk_rows == 0) options_.chunk_rows = 4096;
}

util::Result<double> EntropyOracle::H(fd::AttributeSet x) {
  std::vector<fd::AttributeSet> one{x};
  LIMBO_ASSIGN_OR_RETURN(std::vector<double> hs, HBatch(one));
  return hs[0];
}

util::Result<std::vector<double>> EntropyOracle::HBatch(
    const std::vector<fd::AttributeSet>& sets) {
  std::vector<double> out(sets.size(), 0.0);
  // Resolve the memo (and the trivial empty set) first; collect the
  // distinct remainder for one counting pass.
  std::vector<fd::AttributeSet> missing;
  std::unordered_map<uint64_t, size_t> missing_index;
  std::vector<size_t> slot_of(sets.size(), SIZE_MAX);
  for (size_t i = 0; i < sets.size(); ++i) {
    const fd::AttributeSet x = sets[i];
    double h = 0.0;
    if (x.Empty()) {
      out[i] = 0.0;
    } else if (MemoGet(x, &h)) {
      out[i] = h;
      ++stats_.memo_hits;
      LIMBO_OBS_COUNT("schemes.oracle.memo_hits", 1);
    } else {
      auto [it, inserted] = missing_index.emplace(x.bits(), missing.size());
      if (inserted) missing.push_back(x);
      slot_of[i] = it->second;
    }
  }
  if (!missing.empty()) {
    std::vector<double> fresh(missing.size(), 0.0);
    // Bound peak memory: at most max_sets_per_pass private counting maps
    // live at once, at the price of extra streams over the source.
    const size_t stride = options_.max_sets_per_pass == 0
                              ? missing.size()
                              : options_.max_sets_per_pass;
    for (size_t lo = 0; lo < missing.size(); lo += stride) {
      const size_t n = std::min(stride, missing.size() - lo);
      util::Status st = CountPass(missing.data() + lo, n, fresh.data() + lo);
      if (!st.ok()) return st;
    }
    for (size_t s = 0; s < missing.size(); ++s) MemoPut(missing[s], fresh[s]);
    for (size_t i = 0; i < sets.size(); ++i) {
      if (slot_of[i] != SIZE_MAX) out[i] = fresh[slot_of[i]];
    }
  }
  return out;
}

util::Status EntropyOracle::CountPass(const fd::AttributeSet* sets,
                                      size_t num_sets, double* entropies) {
  LIMBO_OBS_SPAN(span, "schemes.oracle.pass");
  util::Status reset = source_->Reset();
  if (!reset.ok()) return reset;

  // Attribute lists resolved once (ascending ids — the canonical key
  // order) plus a per-set private counting map. Each map is written only
  // by the lane that owns set s (ParallelFor grain 1 → chunk s → lane
  // s % threads), so the pass is race-free and, because the counts are
  // exact integers folded through EntropyFromCounts, bit-identical at
  // every lane count.
  std::vector<std::vector<relation::AttributeId>> attrs(num_sets);
  for (size_t s = 0; s < num_sets; ++s) {
    if (!sets[s].IsSubsetOf(fd::AttributeSet::Full(num_attributes_))) {
      return util::Status::InvalidArgument(
          "entropy oracle: attribute set outside the source schema");
    }
    attrs[s] = sets[s].ToList();
  }
  std::vector<std::unordered_map<std::string, uint64_t>> counts(num_sets);

  // Chunked streaming: buffer up to chunk_rows rows of interned value
  // ids, then fan the counting of that buffer out over the sets.
  const size_t m = num_attributes_;
  std::vector<relation::ValueId> buffer;  // row-major, m ids per row
  buffer.reserve(options_.chunk_rows * m);
  std::vector<std::string> fields;
  uint64_t rows = 0;

  auto flush = [&]() {
    const size_t chunk_rows = buffer.size() / m;
    if (chunk_rows == 0) return;
    pool_.ParallelFor(0, num_sets, /*grain=*/1,
                      [&](size_t lo, size_t hi) {
                        for (size_t s = lo; s < hi; ++s) {
                          auto& map = counts[s];
                          const auto& ids = attrs[s];
                          std::string key;
                          key.reserve(ids.size() * sizeof(relation::ValueId));
                          for (size_t r = 0; r < chunk_rows; ++r) {
                            const relation::ValueId* row =
                                buffer.data() + r * m;
                            key.clear();
                            for (relation::AttributeId a : ids) {
                              const relation::ValueId v = row[a];
                              key.append(
                                  reinterpret_cast<const char*>(&v),
                                  sizeof(v));
                            }
                            ++map[key];
                          }
                        }
                      });
    buffer.clear();
  };

  while (true) {
    util::Result<bool> more = source_->Next(&fields);
    if (!more.ok()) return more.status();
    if (!*more) break;
    if (fields.size() != m) {
      return util::Status::InvalidArgument(
          "entropy oracle: row width does not match the schema");
    }
    for (size_t a = 0; a < m; ++a) {
      buffer.push_back(dictionary_.InternOccurrence(
          static_cast<relation::AttributeId>(a), fields[a]));
    }
    ++rows;
    if (buffer.size() >= options_.chunk_rows * m) flush();
  }
  flush();

  num_rows_ = rows;
  ++stats_.passes;
  stats_.rows_read += rows;
  stats_.sets_counted += num_sets;
  LIMBO_OBS_COUNT("schemes.oracle.passes", 1);
  LIMBO_OBS_COUNT("schemes.oracle.rows_read", rows);
  LIMBO_OBS_COUNT("schemes.oracle.sets_counted", num_sets);

  for (size_t s = 0; s < num_sets; ++s) {
    // Move the map out so its memory is released as soon as the entropy
    // is folded, not when the whole pass unwinds.
    const std::unordered_map<std::string, uint64_t> map =
        std::move(counts[s]);
    std::vector<uint64_t> c;
    c.reserve(map.size());
    for (const auto& [key, n] : map) c.push_back(n);
    entropies[s] = EntropyFromCounts(std::move(c), rows);
  }
  return util::Status::Ok();
}

void EntropyOracle::MemoPut(fd::AttributeSet x, double h) {
  if (options_.memo_entries == 0) return;
  auto it = memo_.find(x.bits());
  if (it != memo_.end()) {
    memo_order_.erase(it->second.where);
    memo_order_.push_front(x.bits());
    it->second = {h, memo_order_.begin()};
    return;
  }
  while (memo_.size() >= options_.memo_entries) {
    memo_.erase(memo_order_.back());
    memo_order_.pop_back();
  }
  memo_order_.push_front(x.bits());
  memo_.emplace(x.bits(), MemoEntry{h, memo_order_.begin()});
}

bool EntropyOracle::MemoGet(fd::AttributeSet x, double* h) {
  auto it = memo_.find(x.bits());
  if (it == memo_.end()) return false;
  memo_order_.erase(it->second.where);
  memo_order_.push_front(x.bits());
  it->second.where = memo_order_.begin();
  *h = it->second.h;
  return true;
}

}  // namespace limbo::schemes
