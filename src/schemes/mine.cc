#include "schemes/mine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/status.h"

namespace limbo::schemes {

std::string AcyclicScheme::ToString(const relation::Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < bags.size(); ++i) {
    if (i > 0) out += " | ";
    out += bags[i].ToString(schema);
  }
  out += "} sep ";
  out += separator.ToString(schema);
  char buf[48];
  std::snprintf(buf, sizeof(buf), " j=%.4f", j_measure);
  out += buf;
  return out;
}

std::vector<fd::AttributeSet> EnumerateSeparators(size_t m, size_t max_size) {
  std::vector<fd::AttributeSet> out;
  out.push_back(fd::AttributeSet());  // the empty separator: plain MI split
  if (max_size == 0 || m == 0) return out;
  const uint64_t full = fd::AttributeSet::Full(m).bits();
  // Gosper's hack per cardinality visits exactly the C(m, k) subsets of
  // size k; sweeping all 2^m bitmasks instead would hang for m past ~32
  // (and never terminate at m = 64, where `bits <= full` is always true).
  for (size_t k = 1; k <= std::min(max_size, m); ++k) {
    uint64_t bits =
        k >= 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;  // lowest k bits
    while (true) {
      out.push_back(fd::AttributeSet(bits));
      const uint64_t low = bits & (~bits + 1);
      const uint64_t carry = bits + low;  // wraps to 0 past the top run
      if (carry == 0 || carry > full) break;
      bits = (((bits ^ carry) >> 2) / low) | carry;
    }
  }
  // Per-cardinality order -> the documented ascending-bitmask order.
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Number of separators EnumerateSeparators(m, max_size) would return,
/// saturating at `cap` (the partial sums of C(m, k) overflow fast).
/// Requires cap <= 2^57 so choose * (m - k + 1) cannot overflow.
uint64_t CountSeparators(size_t m, size_t max_size, uint64_t cap) {
  uint64_t total = 1;  // the empty separator
  uint64_t choose = 1;
  for (size_t k = 1; k <= std::min(max_size, m); ++k) {
    // choose = C(m, k) via C(m, k-1) * (m - k + 1) / k, exact at each step.
    choose = choose * static_cast<uint64_t>(m - k + 1) /
             static_cast<uint64_t>(k);
    if (choose >= cap || cap - choose <= total) return cap;
    total += choose;
  }
  return total;
}

/// Connected components of the graph on `nodes` given by `edge(i, j)`.
std::vector<fd::AttributeSet> Components(
    const std::vector<relation::AttributeId>& nodes,
    const std::vector<std::vector<bool>>& edge) {
  const size_t n = nodes.size();
  std::vector<int> comp(n, -1);
  std::vector<fd::AttributeSet> out;
  for (size_t seed = 0; seed < n; ++seed) {
    if (comp[seed] >= 0) continue;
    const int id = static_cast<int>(out.size());
    std::vector<size_t> stack{seed};
    comp[seed] = id;
    fd::AttributeSet members = fd::AttributeSet::Single(nodes[seed]);
    while (!stack.empty()) {
      const size_t u = stack.back();
      stack.pop_back();
      for (size_t v = 0; v < n; ++v) {
        if (comp[v] < 0 && edge[u][v]) {
          comp[v] = id;
          members = members.With(nodes[v]);
          stack.push_back(v);
        }
      }
    }
    out.push_back(members);
  }
  return out;
}

/// Canonical identity of a scheme: its sorted bag bitmasks.
std::vector<uint64_t> BagSignature(const std::vector<fd::AttributeSet>& bags) {
  std::vector<uint64_t> sig;
  sig.reserve(bags.size());
  for (fd::AttributeSet b : bags) sig.push_back(b.bits());
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace

util::Result<MineResult> MineAcyclicSchemes(EntropyOracle& oracle,
                                            const MineOptions& options) {
  LIMBO_OBS_SPAN(span, "schemes.mine");
  MineResult result;
  const size_t m = oracle.num_attributes();
  const fd::AttributeSet omega = fd::AttributeSet::Full(m);
  if (m < 2) {
    return util::Status::InvalidArgument(
        "scheme mining needs at least two attributes");
  }
  const size_t max_sep = std::min(options.max_separator, m - 2);
  if (CountSeparators(m, max_sep, kMaxSeparators) >= kMaxSeparators) {
    return util::Status::InvalidArgument(
        "scheme mining: separator space exceeds " +
        std::to_string(kMaxSeparators) +
        " candidates; lower max_separator for this many attributes");
  }
  std::vector<fd::AttributeSet> separators = EnumerateSeparators(m, max_sep);

  // Stage 1: one batch for H(Ω), every H(X), and every H(A ∪ X) — the
  // marginals the pruning bound runs on.
  std::vector<fd::AttributeSet> stage1{omega};
  for (fd::AttributeSet x : separators) {
    stage1.push_back(x);
    for (relation::AttributeId a : omega.Minus(x).ToList()) {
      stage1.push_back(x.With(a));
    }
  }
  LIMBO_ASSIGN_OR_RETURN(std::vector<double> h1, oracle.HBatch(stage1));
  std::unordered_map<uint64_t, double> h;
  for (size_t i = 0; i < stage1.size(); ++i) h[stage1[i].bits()] = h1[i];
  const double h_omega = h[omega.bits()];
  result.total_entropy = h_omega;
  result.num_rows = oracle.num_rows();

  // Stage 2: for every separator, decide which pairs the bound cannot
  // close, and fetch their H(A ∪ B ∪ X) in one more batch.
  struct PairQuery {
    size_t sep;       // index into `separators`
    size_t i, j;      // indices into that separator's rest-list
  };
  std::vector<std::vector<relation::AttributeId>> rest(separators.size());
  std::vector<PairQuery> queries;
  std::vector<fd::AttributeSet> stage2;
  for (size_t s = 0; s < separators.size(); ++s) {
    const fd::AttributeSet x = separators[s];
    rest[s] = omega.Minus(x).ToList();
    const double hx = h[x.bits()];
    for (size_t i = 0; i < rest[s].size(); ++i) {
      for (size_t j = i + 1; j < rest[s].size(); ++j) {
        const double hax = h[x.With(rest[s][i]).bits()];
        const double hbx = h[x.With(rest[s][j]).bits()];
        // I(A;B|X) <= min(H(AX), H(BX)) - H(X): when the bound is
        // already within tolerance the pair is independent given X and
        // the joint entropy is never counted.
        if (std::min(hax, hbx) - hx <= options.tolerance) {
          ++result.pairs_pruned;
          continue;
        }
        queries.push_back({s, i, j});
        stage2.push_back(x.With(rest[s][i]).With(rest[s][j]));
      }
    }
  }
  result.pairs_evaluated = queries.size();
  LIMBO_ASSIGN_OR_RETURN(std::vector<double> h2, oracle.HBatch(stage2));

  // Dependence graphs per separator. Pairs the bound closed stay
  // edge-free; evaluated pairs get an edge iff CMI exceeds tolerance.
  std::vector<std::vector<std::vector<bool>>> edges(separators.size());
  for (size_t s = 0; s < separators.size(); ++s) {
    edges[s].assign(rest[s].size(),
                    std::vector<bool>(rest[s].size(), false));
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    const PairQuery& pq = queries[q];
    const fd::AttributeSet x = separators[pq.sep];
    const double hax = h[x.With(rest[pq.sep][pq.i]).bits()];
    const double hbx = h[x.With(rest[pq.sep][pq.j]).bits()];
    const double cmi = hax + hbx - h2[q] - h[x.bits()];
    if (cmi > options.tolerance) {
      edges[pq.sep][pq.i][pq.j] = true;
      edges[pq.sep][pq.j][pq.i] = true;
    }
  }

  // Stage 3: components -> candidate schemes; J needs each bag's entropy.
  struct Candidate {
    fd::AttributeSet separator;
    std::vector<fd::AttributeSet> bags;
  };
  std::vector<Candidate> candidates;
  std::vector<fd::AttributeSet> stage3;
  for (size_t s = 0; s < separators.size(); ++s) {
    ++result.separators_tried;
    std::vector<fd::AttributeSet> comps = Components(rest[s], edges[s]);
    if (comps.size() < 2) continue;
    Candidate c;
    c.separator = separators[s];
    for (fd::AttributeSet comp : comps) {
      c.bags.push_back(comp.Union(separators[s]));
    }
    std::sort(c.bags.begin(), c.bags.end());
    for (fd::AttributeSet bag : c.bags) stage3.push_back(bag);
    candidates.push_back(std::move(c));
  }
  LIMBO_ASSIGN_OR_RETURN(std::vector<double> h3, oracle.HBatch(stage3));

  // Score, filter by epsilon, dedupe by bag signature (smallest J wins).
  std::map<std::vector<uint64_t>, AcyclicScheme> by_signature;
  size_t cursor = 0;
  for (const Candidate& c : candidates) {
    double sum_bags = 0.0;
    for (size_t b = 0; b < c.bags.size(); ++b) sum_bags += h3[cursor++];
    const double k = static_cast<double>(c.bags.size());
    double j = sum_bags - (k - 1.0) * h[c.separator.bits()] - h_omega;
    if (j < 0.0) j = 0.0;  // floating-point residue; J is non-negative
    if (j > options.epsilon) continue;
    AcyclicScheme scheme{c.separator, c.bags, j};
    auto [it, inserted] =
        by_signature.emplace(BagSignature(c.bags), scheme);
    if (!inserted && j < it->second.j_measure) it->second = scheme;
  }
  for (auto& [sig, scheme] : by_signature) {
    result.schemes.push_back(std::move(scheme));
  }
  std::sort(result.schemes.begin(), result.schemes.end(),
            [](const AcyclicScheme& a, const AcyclicScheme& b) {
              if (a.j_measure != b.j_measure) return a.j_measure < b.j_measure;
              if (!(a.separator == b.separator)) return a.separator < b.separator;
              if (a.bags.size() != b.bags.size())
                return a.bags.size() < b.bags.size();
              return a.bags < b.bags;
            });
  if (result.schemes.size() > options.max_schemes) {
    result.schemes.resize(options.max_schemes);
  }

  LIMBO_OBS_COUNT("schemes.mine.separators", result.separators_tried);
  LIMBO_OBS_COUNT("schemes.mine.pairs_pruned", result.pairs_pruned);
  LIMBO_OBS_COUNT("schemes.mine.pairs_evaluated", result.pairs_evaluated);
  LIMBO_OBS_COUNT("schemes.mine.schemes", result.schemes.size());
  return result;
}

}  // namespace limbo::schemes
