#ifndef LIMBO_SCHEMES_ENTROPY_ORACLE_H_
#define LIMBO_SCHEMES_ENTROPY_ORACLE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "fd/attribute_set.h"
#include "relation/dictionary.h"
#include "relation/row_source.h"
#include "util/parallel.h"
#include "util/result.h"

namespace limbo::schemes {

/// Shannon entropy (base 2) of a multiset given its exact occurrence
/// counts and total: H = log2(n) - (1/n) * sum c*log2(c). The counts are
/// summed in ascending order after sorting a copy, so the result is
/// bit-identical no matter how the counts were produced or ordered —
/// the determinism anchor for the oracle's 1-lane vs N-lane contract.
/// Zero counts are ignored; an empty or all-zero span returns 0.
double EntropyFromCounts(std::vector<uint64_t> counts, uint64_t total);

struct EntropyOracleOptions {
  /// Lane count for the per-pass counting work; 0 = DefaultThreadCount().
  size_t threads = 0;
  /// Rows buffered per streamed chunk before counting fans out.
  size_t chunk_rows = 4096;
  /// Bound on memoized H(X) entries kept across queries (LRU).
  size_t memo_entries = 4096;
  /// Upper bound on subsets counted per streaming pass. Every set in a
  /// pass owns a private hash map with up to one entry per distinct value
  /// combination, so an unbounded batch (the miner's stage-2 requests grow
  /// as separators x unpruned pairs) can hold millions of maps alive at
  /// once; larger batches split into extra passes instead — extra streams
  /// over the source are cheap relative to the maps. 0 = unlimited.
  size_t max_sets_per_pass = 1024;
};

/// Computes H(X) — the Shannon entropy of the projection of a streamed
/// relation onto an attribute subset X — for batches of subsets in one
/// counting pass per batch. This is the entropy-over-attribute-sets core
/// that approximate acyclic scheme mining (Kenig et al.) shares with
/// FD-RANK: both reduce to "how concentrated is the distribution of
/// distinct value combinations under X".
///
/// Mechanics: each batch buffers rows in chunks of `chunk_rows`, interning
/// every field into an owned ValueDictionary (the same Phase-1 interning
/// discipline, so repeated strings cost one hash each). Counting then
/// fans out over the *requested sets* with util::ParallelFor at grain 1 —
/// set s is always counted by lane s % threads, each set owns its private
/// hash map keyed by the concatenated 4-byte value ids of X's attributes
/// in ascending order — and entropies come from EntropyFromCounts, so
/// results are bit-identical at any lane count. A bounded LRU memo keyed
/// by the subset bitmask absorbs the heavy re-query traffic the miner
/// generates (H(X) is asked for under many separators).
///
/// The oracle borrows `source` and Resets it before every counting pass;
/// callers must not interleave their own reads.
class EntropyOracle {
 public:
  EntropyOracle(relation::RowSource& source,
                const EntropyOracleOptions& options = {});

  /// Entropy of one subset. Memoized; H(empty) = 0 without a pass.
  util::Result<double> H(fd::AttributeSet x);

  /// Entropies of many subsets, resolved in streaming passes over the
  /// rows (minus whatever the memo already holds) of at most
  /// `max_sets_per_pass` sets each. Result order matches `sets`;
  /// duplicate sets are counted once. Sub-batching never changes a
  /// result: each set's counts are exact and folded independently.
  util::Result<std::vector<double>> HBatch(
      const std::vector<fd::AttributeSet>& sets);

  /// Rows seen by the most recent counting pass (0 before the first).
  uint64_t num_rows() const { return num_rows_; }

  size_t num_attributes() const { return num_attributes_; }

  struct Stats {
    uint64_t passes = 0;      // streaming passes over the source
    uint64_t rows_read = 0;   // rows decoded across all passes
    uint64_t sets_counted = 0;  // subsets resolved by counting
    uint64_t memo_hits = 0;     // subsets resolved from the memo
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Streams the source once and fills `entropies[i]` for `sets[i]`
  /// (`num_sets` of each; callers bound num_sets by max_sets_per_pass).
  util::Status CountPass(const fd::AttributeSet* sets, size_t num_sets,
                         double* entropies);

  void MemoPut(fd::AttributeSet x, double h);
  bool MemoGet(fd::AttributeSet x, double* h);

  relation::RowSource* source_;
  EntropyOracleOptions options_;
  util::ThreadPool pool_;
  size_t num_attributes_ = 0;
  uint64_t num_rows_ = 0;
  relation::ValueDictionary dictionary_;
  Stats stats_;

  // LRU memo: map from subset bits to (entropy, position in the recency
  // list); the list front is most recent.
  struct MemoEntry {
    double h = 0.0;
    std::list<uint64_t>::iterator where;
  };
  std::unordered_map<uint64_t, MemoEntry> memo_;
  std::list<uint64_t> memo_order_;
};

}  // namespace limbo::schemes

#endif  // LIMBO_SCHEMES_ENTROPY_ORACLE_H_
