#ifndef LIMBO_SCHEMES_MINE_H_
#define LIMBO_SCHEMES_MINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fd/attribute_set.h"
#include "relation/schema.h"
#include "schemes/entropy_oracle.h"
#include "util/result.h"

namespace limbo::schemes {

/// An approximate acyclic (join-tree) scheme: a separator X and bags
/// {X ∪ C_1, ..., X ∪ C_k} whose components C_i partition the remaining
/// attributes. `j_measure` is the scheme's approximation error in bits —
/// the J-measure of Kenig et al.,
///   J = Σ_i H(bag_i) − (k−1)·H(X) − H(Ω),
/// which is 0 exactly when the relation decomposes losslessly along the
/// scheme (the bags are mutually independent given the separator) and
/// grows with the information the join would hallucinate.
struct AcyclicScheme {
  fd::AttributeSet separator;
  std::vector<fd::AttributeSet> bags;  // ascending by bits; each ⊇ separator
  double j_measure = 0.0;

  /// "{[A,B] | [A,C]} sep [A] j=0.0123" using schema names.
  std::string ToString(const relation::Schema& schema) const;
};

/// All subsets of {0..m-1} with |S| <= max_size (always including the
/// empty set), ascending by bitmask. Enumerated per cardinality with
/// Gosper's hack, so the cost is O(sum_{k<=max_size} C(m, k)) — never the
/// 2^m of a full bitmask sweep — and safe for every schema width the
/// relation layer admits (m <= 64).
std::vector<fd::AttributeSet> EnumerateSeparators(size_t m, size_t max_size);

/// MineAcyclicSchemes refuses separator spaces at or above this many
/// candidates (wide schema x large max_separator) instead of attempting
/// an astronomically long search.
inline constexpr uint64_t kMaxSeparators = uint64_t{1} << 20;

struct MineOptions {
  /// Accept a scheme iff its J-measure is at most this many bits.
  double epsilon = 0.05;
  /// Largest separator cardinality enumerated.
  size_t max_separator = 2;
  /// Conditional mutual information at or below this is treated as
  /// independence when splitting into components.
  double tolerance = 1e-9;
  /// Keep at most this many schemes (after the deterministic sort).
  size_t max_schemes = 16;
};

struct MineResult {
  std::vector<AcyclicScheme> schemes;  // sorted: j asc, separator, #bags
  double total_entropy = 0.0;          // H(Ω) of the mined relation
  uint64_t num_rows = 0;
  uint64_t separators_tried = 0;
  uint64_t pairs_pruned = 0;   // CMI bound closed the pair without H(ABX)
  uint64_t pairs_evaluated = 0;  // pairs that needed the full H(ABX)
};

/// Mines approximate acyclic schemes from the oracle's relation.
///
/// Search: enumerate candidate separators X up to `max_separator`
/// attributes (in ascending-bitmask order, so output is deterministic).
/// For each X, build the conditional-dependence graph over Ω ∖ X — an
/// edge {A,B} iff I(A;B|X) = H(AX) + H(BX) − H(ABX) − H(X) exceeds
/// `tolerance` — pruning with the bound
///   I(A;B|X) ≤ min(H(AX), H(BX)) − H(X),
/// which needs no joint pass when it already sits at or below the
/// tolerance. Connected components C_1..C_k of that graph give the
/// candidate scheme {X ∪ C_i}; schemes with at least two components and
/// J ≤ epsilon are kept, deduplicated by bag signature (the same bags can
/// arise under nested separators; the smallest J wins), and sorted by
/// (J, separator bits, bag count, bags).
///
/// Entropy requests are batched through the oracle so the whole search
/// costs a handful of streaming passes, not one per query.
util::Result<MineResult> MineAcyclicSchemes(EntropyOracle& oracle,
                                            const MineOptions& options = {});

}  // namespace limbo::schemes

#endif  // LIMBO_SCHEMES_MINE_H_
