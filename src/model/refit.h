#ifndef LIMBO_MODEL_REFIT_H_
#define LIMBO_MODEL_REFIT_H_

#include <cstdint>

#include "model/model_bundle.h"
#include "relation/row_source.h"
#include "util/result.h"

namespace limbo::model {

/// Parameters of an incremental refit.
struct RefitOptions {
  /// Drift-score boundary between the no-drift patch path and the
  /// moderate-drift Phase-2/3 re-run. The score is the mean assignment
  /// loss of the new rows against the frozen representatives divided by
  /// the mean fit-time assignment loss; 2.0 means "new rows fit twice as
  /// badly as the training rows did".
  double drift_moderate = 2.0;
  /// Boundary between moderate and severe drift. At or above this the
  /// refit refuses to patch — the caller should run a full `fit`.
  double drift_severe = 8.0;
  /// Worker lanes for the drift scan and any Phase-2/3 re-run
  /// (0 = LIMBO_THREADS / hardware). Bit-identical at every value.
  size_t threads = 0;
  /// New rows buffered per drift-scan / insert chunk. Memory knob only.
  size_t chunk_rows = 4096;
};

/// What a refit did and produced. `bundle` is the child — populated for
/// the no-drift and moderate paths, untouched (default) for severe drift,
/// where no bundle should be written.
struct RefitResult {
  ModelBundle bundle;
  DriftClass drift_class = DriftClass::kNone;
  double drift_score = 0.0;
  uint64_t rows_absorbed = 0;
  /// Mean assignment loss of the new rows against the parent's frozen
  /// representatives, and the parent's own mean fit-time loss.
  double new_rows_mean_loss = 0.0;
  double fit_mean_loss = 0.0;
  /// Second drift signal: the largest per-attribute |ΔH| in bits between
  /// the absorbed rows' value entropies (schemes::EntropyOracle) and the
  /// parent's frozen Phase-1 value counts. 0 when no rows were absorbed
  /// or the refit was refused as severe. Also recorded in the child's
  /// lineage and surfaced by `inspect` / the serve `info` query.
  double entropy_drift = 0.0;
};

/// Absorbs `rows` into `parent` without refitting from raw data: the
/// parent's frozen Phase-1 tree is rehydrated and the new rows stream
/// through it exactly as the original fit streamed its rows (same object
/// construction, masses in units of 1/base_rows so old and new summaries
/// compose). One pass serves three purposes: tree inserts, assignment of
/// each new row against the frozen representatives (the drift signal),
/// and — on the no-drift path — the new rows' labels themselves.
///
///   - no drift     (score < drift_moderate): parent's representatives and
///     original assignments are kept; the new rows' labels/losses are
///     appended and the dictionary absorbs any new values.
///   - moderate     (score < drift_severe): Phase 2 (AIB) and Phase 3 are
///     re-run from the updated tree's leaves. Row labels come from each
///     row's leaf entry; per-row losses are the leaf's assignment loss
///     apportioned by mass (an approximation, flagged in the lineage by
///     drift_class = kModerate). The derived structure is refreshed too:
///     CV_D value groups are re-clustered and FDs re-validated against
///     the absorbed rows (an FD survives only if it follows from the
///     parent's cover AND still holds exactly on the new data), so a
///     moderate child's FD section reflects dependencies the new rows
///     broke — they are no longer carried verbatim from the parent.
///   - severe       (score >= drift_severe): no child is produced.
///
/// Requires parent.has_phase1_tree and a row schema identical to the
/// parent's. The returned child records its lineage (parent checksum,
/// generation, rows absorbed, drift) and carries the updated tree, so
/// refits chain.
util::Result<RefitResult> RefitModel(const ModelBundle& parent,
                                     relation::RowSource& rows,
                                     const RefitOptions& options = {});

}  // namespace limbo::model

#endif  // LIMBO_MODEL_REFIT_H_
