#ifndef LIMBO_MODEL_FIT_H_
#define LIMBO_MODEL_FIT_H_

#include "model/model_bundle.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::model {

/// Parameters of a model fit — the union of the batch pipeline's knobs
/// that matter at serving time.
struct FitOptions {
  /// Tuple-clustering accuracy φ_T (Phase-1 merge threshold φ_T·I/n).
  double phi_t = 0.1;
  /// Value-clustering accuracy φ_V.
  double phi_v = 0.0;
  /// FD-RANK ψ.
  double psi = 0.5;
  /// Number of tuple clusters for the Phase-3 assignment map (clipped to
  /// the Phase-1 leaf count, like LimboOptions::k).
  size_t k = 10;
  /// Association margin for the near-duplicate check: a row counts as a
  /// duplicate only if its assignment loss is at most margin × threshold.
  double association_margin = 2.0;
  /// Worker lanes (0 = LIMBO_THREADS / hardware). Results bit-identical
  /// at every value.
  size_t threads = 0;
  /// When true (default), the bundle carries the frozen Phase-1 tree and
  /// per-row leaf-entry ids so `limbo-tool refit` can absorb new rows
  /// incrementally. Disable to shave the extra section off the file.
  bool refit_state = true;
  /// When true, mine approximate acyclic schemes (src/schemes) over the
  /// fitted relation and persist them in the bundle's tag-11 section, so
  /// the serve layer can answer `schemes` queries without re-mining.
  bool mine_schemes = false;
  /// J-measure acceptance bound, in bits, for the mined schemes.
  double schemes_epsilon = 0.05;
  /// Largest separator cardinality the miner enumerates.
  size_t schemes_max_separator = 2;
};

/// Freezes one full LIMBO run over `rel` into a bundle: RunLimbo for the
/// tuple representatives/assignments and SummarizeStructure for the value
/// groups, dendrogram and ranked FDs. The bundle's representatives and
/// assignments are exactly the batch RunLimbo output — a serve-side
/// re-assignment of the same rows reproduces them bit for bit.
util::Result<ModelBundle> FitModel(const relation::Relation& rel,
                                   const FitOptions& options = FitOptions());

}  // namespace limbo::model

#endif  // LIMBO_MODEL_FIT_H_
