#include "model/model_bundle.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace limbo::model {

namespace {

constexpr char kMagic[8] = {'L', 'I', 'M', 'B', 'O', 'M', 'D', 'L'};

// Section tags, written and required in ascending order.
enum SectionTag : uint32_t {
  kMeta = 1,
  kSchema = 2,
  kDictionary = 3,
  kRepresentatives = 4,
  kAssignments = 5,
  kValueGroups = 6,
  kGrouping = 7,  // optional
  kRankedFds = 8,
};

// ---- writer helpers (host-endian fixed-width, doubles as raw bits) ----

void PutU32(uint32_t v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutF64(double v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutStr(const std::string& s, std::string* out) {
  PutU64(s.size(), out);
  out->append(s);
}

void PutSection(uint32_t tag, const std::string& body, std::string* out) {
  PutU32(tag, out);
  PutU32(0, out);
  PutU64(body.size(), out);
  out->append(body);
}

void PutDcf(const core::Dcf& d, std::string* out) {
  PutF64(d.p, out);
  PutU64(d.cond.SupportSize(), out);
  for (const auto& e : d.cond.entries()) {
    PutU32(e.id, out);
    PutF64(e.mass, out);
  }
  PutU64(d.attr_counts.size(), out);
  for (uint64_t c : d.attr_counts) PutU64(c, out);
}

// ---- bounds-checked reader ----

class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

  util::Status ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  util::Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  util::Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  util::Status ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }

  util::Status ReadStr(std::string* out) {
    uint64_t len = 0;
    LIMBO_RETURN_IF_ERROR(ReadU64(&len));
    if (len > remaining()) {
      return util::Status::InvalidArgument("model bundle: truncated string");
    }
    out->assign(p_, static_cast<size_t>(len));
    p_ += len;
    return util::Status::Ok();
  }

  /// Reads an element count and refuses counts that could not possibly
  /// fit in the remaining bytes — a corrupt length must fail fast, not
  /// drive a multi-gigabyte allocation.
  util::Status ReadCount(size_t min_elem_bytes, uint64_t* count) {
    LIMBO_RETURN_IF_ERROR(ReadU64(count));
    if (min_elem_bytes > 0 && *count > remaining() / min_elem_bytes) {
      return util::Status::InvalidArgument(
          "model bundle: element count exceeds section size");
    }
    return util::Status::Ok();
  }

 private:
  util::Status ReadRaw(void* out, size_t n) {
    if (remaining() < n) {
      return util::Status::InvalidArgument("model bundle: truncated field");
    }
    std::memcpy(out, p_, n);
    p_ += n;
    return util::Status::Ok();
  }

  const char* p_;
  const char* end_;
};

util::Status CheckFinite(double v, const char* what) {
  if (!std::isfinite(v)) {
    return util::Status::InvalidArgument(
        util::StrFormat("model bundle: non-finite %s", what));
  }
  return util::Status::Ok();
}

util::Status ReadDcf(Cursor* in, size_t max_cond_id, core::Dcf* out) {
  LIMBO_RETURN_IF_ERROR(in->ReadF64(&out->p));
  LIMBO_RETURN_IF_ERROR(CheckFinite(out->p, "dcf mass"));
  if (out->p <= 0.0) {
    return util::Status::InvalidArgument("model bundle: dcf mass not > 0");
  }
  uint64_t support = 0;
  LIMBO_RETURN_IF_ERROR(in->ReadCount(sizeof(uint32_t) + sizeof(double),
                                      &support));
  std::vector<core::SparseDistribution::Entry> entries;
  entries.reserve(support);
  for (uint64_t e = 0; e < support; ++e) {
    uint32_t id = 0;
    double mass = 0.0;
    LIMBO_RETURN_IF_ERROR(in->ReadU32(&id));
    LIMBO_RETURN_IF_ERROR(in->ReadF64(&mass));
    LIMBO_RETURN_IF_ERROR(CheckFinite(mass, "dcf conditional mass"));
    if (mass <= 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: dcf conditional mass not > 0");
    }
    if (max_cond_id != 0 && id >= max_cond_id) {
      return util::Status::InvalidArgument(
          "model bundle: dcf support id out of range");
    }
    if (!entries.empty() && id <= entries.back().id) {
      return util::Status::InvalidArgument(
          "model bundle: dcf support ids not strictly increasing");
    }
    entries.push_back({id, mass});
  }
  if (!entries.empty()) {
    out->cond = core::SparseDistribution::FromNormalizedPairs(
        std::move(entries));
  }
  uint64_t num_counts = 0;
  LIMBO_RETURN_IF_ERROR(in->ReadCount(sizeof(uint64_t), &num_counts));
  out->attr_counts.resize(num_counts);
  for (uint64_t a = 0; a < num_counts; ++a) {
    LIMBO_RETURN_IF_ERROR(in->ReadU64(&out->attr_counts[a]));
  }
  return util::Status::Ok();
}

util::Status ExpectDone(const Cursor& in, const char* section) {
  if (!in.done()) {
    return util::Status::InvalidArgument(
        util::StrFormat("model bundle: trailing bytes in %s section",
                        section));
  }
  return util::Status::Ok();
}

// ---- per-section serializers ----

std::string MetaBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.num_rows, &out);
  PutF64(b.phi_t, &out);
  PutF64(b.phi_v, &out);
  PutF64(b.psi, &out);
  PutF64(b.mutual_information, &out);
  PutF64(b.threshold, &out);
  PutF64(b.association_margin, &out);
  PutF64(b.value_mutual_information, &out);
  PutF64(b.value_threshold, &out);
  return out;
}

std::string SchemaBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.schema.NumAttributes(), &out);
  for (const std::string& name : b.schema.Names()) PutStr(name, &out);
  return out;
}

std::string DictionaryBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.dictionary.NumValues(), &out);
  for (relation::ValueId v = 0; v < b.dictionary.NumValues(); ++v) {
    PutU32(b.dictionary.Attribute(v), &out);
    PutU32(b.dictionary.Support(v), &out);
    PutStr(b.dictionary.Text(v), &out);
  }
  return out;
}

std::string RepresentativesBody(const ModelBundle& b) {
  // CSR layout, mirroring DistributionArena: priors, row offsets, then one
  // flat (id, mass) entry slab — so a loader can hand the rows straight to
  // an arena without per-row bookkeeping.
  std::string out;
  PutU64(b.representatives.size(), &out);
  for (const core::Dcf& r : b.representatives) PutF64(r.p, &out);
  uint64_t offset = 0;
  PutU64(offset, &out);
  for (const core::Dcf& r : b.representatives) {
    offset += r.cond.SupportSize();
    PutU64(offset, &out);
  }
  for (const core::Dcf& r : b.representatives) {
    for (const auto& e : r.cond.entries()) {
      PutU32(e.id, &out);
      PutF64(e.mass, &out);
    }
  }
  return out;
}

std::string AssignmentsBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.assignments.size(), &out);
  for (uint32_t label : b.assignments) PutU32(label, &out);
  for (double loss : b.assignment_loss) PutF64(loss, &out);
  return out;
}

std::string ValueGroupsBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.value_groups.size(), &out);
  for (const core::ValueGroup& g : b.value_groups) {
    PutU64(g.values.size(), &out);
    for (relation::ValueId v : g.values) PutU32(v, &out);
    PutDcf(g.dcf, &out);
    PutU8(g.is_duplicate ? 1 : 0, &out);
  }
  PutU64(b.duplicate_groups.size(), &out);
  for (uint32_t g : b.duplicate_groups) PutU32(g, &out);
  return out;
}

std::string GroupingBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.grouping_attributes.size(), &out);
  for (relation::AttributeId a : b.grouping_attributes) PutU32(a, &out);
  PutU64(b.grouping_num_objects, &out);
  PutU64(b.grouping_merges.size(), &out);
  for (const core::Merge& m : b.grouping_merges) {
    PutU32(m.left, &out);
    PutU32(m.right, &out);
    PutU32(m.merged, &out);
    PutF64(m.delta_i, &out);
    PutF64(m.cumulative_loss, &out);
    PutF64(m.p_merged, &out);
  }
  PutU64(b.grouping_cluster_members.size(), &out);
  for (uint64_t bits : b.grouping_cluster_members) PutU64(bits, &out);
  PutF64(b.max_merge_loss, &out);
  return out;
}

std::string RankedFdsBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.num_fds, &out);
  PutU64(b.ranked_fds.size(), &out);
  for (const core::RankedFd& r : b.ranked_fds) {
    PutU64(r.fd.lhs.bits(), &out);
    PutU64(r.fd.rhs.bits(), &out);
    PutF64(r.rank, &out);
    PutU8(r.anchored ? 1 : 0, &out);
  }
  return out;
}

// ---- per-section parsers ----

util::Status ParseMeta(Cursor in, ModelBundle* b) {
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->num_rows));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->phi_t));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->phi_v));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->psi));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->mutual_information));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->threshold));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->association_margin));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->value_mutual_information));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->value_threshold));
  LIMBO_RETURN_IF_ERROR(ExpectDone(in, "meta"));
  if (b->num_rows == 0) {
    return util::Status::InvalidArgument("model bundle: num_rows is zero");
  }
  for (double v : {b->phi_t, b->phi_v, b->psi, b->mutual_information,
                   b->threshold, b->association_margin,
                   b->value_mutual_information, b->value_threshold}) {
    LIMBO_RETURN_IF_ERROR(CheckFinite(v, "meta field"));
    if (v < 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: negative meta field");
    }
  }
  return util::Status::Ok();
}

util::Status ParseSchema(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint64_t), &count));
  std::vector<std::string> names;
  names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    LIMBO_RETURN_IF_ERROR(in.ReadStr(&name));
    names.push_back(std::move(name));
  }
  LIMBO_RETURN_IF_ERROR(ExpectDone(in, "schema"));
  LIMBO_ASSIGN_OR_RETURN(b->schema, relation::Schema::Create(std::move(names)));
  return util::Status::Ok();
}

util::Status ParseDictionary(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(2 * sizeof(uint32_t) + sizeof(uint64_t), &count));
  if (count > static_cast<uint64_t>(UINT32_MAX)) {
    return util::Status::InvalidArgument(
        "model bundle: dictionary too large");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t attribute = 0;
    uint32_t support = 0;
    std::string text;
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&attribute));
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&support));
    LIMBO_RETURN_IF_ERROR(in.ReadStr(&text));
    if (attribute >= b->schema.NumAttributes()) {
      return util::Status::InvalidArgument(
          "model bundle: dictionary attribute out of range");
    }
    // InternCounted requires the pair to be fresh; a corrupt file with a
    // repeated pair must not silently shadow the first id.
    if (b->dictionary.Find(attribute, text).ok()) {
      return util::Status::InvalidArgument(
          "model bundle: duplicate dictionary entry");
    }
    b->dictionary.InternCounted(attribute, text, support);
  }
  return ExpectDone(in, "dictionary");
}

util::Status ParseRepresentatives(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(sizeof(double) + sizeof(uint64_t), &count));
  std::vector<double> priors(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&priors[i]));
    LIMBO_RETURN_IF_ERROR(CheckFinite(priors[i], "representative mass"));
    if (priors[i] <= 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: representative mass not > 0");
    }
  }
  std::vector<uint64_t> offsets(count + 1);
  for (uint64_t i = 0; i <= count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&offsets[i]));
    if (i > 0 && offsets[i] < offsets[i - 1]) {
      return util::Status::InvalidArgument(
          "model bundle: representative offsets not monotone");
    }
  }
  if (offsets[0] != 0 ||
      offsets[count] >
          in.remaining() / (sizeof(uint32_t) + sizeof(double))) {
    return util::Status::InvalidArgument(
        "model bundle: representative entry slab size mismatch");
  }
  const size_t num_values = b->dictionary.NumValues();
  b->representatives.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<core::SparseDistribution::Entry> entries;
    entries.reserve(offsets[i + 1] - offsets[i]);
    for (uint64_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      uint32_t id = 0;
      double mass = 0.0;
      LIMBO_RETURN_IF_ERROR(in.ReadU32(&id));
      LIMBO_RETURN_IF_ERROR(in.ReadF64(&mass));
      LIMBO_RETURN_IF_ERROR(CheckFinite(mass, "representative entry"));
      if (mass <= 0.0) {
        return util::Status::InvalidArgument(
            "model bundle: representative entry mass not > 0");
      }
      if (id >= num_values) {
        return util::Status::InvalidArgument(
            "model bundle: representative support id out of range");
      }
      if (!entries.empty() && id <= entries.back().id) {
        return util::Status::InvalidArgument(
            "model bundle: representative ids not strictly increasing");
      }
      entries.push_back({id, mass});
    }
    core::Dcf d;
    d.p = priors[i];
    if (!entries.empty()) {
      d.cond = core::SparseDistribution::FromNormalizedPairs(
          std::move(entries));
    }
    b->representatives.push_back(std::move(d));
  }
  return ExpectDone(in, "representatives");
}

util::Status ParseAssignments(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(sizeof(uint32_t) + sizeof(double), &count));
  if (count != b->num_rows) {
    return util::Status::InvalidArgument(
        "model bundle: assignment count != num_rows");
  }
  b->assignments.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&b->assignments[i]));
    if (b->assignments[i] >= b->representatives.size()) {
      return util::Status::InvalidArgument(
          "model bundle: assignment label out of range");
    }
  }
  b->assignment_loss.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->assignment_loss[i]));
    LIMBO_RETURN_IF_ERROR(
        CheckFinite(b->assignment_loss[i], "assignment loss"));
  }
  return ExpectDone(in, "assignments");
}

util::Status ParseValueGroups(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint64_t), &count));
  const size_t num_values = b->dictionary.NumValues();
  b->value_groups.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::ValueGroup g;
    uint64_t num_members = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint32_t), &num_members));
    g.values.resize(num_members);
    for (uint64_t m = 0; m < num_members; ++m) {
      uint32_t v = 0;
      LIMBO_RETURN_IF_ERROR(in.ReadU32(&v));
      if (v >= num_values) {
        return util::Status::InvalidArgument(
            "model bundle: value-group member out of range");
      }
      g.values[m] = v;
    }
    // The group DCF's conditional ranges over tuples (or tuple clusters
    // under Double Clustering), so no id bound applies here.
    LIMBO_RETURN_IF_ERROR(ReadDcf(&in, 0, &g.dcf));
    uint8_t dup = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadU8(&dup));
    if (dup > 1) {
      return util::Status::InvalidArgument(
          "model bundle: boolean field out of range");
    }
    g.is_duplicate = dup != 0;
    b->value_groups.push_back(std::move(g));
  }
  uint64_t num_dups = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint32_t), &num_dups));
  b->duplicate_groups.resize(num_dups);
  for (uint64_t i = 0; i < num_dups; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&b->duplicate_groups[i]));
    if (b->duplicate_groups[i] >= b->value_groups.size()) {
      return util::Status::InvalidArgument(
          "model bundle: duplicate-group index out of range");
    }
  }
  return ExpectDone(in, "value groups");
}

util::Status ParseGrouping(Cursor in, ModelBundle* b) {
  b->has_grouping = true;
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint32_t), &count));
  b->grouping_attributes.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&b->grouping_attributes[i]));
    if (b->grouping_attributes[i] >= b->schema.NumAttributes()) {
      return util::Status::InvalidArgument(
          "model bundle: grouping attribute out of range");
    }
  }
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->grouping_num_objects));
  if (b->grouping_num_objects != b->grouping_attributes.size()) {
    return util::Status::InvalidArgument(
        "model bundle: grouping leaf count mismatch");
  }
  uint64_t num_merges = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(3 * sizeof(uint32_t) + 3 * sizeof(double), &num_merges));
  b->grouping_merges.reserve(num_merges);
  for (uint64_t i = 0; i < num_merges; ++i) {
    core::Merge m{};
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&m.left));
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&m.right));
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&m.merged));
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&m.delta_i));
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&m.cumulative_loss));
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&m.p_merged));
    LIMBO_RETURN_IF_ERROR(CheckFinite(m.delta_i, "merge loss"));
    LIMBO_RETURN_IF_ERROR(CheckFinite(m.cumulative_loss, "merge loss"));
    LIMBO_RETURN_IF_ERROR(CheckFinite(m.p_merged, "merge mass"));
    // scipy-linkage convention: the i-th merge creates cluster q+i from
    // two clusters that already exist.
    const uint64_t limit = b->grouping_num_objects + i;
    if (m.left >= limit || m.right >= limit || m.left == m.right ||
        m.merged != limit) {
      return util::Status::InvalidArgument(
          "model bundle: merge ids violate the linkage convention");
    }
    b->grouping_merges.push_back(m);
  }
  uint64_t num_members = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint64_t), &num_members));
  if (num_members != b->grouping_num_objects + b->grouping_merges.size()) {
    return util::Status::InvalidArgument(
        "model bundle: cluster-member table size mismatch");
  }
  b->grouping_cluster_members.resize(num_members);
  for (uint64_t i = 0; i < num_members; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->grouping_cluster_members[i]));
  }
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->max_merge_loss));
  LIMBO_RETURN_IF_ERROR(CheckFinite(b->max_merge_loss, "max merge loss"));
  return ExpectDone(in, "grouping");
}

util::Status ParseRankedFds(Cursor in, ModelBundle* b) {
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->num_fds));
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(2 * sizeof(uint64_t) + sizeof(double) + 1, &count));
  const uint64_t attr_mask =
      fd::AttributeSet::Full(b->schema.NumAttributes()).bits();
  b->ranked_fds.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::RankedFd r;
    uint64_t lhs = 0;
    uint64_t rhs = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&lhs));
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&rhs));
    if ((lhs & ~attr_mask) != 0 || (rhs & ~attr_mask) != 0) {
      return util::Status::InvalidArgument(
          "model bundle: FD attribute bits out of range");
    }
    r.fd.lhs = fd::AttributeSet(lhs);
    r.fd.rhs = fd::AttributeSet(rhs);
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&r.rank));
    LIMBO_RETURN_IF_ERROR(CheckFinite(r.rank, "FD rank"));
    uint8_t anchored = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadU8(&anchored));
    if (anchored > 1) {
      return util::Status::InvalidArgument(
          "model bundle: boolean field out of range");
    }
    r.anchored = anchored != 0;
    b->ranked_fds.push_back(std::move(r));
  }
  return ExpectDone(in, "ranked FDs");
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string SerializeBundle(const ModelBundle& bundle) {
  std::string payload;
  PutSection(kMeta, MetaBody(bundle), &payload);
  PutSection(kSchema, SchemaBody(bundle), &payload);
  PutSection(kDictionary, DictionaryBody(bundle), &payload);
  PutSection(kRepresentatives, RepresentativesBody(bundle), &payload);
  PutSection(kAssignments, AssignmentsBody(bundle), &payload);
  PutSection(kValueGroups, ValueGroupsBody(bundle), &payload);
  if (bundle.has_grouping) {
    PutSection(kGrouping, GroupingBody(bundle), &payload);
  }
  PutSection(kRankedFds, RankedFdsBody(bundle), &payload);

  std::string out;
  out.reserve(sizeof(kMagic) + 24 + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(kFormatVersion, &out);
  PutU32(0, &out);
  PutU64(payload.size(), &out);
  PutU64(Fnv1a(payload.data(), payload.size()), &out);
  out.append(payload);
  return out;
}

util::Result<ModelBundle> ParseBundle(const std::string& bytes) {
  Cursor header(bytes.data(), bytes.size());
  char magic[sizeof(kMagic)];
  if (bytes.size() < sizeof(kMagic)) {
    return util::Status::InvalidArgument("model bundle: truncated header");
  }
  std::memcpy(magic, bytes.data(), sizeof(kMagic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("not a .limbo model bundle");
  }
  Cursor in(bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic));
  uint32_t version = 0;
  uint32_t reserved = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&version));
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&reserved));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&payload_len));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&checksum));
  if (version != kFormatVersion) {
    return util::Status::InvalidArgument(util::StrFormat(
        "model bundle: format version %u, this build reads %u", version,
        kFormatVersion));
  }
  if (reserved != 0) {
    return util::Status::InvalidArgument(
        "model bundle: nonzero reserved header field");
  }
  if (payload_len != in.remaining()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "model bundle: payload length %llu does not match file size",
        static_cast<unsigned long long>(payload_len)));
  }
  const char* payload = bytes.data() + bytes.size() - payload_len;
  if (Fnv1a(payload, payload_len) != checksum) {
    return util::Status::InvalidArgument(
        "model bundle: payload checksum mismatch (corrupt file)");
  }

  ModelBundle bundle;
  Cursor sections(payload, payload_len);
  uint32_t last_tag = 0;
  bool seen[kRankedFds + 1] = {false};
  while (!sections.done()) {
    uint32_t tag = 0;
    uint32_t tag_reserved = 0;
    uint64_t len = 0;
    LIMBO_RETURN_IF_ERROR(sections.ReadU32(&tag));
    LIMBO_RETURN_IF_ERROR(sections.ReadU32(&tag_reserved));
    LIMBO_RETURN_IF_ERROR(sections.ReadU64(&len));
    if (tag_reserved != 0) {
      return util::Status::InvalidArgument(
          "model bundle: nonzero reserved section field");
    }
    if (tag <= last_tag || tag > kRankedFds) {
      return util::Status::InvalidArgument(util::StrFormat(
          "model bundle: unknown or out-of-order section tag %u", tag));
    }
    if (len > sections.remaining()) {
      return util::Status::InvalidArgument(
          "model bundle: truncated section");
    }
    last_tag = tag;
    seen[tag] = true;
    const char* body = payload + (payload_len - sections.remaining());
    Cursor section(body, len);
    // Consume the body from the outer cursor by re-slicing.
    sections = Cursor(body + len, sections.remaining() - len);
    switch (tag) {
      case kMeta:
        LIMBO_RETURN_IF_ERROR(ParseMeta(section, &bundle));
        break;
      case kSchema:
        LIMBO_RETURN_IF_ERROR(ParseSchema(section, &bundle));
        break;
      case kDictionary:
        LIMBO_RETURN_IF_ERROR(ParseDictionary(section, &bundle));
        break;
      case kRepresentatives:
        LIMBO_RETURN_IF_ERROR(ParseRepresentatives(section, &bundle));
        break;
      case kAssignments:
        LIMBO_RETURN_IF_ERROR(ParseAssignments(section, &bundle));
        break;
      case kValueGroups:
        LIMBO_RETURN_IF_ERROR(ParseValueGroups(section, &bundle));
        break;
      case kGrouping:
        LIMBO_RETURN_IF_ERROR(ParseGrouping(section, &bundle));
        break;
      case kRankedFds:
        LIMBO_RETURN_IF_ERROR(ParseRankedFds(section, &bundle));
        break;
      default:
        return util::Status::Internal("unreachable section tag");
    }
  }
  for (uint32_t tag : {kMeta, kSchema, kDictionary, kRepresentatives,
                       kAssignments, kValueGroups, kRankedFds}) {
    if (!seen[tag]) {
      return util::Status::InvalidArgument(
          util::StrFormat("model bundle: missing section %u", tag));
    }
  }
  return bundle;
}

util::Status Save(const ModelBundle& bundle, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  const std::string bytes = SerializeBundle(bundle);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<ModelBundle> Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseBundle(buf.str());
}

}  // namespace limbo::model
