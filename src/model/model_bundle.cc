#include "model/model_bundle.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace limbo::model {

namespace {

constexpr char kMagic[8] = {'L', 'I', 'M', 'B', 'O', 'M', 'D', 'L'};

// Section tags, written and required in ascending order.
enum SectionTag : uint32_t {
  kMeta = 1,
  kSchema = 2,
  kDictionary = 3,
  kRepresentatives = 4,
  kAssignments = 5,
  kValueGroups = 6,
  kGrouping = 7,  // optional
  kRankedFds = 8,
  kPhase1Tree = 9,  // optional, version >= 2
  kLineage = 10,    // optional, version >= 2
  kSchemes = 11,    // optional, version >= 3
};

/// Highest section tag a file of `version` may contain.
uint32_t MaxTagForVersion(uint32_t version) {
  if (version >= 3) return kSchemes;
  return version >= 2 ? kLineage : kRankedFds;
}

// A corrupt phase-1-tree section must not be able to recurse the parser
// off the stack; real trees with branching >= 2 are far shallower.
constexpr size_t kMaxTreeDepth = 64;

// ---- writer helpers (host-endian fixed-width, doubles as raw bits) ----

void PutU32(uint32_t v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutF64(double v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutStr(const std::string& s, std::string* out) {
  PutU64(s.size(), out);
  out->append(s);
}

void PutSection(uint32_t tag, const std::string& body, std::string* out) {
  PutU32(tag, out);
  PutU32(0, out);
  PutU64(body.size(), out);
  out->append(body);
}

void PutDcf(const core::Dcf& d, std::string* out) {
  PutF64(d.p, out);
  PutU64(d.cond.SupportSize(), out);
  for (const auto& e : d.cond.entries()) {
    PutU32(e.id, out);
    PutF64(e.mass, out);
  }
  PutU64(d.attr_counts.size(), out);
  for (uint64_t c : d.attr_counts) PutU64(c, out);
}

// ---- bounds-checked reader ----

class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

  util::Status ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  util::Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  util::Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  util::Status ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }

  util::Status ReadStr(std::string* out) {
    uint64_t len = 0;
    LIMBO_RETURN_IF_ERROR(ReadU64(&len));
    if (len > remaining()) {
      return util::Status::InvalidArgument("model bundle: truncated string");
    }
    out->assign(p_, static_cast<size_t>(len));
    p_ += len;
    return util::Status::Ok();
  }

  /// Reads an element count and refuses counts that could not possibly
  /// fit in the remaining bytes — a corrupt length must fail fast, not
  /// drive a multi-gigabyte allocation.
  util::Status ReadCount(size_t min_elem_bytes, uint64_t* count) {
    LIMBO_RETURN_IF_ERROR(ReadU64(count));
    if (min_elem_bytes > 0 && *count > remaining() / min_elem_bytes) {
      return util::Status::InvalidArgument(
          "model bundle: element count exceeds section size");
    }
    return util::Status::Ok();
  }

 private:
  util::Status ReadRaw(void* out, size_t n) {
    if (remaining() < n) {
      return util::Status::InvalidArgument("model bundle: truncated field");
    }
    std::memcpy(out, p_, n);
    p_ += n;
    return util::Status::Ok();
  }

  const char* p_;
  const char* end_;
};

util::Status CheckFinite(double v, const char* what) {
  if (!std::isfinite(v)) {
    return util::Status::InvalidArgument(
        util::StrFormat("model bundle: non-finite %s", what));
  }
  return util::Status::Ok();
}

util::Status ReadDcf(Cursor* in, size_t max_cond_id, core::Dcf* out) {
  LIMBO_RETURN_IF_ERROR(in->ReadF64(&out->p));
  LIMBO_RETURN_IF_ERROR(CheckFinite(out->p, "dcf mass"));
  if (out->p <= 0.0) {
    return util::Status::InvalidArgument("model bundle: dcf mass not > 0");
  }
  uint64_t support = 0;
  LIMBO_RETURN_IF_ERROR(in->ReadCount(sizeof(uint32_t) + sizeof(double),
                                      &support));
  std::vector<core::SparseDistribution::Entry> entries;
  entries.reserve(support);
  for (uint64_t e = 0; e < support; ++e) {
    uint32_t id = 0;
    double mass = 0.0;
    LIMBO_RETURN_IF_ERROR(in->ReadU32(&id));
    LIMBO_RETURN_IF_ERROR(in->ReadF64(&mass));
    LIMBO_RETURN_IF_ERROR(CheckFinite(mass, "dcf conditional mass"));
    if (mass <= 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: dcf conditional mass not > 0");
    }
    if (max_cond_id != 0 && id >= max_cond_id) {
      return util::Status::InvalidArgument(
          "model bundle: dcf support id out of range");
    }
    if (!entries.empty() && id <= entries.back().id) {
      return util::Status::InvalidArgument(
          "model bundle: dcf support ids not strictly increasing");
    }
    entries.push_back({id, mass});
  }
  if (!entries.empty()) {
    out->cond = core::SparseDistribution::FromNormalizedPairs(
        std::move(entries));
  }
  uint64_t num_counts = 0;
  LIMBO_RETURN_IF_ERROR(in->ReadCount(sizeof(uint64_t), &num_counts));
  out->attr_counts.resize(num_counts);
  for (uint64_t a = 0; a < num_counts; ++a) {
    LIMBO_RETURN_IF_ERROR(in->ReadU64(&out->attr_counts[a]));
  }
  return util::Status::Ok();
}

util::Status ExpectDone(const Cursor& in, const char* section) {
  if (!in.done()) {
    return util::Status::InvalidArgument(
        util::StrFormat("model bundle: trailing bytes in %s section",
                        section));
  }
  return util::Status::Ok();
}

// ---- per-section serializers ----

std::string MetaBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.num_rows, &out);
  PutF64(b.phi_t, &out);
  PutF64(b.phi_v, &out);
  PutF64(b.psi, &out);
  PutF64(b.mutual_information, &out);
  PutF64(b.threshold, &out);
  PutF64(b.association_margin, &out);
  PutF64(b.value_mutual_information, &out);
  PutF64(b.value_threshold, &out);
  return out;
}

std::string SchemaBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.schema.NumAttributes(), &out);
  for (const std::string& name : b.schema.Names()) PutStr(name, &out);
  return out;
}

std::string DictionaryBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.dictionary.NumValues(), &out);
  for (relation::ValueId v = 0; v < b.dictionary.NumValues(); ++v) {
    PutU32(b.dictionary.Attribute(v), &out);
    PutU32(b.dictionary.Support(v), &out);
    PutStr(b.dictionary.Text(v), &out);
  }
  return out;
}

std::string RepresentativesBody(const ModelBundle& b) {
  // CSR layout, mirroring DistributionArena: priors, row offsets, then one
  // flat (id, mass) entry slab — so a loader can hand the rows straight to
  // an arena without per-row bookkeeping.
  std::string out;
  PutU64(b.representatives.size(), &out);
  for (const core::Dcf& r : b.representatives) PutF64(r.p, &out);
  uint64_t offset = 0;
  PutU64(offset, &out);
  for (const core::Dcf& r : b.representatives) {
    offset += r.cond.SupportSize();
    PutU64(offset, &out);
  }
  for (const core::Dcf& r : b.representatives) {
    for (const auto& e : r.cond.entries()) {
      PutU32(e.id, &out);
      PutF64(e.mass, &out);
    }
  }
  return out;
}

std::string AssignmentsBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.assignments.size(), &out);
  for (uint32_t label : b.assignments) PutU32(label, &out);
  for (double loss : b.assignment_loss) PutF64(loss, &out);
  return out;
}

std::string ValueGroupsBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.value_groups.size(), &out);
  for (const core::ValueGroup& g : b.value_groups) {
    PutU64(g.values.size(), &out);
    for (relation::ValueId v : g.values) PutU32(v, &out);
    PutDcf(g.dcf, &out);
    PutU8(g.is_duplicate ? 1 : 0, &out);
  }
  PutU64(b.duplicate_groups.size(), &out);
  for (uint32_t g : b.duplicate_groups) PutU32(g, &out);
  return out;
}

std::string GroupingBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.grouping_attributes.size(), &out);
  for (relation::AttributeId a : b.grouping_attributes) PutU32(a, &out);
  PutU64(b.grouping_num_objects, &out);
  PutU64(b.grouping_merges.size(), &out);
  for (const core::Merge& m : b.grouping_merges) {
    PutU32(m.left, &out);
    PutU32(m.right, &out);
    PutU32(m.merged, &out);
    PutF64(m.delta_i, &out);
    PutF64(m.cumulative_loss, &out);
    PutF64(m.p_merged, &out);
  }
  PutU64(b.grouping_cluster_members.size(), &out);
  for (uint64_t bits : b.grouping_cluster_members) PutU64(bits, &out);
  PutF64(b.max_merge_loss, &out);
  return out;
}

void PutFrozenNode(const core::FrozenDcfNode& node, std::string* out) {
  PutU8(node.is_leaf ? 1 : 0, out);
  if (node.is_leaf) {
    PutU64(node.entries.size(), out);
    for (size_t i = 0; i < node.entries.size(); ++i) {
      PutU32(node.entry_ids[i], out);
      PutDcf(node.entries[i], out);
    }
    return;
  }
  PutU64(node.children.size(), out);
  for (const core::FrozenDcfChild& child : node.children) {
    PutF64(child.p, out);
    PutU64(child.acc_ids.size(), out);
    for (size_t i = 0; i < child.acc_ids.size(); ++i) {
      PutU32(child.acc_ids[i], out);
      PutF64(child.acc_masses[i], out);
    }
    PutFrozenNode(child.node, out);
  }
}

std::string Phase1TreeBody(const ModelBundle& b) {
  const core::FrozenDcfTree& t = b.phase1_tree;
  std::string out;
  PutU32(static_cast<uint32_t>(t.branching), &out);
  PutU32(static_cast<uint32_t>(t.leaf_capacity), &out);
  PutF64(t.threshold, &out);
  PutU64(t.stats.height, &out);
  PutU64(t.stats.num_nodes, &out);
  PutU64(t.stats.num_leaf_entries, &out);
  PutU64(t.stats.num_inserts, &out);
  PutU64(t.stats.num_merges, &out);
  PutFrozenNode(t.root, &out);
  PutU64(b.row_entry_ids.size(), &out);
  for (uint32_t id : b.row_entry_ids) PutU32(id, &out);
  return out;
}

std::string LineageBody(const ModelBundle& b) {
  const BundleLineage& l = b.lineage;
  std::string out;
  PutU64(l.parent_checksum, &out);
  PutU32(l.refit_generation, &out);
  PutU32(static_cast<uint32_t>(l.drift_class), &out);
  PutU64(l.base_rows, &out);
  PutU64(l.rows_absorbed, &out);
  PutU64(l.total_rows_absorbed, &out);
  PutF64(l.drift_score, &out);
  PutF64(l.drift_moderate, &out);
  PutF64(l.drift_severe, &out);
  PutF64(l.entropy_drift, &out);
  return out;
}

std::string SchemesBody(const ModelBundle& b) {
  std::string out;
  PutF64(b.schemes_epsilon, &out);
  PutU64(b.schemes_max_separator, &out);
  PutF64(b.schemes_total_entropy, &out);
  PutU64(b.schemes.size(), &out);
  for (const BundleScheme& s : b.schemes) {
    PutU64(s.separator_bits, &out);
    PutF64(s.j_measure, &out);
    PutU64(s.bag_bits.size(), &out);
    for (uint64_t bag : s.bag_bits) PutU64(bag, &out);
  }
  return out;
}

std::string RankedFdsBody(const ModelBundle& b) {
  std::string out;
  PutU64(b.num_fds, &out);
  PutU64(b.ranked_fds.size(), &out);
  for (const core::RankedFd& r : b.ranked_fds) {
    PutU64(r.fd.lhs.bits(), &out);
    PutU64(r.fd.rhs.bits(), &out);
    PutF64(r.rank, &out);
    PutU8(r.anchored ? 1 : 0, &out);
  }
  return out;
}

// ---- per-section parsers ----

util::Status ParseMeta(Cursor in, ModelBundle* b) {
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->num_rows));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->phi_t));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->phi_v));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->psi));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->mutual_information));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->threshold));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->association_margin));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->value_mutual_information));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->value_threshold));
  LIMBO_RETURN_IF_ERROR(ExpectDone(in, "meta"));
  if (b->num_rows == 0) {
    return util::Status::InvalidArgument("model bundle: num_rows is zero");
  }
  for (double v : {b->phi_t, b->phi_v, b->psi, b->mutual_information,
                   b->threshold, b->association_margin,
                   b->value_mutual_information, b->value_threshold}) {
    LIMBO_RETURN_IF_ERROR(CheckFinite(v, "meta field"));
    if (v < 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: negative meta field");
    }
  }
  return util::Status::Ok();
}

util::Status ParseSchema(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint64_t), &count));
  std::vector<std::string> names;
  names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    LIMBO_RETURN_IF_ERROR(in.ReadStr(&name));
    names.push_back(std::move(name));
  }
  LIMBO_RETURN_IF_ERROR(ExpectDone(in, "schema"));
  LIMBO_ASSIGN_OR_RETURN(b->schema, relation::Schema::Create(std::move(names)));
  return util::Status::Ok();
}

util::Status ParseDictionary(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(2 * sizeof(uint32_t) + sizeof(uint64_t), &count));
  if (count > static_cast<uint64_t>(UINT32_MAX)) {
    return util::Status::InvalidArgument(
        "model bundle: dictionary too large");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t attribute = 0;
    uint32_t support = 0;
    std::string text;
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&attribute));
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&support));
    LIMBO_RETURN_IF_ERROR(in.ReadStr(&text));
    if (attribute >= b->schema.NumAttributes()) {
      return util::Status::InvalidArgument(
          "model bundle: dictionary attribute out of range");
    }
    // InternCounted requires the pair to be fresh; a corrupt file with a
    // repeated pair must not silently shadow the first id.
    if (b->dictionary.Find(attribute, text).ok()) {
      return util::Status::InvalidArgument(
          "model bundle: duplicate dictionary entry");
    }
    b->dictionary.InternCounted(attribute, text, support);
  }
  return ExpectDone(in, "dictionary");
}

util::Status ParseRepresentatives(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(sizeof(double) + sizeof(uint64_t), &count));
  std::vector<double> priors(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&priors[i]));
    LIMBO_RETURN_IF_ERROR(CheckFinite(priors[i], "representative mass"));
    if (priors[i] <= 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: representative mass not > 0");
    }
  }
  std::vector<uint64_t> offsets(count + 1);
  for (uint64_t i = 0; i <= count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&offsets[i]));
    if (i > 0 && offsets[i] < offsets[i - 1]) {
      return util::Status::InvalidArgument(
          "model bundle: representative offsets not monotone");
    }
  }
  if (offsets[0] != 0 ||
      offsets[count] >
          in.remaining() / (sizeof(uint32_t) + sizeof(double))) {
    return util::Status::InvalidArgument(
        "model bundle: representative entry slab size mismatch");
  }
  const size_t num_values = b->dictionary.NumValues();
  b->representatives.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<core::SparseDistribution::Entry> entries;
    entries.reserve(offsets[i + 1] - offsets[i]);
    for (uint64_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      uint32_t id = 0;
      double mass = 0.0;
      LIMBO_RETURN_IF_ERROR(in.ReadU32(&id));
      LIMBO_RETURN_IF_ERROR(in.ReadF64(&mass));
      LIMBO_RETURN_IF_ERROR(CheckFinite(mass, "representative entry"));
      if (mass <= 0.0) {
        return util::Status::InvalidArgument(
            "model bundle: representative entry mass not > 0");
      }
      if (id >= num_values) {
        return util::Status::InvalidArgument(
            "model bundle: representative support id out of range");
      }
      if (!entries.empty() && id <= entries.back().id) {
        return util::Status::InvalidArgument(
            "model bundle: representative ids not strictly increasing");
      }
      entries.push_back({id, mass});
    }
    core::Dcf d;
    d.p = priors[i];
    if (!entries.empty()) {
      d.cond = core::SparseDistribution::FromNormalizedPairs(
          std::move(entries));
    }
    b->representatives.push_back(std::move(d));
  }
  return ExpectDone(in, "representatives");
}

util::Status ParseAssignments(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(sizeof(uint32_t) + sizeof(double), &count));
  if (count != b->num_rows) {
    return util::Status::InvalidArgument(
        "model bundle: assignment count != num_rows");
  }
  b->assignments.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&b->assignments[i]));
    if (b->assignments[i] >= b->representatives.size()) {
      return util::Status::InvalidArgument(
          "model bundle: assignment label out of range");
    }
  }
  b->assignment_loss.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->assignment_loss[i]));
    LIMBO_RETURN_IF_ERROR(
        CheckFinite(b->assignment_loss[i], "assignment loss"));
  }
  return ExpectDone(in, "assignments");
}

util::Status ParseValueGroups(Cursor in, ModelBundle* b) {
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint64_t), &count));
  const size_t num_values = b->dictionary.NumValues();
  b->value_groups.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::ValueGroup g;
    uint64_t num_members = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint32_t), &num_members));
    g.values.resize(num_members);
    for (uint64_t m = 0; m < num_members; ++m) {
      uint32_t v = 0;
      LIMBO_RETURN_IF_ERROR(in.ReadU32(&v));
      if (v >= num_values) {
        return util::Status::InvalidArgument(
            "model bundle: value-group member out of range");
      }
      g.values[m] = v;
    }
    // The group DCF's conditional ranges over tuples (or tuple clusters
    // under Double Clustering), so no id bound applies here.
    LIMBO_RETURN_IF_ERROR(ReadDcf(&in, 0, &g.dcf));
    uint8_t dup = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadU8(&dup));
    if (dup > 1) {
      return util::Status::InvalidArgument(
          "model bundle: boolean field out of range");
    }
    g.is_duplicate = dup != 0;
    b->value_groups.push_back(std::move(g));
  }
  uint64_t num_dups = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint32_t), &num_dups));
  b->duplicate_groups.resize(num_dups);
  for (uint64_t i = 0; i < num_dups; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&b->duplicate_groups[i]));
    if (b->duplicate_groups[i] >= b->value_groups.size()) {
      return util::Status::InvalidArgument(
          "model bundle: duplicate-group index out of range");
    }
  }
  return ExpectDone(in, "value groups");
}

util::Status ParseGrouping(Cursor in, ModelBundle* b) {
  b->has_grouping = true;
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint32_t), &count));
  b->grouping_attributes.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&b->grouping_attributes[i]));
    if (b->grouping_attributes[i] >= b->schema.NumAttributes()) {
      return util::Status::InvalidArgument(
          "model bundle: grouping attribute out of range");
    }
  }
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->grouping_num_objects));
  if (b->grouping_num_objects != b->grouping_attributes.size()) {
    return util::Status::InvalidArgument(
        "model bundle: grouping leaf count mismatch");
  }
  uint64_t num_merges = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(3 * sizeof(uint32_t) + 3 * sizeof(double), &num_merges));
  b->grouping_merges.reserve(num_merges);
  for (uint64_t i = 0; i < num_merges; ++i) {
    core::Merge m{};
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&m.left));
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&m.right));
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&m.merged));
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&m.delta_i));
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&m.cumulative_loss));
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&m.p_merged));
    LIMBO_RETURN_IF_ERROR(CheckFinite(m.delta_i, "merge loss"));
    LIMBO_RETURN_IF_ERROR(CheckFinite(m.cumulative_loss, "merge loss"));
    LIMBO_RETURN_IF_ERROR(CheckFinite(m.p_merged, "merge mass"));
    // scipy-linkage convention: the i-th merge creates cluster q+i from
    // two clusters that already exist.
    const uint64_t limit = b->grouping_num_objects + i;
    if (m.left >= limit || m.right >= limit || m.left == m.right ||
        m.merged != limit) {
      return util::Status::InvalidArgument(
          "model bundle: merge ids violate the linkage convention");
    }
    b->grouping_merges.push_back(m);
  }
  uint64_t num_members = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint64_t), &num_members));
  if (num_members != b->grouping_num_objects + b->grouping_merges.size()) {
    return util::Status::InvalidArgument(
        "model bundle: cluster-member table size mismatch");
  }
  b->grouping_cluster_members.resize(num_members);
  for (uint64_t i = 0; i < num_members; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->grouping_cluster_members[i]));
  }
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->max_merge_loss));
  LIMBO_RETURN_IF_ERROR(CheckFinite(b->max_merge_loss, "max merge loss"));
  return ExpectDone(in, "grouping");
}

util::Status ParseRankedFds(Cursor in, ModelBundle* b) {
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->num_fds));
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(2 * sizeof(uint64_t) + sizeof(double) + 1, &count));
  const uint64_t attr_mask =
      fd::AttributeSet::Full(b->schema.NumAttributes()).bits();
  b->ranked_fds.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::RankedFd r;
    uint64_t lhs = 0;
    uint64_t rhs = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&lhs));
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&rhs));
    if ((lhs & ~attr_mask) != 0 || (rhs & ~attr_mask) != 0) {
      return util::Status::InvalidArgument(
          "model bundle: FD attribute bits out of range");
    }
    r.fd.lhs = fd::AttributeSet(lhs);
    r.fd.rhs = fd::AttributeSet(rhs);
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&r.rank));
    LIMBO_RETURN_IF_ERROR(CheckFinite(r.rank, "FD rank"));
    uint8_t anchored = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadU8(&anchored));
    if (anchored > 1) {
      return util::Status::InvalidArgument(
          "model bundle: boolean field out of range");
    }
    r.anchored = anchored != 0;
    b->ranked_fds.push_back(std::move(r));
  }
  return ExpectDone(in, "ranked FDs");
}

/// Recursive node parser for the phase-1 tree section. `depth` is
/// 1-based; `nodes`/`max_depth`/`id_seen` accumulate the structural
/// facts cross-checked against the header stats afterwards.
util::Status ParseFrozenNode(Cursor* in, const core::FrozenDcfTree& t,
                             size_t num_values, size_t depth, size_t* nodes,
                             size_t* max_depth, std::vector<bool>* id_seen,
                             core::FrozenDcfNode* out) {
  if (depth > kMaxTreeDepth) {
    return util::Status::InvalidArgument(
        "model bundle: phase-1 tree deeper than the format allows");
  }
  ++*nodes;
  if (depth > *max_depth) *max_depth = depth;
  uint8_t is_leaf = 0;
  LIMBO_RETURN_IF_ERROR(in->ReadU8(&is_leaf));
  if (is_leaf > 1) {
    return util::Status::InvalidArgument(
        "model bundle: boolean field out of range");
  }
  out->is_leaf = is_leaf != 0;
  if (out->is_leaf) {
    uint64_t count = 0;
    LIMBO_RETURN_IF_ERROR(in->ReadCount(
        sizeof(uint32_t) + sizeof(double) + 2 * sizeof(uint64_t), &count));
    if (count > static_cast<uint64_t>(t.leaf_capacity)) {
      return util::Status::InvalidArgument(
          "model bundle: phase-1 leaf over capacity");
    }
    out->entries.reserve(count);
    out->entry_ids.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t id = 0;
      LIMBO_RETURN_IF_ERROR(in->ReadU32(&id));
      if (id >= id_seen->size() || (*id_seen)[id]) {
        return util::Status::InvalidArgument(
            "model bundle: phase-1 leaf-entry id out of range or repeated");
      }
      (*id_seen)[id] = true;
      core::Dcf entry;
      LIMBO_RETURN_IF_ERROR(ReadDcf(in, num_values, &entry));
      out->entry_ids.push_back(id);
      out->entries.push_back(std::move(entry));
    }
    return util::Status::Ok();
  }
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in->ReadCount(2 * sizeof(double) + 1, &count));
  if (count < 1 || count > static_cast<uint64_t>(t.branching)) {
    return util::Status::InvalidArgument(
        "model bundle: phase-1 internal fan-out out of range");
  }
  out->children.resize(count);
  for (uint64_t c = 0; c < count; ++c) {
    core::FrozenDcfChild& child = out->children[c];
    LIMBO_RETURN_IF_ERROR(in->ReadF64(&child.p));
    LIMBO_RETURN_IF_ERROR(CheckFinite(child.p, "phase-1 child mass"));
    if (child.p <= 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: phase-1 child mass not > 0");
    }
    uint64_t acc_count = 0;
    LIMBO_RETURN_IF_ERROR(
        in->ReadCount(sizeof(uint32_t) + sizeof(double), &acc_count));
    child.acc_ids.resize(acc_count);
    child.acc_masses.resize(acc_count);
    for (uint64_t e = 0; e < acc_count; ++e) {
      LIMBO_RETURN_IF_ERROR(in->ReadU32(&child.acc_ids[e]));
      LIMBO_RETURN_IF_ERROR(in->ReadF64(&child.acc_masses[e]));
      LIMBO_RETURN_IF_ERROR(
          CheckFinite(child.acc_masses[e], "phase-1 accumulator mass"));
      if (child.acc_masses[e] <= 0.0) {
        return util::Status::InvalidArgument(
            "model bundle: phase-1 accumulator mass not > 0");
      }
      if (child.acc_ids[e] >= num_values) {
        return util::Status::InvalidArgument(
            "model bundle: phase-1 accumulator id out of range");
      }
      if (e > 0 && child.acc_ids[e] <= child.acc_ids[e - 1]) {
        return util::Status::InvalidArgument(
            "model bundle: phase-1 accumulator ids not strictly increasing");
      }
    }
    LIMBO_RETURN_IF_ERROR(ParseFrozenNode(in, t, num_values, depth + 1,
                                          nodes, max_depth, id_seen,
                                          &child.node));
  }
  return util::Status::Ok();
}

util::Status ParsePhase1Tree(Cursor in, ModelBundle* b) {
  core::FrozenDcfTree& t = b->phase1_tree;
  uint32_t branching = 0;
  uint32_t leaf_capacity = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&branching));
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&leaf_capacity));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&t.threshold));
  LIMBO_RETURN_IF_ERROR(CheckFinite(t.threshold, "phase-1 threshold"));
  if (branching < 2 || branching > (1u << 16) || leaf_capacity < 1 ||
      leaf_capacity > (1u << 16) || t.threshold < 0.0) {
    return util::Status::InvalidArgument(
        "model bundle: phase-1 tree options out of range");
  }
  t.branching = static_cast<int>(branching);
  t.leaf_capacity = static_cast<int>(leaf_capacity);
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&t.stats.height));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&t.stats.num_nodes));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&t.stats.num_leaf_entries));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&t.stats.num_inserts));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&t.stats.num_merges));
  // Every insert either merged into an existing entry or created one, and
  // the fit pipeline inserts each row exactly once.
  if (t.stats.height < 1 || t.stats.height > kMaxTreeDepth ||
      t.stats.num_nodes < 1 ||
      t.stats.num_leaf_entries > t.stats.num_inserts ||
      t.stats.num_merges != t.stats.num_inserts - t.stats.num_leaf_entries ||
      t.stats.num_leaf_entries > static_cast<uint64_t>(UINT32_MAX) ||
      t.stats.num_inserts != b->num_rows) {
    return util::Status::InvalidArgument(
        "model bundle: phase-1 tree stats inconsistent");
  }
  size_t nodes = 0;
  size_t max_depth = 0;
  std::vector<bool> id_seen(t.stats.num_leaf_entries, false);
  LIMBO_RETURN_IF_ERROR(ParseFrozenNode(&in, t, b->dictionary.NumValues(),
                                        /*depth=*/1, &nodes, &max_depth,
                                        &id_seen, &t.root));
  if (nodes != t.stats.num_nodes || max_depth != t.stats.height) {
    return util::Status::InvalidArgument(
        "model bundle: phase-1 tree shape does not match its stats");
  }
  for (size_t id = 0; id < id_seen.size(); ++id) {
    if (!id_seen[id]) {
      return util::Status::InvalidArgument(
          "model bundle: phase-1 leaf-entry id missing");
    }
  }
  uint64_t num_row_ids = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint32_t), &num_row_ids));
  if (num_row_ids != b->num_rows) {
    return util::Status::InvalidArgument(
        "model bundle: phase-1 row-entry count != num_rows");
  }
  b->row_entry_ids.resize(num_row_ids);
  for (uint64_t i = 0; i < num_row_ids; ++i) {
    LIMBO_RETURN_IF_ERROR(in.ReadU32(&b->row_entry_ids[i]));
    if (b->row_entry_ids[i] >= t.stats.num_leaf_entries) {
      return util::Status::InvalidArgument(
          "model bundle: phase-1 row-entry id out of range");
    }
  }
  LIMBO_RETURN_IF_ERROR(ExpectDone(in, "phase-1 tree"));
  b->has_phase1_tree = true;
  return util::Status::Ok();
}

util::Status ParseLineage(Cursor in, ModelBundle* b) {
  BundleLineage& l = b->lineage;
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&l.parent_checksum));
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&l.refit_generation));
  uint32_t drift_class = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&drift_class));
  if (drift_class > static_cast<uint32_t>(DriftClass::kSevere)) {
    return util::Status::InvalidArgument(
        "model bundle: drift class out of range");
  }
  l.drift_class = static_cast<DriftClass>(drift_class);
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&l.base_rows));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&l.rows_absorbed));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&l.total_rows_absorbed));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&l.drift_score));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&l.drift_moderate));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&l.drift_severe));
  // Version 3 appended the entropy-drift second signal; v2 lineage
  // bodies end after the thresholds.
  if (b->format_version >= 3) {
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&l.entropy_drift));
  }
  LIMBO_RETURN_IF_ERROR(ExpectDone(in, "lineage"));
  for (double v : {l.drift_score, l.drift_moderate, l.drift_severe,
                   l.entropy_drift}) {
    LIMBO_RETURN_IF_ERROR(CheckFinite(v, "lineage field"));
    if (v < 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: negative lineage field");
    }
  }
  if (l.refit_generation < 1 || l.base_rows < 1 ||
      l.rows_absorbed > l.total_rows_absorbed ||
      l.base_rows + l.total_rows_absorbed != b->num_rows) {
    return util::Status::InvalidArgument(
        "model bundle: lineage row accounting inconsistent");
  }
  b->has_lineage = true;
  return util::Status::Ok();
}

util::Status ParseSchemes(Cursor in, ModelBundle* b) {
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->schemes_epsilon));
  LIMBO_RETURN_IF_ERROR(CheckFinite(b->schemes_epsilon, "schemes epsilon"));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&b->schemes_max_separator));
  LIMBO_RETURN_IF_ERROR(in.ReadF64(&b->schemes_total_entropy));
  LIMBO_RETURN_IF_ERROR(
      CheckFinite(b->schemes_total_entropy, "schemes entropy"));
  if (b->schemes_epsilon < 0.0 || b->schemes_total_entropy < 0.0 ||
      b->schemes_max_separator > 64) {
    return util::Status::InvalidArgument(
        "model bundle: schemes header field out of range");
  }
  uint64_t count = 0;
  LIMBO_RETURN_IF_ERROR(
      in.ReadCount(2 * sizeof(uint64_t) + sizeof(double), &count));
  const uint64_t attr_mask =
      fd::AttributeSet::Full(b->schema.NumAttributes()).bits();
  b->schemes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BundleScheme s;
    LIMBO_RETURN_IF_ERROR(in.ReadU64(&s.separator_bits));
    LIMBO_RETURN_IF_ERROR(in.ReadF64(&s.j_measure));
    LIMBO_RETURN_IF_ERROR(CheckFinite(s.j_measure, "scheme j-measure"));
    if ((s.separator_bits & ~attr_mask) != 0 || s.j_measure < 0.0) {
      return util::Status::InvalidArgument(
          "model bundle: scheme separator or j-measure out of range");
    }
    uint64_t num_bags = 0;
    LIMBO_RETURN_IF_ERROR(in.ReadCount(sizeof(uint64_t), &num_bags));
    if (num_bags < 2) {
      return util::Status::InvalidArgument(
          "model bundle: scheme has fewer than two bags");
    }
    s.bag_bits.resize(num_bags);
    uint64_t covered = 0;
    for (uint64_t g = 0; g < num_bags; ++g) {
      LIMBO_RETURN_IF_ERROR(in.ReadU64(&s.bag_bits[g]));
      const uint64_t bag = s.bag_bits[g];
      // Bags come sorted, each inside the schema, each containing the
      // separator, and no attribute outside the separator may repeat —
      // the components partition Ω ∖ X.
      if ((bag & ~attr_mask) != 0 || (s.separator_bits & ~bag) != 0 ||
          (g > 0 && bag <= s.bag_bits[g - 1]) ||
          ((covered & bag) & ~s.separator_bits) != 0) {
        return util::Status::InvalidArgument(
            "model bundle: scheme bags malformed");
      }
      covered |= bag;
    }
    if (covered != attr_mask) {
      return util::Status::InvalidArgument(
          "model bundle: scheme bags do not cover the schema");
    }
    b->schemes.push_back(std::move(s));
  }
  LIMBO_RETURN_IF_ERROR(ExpectDone(in, "schemes"));
  b->has_schemes = true;
  return util::Status::Ok();
}

}  // namespace

const char* DriftClassName(DriftClass c) {
  switch (c) {
    case DriftClass::kNone: return "no-drift";
    case DriftClass::kModerate: return "moderate";
    case DriftClass::kSevere: return "severe";
  }
  return "?";
}

uint64_t Fnv1a(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string SerializeBundle(const ModelBundle& bundle) {
  std::string payload;
  PutSection(kMeta, MetaBody(bundle), &payload);
  PutSection(kSchema, SchemaBody(bundle), &payload);
  PutSection(kDictionary, DictionaryBody(bundle), &payload);
  PutSection(kRepresentatives, RepresentativesBody(bundle), &payload);
  PutSection(kAssignments, AssignmentsBody(bundle), &payload);
  PutSection(kValueGroups, ValueGroupsBody(bundle), &payload);
  if (bundle.has_grouping) {
    PutSection(kGrouping, GroupingBody(bundle), &payload);
  }
  PutSection(kRankedFds, RankedFdsBody(bundle), &payload);
  if (bundle.has_phase1_tree) {
    PutSection(kPhase1Tree, Phase1TreeBody(bundle), &payload);
  }
  if (bundle.has_lineage) {
    PutSection(kLineage, LineageBody(bundle), &payload);
  }
  if (bundle.has_schemes) {
    PutSection(kSchemes, SchemesBody(bundle), &payload);
  }

  std::string out;
  out.reserve(sizeof(kMagic) + 24 + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(kFormatVersion, &out);
  PutU32(0, &out);
  PutU64(payload.size(), &out);
  PutU64(Fnv1a(payload.data(), payload.size()), &out);
  out.append(payload);
  return out;
}

util::Result<ModelBundle> ParseBundle(const std::string& bytes) {
  Cursor header(bytes.data(), bytes.size());
  char magic[sizeof(kMagic)];
  if (bytes.size() < sizeof(kMagic)) {
    return util::Status::InvalidArgument("model bundle: truncated header");
  }
  std::memcpy(magic, bytes.data(), sizeof(kMagic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("not a .limbo model bundle");
  }
  Cursor in(bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic));
  uint32_t version = 0;
  uint32_t reserved = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&version));
  LIMBO_RETURN_IF_ERROR(in.ReadU32(&reserved));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&payload_len));
  LIMBO_RETURN_IF_ERROR(in.ReadU64(&checksum));
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return util::Status::InvalidArgument(util::StrFormat(
        "model bundle: format version %u, this build reads %u..%u", version,
        kMinFormatVersion, kFormatVersion));
  }
  if (reserved != 0) {
    return util::Status::InvalidArgument(
        "model bundle: nonzero reserved header field");
  }
  if (payload_len != in.remaining()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "model bundle: payload length %llu does not match file size",
        static_cast<unsigned long long>(payload_len)));
  }
  const char* payload = bytes.data() + bytes.size() - payload_len;
  if (Fnv1a(payload, payload_len) != checksum) {
    return util::Status::InvalidArgument(
        "model bundle: payload checksum mismatch (corrupt file)");
  }

  ModelBundle bundle;
  bundle.format_version = version;
  bundle.payload_checksum = checksum;
  Cursor sections(payload, payload_len);
  uint32_t last_tag = 0;
  const uint32_t max_tag = MaxTagForVersion(version);
  bool seen[kSchemes + 1] = {false};
  while (!sections.done()) {
    uint32_t tag = 0;
    uint32_t tag_reserved = 0;
    uint64_t len = 0;
    LIMBO_RETURN_IF_ERROR(sections.ReadU32(&tag));
    LIMBO_RETURN_IF_ERROR(sections.ReadU32(&tag_reserved));
    LIMBO_RETURN_IF_ERROR(sections.ReadU64(&len));
    if (tag_reserved != 0) {
      return util::Status::InvalidArgument(
          "model bundle: nonzero reserved section field");
    }
    if (tag <= last_tag || tag > max_tag) {
      return util::Status::InvalidArgument(util::StrFormat(
          "model bundle: unknown or out-of-order section tag %u", tag));
    }
    if (len > sections.remaining()) {
      return util::Status::InvalidArgument(
          "model bundle: truncated section");
    }
    last_tag = tag;
    seen[tag] = true;
    const char* body = payload + (payload_len - sections.remaining());
    Cursor section(body, len);
    // Consume the body from the outer cursor by re-slicing.
    sections = Cursor(body + len, sections.remaining() - len);
    switch (tag) {
      case kMeta:
        LIMBO_RETURN_IF_ERROR(ParseMeta(section, &bundle));
        break;
      case kSchema:
        LIMBO_RETURN_IF_ERROR(ParseSchema(section, &bundle));
        break;
      case kDictionary:
        LIMBO_RETURN_IF_ERROR(ParseDictionary(section, &bundle));
        break;
      case kRepresentatives:
        LIMBO_RETURN_IF_ERROR(ParseRepresentatives(section, &bundle));
        break;
      case kAssignments:
        LIMBO_RETURN_IF_ERROR(ParseAssignments(section, &bundle));
        break;
      case kValueGroups:
        LIMBO_RETURN_IF_ERROR(ParseValueGroups(section, &bundle));
        break;
      case kGrouping:
        LIMBO_RETURN_IF_ERROR(ParseGrouping(section, &bundle));
        break;
      case kRankedFds:
        LIMBO_RETURN_IF_ERROR(ParseRankedFds(section, &bundle));
        break;
      case kPhase1Tree:
        LIMBO_RETURN_IF_ERROR(ParsePhase1Tree(section, &bundle));
        break;
      case kLineage:
        LIMBO_RETURN_IF_ERROR(ParseLineage(section, &bundle));
        break;
      case kSchemes:
        LIMBO_RETURN_IF_ERROR(ParseSchemes(section, &bundle));
        break;
      default:
        return util::Status::Internal("unreachable section tag");
    }
  }
  for (uint32_t tag : {kMeta, kSchema, kDictionary, kRepresentatives,
                       kAssignments, kValueGroups, kRankedFds}) {
    if (!seen[tag]) {
      return util::Status::InvalidArgument(
          util::StrFormat("model bundle: missing section %u", tag));
    }
  }
  return bundle;
}

util::Status Save(const ModelBundle& bundle, const std::string& path) {
  // Write-to-temp + fsync + rename: a crash at any point leaves either
  // the old file or the complete new one, never a truncated bundle that
  // only the checksum catches at load time.
  const std::string bytes = SerializeBundle(bundle);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return util::Status::IoError("cannot open " + tmp);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t w =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return util::Status::IoError("write failed: " + tmp);
    }
    written += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return util::Status::IoError("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return util::Status::IoError("close failed: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return util::Status::IoError("rename failed: " + path);
  }
  return util::Status::Ok();
}

util::Result<ModelBundle> Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseBundle(buf.str());
}

}  // namespace limbo::model
