#ifndef LIMBO_MODEL_MODEL_BUNDLE_H_
#define LIMBO_MODEL_MODEL_BUNDLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aib.h"
#include "core/dcf.h"
#include "core/fd_rank.h"
#include "core/value_clustering.h"
#include "relation/dictionary.h"
#include "relation/schema.h"
#include "util/result.h"

namespace limbo::model {

/// On-disk format version. Bump on any layout change; Load rejects files
/// written by a different version.
inline constexpr uint32_t kFormatVersion = 1;

/// Everything a LIMBO run derives from one relation, frozen for online
/// serving: the paper's artifacts are computed once (tuple clustering,
/// value groups / CV_D, the attribute dendrogram Q, ranked FDs) and then
/// queried millions of times without touching the source CSV again.
///
/// The `.limbo` file layout (all integers and doubles host-endian, doubles
/// as raw 8-byte IEEE-754 so probabilities round-trip bit-exactly):
///
///   | bytes | field                                   |
///   |-------|-----------------------------------------|
///   | 8     | magic "LIMBOMDL"                        |
///   | 4     | format version (u32)                    |
///   | 4     | reserved (0)                            |
///   | 8     | payload length (u64)                    |
///   | 8     | FNV-1a checksum of the payload (u64)    |
///   | ...   | payload: sections in ascending tag order|
///
/// Each section is `u32 tag, u32 reserved, u64 byte length, body`. Any
/// truncation, checksum mismatch, version bump, unknown tag, or value
/// out of range yields a typed util::Status error — never a crash and
/// never a silently-wrong bundle.
struct ModelBundle {
  // ---- meta (run parameters; what thresholded queries re-use) ----
  uint64_t num_rows = 0;             // n: tuples the model was fitted on
  double phi_t = 0.0;                // tuple-clustering accuracy φ_T
  double phi_v = 0.0;                // value-clustering accuracy φ_V
  double psi = 0.0;                  // FD-RANK ψ
  double mutual_information = 0.0;   // I(V;T) of the tuple objects, bits
  double threshold = 0.0;            // Phase-1 merge threshold φ_T·I/n
  double association_margin = 2.0;   // duplicate association margin
  double value_mutual_information = 0.0;  // I of the value objects
  double value_threshold = 0.0;           // value-stage merge threshold

  // ---- schema + dictionary, in original intern order ----
  relation::Schema schema;
  relation::ValueDictionary dictionary;

  // ---- tuple clustering (Phase-2 representatives + Phase-3 labels) ----
  std::vector<core::Dcf> representatives;
  std::vector<uint32_t> assignments;     // one label per fitted tuple
  std::vector<double> assignment_loss;   // δI of each assignment

  // ---- value groups / CV_D ----
  std::vector<core::ValueGroup> value_groups;
  std::vector<uint32_t> duplicate_groups;  // indices into value_groups

  // ---- attribute dendrogram Q (present only when CV_D is non-empty) ----
  bool has_grouping = false;
  std::vector<relation::AttributeId> grouping_attributes;
  uint64_t grouping_num_objects = 0;
  std::vector<core::Merge> grouping_merges;
  std::vector<uint64_t> grouping_cluster_members;  // AttributeSet bits
  double max_merge_loss = 0.0;

  // ---- ranked dependencies ----
  uint64_t num_fds = 0;  // total FDs mined before cover/collapse
  std::vector<core::RankedFd> ranked_fds;
};

/// Serializes `bundle` to the .limbo wire format.
std::string SerializeBundle(const ModelBundle& bundle);

/// Parses a .limbo byte string, validating the header, checksum, section
/// structure and every cross-reference (labels < representative count,
/// value ids < dictionary size, ...).
util::Result<ModelBundle> ParseBundle(const std::string& bytes);

/// File convenience wrappers.
util::Status Save(const ModelBundle& bundle, const std::string& path);
util::Result<ModelBundle> Load(const std::string& path);

/// FNV-1a 64-bit checksum (exposed for tests).
uint64_t Fnv1a(const void* data, size_t size);

}  // namespace limbo::model

#endif  // LIMBO_MODEL_MODEL_BUNDLE_H_
