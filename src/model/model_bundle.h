#ifndef LIMBO_MODEL_MODEL_BUNDLE_H_
#define LIMBO_MODEL_MODEL_BUNDLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aib.h"
#include "core/dcf.h"
#include "core/dcf_tree.h"
#include "core/fd_rank.h"
#include "core/value_clustering.h"
#include "relation/dictionary.h"
#include "relation/schema.h"
#include "util/result.h"

namespace limbo::model {

/// On-disk format version written by this build. Version 2 added the two
/// optional refit sections (phase-1 tree, lineage); version 3 added the
/// optional mined-schemes section and the lineage entropy-drift field.
/// Readers accept 1 through 3 — older files simply parse with the newer
/// state absent. Load rejects any other version.
inline constexpr uint32_t kFormatVersion = 3;
/// Oldest format version this build still reads.
inline constexpr uint32_t kMinFormatVersion = 1;

/// How a refit classified the drift of the new rows against the frozen
/// representatives. Recorded in the lineage section of the child bundle.
enum class DriftClass : uint32_t {
  kNone = 0,      // no-drift: assignments patched in place
  kModerate = 1,  // Phase 2/3 re-run from the updated tree
  kSevere = 2,    // full refit required (no child bundle is written)
};

/// Stable display name ("no-drift" / "moderate" / "severe") used by the
/// CLI and the serve layer's lineage reporting.
const char* DriftClassName(DriftClass c);

/// Provenance of a refitted bundle: which bundle it grew from and how
/// much data it has absorbed since the original fit. Absent on bundles
/// written by `limbo-tool fit` (generation 0).
struct BundleLineage {
  /// FNV-1a payload checksum of the immediate parent bundle.
  uint64_t parent_checksum = 0;
  /// 1 for the first refit child, incrementing per refit.
  uint32_t refit_generation = 0;
  /// Drift classification of the refit that produced this bundle.
  DriftClass drift_class = DriftClass::kNone;
  /// Rows the original (generation-0) fit was run on. Object masses in
  /// the frozen tree stay in units of 1/base_rows across refits.
  uint64_t base_rows = 0;
  /// Rows absorbed by the refit that produced this bundle.
  uint64_t rows_absorbed = 0;
  /// Rows absorbed across the whole chain (num_rows - base_rows).
  uint64_t total_rows_absorbed = 0;
  /// Mean new-row assignment loss / mean fit-time assignment loss.
  double drift_score = 0.0;
  /// The no-drift/moderate and moderate/severe thresholds the refit ran
  /// with, so the classification is reproducible from the bundle alone.
  double drift_moderate = 0.0;
  double drift_severe = 0.0;
  /// Second drift signal (version >= 3): the largest absolute change, in
  /// bits, between any attribute's value entropy over the absorbed rows
  /// and the same attribute's entropy over the parent's frozen Phase-1
  /// counts. Loss-based drift watches the clustering; entropy drift
  /// watches the marginals — a distribution can shift without moving the
  /// assignment loss, and this field catches that.
  double entropy_drift = 0.0;
};

/// One mined approximate acyclic scheme as persisted in the tag-11
/// section: attribute bitmasks (the fd::AttributeSet encoding already
/// used by ranked FDs) plus the scheme's J-measure approximation error.
struct BundleScheme {
  uint64_t separator_bits = 0;
  std::vector<uint64_t> bag_bits;  // ascending; each contains separator
  double j_measure = 0.0;
};

/// Everything a LIMBO run derives from one relation, frozen for online
/// serving: the paper's artifacts are computed once (tuple clustering,
/// value groups / CV_D, the attribute dendrogram Q, ranked FDs) and then
/// queried millions of times without touching the source CSV again.
///
/// The `.limbo` file layout (all integers and doubles host-endian, doubles
/// as raw 8-byte IEEE-754 so probabilities round-trip bit-exactly):
///
///   | bytes | field                                   |
///   |-------|-----------------------------------------|
///   | 8     | magic "LIMBOMDL"                        |
///   | 4     | format version (u32)                    |
///   | 4     | reserved (0)                            |
///   | 8     | payload length (u64)                    |
///   | 8     | FNV-1a checksum of the payload (u64)    |
///   | ...   | payload: sections in ascending tag order|
///
/// Each section is `u32 tag, u32 reserved, u64 byte length, body`. Any
/// truncation, checksum mismatch, version bump, unknown tag, or value
/// out of range yields a typed util::Status error — never a crash and
/// never a silently-wrong bundle.
///
/// Sections (tags 9 and 10 exist only in version >= 2 files, tag 11 only
/// in version >= 3):
///
///   | tag | section         | presence                              |
///   |-----|-----------------|---------------------------------------|
///   | 1   | meta            | required                              |
///   | 2   | schema          | required                              |
///   | 3   | dictionary      | required                              |
///   | 4   | representatives | required                              |
///   | 5   | assignments     | required                              |
///   | 6   | value groups    | required                              |
///   | 7   | grouping        | optional (CV_D non-empty)             |
///   | 8   | ranked FDs      | required                              |
///   | 9   | phase-1 tree    | optional (fit --no-refit-state omits) |
///   | 10  | lineage         | optional (refit children only)        |
///   | 11  | mined schemes   | optional (fit --schemes)              |
struct ModelBundle {
  // ---- meta (run parameters; what thresholded queries re-use) ----
  uint64_t num_rows = 0;             // n: tuples the model was fitted on
  double phi_t = 0.0;                // tuple-clustering accuracy φ_T
  double phi_v = 0.0;                // value-clustering accuracy φ_V
  double psi = 0.0;                  // FD-RANK ψ
  double mutual_information = 0.0;   // I(V;T) of the tuple objects, bits
  double threshold = 0.0;            // Phase-1 merge threshold φ_T·I/n
  double association_margin = 2.0;   // duplicate association margin
  double value_mutual_information = 0.0;  // I of the value objects
  double value_threshold = 0.0;           // value-stage merge threshold

  // ---- schema + dictionary, in original intern order ----
  relation::Schema schema;
  relation::ValueDictionary dictionary;

  // ---- tuple clustering (Phase-2 representatives + Phase-3 labels) ----
  std::vector<core::Dcf> representatives;
  std::vector<uint32_t> assignments;     // one label per fitted tuple
  std::vector<double> assignment_loss;   // δI of each assignment

  // ---- value groups / CV_D ----
  std::vector<core::ValueGroup> value_groups;
  std::vector<uint32_t> duplicate_groups;  // indices into value_groups

  // ---- attribute dendrogram Q (present only when CV_D is non-empty) ----
  bool has_grouping = false;
  std::vector<relation::AttributeId> grouping_attributes;
  uint64_t grouping_num_objects = 0;
  std::vector<core::Merge> grouping_merges;
  std::vector<uint64_t> grouping_cluster_members;  // AttributeSet bits
  double max_merge_loss = 0.0;

  // ---- ranked dependencies ----
  uint64_t num_fds = 0;  // total FDs mined before cover/collapse
  std::vector<core::RankedFd> ranked_fds;

  // ---- refit state (optional; version >= 2) ----
  /// Frozen Phase-1 DCF tree, rehydratable into a Phase1Builder that
  /// accepts further incremental inserts.
  bool has_phase1_tree = false;
  core::FrozenDcfTree phase1_tree;
  /// Per fitted row, the id of the Phase-1 leaf entry it was absorbed
  /// into (parallel to `assignments`). Lets a refit re-derive labels for
  /// the original rows from an updated tree without the raw data.
  std::vector<uint32_t> row_entry_ids;
  /// Refit provenance (refit children only).
  bool has_lineage = false;
  BundleLineage lineage;

  // ---- mined acyclic schemes (optional; version >= 3) ----
  bool has_schemes = false;
  /// Mining knobs the schemes were found with, for reproducibility.
  double schemes_epsilon = 0.0;
  uint64_t schemes_max_separator = 0;
  /// H(Ω) of the fitted relation in bits (the J-measure baseline).
  double schemes_total_entropy = 0.0;
  std::vector<BundleScheme> schemes;

  // ---- runtime-only fields (never serialized) ----
  /// Format version of the file this bundle was parsed from; bundles
  /// built in memory default to the current version.
  uint32_t format_version = kFormatVersion;
  /// FNV-1a checksum of the payload this bundle was parsed from (0 for
  /// bundles built in memory). A child's lineage.parent_checksum equals
  /// the parent's payload_checksum.
  uint64_t payload_checksum = 0;
};

/// Serializes `bundle` to the .limbo wire format.
std::string SerializeBundle(const ModelBundle& bundle);

/// Parses a .limbo byte string, validating the header, checksum, section
/// structure and every cross-reference (labels < representative count,
/// value ids < dictionary size, ...).
util::Result<ModelBundle> ParseBundle(const std::string& bytes);

/// File convenience wrappers. Save is crash-safe: it writes to
/// `<path>.tmp`, fsyncs, then atomically renames over `path`, so a crash
/// mid-write can never leave a truncated `.limbo` behind.
util::Status Save(const ModelBundle& bundle, const std::string& path);
util::Result<ModelBundle> Load(const std::string& path);

/// FNV-1a 64-bit checksum (exposed for tests).
uint64_t Fnv1a(const void* data, size_t size);

}  // namespace limbo::model

#endif  // LIMBO_MODEL_MODEL_BUNDLE_H_
