#include "model/fit.h"

#include <utility>

#include "core/limbo.h"
#include "core/structure_summary.h"
#include "core/tuple_clustering.h"
#include "obs/trace.h"
#include "relation/row_source.h"
#include "schemes/entropy_oracle.h"
#include "schemes/mine.h"

namespace limbo::model {

util::Result<ModelBundle> FitModel(const relation::Relation& rel,
                                   const FitOptions& options) {
  if (rel.NumTuples() == 0) {
    return util::Status::InvalidArgument("cannot fit a model on 0 rows");
  }
  if (options.k == 0) {
    return util::Status::InvalidArgument("fit requires k >= 1");
  }
  LIMBO_OBS_SPAN(fit_span, "model.fit");

  ModelBundle bundle;
  bundle.num_rows = rel.NumTuples();
  bundle.phi_t = options.phi_t;
  bundle.phi_v = options.phi_v;
  bundle.psi = options.psi;
  bundle.association_margin = options.association_margin;
  bundle.schema = rel.schema();
  bundle.dictionary = rel.dictionary();

  // Tuple clustering: the frozen assignment map.
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);
  core::LimboOptions limbo_options;
  limbo_options.phi = options.phi_t;
  limbo_options.k = options.k;
  limbo_options.threads = options.threads;
  limbo_options.freeze_tree = options.refit_state;
  LIMBO_ASSIGN_OR_RETURN(core::LimboResult run,
                         core::RunLimbo(objects, limbo_options));
  bundle.mutual_information = run.mutual_information;
  bundle.threshold = run.threshold;
  bundle.representatives = std::move(run.representatives);
  bundle.assignments = std::move(run.assignments);
  bundle.assignment_loss = std::move(run.assignment_loss);
  if (run.has_frozen_tree) {
    bundle.has_phase1_tree = true;
    bundle.phase1_tree = std::move(run.frozen_tree);
    bundle.row_entry_ids = std::move(run.row_entry_ids);
  }

  // Derived structure: value groups / CV_D, dendrogram, ranked FDs.
  core::StructureSummaryOptions summary_options;
  summary_options.phi_t = options.phi_t;
  summary_options.phi_v = options.phi_v;
  summary_options.psi = options.psi;
  LIMBO_ASSIGN_OR_RETURN(core::StructureSummary summary,
                         core::SummarizeStructure(rel, summary_options));
  bundle.value_mutual_information = summary.values.mutual_information;
  bundle.value_threshold = summary.values.threshold;
  bundle.value_groups = std::move(summary.values.groups);
  bundle.duplicate_groups.reserve(summary.values.duplicate_groups.size());
  for (size_t g : summary.values.duplicate_groups) {
    bundle.duplicate_groups.push_back(static_cast<uint32_t>(g));
  }
  bundle.has_grouping = summary.has_grouping;
  if (summary.has_grouping) {
    bundle.grouping_attributes = std::move(summary.grouping.attributes);
    bundle.grouping_num_objects = summary.grouping.aib.num_objects();
    bundle.grouping_merges = summary.grouping.aib.merges();
    bundle.grouping_cluster_members.reserve(
        summary.grouping.cluster_members.size());
    for (const fd::AttributeSet& s : summary.grouping.cluster_members) {
      bundle.grouping_cluster_members.push_back(s.bits());
    }
    bundle.max_merge_loss = summary.grouping.max_merge_loss;
  }
  bundle.num_fds = summary.num_fds;
  bundle.ranked_fds = std::move(summary.ranked_cover);

  if (options.mine_schemes && rel.schema().NumAttributes() >= 2) {
    LIMBO_OBS_SPAN(schemes_span, "model.fit.schemes");
    relation::RelationRowSource source(rel);
    schemes::EntropyOracleOptions oracle_options;
    oracle_options.threads = options.threads;
    schemes::EntropyOracle oracle(source, oracle_options);
    schemes::MineOptions mine_options;
    mine_options.epsilon = options.schemes_epsilon;
    mine_options.max_separator = options.schemes_max_separator;
    LIMBO_ASSIGN_OR_RETURN(schemes::MineResult mined,
                           schemes::MineAcyclicSchemes(oracle, mine_options));
    bundle.has_schemes = true;
    bundle.schemes_epsilon = options.schemes_epsilon;
    bundle.schemes_max_separator = options.schemes_max_separator;
    bundle.schemes_total_entropy = mined.total_entropy;
    bundle.schemes.reserve(mined.schemes.size());
    for (const schemes::AcyclicScheme& s : mined.schemes) {
      BundleScheme out;
      out.separator_bits = s.separator.bits();
      out.j_measure = s.j_measure;
      out.bag_bits.reserve(s.bags.size());
      for (fd::AttributeSet bag : s.bags) out.bag_bits.push_back(bag.bits());
      bundle.schemes.push_back(std::move(out));
    }
  }
  return bundle;
}

}  // namespace limbo::model
