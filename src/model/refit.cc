#include "model/refit.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/aib.h"
#include "core/limbo.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace limbo::model {

namespace {

// Ratio cap for the degenerate case where the parent's mean fit loss is
// zero but the new rows lose mass — "infinitely worse than fit time",
// kept finite so it serializes and prints cleanly.
constexpr double kMaxDriftScore = 1e9;

DriftClass Classify(double score, const RefitOptions& options) {
  if (score < options.drift_moderate) return DriftClass::kNone;
  if (score < options.drift_severe) return DriftClass::kModerate;
  return DriftClass::kSevere;
}

}  // namespace

util::Result<RefitResult> RefitModel(const ModelBundle& parent,
                                     relation::RowSource& rows,
                                     const RefitOptions& options) {
  if (!parent.has_phase1_tree) {
    return util::Status::InvalidArgument(
        "bundle carries no phase-1 tree: refit needs a model fitted with "
        "refit state (limbo-tool fit without --no-refit-state)");
  }
  if (options.drift_moderate < 0.0 || options.drift_severe < 0.0 ||
      options.drift_moderate > options.drift_severe) {
    return util::Status::InvalidArgument(
        "drift thresholds must satisfy 0 <= moderate <= severe");
  }
  const size_t m = parent.schema.NumAttributes();
  if (rows.schema().Names() != parent.schema.Names()) {
    return util::Status::InvalidArgument(
        "new rows' schema does not match the model's");
  }
  LIMBO_OBS_SPAN(refit_span, "model.refit");

  // Masses stay in units of 1/base_rows across the whole refit chain so
  // new-row summaries compose with the frozen tree's, and new-row losses
  // are comparable to the parent's fit-time losses.
  const uint64_t base_rows =
      parent.has_lineage ? parent.lineage.base_rows : parent.num_rows;
  const double row_mass = 1.0 / static_cast<double>(base_rows);

  core::Phase1Builder builder(parent.phase1_tree);
  core::Phase3Assigner drift_assigner(parent.representatives,
                                      options.threads);
  relation::ValueDictionary dictionary = parent.dictionary;

  // One streaming pass over the new rows: every buffered chunk is (a)
  // assigned against the frozen representatives — the drift signal, and
  // on the no-drift path the new labels themselves — and (b) inserted
  // into the rehydrated tree, recording each row's leaf entry.
  const size_t chunk_rows =
      options.chunk_rows == 0 ? RefitOptions().chunk_rows : options.chunk_rows;
  std::vector<core::Dcf> chunk;
  chunk.reserve(chunk_rows);
  std::vector<uint32_t> new_labels;
  std::vector<double> new_losses;
  std::vector<uint32_t> new_entry_ids;
  std::vector<std::string> fields;
  std::vector<uint32_t> ids(m);
  uint64_t absorbed = 0;
  auto flush = [&]() {
    if (chunk.empty()) return;
    const size_t at = new_labels.size();
    new_labels.resize(at + chunk.size());
    new_losses.resize(at + chunk.size());
    drift_assigner.AssignChunk(chunk, new_labels.data() + at,
                               new_losses.data() + at);
    for (const core::Dcf& object : chunk) {
      new_entry_ids.push_back(builder.Insert(object));
    }
    chunk.clear();
  };
  while (true) {
    LIMBO_ASSIGN_OR_RETURN(const bool more, rows.Next(&fields));
    if (!more) break;
    if (fields.size() != m) {
      return util::Status::InvalidArgument(util::StrFormat(
          "new row %llu has %zu fields, schema has %zu",
          static_cast<unsigned long long>(absorbed + 1), fields.size(), m));
    }
    for (size_t a = 0; a < m; ++a) {
      ids[a] = dictionary.InternOccurrence(
          static_cast<relation::AttributeId>(a), fields[a]);
    }
    core::Dcf object;
    object.p = row_mass;
    object.cond = core::SparseDistribution::UniformOver(ids);
    chunk.push_back(std::move(object));
    ++absorbed;
    if (chunk.size() >= chunk_rows) flush();
  }
  flush();
  drift_assigner.Flush();
  LIMBO_OBS_COUNT("refit.rows_absorbed", absorbed);

  RefitResult result;
  result.rows_absorbed = absorbed;
  double fit_total = 0.0;
  for (const double loss : parent.assignment_loss) fit_total += loss;
  result.fit_mean_loss =
      parent.assignment_loss.empty()
          ? 0.0
          : fit_total / static_cast<double>(parent.assignment_loss.size());
  double new_total = 0.0;
  for (const double loss : new_losses) new_total += loss;
  result.new_rows_mean_loss =
      absorbed == 0 ? 0.0 : new_total / static_cast<double>(absorbed);
  if (absorbed == 0 || result.new_rows_mean_loss == 0.0) {
    result.drift_score = 0.0;
  } else if (result.fit_mean_loss == 0.0) {
    result.drift_score = kMaxDriftScore;
  } else {
    result.drift_score =
        std::min(result.new_rows_mean_loss / result.fit_mean_loss,
                 kMaxDriftScore);
  }
  result.drift_class = Classify(result.drift_score, options);
  if (result.drift_class == DriftClass::kSevere) {
    LIMBO_OBS_COUNT("refit.severe", 1);
    return result;
  }

  ModelBundle child = parent;
  child.dictionary = std::move(dictionary);
  child.num_rows = parent.num_rows + absorbed;
  child.row_entry_ids.insert(child.row_entry_ids.end(), new_entry_ids.begin(),
                             new_entry_ids.end());
  child.phase1_tree = builder.Freeze();

  if (result.drift_class == DriftClass::kNone) {
    // Patch path: representatives and original assignments stay frozen;
    // the new rows' labels/losses from the drift scan are appended.
    child.assignments.insert(child.assignments.end(), new_labels.begin(),
                             new_labels.end());
    child.assignment_loss.insert(child.assignment_loss.end(),
                                 new_losses.begin(), new_losses.end());
    LIMBO_OBS_COUNT("refit.patched", 1);
  } else {
    // Moderate drift: re-run Phase 2/3 from the updated tree. The raw
    // rows behind the old leaf entries are gone, so rows inherit the
    // label of their leaf entry; each row's loss is its mass share of
    // the leaf's assignment loss.
    LIMBO_OBS_SPAN(rerun_span, "model.refit.phase23");
    const std::vector<core::Dcf> leaves = builder.Leaves();
    const std::vector<uint32_t> leaf_ids = builder.LeafEntryIds();
    const size_t k =
        std::min(parent.representatives.size(), leaves.size());
    core::AibOptions aib_options;
    aib_options.threads = options.threads;
    aib_options.min_k = k;
    LIMBO_ASSIGN_OR_RETURN(core::AibResult aib,
                           core::AgglomerativeIb(leaves, aib_options));
    LIMBO_ASSIGN_OR_RETURN(child.representatives,
                           core::ClusterDcfsAtK(leaves, aib, k));
    std::vector<double> leaf_loss;
    LIMBO_ASSIGN_OR_RETURN(
        const std::vector<uint32_t> leaf_labels,
        core::LimboPhase3(leaves, child.representatives, &leaf_loss,
                          options.threads));
    std::vector<uint32_t> entry_to_leaf(builder.stats().num_leaf_entries, 0);
    for (size_t i = 0; i < leaf_ids.size(); ++i) {
      entry_to_leaf[leaf_ids[i]] = static_cast<uint32_t>(i);
    }
    child.assignments.resize(child.num_rows);
    child.assignment_loss.resize(child.num_rows);
    for (uint64_t r = 0; r < child.num_rows; ++r) {
      const uint32_t leaf = entry_to_leaf[child.row_entry_ids[r]];
      child.assignments[r] = leaf_labels[leaf];
      child.assignment_loss[r] =
          leaf_loss[leaf] * (row_mass / leaves[leaf].p);
    }
    LIMBO_OBS_COUNT("refit.phase23_reruns", 1);
  }

  child.has_lineage = true;
  child.lineage.parent_checksum = parent.payload_checksum;
  child.lineage.refit_generation =
      parent.has_lineage ? parent.lineage.refit_generation + 1 : 1;
  child.lineage.drift_class = result.drift_class;
  child.lineage.base_rows = base_rows;
  child.lineage.rows_absorbed = absorbed;
  child.lineage.total_rows_absorbed = child.num_rows - base_rows;
  child.lineage.drift_score = result.drift_score;
  child.lineage.drift_moderate = options.drift_moderate;
  child.lineage.drift_severe = options.drift_severe;
  result.bundle = std::move(child);
  return result;
}

}  // namespace limbo::model
