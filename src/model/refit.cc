#include "model/refit.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/aib.h"
#include "core/attribute_grouping.h"
#include "core/fd_rank.h"
#include "core/limbo.h"
#include "core/value_clustering.h"
#include "fd/closure.h"
#include "fd/fdep.h"
#include "fd/min_cover.h"
#include "fd/tane.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "schemes/entropy_oracle.h"
#include "util/strings.h"

namespace limbo::model {

namespace {

// Ratio cap for the degenerate case where the parent's mean fit loss is
// zero but the new rows lose mass — "infinitely worse than fit time",
// kept finite so it serializes and prints cleanly.
constexpr double kMaxDriftScore = 1e9;

DriftClass Classify(double score, const RefitOptions& options) {
  if (score < options.drift_moderate) return DriftClass::kNone;
  if (score < options.drift_severe) return DriftClass::kModerate;
  return DriftClass::kSevere;
}

/// Second drift signal: per-attribute value entropies of the absorbed
/// rows (one schemes::EntropyOracle pass over the Reset source) against
/// the same entropies recovered from the parent's frozen dictionary
/// supports (per-attribute occurrence counts over parent.num_rows). The
/// loss-based score watches the clustering; this watches the marginals.
util::Result<double> EntropyDrift(const ModelBundle& parent,
                                  relation::RowSource& rows,
                                  size_t threads) {
  LIMBO_RETURN_IF_ERROR(rows.Reset());
  schemes::EntropyOracleOptions oracle_options;
  oracle_options.threads = threads;
  schemes::EntropyOracle oracle(rows, oracle_options);
  const size_t m = parent.schema.NumAttributes();
  std::vector<fd::AttributeSet> singles;
  singles.reserve(m);
  for (size_t a = 0; a < m; ++a) {
    singles.push_back(
        fd::AttributeSet::Single(static_cast<relation::AttributeId>(a)));
  }
  LIMBO_ASSIGN_OR_RETURN(const std::vector<double> absorbed_h,
                         oracle.HBatch(singles));
  std::vector<std::vector<uint64_t>> counts(m);
  for (relation::ValueId v = 0; v < parent.dictionary.NumValues(); ++v) {
    counts[parent.dictionary.Attribute(v)].push_back(
        parent.dictionary.Support(v));
  }
  double drift = 0.0;
  for (size_t a = 0; a < m; ++a) {
    const double parent_h =
        schemes::EntropyFromCounts(std::move(counts[a]), parent.num_rows);
    drift = std::max(drift, std::fabs(absorbed_h[a] - parent_h));
  }
  return drift;
}

/// Moderate-path structure refresh: re-derives the CV_D value groups and
/// the ranked FD cover from the absorbed rows instead of carrying them
/// verbatim from the parent. The parent's raw rows are gone, so the
/// refresh is anchored two ways: value groups are re-clustered on the
/// absorbed relation (ids remapped into the chain dictionary), and an FD
/// survives only if it follows from the parent's cover AND still holds
/// exactly on the absorbed rows — dependencies the new data broke drop
/// out, accidental dependencies of the small absorbed sample never enter.
util::Status RefreshDerivedStructure(const ModelBundle& parent,
                                     const relation::Relation& absorbed,
                                     ModelBundle* child, size_t threads) {
  LIMBO_OBS_SPAN(span, "model.refit.structure");

  // --- CV_D value groups over the absorbed rows ---
  core::ValueClusteringOptions value_options;
  value_options.phi_v = parent.phi_v;
  LIMBO_ASSIGN_OR_RETURN(core::ValueClusteringResult values,
                         core::ClusterValues(absorbed, value_options));

  // Attribute grouping runs before the id remap: it reads the groups in
  // the absorbed relation's own id space. Attribute ids are schema-global
  // so the result needs no translation.
  core::AttributeGroupingResult grouping;
  bool rederived_grouping = false;
  if (!values.duplicate_groups.empty()) {
    core::AttributeGroupingOptions grouping_options;
    grouping_options.threads = threads;
    auto grouped = core::GroupAttributes(absorbed, values, grouping_options);
    if (grouped.ok()) {
      grouping = std::move(grouped).value();
      rederived_grouping = true;
    }
  }

  // Remap group members into the chain dictionary (every absorbed value
  // was interned there by the streaming pass). The group DCF conditionals
  // stay in the absorbed relation's tuple space, as at fit time.
  for (core::ValueGroup& g : values.groups) {
    for (relation::ValueId& v : g.values) {
      LIMBO_ASSIGN_OR_RETURN(
          v, child->dictionary.Find(absorbed.dictionary().Attribute(v),
                                    absorbed.dictionary().Text(v)));
    }
  }
  child->value_mutual_information = values.mutual_information;
  child->value_threshold = values.threshold;
  child->value_groups = std::move(values.groups);
  child->duplicate_groups.clear();
  for (size_t g : values.duplicate_groups) {
    child->duplicate_groups.push_back(static_cast<uint32_t>(g));
  }
  if (rederived_grouping) {
    child->has_grouping = true;
    child->grouping_attributes = grouping.attributes;
    child->grouping_num_objects = grouping.aib.num_objects();
    child->grouping_merges = grouping.aib.merges();
    child->grouping_cluster_members.clear();
    for (const fd::AttributeSet& s : grouping.cluster_members) {
      child->grouping_cluster_members.push_back(s.bits());
    }
    child->max_merge_loss = grouping.max_merge_loss;
    LIMBO_OBS_COUNT("refit.grouping_rederived", 1);
  } else if (child->has_grouping) {
    // CV_D of the absorbed rows was empty: keep the parent's dendrogram
    // (already copied into the child) as the ranking anchor.
    grouping.attributes = child->grouping_attributes;
    grouping.aib = core::AibResult(child->grouping_num_objects,
                                   child->grouping_merges);
    grouping.cluster_members.reserve(
        child->grouping_cluster_members.size());
    for (uint64_t bits : child->grouping_cluster_members) {
      grouping.cluster_members.push_back(fd::AttributeSet(bits));
    }
    grouping.max_merge_loss = child->max_merge_loss;
  }

  // --- FD cover re-validated against the absorbed rows ---
  std::vector<fd::FunctionalDependency> parent_fds;
  for (const core::RankedFd& r : parent.ranked_fds) {
    for (relation::AttributeId a : r.fd.rhs.ToList()) {
      parent_fds.push_back({r.fd.lhs, fd::AttributeSet::Single(a)});
    }
  }
  std::vector<fd::FunctionalDependency> mined;
  if (absorbed.NumTuples() > 2000) {
    fd::TaneOptions tane_options;
    tane_options.min_lhs = 1;
    LIMBO_ASSIGN_OR_RETURN(mined, fd::Tane::Mine(absorbed, tane_options));
  } else {
    LIMBO_ASSIGN_OR_RETURN(mined, fd::Fdep::Mine(absorbed));
  }
  std::vector<fd::FunctionalDependency> kept;
  auto push_unique = [&kept](const fd::FunctionalDependency& f) {
    for (const fd::FunctionalDependency& k : kept) {
      if (k == f) return;
    }
    kept.push_back(f);
  };
  for (const fd::FunctionalDependency& f : parent_fds) {
    if (fd::Holds(absorbed, f)) push_unique(f);
  }
  for (const fd::FunctionalDependency& f : mined) {
    if (fd::Implies(parent_fds, f)) push_unique(f);
  }
  child->num_fds = kept.size();
  const auto cover = fd::MinimumCover(kept, /*merge_same_lhs=*/false);
  child->ranked_fds.clear();
  if (child->has_grouping) {
    core::FdRankOptions rank_options;
    rank_options.psi = parent.psi;
    LIMBO_ASSIGN_OR_RETURN(child->ranked_fds,
                           core::RankFds(cover, grouping, rank_options));
  } else {
    for (const fd::FunctionalDependency& f : cover) {
      child->ranked_fds.push_back({f, 0.0, false});
    }
  }
  LIMBO_OBS_COUNT("refit.structure_refreshes", 1);
  return util::Status::Ok();
}

}  // namespace

util::Result<RefitResult> RefitModel(const ModelBundle& parent,
                                     relation::RowSource& rows,
                                     const RefitOptions& options) {
  if (!parent.has_phase1_tree) {
    return util::Status::InvalidArgument(
        "bundle carries no phase-1 tree: refit needs a model fitted with "
        "refit state (limbo-tool fit without --no-refit-state)");
  }
  if (options.drift_moderate < 0.0 || options.drift_severe < 0.0 ||
      options.drift_moderate > options.drift_severe) {
    return util::Status::InvalidArgument(
        "drift thresholds must satisfy 0 <= moderate <= severe");
  }
  const size_t m = parent.schema.NumAttributes();
  if (rows.schema().Names() != parent.schema.Names()) {
    return util::Status::InvalidArgument(
        "new rows' schema does not match the model's");
  }
  LIMBO_OBS_SPAN(refit_span, "model.refit");

  // Masses stay in units of 1/base_rows across the whole refit chain so
  // new-row summaries compose with the frozen tree's, and new-row losses
  // are comparable to the parent's fit-time losses.
  const uint64_t base_rows =
      parent.has_lineage ? parent.lineage.base_rows : parent.num_rows;
  const double row_mass = 1.0 / static_cast<double>(base_rows);

  core::Phase1Builder builder(parent.phase1_tree);
  core::Phase3Assigner drift_assigner(parent.representatives,
                                      options.threads);
  relation::ValueDictionary dictionary = parent.dictionary;

  // One streaming pass over the new rows: every buffered chunk is (a)
  // assigned against the frozen representatives — the drift signal, and
  // on the no-drift path the new labels themselves — and (b) inserted
  // into the rehydrated tree, recording each row's leaf entry.
  const size_t chunk_rows =
      options.chunk_rows == 0 ? RefitOptions().chunk_rows : options.chunk_rows;
  std::vector<core::Dcf> chunk;
  chunk.reserve(chunk_rows);
  std::vector<uint32_t> new_labels;
  std::vector<double> new_losses;
  std::vector<uint32_t> new_entry_ids;
  std::vector<std::string> fields;
  std::vector<uint32_t> ids(m);
  uint64_t absorbed = 0;
  auto flush = [&]() {
    if (chunk.empty()) return;
    const size_t at = new_labels.size();
    new_labels.resize(at + chunk.size());
    new_losses.resize(at + chunk.size());
    drift_assigner.AssignChunk(chunk, new_labels.data() + at,
                               new_losses.data() + at);
    for (const core::Dcf& object : chunk) {
      new_entry_ids.push_back(builder.Insert(object));
    }
    chunk.clear();
  };
  while (true) {
    LIMBO_ASSIGN_OR_RETURN(const bool more, rows.Next(&fields));
    if (!more) break;
    if (fields.size() != m) {
      return util::Status::InvalidArgument(util::StrFormat(
          "new row %llu has %zu fields, schema has %zu",
          static_cast<unsigned long long>(absorbed + 1), fields.size(), m));
    }
    for (size_t a = 0; a < m; ++a) {
      ids[a] = dictionary.InternOccurrence(
          static_cast<relation::AttributeId>(a), fields[a]);
    }
    core::Dcf object;
    object.p = row_mass;
    object.cond = core::SparseDistribution::UniformOver(ids);
    chunk.push_back(std::move(object));
    ++absorbed;
    if (chunk.size() >= chunk_rows) flush();
  }
  flush();
  drift_assigner.Flush();
  LIMBO_OBS_COUNT("refit.rows_absorbed", absorbed);

  RefitResult result;
  result.rows_absorbed = absorbed;
  double fit_total = 0.0;
  for (const double loss : parent.assignment_loss) fit_total += loss;
  result.fit_mean_loss =
      parent.assignment_loss.empty()
          ? 0.0
          : fit_total / static_cast<double>(parent.assignment_loss.size());
  double new_total = 0.0;
  for (const double loss : new_losses) new_total += loss;
  result.new_rows_mean_loss =
      absorbed == 0 ? 0.0 : new_total / static_cast<double>(absorbed);
  if (absorbed == 0 || result.new_rows_mean_loss == 0.0) {
    result.drift_score = 0.0;
  } else if (result.fit_mean_loss == 0.0) {
    result.drift_score = kMaxDriftScore;
  } else {
    result.drift_score =
        std::min(result.new_rows_mean_loss / result.fit_mean_loss,
                 kMaxDriftScore);
  }
  result.drift_class = Classify(result.drift_score, options);
  if (result.drift_class == DriftClass::kSevere) {
    LIMBO_OBS_COUNT("refit.severe", 1);
    return result;
  }

  // Second signal: entropy drift of the absorbed rows' marginals against
  // the frozen counts. Informational — it does not change the class.
  if (absorbed > 0) {
    LIMBO_ASSIGN_OR_RETURN(result.entropy_drift,
                           EntropyDrift(parent, rows, options.threads));
  }

  ModelBundle child = parent;
  child.dictionary = std::move(dictionary);
  child.num_rows = parent.num_rows + absorbed;
  child.row_entry_ids.insert(child.row_entry_ids.end(), new_entry_ids.begin(),
                             new_entry_ids.end());
  child.phase1_tree = builder.Freeze();

  if (result.drift_class == DriftClass::kNone) {
    // Patch path: representatives and original assignments stay frozen;
    // the new rows' labels/losses from the drift scan are appended.
    child.assignments.insert(child.assignments.end(), new_labels.begin(),
                             new_labels.end());
    child.assignment_loss.insert(child.assignment_loss.end(),
                                 new_losses.begin(), new_losses.end());
    LIMBO_OBS_COUNT("refit.patched", 1);
  } else {
    // Moderate drift: re-run Phase 2/3 from the updated tree. The raw
    // rows behind the old leaf entries are gone, so rows inherit the
    // label of their leaf entry; each row's loss is its mass share of
    // the leaf's assignment loss.
    LIMBO_OBS_SPAN(rerun_span, "model.refit.phase23");
    const std::vector<core::Dcf> leaves = builder.Leaves();
    const std::vector<uint32_t> leaf_ids = builder.LeafEntryIds();
    const size_t k =
        std::min(parent.representatives.size(), leaves.size());
    core::AibOptions aib_options;
    aib_options.threads = options.threads;
    aib_options.min_k = k;
    LIMBO_ASSIGN_OR_RETURN(core::AibResult aib,
                           core::AgglomerativeIb(leaves, aib_options));
    LIMBO_ASSIGN_OR_RETURN(child.representatives,
                           core::ClusterDcfsAtK(leaves, aib, k));
    std::vector<double> leaf_loss;
    LIMBO_ASSIGN_OR_RETURN(
        const std::vector<uint32_t> leaf_labels,
        core::LimboPhase3(leaves, child.representatives, &leaf_loss,
                          options.threads));
    std::vector<uint32_t> entry_to_leaf(builder.stats().num_leaf_entries, 0);
    for (size_t i = 0; i < leaf_ids.size(); ++i) {
      entry_to_leaf[leaf_ids[i]] = static_cast<uint32_t>(i);
    }
    child.assignments.resize(child.num_rows);
    child.assignment_loss.resize(child.num_rows);
    for (uint64_t r = 0; r < child.num_rows; ++r) {
      const uint32_t leaf = entry_to_leaf[child.row_entry_ids[r]];
      child.assignments[r] = leaf_labels[leaf];
      child.assignment_loss[r] =
          leaf_loss[leaf] * (row_mass / leaves[leaf].p);
    }
    // The derived structure (CV_D, dendrogram, ranked FDs) is refreshed
    // from the absorbed rows rather than carried from the parent.
    LIMBO_RETURN_IF_ERROR(rows.Reset());
    relation::RelationBuilder absorbed_builder(parent.schema);
    while (true) {
      LIMBO_ASSIGN_OR_RETURN(const bool more, rows.Next(&fields));
      if (!more) break;
      LIMBO_RETURN_IF_ERROR(absorbed_builder.AddRow(fields));
    }
    const relation::Relation absorbed_rel =
        std::move(absorbed_builder).Build();
    LIMBO_RETURN_IF_ERROR(RefreshDerivedStructure(parent, absorbed_rel,
                                                  &child, options.threads));
    LIMBO_OBS_COUNT("refit.phase23_reruns", 1);
  }

  child.has_lineage = true;
  child.lineage.parent_checksum = parent.payload_checksum;
  child.lineage.refit_generation =
      parent.has_lineage ? parent.lineage.refit_generation + 1 : 1;
  child.lineage.drift_class = result.drift_class;
  child.lineage.base_rows = base_rows;
  child.lineage.rows_absorbed = absorbed;
  child.lineage.total_rows_absorbed = child.num_rows - base_rows;
  child.lineage.drift_score = result.drift_score;
  child.lineage.drift_moderate = options.drift_moderate;
  child.lineage.drift_severe = options.drift_severe;
  child.lineage.entropy_drift = result.entropy_drift;
  result.bundle = std::move(child);
  return result;
}

}  // namespace limbo::model
