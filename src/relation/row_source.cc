#include "relation/row_source.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace limbo::relation {

namespace {

/// Shared arity check: the error text (and 1-based line accounting, with
/// the header as line 1) matches what the materialized CSV reader always
/// reported, so streaming and materialized ingest fail identically.
util::Status CheckArity(size_t line, size_t fields, size_t attributes) {
  if (fields == attributes) return util::Status::Ok();
  return util::Status::InvalidArgument(util::StrFormat(
      "CSV line %zu: row has %zu fields, schema has %zu attributes", line,
      fields, attributes));
}

}  // namespace

// ---------------------------------------------------------------------------
// CsvFileSource

util::Result<CsvFileSource> CsvFileSource::Open(const std::string& path,
                                                size_t chunk_bytes) {
  CsvFileSource source(path, chunk_bytes);
  source.in_.open(source.path_, std::ios::binary);
  if (!source.in_) return util::Status::IoError("cannot open " + source.path_);
  source.buffer_.resize(source.chunk_);
  std::vector<std::string> header;
  LIMBO_ASSIGN_OR_RETURN(const bool has_header, source.NextRecord(&header));
  if (!has_header) {
    return util::Status::InvalidArgument("CSV has no header line");
  }
  LIMBO_ASSIGN_OR_RETURN(source.schema_, Schema::Create(std::move(header)));
  source.record_line_ = 1;
  return source;
}

util::Result<bool> CsvFileSource::NextRecord(
    std::vector<std::string>* record) {
  while (!scanner_.PopRecord(record)) {
    if (finished_) return false;
    if (eof_) {
      util::Status s = scanner_.Finish();
      if (!s.ok()) return s;
      finished_ = true;
      continue;
    }
    in_.read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    const std::streamsize got = in_.gcount();
    if (got > 0) {
      scanner_.Consume(
          std::string_view(buffer_.data(), static_cast<size_t>(got)));
    }
    if (in_.eof()) {
      eof_ = true;
    } else if (!in_.good()) {
      return util::Status::IoError("read error: " + path_);
    }
  }
  return true;
}

util::Result<bool> CsvFileSource::Next(std::vector<std::string>* fields) {
  LIMBO_ASSIGN_OR_RETURN(const bool more, NextRecord(fields));
  if (!more) return false;
  ++record_line_;
  util::Status s =
      CheckArity(record_line_, fields->size(), schema_.NumAttributes());
  if (!s.ok()) return s;
  return true;
}

util::Status CsvFileSource::Reset() {
  in_.clear();
  in_.seekg(0, std::ios::beg);
  if (!in_.good()) return util::Status::IoError("cannot rewind " + path_);
  scanner_ = CsvScanner();
  eof_ = false;
  finished_ = false;
  record_line_ = 0;
  // Re-consume the header so the next Next() yields the first data row.
  std::vector<std::string> header;
  util::Result<bool> has_header = NextRecord(&header);
  if (!has_header.ok()) return has_header.status();
  if (!*has_header) {
    return util::Status::InvalidArgument("CSV has no header line");
  }
  record_line_ = 1;
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// CsvStringSource

util::Result<CsvStringSource> CsvStringSource::Open(std::string_view content,
                                                    size_t chunk_bytes) {
  CsvStringSource source(content, chunk_bytes);
  std::vector<std::string> header;
  LIMBO_ASSIGN_OR_RETURN(const bool has_header, source.NextRecord(&header));
  if (!has_header) {
    return util::Status::InvalidArgument("CSV has no header line");
  }
  LIMBO_ASSIGN_OR_RETURN(source.schema_, Schema::Create(std::move(header)));
  source.record_line_ = 1;
  return source;
}

util::Result<bool> CsvStringSource::NextRecord(
    std::vector<std::string>* record) {
  while (!scanner_.PopRecord(record)) {
    if (finished_) return false;
    if (pos_ >= content_.size()) {
      util::Status s = scanner_.Finish();
      if (!s.ok()) return s;
      finished_ = true;
      continue;
    }
    const size_t len = std::min(chunk_, content_.size() - pos_);
    scanner_.Consume(content_.substr(pos_, len));
    pos_ += len;
  }
  return true;
}

util::Result<bool> CsvStringSource::Next(std::vector<std::string>* fields) {
  LIMBO_ASSIGN_OR_RETURN(const bool more, NextRecord(fields));
  if (!more) return false;
  ++record_line_;
  util::Status s =
      CheckArity(record_line_, fields->size(), schema_.NumAttributes());
  if (!s.ok()) return s;
  return true;
}

util::Status CsvStringSource::Reset() {
  pos_ = 0;
  scanner_ = CsvScanner();
  finished_ = false;
  record_line_ = 0;
  std::vector<std::string> header;
  util::Result<bool> has_header = NextRecord(&header);
  if (!has_header.ok()) return has_header.status();
  if (!*has_header) {
    return util::Status::InvalidArgument("CSV has no header line");
  }
  record_line_ = 1;
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// RelationRowSource

util::Result<bool> RelationRowSource::Next(std::vector<std::string>* fields) {
  if (next_ >= rel_->NumTuples()) return false;
  const size_t m = rel_->NumAttributes();
  fields->resize(m);
  for (size_t a = 0; a < m; ++a) {
    (*fields)[a] = rel_->TextAt(next_, static_cast<AttributeId>(a));
  }
  ++next_;
  return true;
}

// ---------------------------------------------------------------------------

util::Result<Relation> ReadAllRows(RowSource& source) {
  RelationBuilder builder(source.schema());
  std::vector<std::string> fields;
  while (true) {
    LIMBO_ASSIGN_OR_RETURN(const bool more, source.Next(&fields));
    if (!more) break;
    util::Status s = builder.AddRow(fields);
    if (!s.ok()) return s;
  }
  return std::move(builder).Build();
}

}  // namespace limbo::relation
