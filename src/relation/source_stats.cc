#include "relation/source_stats.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace limbo::relation {

SourceStats SourceStats::FromRelation(const Relation& rel) {
  SourceStats stats;
  stats.schema = rel.schema();
  stats.dictionary = rel.dictionary();
  stats.num_rows = rel.NumTuples();
  return stats;
}

util::Result<SourceStats> CollectSourceStats(RowSource& source) {
  SourceStats stats;
  stats.schema = source.schema();
  const size_t m = stats.schema.NumAttributes();
  std::vector<std::string> fields;
  while (true) {
    LIMBO_ASSIGN_OR_RETURN(const bool more, source.Next(&fields));
    if (!more) break;
    // Row-major interning order — the same order RelationBuilder uses, so
    // the assigned value ids match a materialized load bit for bit.
    for (size_t a = 0; a < m; ++a) {
      stats.dictionary.InternOccurrence(static_cast<AttributeId>(a),
                                        fields[a]);
    }
    ++stats.num_rows;
  }
  util::Status reset = source.Reset();
  if (!reset.ok()) return reset;
  return stats;
}

namespace {

constexpr const char kMagic[] = "limbo-stats 1";

/// Cursor over the loaded sidecar text. Strings are length-prefixed
/// ("<len>:<bytes>"), so values containing newlines or any other byte
/// round-trip exactly.
struct StatsCursor {
  const std::string& text;
  size_t pos = 0;

  bool Literal(const char* want) {
    const size_t n = std::char_traits<char>::length(want);
    if (text.compare(pos, n, want) != 0) return false;
    pos += n;
    return true;
  }

  bool Uint(uint64_t* out) {
    size_t digits = 0;
    uint64_t value = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<uint64_t>(text[pos] - '0');
      ++pos;
      ++digits;
    }
    *out = value;
    return digits > 0;
  }

  bool LengthPrefixed(std::string* out) {
    uint64_t len = 0;
    if (!Uint(&len) || !Literal(":")) return false;
    if (pos + len > text.size()) return false;
    out->assign(text, pos, len);
    pos += len;
    return true;
  }
};

util::Status Corrupt(const std::string& path) {
  return util::Status::InvalidArgument("corrupt stats file: " + path);
}

}  // namespace

util::Status SaveSourceStats(const SourceStats& stats,
                             const std::string& path) {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "rows " << stats.num_rows << "\n";
  const size_t m = stats.schema.NumAttributes();
  out << "attrs " << m << "\n";
  for (size_t a = 0; a < m; ++a) {
    const std::string& name = stats.schema.Name(static_cast<AttributeId>(a));
    out << name.size() << ":" << name << "\n";
  }
  const size_t values = stats.dictionary.NumValues();
  out << "values " << values << "\n";
  for (ValueId v = 0; v < values; ++v) {
    const std::string& text = stats.dictionary.Text(v);
    out << stats.dictionary.Attribute(v) << " " << stats.dictionary.Support(v)
        << " " << text.size() << ":" << text << "\n";
  }
  std::ofstream file(path, std::ios::binary);
  if (!file) return util::Status::IoError("cannot open " + path);
  file << out.str();
  if (!file.good()) return util::Status::IoError("write error: " + path);
  return util::Status::Ok();
}

util::Result<SourceStats> LoadSourceStats(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << file.rdbuf();
  const std::string text = buf.str();

  StatsCursor cursor{text};
  if (!cursor.Literal(kMagic) || !cursor.Literal("\n")) {
    return util::Status::InvalidArgument(
        "not a limbo-stats sidecar (or unsupported version): " + path);
  }
  SourceStats stats;
  uint64_t rows = 0;
  uint64_t attrs = 0;
  if (!cursor.Literal("rows ") || !cursor.Uint(&rows) ||
      !cursor.Literal("\n") || !cursor.Literal("attrs ") ||
      !cursor.Uint(&attrs) || !cursor.Literal("\n")) {
    return Corrupt(path);
  }
  stats.num_rows = static_cast<size_t>(rows);
  std::vector<std::string> names(static_cast<size_t>(attrs));
  for (std::string& name : names) {
    if (!cursor.LengthPrefixed(&name) || !cursor.Literal("\n")) {
      return Corrupt(path);
    }
  }
  LIMBO_ASSIGN_OR_RETURN(stats.schema, Schema::Create(std::move(names)));
  uint64_t values = 0;
  if (!cursor.Literal("values ") || !cursor.Uint(&values) ||
      !cursor.Literal("\n")) {
    return Corrupt(path);
  }
  for (uint64_t v = 0; v < values; ++v) {
    uint64_t attribute = 0;
    uint64_t support = 0;
    std::string value;
    if (!cursor.Uint(&attribute) || !cursor.Literal(" ") ||
        !cursor.Uint(&support) || !cursor.Literal(" ") ||
        !cursor.LengthPrefixed(&value) || !cursor.Literal("\n")) {
      return Corrupt(path);
    }
    if (attribute >= stats.schema.NumAttributes()) return Corrupt(path);
    if (stats.dictionary
            .Find(static_cast<AttributeId>(attribute), value)
            .ok()) {
      return Corrupt(path);  // duplicate (attribute, value) pair
    }
    stats.dictionary.InternCounted(static_cast<AttributeId>(attribute), value,
                                   static_cast<uint32_t>(support));
  }
  if (cursor.pos != text.size()) return Corrupt(path);
  return stats;
}

}  // namespace limbo::relation
