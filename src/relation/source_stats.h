#ifndef LIMBO_RELATION_SOURCE_STATS_H_
#define LIMBO_RELATION_SOURCE_STATS_H_

#include <string>

#include "relation/dictionary.h"
#include "relation/relation.h"
#include "relation/row_source.h"
#include "relation/schema.h"
#include "util/result.h"

namespace limbo::relation {

/// The frozen per-source metadata the streaming pipeline needs before it
/// can turn rows into tuple objects: the schema, the interned value
/// dictionary (ids in first-occurrence row-major order — exactly the ids
/// RelationBuilder would have assigned, so streamed and materialized runs
/// see identical value ids), and the row count (for the per-tuple prior
/// p = 1/n). Obtained by one cheap counting pass (CollectSourceStats) or
/// loaded from a sidecar file written by an earlier pass.
struct SourceStats {
  Schema schema;
  ValueDictionary dictionary;
  size_t num_rows = 0;

  /// Stats of an already-materialized relation, for free (the builder
  /// interned while loading).
  static SourceStats FromRelation(const Relation& rel);
};

/// One counting pass over `source`: interns every cell in row-major order
/// and counts rows, then rewinds the source so the caller can stream it
/// again. Peak memory is the dictionary, never the rows.
util::Result<SourceStats> CollectSourceStats(RowSource& source);

/// Writes `stats` as a sidecar text file (length-prefixed strings, so
/// values may contain commas, quotes and newlines).
util::Status SaveSourceStats(const SourceStats& stats,
                             const std::string& path);

/// Loads a sidecar previously written by SaveSourceStats.
util::Result<SourceStats> LoadSourceStats(const std::string& path);

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_SOURCE_STATS_H_
