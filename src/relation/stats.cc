#include "relation/stats.h"

#include <cmath>

#include "util/strings.h"

namespace limbo::relation {

RelationProfile Profile(const Relation& rel) {
  RelationProfile profile;
  profile.tuples = rel.NumTuples();
  profile.attributes = rel.NumAttributes();
  profile.distinct_values = rel.NumValues();

  const size_t m = rel.NumAttributes();
  const double n = static_cast<double>(rel.NumTuples());
  profile.columns.resize(m);
  for (size_t a = 0; a < m; ++a) {
    auto& col = profile.columns[a];
    col.attribute = static_cast<AttributeId>(a);
    col.name = rel.schema().Name(static_cast<AttributeId>(a));
  }
  // One pass over the dictionary: every value belongs to one attribute.
  for (ValueId v = 0; v < rel.NumValues(); ++v) {
    auto& col = profile.columns[rel.dictionary().Attribute(v)];
    const size_t support = rel.dictionary().Support(v);
    ++col.distinct_values;
    if (rel.dictionary().Text(v).empty()) col.null_count = support;
    if (support > col.top_count) {
      col.top_count = support;
      col.top_value = rel.dictionary().Text(v).empty()
                          ? std::string("⊥")
                          : rel.dictionary().Text(v);
    }
    if (n > 0) {
      const double p = static_cast<double>(support) / n;
      col.entropy -= p * std::log2(p);
    }
  }
  for (auto& col : profile.columns) {
    col.null_fraction = n > 0 ? col.null_count / n : 0.0;
    col.is_key = rel.NumTuples() > 0 &&
                 col.distinct_values == rel.NumTuples();
    col.is_constant = col.distinct_values == 1 && rel.NumTuples() > 0;
    col.uniformity =
        col.distinct_values > 1
            ? col.entropy / std::log2(static_cast<double>(col.distinct_values))
            : 1.0;
  }
  return profile;
}

std::string RelationProfile::ToString() const {
  std::string out = util::StrFormat(
      "%zu tuples x %zu attributes, %zu distinct values\n", tuples,
      attributes, distinct_values);
  out += util::StrFormat("%-16s %-9s %-7s %-8s %-8s %-5s %s\n", "attribute",
                         "distinct", "null%", "entropy", "uniform", "key",
                         "top value");
  for (const auto& col : columns) {
    out += util::StrFormat(
        "%-16s %-9zu %-7.1f %-8.3f %-8.3f %-5s %s (%zu)\n", col.name.c_str(),
        col.distinct_values, 100.0 * col.null_fraction, col.entropy,
        col.uniformity,
        col.is_key ? "yes" : (col.is_constant ? "const" : ""),
        col.top_value.c_str(), col.top_count);
  }
  return out;
}

}  // namespace limbo::relation
