#ifndef LIMBO_RELATION_CSV_SCANNER_H_
#define LIMBO_RELATION_CSV_SCANNER_H_

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace limbo::relation {

/// Incremental RFC-4180-style CSV tokenizer: feed arbitrary byte chunks
/// with Consume, pop complete records with PopRecord, and call Finish
/// once at end of input to flush a trailing record without a newline
/// (and to detect an unterminated quote). Quoted fields with embedded
/// commas, "" escapes, newlines and bare \r are handled; \r outside
/// quotes is swallowed so \r\n line endings work. Chunk boundaries may
/// fall anywhere — even between the two quotes of a "" escape — without
/// changing the token stream, which is what lets the file source read
/// fixed-size blocks instead of the whole file.
///
/// This is the single CSV dialect implementation; ParseCsv/ReadCsv and
/// CsvFileSource are wrappers over it.
class CsvScanner {
 public:
  CsvScanner() = default;

  /// Feeds the next chunk of input. Completed records queue up for
  /// PopRecord; partial state (an open field, quote, or record) carries
  /// over to the next Consume call.
  void Consume(std::string_view bytes);

  /// Signals end of input: flushes a final record that lacks a trailing
  /// newline and fails on an unterminated quoted field. Call exactly
  /// once, after the last Consume.
  util::Status Finish();

  /// Moves the oldest completed record into `*record`. Returns false when
  /// no complete record is buffered (feed more input or Finish).
  bool PopRecord(std::vector<std::string>* record);

  /// Number of completed records currently buffered.
  size_t BufferedRecords() const { return ready_.size(); }

 private:
  void EndField();
  void EndRecord();

  std::deque<std::vector<std::string>> ready_;
  std::vector<std::string> current_;
  std::string field_;
  bool in_quotes_ = false;
  bool field_started_ = false;
  // A quote was seen inside a quoted field at the end of a chunk; whether
  // it closes the field or starts a "" escape depends on the next byte.
  bool quote_pending_ = false;
};

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_CSV_SCANNER_H_
