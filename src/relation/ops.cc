#include "relation/ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/strings.h"

namespace limbo::relation {

namespace {

/// Hash of a row restricted to `attrs` (FNV-1a over value ids).
struct ProjectedRowKey {
  const Relation* rel;
  TupleId t;
};

uint64_t HashProjected(const Relation& rel, TupleId t,
                       const std::vector<AttributeId>& attrs) {
  uint64_t h = 1469598103934665603ULL;
  for (AttributeId a : attrs) {
    h ^= rel.At(t, a);
    h *= 1099511628211ULL;
  }
  return h;
}

bool EqualProjected(const Relation& rel, TupleId x, TupleId y,
                    const std::vector<AttributeId>& attrs) {
  for (AttributeId a : attrs) {
    if (rel.At(x, a) != rel.At(y, a)) return false;
  }
  return true;
}

util::Status ValidateAttributes(const Relation& rel,
                                const std::vector<AttributeId>& attributes) {
  if (attributes.empty()) {
    return util::Status::InvalidArgument("attribute list is empty");
  }
  for (AttributeId a : attributes) {
    if (a >= rel.NumAttributes()) {
      return util::Status::OutOfRange(
          util::StrFormat("attribute %u out of range (m=%zu)", a,
                          rel.NumAttributes()));
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<Relation> Project(const Relation& rel,
                               const std::vector<AttributeId>& attributes) {
  LIMBO_RETURN_IF_ERROR(ValidateAttributes(rel, attributes));
  std::vector<std::string> names;
  names.reserve(attributes.size());
  for (AttributeId a : attributes) names.push_back(rel.schema().Name(a));
  LIMBO_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(names)));
  RelationBuilder builder(std::move(schema));
  std::vector<std::string> row(attributes.size());
  for (TupleId t = 0; t < rel.NumTuples(); ++t) {
    for (size_t i = 0; i < attributes.size(); ++i) {
      row[i] = rel.TextAt(t, attributes[i]);
    }
    LIMBO_RETURN_IF_ERROR(builder.AddRow(row));
  }
  return std::move(builder).Build();
}

util::Result<Relation> ProjectNames(const Relation& rel,
                                    const std::vector<std::string>& names) {
  std::vector<AttributeId> attrs;
  attrs.reserve(names.size());
  for (const std::string& name : names) {
    LIMBO_ASSIGN_OR_RETURN(AttributeId a, rel.schema().Find(name));
    attrs.push_back(a);
  }
  return Project(rel, attrs);
}

Relation Distinct(const Relation& rel) {
  std::vector<AttributeId> all(rel.NumAttributes());
  for (size_t a = 0; a < all.size(); ++a) all[a] = static_cast<AttributeId>(a);
  // Bucket rows by hash, verify with full comparison.
  std::unordered_map<uint64_t, std::vector<TupleId>> buckets;
  std::vector<TupleId> keep;
  for (TupleId t = 0; t < rel.NumTuples(); ++t) {
    uint64_t h = HashProjected(rel, t, all);
    auto& bucket = buckets[h];
    bool dup = false;
    for (TupleId prev : bucket) {
      if (EqualProjected(rel, prev, t, all)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(t);
      keep.push_back(t);
    }
  }
  return SelectRows(rel, keep);
}

size_t CountDistinctProjected(const Relation& rel,
                              const std::vector<AttributeId>& attributes) {
  std::unordered_map<uint64_t, std::vector<TupleId>> buckets;
  size_t count = 0;
  for (TupleId t = 0; t < rel.NumTuples(); ++t) {
    uint64_t h = HashProjected(rel, t, attributes);
    auto& bucket = buckets[h];
    bool dup = false;
    for (TupleId prev : bucket) {
      if (EqualProjected(rel, prev, t, attributes)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(t);
      ++count;
    }
  }
  return count;
}

Relation SelectRows(const Relation& rel,
                    const std::vector<TupleId>& tuple_ids) {
  std::vector<std::string> names = rel.schema().Names();
  auto schema = Schema::Create(std::move(names));
  LIMBO_CHECK(schema.ok());
  RelationBuilder builder(std::move(schema).value());
  std::vector<std::string> row(rel.NumAttributes());
  for (TupleId t : tuple_ids) {
    LIMBO_CHECK(t < rel.NumTuples());
    for (size_t a = 0; a < rel.NumAttributes(); ++a) {
      row[a] = rel.TextAt(t, static_cast<AttributeId>(a));
    }
    util::Status s = builder.AddRow(row);
    LIMBO_CHECK(s.ok());
  }
  return std::move(builder).Build();
}

util::Result<Relation> EquiJoin(const Relation& left, const Relation& right,
                                const std::vector<JoinKey>& keys) {
  if (keys.empty()) {
    return util::Status::InvalidArgument("join requires >= 1 key");
  }
  std::vector<AttributeId> left_keys;
  std::vector<AttributeId> right_keys;
  for (const JoinKey& k : keys) {
    LIMBO_ASSIGN_OR_RETURN(AttributeId la, left.schema().Find(k.left));
    LIMBO_ASSIGN_OR_RETURN(AttributeId ra, right.schema().Find(k.right));
    left_keys.push_back(la);
    right_keys.push_back(ra);
  }
  // Output schema: all left attributes + right non-key attributes.
  std::vector<AttributeId> right_carry;
  std::vector<std::string> names = left.schema().Names();
  for (size_t a = 0; a < right.NumAttributes(); ++a) {
    const AttributeId ra = static_cast<AttributeId>(a);
    if (std::find(right_keys.begin(), right_keys.end(), ra) !=
        right_keys.end()) {
      continue;
    }
    std::string name = right.schema().Name(ra);
    // Disambiguate collisions with the left schema.
    if (left.schema().Find(name).ok()) name += "_r";
    names.push_back(std::move(name));
    right_carry.push_back(ra);
  }
  LIMBO_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(names)));

  // Build hash table over the right input keyed by the join-key texts.
  std::unordered_map<std::string, std::vector<TupleId>> table;
  for (TupleId t = 0; t < right.NumTuples(); ++t) {
    std::string key;
    for (AttributeId a : right_keys) {
      key += right.TextAt(t, a);
      key += '\x1f';
    }
    table[key].push_back(t);
  }

  RelationBuilder builder(std::move(schema));
  std::vector<std::string> row(left.NumAttributes() + right_carry.size());
  for (TupleId lt = 0; lt < left.NumTuples(); ++lt) {
    std::string key;
    for (AttributeId a : left_keys) {
      key += left.TextAt(lt, a);
      key += '\x1f';
    }
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (TupleId rt : it->second) {
      size_t i = 0;
      for (size_t a = 0; a < left.NumAttributes(); ++a) {
        row[i++] = left.TextAt(lt, static_cast<AttributeId>(a));
      }
      for (AttributeId a : right_carry) {
        row[i++] = right.TextAt(rt, a);
      }
      LIMBO_RETURN_IF_ERROR(builder.AddRow(row));
    }
  }
  return std::move(builder).Build();
}

}  // namespace limbo::relation
