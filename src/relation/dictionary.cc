#include "relation/dictionary.h"

namespace limbo::relation {

ValueId ValueDictionary::InternOccurrence(AttributeId attribute,
                                          std::string_view text) {
  Key key{attribute, std::string(text)};
  auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].support++;
    return it->second;
  }
  ValueId id = static_cast<ValueId>(entries_.size());
  entries_.push_back(Entry{attribute, key.text, 1});
  index_.emplace(std::move(key), id);
  return id;
}

ValueId ValueDictionary::InternCounted(AttributeId attribute,
                                       std::string_view text,
                                       uint32_t support) {
  Key key{attribute, std::string(text)};
  ValueId id = static_cast<ValueId>(entries_.size());
  entries_.push_back(Entry{attribute, key.text, support});
  index_.emplace(std::move(key), id);
  return id;
}

util::Result<ValueId> ValueDictionary::Find(AttributeId attribute,
                                            std::string_view text) const {
  Key key{attribute, std::string(text)};
  auto it = index_.find(key);
  if (it == index_.end()) {
    return util::Status::NotFound("value not interned: " + key.text);
  }
  return it->second;
}

std::string ValueDictionary::QualifiedName(const Schema& schema,
                                           ValueId v) const {
  const Entry& e = entries_[v];
  const std::string& shown = e.text.empty() ? std::string("⊥") : e.text;
  return schema.Name(e.attribute) + "=" + shown;
}

}  // namespace limbo::relation
