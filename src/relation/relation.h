#ifndef LIMBO_RELATION_RELATION_H_
#define LIMBO_RELATION_RELATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "relation/dictionary.h"
#include "relation/schema.h"
#include "util/result.h"

namespace limbo::relation {

using TupleId = uint32_t;

/// The NULL token used throughout the repo. NULLs are first-class values
/// (the paper's DBLP experiments hinge on NULL co-occurrence), represented
/// as the empty string in the dictionary and rendered as "⊥".
inline constexpr const char* kNullToken = "";

/// An immutable-after-build categorical relation: a schema, a value
/// dictionary, and a dense row store of value ids (row-major, stride = m).
///
/// This is the substrate every tool in the paper operates on. Build one
/// with RelationBuilder, CSV I/O (csv_io.h) or the data generators.
class Relation {
 public:
  const Schema& schema() const { return schema_; }
  const ValueDictionary& dictionary() const { return dictionary_; }

  size_t NumTuples() const {
    return schema_.NumAttributes() == 0
               ? 0
               : cells_.size() / schema_.NumAttributes();
  }
  size_t NumAttributes() const { return schema_.NumAttributes(); }
  size_t NumValues() const { return dictionary_.NumValues(); }

  /// Value id stored at row `t`, column `a`.
  ValueId At(TupleId t, AttributeId a) const {
    return cells_[static_cast<size_t>(t) * schema_.NumAttributes() + a];
  }

  /// All value ids of row `t` in attribute order.
  std::span<const ValueId> Row(TupleId t) const {
    return {cells_.data() + static_cast<size_t>(t) * schema_.NumAttributes(),
            schema_.NumAttributes()};
  }

  /// Raw text of the cell at (t, a); NULLs come back as kNullToken.
  const std::string& TextAt(TupleId t, AttributeId a) const {
    return dictionary_.Text(At(t, a));
  }

  /// Per-value posting lists: for each value id, the (sorted) tuple ids in
  /// which it occurs. This is the sparse N matrix of Section 6.2.
  std::vector<std::vector<TupleId>> BuildValuePostings() const;

  /// Renders the first `max_rows` rows as an aligned text table (for
  /// examples and debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  friend class RelationBuilder;

  Schema schema_;
  ValueDictionary dictionary_;
  std::vector<ValueId> cells_;
};

/// Incrementally builds a Relation from string rows.
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a row; `fields.size()` must equal the attribute count.
  util::Status AddRow(const std::vector<std::string>& fields);

  size_t NumRows() const { return num_rows_; }

  /// Finalizes; the builder must not be reused afterwards.
  Relation Build() &&;

 private:
  Schema schema_;
  ValueDictionary dictionary_;
  std::vector<ValueId> cells_;
  size_t num_rows_ = 0;
};

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_RELATION_H_
