#include "relation/csv_scanner.h"

namespace limbo::relation {

void CsvScanner::EndField() {
  current_.push_back(std::move(field_));
  field_.clear();
  field_started_ = false;
}

void CsvScanner::EndRecord() {
  EndField();
  ready_.push_back(std::move(current_));
  current_.clear();
}

void CsvScanner::Consume(std::string_view bytes) {
  for (const char c : bytes) {
    if (quote_pending_) {
      quote_pending_ = false;
      if (c == '"') {
        field_ += '"';  // "" escape: literal quote, field stays open
        continue;
      }
      in_quotes_ = false;  // the pending quote closed the field
      // fall through: c is an ordinary unquoted character
    }
    if (in_quotes_) {
      if (c == '"') {
        quote_pending_ = true;  // closing quote or first half of ""
      } else {
        field_ += c;
      }
      continue;
    }
    if (c == '"' && !field_started_) {
      in_quotes_ = true;
      field_started_ = true;
    } else if (c == ',') {
      EndField();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else if (c == '\n') {
      EndRecord();
    } else {
      field_ += c;
      field_started_ = true;
    }
  }
}

util::Status CsvScanner::Finish() {
  if (quote_pending_) {
    // A quote at the very end of input closes its field.
    quote_pending_ = false;
    in_quotes_ = false;
  }
  if (in_quotes_) {
    return util::Status::InvalidArgument("unterminated quoted CSV field");
  }
  // Final record without trailing newline.
  if (!field_.empty() || field_started_ || !current_.empty()) {
    EndRecord();
  }
  return util::Status::Ok();
}

bool CsvScanner::PopRecord(std::vector<std::string>* record) {
  if (ready_.empty()) return false;
  *record = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace limbo::relation
