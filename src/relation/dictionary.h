#ifndef LIMBO_RELATION_DICTIONARY_H_
#define LIMBO_RELATION_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"

namespace limbo::relation {

/// Index of a distinct (attribute, string) pair. Value ids are global
/// across the relation: the string "Boston" under attribute City and the
/// same string under attribute Town are two distinct values, matching the
/// paper's model where the value set is V = V1 ∪ ... ∪ Vm.
using ValueId = uint32_t;

/// Bidirectional mapping between value ids and (attribute, string) pairs.
///
/// The dictionary also records, per value, its attribute and its number of
/// occurrences (the support d_v used by the O matrix of Section 6.2).
class ValueDictionary {
 public:
  ValueDictionary() = default;

  /// Interns (attribute, text), bumping its occurrence count.
  ValueId InternOccurrence(AttributeId attribute, std::string_view text);

  /// Appends (attribute, text) with an explicit support count — for
  /// rebuilding a frozen dictionary id-by-id from a sidecar stats file.
  /// The pair must not already be present (ids are assigned in call
  /// order); returns the new id.
  ValueId InternCounted(AttributeId attribute, std::string_view text,
                        uint32_t support);

  /// Looks up an existing value without changing counts.
  /// Returns kNotFound if the pair was never interned.
  util::Result<ValueId> Find(AttributeId attribute,
                             std::string_view text) const;

  size_t NumValues() const { return entries_.size(); }
  const std::string& Text(ValueId v) const { return entries_[v].text; }
  AttributeId Attribute(ValueId v) const { return entries_[v].attribute; }

  /// Number of tuples the value occurs in (d_v in the paper).
  uint32_t Support(ValueId v) const { return entries_[v].support; }

  /// Qualified display name, "Attr=text", with NULLs rendered as "Attr=⊥".
  std::string QualifiedName(const Schema& schema, ValueId v) const;

 private:
  struct Entry {
    AttributeId attribute;
    std::string text;
    uint32_t support = 0;
  };

  struct Key {
    AttributeId attribute;
    std::string text;
    bool operator==(const Key& o) const {
      return attribute == o.attribute && text == o.text;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<std::string>()(k.text) * 1315423911u ^ k.attribute;
    }
  };

  std::vector<Entry> entries_;
  std::unordered_map<Key, ValueId, KeyHash> index_;
};

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_DICTIONARY_H_
