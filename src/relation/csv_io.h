#ifndef LIMBO_RELATION_CSV_IO_H_
#define LIMBO_RELATION_CSV_IO_H_

#include <string>

#include "relation/relation.h"
#include "util/result.h"

namespace limbo::relation {

/// Reads a relation from an RFC-4180-style CSV file. The first line is the
/// header (attribute names). Quoted fields with embedded commas, quotes
/// ("" escaping) and newlines are supported. Empty fields become NULLs.
util::Result<Relation> ReadCsv(const std::string& path);

/// Parses CSV from an in-memory string (same dialect as ReadCsv).
util::Result<Relation> ParseCsv(const std::string& content);

/// Writes `rel` as CSV (header + rows) to `path`.
util::Status WriteCsv(const Relation& rel, const std::string& path);

/// Serializes `rel` as a CSV string.
std::string ToCsvString(const Relation& rel);

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_CSV_IO_H_
