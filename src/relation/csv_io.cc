#include "relation/csv_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace limbo::relation {

namespace {

/// Splits one CSV document into records of fields, honoring quotes.
util::Result<std::vector<std::vector<std::string>>> ParseRecords(
    const std::string& content) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = content.size();
  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };
  while (i < n) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && content[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == ',') {
      end_field();
      ++i;
    } else if (c == '\r') {
      ++i;  // swallow; \r\n handled by the \n branch
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field += c;
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return util::Status::InvalidArgument("unterminated quoted CSV field");
  }
  // Final record without trailing newline.
  if (!field.empty() || field_started || !current.empty()) {
    end_record();
  }
  return records;
}

std::string EscapeField(const std::string& text) {
  const bool needs_quotes = text.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

util::Result<Relation> ParseCsv(const std::string& content) {
  LIMBO_ASSIGN_OR_RETURN(auto records, ParseRecords(content));
  if (records.empty()) {
    return util::Status::InvalidArgument("CSV has no header line");
  }
  LIMBO_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(records[0])));
  RelationBuilder builder(std::move(schema));
  for (size_t r = 1; r < records.size(); ++r) {
    util::Status s = builder.AddRow(records[r]);
    if (!s.ok()) {
      return util::Status::InvalidArgument(
          util::StrFormat("CSV line %zu: %s", r + 1, s.message().c_str()));
    }
  }
  return std::move(builder).Build();
}

util::Result<Relation> ReadCsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string ToCsvString(const Relation& rel) {
  std::string out;
  const size_t m = rel.NumAttributes();
  for (size_t a = 0; a < m; ++a) {
    if (a > 0) out += ',';
    out += EscapeField(rel.schema().Name(static_cast<AttributeId>(a)));
  }
  out += '\n';
  for (TupleId t = 0; t < rel.NumTuples(); ++t) {
    for (size_t a = 0; a < m; ++a) {
      if (a > 0) out += ',';
      out += EscapeField(rel.TextAt(t, static_cast<AttributeId>(a)));
    }
    out += '\n';
  }
  return out;
}

util::Status WriteCsv(const Relation& rel, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << ToCsvString(rel);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace limbo::relation
