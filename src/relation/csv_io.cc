#include "relation/csv_io.h"

#include <fstream>
#include <string>

#include "relation/row_source.h"

namespace limbo::relation {

namespace {

std::string EscapeField(const std::string& text) {
  const bool needs_quotes = text.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

// Both readers are thin wrappers over the chunked RowSource scanners
// (row_source.h): one incremental CSV dialect implementation, and ReadCsv
// no longer slurps the whole file into a string before parsing.

util::Result<Relation> ParseCsv(const std::string& content) {
  LIMBO_ASSIGN_OR_RETURN(CsvStringSource source,
                         CsvStringSource::Open(content));
  return ReadAllRows(source);
}

util::Result<Relation> ReadCsv(const std::string& path) {
  LIMBO_ASSIGN_OR_RETURN(CsvFileSource source, CsvFileSource::Open(path));
  return ReadAllRows(source);
}

std::string ToCsvString(const Relation& rel) {
  std::string out;
  const size_t m = rel.NumAttributes();
  for (size_t a = 0; a < m; ++a) {
    if (a > 0) out += ',';
    out += EscapeField(rel.schema().Name(static_cast<AttributeId>(a)));
  }
  out += '\n';
  for (TupleId t = 0; t < rel.NumTuples(); ++t) {
    for (size_t a = 0; a < m; ++a) {
      if (a > 0) out += ',';
      out += EscapeField(rel.TextAt(t, static_cast<AttributeId>(a)));
    }
    out += '\n';
  }
  return out;
}

util::Status WriteCsv(const Relation& rel, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << ToCsvString(rel);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace limbo::relation
