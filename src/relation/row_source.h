#ifndef LIMBO_RELATION_ROW_SOURCE_H_
#define LIMBO_RELATION_ROW_SOURCE_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "relation/csv_scanner.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "util/result.h"

namespace limbo::relation {

/// Pull-based iterator of decoded text rows — the streaming ingest
/// substrate of the bounded-memory pipeline. A source knows its schema up
/// front (for CSV that means the header has been read) and yields rows one
/// at a time; Reset rewinds to the first data row so multi-pass consumers
/// (the stats pass, Phase 1, the Phase-3 re-scan) can re-read without the
/// caller ever materializing the data.
///
/// Implementations: CsvFileSource (chunked file reads, never the whole
/// file), CsvStringSource (in-memory text, same chunked scanner), and
/// RelationRowSource (adapter over an already-materialized Relation,
/// which also covers the datagen relations).
class RowSource {
 public:
  virtual ~RowSource() = default;

  /// Attribute names of every row this source yields.
  virtual const Schema& schema() const = 0;

  /// Decodes the next data row into `*fields` (one string per attribute,
  /// empty string = NULL). Returns false at end of data. The same row
  /// sequence must come back after every Reset.
  virtual util::Result<bool> Next(std::vector<std::string>* fields) = 0;

  /// Rewinds to the first data row.
  virtual util::Status Reset() = 0;
};

/// Streams a CSV file in fixed-size chunks through CsvScanner; at most
/// one chunk plus one record is resident. The header is consumed by Open.
class CsvFileSource final : public RowSource {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  /// Opens `path` and reads the header. Fails with the same errors
  /// ReadCsv reported: kIoError for an unopenable file, "CSV has no
  /// header line" for an empty one, and Schema::Create's own errors.
  static util::Result<CsvFileSource> Open(const std::string& path,
                                          size_t chunk_bytes =
                                              kDefaultChunkBytes);

  const Schema& schema() const override { return schema_; }
  util::Result<bool> Next(std::vector<std::string>* fields) override;
  util::Status Reset() override;

 private:
  CsvFileSource(std::string path, size_t chunk_bytes)
      : path_(std::move(path)),
        chunk_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  /// Pops the next raw record, pulling chunks from the file as needed.
  util::Result<bool> NextRecord(std::vector<std::string>* record);

  std::string path_;
  size_t chunk_;
  std::ifstream in_;
  std::vector<char> buffer_;
  CsvScanner scanner_;
  Schema schema_;
  bool eof_ = false;
  bool finished_ = false;
  // 1-based CSV line of the record most recently returned (header = 1),
  // for error messages that match the materialized reader's.
  size_t record_line_ = 0;
};

/// Same dialect and chunking as CsvFileSource, over an in-memory string.
/// The content must outlive the source (it is not copied).
class CsvStringSource final : public RowSource {
 public:
  static util::Result<CsvStringSource> Open(std::string_view content,
                                            size_t chunk_bytes =
                                                CsvFileSource::
                                                    kDefaultChunkBytes);

  const Schema& schema() const override { return schema_; }
  util::Result<bool> Next(std::vector<std::string>* fields) override;
  util::Status Reset() override;

 private:
  CsvStringSource(std::string_view content, size_t chunk_bytes)
      : content_(content),
        chunk_(chunk_bytes == 0 ? CsvFileSource::kDefaultChunkBytes
                                : chunk_bytes) {}

  util::Result<bool> NextRecord(std::vector<std::string>* record);

  std::string_view content_;
  size_t chunk_;
  size_t pos_ = 0;
  CsvScanner scanner_;
  Schema schema_;
  bool finished_ = false;
  size_t record_line_ = 0;
};

/// Adapter over a materialized Relation (including everything the datagen
/// generators produce). `rel` must outlive the source.
class RelationRowSource final : public RowSource {
 public:
  explicit RelationRowSource(const Relation& rel) : rel_(&rel) {}

  const Schema& schema() const override { return rel_->schema(); }
  util::Result<bool> Next(std::vector<std::string>* fields) override;
  util::Status Reset() override {
    next_ = 0;
    return util::Status::Ok();
  }

 private:
  const Relation* rel_;
  TupleId next_ = 0;
};

/// Drains `source` into a materialized Relation (one pass; the source is
/// left at end of data). ReadCsv/ParseCsv are this over a CSV source.
util::Result<Relation> ReadAllRows(RowSource& source);

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_ROW_SOURCE_H_
