#ifndef LIMBO_RELATION_OPS_H_
#define LIMBO_RELATION_OPS_H_

#include <string>
#include <vector>

#include "relation/relation.h"
#include "util/result.h"

namespace limbo::relation {

/// Projects `rel` onto `attributes` (bag semantics — duplicates kept).
/// The projected relation has freshly encoded value ids.
util::Result<Relation> Project(const Relation& rel,
                               const std::vector<AttributeId>& attributes);

/// Projects by attribute name.
util::Result<Relation> ProjectNames(const Relation& rel,
                                    const std::vector<std::string>& names);

/// Returns `rel` with duplicate rows removed (first occurrence kept).
Relation Distinct(const Relation& rel);

/// Number of distinct rows of `rel` projected on `attributes`, without
/// materializing the projection (set-semantics count used by RTR).
size_t CountDistinctProjected(const Relation& rel,
                              const std::vector<AttributeId>& attributes);

/// Returns a relation containing only rows whose ids are in `tuple_ids`.
Relation SelectRows(const Relation& rel, const std::vector<TupleId>& tuple_ids);

/// Equi-join specification: left.attribute == right.attribute. The joined
/// schema keeps all left attributes and the right attributes that are not
/// join keys (natural-join style collapsing).
struct JoinKey {
  std::string left;
  std::string right;
};

/// Hash equi-join of `left` and `right` on `keys` (string equality of cell
/// text). Right-side key columns are dropped from the output.
util::Result<Relation> EquiJoin(const Relation& left, const Relation& right,
                                const std::vector<JoinKey>& keys);

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_OPS_H_
