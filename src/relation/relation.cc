#include "relation/relation.h"

#include <algorithm>

#include "util/strings.h"

namespace limbo::relation {

std::vector<std::vector<TupleId>> Relation::BuildValuePostings() const {
  std::vector<std::vector<TupleId>> postings(dictionary_.NumValues());
  for (ValueId v = 0; v < postings.size(); ++v) {
    postings[v].reserve(dictionary_.Support(v));
  }
  const size_t m = schema_.NumAttributes();
  const size_t n = NumTuples();
  for (TupleId t = 0; t < n; ++t) {
    for (size_t a = 0; a < m; ++a) {
      postings[At(t, static_cast<AttributeId>(a))].push_back(t);
    }
  }
  return postings;
}

std::string Relation::ToString(size_t max_rows) const {
  const size_t m = schema_.NumAttributes();
  const size_t rows = std::min(max_rows, NumTuples());
  std::vector<size_t> width(m);
  for (size_t a = 0; a < m; ++a) width[a] = schema_.Name(a).size();
  for (TupleId t = 0; t < rows; ++t) {
    for (size_t a = 0; a < m; ++a) {
      const std::string& text = TextAt(t, static_cast<AttributeId>(a));
      width[a] = std::max(width[a], text.empty() ? 1 : text.size());
    }
  }
  std::string out;
  for (size_t a = 0; a < m; ++a) {
    out += util::StrFormat("%-*s ", static_cast<int>(width[a]),
                           schema_.Name(a).c_str());
  }
  out += "\n";
  for (TupleId t = 0; t < rows; ++t) {
    for (size_t a = 0; a < m; ++a) {
      const std::string& text = TextAt(t, static_cast<AttributeId>(a));
      out += util::StrFormat("%-*s ", static_cast<int>(width[a]),
                             text.empty() ? "⊥" : text.c_str());
    }
    out += "\n";
  }
  if (rows < NumTuples()) {
    out += util::StrFormat("... (%zu more rows)\n", NumTuples() - rows);
  }
  return out;
}

util::Status RelationBuilder::AddRow(const std::vector<std::string>& fields) {
  if (fields.size() != schema_.NumAttributes()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "row has %zu fields, schema has %zu attributes", fields.size(),
        schema_.NumAttributes()));
  }
  for (size_t a = 0; a < fields.size(); ++a) {
    cells_.push_back(
        dictionary_.InternOccurrence(static_cast<AttributeId>(a), fields[a]));
  }
  ++num_rows_;
  return util::Status::Ok();
}

Relation RelationBuilder::Build() && {
  Relation r;
  r.schema_ = std::move(schema_);
  r.dictionary_ = std::move(dictionary_);
  r.cells_ = std::move(cells_);
  return r;
}

}  // namespace limbo::relation
