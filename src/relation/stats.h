#ifndef LIMBO_RELATION_STATS_H_
#define LIMBO_RELATION_STATS_H_

#include <string>
#include <vector>

#include "relation/relation.h"

namespace limbo::relation {

/// Per-attribute profile, in the spirit of the data-quality browsers
/// (Bellman, Potter's Wheel) the paper positions itself against.
struct AttributeProfile {
  AttributeId attribute = 0;
  std::string name;
  size_t distinct_values = 0;
  size_t null_count = 0;
  double null_fraction = 0.0;
  /// Shannon entropy (bits) of the attribute's value distribution.
  double entropy = 0.0;
  /// entropy / log2(distinct): 1.0 = uniform, ~0 = one dominant value.
  double uniformity = 0.0;
  /// True iff every tuple carries a distinct value (column is a key).
  bool is_key = false;
  /// True iff a single value covers every tuple.
  bool is_constant = false;
  /// The most frequent value's text (NULL rendered as "⊥") and count.
  std::string top_value;
  size_t top_count = 0;
};

/// Whole-relation profile.
struct RelationProfile {
  size_t tuples = 0;
  size_t attributes = 0;
  size_t distinct_values = 0;
  std::vector<AttributeProfile> columns;

  /// Aligned text rendering for terminals.
  std::string ToString() const;
};

/// Profiles every attribute of `rel` in one pass over the dictionary.
RelationProfile Profile(const Relation& rel);

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_STATS_H_
