#include "relation/schema.h"

#include <utility>

#include "util/strings.h"

namespace limbo::relation {

util::Result<Schema> Schema::Create(std::vector<std::string> names) {
  if (names.empty()) {
    return util::Status::InvalidArgument("schema must have >= 1 attribute");
  }
  if (names.size() > 64) {
    return util::Status::InvalidArgument(
        util::StrFormat("schema has %zu attributes; max is 64", names.size()));
  }
  Schema s;
  for (size_t i = 0; i < names.size(); ++i) {
    auto [it, inserted] =
        s.index_.emplace(names[i], static_cast<AttributeId>(i));
    if (!inserted) {
      return util::Status::InvalidArgument("duplicate attribute name: " +
                                           names[i]);
    }
  }
  s.names_ = std::move(names);
  return s;
}

util::Result<AttributeId> Schema::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return util::Status::NotFound("no attribute named " + name);
  }
  return it->second;
}

}  // namespace limbo::relation
