#ifndef LIMBO_RELATION_SCHEMA_H_
#define LIMBO_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace limbo::relation {

/// Index of an attribute (column) within a relation. At most 64 attributes
/// are supported so that attribute sets fit in a 64-bit bitset (src/fd).
using AttributeId = uint32_t;

/// Ordered list of named attributes. Attribute names are unique.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from `names`. Fails if names are empty, duplicated,
  /// or if there are more than 64 attributes.
  static util::Result<Schema> Create(std::vector<std::string> names);

  size_t NumAttributes() const { return names_.size(); }
  const std::string& Name(AttributeId a) const { return names_[a]; }
  const std::vector<std::string>& Names() const { return names_; }

  /// Returns the index of attribute `name`, or kNotFound.
  util::Result<AttributeId> Find(const std::string& name) const;

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> index_;
};

}  // namespace limbo::relation

#endif  // LIMBO_RELATION_SCHEMA_H_
