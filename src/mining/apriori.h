#ifndef LIMBO_MINING_APRIORI_H_
#define LIMBO_MINING_APRIORI_H_

#include <cstdint>
#include <vector>

#include "relation/relation.h"
#include "util/result.h"

namespace limbo::mining {

/// A frequent itemset over attribute values: the (sorted) value ids and
/// the number of tuples containing all of them.
struct Itemset {
  std::vector<relation::ValueId> items;
  uint64_t support = 0;
};

struct AprioriOptions {
  /// Minimum absolute support (number of tuples).
  uint64_t min_support = 2;
  /// Largest itemset size mined (0 = unbounded).
  size_t max_size = 0;
  /// Safety valve on candidate explosion.
  size_t max_candidates_per_level = 1u << 20;
};

/// Classic Apriori (Agrawal et al. [2]) over the transactions formed by
/// the rows of `rel` (each tuple = the set of its m value ids). Included
/// as the counting-based baseline the paper contrasts with: a value group
/// with perfect co-occurrence found by φ_V = 0 clustering is exactly a
/// frequent itemset whose support equals its members' supports.
util::Result<std::vector<Itemset>> MineFrequentItemsets(
    const relation::Relation& rel,
    const AprioriOptions& options = AprioriOptions());

}  // namespace limbo::mining

#endif  // LIMBO_MINING_APRIORI_H_
