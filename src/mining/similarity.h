#ifndef LIMBO_MINING_SIMILARITY_H_
#define LIMBO_MINING_SIMILARITY_H_

#include <cstddef>
#include <string_view>

#include "core/tuple_clustering.h"
#include "relation/relation.h"

namespace limbo::mining {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// 1 − distance / max(len): 1.0 for equal strings, 0.0 for disjoint.
double NormalizedSimilarity(std::string_view a, std::string_view b);

/// Average per-cell string similarity of two tuples (the value-distance
/// view of duplicate elimination the paper cites as complementary work).
double TupleSimilarity(const relation::Relation& rel, relation::TupleId x,
                       relation::TupleId y);

/// The combination the paper proposes as future work ("an interesting
/// area ... would be on how to combine these techniques"): take the
/// candidate duplicate groups from information-theoretic tuple clustering
/// and keep, within each group, only tuples whose string similarity to
/// the group's first member reaches `min_similarity`. Groups that drop
/// below two members disappear. Raises precision on noisy data without
/// re-scanning all tuple pairs.
core::DuplicateTupleReport RefineWithStringSimilarity(
    const relation::Relation& rel, const core::DuplicateTupleReport& report,
    double min_similarity);

}  // namespace limbo::mining

#endif  // LIMBO_MINING_SIMILARITY_H_
