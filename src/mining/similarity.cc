#include "mining/similarity.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

namespace limbo::mining {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program over the shorter string.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t above = row[i];
      const size_t substitute = diagonal + (a[i - 1] != b[j - 1] ? 1 : 0);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitute});
      diagonal = above;
    }
  }
  return row[a.size()];
}

double NormalizedSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double TupleSimilarity(const relation::Relation& rel, relation::TupleId x,
                       relation::TupleId y) {
  const size_t m = rel.NumAttributes();
  if (m == 0) return 1.0;
  double total = 0.0;
  for (size_t a = 0; a < m; ++a) {
    const auto attr = static_cast<relation::AttributeId>(a);
    total += NormalizedSimilarity(rel.TextAt(x, attr), rel.TextAt(y, attr));
  }
  return total / static_cast<double>(m);
}

core::DuplicateTupleReport RefineWithStringSimilarity(
    const relation::Relation& rel, const core::DuplicateTupleReport& report,
    double min_similarity) {
  core::DuplicateTupleReport refined = report;
  refined.groups.clear();
  for (const core::DuplicateTupleGroup& group : report.groups) {
    const size_t k = group.tuples.size();
    if (k < 2) continue;
    // Single-link connected components under the similarity threshold:
    // a group may contain several distinct duplicate families plus
    // unrelated strays; each component of size >= 2 becomes its own
    // refined group. Candidate groups are small, so the O(k^2) pairwise
    // pass is cheap.
    std::vector<size_t> parent(k);
    for (size_t i = 0; i < k; ++i) parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        if (TupleSimilarity(rel, group.tuples[i], group.tuples[j]) >=
            min_similarity) {
          parent[find(i)] = find(j);
        }
      }
    }
    std::unordered_map<size_t, core::DuplicateTupleGroup> components;
    for (size_t i = 0; i < k; ++i) {
      auto& component = components[find(i)];
      component.summary_mass = group.summary_mass;
      component.tuples.push_back(group.tuples[i]);
    }
    for (auto& [root, component] : components) {
      if (component.tuples.size() >= 2) {
        refined.groups.push_back(std::move(component));
      }
    }
  }
  return refined;
}

}  // namespace limbo::mining
