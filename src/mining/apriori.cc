#include "mining/apriori.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace limbo::mining {

namespace {

/// Candidate generation: join k-itemsets sharing a (k-1)-prefix, then
/// prune candidates with an infrequent k-subset.
std::vector<std::vector<relation::ValueId>> GenerateCandidates(
    const std::vector<Itemset>& frequent) {
  std::vector<std::vector<relation::ValueId>> candidates;
  // Frequent itemsets are sorted lexicographically by construction.
  for (size_t i = 0; i < frequent.size(); ++i) {
    for (size_t j = i + 1; j < frequent.size(); ++j) {
      const auto& a = frequent[i].items;
      const auto& b = frequent[j].items;
      const size_t k = a.size();
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
      std::vector<relation::ValueId> merged = a;
      merged.push_back(b.back());
      // Subset pruning: every k-subset must be frequent.
      bool all_frequent = true;
      for (size_t drop = 0; drop + 2 < merged.size() && all_frequent;
           ++drop) {
        std::vector<relation::ValueId> subset;
        subset.reserve(k);
        for (size_t x = 0; x < merged.size(); ++x) {
          if (x != drop) subset.push_back(merged[x]);
        }
        auto it = std::lower_bound(
            frequent.begin(), frequent.end(), subset,
            [](const Itemset& lhs, const std::vector<relation::ValueId>& rhs) {
              return lhs.items < rhs;
            });
        all_frequent = (it != frequent.end() && it->items == subset);
      }
      if (all_frequent) candidates.push_back(std::move(merged));
    }
  }
  return candidates;
}

}  // namespace

util::Result<std::vector<Itemset>> MineFrequentItemsets(
    const relation::Relation& rel, const AprioriOptions& options) {
  if (options.min_support == 0) {
    return util::Status::InvalidArgument("min_support must be >= 1");
  }
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();

  // Transactions: sorted value ids per row.
  std::vector<std::vector<relation::ValueId>> transactions(n);
  for (relation::TupleId t = 0; t < n; ++t) {
    auto row = rel.Row(t);
    transactions[t].assign(row.begin(), row.end());
    std::sort(transactions[t].begin(), transactions[t].end());
  }

  std::vector<Itemset> all;
  // L1 from dictionary supports.
  std::vector<Itemset> level;
  for (relation::ValueId v = 0; v < rel.NumValues(); ++v) {
    const uint64_t support = rel.dictionary().Support(v);
    if (support >= options.min_support) {
      level.push_back({{v}, support});
    }
  }
  std::sort(level.begin(), level.end(),
            [](const Itemset& a, const Itemset& b) { return a.items < b.items; });

  size_t k = 1;
  while (!level.empty()) {
    all.insert(all.end(), level.begin(), level.end());
    if (options.max_size != 0 && k >= options.max_size) break;
    if (k >= m) break;  // a tuple has m items; larger itemsets are empty
    std::vector<std::vector<relation::ValueId>> candidates =
        GenerateCandidates(level);
    if (candidates.size() > options.max_candidates_per_level) {
      return util::Status::FailedPrecondition(util::StrFormat(
          "Apriori candidate explosion at level %zu: %zu candidates",
          k + 1, candidates.size()));
    }
    if (candidates.empty()) break;
    std::vector<uint64_t> counts(candidates.size(), 0);
    for (const auto& txn : transactions) {
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (std::includes(txn.begin(), txn.end(), candidates[c].begin(),
                          candidates[c].end())) {
          ++counts[c];
        }
      }
    }
    std::vector<Itemset> next;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= options.min_support) {
        next.push_back({std::move(candidates[c]), counts[c]});
      }
    }
    level = std::move(next);
    ++k;
  }
  return all;
}

}  // namespace limbo::mining
