#ifndef LIMBO_SERVE_ENGINE_H_
#define LIMBO_SERVE_ENGINE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/prob.h"
#include "model/model_bundle.h"
#include "util/json.h"
#include "util/result.h"

namespace limbo::serve {

/// What to do with attribute values the model never saw at fit time.
enum class OovPolicy {
  /// Drop unseen values from the row object's support (the uniform
  /// conditional spreads over the known values only) and report how many
  /// were dropped. A row with *no* known value is still an error.
  kDrop,
  /// Any unseen value fails the query with a typed error.
  kStrict,
};

struct EngineOptions {
  OovPolicy oov = OovPolicy::kDrop;
};

/// Outcome of assigning one row of a batch. Row-level failures (arity
/// mismatch, strict-OOV miss) are per-row statuses, never batch
/// failures: one bad row in a batch must not poison its neighbors.
struct RowAssignment {
  util::Status status;
  uint32_t label = 0;
  double loss = 0.0;
  size_t oov = 0;
};

/// Stateless query engine over one frozen model bundle. The bundle is
/// loaded once; every query after that touches only in-memory state, and
/// all of it is read-only after construction — concurrent HandleLine
/// calls are safe as long as each caller passes its own LossKernel.
///
/// Queries and responses are newline-delimited JSON (one object per
/// line). Protocol errors come back as {"ok":false,...} responses, never
/// as crashes — HandleLine itself cannot fail.
///
/// `assign` replicates Phase3Assigner bit for bit: the row object is
/// p = 1/n uniform over its dictionary ids, the representatives live as
/// arena rows with cached logs, and the argmin uses strict < (lowest
/// cluster index wins ties). A fitted row therefore gets exactly the
/// label and loss the batch run stored, at any worker count.
class Engine {
 public:
  /// Loads a bundle file and freezes the serving state.
  static util::Result<Engine> Open(const std::string& path,
                                   const EngineOptions& options = {});

  /// Same, over an already-parsed bundle.
  static util::Result<Engine> FromBundle(model::ModelBundle bundle,
                                         const EngineOptions& options = {});

  /// Answers one query line. `kernel` is the caller's scratch evaluator —
  /// one per worker lane; the engine itself stays read-only.
  std::string HandleLine(const std::string& line,
                         core::LossKernel* kernel) const;

  /// Answers one already-parsed query object — the registry's routed
  /// path (it parses once to read the "model" field, then dispatches
  /// here). HandleLine is ParseJson + this. Unknown fields, including
  /// "model", are ignored.
  std::string HandleRequest(const util::JsonValue& request,
                            core::LossKernel* kernel) const;

  /// Answers a batch of already-parsed query objects with one kernel,
  /// returning one response per request, in order. `assign` and
  /// `duplicates` requests across the whole batch are decoded first and
  /// evaluated through a single AssignBatch call (the representative
  /// slab stays cache-hot across rows); every other op dispatches
  /// through HandleRequest. Responses are byte-identical to calling
  /// HandleRequest on each request alone — batching is a scheduling
  /// decision, never a semantic one.
  std::vector<std::string> HandleRequests(
      std::span<const util::JsonValue* const> requests,
      core::LossKernel* kernel) const;

  /// Single-threaded convenience using an engine-owned kernel.
  std::string HandleLine(const std::string& line) {
    return HandleLine(line, &own_kernel_);
  }

  const model::ModelBundle& bundle() const { return bundle_; }

  /// Assigns one decoded row (fields in schema order) to its nearest
  /// representative. Exposed for the bit-identity tests and the serve
  /// benchmark; HandleLine's "assign" op is a JSON wrapper over this.
  /// `oov` receives the number of dropped values (kDrop only).
  util::Status AssignRow(const std::vector<std::string>& fields,
                         core::LossKernel* kernel, uint32_t* label,
                         double* loss, size_t* oov) const;

  /// Assigns a batch of decoded rows with one kernel. Each row's
  /// arithmetic is exactly AssignRow's — core::FindNearestCandidate over
  /// the same arena rows — so labels and losses are bit-identical to N
  /// AssignRow calls; the batch exists to amortize the representative
  /// slab traversal (and, in the server, the queue rendezvous and socket
  /// writes) across rows.
  std::vector<RowAssignment> AssignBatch(
      std::span<const std::vector<std::string>> rows,
      core::LossKernel* kernel) const;

 private:
  Engine(model::ModelBundle bundle, const EngineOptions& options);

  util::Result<core::Dcf> RowObject(const std::vector<std::string>& fields,
                                    size_t* oov) const;
  util::Status ParseRowArg(const util::JsonValue& request,
                           std::vector<std::string>* fields) const;

  util::Result<std::string> HandleAssign(const util::JsonValue& request,
                                         core::LossKernel* kernel) const;
  util::Result<std::string> HandleDuplicates(const util::JsonValue& request,
                                             core::LossKernel* kernel) const;
  std::string FormatAssign(uint32_t label, double loss, size_t oov) const;
  std::string FormatDuplicates(uint32_t label, double loss,
                               size_t oov) const;
  util::Result<std::string> HandleValueGroup(
      const util::JsonValue& request) const;
  util::Result<std::string> HandleAttrs() const;
  util::Result<std::string> HandleFds(const util::JsonValue& request) const;
  util::Result<std::string> HandleSchemes(
      const util::JsonValue& request) const;
  util::Result<std::string> HandleInfo() const;

  model::ModelBundle bundle_;
  EngineOptions options_;
  // Frozen Phase-3 state, mirroring Phase3Assigner's layout.
  core::DistributionArena arena_;
  std::vector<size_t> rep_row_;
  std::vector<double> rep_p_;
  // 1/base_rows — the mass unit the representatives were fitted in. A
  // refit chain keeps anchoring to the generation-0 row count, so a
  // refitted child serves losses byte-identical to its parent.
  double row_mass_ = 0.0;
  // value id -> value_groups index (kNoGroup when unassigned).
  static constexpr uint32_t kNoGroup = UINT32_MAX;
  std::vector<uint32_t> value_to_group_;
  core::LossKernel own_kernel_;
};

}  // namespace limbo::serve

#endif  // LIMBO_SERVE_ENGINE_H_
