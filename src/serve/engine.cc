#include "serve/engine.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dcf.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "relation/csv_scanner.h"
#include "serve/wire.h"
#include "util/json.h"

namespace limbo::serve {

namespace {

using util::JsonValue;

/// Optional non-negative integer "limit" field, clamped to `fallback`.
/// kInteger's payload is unsigned and the parser routes every '-'-leading
/// token to kNumber, so a negative literal lands in the kind check below —
/// it can never reach the uint64 and wrap through the cast. The clamp
/// against fallback runs in uint64 so over-size_t values on narrow
/// platforms saturate instead of truncating.
util::Result<size_t> ParseLimit(const JsonValue& request, size_t fallback) {
  const JsonValue* l = request.Find("limit");
  if (l == nullptr) return fallback;
  if (l->kind != JsonValue::Kind::kInteger) {
    return util::Status::InvalidArgument(
        "\"limit\" must be a non-negative integer");
  }
  const uint64_t clamped =
      std::min(static_cast<uint64_t>(fallback), l->integer);
  return static_cast<size_t>(clamped);
}

void AppendNameList(const relation::Schema& schema,
                    const std::vector<relation::AttributeId>& ids,
                    std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out->push_back(',');
    util::AppendJsonString(schema.Name(ids[i]), out);
  }
  out->push_back(']');
}

}  // namespace

Engine::Engine(model::ModelBundle bundle, const EngineOptions& options)
    : bundle_(std::move(bundle)), options_(options) {
  // Phase3Assigner's exact frozen state: priors in a flat array, the
  // representative conditionals as arena rows with cached logs.
  const uint64_t base_rows =
      bundle_.has_lineage ? bundle_.lineage.base_rows : bundle_.num_rows;
  row_mass_ = 1.0 / static_cast<double>(base_rows);
  rep_p_.reserve(bundle_.representatives.size());
  rep_row_.reserve(bundle_.representatives.size());
  for (const core::Dcf& rep : bundle_.representatives) {
    rep_p_.push_back(rep.p);
    rep_row_.push_back(arena_.Append(rep.cond));
  }
  value_to_group_.assign(bundle_.dictionary.NumValues(), kNoGroup);
  for (size_t g = 0; g < bundle_.value_groups.size(); ++g) {
    for (relation::ValueId v : bundle_.value_groups[g].values) {
      value_to_group_[v] = static_cast<uint32_t>(g);
    }
  }
}

util::Result<Engine> Engine::Open(const std::string& path,
                                  const EngineOptions& options) {
  LIMBO_ASSIGN_OR_RETURN(model::ModelBundle bundle, model::Load(path));
  return FromBundle(std::move(bundle), options);
}

util::Result<Engine> Engine::FromBundle(model::ModelBundle bundle,
                                        const EngineOptions& options) {
  if (bundle.representatives.empty()) {
    return util::Status::FailedPrecondition(
        "bundle has no cluster representatives; refusing to serve");
  }
  if (bundle.num_rows == 0) {
    return util::Status::FailedPrecondition(
        "bundle was fitted on 0 rows; refusing to serve");
  }
  return Engine(std::move(bundle), options);
}

util::Result<core::Dcf> Engine::RowObject(
    const std::vector<std::string>& fields, size_t* oov) const {
  const relation::Schema& schema = bundle_.schema;
  if (fields.size() != schema.NumAttributes()) {
    return util::Status::InvalidArgument(
        "row has " + std::to_string(fields.size()) + " fields; schema has " +
        std::to_string(schema.NumAttributes()) + " attributes");
  }
  std::vector<uint32_t> ids;
  ids.reserve(fields.size());
  *oov = 0;
  for (size_t a = 0; a < fields.size(); ++a) {
    util::Result<relation::ValueId> v = bundle_.dictionary.Find(
        static_cast<relation::AttributeId>(a), fields[a]);
    if (v.ok()) {
      ids.push_back(*v);
      continue;
    }
    if (options_.oov == OovPolicy::kStrict) {
      return util::Status::NotFound("unseen value for attribute \"" +
                                    schema.Name(static_cast<uint32_t>(a)) +
                                    "\": \"" + fields[a] + "\"");
    }
    ++*oov;
  }
  if (ids.empty()) {
    return util::Status::NotFound(
        "every value in the row is unseen; nothing to assign");
  }
  // The batch tuple object of Section 5.2: prior 1/n, conditional uniform
  // over the row's value ids. Using the fitted n (the refit chain's
  // base_rows) keeps the loss scale — and thus the assignment argmin —
  // bit-identical to Phase 3 across refit generations.
  core::Dcf object;
  object.p = row_mass_;
  object.cond = core::SparseDistribution::UniformOver(ids);
  return object;
}

util::Status Engine::AssignRow(const std::vector<std::string>& fields,
                               core::LossKernel* kernel, uint32_t* label,
                               double* loss, size_t* oov) const {
  core::Dcf object;
  {
    util::Result<core::Dcf> r = RowObject(fields, oov);
    if (!r.ok()) return r.status();
    object = std::move(r).value();
  }
  // core::FindNearestCandidate is Phase3Assigner's inner loop: strict <
  // keeps the lowest cluster index on ties, making the result a pure
  // function of the pair set — identical at every worker count.
  const core::NearestCandidate nearest = core::FindNearestCandidate(
      kernel, object.p, object.cond, rep_p_, arena_, rep_row_);
  *label = nearest.index;
  *loss = nearest.loss;
  return util::Status::Ok();
}

std::vector<RowAssignment> Engine::AssignBatch(
    std::span<const std::vector<std::string>> rows,
    core::LossKernel* kernel) const {
  std::vector<RowAssignment> results(rows.size());
  // Duplicate-row fast path: load batches are often dominated by repeated
  // rows (hot entities, client retries). Byte-identical rows — keyed by a
  // length-prefixed field join, so ("ab","c") never collides with
  // ("a","bc") — are evaluated once; later copies reuse the first
  // occurrence's RowAssignment verbatim (status included), which makes
  // the responses byte-identical to the plain per-row loop.
  std::unordered_map<std::string, size_t> first_at;
  first_at.reserve(rows.size());
  std::string key;
  uint64_t dup_rows = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    key.clear();
    for (const std::string& field : rows[i]) {
      const uint32_t len = static_cast<uint32_t>(field.size());
      key.append(reinterpret_cast<const char*>(&len), sizeof(len));
      key.append(field);
    }
    const auto [it, inserted] = first_at.emplace(key, i);
    if (!inserted) {
      results[i] = results[it->second];
      ++dup_rows;
      continue;
    }
    RowAssignment& result = results[i];
    util::Result<core::Dcf> object = RowObject(rows[i], &result.oov);
    if (!object.ok()) {
      result.status = object.status();
      continue;
    }
    const core::NearestCandidate nearest = core::FindNearestCandidate(
        kernel, object->p, object->cond, rep_p_, arena_, rep_row_);
    result.label = nearest.index;
    result.loss = nearest.loss;
  }
  if (dup_rows > 0) LIMBO_OBS_COUNT("serve.batch.dup_rows", dup_rows);
  return results;
}

util::Status Engine::ParseRowArg(const JsonValue& request,
                                 std::vector<std::string>* fields) const {
  const JsonValue* row = request.Find("row");
  const JsonValue* csv = request.Find("csv");
  if ((row != nullptr) == (csv != nullptr)) {
    return util::Status::InvalidArgument(
        "query needs exactly one of \"row\" (array of strings) or \"csv\" "
        "(raw record)");
  }
  fields->clear();
  if (row != nullptr) {
    if (row->kind != JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument("\"row\" must be an array");
    }
    fields->reserve(row->array.size());
    for (const JsonValue& field : row->array) {
      if (field.kind != JsonValue::Kind::kString) {
        return util::Status::InvalidArgument(
            "\"row\" elements must be strings");
      }
      fields->push_back(field.str);
    }
    return util::Status::Ok();
  }
  if (csv->kind != JsonValue::Kind::kString) {
    return util::Status::InvalidArgument("\"csv\" must be a string");
  }
  relation::CsvScanner scanner;
  scanner.Consume(csv->str);
  LIMBO_RETURN_IF_ERROR(scanner.Finish());
  if (scanner.BufferedRecords() != 1) {
    return util::Status::InvalidArgument(
        "\"csv\" must contain exactly one record, got " +
        std::to_string(scanner.BufferedRecords()));
  }
  scanner.PopRecord(fields);
  return util::Status::Ok();
}

std::string Engine::FormatAssign(uint32_t label, double loss,
                                 size_t oov) const {
  std::string out = "{\"ok\":true,";
  AppendIntField("cluster", label, &out);
  out.push_back(',');
  AppendNumberField("loss", loss, &out);
  out.push_back(',');
  AppendIntField("oov", oov, &out);
  out.push_back('}');
  return out;
}

std::string Engine::FormatDuplicates(uint32_t label, double loss,
                                     size_t oov) const {
  // Section 6.1 association test: the row is a near-duplicate iff its
  // nearest cluster is heavy (prior above a single tuple's 1/n) and
  // joining it costs at most margin × the Phase-1 merge threshold.
  const bool heavy = rep_p_[label] > row_mass_;
  const double limit = bundle_.association_margin * bundle_.threshold;
  const bool duplicate = heavy && loss <= limit;
  std::string out = "{\"ok\":true,";
  AppendBoolField("duplicate", duplicate, &out);
  out.push_back(',');
  AppendIntField("cluster", label, &out);
  out.push_back(',');
  AppendNumberField("loss", loss, &out);
  out.push_back(',');
  AppendNumberField("limit", limit, &out);
  out.push_back(',');
  AppendBoolField("heavy", heavy, &out);
  out.push_back(',');
  AppendIntField("oov", oov, &out);
  out.push_back('}');
  return out;
}

util::Result<std::string> Engine::HandleAssign(const JsonValue& request,
                                               core::LossKernel* kernel) const {
  std::vector<std::string> fields;
  LIMBO_RETURN_IF_ERROR(ParseRowArg(request, &fields));
  uint32_t label = 0;
  double loss = 0.0;
  size_t oov = 0;
  LIMBO_RETURN_IF_ERROR(AssignRow(fields, kernel, &label, &loss, &oov));
  return FormatAssign(label, loss, oov);
}

util::Result<std::string> Engine::HandleDuplicates(
    const JsonValue& request, core::LossKernel* kernel) const {
  std::vector<std::string> fields;
  LIMBO_RETURN_IF_ERROR(ParseRowArg(request, &fields));
  uint32_t label = 0;
  double loss = 0.0;
  size_t oov = 0;
  LIMBO_RETURN_IF_ERROR(AssignRow(fields, kernel, &label, &loss, &oov));
  return FormatDuplicates(label, loss, oov);
}

util::Result<std::string> Engine::HandleValueGroup(
    const JsonValue& request) const {
  const JsonValue* attr = request.Find("attr");
  const JsonValue* value = request.Find("value");
  if (attr == nullptr || attr->kind != JsonValue::Kind::kString ||
      value == nullptr || value->kind != JsonValue::Kind::kString) {
    return util::Status::InvalidArgument(
        "valuegroup needs string fields \"attr\" and \"value\"");
  }
  LIMBO_ASSIGN_OR_RETURN(relation::AttributeId a,
                         bundle_.schema.Find(attr->str));
  util::Result<relation::ValueId> v = bundle_.dictionary.Find(a, value->str);
  if (!v.ok()) {
    return util::Status::NotFound("value \"" + value->str +
                                  "\" was never seen under attribute \"" +
                                  attr->str + "\"");
  }
  std::string out = "{\"ok\":true,";
  AppendStringField(
      "value", bundle_.dictionary.QualifiedName(bundle_.schema, *v), &out);
  out.push_back(',');
  AppendIntField("support", bundle_.dictionary.Support(*v), &out);
  out.push_back(',');
  const uint32_t g = value_to_group_[*v];
  if (g == kNoGroup) {
    out += "\"group\":null,\"is_duplicate\":false,\"members\":[]";
    out.push_back('}');
    return out;
  }
  const core::ValueGroup& group = bundle_.value_groups[g];
  AppendIntField("group", g, &out);
  out.push_back(',');
  AppendBoolField("is_duplicate", group.is_duplicate, &out);
  out.push_back(',');
  AppendKey("members", &out);
  out.push_back('[');
  for (size_t i = 0; i < group.values.size(); ++i) {
    if (i > 0) out.push_back(',');
    util::AppendJsonString(
        bundle_.dictionary.QualifiedName(bundle_.schema, group.values[i]),
        &out);
  }
  out += "]}";
  return out;
}

util::Result<std::string> Engine::HandleAttrs() const {
  std::string out = "{\"ok\":true,";
  AppendKey("attributes", &out);
  out.push_back('[');
  for (size_t a = 0; a < bundle_.schema.NumAttributes(); ++a) {
    if (a > 0) out.push_back(',');
    util::AppendJsonString(bundle_.schema.Name(static_cast<uint32_t>(a)),
                           &out);
  }
  out += "],";
  AppendBoolField("has_grouping", bundle_.has_grouping, &out);
  if (bundle_.has_grouping) {
    out.push_back(',');
    AppendKey("grouping", &out);
    out += "{";
    AppendKey("attributes", &out);
    AppendNameList(bundle_.schema, bundle_.grouping_attributes, &out);
    out.push_back(',');
    AppendNumberField("max_merge_loss", bundle_.max_merge_loss, &out);
    out.push_back(',');
    AppendKey("merges", &out);
    out.push_back('[');
    for (size_t i = 0; i < bundle_.grouping_merges.size(); ++i) {
      const core::Merge& m = bundle_.grouping_merges[i];
      if (i > 0) out.push_back(',');
      out += "{";
      AppendIntField("left", m.left, &out);
      out.push_back(',');
      AppendIntField("right", m.right, &out);
      out.push_back(',');
      AppendIntField("merged", m.merged, &out);
      out.push_back(',');
      AppendNumberField("loss", m.delta_i, &out);
      out.push_back('}');
    }
    out += "],";
    AppendKey("clusters", &out);
    out.push_back('[');
    for (size_t i = 0; i < bundle_.grouping_cluster_members.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendNameList(
          bundle_.schema,
          fd::AttributeSet(bundle_.grouping_cluster_members[i]).ToList(),
          &out);
    }
    out += "]}";
  }
  out.push_back('}');
  return out;
}

util::Result<std::string> Engine::HandleFds(const JsonValue& request) const {
  LIMBO_ASSIGN_OR_RETURN(size_t limit,
                         ParseLimit(request, bundle_.ranked_fds.size()));
  std::string out = "{\"ok\":true,";
  AppendIntField("total_mined", bundle_.num_fds, &out);
  out.push_back(',');
  AppendIntField("ranked", bundle_.ranked_fds.size(), &out);
  out.push_back(',');
  AppendKey("fds", &out);
  out.push_back('[');
  for (size_t i = 0; i < limit; ++i) {
    const core::RankedFd& f = bundle_.ranked_fds[i];
    if (i > 0) out.push_back(',');
    out += "{";
    AppendKey("lhs", &out);
    AppendNameList(bundle_.schema, f.fd.lhs.ToList(), &out);
    out.push_back(',');
    AppendKey("rhs", &out);
    AppendNameList(bundle_.schema, f.fd.rhs.ToList(), &out);
    out.push_back(',');
    AppendNumberField("rank", f.rank, &out);
    out.push_back(',');
    AppendBoolField("anchored", f.anchored, &out);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

util::Result<std::string> Engine::HandleSchemes(
    const JsonValue& request) const {
  LIMBO_ASSIGN_OR_RETURN(size_t limit,
                         ParseLimit(request, bundle_.schemes.size()));
  std::string out = "{\"ok\":true,";
  AppendNumberField("epsilon", bundle_.schemes_epsilon, &out);
  out.push_back(',');
  AppendIntField("max_separator", bundle_.schemes_max_separator, &out);
  out.push_back(',');
  AppendNumberField("total_entropy", bundle_.schemes_total_entropy, &out);
  out.push_back(',');
  AppendIntField("count", bundle_.schemes.size(), &out);
  out.push_back(',');
  AppendKey("schemes", &out);
  out.push_back('[');
  for (size_t i = 0; i < limit; ++i) {
    const model::BundleScheme& s = bundle_.schemes[i];
    if (i > 0) out.push_back(',');
    out += "{";
    AppendKey("separator", &out);
    AppendNameList(bundle_.schema, fd::AttributeSet(s.separator_bits).ToList(),
                   &out);
    out.push_back(',');
    AppendKey("bags", &out);
    out.push_back('[');
    for (size_t b = 0; b < s.bag_bits.size(); ++b) {
      if (b > 0) out.push_back(',');
      AppendNameList(bundle_.schema, fd::AttributeSet(s.bag_bits[b]).ToList(),
                     &out);
    }
    out += "],";
    AppendNumberField("j_measure", s.j_measure, &out);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

util::Result<std::string> Engine::HandleInfo() const {
  std::string out = "{\"ok\":true,";
  AppendIntField("format_version", bundle_.format_version, &out);
  out.push_back(',');
  AppendStringField("checksum", ChecksumHex(bundle_.payload_checksum), &out);
  out.push_back(',');
  AppendIntField("rows", bundle_.num_rows, &out);
  out.push_back(',');
  AppendIntField("attributes", bundle_.schema.NumAttributes(), &out);
  out.push_back(',');
  AppendIntField("values", bundle_.dictionary.NumValues(), &out);
  out.push_back(',');
  AppendIntField("clusters", bundle_.representatives.size(), &out);
  out.push_back(',');
  AppendNumberField("phi_t", bundle_.phi_t, &out);
  out.push_back(',');
  AppendNumberField("phi_v", bundle_.phi_v, &out);
  out.push_back(',');
  AppendNumberField("psi", bundle_.psi, &out);
  out.push_back(',');
  AppendNumberField("mutual_information", bundle_.mutual_information, &out);
  out.push_back(',');
  AppendNumberField("threshold", bundle_.threshold, &out);
  out.push_back(',');
  AppendNumberField("association_margin", bundle_.association_margin, &out);
  out.push_back(',');
  AppendIntField("value_groups", bundle_.value_groups.size(), &out);
  out.push_back(',');
  AppendIntField("duplicate_value_groups", bundle_.duplicate_groups.size(),
                 &out);
  out.push_back(',');
  AppendBoolField("has_grouping", bundle_.has_grouping, &out);
  out.push_back(',');
  AppendIntField("fds_mined", bundle_.num_fds, &out);
  out.push_back(',');
  AppendIntField("ranked_fds", bundle_.ranked_fds.size(), &out);
  out.push_back(',');
  AppendBoolField("has_schemes", bundle_.has_schemes, &out);
  out.push_back(',');
  AppendIntField("schemes", bundle_.schemes.size(), &out);
  out.push_back(',');
  AppendStringField("oov_policy",
                    options_.oov == OovPolicy::kDrop ? "drop" : "strict",
                    &out);
  out.push_back(',');
  AppendBoolField("refit_capable", bundle_.has_phase1_tree, &out);
  out.push_back(',');
  AppendKey("lineage", &out);
  AppendLineage(bundle_.has_lineage, bundle_.lineage, &out);
  out.push_back('}');
  return out;
}

std::string Engine::HandleLine(const std::string& line,
                               core::LossKernel* kernel) const {
  util::Result<JsonValue> request = util::ParseJson(line);
  if (!request.ok()) {
    LIMBO_OBS_COUNT("serve.query.errors", 1);
    return ErrorResponse(request.status());
  }
  if (request->kind != JsonValue::Kind::kObject) {
    LIMBO_OBS_COUNT("serve.query.errors", 1);
    return ErrorResponse(
        util::Status::InvalidArgument("query must be a JSON object"));
  }
  return HandleRequest(*request, kernel);
}

std::string Engine::HandleRequest(const JsonValue& request,
                                  core::LossKernel* kernel) const {
  util::Result<std::string> response = [&]() -> util::Result<std::string> {
    const JsonValue* op = request.Find("op");
    if (op == nullptr || op->kind != JsonValue::Kind::kString) {
      return util::Status::InvalidArgument(
          "query needs a string field \"op\"");
    }
    if (op->str == "assign") {
      LIMBO_OBS_SPAN(span, "serve.assign");
      LIMBO_OBS_COUNT("serve.query.assign", 1);
      return HandleAssign(request, kernel);
    }
    if (op->str == "duplicates") {
      LIMBO_OBS_SPAN(span, "serve.duplicates");
      LIMBO_OBS_COUNT("serve.query.duplicates", 1);
      return HandleDuplicates(request, kernel);
    }
    if (op->str == "valuegroup") {
      LIMBO_OBS_SPAN(span, "serve.valuegroup");
      LIMBO_OBS_COUNT("serve.query.valuegroup", 1);
      return HandleValueGroup(request);
    }
    if (op->str == "attrs") {
      LIMBO_OBS_SPAN(span, "serve.attrs");
      LIMBO_OBS_COUNT("serve.query.attrs", 1);
      return HandleAttrs();
    }
    if (op->str == "fds") {
      LIMBO_OBS_SPAN(span, "serve.fds");
      LIMBO_OBS_COUNT("serve.query.fds", 1);
      return HandleFds(request);
    }
    if (op->str == "schemes") {
      LIMBO_OBS_SPAN(span, "serve.schemes");
      LIMBO_OBS_COUNT("serve.query.schemes", 1);
      if (!bundle_.has_schemes) {
        // A typed protocol error, not a transport failure: v1/v2 bundles
        // (and fits without --schemes) simply have no section to serve.
        LIMBO_OBS_COUNT("serve.query.errors", 1);
        return ErrorResponse(
            "no_schemes",
            "bundle has no mined-schemes section; re-fit with --schemes");
      }
      return HandleSchemes(request);
    }
    if (op->str == "info") {
      LIMBO_OBS_SPAN(span, "serve.info");
      LIMBO_OBS_COUNT("serve.query.info", 1);
      return HandleInfo();
    }
    return util::Status::InvalidArgument("unknown op \"" + op->str + "\"");
  }();
  if (response.ok()) return std::move(response).value();
  LIMBO_OBS_COUNT("serve.query.errors", 1);
  return ErrorResponse(response.status());
}

std::vector<std::string> Engine::HandleRequests(
    std::span<const JsonValue* const> requests,
    core::LossKernel* kernel) const {
  std::vector<std::string> responses(requests.size());
  // Decode every assign/duplicates row up front; everything else — and
  // any request whose row argument fails to decode — takes the
  // single-request path, which produces the identical bytes for those
  // shapes anyway.
  struct BatchItem {
    size_t index;
    bool duplicates;
  };
  std::vector<BatchItem> items;
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < requests.size(); ++i) {
    const JsonValue& request = *requests[i];
    const JsonValue* op = request.Find("op");
    const bool batchable =
        op != nullptr && op->kind == JsonValue::Kind::kString &&
        (op->str == "assign" || op->str == "duplicates");
    std::vector<std::string> fields;
    if (!batchable || !ParseRowArg(request, &fields).ok()) {
      responses[i] = HandleRequest(request, kernel);
      continue;
    }
    LIMBO_OBS_COUNT(
        op->str == "assign" ? "serve.query.assign" : "serve.query.duplicates",
        1);
    items.push_back({i, op->str == "duplicates"});
    rows.push_back(std::move(fields));
  }
  if (items.empty()) return responses;
  LIMBO_OBS_SPAN(span, "serve.assign_batch");
  LIMBO_OBS_COUNT("serve.batch.rows", items.size());
  const std::vector<RowAssignment> assigned = AssignBatch(rows, kernel);
  for (size_t j = 0; j < items.size(); ++j) {
    const RowAssignment& a = assigned[j];
    if (!a.status.ok()) {
      LIMBO_OBS_COUNT("serve.query.errors", 1);
      responses[items[j].index] = ErrorResponse(a.status);
      continue;
    }
    responses[items[j].index] = items[j].duplicates
                                    ? FormatDuplicates(a.label, a.loss, a.oov)
                                    : FormatAssign(a.label, a.loss, a.oov);
  }
  return responses;
}

}  // namespace limbo::serve
