#ifndef LIMBO_SERVE_REGISTRY_H_
#define LIMBO_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/prob.h"
#include "obs/counters.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "util/result.h"

namespace limbo::serve {

/// One registered model's public metadata (what the "models" admin op
/// reports).
struct ModelInfo {
  std::string name;
  std::string path;
  uint64_t version = 0;  // 1 on first load, +1 per successful reload
  uint64_t queries = 0;  // routed queries answered so far
  bool is_default = false;
  // Bundle provenance, from the engine currently serving the model (so
  // a reload that swaps in a refitted child updates these atomically
  // with the engine swap).
  uint64_t rows = 0;
  std::string checksum;  // 16-hex payload checksum of the bundle file
  bool refit_capable = false;  // carries a rehydratable phase-1 tree
  bool has_lineage = false;    // refit child (lineage below is valid)
  model::BundleLineage lineage;
};

/// A named collection of serving engines over frozen .limbo bundles.
/// Safe for concurrent readers and concurrent reloads: lookups hand out
/// a std::shared_ptr<const Engine> snapshot, so a query that started on
/// one engine finishes on it even if a reload swaps the entry mid-query.
///
/// Reloads are blue/green: the fresh bundle is loaded and validated
/// entirely off to the side, then swapped in atomically under the
/// registry lock. On any load failure the old engine keeps serving and
/// the entry's version does not change — a half-loaded model is never
/// observable.
///
/// HandleLine is the full protocol entry point the TCP server and the
/// --once driver use: it parses the query once, routes by the optional
/// "model" field (the default model when omitted), and implements the
/// admin ops "reload" and "models" that exist above any single engine.
class Registry {
 public:
  /// `cache_entries` > 0 enables the bounded LRU response cache: routed
  /// query responses are cached under (model, engine version, canonical
  /// request) keys — see ResponseCache for the reload-invalidation
  /// guarantee. 0 (the default) disables caching entirely.
  explicit Registry(EngineOptions engine_options = {},
                    size_t cache_entries = 0);

  /// Loads the bundle at `path` and registers it under `name`. The
  /// first model added becomes the default. Duplicate names are an
  /// error; nothing is registered on a load failure.
  util::Status AddModel(const std::string& name, const std::string& path);

  /// Registers every `*.limbo` file in `dir` (model name = file stem),
  /// in lexicographic filename order. Errors if the directory cannot be
  /// read or holds no bundles.
  util::Status AddDirectory(const std::string& dir);

  /// Makes `name` the default model for queries without a "model" field.
  util::Status SetDefault(const std::string& name);

  size_t NumModels() const;
  std::string DefaultName() const;
  std::vector<ModelInfo> ListModels() const;

  /// Snapshot lookup; empty name means the default model. Returns
  /// nullptr when the name is unknown (or the registry is empty).
  std::shared_ptr<const Engine> Lookup(const std::string& name) const;

  /// Blue/green reload of one model from its registered path. On
  /// success the new engine is swapped in atomically and the version
  /// bumps; on failure the old engine keeps serving unchanged.
  util::Status Reload(const std::string& name);

  /// Reloads every model. All models are attempted; the first error is
  /// returned (prefixed with the model name).
  util::Status ReloadAll();

  /// Answers one query line: parse, route by "model", dispatch admin
  /// ops. Never fails — protocol errors come back as {"ok":false,...}.
  std::string HandleLine(const std::string& line, core::LossKernel* kernel);

  /// Answers a batch of query lines with one kernel, returning one
  /// response per line, in order. Per-engine sub-batches dispatch
  /// through Engine::HandleRequests so assign/duplicates rows share one
  /// AssignBatch scan; admin ops execute inline at their position in
  /// the batch (a "reload" mid-batch affects which engine later lines
  /// snapshot, exactly as it would between two HandleLine calls).
  /// Responses are byte-identical to calling HandleLine on each line.
  std::vector<std::string> HandleBatch(std::span<const std::string> lines,
                                       core::LossKernel* kernel);

  /// Response-cache counters (0 when the cache is disabled).
  uint64_t CacheHits() const;
  uint64_t CacheMisses() const;

 private:
  struct Entry {
    std::string name;
    std::string path;
    std::shared_ptr<const Engine> engine;  // swapped under mu_
    uint64_t version = 1;
    std::atomic<uint64_t> queries{0};
    obs::Counter* counter = nullptr;  // serve.model.<name>.queries
  };

  util::Result<std::shared_ptr<const Engine>> LoadEngine(
      const std::string& path) const;
  Entry* FindEntryLocked(const std::string& name) const;
  std::string HandleReload(const util::JsonValue& request);
  std::string HandleModels() const;

  /// Snapshots the engine serving `name` (empty = default) and bumps its
  /// query tally. `resolved` and `version` receive the entry's name and
  /// current version from the same critical section, so a cache key
  /// built from them can never pair an old version with a new engine.
  std::shared_ptr<const Engine> Snapshot(const std::string& name,
                                         std::string* resolved,
                                         uint64_t* version);

  /// The routing step shared by HandleLine and HandleBatch: validates
  /// the parsed request's "model" field and snapshots the target engine
  /// (null plus an error response in `*error` when routing fails). When
  /// the cache is enabled, also builds the request's cache key.
  std::shared_ptr<const Engine> Route(const util::JsonValue& request,
                                      std::string* cache_key,
                                      std::string* error);

  EngineOptions engine_options_;
  std::unique_ptr<ResponseCache> cache_;  // null when disabled
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
  std::string default_name_;
};

}  // namespace limbo::serve

#endif  // LIMBO_SERVE_REGISTRY_H_
