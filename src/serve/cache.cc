#include "serve/cache.h"

#include <utility>

namespace limbo::serve {

ResponseCache::ResponseCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool ResponseCache::Lookup(const std::string& key, std::string* response) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *response = it->second->response;
  ++hits_;
  return true;
}

void ResponseCache::Insert(const std::string& key,
                           const std::string& response) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Responses are pure functions of the key, so a racing re-insert
    // carries the same bytes; just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, response});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

uint64_t ResponseCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResponseCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::string ResponseCacheKey(const std::string& model, uint64_t version,
                             const util::JsonValue& request) {
  // '\n' never survives NDJSON framing and AppendCanonicalJson escapes
  // it inside strings, so it cleanly separates the three key parts.
  std::string key = model;
  key.push_back('\n');
  key += std::to_string(version);
  key.push_back('\n');
  util::AppendCanonicalJson(request, &key);
  return key;
}

}  // namespace limbo::serve
