#ifndef LIMBO_SERVE_CACHE_H_
#define LIMBO_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/json.h"

namespace limbo::serve {

/// Bounded thread-safe LRU map from canonicalized request keys to
/// response lines, shared by all serving lanes of one registry.
///
/// Keys carry the model name AND the engine version (ResponseCacheKey),
/// so a blue/green reload invalidates atomically: the version bump makes
/// every old entry unreachable in the same critical section that swaps
/// the engine — a stale engine's response can never be served under the
/// new version, with no flush ordering to reason about. Orphaned entries
/// age out through normal LRU eviction.
class ResponseCache {
 public:
  /// `capacity` > 0: the maximum number of cached responses.
  explicit ResponseCache(size_t capacity);

  /// Copies the response cached under `key` into `*response` and marks
  /// the entry most-recently-used. False on miss.
  bool Lookup(const std::string& key, std::string* response);

  /// Caches `response` under `key` (refreshing the entry if present) and
  /// evicts least-recently-used entries beyond capacity.
  void Insert(const std::string& key, const std::string& response);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

 private:
  struct Node {
    std::string key;
    std::string response;
  };

  mutable std::mutex mu_;
  const size_t capacity_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// The cache key of one routed query: resolved model name, the engine
/// version that will answer, and the canonical serialization of the
/// request (sorted keys, fixed formatting), so field order and
/// whitespace differences in the wire line collapse to one entry.
std::string ResponseCacheKey(const std::string& model, uint64_t version,
                             const util::JsonValue& request);

}  // namespace limbo::serve

#endif  // LIMBO_SERVE_CACHE_H_
