#include "serve/wire.h"

#include "util/json.h"

namespace limbo::serve {

void AppendKey(const char* key, std::string* out) {
  out->push_back('"');
  *out += key;
  *out += "\":";
}

void AppendStringField(const char* key, const std::string& value,
                       std::string* out) {
  AppendKey(key, out);
  util::AppendJsonString(value, out);
}

void AppendNumberField(const char* key, double value, std::string* out) {
  AppendKey(key, out);
  util::AppendJsonNumber(value, out);
}

void AppendIntField(const char* key, uint64_t value, std::string* out) {
  AppendKey(key, out);
  *out += std::to_string(value);
}

void AppendBoolField(const char* key, bool value, std::string* out) {
  AppendKey(key, out);
  *out += value ? "true" : "false";
}

std::string ErrorResponse(const util::Status& status) {
  return ErrorResponse(util::StatusCodeName(status.code()), status.message());
}

std::string ErrorResponse(const std::string& code,
                          const std::string& message) {
  std::string out = "{\"ok\":false,";
  AppendStringField("code", code, &out);
  out.push_back(',');
  AppendStringField("error", message, &out);
  out.push_back('}');
  return out;
}

}  // namespace limbo::serve
