#include "serve/wire.h"

#include "util/json.h"

namespace limbo::serve {

void AppendKey(const char* key, std::string* out) {
  out->push_back('"');
  *out += key;
  *out += "\":";
}

void AppendStringField(const char* key, const std::string& value,
                       std::string* out) {
  AppendKey(key, out);
  util::AppendJsonString(value, out);
}

void AppendNumberField(const char* key, double value, std::string* out) {
  AppendKey(key, out);
  util::AppendJsonNumber(value, out);
}

void AppendIntField(const char* key, uint64_t value, std::string* out) {
  AppendKey(key, out);
  *out += std::to_string(value);
}

void AppendBoolField(const char* key, bool value, std::string* out) {
  AppendKey(key, out);
  *out += value ? "true" : "false";
}

std::string ChecksumHex(uint64_t checksum) {
  static const char* kDigits = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<size_t>(i)] = kDigits[checksum & 0xf];
    checksum >>= 4;
  }
  return hex;
}

void AppendLineage(bool has_lineage, const model::BundleLineage& l,
                   std::string* out) {
  if (!has_lineage) {
    *out += "null";
    return;
  }
  out->push_back('{');
  AppendIntField("generation", l.refit_generation, out);
  out->push_back(',');
  AppendStringField("parent_checksum", ChecksumHex(l.parent_checksum), out);
  out->push_back(',');
  AppendIntField("base_rows", l.base_rows, out);
  out->push_back(',');
  AppendIntField("rows_absorbed", l.rows_absorbed, out);
  out->push_back(',');
  AppendIntField("total_rows_absorbed", l.total_rows_absorbed, out);
  out->push_back(',');
  AppendNumberField("drift_score", l.drift_score, out);
  out->push_back(',');
  AppendStringField("drift_class", model::DriftClassName(l.drift_class), out);
  // Appended last so pre-v3 consumers matching on the leading fields
  // (generation, parent_checksum, ...) keep matching byte-for-byte.
  out->push_back(',');
  AppendNumberField("entropy_drift", l.entropy_drift, out);
  out->push_back('}');
}

std::string ErrorResponse(const util::Status& status) {
  return ErrorResponse(util::StatusCodeName(status.code()), status.message());
}

std::string ErrorResponse(const std::string& code,
                          const std::string& message) {
  std::string out = "{\"ok\":false,";
  AppendStringField("code", code, &out);
  out.push_back(',');
  AppendStringField("error", message, &out);
  out.push_back('}');
  return out;
}

}  // namespace limbo::serve
