#include "serve/registry.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "obs/counters.h"
#include "serve/wire.h"
#include "util/json.h"

namespace limbo::serve {

namespace {

using util::JsonValue;

/// "dir/name.limbo" -> "name": the model name a directory scan or a
/// positional bundle argument registers.
std::string StemOf(const std::filesystem::path& path) {
  return path.stem().string();
}

}  // namespace

Registry::Registry(EngineOptions engine_options, size_t cache_entries)
    : engine_options_(engine_options),
      cache_(cache_entries > 0 ? std::make_unique<ResponseCache>(cache_entries)
                               : nullptr) {}

uint64_t Registry::CacheHits() const {
  return cache_ == nullptr ? 0 : cache_->hits();
}

uint64_t Registry::CacheMisses() const {
  return cache_ == nullptr ? 0 : cache_->misses();
}

util::Result<std::shared_ptr<const Engine>> Registry::LoadEngine(
    const std::string& path) const {
  LIMBO_ASSIGN_OR_RETURN(Engine engine,
                         Engine::Open(path, engine_options_));
  return std::shared_ptr<const Engine>(
      std::make_shared<Engine>(std::move(engine)));
}

Registry::Entry* Registry::FindEntryLocked(const std::string& name) const {
  const std::string& target = name.empty() ? default_name_ : name;
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == target) return entry.get();
  }
  return nullptr;
}

util::Status Registry::AddModel(const std::string& name,
                                const std::string& path) {
  if (name.empty()) {
    return util::Status::InvalidArgument("model name must not be empty");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (FindEntryLocked(name) != nullptr) {
      return util::Status::InvalidArgument("model \"" + name +
                                           "\" is already registered");
    }
  }
  // Load outside the lock: bundles can be large, and concurrent queries
  // against already-registered models must not stall on disk I/O.
  util::Result<std::shared_ptr<const Engine>> engine = LoadEngine(path);
  if (!engine.ok()) return engine.status();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->path = path;
  entry->engine = std::move(*engine);
  entry->counter = &obs::GetCounter("serve.model." + name + ".queries");
  std::lock_guard<std::mutex> lock(mu_);
  if (FindEntryLocked(name) != nullptr) {
    return util::Status::InvalidArgument("model \"" + name +
                                         "\" is already registered");
  }
  if (entries_.empty()) default_name_ = name;
  entries_.push_back(std::move(entry));
  return util::Status::Ok();
}

util::Status Registry::AddDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot read model directory \"" + dir +
                                 "\": " + ec.message());
  }
  std::vector<std::filesystem::path> bundles;
  for (const std::filesystem::directory_entry& entry : it) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".limbo") {
      bundles.push_back(entry.path());
    }
  }
  if (bundles.empty()) {
    return util::Status::NotFound("no .limbo bundles in directory \"" + dir +
                                  "\"");
  }
  std::sort(bundles.begin(), bundles.end());
  for (const std::filesystem::path& bundle : bundles) {
    LIMBO_RETURN_IF_ERROR(AddModel(StemOf(bundle), bundle.string()));
  }
  return util::Status::Ok();
}

util::Status Registry::SetDefault(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (FindEntryLocked(name) == nullptr) {
    return util::Status::NotFound("unknown model \"" + name + "\"");
  }
  default_name_ = name;
  return util::Status::Ok();
}

size_t Registry::NumModels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string Registry::DefaultName() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_name_;
}

std::vector<ModelInfo> Registry::ListModels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelInfo> models;
  models.reserve(entries_.size());
  for (const std::unique_ptr<Entry>& entry : entries_) {
    ModelInfo info;
    info.name = entry->name;
    info.path = entry->path;
    info.version = entry->version;
    info.queries = entry->queries.load(std::memory_order_relaxed);
    info.is_default = entry->name == default_name_;
    const model::ModelBundle& bundle = entry->engine->bundle();
    info.rows = bundle.num_rows;
    info.checksum = ChecksumHex(bundle.payload_checksum);
    info.refit_capable = bundle.has_phase1_tree;
    info.has_lineage = bundle.has_lineage;
    info.lineage = bundle.lineage;
    models.push_back(std::move(info));
  }
  return models;
}

std::shared_ptr<const Engine> Registry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindEntryLocked(name);
  return entry == nullptr ? nullptr : entry->engine;
}

util::Status Registry::Reload(const std::string& name) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* entry = FindEntryLocked(name);
    if (entry == nullptr) {
      return util::Status::NotFound("unknown model \"" + name + "\"");
    }
    path = entry->path;
  }
  // Blue/green: the full load + validation happens off to the side, so
  // in-flight queries never see a half-loaded model. Only a fully-built
  // engine is ever swapped in.
  util::Result<std::shared_ptr<const Engine>> fresh = LoadEngine(path);
  if (!fresh.ok()) {
    LIMBO_OBS_COUNT("serve.reload.errors", 1);
    return util::Status::FailedPrecondition(
        "reload of model \"" + name + "\" failed, old model kept: " +
        fresh.status().ToString());
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindEntryLocked(name);
  if (entry == nullptr) {
    return util::Status::NotFound("unknown model \"" + name + "\"");
  }
  // Old engine stays alive until the last in-flight query that grabbed
  // a snapshot drops its shared_ptr.
  entry->engine = std::move(*fresh);
  ++entry->version;
  LIMBO_OBS_COUNT("serve.reloads", 1);
  return util::Status::Ok();
}

util::Status Registry::ReloadAll() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(entries_.size());
    for (const std::unique_ptr<Entry>& entry : entries_) {
      names.push_back(entry->name);
    }
  }
  util::Status first_error = util::Status::Ok();
  for (const std::string& name : names) {
    util::Status s = Reload(name);
    if (!s.ok() && first_error.ok()) first_error = std::move(s);
  }
  return first_error;
}

std::string Registry::HandleReload(const JsonValue& request) {
  std::vector<std::string> names;
  if (const JsonValue* model = request.Find("model"); model != nullptr) {
    if (model->kind != JsonValue::Kind::kString) {
      return ErrorResponse(
          util::Status::InvalidArgument("\"model\" must be a string"));
    }
    names.push_back(model->str);
  } else {
    for (const ModelInfo& info : ListModels()) names.push_back(info.name);
  }
  std::string out = "{\"ok\":true,";
  AppendKey("reloaded", &out);
  out.push_back('[');
  for (size_t i = 0; i < names.size(); ++i) {
    util::Status s = Reload(names[i]);
    if (!s.ok()) return ErrorResponse(s);
    if (i > 0) out.push_back(',');
    out += "{";
    AppendStringField("model", names[i], &out);
    out.push_back(',');
    uint64_t version = 0;
    for (const ModelInfo& info : ListModels()) {
      if (info.name == names[i]) version = info.version;
    }
    AppendIntField("version", version, &out);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string Registry::HandleModels() const {
  std::string out = "{\"ok\":true,";
  AppendStringField("default", DefaultName(), &out);
  out.push_back(',');
  AppendKey("models", &out);
  out.push_back('[');
  const std::vector<ModelInfo> models = ListModels();
  for (size_t i = 0; i < models.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{";
    AppendStringField("model", models[i].name, &out);
    out.push_back(',');
    AppendStringField("path", models[i].path, &out);
    out.push_back(',');
    AppendIntField("version", models[i].version, &out);
    out.push_back(',');
    AppendIntField("queries", models[i].queries, &out);
    out.push_back(',');
    AppendBoolField("is_default", models[i].is_default, &out);
    out.push_back(',');
    AppendIntField("rows", models[i].rows, &out);
    out.push_back(',');
    AppendStringField("checksum", models[i].checksum, &out);
    out.push_back(',');
    AppendBoolField("refit_capable", models[i].refit_capable, &out);
    out.push_back(',');
    AppendKey("lineage", &out);
    AppendLineage(models[i].has_lineage, models[i].lineage, &out);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string Registry::HandleLine(const std::string& line,
                                 core::LossKernel* kernel) {
  util::Result<JsonValue> request = util::ParseJson(line);
  if (!request.ok()) {
    LIMBO_OBS_COUNT("serve.query.errors", 1);
    return ErrorResponse(request.status());
  }
  if (request->kind != JsonValue::Kind::kObject) {
    LIMBO_OBS_COUNT("serve.query.errors", 1);
    return ErrorResponse(
        util::Status::InvalidArgument("query must be a JSON object"));
  }
  const JsonValue* op = request->Find("op");
  if (op == nullptr || op->kind != JsonValue::Kind::kString) {
    LIMBO_OBS_COUNT("serve.query.errors", 1);
    return ErrorResponse(
        util::Status::InvalidArgument("query needs a string field \"op\""));
  }
  // Admin ops live above any single engine.
  if (op->str == "reload") {
    LIMBO_OBS_COUNT("serve.query.reload", 1);
    return HandleReload(*request);
  }
  if (op->str == "models") {
    LIMBO_OBS_COUNT("serve.query.models", 1);
    return HandleModels();
  }
  std::string cache_key;
  std::string error;
  std::shared_ptr<const Engine> engine = Route(*request, &cache_key, &error);
  if (engine == nullptr) return error;
  if (cache_ != nullptr) {
    std::string cached;
    if (cache_->Lookup(cache_key, &cached)) {
      LIMBO_OBS_COUNT("serve.cache.hits", 1);
      return cached;
    }
    LIMBO_OBS_COUNT("serve.cache.misses", 1);
  }
  std::string response = engine->HandleRequest(*request, kernel);
  if (cache_ != nullptr) cache_->Insert(cache_key, response);
  return response;
}

std::shared_ptr<const Engine> Registry::Snapshot(const std::string& name,
                                                 std::string* resolved,
                                                 uint64_t* version) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindEntryLocked(name);
  if (entry == nullptr) return nullptr;
  entry->queries.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) entry->counter->Increment();
  *resolved = entry->name;
  *version = entry->version;
  return entry->engine;  // snapshot: reloads cannot retract it
}

std::shared_ptr<const Engine> Registry::Route(const JsonValue& request,
                                              std::string* cache_key,
                                              std::string* error) {
  std::string name;
  if (const JsonValue* model = request.Find("model"); model != nullptr) {
    if (model->kind != JsonValue::Kind::kString) {
      LIMBO_OBS_COUNT("serve.query.errors", 1);
      *error = ErrorResponse(
          util::Status::InvalidArgument("\"model\" must be a string"));
      return nullptr;
    }
    name = model->str;
  }
  std::string resolved;
  uint64_t version = 0;
  std::shared_ptr<const Engine> engine = Snapshot(name, &resolved, &version);
  if (engine == nullptr) {
    LIMBO_OBS_COUNT("serve.query.errors", 1);
    *error = ErrorResponse(util::Status::NotFound(
        "unknown model \"" + (name.empty() ? DefaultName() : name) + "\""));
    return nullptr;
  }
  if (cache_ != nullptr) {
    *cache_key = ResponseCacheKey(resolved, version, request);
  }
  return engine;
}

std::vector<std::string> Registry::HandleBatch(
    std::span<const std::string> lines, core::LossKernel* kernel) {
  std::vector<std::string> responses(lines.size());
  std::vector<JsonValue> parsed(lines.size());
  // One routed cache miss awaiting engine dispatch.
  struct Routed {
    size_t index;
    std::shared_ptr<const Engine> engine;
    std::string cache_key;
  };
  std::vector<Routed> routed;
  for (size_t i = 0; i < lines.size(); ++i) {
    util::Result<JsonValue> request = util::ParseJson(lines[i]);
    if (!request.ok()) {
      LIMBO_OBS_COUNT("serve.query.errors", 1);
      responses[i] = ErrorResponse(request.status());
      continue;
    }
    if (request->kind != JsonValue::Kind::kObject) {
      LIMBO_OBS_COUNT("serve.query.errors", 1);
      responses[i] = ErrorResponse(
          util::Status::InvalidArgument("query must be a JSON object"));
      continue;
    }
    const JsonValue* op = request->Find("op");
    if (op == nullptr || op->kind != JsonValue::Kind::kString) {
      LIMBO_OBS_COUNT("serve.query.errors", 1);
      responses[i] = ErrorResponse(
          util::Status::InvalidArgument("query needs a string field \"op\""));
      continue;
    }
    if (op->str == "reload") {
      LIMBO_OBS_COUNT("serve.query.reload", 1);
      responses[i] = HandleReload(*request);
      continue;
    }
    if (op->str == "models") {
      LIMBO_OBS_COUNT("serve.query.models", 1);
      responses[i] = HandleModels();
      continue;
    }
    parsed[i] = std::move(*request);
    std::string cache_key;
    std::string error;
    std::shared_ptr<const Engine> engine = Route(parsed[i], &cache_key, &error);
    if (engine == nullptr) {
      responses[i] = std::move(error);
      continue;
    }
    if (cache_ != nullptr) {
      std::string cached;
      if (cache_->Lookup(cache_key, &cached)) {
        LIMBO_OBS_COUNT("serve.cache.hits", 1);
        responses[i] = std::move(cached);
        continue;
      }
      LIMBO_OBS_COUNT("serve.cache.misses", 1);
    }
    routed.push_back(Routed{i, std::move(engine), std::move(cache_key)});
  }
  // Group the remaining requests by engine snapshot (first-appearance
  // order; a mid-batch reload can split one model into two snapshots,
  // each answering on the engine it was routed to) and dispatch each
  // group through the engine's batched path.
  std::vector<char> grouped(routed.size(), 0);
  for (size_t g = 0; g < routed.size(); ++g) {
    if (grouped[g] != 0) continue;
    const Engine* engine = routed[g].engine.get();
    std::vector<size_t> members;
    std::vector<const JsonValue*> requests;
    for (size_t j = g; j < routed.size(); ++j) {
      if (grouped[j] == 0 && routed[j].engine.get() == engine) {
        grouped[j] = 1;
        members.push_back(j);
        requests.push_back(&parsed[routed[j].index]);
      }
    }
    std::vector<std::string> batch = engine->HandleRequests(requests, kernel);
    for (size_t m = 0; m < members.size(); ++m) {
      const Routed& r = routed[members[m]];
      if (cache_ != nullptr) cache_->Insert(r.cache_key, batch[m]);
      responses[r.index] = std::move(batch[m]);
    }
  }
  return responses;
}

}  // namespace limbo::serve
