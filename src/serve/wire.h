#ifndef LIMBO_SERVE_WIRE_H_
#define LIMBO_SERVE_WIRE_H_

#include <cstdint>
#include <string>

#include "model/model_bundle.h"
#include "util/status.h"

namespace limbo::serve {

/// Builders for the NDJSON response wire format, shared by the engine,
/// the registry and the TCP server so every layer emits the same shape.
/// Each appends `"key":<value>` (no separators) to `out`.
void AppendKey(const char* key, std::string* out);
void AppendStringField(const char* key, const std::string& value,
                       std::string* out);
void AppendNumberField(const char* key, double value, std::string* out);
void AppendIntField(const char* key, uint64_t value, std::string* out);
void AppendBoolField(const char* key, bool value, std::string* out);

/// 16-hex-digit rendering of a payload checksum — checksums go over the
/// wire as strings because u64 does not survive a double round-trip.
std::string ChecksumHex(uint64_t checksum);

/// Appends a bundle's lineage as a JSON value: an object (generation,
/// parent checksum, row accounting, drift) for refit children, `null`
/// for generation-0 fits (`has_lineage` false). Shared by the engine's
/// "info" op and the registry's "models" op.
void AppendLineage(bool has_lineage, const model::BundleLineage& lineage,
                   std::string* out);

/// {"ok":false,"code":"<StatusCodeName>","error":"<message>"} — the one
/// error shape of the protocol.
std::string ErrorResponse(const util::Status& status);

/// Same shape with a caller-chosen code for conditions that have no
/// util::StatusCode, e.g. "overloaded" for admission-control sheds.
std::string ErrorResponse(const std::string& code, const std::string& message);

}  // namespace limbo::serve

#endif  // LIMBO_SERVE_WIRE_H_
