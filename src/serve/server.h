#ifndef LIMBO_SERVE_SERVER_H_
#define LIMBO_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/prob.h"
#include "serve/registry.h"
#include "util/result.h"

namespace limbo::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port()).
  int port = 0;
  /// Serving lanes: connections handled concurrently. Each lane owns
  /// its LossKernel, so responses are bit-identical at every count.
  size_t workers = 1;
  /// Admission control: accepted connections waiting for a lane beyond
  /// this bound are shed immediately with {"ok":false,"code":
  /// "overloaded",...} instead of queuing behind slow clients.
  size_t max_pending = 128;
  /// How often (ms) blocked socket waits wake up to observe the stop /
  /// reload / drain flags.
  int poll_ms = 100;
};

/// TCP front end over a Registry. One acceptor thread (whichever thread
/// calls Run) feeds a bounded queue of accepted connections; `workers`
/// serving lanes drain it, each answering newline-delimited queries via
/// Registry::HandleLine with a lane-owned LossKernel.
///
/// The socket path is hardened for real clients:
///  - every send uses MSG_NOSIGNAL, so a peer closing mid-response
///    surfaces as an error on that one connection, never as SIGPIPE;
///  - recv/send/accept/poll retry on EINTR, so signals (e.g. SIGHUP for
///    hot reload) never spuriously drop a connection;
///  - a final query sent without a trailing newline before the peer
///    shuts down its write side is still answered, matching --once.
///
/// Hot reload happens through the registry ({"op":"reload"} or the
/// reload flag passed to Run): queries in flight finish on the engine
/// snapshot they grabbed; new queries see the new engine.
class Server {
 public:
  /// Binds 127.0.0.1:port, starts listening and spawns the serving
  /// lanes. The listener is live when Start returns (port() is
  /// resolved); call Run to start accepting.
  static util::Result<std::unique_ptr<Server>> Start(
      Registry* registry, const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int port() const { return port_; }

  /// Accept loop on the calling thread. Returns — after draining queued
  /// and in-flight connections — once *stop becomes nonzero. When
  /// `reload` is non-null it is checked every wakeup: nonzero triggers
  /// Registry::ReloadAll and the flag is cleared first (SIGHUP
  /// semantics: a HUP landing mid-reload queues another pass). The
  /// flags are lock-free atomics, which are both async-signal-safe (a
  /// handler may store them) and race-free against this thread.
  void Run(const std::atomic<int>* stop, std::atomic<int>* reload = nullptr);

  /// Stops accepting, flushes what queued/in-flight connections already
  /// sent, joins the lanes and closes the listener. Idempotent; called
  /// by Run on exit and by the destructor.
  void Stop();

  uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }

 private:
  Server(Registry* registry, const ServerOptions& options);

  util::Status Bind();
  void Lane();
  void ServeConnection(int fd, core::LossKernel* kernel);
  bool Respond(std::string line, core::LossKernel* kernel, int fd);
  void Shed(int fd);

  Registry* registry_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> sheds_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds waiting for a lane
  bool stopping_ = false;
  std::vector<std::jthread> lanes_;
};

}  // namespace limbo::serve

#endif  // LIMBO_SERVE_SERVER_H_
