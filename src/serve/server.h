#ifndef LIMBO_SERVE_SERVER_H_
#define LIMBO_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/prob.h"
#include "serve/registry.h"
#include "util/result.h"

namespace limbo::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port()).
  int port = 0;
  /// Serving lanes: worker threads draining request batches. Each lane
  /// owns its LossKernel, so responses are bit-identical at every count.
  size_t workers = 1;
  /// Admission control: at most workers + max_pending connections are
  /// open at once; connections beyond that are shed immediately with
  /// {"ok":false,"code":"overloaded",...} instead of queuing behind
  /// slow clients.
  size_t max_pending = 128;
  /// How often (ms) the reactor wakes with no socket activity to observe
  /// the stop / reload flags.
  int poll_ms = 100;
  /// Most requests one worker drains into a single batch. Requests from
  /// any mix of connections batch together; 1 disables cross-request
  /// batching (every request is its own batch).
  size_t batch_max = 16;
  /// Linger: with fewer than batch_max requests queued, a woken worker
  /// waits up to this long (microseconds) for the batch to fill before
  /// draining what is there. 0 (the default) never delays a request —
  /// batching stays purely opportunistic under concurrent load.
  int batch_wait_us = 0;
};

/// TCP front end over a Registry.
///
/// One reactor thread (whichever thread calls Run) accepts connections
/// and multiplexes reads across all of them, framing newline-delimited
/// queries into per-connection queues; `workers` lanes drain up to
/// batch_max queued requests at a time — across connections — and answer
/// each batch through Registry::HandleBatch with a lane-owned LossKernel,
/// writing one concatenated send per connection per batch. A connection
/// with requests in flight is claimed by exactly one worker until those
/// responses are written, so per-connection response order always
/// matches request order, while requests from different connections
/// share batches freely. Batching never changes bytes: HandleBatch is
/// byte-identical to per-line HandleLine at every batch size and worker
/// count.
///
/// The socket path is hardened for real clients:
///  - every send uses MSG_NOSIGNAL, so a peer closing mid-response
///    surfaces as an error on that one connection, never as SIGPIPE;
///  - recv/send/accept/poll retry on EINTR, so signals (e.g. SIGHUP for
///    hot reload) never spuriously drop a connection;
///  - a final query sent without a trailing newline before the peer
///    shuts down its write side is still answered, matching --once.
///
/// Hot reload happens through the registry ({"op":"reload"} or the
/// reload flag passed to Run): queries in flight finish on the engine
/// snapshot they grabbed; new queries see the new engine.
class Server {
 public:
  /// Binds 127.0.0.1:port, starts listening and spawns the worker
  /// lanes. The listener is live when Start returns (port() is
  /// resolved); call Run to start accepting.
  static util::Result<std::unique_ptr<Server>> Start(
      Registry* registry, const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int port() const { return port_; }

  /// Reactor loop on the calling thread. Returns — after answering
  /// every request peers already sent — once *stop becomes nonzero.
  /// When `reload` is non-null it is checked every wakeup: nonzero
  /// triggers Registry::ReloadAll and the flag is cleared first (SIGHUP
  /// semantics: a HUP landing mid-reload queues another pass). The
  /// flags are lock-free atomics, which are both async-signal-safe (a
  /// handler may store them) and race-free against this thread.
  void Run(const std::atomic<int>* stop, std::atomic<int>* reload = nullptr);

  /// Joins the worker lanes (after they drain already-framed requests)
  /// and closes the listener and any remaining connections. Idempotent;
  /// called by Run on exit and by the destructor.
  void Stop();

  uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }
  /// Batches drained and requests answered through them; their ratio is
  /// the realized mean batch size.
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  uint64_t batched_requests() const {
    return batched_requests_.load(std::memory_order_relaxed);
  }

 private:
  /// One accepted connection. The reactor owns fd, inbuf and the
  /// container slot; lines and the state flags are shared under mu_.
  /// Workers never close fds — they flag the connection and the reactor
  /// (the only thread that accepts) garbage-collects, so an fd number
  /// can never be recycled while a stale pollfd still references it.
  struct Conn {
    int fd = -1;
    std::string inbuf;               // reactor-only: unframed bytes
    std::deque<std::string> lines;   // framed, unanswered requests
    bool eof = false;                // peer finished sending
    bool dead = false;               // transport error; discard & close
    bool claimed = false;            // a worker owns its queued lines
    bool ready = false;              // sitting in ready_
  };

  Server(Registry* registry, const ServerOptions& options);

  util::Status Bind();
  void Lane();
  void Shed(int fd);
  /// Accepts one connection if the listener is readable (admission
  /// control included).
  void AcceptOne();
  /// Reads once from `conn`, frames complete lines into conn->lines and
  /// wakes a worker when the connection became ready.
  void ReadConn(Conn* conn);
  /// Closes and erases connections that are finished (eof or dead, not
  /// claimed, nothing left to answer). Reactor thread only.
  void CollectFinished();
  /// Appends `line` (already stripped of the trailing newline) to the
  /// connection's queue under mu_; empty lines are dropped without a
  /// response, matching --once on blank stdin lines.
  void EnqueueLines(Conn* conn, std::vector<std::string> lines, bool eof);

  Registry* registry_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Conn>> conns_;  // reactor-owned container
  std::deque<Conn*> ready_;       // unclaimed connections with lines
  size_t pending_requests_ = 0;   // framed lines not yet taken by a lane
  bool stopping_ = false;
  std::vector<std::jthread> lanes_;
};

}  // namespace limbo::serve

#endif  // LIMBO_SERVE_SERVER_H_
