#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/counters.h"
#include "serve/wire.h"

namespace limbo::serve {

namespace {

/// poll() on one fd, treating EINTR as a timeout so the caller falls
/// through to its flag checks — exactly what a signal should cause.
int PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd = {fd, events, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0 && errno == EINTR) return 0;
  return ready;
}

/// recv() retrying on EINTR: a signal mid-read (SIGHUP for reload, ...)
/// must not masquerade as a peer close.
ssize_t RecvSome(int fd, char* buffer, size_t size) {
  ssize_t n;
  do {
    n = ::recv(fd, buffer, size, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

/// Writes the whole buffer with MSG_NOSIGNAL (a dead peer yields EPIPE,
/// never SIGPIPE) and EINTR retries. False on any unrecoverable error.
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t w = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

Server::Server(Registry* registry, const ServerOptions& options)
    : registry_(registry), options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
}

Server::~Server() { Stop(); }

util::Status Server::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const util::Status status =
        util::Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const util::Status status =
        util::Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);
  return util::Status::Ok();
}

util::Result<std::unique_ptr<Server>> Server::Start(
    Registry* registry, const ServerOptions& options) {
  if (registry == nullptr || registry->NumModels() == 0) {
    return util::Status::FailedPrecondition(
        "server needs a registry with at least one model");
  }
  std::unique_ptr<Server> server(new Server(registry, options));
  LIMBO_RETURN_IF_ERROR(server->Bind());
  server->lanes_.reserve(server->options_.workers);
  for (size_t lane = 0; lane < server->options_.workers; ++lane) {
    server->lanes_.emplace_back([s = server.get()] { s->Lane(); });
  }
  return server;
}

void Server::Run(const std::atomic<int>* stop, std::atomic<int>* reload) {
  while (stop->load(std::memory_order_relaxed) == 0) {
    if (reload != nullptr && reload->load(std::memory_order_relaxed) != 0) {
      reload->store(0, std::memory_order_relaxed);
      util::Status s = registry_->ReloadAll();
      if (!s.ok()) {
        std::fprintf(stderr, "limbo-serve: %s\n", s.ToString().c_str());
      }
    }
    const int ready = PollOne(listen_fd_, POLLIN, options_.poll_ms);
    if (ready <= 0) continue;
    int fd;
    do {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) continue;
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() >= options_.max_pending) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      Shed(fd);
    } else {
      cv_.notify_one();
    }
  }
  Stop();
}

void Server::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  // Lanes flush what their connections already sent, then close them.
  draining_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::jthread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
  lanes_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::Lane() {
  core::LossKernel kernel;
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd, &kernel);
  }
}

void Server::Shed(int fd) {
  sheds_.fetch_add(1, std::memory_order_relaxed);
  LIMBO_OBS_COUNT("serve.sheds", 1);
  const std::string response =
      ErrorResponse("overloaded",
                    "pending connection queue is full; retry later") +
      "\n";
  (void)SendAll(fd, response.data(), response.size());
  ::close(fd);
}

bool Server::Respond(std::string line, core::LossKernel* kernel, int fd) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return true;
  std::string response = registry_->HandleLine(line, kernel);
  response.push_back('\n');
  return SendAll(fd, response.data(), response.size());
}

void Server::ServeConnection(int fd, core::LossKernel* kernel) {
  connections_.fetch_add(1, std::memory_order_relaxed);
  LIMBO_OBS_COUNT("serve.connections", 1);
  std::string pending;
  char buffer[4096];
  bool eof = false;
  bool error = false;
  while (!eof && !error) {
    // While draining (shutdown), poll with zero timeout: answer what the
    // peer already sent, then close instead of waiting for more.
    const bool draining = draining_.load(std::memory_order_relaxed);
    const int ready = PollOne(fd, POLLIN, draining ? 0 : options_.poll_ms);
    if (ready < 0) break;
    if (ready == 0) {
      if (draining) break;
      continue;
    }
    const ssize_t n = RecvSome(fd, buffer, sizeof(buffer));
    if (n < 0) break;
    if (n == 0) {
      eof = true;
    } else {
      pending.append(buffer, static_cast<size_t>(n));
    }
    size_t start = 0;
    size_t newline;
    while ((newline = pending.find('\n', start)) != std::string::npos) {
      std::string line = pending.substr(start, newline - start);
      start = newline + 1;
      if (!Respond(std::move(line), kernel, fd)) {
        error = true;
        break;
      }
    }
    pending.erase(0, start);
    if (eof && !error && !pending.empty()) {
      // Orderly EOF with an unterminated final query: answer it anyway,
      // matching --once/stdin behavior (the peer's read side is still
      // open after shutdown(SHUT_WR)).
      (void)Respond(std::move(pending), kernel, fd);
    }
  }
  ::close(fd);
}

}  // namespace limbo::serve
