#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/counters.h"
#include "serve/wire.h"

namespace limbo::serve {

namespace {

/// recv() retrying on EINTR: a signal mid-read (SIGHUP for reload, ...)
/// must not masquerade as a peer close.
ssize_t RecvSome(int fd, char* buffer, size_t size) {
  ssize_t n;
  do {
    n = ::recv(fd, buffer, size, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

/// Writes the whole buffer with MSG_NOSIGNAL (a dead peer yields EPIPE,
/// never SIGPIPE) and EINTR retries. False on any unrecoverable error.
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t w = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

Server::Server(Registry* registry, const ServerOptions& options)
    : registry_(registry), options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
  if (options_.batch_max == 0) options_.batch_max = 1;
  if (options_.batch_wait_us < 0) options_.batch_wait_us = 0;
}

Server::~Server() { Stop(); }

util::Status Server::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const util::Status status =
        util::Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const util::Status status =
        util::Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);
  return util::Status::Ok();
}

util::Result<std::unique_ptr<Server>> Server::Start(
    Registry* registry, const ServerOptions& options) {
  if (registry == nullptr || registry->NumModels() == 0) {
    return util::Status::FailedPrecondition(
        "server needs a registry with at least one model");
  }
  std::unique_ptr<Server> server(new Server(registry, options));
  LIMBO_RETURN_IF_ERROR(server->Bind());
  server->lanes_.reserve(server->options_.workers);
  for (size_t lane = 0; lane < server->options_.workers; ++lane) {
    server->lanes_.emplace_back([s = server.get()] { s->Lane(); });
  }
  return server;
}

void Server::Shed(int fd) {
  sheds_.fetch_add(1, std::memory_order_relaxed);
  LIMBO_OBS_COUNT("serve.sheds", 1);
  const std::string response =
      ErrorResponse("overloaded",
                    "pending connection queue is full; retry later") +
      "\n";
  (void)SendAll(fd, response.data(), response.size());
  ::close(fd);
}

void Server::AcceptOne() {
  int fd;
  do {
    fd = ::accept(listen_fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return;
  // Same admission bound as the lane-per-connection design: `workers`
  // connections being actively served plus max_pending waiting ones.
  if (conns_.size() >= options_.workers + options_.max_pending) {
    Shed(fd);
    return;
  }
  connections_.fetch_add(1, std::memory_order_relaxed);
  LIMBO_OBS_COUNT("serve.connections", 1);
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conns_.push_back(std::move(conn));
}

void Server::EnqueueLines(Conn* conn, std::vector<std::string> lines,
                          bool eof) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank line: no request, no response
    conn->lines.push_back(std::move(line));
    ++pending_requests_;
  }
  if (eof) conn->eof = true;
  if (!conn->claimed && !conn->ready && !conn->lines.empty()) {
    conn->ready = true;
    ready_.push_back(conn);
    cv_.notify_one();
  }
  // Wake lingering lanes the moment a full batch is available.
  if (pending_requests_ >= options_.batch_max) cv_.notify_all();
}

void Server::ReadConn(Conn* conn) {
  char buffer[4096];
  const ssize_t n = RecvSome(conn->fd, buffer, sizeof(buffer));
  if (n < 0) {
    std::lock_guard<std::mutex> lock(mu_);
    conn->dead = true;
    if (!conn->claimed && !conn->ready) {
      pending_requests_ -= conn->lines.size();
      conn->lines.clear();
    }
    return;
  }
  std::vector<std::string> framed;
  bool eof = false;
  if (n == 0) {
    eof = true;
    // Orderly EOF with an unterminated final query: answer it anyway,
    // matching --once/stdin behavior (the peer's read side is still
    // open after shutdown(SHUT_WR)).
    if (!conn->inbuf.empty()) {
      framed.push_back(std::move(conn->inbuf));
      conn->inbuf.clear();
    }
  } else {
    conn->inbuf.append(buffer, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = conn->inbuf.find('\n', start)) != std::string::npos) {
      framed.push_back(conn->inbuf.substr(start, newline - start));
      start = newline + 1;
    }
    conn->inbuf.erase(0, start);
  }
  if (eof || !framed.empty()) EnqueueLines(conn, std::move(framed), eof);
}

void Server::CollectFinished() {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* c = it->get();
      if (!c->claimed && !c->ready && c->lines.empty() &&
          (c->eof || c->dead)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Closing outside the lock: the fd cannot be recycled into a stale
  // pollfd because only this thread accepts, after this call returns.
  for (const std::unique_ptr<Conn>& c : finished) ::close(c->fd);
}

void Server::Run(const std::atomic<int>* stop, std::atomic<int>* reload) {
  std::vector<struct pollfd> pfds;
  std::vector<Conn*> pconns;
  const auto build_pollfds = [&](bool with_listener) {
    pfds.clear();
    pconns.clear();
    if (with_listener) pfds.push_back({listen_fd_, POLLIN, 0});
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<Conn>& c : conns_) {
      if (!c->eof && !c->dead) {
        pfds.push_back({c->fd, POLLIN, 0});
        pconns.push_back(c.get());
      }
    }
  };
  while (stop->load(std::memory_order_relaxed) == 0) {
    if (reload != nullptr && reload->load(std::memory_order_relaxed) != 0) {
      reload->store(0, std::memory_order_relaxed);
      util::Status s = registry_->ReloadAll();
      if (!s.ok()) {
        std::fprintf(stderr, "limbo-serve: %s\n", s.ToString().c_str());
      }
    }
    CollectFinished();
    build_pollfds(/*with_listener=*/true);
    const int ready = ::poll(pfds.data(), pfds.size(), options_.poll_ms);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flags
    if ((pfds[0].revents & POLLIN) != 0) AcceptOne();
    for (size_t i = 1; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        ReadConn(pconns[i - 1]);
      }
    }
  }
  // Drain: one zero-timeout read pass frames whatever complete queries
  // peers already sent; the lanes answer them before Stop joins.
  CollectFinished();
  build_pollfds(/*with_listener=*/false);
  if (!pfds.empty()) {
    const int ready = ::poll(pfds.data(), pfds.size(), 0);
    if (ready > 0) {
      for (size_t i = 0; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          ReadConn(pconns[i]);
        }
      }
    }
  }
  Stop();
}

void Server::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::jthread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
  lanes_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Every lane is joined, so no connection is claimed any more.
  for (const std::unique_ptr<Conn>& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  conns_.clear();
}

void Server::Lane() {
  core::LossKernel kernel;
  std::vector<Conn*> claimed;          // unique connections in this batch
  std::vector<Conn*> order;            // batch[i]'s connection
  std::vector<std::string> batch;      // drained request lines
  for (;;) {
    claimed.clear();
    order.clear();
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and nothing left to answer
      if (options_.batch_wait_us > 0 && !stopping_ &&
          pending_requests_ < options_.batch_max) {
        // Linger briefly for a fuller batch; any new frame that
        // completes one wakes every lane (EnqueueLines notifies).
        cv_.wait_for(
            lock, std::chrono::microseconds(options_.batch_wait_us), [this] {
              return stopping_ || pending_requests_ >= options_.batch_max;
            });
        if (ready_.empty()) continue;  // another lane drained everything
      }
      while (!ready_.empty() && batch.size() < options_.batch_max) {
        Conn* c = ready_.front();
        ready_.pop_front();
        c->ready = false;
        c->claimed = true;
        claimed.push_back(c);
        // Take the connection's lines in arrival order. If the batch
        // fills mid-connection the leftovers stay queued; the release
        // below re-readies the connection once these responses are out,
        // which is what keeps per-connection responses ordered.
        while (!c->lines.empty() && batch.size() < options_.batch_max) {
          batch.push_back(std::move(c->lines.front()));
          c->lines.pop_front();
          order.push_back(c);
          --pending_requests_;
        }
      }
    }
    if (!batch.empty()) {
      batches_.fetch_add(1, std::memory_order_relaxed);
      batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
      LIMBO_OBS_COUNT("serve.batches", 1);
      const std::vector<std::string> responses =
          registry_->HandleBatch(batch, &kernel);
      // One send per connection per batch: a connection's responses are
      // consecutive in `order` by construction of the drain loop above.
      size_t i = 0;
      std::string out;
      while (i < order.size()) {
        Conn* c = order[i];
        out.clear();
        for (; i < order.size() && order[i] == c; ++i) {
          out += responses[i];
          out.push_back('\n');
        }
        if (!SendAll(c->fd, out.data(), out.size())) {
          std::lock_guard<std::mutex> lock(mu_);
          c->dead = true;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Conn* c : claimed) {
        c->claimed = false;
        if (c->dead) {
          // Peer is gone: the remaining queued requests are unanswerable.
          pending_requests_ -= c->lines.size();
          c->lines.clear();
        } else if (!c->lines.empty()) {
          c->ready = true;
          ready_.push_back(c);
          cv_.notify_one();
        }
      }
    }
  }
}

}  // namespace limbo::serve
