#ifndef LIMBO_OBS_TRACE_H_
#define LIMBO_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"  // Enabled()

namespace limbo::obs {

namespace internal {
struct TraceNode;
}  // namespace internal

/// An RAII wall-time span. Spans aggregate by *path*: two spans with the
/// same name under the same parent accumulate into one node (count +
/// total seconds), so per-iteration spans stay bounded in memory. Nesting
/// is tracked per thread — a span opened on a worker thread starts a new
/// top-level path for that thread. Entry and exit take a global mutex, so
/// open spans around phases and stages, not around per-object inner
/// loops (use counters there).
///
/// When the layer is disabled (runtime flag or LIMBO_OBS_DISABLED), the
/// constructor does not read the clock and Stop() returns 0.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span now (idempotent) and returns its elapsed seconds —
  /// 0.0 if the layer was disabled at construction. Spans must stop in
  /// LIFO order per thread.
  double Stop();

 private:
  const char* name_;
  internal::TraceNode* node_ = nullptr;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// Inert stand-in with the same surface as ScopedSpan; what the
/// LIMBO_OBS_SPAN macro expands to under LIMBO_OBS_DISABLED.
class NullSpan {
 public:
  explicit NullSpan(const char* name) { (void)name; }
  ~NullSpan() {}  // non-trivial on purpose: silences unused-variable warnings
  double Stop() { return 0.0; }
};

/// A copy of one aggregated span node. The root has an empty name and
/// zero counts; its children are the top-level spans in first-start
/// order (deterministic for a single-threaded instrumentation driver).
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  std::vector<SpanStats> children;
};

SpanStats SnapshotTrace();

/// Drops the aggregate tree. Must not be called while spans are open.
void ResetTrace();

/// When true, every span exit prints "[trace] <indent><path>: <secs>" to
/// stderr (the limbo-tool --trace mode).
void SetTraceEcho(bool echo);

}  // namespace limbo::obs

#if defined(LIMBO_OBS_DISABLED)
#define LIMBO_OBS_SPAN(var, name) ::limbo::obs::NullSpan var(name)
#else
#define LIMBO_OBS_SPAN(var, name) ::limbo::obs::ScopedSpan var(name)
#endif

#endif  // LIMBO_OBS_TRACE_H_
