#include "obs/counters.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace limbo::obs {

namespace {

bool EnabledFromEnv() {
  const char* value = std::getenv("LIMBO_OBS");
  if (value == nullptr) return true;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "false") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

// Counters must outlive every cached reference in LIMBO_OBS_COUNT call
// sites, including during static destruction, so the registry is
// intentionally leaked.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

size_t AcquireShardIndex() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
}

size_t ShardIndex() {
  thread_local size_t index = AcquireShardIndex();
  return index;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

Counter::Counter(std::string name, bool scheduling)
    : name_(std::move(name)), scheduling_(scheduling) {}

void Counter::Add(uint64_t delta) {
  shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Counter& GetCounter(const std::string& name, bool scheduling) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.counters.find(name);
  if (it == registry.counters.end()) {
    it = registry.counters
             .emplace(name, std::make_unique<Counter>(name, scheduling))
             .first;
  }
  return *it->second;
}

std::vector<CounterValue> SnapshotCounters() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<CounterValue> out;
  out.reserve(registry.counters.size());
  for (const auto& [name, counter] : registry.counters) {
    out.push_back({name, counter->Value(), counter->scheduling()});
  }
  return out;  // std::map iteration is already name-sorted.
}

void ResetCounters() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, counter] : registry.counters) {
    counter->Reset();
  }
}

}  // namespace limbo::obs
