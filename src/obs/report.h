#ifndef LIMBO_OBS_REPORT_H_
#define LIMBO_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/result.h"

namespace limbo::obs {

/// Version stamp written into every serialized RunReport. Bump when the
/// JSON layout changes shape (see EXPERIMENTS.md for the compatibility
/// notes); readers reject reports from a different major layout.
inline constexpr int kRunReportSchemaVersion = 1;

/// A typed scalar inside a report: fields and table cells. Keeping the
/// type explicit means JSON emits real numbers (diffable, machine
/// readable) while Markdown renders everything as text.
struct ReportValue {
  enum class Kind { kString, kNumber, kInteger, kBoolean };

  Kind kind = Kind::kString;
  std::string str;
  double number = 0.0;
  uint64_t integer = 0;
  bool boolean = false;

  static ReportValue String(std::string value);
  static ReportValue Number(double value);
  static ReportValue Integer(uint64_t value);
  static ReportValue Boolean(bool value);
};

struct ReportTable {
  std::vector<std::string> columns;
  std::vector<std::vector<ReportValue>> rows;

  bool empty() const { return columns.empty(); }
};

/// One titled node of a report: ordered key/value fields, an optional
/// table, and child sections. Sections nest arbitrarily deep.
struct ReportSection {
  std::string title;
  std::vector<std::pair<std::string, ReportValue>> fields;
  ReportTable table;
  std::vector<ReportSection> children;

  ReportSection() = default;
  explicit ReportSection(std::string section_title)
      : title(std::move(section_title)) {}

  void AddField(std::string key, std::string value);
  void AddField(std::string key, const char* value);
  void AddField(std::string key, double value);
  void AddField(std::string key, uint64_t value);
  void AddField(std::string key, int value);
  void AddField(std::string key, bool value);
};

/// A hierarchical run report, serializable to JSON (machine) and
/// Markdown (human), parseable back from its own JSON for round-trip
/// tests and report diffing.
struct RunReport {
  int schema_version = kRunReportSchemaVersion;
  std::string title;
  std::vector<ReportSection> sections;

  std::string ToJson() const;
  std::string ToMarkdown() const;

  /// Parses a report previously produced by ToJson. Rejects malformed
  /// JSON, shape mismatches, and unknown schema versions.
  static util::Result<RunReport> FromJson(const std::string& json);
};

/// Renders an aggregated trace snapshot as a section titled "spans": one
/// table row per span path, pre-order, with a depth column encoding the
/// hierarchy. Only spans that actually executed appear.
ReportSection TraceSection(const SpanStats& root);

/// Renders a counter snapshot as a section titled "counters": one row
/// per counter, name-sorted, with the scheduling flag (scheduling
/// counter totals may differ across thread counts; all others must not).
ReportSection CountersSection(const std::vector<CounterValue>& counters);

}  // namespace limbo::obs

#endif  // LIMBO_OBS_REPORT_H_
