#include "obs/report.h"

#include <cinttypes>
#include <cstdio>

#include "util/json.h"

namespace limbo::obs {

namespace {

using util::JsonValue;

void AppendEscaped(const std::string& s, std::string* out) {
  util::AppendJsonString(s, out);
}

void AppendValue(const ReportValue& v, std::string* out) {
  char buf[40];
  switch (v.kind) {
    case ReportValue::Kind::kString:
      AppendEscaped(v.str, out);
      break;
    case ReportValue::Kind::kNumber:
      // %.17g, always shaped as a JSON number token so the parser maps it
      // back to kNumber (see util::AppendJsonNumber).
      util::AppendJsonNumber(v.number, out);
      break;
    case ReportValue::Kind::kInteger:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, v.integer);
      *out += buf;
      break;
    case ReportValue::Kind::kBoolean:
      *out += v.boolean ? "true" : "false";
      break;
  }
}

void Indent(int depth, std::string* out) { out->append(2 * depth, ' '); }

void AppendSection(const ReportSection& section, int depth, std::string* out) {
  Indent(depth, out);
  *out += "{\n";
  Indent(depth + 1, out);
  *out += "\"title\": ";
  AppendEscaped(section.title, out);
  if (!section.fields.empty()) {
    *out += ",\n";
    Indent(depth + 1, out);
    *out += "\"fields\": {";
    bool first = true;
    for (const auto& [key, value] : section.fields) {
      if (!first) *out += ", ";
      first = false;
      AppendEscaped(key, out);
      *out += ": ";
      AppendValue(value, out);
    }
    *out += "}";
  }
  if (!section.table.empty()) {
    *out += ",\n";
    Indent(depth + 1, out);
    *out += "\"table\": {\"columns\": [";
    for (size_t i = 0; i < section.table.columns.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendEscaped(section.table.columns[i], out);
    }
    *out += "], \"rows\": [";
    for (size_t r = 0; r < section.table.rows.size(); ++r) {
      if (r > 0) *out += ",";
      *out += "\n";
      Indent(depth + 2, out);
      *out += "[";
      const auto& row = section.table.rows[r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) *out += ", ";
        AppendValue(row[c], out);
      }
      *out += "]";
    }
    if (!section.table.rows.empty()) {
      *out += "\n";
      Indent(depth + 1, out);
    }
    *out += "]}";
  }
  if (!section.children.empty()) {
    *out += ",\n";
    Indent(depth + 1, out);
    *out += "\"sections\": [\n";
    for (size_t i = 0; i < section.children.size(); ++i) {
      if (i > 0) *out += ",\n";
      AppendSection(section.children[i], depth + 2, out);
    }
    *out += "\n";
    Indent(depth + 1, out);
    *out += "]";
  }
  *out += "\n";
  Indent(depth, out);
  *out += "}";
}

std::string ValueToText(const ReportValue& v) {
  std::string out;
  if (v.kind == ReportValue::Kind::kString) return v.str;
  AppendValue(v, &out);
  return out;
}

void AppendSectionMarkdown(const ReportSection& section, int level,
                           std::string* out) {
  out->append(static_cast<size_t>(level > 6 ? 6 : level), '#');
  *out += " " + section.title + "\n\n";
  if (!section.fields.empty()) {
    for (const auto& [key, value] : section.fields) {
      *out += "- " + key + ": " + ValueToText(value) + "\n";
    }
    *out += "\n";
  }
  if (!section.table.empty()) {
    *out += "|";
    for (const auto& column : section.table.columns) *out += " " + column + " |";
    *out += "\n|";
    for (size_t i = 0; i < section.table.columns.size(); ++i) *out += "---|";
    *out += "\n";
    for (const auto& row : section.table.rows) {
      *out += "|";
      for (const auto& cell : row) *out += " " + ValueToText(cell) + " |";
      *out += "\n";
    }
    *out += "\n";
  }
  for (const ReportSection& child : section.children) {
    AppendSectionMarkdown(child, level + 1, out);
  }
}

util::Status ValueFromJson(const JsonValue& in, ReportValue* out) {
  switch (in.kind) {
    case JsonValue::Kind::kString:
      *out = ReportValue::String(in.str);
      return util::Status::Ok();
    case JsonValue::Kind::kInteger:
      *out = ReportValue::Integer(in.integer);
      return util::Status::Ok();
    case JsonValue::Kind::kNumber:
      *out = ReportValue::Number(in.number);
      return util::Status::Ok();
    case JsonValue::Kind::kBoolean:
      *out = ReportValue::Boolean(in.boolean);
      return util::Status::Ok();
    default:
      return util::Status::InvalidArgument(
          "report values must be scalars (string/number/bool)");
  }
}

util::Status SectionFromJson(const JsonValue& in, ReportSection* out) {
  if (in.kind != JsonValue::Kind::kObject) {
    return util::Status::InvalidArgument("section must be a JSON object");
  }
  const JsonValue* title = in.Find("title");
  if (title == nullptr || title->kind != JsonValue::Kind::kString) {
    return util::Status::InvalidArgument("section missing string \"title\"");
  }
  out->title = title->str;
  if (const JsonValue* fields = in.Find("fields")) {
    if (fields->kind != JsonValue::Kind::kObject) {
      return util::Status::InvalidArgument("\"fields\" must be an object");
    }
    for (const auto& [key, value] : fields->object) {
      ReportValue rv;
      LIMBO_RETURN_IF_ERROR(ValueFromJson(value, &rv));
      out->fields.emplace_back(key, std::move(rv));
    }
  }
  if (const JsonValue* table = in.Find("table")) {
    const JsonValue* columns = table->Find("columns");
    const JsonValue* rows = table->Find("rows");
    if (table->kind != JsonValue::Kind::kObject || columns == nullptr ||
        columns->kind != JsonValue::Kind::kArray || rows == nullptr ||
        rows->kind != JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument(
          "\"table\" must be {columns: [...], rows: [...]}");
    }
    for (const JsonValue& column : columns->array) {
      if (column.kind != JsonValue::Kind::kString) {
        return util::Status::InvalidArgument("column names must be strings");
      }
      out->table.columns.push_back(column.str);
    }
    for (const JsonValue& row : rows->array) {
      if (row.kind != JsonValue::Kind::kArray ||
          row.array.size() != out->table.columns.size()) {
        return util::Status::InvalidArgument(
            "each table row must be an array matching the column count");
      }
      std::vector<ReportValue> cells;
      for (const JsonValue& cell : row.array) {
        ReportValue rv;
        LIMBO_RETURN_IF_ERROR(ValueFromJson(cell, &rv));
        cells.push_back(std::move(rv));
      }
      out->table.rows.push_back(std::move(cells));
    }
  }
  if (const JsonValue* sections = in.Find("sections")) {
    if (sections->kind != JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument("\"sections\" must be an array");
    }
    for (const JsonValue& child : sections->array) {
      ReportSection child_section;
      LIMBO_RETURN_IF_ERROR(SectionFromJson(child, &child_section));
      out->children.push_back(std::move(child_section));
    }
  }
  return util::Status::Ok();
}

void AppendTraceRows(const SpanStats& node, int depth, ReportSection* out) {
  for (const SpanStats& child : node.children) {
    out->table.rows.push_back({ReportValue::String(child.name),
                               ReportValue::Integer(static_cast<uint64_t>(depth)),
                               ReportValue::Integer(child.count),
                               ReportValue::Number(child.total_seconds)});
    AppendTraceRows(child, depth + 1, out);
  }
}

}  // namespace

ReportValue ReportValue::String(std::string value) {
  ReportValue v;
  v.kind = Kind::kString;
  v.str = std::move(value);
  return v;
}

ReportValue ReportValue::Number(double value) {
  ReportValue v;
  v.kind = Kind::kNumber;
  v.number = value;
  return v;
}

ReportValue ReportValue::Integer(uint64_t value) {
  ReportValue v;
  v.kind = Kind::kInteger;
  v.integer = value;
  return v;
}

ReportValue ReportValue::Boolean(bool value) {
  ReportValue v;
  v.kind = Kind::kBoolean;
  v.boolean = value;
  return v;
}

void ReportSection::AddField(std::string key, std::string value) {
  fields.emplace_back(std::move(key), ReportValue::String(std::move(value)));
}
void ReportSection::AddField(std::string key, const char* value) {
  AddField(std::move(key), std::string(value));
}
void ReportSection::AddField(std::string key, double value) {
  fields.emplace_back(std::move(key), ReportValue::Number(value));
}
void ReportSection::AddField(std::string key, uint64_t value) {
  fields.emplace_back(std::move(key), ReportValue::Integer(value));
}
void ReportSection::AddField(std::string key, int value) {
  fields.emplace_back(std::move(key),
                      ReportValue::Integer(static_cast<uint64_t>(value)));
}
void ReportSection::AddField(std::string key, bool value) {
  fields.emplace_back(std::move(key), ReportValue::Boolean(value));
}

std::string RunReport::ToJson() const {
  std::string out = "{\n  \"schema_version\": ";
  out += std::to_string(schema_version);
  out += ",\n  \"title\": ";
  AppendEscaped(title, &out);
  out += ",\n  \"sections\": [\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    if (i > 0) out += ",\n";
    AppendSection(sections[i], 2, &out);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string RunReport::ToMarkdown() const {
  std::string out = "# " + title + "\n\n";
  out += "- schema_version: " + std::to_string(schema_version) + "\n\n";
  for (const ReportSection& section : sections) {
    AppendSectionMarkdown(section, 2, &out);
  }
  return out;
}

util::Result<RunReport> RunReport::FromJson(const std::string& json) {
  util::Result<JsonValue> parsed = util::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (root.kind != JsonValue::Kind::kObject) {
    return util::Status::InvalidArgument("report must be a JSON object");
  }
  RunReport report;
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kInteger) {
    return util::Status::InvalidArgument(
        "report missing integer \"schema_version\"");
  }
  report.schema_version = static_cast<int>(version->integer);
  if (report.schema_version != kRunReportSchemaVersion) {
    return util::Status::InvalidArgument(
        "unsupported report schema_version " +
        std::to_string(report.schema_version) + " (want " +
        std::to_string(kRunReportSchemaVersion) + ")");
  }
  const JsonValue* title = root.Find("title");
  if (title == nullptr || title->kind != JsonValue::Kind::kString) {
    return util::Status::InvalidArgument("report missing string \"title\"");
  }
  report.title = title->str;
  const JsonValue* sections = root.Find("sections");
  if (sections == nullptr || sections->kind != JsonValue::Kind::kArray) {
    return util::Status::InvalidArgument("report missing \"sections\" array");
  }
  for (const JsonValue& section : sections->array) {
    ReportSection out;
    LIMBO_RETURN_IF_ERROR(SectionFromJson(section, &out));
    report.sections.push_back(std::move(out));
  }
  return report;
}

ReportSection TraceSection(const SpanStats& root) {
  ReportSection section("spans");
  section.table.columns = {"span", "depth", "count", "seconds"};
  AppendTraceRows(root, 0, &section);
  return section;
}

ReportSection CountersSection(const std::vector<CounterValue>& counters) {
  ReportSection section("counters");
  section.table.columns = {"counter", "value", "scheduling"};
  for (const CounterValue& counter : counters) {
    section.table.rows.push_back({ReportValue::String(counter.name),
                                  ReportValue::Integer(counter.value),
                                  ReportValue::Boolean(counter.scheduling)});
  }
  return section;
}

}  // namespace limbo::obs
