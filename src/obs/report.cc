#include "obs/report.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace limbo::obs {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendValue(const ReportValue& v, std::string* out) {
  char buf[40];
  switch (v.kind) {
    case ReportValue::Kind::kString:
      AppendEscaped(v.str, out);
      break;
    case ReportValue::Kind::kNumber:
      // %.17g survives a parse round-trip exactly for every double.
      std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      // Keep the token a JSON number even when the value is integral, so
      // the parser maps it back to kNumber.
      if (std::strpbrk(buf, ".eE") == nullptr &&
          std::strcmp(buf, "inf") != 0 && std::strcmp(buf, "-inf") != 0 &&
          std::strcmp(buf, "nan") != 0) {
        std::strcat(buf, ".0");
      }
      *out += buf;
      break;
    case ReportValue::Kind::kInteger:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, v.integer);
      *out += buf;
      break;
    case ReportValue::Kind::kBoolean:
      *out += v.boolean ? "true" : "false";
      break;
  }
}

void Indent(int depth, std::string* out) { out->append(2 * depth, ' '); }

void AppendSection(const ReportSection& section, int depth, std::string* out) {
  Indent(depth, out);
  *out += "{\n";
  Indent(depth + 1, out);
  *out += "\"title\": ";
  AppendEscaped(section.title, out);
  if (!section.fields.empty()) {
    *out += ",\n";
    Indent(depth + 1, out);
    *out += "\"fields\": {";
    bool first = true;
    for (const auto& [key, value] : section.fields) {
      if (!first) *out += ", ";
      first = false;
      AppendEscaped(key, out);
      *out += ": ";
      AppendValue(value, out);
    }
    *out += "}";
  }
  if (!section.table.empty()) {
    *out += ",\n";
    Indent(depth + 1, out);
    *out += "\"table\": {\"columns\": [";
    for (size_t i = 0; i < section.table.columns.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendEscaped(section.table.columns[i], out);
    }
    *out += "], \"rows\": [";
    for (size_t r = 0; r < section.table.rows.size(); ++r) {
      if (r > 0) *out += ",";
      *out += "\n";
      Indent(depth + 2, out);
      *out += "[";
      const auto& row = section.table.rows[r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) *out += ", ";
        AppendValue(row[c], out);
      }
      *out += "]";
    }
    if (!section.table.rows.empty()) {
      *out += "\n";
      Indent(depth + 1, out);
    }
    *out += "]}";
  }
  if (!section.children.empty()) {
    *out += ",\n";
    Indent(depth + 1, out);
    *out += "\"sections\": [\n";
    for (size_t i = 0; i < section.children.size(); ++i) {
      if (i > 0) *out += ",\n";
      AppendSection(section.children[i], depth + 2, out);
    }
    *out += "\n";
    Indent(depth + 1, out);
    *out += "]";
  }
  *out += "\n";
  Indent(depth, out);
  *out += "}";
}

std::string ValueToText(const ReportValue& v) {
  std::string out;
  if (v.kind == ReportValue::Kind::kString) return v.str;
  AppendValue(v, &out);
  return out;
}

void AppendSectionMarkdown(const ReportSection& section, int level,
                           std::string* out) {
  out->append(static_cast<size_t>(level > 6 ? 6 : level), '#');
  *out += " " + section.title + "\n\n";
  if (!section.fields.empty()) {
    for (const auto& [key, value] : section.fields) {
      *out += "- " + key + ": " + ValueToText(value) + "\n";
    }
    *out += "\n";
  }
  if (!section.table.empty()) {
    *out += "|";
    for (const auto& column : section.table.columns) *out += " " + column + " |";
    *out += "\n|";
    for (size_t i = 0; i < section.table.columns.size(); ++i) *out += "---|";
    *out += "\n";
    for (const auto& row : section.table.rows) {
      *out += "|";
      for (const auto& cell : row) *out += " " + ValueToText(cell) + " |";
      *out += "\n";
    }
    *out += "\n";
  }
  for (const ReportSection& child : section.children) {
    AppendSectionMarkdown(child, level + 1, out);
  }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser, just enough for the report schema round-trip.

struct JsonValue {
  enum class Kind { kNull, kBoolean, kInteger, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  uint64_t integer = 0;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  util::Result<JsonValue> Parse() {
    JsonValue value;
    util::Status s = ParseValue(&value);
    if (!s.ok()) return s;
    SkipWs();
    if (p_ != end_) return Fail("trailing characters after JSON value");
    return value;
  }

 private:
  util::Status Fail(const std::string& what) {
    return util::Status::InvalidArgument(
        "JSON parse error at offset " + std::to_string(offset_) + ": " + what);
  }

  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool Consume(char c) {
    SkipWs();
    if (p_ == end_ || *p_ != c) return false;
    Advance();
    return true;
  }

  util::Status ParseValue(JsonValue* out) {
    SkipWs();
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  util::Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    Advance();  // '{'
    if (Consume('}')) return util::Status::Ok();
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      std::string key;
      LIMBO_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      LIMBO_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return util::Status::Ok();
      return Fail("expected ',' or '}' in object");
    }
  }

  util::Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    Advance();  // '['
    if (Consume(']')) return util::Status::Ok();
    while (true) {
      JsonValue value;
      LIMBO_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return util::Status::Ok();
      return Fail("expected ',' or ']' in array");
    }
  }

  util::Status ParseString(std::string* out) {
    Advance();  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        Advance();
        if (p_ == end_) return Fail("unterminated escape");
        switch (*p_) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'u': {
            if (end_ - p_ < 5) return Fail("truncated \\u escape");
            char hex[5] = {p_[1], p_[2], p_[3], p_[4], 0};
            char* hex_end = nullptr;
            long code = std::strtol(hex, &hex_end, 16);
            if (hex_end != hex + 4) return Fail("bad \\u escape");
            if (code > 0x7f) return Fail("non-ASCII \\u escape unsupported");
            *out += static_cast<char>(code);
            Advance();
            Advance();
            Advance();
            Advance();
            break;
          }
          default:
            return Fail("unknown escape");
        }
        Advance();
      } else {
        *out += *p_;
        Advance();
      }
    }
    if (p_ == end_) return Fail("unterminated string");
    Advance();  // closing '"'
    return util::Status::Ok();
  }

  util::Status ParseKeyword(JsonValue* out) {
    out->kind = JsonValue::Kind::kBoolean;
    if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
      out->boolean = true;
      for (int i = 0; i < 4; ++i) Advance();
      return util::Status::Ok();
    }
    if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
      out->boolean = false;
      for (int i = 0; i < 5; ++i) Advance();
      return util::Status::Ok();
    }
    return Fail("bad keyword");
  }

  util::Status ParseNull(JsonValue* out) {
    if (end_ - p_ >= 4 && std::strncmp(p_, "null", 4) == 0) {
      out->kind = JsonValue::Kind::kNull;
      for (int i = 0; i < 4; ++i) Advance();
      return util::Status::Ok();
    }
    return Fail("bad keyword");
  }

  util::Status ParseNumber(JsonValue* out) {
    const char* start = p_;
    bool is_integer = true;
    if (p_ != end_ && *p_ == '-') Advance();
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') is_integer = false;
      Advance();
    }
    if (p_ == start) return Fail("expected a value");
    std::string token(start, p_);
    char* parse_end = nullptr;
    if (is_integer && token[0] != '-') {
      out->kind = JsonValue::Kind::kInteger;
      out->integer = std::strtoull(token.c_str(), &parse_end, 10);
    } else {
      out->kind = JsonValue::Kind::kNumber;
      out->number = std::strtod(token.c_str(), &parse_end);
    }
    if (parse_end != token.c_str() + token.size()) return Fail("bad number");
    return util::Status::Ok();
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

util::Status ValueFromJson(const JsonValue& in, ReportValue* out) {
  switch (in.kind) {
    case JsonValue::Kind::kString:
      *out = ReportValue::String(in.str);
      return util::Status::Ok();
    case JsonValue::Kind::kInteger:
      *out = ReportValue::Integer(in.integer);
      return util::Status::Ok();
    case JsonValue::Kind::kNumber:
      *out = ReportValue::Number(in.number);
      return util::Status::Ok();
    case JsonValue::Kind::kBoolean:
      *out = ReportValue::Boolean(in.boolean);
      return util::Status::Ok();
    default:
      return util::Status::InvalidArgument(
          "report values must be scalars (string/number/bool)");
  }
}

util::Status SectionFromJson(const JsonValue& in, ReportSection* out) {
  if (in.kind != JsonValue::Kind::kObject) {
    return util::Status::InvalidArgument("section must be a JSON object");
  }
  const JsonValue* title = in.Find("title");
  if (title == nullptr || title->kind != JsonValue::Kind::kString) {
    return util::Status::InvalidArgument("section missing string \"title\"");
  }
  out->title = title->str;
  if (const JsonValue* fields = in.Find("fields")) {
    if (fields->kind != JsonValue::Kind::kObject) {
      return util::Status::InvalidArgument("\"fields\" must be an object");
    }
    for (const auto& [key, value] : fields->object) {
      ReportValue rv;
      LIMBO_RETURN_IF_ERROR(ValueFromJson(value, &rv));
      out->fields.emplace_back(key, std::move(rv));
    }
  }
  if (const JsonValue* table = in.Find("table")) {
    const JsonValue* columns = table->Find("columns");
    const JsonValue* rows = table->Find("rows");
    if (table->kind != JsonValue::Kind::kObject || columns == nullptr ||
        columns->kind != JsonValue::Kind::kArray || rows == nullptr ||
        rows->kind != JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument(
          "\"table\" must be {columns: [...], rows: [...]}");
    }
    for (const JsonValue& column : columns->array) {
      if (column.kind != JsonValue::Kind::kString) {
        return util::Status::InvalidArgument("column names must be strings");
      }
      out->table.columns.push_back(column.str);
    }
    for (const JsonValue& row : rows->array) {
      if (row.kind != JsonValue::Kind::kArray ||
          row.array.size() != out->table.columns.size()) {
        return util::Status::InvalidArgument(
            "each table row must be an array matching the column count");
      }
      std::vector<ReportValue> cells;
      for (const JsonValue& cell : row.array) {
        ReportValue rv;
        LIMBO_RETURN_IF_ERROR(ValueFromJson(cell, &rv));
        cells.push_back(std::move(rv));
      }
      out->table.rows.push_back(std::move(cells));
    }
  }
  if (const JsonValue* sections = in.Find("sections")) {
    if (sections->kind != JsonValue::Kind::kArray) {
      return util::Status::InvalidArgument("\"sections\" must be an array");
    }
    for (const JsonValue& child : sections->array) {
      ReportSection child_section;
      LIMBO_RETURN_IF_ERROR(SectionFromJson(child, &child_section));
      out->children.push_back(std::move(child_section));
    }
  }
  return util::Status::Ok();
}

void AppendTraceRows(const SpanStats& node, int depth, ReportSection* out) {
  for (const SpanStats& child : node.children) {
    out->table.rows.push_back({ReportValue::String(child.name),
                               ReportValue::Integer(static_cast<uint64_t>(depth)),
                               ReportValue::Integer(child.count),
                               ReportValue::Number(child.total_seconds)});
    AppendTraceRows(child, depth + 1, out);
  }
}

}  // namespace

ReportValue ReportValue::String(std::string value) {
  ReportValue v;
  v.kind = Kind::kString;
  v.str = std::move(value);
  return v;
}

ReportValue ReportValue::Number(double value) {
  ReportValue v;
  v.kind = Kind::kNumber;
  v.number = value;
  return v;
}

ReportValue ReportValue::Integer(uint64_t value) {
  ReportValue v;
  v.kind = Kind::kInteger;
  v.integer = value;
  return v;
}

ReportValue ReportValue::Boolean(bool value) {
  ReportValue v;
  v.kind = Kind::kBoolean;
  v.boolean = value;
  return v;
}

void ReportSection::AddField(std::string key, std::string value) {
  fields.emplace_back(std::move(key), ReportValue::String(std::move(value)));
}
void ReportSection::AddField(std::string key, const char* value) {
  AddField(std::move(key), std::string(value));
}
void ReportSection::AddField(std::string key, double value) {
  fields.emplace_back(std::move(key), ReportValue::Number(value));
}
void ReportSection::AddField(std::string key, uint64_t value) {
  fields.emplace_back(std::move(key), ReportValue::Integer(value));
}
void ReportSection::AddField(std::string key, int value) {
  fields.emplace_back(std::move(key),
                      ReportValue::Integer(static_cast<uint64_t>(value)));
}
void ReportSection::AddField(std::string key, bool value) {
  fields.emplace_back(std::move(key), ReportValue::Boolean(value));
}

std::string RunReport::ToJson() const {
  std::string out = "{\n  \"schema_version\": ";
  out += std::to_string(schema_version);
  out += ",\n  \"title\": ";
  AppendEscaped(title, &out);
  out += ",\n  \"sections\": [\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    if (i > 0) out += ",\n";
    AppendSection(sections[i], 2, &out);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string RunReport::ToMarkdown() const {
  std::string out = "# " + title + "\n\n";
  out += "- schema_version: " + std::to_string(schema_version) + "\n\n";
  for (const ReportSection& section : sections) {
    AppendSectionMarkdown(section, 2, &out);
  }
  return out;
}

util::Result<RunReport> RunReport::FromJson(const std::string& json) {
  JsonParser parser(json);
  util::Result<JsonValue> parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (root.kind != JsonValue::Kind::kObject) {
    return util::Status::InvalidArgument("report must be a JSON object");
  }
  RunReport report;
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kInteger) {
    return util::Status::InvalidArgument(
        "report missing integer \"schema_version\"");
  }
  report.schema_version = static_cast<int>(version->integer);
  if (report.schema_version != kRunReportSchemaVersion) {
    return util::Status::InvalidArgument(
        "unsupported report schema_version " +
        std::to_string(report.schema_version) + " (want " +
        std::to_string(kRunReportSchemaVersion) + ")");
  }
  const JsonValue* title = root.Find("title");
  if (title == nullptr || title->kind != JsonValue::Kind::kString) {
    return util::Status::InvalidArgument("report missing string \"title\"");
  }
  report.title = title->str;
  const JsonValue* sections = root.Find("sections");
  if (sections == nullptr || sections->kind != JsonValue::Kind::kArray) {
    return util::Status::InvalidArgument("report missing \"sections\" array");
  }
  for (const JsonValue& section : sections->array) {
    ReportSection out;
    LIMBO_RETURN_IF_ERROR(SectionFromJson(section, &out));
    report.sections.push_back(std::move(out));
  }
  return report;
}

ReportSection TraceSection(const SpanStats& root) {
  ReportSection section("spans");
  section.table.columns = {"span", "depth", "count", "seconds"};
  AppendTraceRows(root, 0, &section);
  return section;
}

ReportSection CountersSection(const std::vector<CounterValue>& counters) {
  ReportSection section("counters");
  section.table.columns = {"counter", "value", "scheduling"};
  for (const CounterValue& counter : counters) {
    section.table.rows.push_back({ReportValue::String(counter.name),
                                  ReportValue::Integer(counter.value),
                                  ReportValue::Boolean(counter.scheduling)});
  }
  return section;
}

}  // namespace limbo::obs
