#ifndef LIMBO_OBS_COUNTERS_H_
#define LIMBO_OBS_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace limbo::obs {

/// Whether the observability layer records anything at runtime. Defaults
/// to true; set LIMBO_OBS=0 (or "off" / "false") in the environment to
/// start disabled. When disabled, ScopedSpan never reads the clock and
/// LIMBO_OBS_COUNT never touches the registry, so instrumented code pays
/// one predictable branch per site. For a compile-time kill switch, define
/// LIMBO_OBS_DISABLED before including obs headers: the LIMBO_OBS_*
/// macros then expand to inert statements.
bool Enabled();
void SetEnabled(bool enabled);

/// A named monotonic counter. Adds go to one of a fixed number of
/// cache-line-padded shards selected per thread, with relaxed atomics —
/// no locks and no contention on the hot path as long as threads <
/// kCounterShards. Counters are created on first use via GetCounter and
/// live for the process lifetime (ResetCounters zeroes them but never
/// deletes), so cached references stay valid forever.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  Counter(std::string name, bool scheduling);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta);
  void Increment() { Add(1); }

  /// Sum over shards. Exact once concurrent writers have quiesced (the
  /// reporting paths read after joining their parallel regions).
  uint64_t Value() const;

  void Reset();

  const std::string& name() const { return name_; }

  /// Scheduling counters measure *how* work was partitioned (e.g. one
  /// kernel scatter per lane that ran a chunk), so their totals depend on
  /// the thread count. Everything else counts *what* was computed and is
  /// identical for every lane count; the determinism tests assert exactly
  /// that split.
  bool scheduling() const { return scheduling_; }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  bool scheduling_;
  std::array<Shard, kShards> shards_;
};

/// Finds or creates the counter named `name`. The scheduling flag is
/// fixed by whichever call registers the counter first.
Counter& GetCounter(const std::string& name, bool scheduling = false);

struct CounterValue {
  std::string name;
  uint64_t value = 0;
  bool scheduling = false;
};

/// All registered counters, sorted by name. Zero-valued counters are
/// included: a counter that registered but never fired is itself signal.
std::vector<CounterValue> SnapshotCounters();

/// Zeroes every registered counter (registration survives).
void ResetCounters();

}  // namespace limbo::obs

#if defined(LIMBO_OBS_DISABLED)

#define LIMBO_OBS_COUNT(name, delta) \
  do {                               \
    if (false) {                     \
      (void)(name);                  \
      (void)(delta);                 \
    }                                \
  } while (0)
#define LIMBO_OBS_COUNT_SCHED(name, delta) LIMBO_OBS_COUNT(name, delta)

#else

/// Adds `delta` to the counter `name`. The registry lookup runs once per
/// call site (cached in a function-local static); afterwards each hit is
/// one branch plus one relaxed fetch_add on a thread-private shard.
#define LIMBO_OBS_COUNT(name, delta)                              \
  do {                                                            \
    if (::limbo::obs::Enabled()) {                                \
      static ::limbo::obs::Counter& limbo_obs_counter_ =          \
          ::limbo::obs::GetCounter(name);                         \
      limbo_obs_counter_.Add(static_cast<uint64_t>(delta));       \
    }                                                             \
  } while (0)

/// Same, but registers the counter as a scheduling counter (totals may
/// legitimately differ across thread counts).
#define LIMBO_OBS_COUNT_SCHED(name, delta)                        \
  do {                                                            \
    if (::limbo::obs::Enabled()) {                                \
      static ::limbo::obs::Counter& limbo_obs_counter_ =          \
          ::limbo::obs::GetCounter(name, /*scheduling=*/true);    \
      limbo_obs_counter_.Add(static_cast<uint64_t>(delta));       \
    }                                                             \
  } while (0)

#endif  // LIMBO_OBS_DISABLED

#endif  // LIMBO_OBS_COUNTERS_H_
