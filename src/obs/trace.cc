#include "obs/trace.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "util/logging.h"

namespace limbo::obs {

namespace internal {

struct TraceNode {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  std::vector<std::unique_ptr<TraceNode>> children;
};

}  // namespace internal

namespace {

using internal::TraceNode;

std::mutex& TraceMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

// Leaked so span exits during static destruction stay safe.
TraceNode& Root() {
  static TraceNode* root = new TraceNode;
  return *root;
}

bool g_echo = false;

// Per-thread stack of open spans. ResetTrace requires all spans closed,
// so entries never dangle across a reset.
thread_local std::vector<TraceNode*> tl_stack;

TraceNode* FindOrCreateChild(TraceNode* parent, const char* name) {
  for (const auto& child : parent->children) {
    if (child->name == name) return child.get();
  }
  parent->children.push_back(std::make_unique<TraceNode>());
  parent->children.back()->name = name;
  return parent->children.back().get();
}

void CopyNode(const TraceNode& node, SpanStats* out) {
  out->name = node.name;
  out->count = node.count;
  out->total_seconds = node.total_seconds;
  out->children.resize(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    CopyNode(*node.children[i], &out->children[i]);
  }
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) : name_(name), active_(Enabled()) {
  if (!active_) return;
  {
    std::lock_guard<std::mutex> lock(TraceMutex());
    TraceNode* parent = tl_stack.empty() ? &Root() : tl_stack.back();
    node_ = FindOrCreateChild(parent, name);
    tl_stack.push_back(node_);
  }
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() { Stop(); }

double ScopedSpan::Stop() {
  if (!active_) return 0.0;
  active_ = false;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(TraceMutex());
    // Spans must stop in LIFO order per thread.
    LIMBO_CHECK(!tl_stack.empty() && tl_stack.back() == node_);
    node_->count += 1;
    node_->total_seconds += elapsed;
    tl_stack.pop_back();
    depth = tl_stack.size();
  }
  if (g_echo) {
    std::fprintf(stderr, "[trace] %*s%s: %.6f s\n",
                 static_cast<int>(2 * depth), "", name_, elapsed);
  }
  return elapsed;
}

SpanStats SnapshotTrace() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  SpanStats out;
  CopyNode(Root(), &out);
  return out;
}

void ResetTrace() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  LIMBO_CHECK(tl_stack.empty());  // no resets while spans are open
  Root().children.clear();
  Root().count = 0;
  Root().total_seconds = 0.0;
}

void SetTraceEcho(bool echo) { g_echo = echo; }

}  // namespace limbo::obs
