#ifndef LIMBO_CORE_LIMBO_H_
#define LIMBO_CORE_LIMBO_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/aib.h"
#include "core/dcf.h"
#include "core/dcf_stream.h"
#include "core/dcf_tree.h"
#include "util/parallel.h"
#include "util/result.h"

namespace limbo::core {

/// Parameters of a LIMBO run (Section 5.2).
struct LimboOptions {
  /// Accuracy knob φ: Phase-1 merges happen when the information loss does
  /// not exceed φ·I(V;T)/q, q = number of objects. φ = 0.0 merges only
  /// identical objects (LIMBO degenerates to AIB); large φ (≈1) produces a
  /// coarse summary.
  double phi = 0.0;
  /// DCF-tree branching factor B. The paper uses B = 4.
  int branching = 4;
  /// Leaf capacity (0 = same as branching).
  int leaf_capacity = 0;
  /// Number of clusters for Phases 2–3; 0 runs Phase 2 down to k = 1 and
  /// skips Phase 3 (useful when the caller wants the whole dendrogram).
  /// Values above the Phase-1 leaf count are clipped to the leaf count.
  size_t k = 0;
  /// Worker lanes for the Phase-2 distance scans and the Phase-3
  /// assignment scan. 0 = LIMBO_THREADS env var / hardware concurrency
  /// (util::DefaultThreadCount), 1 = serial. Every value produces
  /// bit-identical results.
  size_t threads = 0;
  /// Objects pulled per DcfStream chunk in the streamed pipeline (the
  /// I(V;T) passes, the Phase-1 insert scan, and the Phase-3 assignment
  /// scan). A memory knob only — every chunk size yields bit-identical
  /// results; 0 falls back to the default.
  size_t stream_chunk = 4096;
  /// When true, the run snapshots the Phase-1 tree (LimboResult::
  /// frozen_tree) and records the leaf-entry id every object landed in
  /// (row_entry_ids) — the state `limbo-tool refit` rehydrates to absorb
  /// new rows without refitting from scratch. Off by default: the
  /// snapshot costs a deep copy of the tree.
  bool freeze_tree = false;
};

/// Wall-time and work counters of one RunLimbo invocation. Since the obs
/// layer landed this is a convenience view assembled from the "limbo" /
/// "phase1..3" trace spans and the structural eval counts; the full
/// picture (kernel counters, NN-cache hit rates, per-span hierarchy)
/// lives in the obs registry (obs/trace.h, obs/counters.h). Wall times
/// read 0.0 when the obs layer is disabled (LIMBO_OBS=0).
struct PhaseTimings {
  /// Phase-1 (DCF tree build) wall-time, seconds.
  double phase1_seconds = 0.0;
  /// Phase-2 (AIB over the leaves) wall-time, seconds.
  double phase2_seconds = 0.0;
  /// Phase-3 (re-assignment scan) wall-time, seconds.
  double phase3_seconds = 0.0;
  /// InformationLoss evaluations in Phase 2 (matrix build + refreshes).
  uint64_t phase2_distance_evals = 0;
  /// InformationLoss evaluations in Phase 3 (objects × representatives).
  uint64_t phase3_distance_evals = 0;
  /// Resolved worker-lane count the run executed with.
  size_t threads = 1;
  /// Whether Phase 3 executed at all (k = 0 skips it). Reporting paths
  /// must not print the phase3_* fields when this is false — they are
  /// not timings, just zero-initialized members.
  bool phase3_ran = false;
  /// Whether the run pulled objects from an external source (a streamed
  /// RunLimboStreamed run) rather than a materialized vector. The scan
  /// counters below are only meaningful — and only printed — when true.
  bool streamed = false;
  /// Full scans of the source up to and including Phase 1: two for
  /// I(V;T), one for the DCF-tree build.
  uint64_t source_scans = 0;
  /// Re-scans of the source by the Phase-3 assignment pass. Zero when
  /// Phase 3 was skipped (k = 0) — reporting paths must gate this field
  /// on phase3_ran, exactly like the phase3_* timings.
  uint64_t phase3_source_rescans = 0;
};

/// Everything a LIMBO run produces.
struct LimboResult {
  /// Mutual information I(V;T) of the input objects (bits).
  double mutual_information = 0.0;
  /// The Phase-1 merge threshold φ·I/q actually used.
  double threshold = 0.0;
  /// Phase-1 leaf summaries.
  std::vector<Dcf> leaves;
  /// Phase-2 agglomerative merge sequence over the leaves.
  AibResult aib{0, {}};
  /// Phase-2 cluster representatives (only when options.k > 0).
  std::vector<Dcf> representatives;
  /// Phase-3 label per input object (only when options.k > 0).
  std::vector<uint32_t> assignments;
  /// Phase-3 information loss of each object's assignment.
  std::vector<double> assignment_loss;
  DcfTree::Stats tree_stats;
  /// Per-phase wall-time and distance-evaluation counters.
  PhaseTimings timings;
  /// Snapshot of the Phase-1 tree after the insert scan (only when
  /// options.freeze_tree). Serialized into the model bundle so refit can
  /// resume incremental insertion.
  bool has_frozen_tree = false;
  FrozenDcfTree frozen_tree;
  /// Per input object, the id of the Phase-1 leaf entry it was absorbed
  /// into (only when options.freeze_tree). Lets refit re-derive labels
  /// for the original rows from an updated tree without the raw data.
  std::vector<uint32_t> row_entry_ids;
};

/// Incremental Phase 1: insert objects one at a time — from a stream or a
/// vector — and harvest the leaf summaries at the end. Only the DCF tree
/// is resident; this is what makes streamed ingestion bounded-memory.
class Phase1Builder {
 public:
  Phase1Builder(const LimboOptions& options, double threshold);
  /// Rehydrates a builder from a frozen tree snapshot. Further Insert()
  /// calls continue bit-for-bit where the frozen tree left off.
  explicit Phase1Builder(const FrozenDcfTree& frozen);

  /// Inserts one object; returns the stable id of the leaf entry it
  /// landed in (see DcfTree::Insert).
  uint32_t Insert(const Dcf& object) { return tree_->Insert(object); }

  std::vector<Dcf> Leaves() const { return tree_->LeafDcfs(); }
  std::vector<uint32_t> LeafEntryIds() const { return tree_->LeafEntryIds(); }
  FrozenDcfTree Freeze() const { return tree_->Freeze(); }
  const DcfTree::Stats& stats() const { return tree_->stats(); }
  const DcfTree& tree() const { return *tree_; }

 private:
  std::unique_ptr<DcfTree> tree_;
};

/// Chunked Phase 3: the representatives are frozen up front (arena rows,
/// cached logs, one LossKernel per lane) and AssignChunk labels any run
/// of objects against them. Each object's argmin is a pure function of
/// (object, representatives), so chunk boundaries and thread counts never
/// change labels or losses — streamed re-scans are bit-identical to the
/// one-shot vector call. Call Flush once after the last chunk to publish
/// the per-lane kernel counters.
class Phase3Assigner {
 public:
  /// `representatives` must be non-empty and outlive the assigner.
  Phase3Assigner(const std::vector<Dcf>& representatives, size_t threads,
                 bool batch_kernel = true);

  /// Labels objects[i] into labels[i] (and its δI into loss[i] when
  /// `loss` is non-null). The output arrays must hold objects.size()
  /// cells.
  void AssignChunk(std::span<const Dcf> objects, uint32_t* labels,
                   double* loss);

  /// Publishes the accumulated per-lane kernel counters to the obs
  /// registry ("phase3.kernel"). Call exactly once, after the last chunk.
  void Flush();

 private:
  const std::vector<Dcf>* representatives_;
  bool batch_kernel_;
  DistributionArena arena_;
  std::vector<size_t> rep_row_;
  std::vector<double> rep_p_;
  util::ThreadPool pool_;
  std::vector<LossKernel> kernels_;
};

/// Phase 1 only: builds the DCF tree over `objects` with the given
/// absolute merge `threshold` and returns the leaf summaries. Thin
/// adapter over Phase1Builder.
std::vector<Dcf> LimboPhase1(const std::vector<Dcf>& objects,
                             const LimboOptions& options, double threshold,
                             DcfTree::Stats* stats = nullptr);

/// Phase 3 only: assigns each object to the representative with minimal
/// information loss. Returns labels; per-object losses go to `loss` if
/// non-null. Deterministic: ties pick the lowest representative index,
/// and results are bit-identical for every `threads` value (0 = default
/// lane count, 1 = serial). `batch_kernel` chooses between the arena
/// batch scan (default; representatives in a DistributionArena, one
/// LossKernel per lane) and per-pair InformationLoss — the two are
/// bit-identical; the flag exists for the equivalence tests and the
/// kernel benchmark. Thin adapter over Phase3Assigner.
util::Result<std::vector<uint32_t>> LimboPhase3(
    const std::vector<Dcf>& objects, const std::vector<Dcf>& representatives,
    std::vector<double>* loss = nullptr, size_t threads = 0,
    bool batch_kernel = true);

/// Full pipeline over a rewindable object stream: two scans for I(V;T)
/// (threshold φ·I/q), one Phase-1 insert scan (only the DCF tree
/// resident), Phase 2 (AIB on the leaves) and, when options.k > 0, one
/// Phase-3 re-scan that labels every object. Peak memory against a real
/// source is the DCF tree plus one chunk of objects. Results — clusters,
/// losses, and every work counter — are bit-identical to RunLimbo over
/// the materialized vector, at every thread count and chunk size.
util::Result<LimboResult> RunLimboStreamed(DcfStream& objects,
                                           const LimboOptions& options);

/// Full pipeline over a materialized object vector: thin adapter that
/// routes a zero-copy VectorDcfStream through RunLimboStreamed.
util::Result<LimboResult> RunLimbo(const std::vector<Dcf>& objects,
                                   const LimboOptions& options);

}  // namespace limbo::core

#endif  // LIMBO_CORE_LIMBO_H_
