#ifndef LIMBO_CORE_MEASURES_H_
#define LIMBO_CORE_MEASURES_H_

#include <vector>

#include "relation/relation.h"

namespace limbo::core {

/// Relative Attribute Duplication (Section 8):
///   RAD(C_A) = 1 − H(t_{C_A} | C_A) / log2(n)
/// where H is the entropy of the bag of tuples projected on the attribute
/// set C_A. 1.0 means every projected tuple is identical (maximal
/// duplication); 0.0 means all projected tuples are distinct.
/// Defined as 1.0 for n <= 1.
double Rad(const relation::Relation& rel,
           const std::vector<relation::AttributeId>& attributes);

/// Relative Tuple Reduction (Section 8):
///   RTR(C_A) = 1 − n' / n
/// where n' is the number of *distinct* tuples projected on C_A.
/// Defined as 0.0 for n == 0.
double Rtr(const relation::Relation& rel,
           const std::vector<relation::AttributeId>& attributes);

}  // namespace limbo::core

#endif  // LIMBO_CORE_MEASURES_H_
