#include "core/limbo.h"

#include <algorithm>
#include <limits>

#include "core/info.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace limbo::core {

namespace {

DcfTree::Options MakeTreeOptions(const LimboOptions& options,
                                 double threshold) {
  DcfTree::Options tree_options;
  tree_options.branching = options.branching;
  tree_options.leaf_capacity = options.leaf_capacity;
  tree_options.threshold = threshold;
  return tree_options;
}

/// One full scan of the stream — `fn` sees every object in stream order —
/// followed by a rewind so the next pass starts at object 0.
template <typename Fn>
util::Status ScanObjects(DcfStream& objects, size_t chunk, Fn&& fn) {
  while (true) {
    LIMBO_ASSIGN_OR_RETURN(std::span<const Dcf> part,
                           objects.NextChunk(chunk));
    if (part.empty()) break;
    for (const Dcf& object : part) fn(object);
  }
  return objects.Reset();
}

}  // namespace

Phase1Builder::Phase1Builder(const LimboOptions& options, double threshold)
    : tree_(std::make_unique<DcfTree>(MakeTreeOptions(options, threshold))) {}

Phase1Builder::Phase1Builder(const FrozenDcfTree& frozen)
    : tree_(DcfTree::Restore(frozen)) {}

std::vector<Dcf> LimboPhase1(const std::vector<Dcf>& objects,
                             const LimboOptions& options, double threshold,
                             DcfTree::Stats* stats) {
  Phase1Builder builder(options, threshold);
  for (const Dcf& object : objects) builder.Insert(object);
  if (stats != nullptr) *stats = builder.stats();
  return builder.Leaves();
}

Phase3Assigner::Phase3Assigner(const std::vector<Dcf>& representatives,
                               size_t threads, bool batch_kernel)
    : representatives_(&representatives),
      batch_kernel_(batch_kernel),
      pool_(threads),
      kernels_(pool_.threads()) {
  LIMBO_CHECK(!representatives.empty());
  rep_p_.resize(representatives.size());
  for (size_t r = 0; r < representatives.size(); ++r) {
    rep_p_[r] = representatives[r].p;
  }
  if (batch_kernel_) {
    // Representatives live as arena rows (contiguous, cached logs) for
    // the whole sequence of chunks.
    size_t total_entries = 0;
    for (const Dcf& r : representatives) total_entries += r.cond.SupportSize();
    arena_.ReserveEntries(total_entries);
    rep_row_.resize(representatives.size());
    for (size_t r = 0; r < representatives.size(); ++r) {
      rep_row_[r] = arena_.Append(representatives[r].cond);
    }
  }
}

void Phase3Assigner::AssignChunk(std::span<const Dcf> objects,
                                 uint32_t* labels, double* loss) {
  const std::vector<Dcf>& representatives = *representatives_;
  LIMBO_OBS_COUNT("phase3.objects", objects.size());
  LIMBO_OBS_COUNT("phase3.distance_evals",
                  static_cast<uint64_t>(objects.size()) *
                      representatives.size());
  // Each object's argmin is independent and writes only its own label /
  // loss cell, so the scan parallelizes with bit-identical results.
  pool_.ParallelFor(0, objects.size(), /*grain=*/64,
                    [&](size_t lo, size_t hi, size_t lane) {
    LossKernel& kernel = kernels_[lane];
    for (size_t i = lo; i < hi; ++i) {
      if (batch_kernel_) {
        const NearestCandidate nearest = FindNearestCandidate(
            &kernel, objects[i].p, objects[i].cond, rep_p_, arena_, rep_row_);
        labels[i] = nearest.index;
        if (loss != nullptr) loss[i] = nearest.loss;
      } else {
        size_t best = 0;
        double best_loss = std::numeric_limits<double>::infinity();
        for (size_t r = 0; r < representatives.size(); ++r) {
          const double d = InformationLoss(objects[i], representatives[r]);
          if (d < best_loss) {
            best_loss = d;
            best = r;
          }
        }
        labels[i] = static_cast<uint32_t>(best);
        if (loss != nullptr) loss[i] = best_loss;
      }
    }
  });
}

void Phase3Assigner::Flush() {
  if (batch_kernel_) FlushKernelStats(kernels_, "phase3.kernel");
}

util::Result<std::vector<uint32_t>> LimboPhase3(
    const std::vector<Dcf>& objects, const std::vector<Dcf>& representatives,
    std::vector<double>* loss, size_t threads, bool batch_kernel) {
  if (representatives.empty()) {
    return util::Status::InvalidArgument("Phase 3 needs >= 1 representative");
  }
  std::vector<uint32_t> labels(objects.size());
  if (loss != nullptr) loss->assign(objects.size(), 0.0);
  Phase3Assigner assigner(representatives, threads, batch_kernel);
  assigner.AssignChunk(objects, labels.data(),
                       loss != nullptr ? loss->data() : nullptr);
  assigner.Flush();
  return labels;
}

util::Result<LimboResult> RunLimboStreamed(DcfStream& objects,
                                           const LimboOptions& options) {
  const size_t n = objects.size();
  if (n == 0) {
    return util::Status::InvalidArgument("LIMBO needs >= 1 object");
  }
  if (options.phi < 0.0) {
    return util::Status::InvalidArgument("phi must be >= 0");
  }
  if (options.k > n) {
    return util::Status::InvalidArgument(
        util::StrFormat("k=%zu exceeds object count %zu", options.k, n));
  }
  const size_t chunk = options.stream_chunk == 0
                           ? LimboOptions().stream_chunk
                           : options.stream_chunk;

  LimboResult result;
  result.timings.streamed = objects.IsStreaming();

  // I(V;T) of the raw objects, needed for the Phase-1 threshold: two
  // scans through the streaming accumulator, bit-identical to
  // MutualInformation over the materialized rows.
  MutualInformationAccumulator info;
  util::Status scan = ScanObjects(objects, chunk, [&](const Dcf& object) {
    info.AddMarginal(object.p, object.cond);
  });
  if (!scan.ok()) return scan;
  ++result.timings.source_scans;
  scan = ScanObjects(objects, chunk, [&](const Dcf& object) {
    info.AddInformation(object.p, object.cond);
  });
  if (!scan.ok()) return scan;
  ++result.timings.source_scans;
  result.mutual_information = info.Value();
  result.threshold = options.phi * result.mutual_information /
                     static_cast<double>(n);

  LIMBO_OBS_SPAN(limbo_span, "limbo");
  {
    LIMBO_OBS_SPAN(phase1_span, "phase1");
    Phase1Builder builder(options, result.threshold);
    if (options.freeze_tree) {
      result.row_entry_ids.reserve(n);
      scan = ScanObjects(objects, chunk, [&](const Dcf& object) {
        result.row_entry_ids.push_back(builder.Insert(object));
      });
    } else {
      scan = ScanObjects(objects, chunk,
                         [&](const Dcf& object) { builder.Insert(object); });
    }
    if (!scan.ok()) return scan;
    ++result.timings.source_scans;
    result.leaves = builder.Leaves();
    result.tree_stats = builder.stats();
    if (options.freeze_tree) {
      result.frozen_tree = builder.Freeze();
      result.has_frozen_tree = true;
    }
    result.timings.phase1_seconds = phase1_span.Stop();
  }

  AibOptions aib_options;
  aib_options.threads = options.threads;
  // Clip k to the Phase-1 leaf count: with fewer leaves than requested
  // clusters the best LIMBO can do is one cluster per leaf (not one big
  // cluster, which a min_k=1 fallback would produce).
  aib_options.min_k =
      options.k > 0 ? std::min(options.k, result.leaves.size()) : 1;
  {
    LIMBO_OBS_SPAN(phase2_span, "phase2");
    LIMBO_ASSIGN_OR_RETURN(result.aib,
                           AgglomerativeIb(result.leaves, aib_options));
  }
  result.timings.phase2_seconds = result.aib.stats().seconds;
  result.timings.phase2_distance_evals = result.aib.stats().distance_evals;
  result.timings.threads = result.aib.stats().threads;

  if (options.k > 0) {
    const size_t k = aib_options.min_k;  // clipped to leaf count
    LIMBO_OBS_SPAN(phase3_span, "phase3");
    LIMBO_ASSIGN_OR_RETURN(result.representatives,
                           ClusterDcfsAtK(result.leaves, result.aib, k));
    Phase3Assigner assigner(result.representatives, options.threads);
    result.assignments.resize(n);
    result.assignment_loss.assign(n, 0.0);
    size_t base = 0;
    while (true) {
      LIMBO_ASSIGN_OR_RETURN(std::span<const Dcf> part,
                             objects.NextChunk(chunk));
      if (part.empty()) break;
      assigner.AssignChunk(part, result.assignments.data() + base,
                           result.assignment_loss.data() + base);
      base += part.size();
    }
    assigner.Flush();
    scan = objects.Reset();
    if (!scan.ok()) return scan;
    ++result.timings.phase3_source_rescans;
    result.timings.phase3_seconds = phase3_span.Stop();
    result.timings.phase3_distance_evals =
        static_cast<uint64_t>(n) * result.representatives.size();
    result.timings.phase3_ran = true;
  }
  return result;
}

util::Result<LimboResult> RunLimbo(const std::vector<Dcf>& objects,
                                   const LimboOptions& options) {
  VectorDcfStream stream(objects);
  return RunLimboStreamed(stream, options);
}

}  // namespace limbo::core
