#include "core/limbo.h"

#include <algorithm>
#include <limits>

#include "core/info.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace limbo::core {

std::vector<Dcf> LimboPhase1(const std::vector<Dcf>& objects,
                             const LimboOptions& options, double threshold,
                             DcfTree::Stats* stats) {
  DcfTree::Options tree_options;
  tree_options.branching = options.branching;
  tree_options.leaf_capacity = options.leaf_capacity;
  tree_options.threshold = threshold;
  DcfTree tree(tree_options);
  for (const Dcf& object : objects) tree.Insert(object);
  if (stats != nullptr) *stats = tree.stats();
  return tree.LeafDcfs();
}

util::Result<std::vector<uint32_t>> LimboPhase3(
    const std::vector<Dcf>& objects, const std::vector<Dcf>& representatives,
    std::vector<double>* loss, size_t threads, bool batch_kernel) {
  if (representatives.empty()) {
    return util::Status::InvalidArgument("Phase 3 needs >= 1 representative");
  }
  std::vector<uint32_t> labels(objects.size());
  if (loss != nullptr) loss->assign(objects.size(), 0.0);
  // Batch arm: representatives live as arena rows (contiguous, cached
  // logs) and each lane owns a LossKernel that scatters one object, then
  // streams every representative row against it.
  DistributionArena arena;
  std::vector<size_t> rep_row;
  std::vector<double> rep_p(representatives.size());
  for (size_t r = 0; r < representatives.size(); ++r) {
    rep_p[r] = representatives[r].p;
  }
  if (batch_kernel) {
    size_t total_entries = 0;
    for (const Dcf& r : representatives) total_entries += r.cond.SupportSize();
    arena.ReserveEntries(total_entries);
    rep_row.resize(representatives.size());
    for (size_t r = 0; r < representatives.size(); ++r) {
      rep_row[r] = arena.Append(representatives[r].cond);
    }
  }
  // Each object's argmin is independent and writes only its own label /
  // loss cell, so the scan parallelizes with bit-identical results.
  util::ThreadPool pool(threads);
  LIMBO_OBS_COUNT("phase3.objects", objects.size());
  LIMBO_OBS_COUNT("phase3.distance_evals",
                  static_cast<uint64_t>(objects.size()) *
                      representatives.size());
  std::vector<LossKernel> kernels(pool.threads());
  pool.ParallelFor(0, objects.size(), /*grain=*/64,
                   [&](size_t lo, size_t hi, size_t lane) {
    LossKernel& kernel = kernels[lane];
    for (size_t i = lo; i < hi; ++i) {
      size_t best = 0;
      double best_loss = std::numeric_limits<double>::infinity();
      if (batch_kernel) {
        kernel.SetObject(objects[i].p, objects[i].cond);
        for (size_t r = 0; r < representatives.size(); ++r) {
          const double d = kernel.Loss(rep_p[r], arena.Row(rep_row[r]));
          if (d < best_loss) {
            best_loss = d;
            best = r;
          }
        }
      } else {
        for (size_t r = 0; r < representatives.size(); ++r) {
          const double d = InformationLoss(objects[i], representatives[r]);
          if (d < best_loss) {
            best_loss = d;
            best = r;
          }
        }
      }
      labels[i] = static_cast<uint32_t>(best);
      if (loss != nullptr) (*loss)[i] = best_loss;
    }
  });
  if (batch_kernel) FlushKernelStats(kernels, "phase3.kernel");
  return labels;
}

util::Result<LimboResult> RunLimbo(const std::vector<Dcf>& objects,
                                   const LimboOptions& options) {
  if (objects.empty()) {
    return util::Status::InvalidArgument("LIMBO needs >= 1 object");
  }
  if (options.phi < 0.0) {
    return util::Status::InvalidArgument("phi must be >= 0");
  }
  if (options.k > objects.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "k=%zu exceeds object count %zu", options.k, objects.size()));
  }

  LimboResult result;

  // I(V;T) of the raw objects, needed for the Phase-1 threshold.
  WeightedRows rows;
  rows.weights.reserve(objects.size());
  rows.rows.reserve(objects.size());
  for (const Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  result.mutual_information = MutualInformation(rows);
  result.threshold = options.phi * result.mutual_information /
                     static_cast<double>(objects.size());

  LIMBO_OBS_SPAN(limbo_span, "limbo");
  {
    LIMBO_OBS_SPAN(phase1_span, "phase1");
    result.leaves =
        LimboPhase1(objects, options, result.threshold, &result.tree_stats);
    result.timings.phase1_seconds = phase1_span.Stop();
  }

  AibOptions aib_options;
  aib_options.threads = options.threads;
  // Clip k to the Phase-1 leaf count: with fewer leaves than requested
  // clusters the best LIMBO can do is one cluster per leaf (not one big
  // cluster, which a min_k=1 fallback would produce).
  aib_options.min_k =
      options.k > 0 ? std::min(options.k, result.leaves.size()) : 1;
  {
    LIMBO_OBS_SPAN(phase2_span, "phase2");
    LIMBO_ASSIGN_OR_RETURN(result.aib,
                           AgglomerativeIb(result.leaves, aib_options));
  }
  result.timings.phase2_seconds = result.aib.stats().seconds;
  result.timings.phase2_distance_evals = result.aib.stats().distance_evals;
  result.timings.threads = result.aib.stats().threads;

  if (options.k > 0) {
    const size_t k = aib_options.min_k;  // clipped to leaf count
    LIMBO_OBS_SPAN(phase3_span, "phase3");
    LIMBO_ASSIGN_OR_RETURN(
        result.representatives,
        ClusterDcfsAtK(result.leaves, result.aib, k));
    LIMBO_ASSIGN_OR_RETURN(
        result.assignments,
        LimboPhase3(objects, result.representatives, &result.assignment_loss,
                    options.threads));
    result.timings.phase3_seconds = phase3_span.Stop();
    result.timings.phase3_distance_evals =
        static_cast<uint64_t>(objects.size()) * result.representatives.size();
    result.timings.phase3_ran = true;
  }
  return result;
}

}  // namespace limbo::core
