#include "core/limbo.h"

#include <limits>

#include "core/info.h"
#include "util/strings.h"

namespace limbo::core {

std::vector<Dcf> LimboPhase1(const std::vector<Dcf>& objects,
                             const LimboOptions& options, double threshold,
                             DcfTree::Stats* stats) {
  DcfTree::Options tree_options;
  tree_options.branching = options.branching;
  tree_options.leaf_capacity = options.leaf_capacity;
  tree_options.threshold = threshold;
  DcfTree tree(tree_options);
  for (const Dcf& object : objects) tree.Insert(object);
  if (stats != nullptr) *stats = tree.stats();
  return tree.LeafDcfs();
}

util::Result<std::vector<uint32_t>> LimboPhase3(
    const std::vector<Dcf>& objects, const std::vector<Dcf>& representatives,
    std::vector<double>* loss) {
  if (representatives.empty()) {
    return util::Status::InvalidArgument("Phase 3 needs >= 1 representative");
  }
  std::vector<uint32_t> labels(objects.size());
  if (loss != nullptr) loss->assign(objects.size(), 0.0);
  for (size_t i = 0; i < objects.size(); ++i) {
    size_t best = 0;
    double best_loss = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < representatives.size(); ++r) {
      const double d = InformationLoss(objects[i], representatives[r]);
      if (d < best_loss) {
        best_loss = d;
        best = r;
      }
    }
    labels[i] = static_cast<uint32_t>(best);
    if (loss != nullptr) (*loss)[i] = best_loss;
  }
  return labels;
}

util::Result<LimboResult> RunLimbo(const std::vector<Dcf>& objects,
                                   const LimboOptions& options) {
  if (objects.empty()) {
    return util::Status::InvalidArgument("LIMBO needs >= 1 object");
  }
  if (options.phi < 0.0) {
    return util::Status::InvalidArgument("phi must be >= 0");
  }
  if (options.k > objects.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "k=%zu exceeds object count %zu", options.k, objects.size()));
  }

  LimboResult result;

  // I(V;T) of the raw objects, needed for the Phase-1 threshold.
  WeightedRows rows;
  rows.weights.reserve(objects.size());
  rows.rows.reserve(objects.size());
  for (const Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  result.mutual_information = MutualInformation(rows);
  result.threshold = options.phi * result.mutual_information /
                     static_cast<double>(objects.size());

  result.leaves =
      LimboPhase1(objects, options, result.threshold, &result.tree_stats);

  AibOptions aib_options;
  aib_options.min_k = (options.k > 0 && options.k <= result.leaves.size())
                          ? options.k
                          : 1;
  LIMBO_ASSIGN_OR_RETURN(result.aib,
                         AgglomerativeIb(result.leaves, aib_options));

  if (options.k > 0) {
    const size_t k = aib_options.min_k;  // clipped to leaf count
    LIMBO_ASSIGN_OR_RETURN(
        result.representatives,
        ClusterDcfsAtK(result.leaves, result.aib, k));
    LIMBO_ASSIGN_OR_RETURN(
        result.assignments,
        LimboPhase3(objects, result.representatives, &result.assignment_loss));
  }
  return result;
}

}  // namespace limbo::core
