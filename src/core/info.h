#ifndef LIMBO_CORE_INFO_H_
#define LIMBO_CORE_INFO_H_

#include <span>
#include <vector>

#include "core/prob.h"

namespace limbo::core {

/// A weighted collection of conditional distributions: row i carries prior
/// weight `weights[i]` (p(object_i)) and conditional `rows[i]` (p(T|object_i)).
/// This is the sparse form of the paper's matrices M and N.
struct WeightedRows {
  std::vector<double> weights;
  std::vector<SparseDistribution> rows;
};

/// Shannon entropy (base 2) of an explicit probability vector.
/// Zero-probability entries contribute 0.
double Entropy(std::span<const double> probabilities);

/// Entropy (base 2) of the empirical distribution of `counts`
/// (counts need not be normalized; zero counts contribute 0).
double EntropyOfCounts(std::span<const uint64_t> counts);

/// Marginal p(T) = sum_i w_i * p(T | object_i) of a weighted row set.
SparseDistribution Marginal(const WeightedRows& data);

/// Mutual information I(O; T) (base 2) of a weighted row set:
///   I = sum_i w_i * D_KL[ p(T|o_i) || p(T) ].
double MutualInformation(const WeightedRows& data);

/// Conditional entropy H(T | O) = H(T) - I(O; T), computed directly as
///   sum_i w_i * H(p(T|o_i)).
double ConditionalEntropy(const WeightedRows& data);

}  // namespace limbo::core

#endif  // LIMBO_CORE_INFO_H_
