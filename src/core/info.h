#ifndef LIMBO_CORE_INFO_H_
#define LIMBO_CORE_INFO_H_

#include <span>
#include <vector>

#include "core/prob.h"

namespace limbo::core {

/// A weighted collection of conditional distributions: row i carries prior
/// weight `weights[i]` (p(object_i)) and conditional `rows[i]` (p(T|object_i)).
/// This is the sparse form of the paper's matrices M and N.
struct WeightedRows {
  std::vector<double> weights;
  std::vector<SparseDistribution> rows;
};

/// Shannon entropy (base 2) of an explicit probability vector.
/// Zero-probability entries contribute 0.
double Entropy(std::span<const double> probabilities);

/// Entropy (base 2) of the empirical distribution of `counts`
/// (counts need not be normalized; zero counts contribute 0).
double EntropyOfCounts(std::span<const uint64_t> counts);

/// Marginal p(T) = sum_i w_i * p(T | object_i) of a weighted row set.
SparseDistribution Marginal(const WeightedRows& data);

/// Mutual information I(O; T) (base 2) of a weighted row set:
///   I = sum_i w_i * D_KL[ p(T|o_i) || p(T) ].
double MutualInformation(const WeightedRows& data);

/// Two-pass streaming computation of I(O; T) that never holds the rows:
/// feed every row to AddMarginal (pass 1), rewind the source, feed the
/// same rows in the same order to AddInformation (pass 2), then read
/// Value(). The accumulation order and arithmetic are exactly those of
/// MutualInformation (which is now implemented on top of this), so a
/// streamed computation is bit-identical to the materialized call.
class MutualInformationAccumulator {
 public:
  /// Pass 1: accumulates w * p(T|o) into the dense marginal.
  void AddMarginal(double weight, const SparseDistribution& row);

  /// Pass 2: accumulates w * sum_t p(t|o) log2(p(t|o) / p(t)). Every row
  /// must have gone through AddMarginal first.
  void AddInformation(double weight, const SparseDistribution& row);

  double Value() const { return info_ < 0.0 ? 0.0 : info_; }

 private:
  std::vector<double> dense_;  // the marginal p(T), grown on demand
  double info_ = 0.0;
};

/// Conditional entropy H(T | O) = H(T) - I(O; T), computed directly as
///   sum_i w_i * H(p(T|o_i)).
double ConditionalEntropy(const WeightedRows& data);

}  // namespace limbo::core

#endif  // LIMBO_CORE_INFO_H_
