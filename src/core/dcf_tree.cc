#include "core/dcf_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/counters.h"
#include "util/logging.h"
#include "util/strings.h"

namespace limbo::core {

namespace {
// Tolerance added to the merge threshold so that numerically-identical
// objects (δI ~ 1e-16 from rounding) merge under threshold = 0.0, keeping
// the documented "φ = 0 merges exact duplicates" semantics.
constexpr double kMergeEps = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

/// Internal-node child: owned subtree plus an unnormalized accumulator
/// summary (sum over inserted objects of p_i * p(T|object_i); `p` is the
/// accumulated prior mass, so the summarized conditional is acc[t] / p).
struct DcfTree::ChildRef {
  std::unique_ptr<Node> node;
  double p = 0.0;
  std::unordered_map<uint32_t, double> acc;
};

struct DcfTree::Node {
  bool is_leaf = true;
  std::vector<Dcf> leaf_entries;
  /// Stable creation-order id of each leaf entry, parallel to
  /// leaf_entries. Splits move ids together with their entries.
  std::vector<uint32_t> entry_ids;
  std::vector<ChildRef> children;
};

namespace {

/// δI between a (small) object DCF and an accumulator cluster, using the
/// asymmetric JS evaluation: O(nnz(object)) hash lookups.
double LossToAccumulator(const Dcf& obj, double ref_p,
                         const std::unordered_map<uint32_t, double>& acc) {
  const double total = obj.p + ref_p;
  if (total <= 0.0) return 0.0;
  const double w1 = obj.p / total;
  const double w2 = ref_p / total;
  const double log_inv_w1 = (w1 > 0.0) ? -std::log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -std::log2(w2) : 0.0;
  double js = 0.0;
  double shared_q = 0.0;
  for (const auto& e : obj.cond.entries()) {
    auto it = acc.find(e.id);
    if (it == acc.end()) {
      js += w1 * e.mass * log_inv_w1;
    } else {
      const double qm = it->second / ref_p;
      shared_q += qm;
      const double mm = w1 * e.mass + w2 * qm;
      js += w1 * e.mass * std::log2(e.mass / mm) +
            w2 * qm * std::log2(qm / mm);
    }
  }
  const double q_only = 1.0 - shared_q;
  if (q_only > 0.0) js += w2 * q_only * log_inv_w2;
  if (js < 0.0) js = 0.0;
  return total * js;
}

/// δI between two accumulator clusters (used only when splitting internal
/// nodes, so the O(|a| + |b|) cost is rare).
double LossBetweenAccumulators(double pa, const std::unordered_map<uint32_t, double>& a,
                               double pb, const std::unordered_map<uint32_t, double>& b) {
  const double total = pa + pb;
  if (total <= 0.0) return 0.0;
  const double w1 = pa / total;
  const double w2 = pb / total;
  const double log_inv_w1 = (w1 > 0.0) ? -std::log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -std::log2(w2) : 0.0;
  double js = 0.0;
  double shared_q = 0.0;
  for (const auto& [id, va] : a) {
    const double pm = va / pa;
    auto it = b.find(id);
    if (it == b.end()) {
      js += w1 * pm * log_inv_w1;
    } else {
      const double qm = it->second / pb;
      shared_q += qm;
      const double mm = w1 * pm + w2 * qm;
      js += w1 * pm * std::log2(pm / mm) + w2 * qm * std::log2(qm / mm);
    }
  }
  const double q_only = 1.0 - shared_q;
  if (q_only > 0.0) js += w2 * q_only * log_inv_w2;
  if (js < 0.0) js = 0.0;
  return total * js;
}

}  // namespace

DcfTree::DcfTree(const Options& options) : options_(options) {
  LIMBO_CHECK(options_.branching >= 2);
  if (options_.leaf_capacity <= 0) options_.leaf_capacity = options_.branching;
  LIMBO_CHECK(options_.threshold >= 0.0);
  root_ = std::make_unique<Node>();
}

DcfTree::~DcfTree() = default;

uint32_t DcfTree::Insert(const Dcf& object) {
  ++stats_.num_inserts;
  LIMBO_OBS_COUNT("dcf_tree.inserts", 1);
  insert_kernel_.SetObject(object.p, object.cond);
  SplitResult split = InsertInto(root_.get(), object);
  if (split.DidSplit()) {
    // Grow a new root above the two halves.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(*split.halves[0]));
    new_root->children.push_back(std::move(*split.halves[1]));
    root_ = std::move(new_root);
    ++stats_.height;
    ++stats_.num_nodes;  // the fresh root
  }
  return last_insert_id_;
}

std::unique_ptr<DcfTree::ChildRef> DcfTree::MakeChildRef(
    std::unique_ptr<Node> node) const {
  auto ref = std::make_unique<ChildRef>();
  ref->node = std::move(node);
  AccumulateSubtree(ref->node.get(), &ref->p, &ref->acc);
  return ref;
}

void DcfTree::AccumulateSubtree(const Node* node, double* p,
                                std::unordered_map<uint32_t, double>* acc) {
  if (node->is_leaf) {
    for (const Dcf& e : node->leaf_entries) {
      *p += e.p;
      for (const auto& entry : e.cond.entries()) {
        (*acc)[entry.id] += e.p * entry.mass;
      }
    }
    return;
  }
  for (const ChildRef& c : node->children) {
    *p += c.p;
    for (const auto& [id, mass] : c.acc) (*acc)[id] += mass;
  }
}

DcfTree::SplitResult DcfTree::InsertInto(Node* node, const Dcf& object) {
  SplitResult result;
  if (node->is_leaf) {
    // Closest leaf entry by information loss.
    LIMBO_OBS_COUNT("dcf_tree.leaf_scan_evals", node->leaf_entries.size());
    size_t best = SIZE_MAX;
    double best_loss = kInf;
    for (size_t i = 0; i < node->leaf_entries.size(); ++i) {
      const double loss = insert_kernel_.Loss(node->leaf_entries[i].p,
                                              node->leaf_entries[i].cond);
      if (loss < best_loss) {
        best_loss = loss;
        best = i;
      }
    }
    if (best != SIZE_MAX && best_loss <= options_.threshold + kMergeEps) {
      node->leaf_entries[best] = MergeDcf(node->leaf_entries[best], object);
      last_insert_id_ = node->entry_ids[best];
      ++stats_.num_merges;
      LIMBO_OBS_COUNT("dcf_tree.merge_absorbs", 1);
      return result;
    }
    node->leaf_entries.push_back(object);
    node->entry_ids.push_back(static_cast<uint32_t>(stats_.num_leaf_entries));
    last_insert_id_ = node->entry_ids.back();
    ++stats_.num_leaf_entries;
    LIMBO_OBS_COUNT("dcf_tree.new_leaf_entries", 1);
    if (node->leaf_entries.size() <=
        static_cast<size_t>(options_.leaf_capacity)) {
      return result;
    }
    // Overflow: split into two leaves.
    std::unique_ptr<Node> a;
    std::unique_ptr<Node> b;
    SplitLeaf(node, &a, &b);
    ++stats_.num_nodes;
    LIMBO_OBS_COUNT("dcf_tree.leaf_splits", 1);
    result.halves[0] = MakeChildRef(std::move(a));
    result.halves[1] = MakeChildRef(std::move(b));
    return result;
  }

  // Internal: route to the closest child summary.
  LIMBO_OBS_COUNT("dcf_tree.route_evals", node->children.size());
  size_t best = 0;
  double best_loss = kInf;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const double loss =
        LossToAccumulator(object, node->children[i].p, node->children[i].acc);
    if (loss < best_loss) {
      best_loss = loss;
      best = i;
    }
  }
  ChildRef& chosen = node->children[best];
  chosen.p += object.p;
  for (const auto& e : object.cond.entries()) {
    chosen.acc[e.id] += object.p * e.mass;
  }
  SplitResult child_split = InsertInto(chosen.node.get(), object);
  if (child_split.DidSplit()) {
    // Replace the chosen child with the two halves.
    node->children[best] = std::move(*child_split.halves[0]);
    node->children.push_back(std::move(*child_split.halves[1]));
    if (node->children.size() > static_cast<size_t>(options_.branching)) {
      std::unique_ptr<Node> a;
      std::unique_ptr<Node> b;
      SplitInternal(node, &a, &b);
      ++stats_.num_nodes;
      LIMBO_OBS_COUNT("dcf_tree.internal_splits", 1);
      result.halves[0] = MakeChildRef(std::move(a));
      result.halves[1] = MakeChildRef(std::move(b));
    }
  }
  return result;
}

void DcfTree::SplitLeaf(Node* leaf, std::unique_ptr<Node>* out_a,
                        std::unique_ptr<Node>* out_b) const {
  auto& entries = leaf->leaf_entries;
  LIMBO_CHECK(entries.size() >= 2);
  // Farthest-pair seeds.
  size_t sa = 0;
  size_t sb = 1;
  double max_loss = -1.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double loss = InformationLoss(entries[i], entries[j]);
      if (loss > max_loss) {
        max_loss = loss;
        sa = i;
        sb = j;
      }
    }
  }
  // Decide every assignment before moving anything (the seeds must stay
  // valid while distances are computed).
  std::vector<bool> to_a(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == sa) {
      to_a[i] = true;
    } else if (i == sb) {
      to_a[i] = false;
    } else {
      const double da = InformationLoss(entries[i], entries[sa]);
      const double db = InformationLoss(entries[i], entries[sb]);
      to_a[i] = (da <= db);
    }
  }
  *out_a = std::make_unique<Node>();
  *out_b = std::make_unique<Node>();
  for (size_t i = 0; i < entries.size(); ++i) {
    Node* dst = (to_a[i] ? *out_a : *out_b).get();
    dst->leaf_entries.push_back(std::move(entries[i]));
    dst->entry_ids.push_back(leaf->entry_ids[i]);
  }
}

void DcfTree::SplitInternal(Node* node, std::unique_ptr<Node>* out_a,
                            std::unique_ptr<Node>* out_b) const {
  auto& children = node->children;
  LIMBO_CHECK(children.size() >= 2);
  size_t sa = 0;
  size_t sb = 1;
  double max_loss = -1.0;
  for (size_t i = 0; i < children.size(); ++i) {
    for (size_t j = i + 1; j < children.size(); ++j) {
      const double loss = LossBetweenAccumulators(
          children[i].p, children[i].acc, children[j].p, children[j].acc);
      if (loss > max_loss) {
        max_loss = loss;
        sa = i;
        sb = j;
      }
    }
  }
  std::vector<bool> to_a(children.size());
  for (size_t i = 0; i < children.size(); ++i) {
    if (i == sa) {
      to_a[i] = true;
    } else if (i == sb) {
      to_a[i] = false;
    } else {
      const double da = LossBetweenAccumulators(
          children[i].p, children[i].acc, children[sa].p, children[sa].acc);
      const double db = LossBetweenAccumulators(
          children[i].p, children[i].acc, children[sb].p, children[sb].acc);
      to_a[i] = (da <= db);
    }
  }
  *out_a = std::make_unique<Node>();
  *out_b = std::make_unique<Node>();
  (*out_a)->is_leaf = false;
  (*out_b)->is_leaf = false;
  for (size_t i = 0; i < children.size(); ++i) {
    (to_a[i] ? *out_a : *out_b)->children.push_back(std::move(children[i]));
  }
}

void DcfTree::CollectLeaves(const Node* node, std::vector<Dcf>* out,
                            std::vector<uint32_t>* ids) const {
  if (node->is_leaf) {
    if (out != nullptr) {
      for (const Dcf& d : node->leaf_entries) out->push_back(d);
    }
    if (ids != nullptr) {
      for (const uint32_t id : node->entry_ids) ids->push_back(id);
    }
    return;
  }
  for (const ChildRef& c : node->children) {
    CollectLeaves(c.node.get(), out, ids);
  }
}

std::vector<Dcf> DcfTree::LeafDcfs() const {
  std::vector<Dcf> out;
  out.reserve(stats_.num_leaf_entries);
  CollectLeaves(root_.get(), &out, nullptr);
  return out;
}

std::vector<uint32_t> DcfTree::LeafEntryIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(stats_.num_leaf_entries);
  CollectLeaves(root_.get(), nullptr, &ids);
  return ids;
}

FrozenDcfTree DcfTree::Freeze() const {
  FrozenDcfTree frozen;
  frozen.branching = options_.branching;
  frozen.leaf_capacity = options_.leaf_capacity;
  frozen.threshold = options_.threshold;
  frozen.stats = stats_;
  // Recursive member lambda: Node/ChildRef are private.
  auto freeze = [](auto&& self, const Node* node, FrozenDcfNode* out) -> void {
    out->is_leaf = node->is_leaf;
    if (node->is_leaf) {
      out->entries = node->leaf_entries;
      out->entry_ids = node->entry_ids;
      return;
    }
    out->children.resize(node->children.size());
    for (size_t i = 0; i < node->children.size(); ++i) {
      const ChildRef& child = node->children[i];
      FrozenDcfChild& fc = out->children[i];
      fc.p = child.p;
      fc.acc_ids.reserve(child.acc.size());
      for (const auto& [id, mass] : child.acc) fc.acc_ids.push_back(id);
      std::sort(fc.acc_ids.begin(), fc.acc_ids.end());
      fc.acc_masses.reserve(fc.acc_ids.size());
      for (const uint32_t id : fc.acc_ids) {
        fc.acc_masses.push_back(child.acc.at(id));
      }
      self(self, child.node.get(), &fc.node);
    }
  };
  freeze(freeze, root_.get(), &frozen.root);
  return frozen;
}

std::unique_ptr<DcfTree> DcfTree::Restore(const FrozenDcfTree& frozen) {
  Options options;
  options.branching = frozen.branching;
  options.leaf_capacity = frozen.leaf_capacity;
  options.threshold = frozen.threshold;
  auto tree = std::unique_ptr<DcfTree>(new DcfTree(options));
  tree->stats_ = frozen.stats;
  auto thaw = [](auto&& self,
                 const FrozenDcfNode& fnode) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    node->is_leaf = fnode.is_leaf;
    if (fnode.is_leaf) {
      node->leaf_entries = fnode.entries;
      node->entry_ids = fnode.entry_ids;
      return node;
    }
    node->children.reserve(fnode.children.size());
    for (const FrozenDcfChild& fc : fnode.children) {
      ChildRef child;
      child.p = fc.p;
      child.acc.reserve(fc.acc_ids.size());
      for (size_t i = 0; i < fc.acc_ids.size(); ++i) {
        child.acc.emplace(fc.acc_ids[i], fc.acc_masses[i]);
      }
      child.node = self(self, fc.node);
      node->children.push_back(std::move(child));
    }
    return node;
  };
  tree->root_ = thaw(thaw, frozen.root);
  return tree;
}

std::string DcfTree::ValidateInvariants() const {
  std::string error;
  double total_mass = 0.0;
  // Recursive check via an explicit lambda (Node is private, so this
  // stays a member).
  auto check = [&](auto&& self, const Node* node, size_t depth) -> void {
    if (!error.empty()) return;
    if (node->is_leaf) {
      if (node->leaf_entries.size() >
          static_cast<size_t>(options_.leaf_capacity)) {
        error = util::StrFormat("leaf overflow: %zu entries",
                                node->leaf_entries.size());
        return;
      }
      if (node->entry_ids.size() != node->leaf_entries.size()) {
        error = util::StrFormat("leaf has %zu ids for %zu entries",
                                node->entry_ids.size(),
                                node->leaf_entries.size());
        return;
      }
      for (const Dcf& e : node->leaf_entries) total_mass += e.p;
      return;
    }
    if (node->children.empty() ||
        node->children.size() > static_cast<size_t>(options_.branching)) {
      error = util::StrFormat("internal fan-out %zu out of [1, %d]",
                              node->children.size(), options_.branching);
      return;
    }
    for (const ChildRef& child : node->children) {
      double p = 0.0;
      std::unordered_map<uint32_t, double> acc;
      AccumulateSubtree(child.node.get(), &p, &acc);
      if (std::fabs(p - child.p) > 1e-9) {
        error = util::StrFormat(
            "accumulator mass %.12f != subtree mass %.12f at depth %zu",
            child.p, p, depth);
        return;
      }
      if (acc.size() != child.acc.size()) {
        error = util::StrFormat(
            "accumulator support %zu != subtree support %zu at depth %zu",
            child.acc.size(), acc.size(), depth);
        return;
      }
      for (const auto& [id, mass] : acc) {
        auto it = child.acc.find(id);
        if (it == child.acc.end() || std::fabs(it->second - mass) > 1e-9) {
          error = util::StrFormat("accumulator drift at id %u, depth %zu",
                                  id, depth);
          return;
        }
      }
      self(self, child.node.get(), depth + 1);
    }
  };
  check(check, root_.get(), 0);
  if (error.empty()) {
    // Leaf-entry ids must be exactly {0, ..., num_leaf_entries - 1}.
    std::vector<uint32_t> ids = LeafEntryIds();
    std::vector<bool> seen(stats_.num_leaf_entries, false);
    for (const uint32_t id : ids) {
      if (id >= stats_.num_leaf_entries || seen[id]) {
        error = util::StrFormat("leaf-entry id %u out of range or repeated",
                                id);
        break;
      }
      seen[id] = true;
    }
    if (error.empty() && ids.size() != stats_.num_leaf_entries) {
      error = util::StrFormat("%zu leaf-entry ids for %zu entries",
                              ids.size(), stats_.num_leaf_entries);
    }
  }
  if (error.empty() && stats_.num_inserts > 0) {
    // Leaf masses must sum to the inserted mass (objects carry p).
    // Callers insert probabilities, so compare against the accumulated
    // total of all leaf DCFs gathered above.
    double expected = 0.0;
    for (const Dcf& leaf : LeafDcfs()) expected += leaf.p;
    if (std::fabs(total_mass - expected) > 1e-9) {
      error = util::StrFormat("leaf mass %.12f != %.12f", total_mass,
                              expected);
    }
  }
  return error;
}

size_t DcfTree::CountNodes(const Node* node) const {
  if (node->is_leaf) return 1;
  size_t n = 1;
  for (const ChildRef& c : node->children) n += CountNodes(c.node.get());
  return n;
}

}  // namespace limbo::core
