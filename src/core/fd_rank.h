#ifndef LIMBO_CORE_FD_RANK_H_
#define LIMBO_CORE_FD_RANK_H_

#include <vector>

#include "core/attribute_grouping.h"
#include "fd/fd.h"
#include "util/result.h"

namespace limbo::core {

/// An FD with its FD-RANK score. Lower rank = more redundancy removed by a
/// decomposition on this dependency = more interesting.
struct RankedFd {
  fd::FunctionalDependency fd;
  double rank = 0.0;
  /// True iff a qualifying merge G was found (rank < max(Q)); false means
  /// the FD kept the default rank max(Q).
  bool anchored = false;
};

struct FdRankOptions {
  /// ψ ∈ [0, 1]: a merge G qualifies only if IL(G) <= ψ · max(Q).
  double psi = 0.5;
};

/// The FD-RANK algorithm (Figure 11):
///  1. every FD starts at rank max(Q) (the largest merge loss in the
///     attribute dendrogram); if the attributes S = X ∪ A first become
///     co-clustered at a merge G with IL(G) <= ψ·max(Q), the rank drops
///     to IL(G);
///  2. FDs with equal antecedent and equal rank are collapsed into one
///     X → A1 A2 ...;
///  3. the result is sorted by ascending rank, ties broken in favour of
///     FDs with more attributes (paper: "we rank the ones with more
///     attributes higher"), then canonically.
util::Result<std::vector<RankedFd>> RankFds(
    const std::vector<fd::FunctionalDependency>& fds,
    const AttributeGroupingResult& grouping,
    const FdRankOptions& options = FdRankOptions());

}  // namespace limbo::core

#endif  // LIMBO_CORE_FD_RANK_H_
