#include "core/dcf.h"

#include "util/logging.h"

namespace limbo::core {

Dcf MergeDcf(const Dcf& a, const Dcf& b) {
  Dcf out;
  out.p = a.p + b.p;
  if (out.p <= 0.0) {
    out.p = 0.0;
    return out;
  }
  out.cond = SparseDistribution::WeightedMerge(a.p / out.p, a.cond,
                                               b.p / out.p, b.cond);
  if (!a.attr_counts.empty() || !b.attr_counts.empty()) {
    LIMBO_CHECK(a.attr_counts.size() == b.attr_counts.size());
    out.attr_counts.resize(a.attr_counts.size());
    for (size_t i = 0; i < a.attr_counts.size(); ++i) {
      out.attr_counts[i] = a.attr_counts[i] + b.attr_counts[i];
    }
  }
  return out;
}

double InformationLoss(const Dcf& a, const Dcf& b) {
  const double total = a.p + b.p;
  if (total <= 0.0) return 0.0;
  return total * JsDivergence(a.p / total, a.cond, b.p / total, b.cond);
}

}  // namespace limbo::core
