#include "core/dcf.h"

#include "util/logging.h"

namespace limbo::core {

Dcf MergeDcf(const Dcf& a, const Dcf& b) {
  Dcf out;
  out.p = a.p + b.p;
  if (out.p <= 0.0) {
    out.p = 0.0;
    return out;
  }
  out.cond = SparseDistribution::WeightedMerge(a.p / out.p, a.cond,
                                               b.p / out.p, b.cond);
  if (!a.attr_counts.empty() || !b.attr_counts.empty()) {
    LIMBO_CHECK(a.attr_counts.size() == b.attr_counts.size());
    out.attr_counts.resize(a.attr_counts.size());
    for (size_t i = 0; i < a.attr_counts.size(); ++i) {
      out.attr_counts[i] = a.attr_counts[i] + b.attr_counts[i];
    }
  }
  return out;
}

namespace {
// One kernel per thread: InformationLoss and InformationLossBatch are the
// same machine, so per-pair and batch dispatch produce identical bits.
LossKernel& PairKernel() {
  thread_local LossKernel kernel;
  return kernel;
}
}  // namespace

double InformationLoss(const Dcf& a, const Dcf& b) {
  LossKernel& kernel = PairKernel();
  kernel.SetObject(a.p, a.cond);
  return kernel.Loss(b.p, b.cond);
}

void InformationLossBatch(const Dcf& object, std::span<const Dcf> candidates,
                          std::span<double> out) {
  LIMBO_CHECK(out.size() == candidates.size());
  LossKernel& kernel = PairKernel();
  kernel.SetObject(object.p, object.cond);
  for (size_t i = 0; i < candidates.size(); ++i) {
    out[i] = kernel.Loss(candidates[i].p, candidates[i].cond);
  }
}

}  // namespace limbo::core
