#include "core/value_clustering.h"

#include <algorithm>
#include <unordered_map>

#include "core/info.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace limbo::core {

std::vector<Dcf> BuildValueObjects(const relation::Relation& rel) {
  const size_t d = rel.NumValues();
  const size_t m = rel.NumAttributes();
  const auto postings = rel.BuildValuePostings();
  std::vector<Dcf> objects;
  objects.reserve(d);
  for (relation::ValueId v = 0; v < d; ++v) {
    Dcf obj;
    obj.p = 1.0 / static_cast<double>(d);
    obj.cond = SparseDistribution::UniformOver(postings[v]);
    obj.attr_counts.assign(m, 0);
    obj.attr_counts[rel.dictionary().Attribute(v)] = postings[v].size();
    objects.push_back(std::move(obj));
  }
  return objects;
}

std::vector<Dcf> BuildValueObjectsOverTupleClusters(
    const relation::Relation& rel, const std::vector<uint32_t>& tuple_labels,
    size_t num_tuple_clusters) {
  LIMBO_CHECK(tuple_labels.size() == rel.NumTuples());
  const size_t d = rel.NumValues();
  const size_t m = rel.NumAttributes();
  const auto postings = rel.BuildValuePostings();
  std::vector<Dcf> objects;
  objects.reserve(d);
  for (relation::ValueId v = 0; v < d; ++v) {
    Dcf obj;
    obj.p = 1.0 / static_cast<double>(d);
    // Count occurrences per tuple cluster.
    std::unordered_map<uint32_t, double> counts;
    for (relation::TupleId t : postings[v]) {
      LIMBO_CHECK(tuple_labels[t] < num_tuple_clusters);
      counts[tuple_labels[t]] += 1.0;
    }
    std::vector<SparseDistribution::Entry> entries;
    entries.reserve(counts.size());
    for (const auto& [cluster, count] : counts) {
      entries.push_back({cluster, count});
    }
    obj.cond = SparseDistribution::FromPairs(std::move(entries));
    obj.attr_counts.assign(m, 0);
    obj.attr_counts[rel.dictionary().Attribute(v)] = postings[v].size();
    objects.push_back(std::move(obj));
  }
  return objects;
}

util::Result<ValueClusteringResult> ClusterValues(
    const relation::Relation& rel, const ValueClusteringOptions& options) {
  if (rel.NumTuples() == 0) {
    return util::Status::InvalidArgument("relation is empty");
  }
  LIMBO_OBS_SPAN(values_span, "value_clustering");
  const bool double_clustered = options.tuple_labels != nullptr;
  const std::vector<Dcf> objects =
      double_clustered
          ? BuildValueObjectsOverTupleClusters(rel, *options.tuple_labels,
                                               options.num_tuple_clusters)
          : BuildValueObjects(rel);
  const size_t d = objects.size();

  WeightedRows rows;
  rows.weights.reserve(d);
  rows.rows.reserve(d);
  for (const Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }

  ValueClusteringResult result;
  result.mutual_information = MutualInformation(rows);
  result.threshold =
      options.phi_v * result.mutual_information / static_cast<double>(d);

  LimboOptions limbo_options;
  limbo_options.phi = options.phi_v;
  limbo_options.branching = options.branching;
  limbo_options.leaf_capacity = options.leaf_capacity;
  const std::vector<Dcf> leaves =
      LimboPhase1(objects, limbo_options, result.threshold);

  // Phase 3: associate every value with its closest leaf.
  LIMBO_ASSIGN_OR_RETURN(std::vector<uint32_t> labels,
                         LimboPhase3(objects, leaves));

  result.groups.resize(leaves.size());
  for (size_t g = 0; g < leaves.size(); ++g) {
    result.groups[g].dcf = leaves[g];
  }
  for (relation::ValueId v = 0; v < d; ++v) {
    result.groups[labels[v]].values.push_back(v);
  }

  // CV_D classification: >= 2 tuples and >= 2 attributes.
  for (size_t g = 0; g < result.groups.size(); ++g) {
    ValueGroup& group = result.groups[g];
    size_t attrs_present = 0;
    uint64_t occurrences = 0;
    for (uint64_t c : group.dcf.attr_counts) {
      if (c > 0) ++attrs_present;
      occurrences += c;
    }
    const bool multi_tuple = double_clustered
                                 ? occurrences >= 2
                                 : group.dcf.cond.SupportSize() >= 2;
    group.is_duplicate = multi_tuple && attrs_present >= 2;
    if (group.is_duplicate) result.duplicate_groups.push_back(g);
  }
  LIMBO_OBS_COUNT("value_clustering.values", d);
  LIMBO_OBS_COUNT("value_clustering.groups", result.groups.size());
  LIMBO_OBS_COUNT("value_clustering.cvd_groups",
                  result.duplicate_groups.size());
  return result;
}

}  // namespace limbo::core
