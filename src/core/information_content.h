#ifndef LIMBO_CORE_INFORMATION_CONTENT_H_
#define LIMBO_CORE_INFORMATION_CONTENT_H_

#include <string>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::core {

/// Instance-level redundancy in the sense of the paper's Figure 1 (and of
/// the Arenas–Libkin information-content view it builds on): a cell
/// (t, A) is *redundant* w.r.t. a set of FDs if some FD X → A and some
/// other tuple t' agreeing with t on X pin the value down — erase it and
/// it is still inferable.
///
/// In Figure 1, with Ename → City, the value Boston is redundant in t2
/// (inferable from t1) but not in t3; with Zip → City instead, the
/// situation reverses. That example is a unit test of this module.
struct CellRedundancy {
  relation::TupleId tuple;
  relation::AttributeId attribute;
  /// Index (into the FD list given to AnalyzeInformationContent) of a
  /// witness FD that makes the cell inferable.
  size_t witness_fd;
};

struct InformationContent {
  size_t total_cells = 0;
  size_t redundant_cells = 0;
  /// 1 − redundant/total: the fraction of cells that carry information
  /// not implied elsewhere. 1.0 = fully normalized w.r.t. the FDs.
  double content = 1.0;
  /// Every redundant cell with one witness FD.
  std::vector<CellRedundancy> cells;
};

/// Flags every cell made inferable by `fds` (each FD must hold in `rel`;
/// an FD that does not hold is rejected, since "inference" from a broken
/// dependency is not sound).
util::Result<InformationContent> AnalyzeInformationContent(
    const relation::Relation& rel,
    const std::vector<fd::FunctionalDependency>& fds);

}  // namespace limbo::core

#endif  // LIMBO_CORE_INFORMATION_CONTENT_H_
