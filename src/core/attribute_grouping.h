#ifndef LIMBO_CORE_ATTRIBUTE_GROUPING_H_
#define LIMBO_CORE_ATTRIBUTE_GROUPING_H_

#include <string>
#include <vector>

#include "core/aib.h"
#include "core/value_clustering.h"
#include "fd/attribute_set.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::core {

/// Result of grouping attributes over the duplicate value groups
/// (Section 6.3): matrix F (attributes of A_D expressed over CV_D),
/// clustered agglomeratively to a full dendrogram.
struct AttributeGroupingResult {
  /// The attributes of A_D (those with support in some CV_D group),
  /// in increasing id order; leaf i of the dendrogram is attributes[i].
  std::vector<relation::AttributeId> attributes;
  /// The full agglomerative merge sequence Q over the |A_D| leaves.
  AibResult aib{0, {}};
  /// cluster_members[c] = the set of relation attributes in dendrogram
  /// cluster c (indexed by AIB cluster id: leaves then merged clusters).
  std::vector<fd::AttributeSet> cluster_members;
  /// Largest per-merge information loss in Q (max(Q) of FD-RANK).
  double max_merge_loss = 0.0;

  /// Human-readable merge list: one line per merge with the per-merge
  /// information loss — the textual form of the paper's dendrograms.
  std::string DendrogramText(const relation::Schema& schema) const;
};

struct AttributeGroupingOptions {
  /// φ_A; the paper uses 0.0 (exact AIB) since m is small. Values > 0
  /// pre-merge attributes whose loss is below φ_A · I(A;CV_D)/|A_D|.
  double phi_a = 0.0;
  /// Worker lanes for the pairwise AIB distance build and the Phase-3
  /// scan (0 = default lane count, 1 = serial; results bit-identical).
  size_t threads = 0;
};

/// Groups the attributes of `rel` using the duplicate value groups in
/// `values` (the F matrix of Section 6.3). Fails if CV_D is empty.
util::Result<AttributeGroupingResult> GroupAttributes(
    const relation::Relation& rel, const ValueClusteringResult& values,
    const AttributeGroupingOptions& options = AttributeGroupingOptions());

}  // namespace limbo::core

#endif  // LIMBO_CORE_ATTRIBUTE_GROUPING_H_
