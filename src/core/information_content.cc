#include "core/information_content.h"

#include <unordered_map>

#include "util/strings.h"

namespace limbo::core {

namespace {

using relation::AttributeId;
using relation::TupleId;

/// FNV-1a over the row restricted to `attrs`.
uint64_t HashRestricted(const relation::Relation& rel, TupleId t,
                        const std::vector<AttributeId>& attrs) {
  uint64_t h = 1469598103934665603ULL;
  for (AttributeId a : attrs) {
    h ^= rel.At(t, a);
    h *= 1099511628211ULL;
  }
  return h;
}

bool EqualRestricted(const relation::Relation& rel, TupleId x, TupleId y,
                     const std::vector<AttributeId>& attrs) {
  for (AttributeId a : attrs) {
    if (rel.At(x, a) != rel.At(y, a)) return false;
  }
  return true;
}

}  // namespace

util::Result<InformationContent> AnalyzeInformationContent(
    const relation::Relation& rel,
    const std::vector<fd::FunctionalDependency>& fds) {
  const size_t n = rel.NumTuples();
  const size_t m = rel.NumAttributes();
  InformationContent result;
  result.total_cells = n * m;

  // redundant[t*m + a] = true once witnessed.
  std::vector<bool> redundant(n * m, false);

  for (size_t fi = 0; fi < fds.size(); ++fi) {
    const fd::FunctionalDependency& f = fds[fi];
    if (!fd::Holds(rel, f)) {
      return util::Status::FailedPrecondition(
          "FD does not hold; cannot use it for inference: " +
          f.ToString(rel.schema()));
    }
    const std::vector<AttributeId> lhs = f.lhs.ToList();
    const std::vector<AttributeId> rhs = f.rhs.Minus(f.lhs).ToList();
    if (rhs.empty()) continue;
    // Group tuples by LHS; within a group of size >= 2, every RHS cell is
    // inferable from any *other* member, so all of them are redundant.
    // (With the empty LHS, every tuple is in one group: a constant column
    // of n >= 2 rows is redundant everywhere.)
    std::unordered_map<uint64_t, std::vector<TupleId>> buckets;
    for (TupleId t = 0; t < n; ++t) {
      buckets[HashRestricted(rel, t, lhs)].push_back(t);
    }
    for (const auto& [hash, bucket] : buckets) {
      // Split hash buckets into true groups.
      std::vector<std::vector<TupleId>> groups;
      for (TupleId t : bucket) {
        bool placed = false;
        for (auto& group : groups) {
          if (EqualRestricted(rel, group.front(), t, lhs)) {
            group.push_back(t);
            placed = true;
            break;
          }
        }
        if (!placed) groups.push_back({t});
      }
      for (const auto& group : groups) {
        if (group.size() < 2) continue;
        for (TupleId t : group) {
          for (AttributeId a : rhs) {
            const size_t idx = static_cast<size_t>(t) * m + a;
            if (!redundant[idx]) {
              redundant[idx] = true;
              result.cells.push_back({t, a, fi});
            }
          }
        }
      }
    }
  }

  result.redundant_cells = result.cells.size();
  result.content =
      result.total_cells == 0
          ? 1.0
          : 1.0 - static_cast<double>(result.redundant_cells) /
                      static_cast<double>(result.total_cells);
  return result;
}

}  // namespace limbo::core
