#ifndef LIMBO_CORE_TUPLE_CLUSTERING_H_
#define LIMBO_CORE_TUPLE_CLUSTERING_H_

#include <vector>

#include "core/limbo.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::core {

/// Builds the tuple objects of Section 6.1 (the rows of matrix M):
/// object t has prior p(t) = 1/n and conditional p(V|t) uniform (1/m)
/// over the tuple's m attribute values.
std::vector<Dcf> BuildTupleObjects(const relation::Relation& rel);

/// Parameters for duplicate-tuple detection (Section 6.1.1).
struct DuplicateTupleOptions {
  /// φ_T: accuracy of the Phase-1 summaries. 0.0 finds exact duplicates;
  /// larger values tolerate more differing attribute values.
  double phi_t = 0.1;
  int branching = 4;
  int leaf_capacity = 0;
  /// A tuple joins a summary's group only if its association loss is at
  /// most `association_margin` × the Phase-1 threshold — without this,
  /// Phase 3 would drag every tuple into *some* group. The margin > 1
  /// allows for the summary's conditional drifting as it absorbs tuples.
  double association_margin = 2.0;
};

/// A group of (near-)duplicate tuples: every tuple whose closest heavy
/// summary (leaf DCF with p > 1/n) is the same.
struct DuplicateTupleGroup {
  std::vector<relation::TupleId> tuples;
  /// Prior mass of the group's summary DCF.
  double summary_mass = 0.0;
};

struct DuplicateTupleReport {
  /// Groups with >= 2 associated tuples, largest first.
  std::vector<DuplicateTupleGroup> groups;
  double mutual_information = 0.0;
  double threshold = 0.0;
  size_t num_leaves = 0;
  size_t num_heavy_leaves = 0;
};

/// The paper's three-step duplicate-tuple procedure: Phase 1 at φ_T,
/// retain leaf summaries with p(c*) > 1/n, Phase 3 to associate every
/// tuple with its closest heavy summary.
util::Result<DuplicateTupleReport> FindDuplicateTuples(
    const relation::Relation& rel, const DuplicateTupleOptions& options);

}  // namespace limbo::core

#endif  // LIMBO_CORE_TUPLE_CLUSTERING_H_
