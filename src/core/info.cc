#include "core/info.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace limbo::core {

namespace {
constexpr double kLog2e = 1.4426950408889634;
double Log2(double x) { return std::log(x) * kLog2e; }
}  // namespace

double Entropy(std::span<const double> probabilities) {
  double h = 0.0;
  for (double p : probabilities) {
    if (p > 0.0) h -= p * Log2(p);
  }
  return h;
}

double EntropyOfCounts(std::span<const uint64_t> counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  const double dt = static_cast<double>(total);
  for (uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / dt;
    h -= p * Log2(p);
  }
  return h;
}

namespace {

/// Dense accumulation of the marginal, O(total nnz + max id). The merge-
/// based alternative is quadratic when the marginal support is large.
std::vector<double> DenseMarginal(const WeightedRows& data) {
  LIMBO_CHECK(data.weights.size() == data.rows.size());
  // Scan every entry for the max id rather than trusting entries().back():
  // SparseDistribution promises sorted entries, but a row that violates
  // that (e.g. from a hand-built or deserialized source) must not make the
  // accumulation below write out of bounds. Same O(total nnz) complexity.
  uint32_t max_id = 0;
  bool any = false;
  for (const auto& row : data.rows) {
    for (const auto& e : row.entries()) {
      max_id = std::max(max_id, e.id);
      any = true;
    }
  }
  std::vector<double> dense(any ? max_id + 1 : 0, 0.0);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    const double w = data.weights[i];
    if (w <= 0.0) continue;
    for (const auto& e : data.rows[i].entries()) {
      LIMBO_CHECK(e.id < dense.size());
      dense[e.id] += w * e.mass;
    }
  }
  return dense;
}

}  // namespace

SparseDistribution Marginal(const WeightedRows& data) {
  std::vector<double> dense = DenseMarginal(data);
  std::vector<SparseDistribution::Entry> entries;
  for (uint32_t id = 0; id < dense.size(); ++id) {
    if (dense[id] > 0.0) entries.push_back({id, dense[id]});
  }
  if (entries.empty()) return SparseDistribution();
  return SparseDistribution::FromPairs(std::move(entries));
}

void MutualInformationAccumulator::AddMarginal(double weight,
                                               const SparseDistribution& row) {
  if (weight <= 0.0) return;
  for (const auto& e : row.entries()) {
    // Grow on demand. Each dense cell is an independent accumulator, so
    // the growth schedule cannot change any sum — only the row order can,
    // and both passes see the rows in source order.
    if (e.id >= dense_.size()) dense_.resize(static_cast<size_t>(e.id) + 1);
    dense_[e.id] += weight * e.mass;
  }
}

void MutualInformationAccumulator::AddInformation(
    double weight, const SparseDistribution& row) {
  if (weight <= 0.0) return;
  for (const auto& e : row.entries()) {
    LIMBO_CHECK(e.id < dense_.size());
    info_ += weight * e.mass * Log2(e.mass / dense_[e.id]);
  }
}

double MutualInformation(const WeightedRows& data) {
  LIMBO_CHECK(data.weights.size() == data.rows.size());
  MutualInformationAccumulator acc;
  for (size_t i = 0; i < data.rows.size(); ++i) {
    acc.AddMarginal(data.weights[i], data.rows[i]);
  }
  for (size_t i = 0; i < data.rows.size(); ++i) {
    acc.AddInformation(data.weights[i], data.rows[i]);
  }
  return acc.Value();
}

double ConditionalEntropy(const WeightedRows& data) {
  double h = 0.0;
  for (size_t i = 0; i < data.rows.size(); ++i) {
    const double w = data.weights[i];
    if (w <= 0.0) continue;
    h += w * data.rows[i].Entropy();
  }
  return h;
}

}  // namespace limbo::core
