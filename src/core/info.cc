#include "core/info.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace limbo::core {

namespace {
constexpr double kLog2e = 1.4426950408889634;
double Log2(double x) { return std::log(x) * kLog2e; }
}  // namespace

double Entropy(std::span<const double> probabilities) {
  double h = 0.0;
  for (double p : probabilities) {
    if (p > 0.0) h -= p * Log2(p);
  }
  return h;
}

double EntropyOfCounts(std::span<const uint64_t> counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  const double dt = static_cast<double>(total);
  for (uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / dt;
    h -= p * Log2(p);
  }
  return h;
}

namespace {

/// Dense accumulation of the marginal, O(total nnz + max id). The merge-
/// based alternative is quadratic when the marginal support is large.
std::vector<double> DenseMarginal(const WeightedRows& data) {
  LIMBO_CHECK(data.weights.size() == data.rows.size());
  // Scan every entry for the max id rather than trusting entries().back():
  // SparseDistribution promises sorted entries, but a row that violates
  // that (e.g. from a hand-built or deserialized source) must not make the
  // accumulation below write out of bounds. Same O(total nnz) complexity.
  uint32_t max_id = 0;
  bool any = false;
  for (const auto& row : data.rows) {
    for (const auto& e : row.entries()) {
      max_id = std::max(max_id, e.id);
      any = true;
    }
  }
  std::vector<double> dense(any ? max_id + 1 : 0, 0.0);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    const double w = data.weights[i];
    if (w <= 0.0) continue;
    for (const auto& e : data.rows[i].entries()) {
      LIMBO_CHECK(e.id < dense.size());
      dense[e.id] += w * e.mass;
    }
  }
  return dense;
}

}  // namespace

SparseDistribution Marginal(const WeightedRows& data) {
  std::vector<double> dense = DenseMarginal(data);
  std::vector<SparseDistribution::Entry> entries;
  for (uint32_t id = 0; id < dense.size(); ++id) {
    if (dense[id] > 0.0) entries.push_back({id, dense[id]});
  }
  if (entries.empty()) return SparseDistribution();
  return SparseDistribution::FromPairs(std::move(entries));
}

double MutualInformation(const WeightedRows& data) {
  const std::vector<double> dense = DenseMarginal(data);
  double info = 0.0;
  for (size_t i = 0; i < data.rows.size(); ++i) {
    const double w = data.weights[i];
    if (w <= 0.0) continue;
    for (const auto& e : data.rows[i].entries()) {
      info += w * e.mass * Log2(e.mass / dense[e.id]);
    }
  }
  return info < 0.0 ? 0.0 : info;
}

double ConditionalEntropy(const WeightedRows& data) {
  double h = 0.0;
  for (size_t i = 0; i < data.rows.size(); ++i) {
    const double w = data.weights[i];
    if (w <= 0.0) continue;
    h += w * data.rows[i].Entropy();
  }
  return h;
}

}  // namespace limbo::core
