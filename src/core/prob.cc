#include "core/prob.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace limbo::core {

namespace {
constexpr double kLog2e = 1.4426950408889634;  // 1/ln(2)

double Log2(double x) { return std::log(x) * kLog2e; }
}  // namespace

SparseDistribution SparseDistribution::UniformOver(
    std::span<const uint32_t> ids) {
  SparseDistribution d;
  if (ids.empty()) return d;
  const double mass = 1.0 / static_cast<double>(ids.size());
  d.entries_.reserve(ids.size());
  for (uint32_t id : ids) d.entries_.push_back({id, mass});
  std::sort(d.entries_.begin(), d.entries_.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  for (size_t i = 1; i < d.entries_.size(); ++i) {
    LIMBO_CHECK(d.entries_[i].id != d.entries_[i - 1].id);
  }
  return d;
}

SparseDistribution SparseDistribution::FromPairs(std::vector<Entry> entries) {
  SparseDistribution d;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  double total = 0.0;
  for (const Entry& e : entries) {
    LIMBO_CHECK(e.mass >= 0.0);
    total += e.mass;
  }
  LIMBO_CHECK(total > 0.0);
  d.entries_.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) LIMBO_CHECK(entries[i].id != entries[i - 1].id);
    if (entries[i].mass > 0.0) {
      d.entries_.push_back({entries[i].id, entries[i].mass / total});
    }
  }
  return d;
}

SparseDistribution SparseDistribution::WeightedMerge(
    double w1, const SparseDistribution& a, double w2,
    const SparseDistribution& b) {
  SparseDistribution out;
  out.entries_.reserve(a.entries_.size() + b.entries_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries_.size() && j < b.entries_.size()) {
    const Entry& ea = a.entries_[i];
    const Entry& eb = b.entries_[j];
    if (ea.id < eb.id) {
      out.entries_.push_back({ea.id, w1 * ea.mass});
      ++i;
    } else if (eb.id < ea.id) {
      out.entries_.push_back({eb.id, w2 * eb.mass});
      ++j;
    } else {
      out.entries_.push_back({ea.id, w1 * ea.mass + w2 * eb.mass});
      ++i;
      ++j;
    }
  }
  for (; i < a.entries_.size(); ++i) {
    out.entries_.push_back({a.entries_[i].id, w1 * a.entries_[i].mass});
  }
  for (; j < b.entries_.size(); ++j) {
    out.entries_.push_back({b.entries_[j].id, w2 * b.entries_[j].mass});
  }
  return out;
}

double SparseDistribution::MassAt(uint32_t id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, uint32_t target) { return e.id < target; });
  if (it == entries_.end() || it->id != id) return 0.0;
  return it->mass;
}

double SparseDistribution::TotalMass() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.mass;
  return total;
}

double SparseDistribution::Entropy() const {
  double h = 0.0;
  for (const Entry& e : entries_) {
    if (e.mass > 0.0) h -= e.mass * Log2(e.mass);
  }
  return h;
}

double KlDivergence(const SparseDistribution& p, const SparseDistribution& q) {
  double d = 0.0;
  const auto& pe = p.entries();
  const auto& qe = q.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < pe.size()) {
    while (j < qe.size() && qe[j].id < pe[i].id) ++j;
    if (j == qe.size() || qe[j].id != pe[i].id) {
      return std::numeric_limits<double>::infinity();
    }
    d += pe[i].mass * Log2(pe[i].mass / qe[j].mass);
    ++i;
  }
  return d;
}

namespace {

/// JS divergence when |p| << |q|: for ids only in q the per-id term is
/// w2 * q_i * log(1/w2), and the q-only mass is 1 - (q-mass at p's ids),
/// so the whole sum needs only |p| binary searches into q.
double JsDivergenceAsymmetric(double w1, const SparseDistribution& p,
                              double w2, const SparseDistribution& q) {
  const double log_inv_w1 = (w1 > 0.0) ? -std::log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -std::log2(w2) : 0.0;
  double d = 0.0;
  double shared_q_mass = 0.0;
  for (const auto& e : p.entries()) {
    const double qm = q.MassAt(e.id);
    if (qm == 0.0) {
      d += w1 * e.mass * log_inv_w1;
    } else {
      shared_q_mass += qm;
      const double mm = w1 * e.mass + w2 * qm;
      d += w1 * e.mass * Log2(e.mass / mm) + w2 * qm * Log2(qm / mm);
    }
  }
  // Assumes q is normalized (every distribution in this library is); this
  // avoids the O(|q|) total-mass scan the fast path exists to skip.
  const double q_only = 1.0 - shared_q_mass;
  if (q_only > 0.0) d += w2 * q_only * log_inv_w2;
  return d < 0.0 ? 0.0 : d;
}

}  // namespace

double JsDivergence(double w1, const SparseDistribution& p, double w2,
                    const SparseDistribution& q) {
  // For id present only in p: m = w1*p_i, term = w1 * p_i * log(p_i / m)
  //                                            = w1 * p_i * log(1/w1).
  // Symmetrically for q. Shared ids use the full formula.
  if (p.Empty() || q.Empty()) return 0.0;
  // Asymmetric fast path: iterating the union is wasteful when one side is
  // tiny (an object distribution vs. a near-root cluster summary).
  if (p.SupportSize() * 16 < q.SupportSize()) {
    return JsDivergenceAsymmetric(w1, p, w2, q);
  }
  if (q.SupportSize() * 16 < p.SupportSize()) {
    return JsDivergenceAsymmetric(w2, q, w1, p);
  }
  const double log_inv_w1 = (w1 > 0.0) ? -Log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -Log2(w2) : 0.0;
  double d = 0.0;
  const auto& pe = p.entries();
  const auto& qe = q.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < pe.size() && j < qe.size()) {
    if (pe[i].id < qe[j].id) {
      d += w1 * pe[i].mass * log_inv_w1;
      ++i;
    } else if (qe[j].id < pe[i].id) {
      d += w2 * qe[j].mass * log_inv_w2;
      ++j;
    } else {
      const double pm = pe[i].mass;
      const double qm = qe[j].mass;
      const double mm = w1 * pm + w2 * qm;
      d += w1 * pm * Log2(pm / mm) + w2 * qm * Log2(qm / mm);
      ++i;
      ++j;
    }
  }
  for (; i < pe.size(); ++i) d += w1 * pe[i].mass * log_inv_w1;
  for (; j < qe.size(); ++j) d += w2 * qe[j].mass * log_inv_w2;
  // Guard against tiny negative rounding artifacts.
  return d < 0.0 ? 0.0 : d;
}

}  // namespace limbo::core
